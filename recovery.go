package cepheus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
)

// RecoveryOptions tunes a ResilientGroup's detect/degrade/repair/restore
// cycle. The zero value picks defaults suitable for the simulated fabrics.
type RecoveryOptions struct {
	// Threshold and Window parameterize the throughput safeguard (§V-D):
	// trip when acknowledged progress falls below Threshold times the recent
	// best for consecutive windows. Defaults: 0.5 and 1ms.
	Threshold float64
	Window    sim.Time

	// Deadline bounds a native broadcast attempt. If the transfer has not
	// completed Deadline after posting, the group degrades even if the
	// safeguard has no throughput baseline yet (e.g. a fault during the
	// very first window). Default 100ms; negative disables.
	Deadline sim.Time

	// ReprobeInterval is how often a degraded group repairs routes and
	// re-attempts MRP registration over the surviving fabric. Default 10ms.
	ReprobeInterval sim.Time

	// RestoreHysteresis is how many consecutive successful re-registrations
	// are required before native multicast is trusted again (default 2).
	// One success proves the control plane answered once; hysteresis guards
	// against flapping elements re-failing immediately.
	RestoreHysteresis int

	// Policy bounds each registration attempt (nil: DefaultRegisterPolicy).
	Policy *core.RegisterPolicy
}

func (o *RecoveryOptions) fill() {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.Window == 0 {
		o.Window = sim.Millisecond
	}
	if o.Deadline == 0 {
		o.Deadline = 100 * sim.Millisecond
	}
	if o.ReprobeInterval == 0 {
		o.ReprobeInterval = 10 * sim.Millisecond
	}
	if o.RestoreHysteresis == 0 {
		o.RestoreHysteresis = 2
	}
	if o.Policy == nil {
		p := core.DefaultRegisterPolicy()
		o.Policy = &p
	}
}

// RecoveryStats counts the observable transitions of the recovery pipeline.
type RecoveryStats struct {
	Trips       uint64 // safeguard throughput trips
	Invalidates uint64 // fabric-initiated invalidations (stale-epoch NACKs)
	Deadlines   uint64 // native broadcasts abandoned on the attempt deadline

	SchemeSwitches uint64 // native→fallback and fallback→native transitions

	NativeDeliveries   uint64 // per-member deliveries over switch multicast
	FallbackDeliveries uint64 // per-member deliveries over AMcast unicast

	Reprobes        uint64 // re-registration attempts from fallback
	ReprobeSkips    uint64 // re-probe ticks skipped (members unreachable)
	ReprobeFailures uint64 // re-registrations that failed
	Restores        uint64 // successful returns to native multicast
	RouteRebuilds   uint64 // FIB recomputations around dead elements

	DeferredSends     uint64 // fallback unicasts deferred: receiver unreachable
	DupDeliveries     uint64 // duplicate deliveries suppressed
	CorruptDeliveries uint64 // deliveries whose size != the posted transfer
}

// RecoverySpan is one degrade episode, detection → first AMcast fallback →
// native restore. FirstFallbackAt and RestoreAt are negative until the
// corresponding transition happens (a span with RestoreAt < 0 is still
// degraded at the end of the run).
type RecoverySpan struct {
	Reason          string
	DetectAt        sim.Time
	FirstFallbackAt sim.Time
	RestoreAt       sim.Time
}

// Degraded returns how long the episode stayed off native multicast, or -1
// while still degraded.
func (s *RecoverySpan) Degraded() sim.Time {
	if s.RestoreAt < 0 {
		return -1
	}
	return s.RestoreAt - s.DetectAt
}

// ResilientGroup wraps a Cepheus multicast group with the end-to-end
// recovery pipeline: a throughput safeguard and fabric invalidations detect
// faults; on degrade the group flushes in-flight native state, repairs
// unicast routes around dead elements and completes transfers with AMcast
// n-unicast; a periodic re-probe re-registers the group over the surviving
// fabric and, after RestoreHysteresis consecutive successes, restores
// native switch multicast (re-aligning PSNs first).
//
// Bcast is reliable under fail-stop faults: done fires only when every
// member holds the complete, correctly sized message, however many scheme
// switches that took.
type ResilientGroup struct {
	Group *core.Group
	Stats RecoveryStats
	Opts  RecoveryOptions

	// OnEvent, when set, receives a log line per recovery transition.
	OnEvent func(event string)

	c         *Cluster
	fallback  bool
	safeguard *core.Safeguard
	root      int     // current native source (member index)
	bestRate  float64 // best progress norm carried across safeguard re-arms

	sendQP  map[[2]int]*roce.QP // fallback pairwise QPs, [from][to]
	consec  int                 // consecutive successful re-registrations
	reprobe *sim.Timer
	probing bool // a re-registration is in flight

	spans []RecoverySpan

	bc *bcastState
}

// RecoverySpans returns every degrade episode so far, in order (the last
// entry has RestoreAt < 0 if the group is still degraded).
func (r *ResilientGroup) RecoverySpans() []RecoverySpan { return r.spans }

// bcastState is one in-progress reliable broadcast.
type bcastState struct {
	root, size int
	done       func()
	delivered  []bool
	inflight   []bool // fallback unicast posted, not yet delivered
	remaining  int
	deadline   *sim.Timer
}

// NewResilientGroup creates and registers a multicast group over the given
// host indices (members[leader] hosts the controller) and arms the recovery
// pipeline around it. Registration uses the bounded-retransmission policy,
// so it succeeds under lossy control planes that would time out Cluster.
// NewGroup's single attempt.
func (c *Cluster) NewResilientGroup(members []int, leader int, opts RecoveryOptions) (*ResilientGroup, error) {
	opts.fill()
	var ms []*core.Member
	var ags []*core.Agent
	for _, i := range members {
		ms = append(ms, &core.Member{Host: c.Net.Hosts[i], RNIC: c.RNICs[i], QP: c.RNICs[i].CreateQP()})
		ags = append(ags, c.Agents[i])
	}
	g := core.NewGroup(c.Eng, core.AllocMcstID(), ms, leader, ags)
	var err error
	done := false
	g.RegisterWithPolicy(*opts.Policy, func(e error) { err = e; done = true })
	for !done {
		if !c.Eng.Step() {
			return nil, fmt.Errorf("cepheus: registration stalled")
		}
	}
	if err != nil {
		return nil, err
	}
	r := &ResilientGroup{
		Group: g, Opts: opts, c: c,
		root:   leader,
		sendQP: make(map[[2]int]*roce.QP),
	}
	g.OnInvalidate = func(reason string) {
		r.Stats.Invalidates++
		r.degrade("fabric invalidated group: " + reason)
	}
	r.armSafeguard()
	return r, nil
}

// Native reports whether the group is currently using switch multicast.
func (r *ResilientGroup) Native() bool { return !r.fallback }

func (r *ResilientGroup) event(s string) {
	if r.OnEvent != nil {
		r.OnEvent(s)
	}
}

// armSafeguard watches the current source QP for throughput collapse. The
// best-rate norm is carried across re-arms (Safeguard.Prime): a restore
// onto a still-degraded link must be judged against the pre-fault norm,
// not have the degraded rate adopted as the new baseline.
func (r *ResilientGroup) armSafeguard() {
	if r.safeguard != nil {
		if b := r.safeguard.Best(); b > r.bestRate {
			r.bestRate = b
		}
		r.safeguard.Stop()
	}
	r.safeguard = core.NewSafeguard(r.c.Eng, r.Group.Members[r.root].QP,
		r.Opts.Threshold, r.Opts.Window, func(reason string) {
			r.Stats.Trips++
			r.degrade("safeguard tripped: " + reason)
		})
	if r.bestRate > 0 {
		r.safeguard.Prime(r.bestRate)
	}
}

// Bcast reliably delivers size bytes from the member at index rootIdx to
// every other member, surviving fail-stop faults mid-transfer by switching
// schemes. One broadcast runs at a time. done fires when the last member
// holds the complete message.
func (r *ResilientGroup) Bcast(rootIdx, size int, done func()) {
	if r.bc != nil {
		panic("cepheus: resilient broadcast already in progress")
	}
	n := len(r.Group.Members)
	bc := &bcastState{
		root: rootIdx, size: size, done: done,
		delivered: make([]bool, n), inflight: make([]bool, n),
		remaining: n - 1,
	}
	bc.delivered[rootIdx] = true
	r.bc = bc
	if bc.remaining == 0 {
		r.finish()
		return
	}
	if r.fallback {
		r.fallbackSend()
		return
	}
	r.nativeSend()
}

// nativeSend posts the transfer on the multicast QP and hooks every
// receiver for delivery accounting.
func (r *ResilientGroup) nativeSend() {
	bc := r.bc
	if bc.root != r.root {
		r.Group.SwitchSource(r.root, bc.root)
		r.root = bc.root
		r.armSafeguard()
	}
	for i, m := range r.Group.Members {
		if i == bc.root {
			continue
		}
		i := i
		m.QP.OnMessage = func(msg roce.Message) {
			r.Stats.NativeDeliveries++
			r.deliver(i, msg.Size)
		}
	}
	r.Group.Members[bc.root].QP.PostSend(bc.size, nil)
	if r.Opts.Deadline > 0 {
		bc.deadline = r.c.Eng.AfterTimer(r.Opts.Deadline, func() {
			if r.bc == bc && !r.fallback {
				r.Stats.Deadlines++
				r.degrade("native broadcast deadline exceeded")
			}
		})
	}
}

// deliver records one member's complete reception. Wrong-sized deliveries
// are counted and NOT accepted, so a corrupted path can never complete a
// broadcast; duplicates (native racing fallback) are suppressed.
func (r *ResilientGroup) deliver(i, size int) {
	bc := r.bc
	if bc == nil {
		return
	}
	bc.inflight[i] = false
	if size != bc.size {
		r.Stats.CorruptDeliveries++
		return
	}
	if bc.delivered[i] {
		r.Stats.DupDeliveries++
		return
	}
	bc.delivered[i] = true
	bc.remaining--
	if bc.remaining == 0 {
		r.finish()
	}
}

func (r *ResilientGroup) finish() {
	bc := r.bc
	if bc.deadline != nil {
		bc.deadline.Stop()
	}
	r.bc = nil
	bc.done()
}

// degrade is the one-way transition to AMcast fallback: flush all native
// in-flight state, repair routes around dead elements, complete the current
// broadcast over unicast, and start re-probing.
func (r *ResilientGroup) degrade(reason string) {
	if r.fallback {
		return
	}
	r.fallback = true
	r.Stats.SchemeSwitches++
	r.spans = append(r.spans, RecoverySpan{
		Reason: reason, DetectAt: r.c.Eng.Now(), FirstFallbackAt: -1, RestoreAt: -1,
	})
	r.event("degrade: " + reason)
	r.safeguard.Stop()
	// Abort native in-flight state everywhere so no half-delivered multicast
	// message can merge with post-recovery data.
	for _, m := range r.Group.Members {
		m.QP.Flush()
	}
	r.repairRoutes()
	if r.bc != nil {
		if r.bc.deadline != nil {
			r.bc.deadline.Stop()
		}
		r.fallbackSend()
	}
	r.consec = 0
	r.reprobe = r.c.Eng.AfterTimer(r.Opts.ReprobeInterval, r.reprobeTick)
}

func (r *ResilientGroup) repairRoutes() {
	r.c.Net.RebuildRoutes()
	r.Stats.RouteRebuilds++
}

// fallbackSend pushes the current broadcast to every undelivered member
// over root→member unicast, skipping members the repaired fabric cannot
// reach yet (they are retried on every re-probe tick).
func (r *ResilientGroup) fallbackSend() {
	bc := r.bc
	rootHost := r.Group.Members[bc.root].Host
	for i, m := range r.Group.Members {
		if bc.delivered[i] || bc.inflight[i] {
			continue
		}
		if !r.c.Net.PathExists(rootHost, m.Host) {
			r.Stats.DeferredSends++
			continue
		}
		bc.inflight[i] = true
		r.Stats.FallbackDeliveries++ // counted at post; delivery is reliable RC
		if n := len(r.spans); n > 0 && r.spans[n-1].FirstFallbackAt < 0 {
			r.spans[n-1].FirstFallbackAt = r.c.Eng.Now()
		}
		r.fallbackQP(bc.root, i).PostSend(bc.size, nil)
	}
}

// fallbackQP returns (creating on first use) the unicast RC pair from
// member i to member j, with the receive side wired into delivery
// accounting. These QPs are separate from the multicast QPs, so fallback
// traffic never perturbs native PSN state.
func (r *ResilientGroup) fallbackQP(i, j int) *roce.QP {
	key := [2]int{i, j}
	if q, ok := r.sendQP[key]; ok {
		return q
	}
	mi, mj := r.Group.Members[i], r.Group.Members[j]
	sq := mi.RNIC.CreateQP()
	rq := mj.RNIC.CreateQP()
	sq.Connect(mj.Host.IP, rq.QPN)
	rq.Connect(mi.Host.IP, sq.QPN)
	dst := j
	rq.OnMessage = func(m roce.Message) { r.deliver(dst, m.Size) }
	r.sendQP[key] = sq
	return sq
}

// reprobeTick runs while degraded: repair routes (picking up revived
// elements), retry deferred fallback sends, and — when every member is
// reachable — re-attempt MRP registration over the fresh fabric.
func (r *ResilientGroup) reprobeTick() {
	if !r.fallback {
		return
	}
	r.repairRoutes()
	if r.bc != nil {
		r.fallbackSend()
	}
	defer func() {
		if r.fallback {
			r.reprobe = r.c.Eng.AfterTimer(r.Opts.ReprobeInterval, r.reprobeTick)
		}
	}()
	if r.probing {
		return
	}
	// Registration floods MRP toward every member; a member behind a dead
	// element cannot confirm, so don't burn an attempt (or hit unroutable
	// control traffic) until the fabric can reach everyone.
	leaderHost := r.Group.Members[r.Group.Leader].Host
	for _, m := range r.Group.Members {
		if !r.c.Net.PathExists(leaderHost, m.Host) {
			r.Stats.ReprobeSkips++
			r.consec = 0
			return
		}
	}
	r.Stats.Reprobes++
	r.probing = true
	r.Group.RegisterWithPolicy(*r.Opts.Policy, func(err error) {
		r.probing = false
		if err != nil {
			r.Stats.ReprobeFailures++
			r.consec = 0
			r.event("re-probe failed: " + err.Error())
			return
		}
		r.consec++
		r.event(fmt.Sprintf("re-probe registered (%d/%d)", r.consec, r.Opts.RestoreHysteresis))
		if r.consec >= r.Opts.RestoreHysteresis {
			r.restore()
		}
	})
}

// restore returns the group to native switch multicast: PSNs are re-aligned
// group-wide (the multicast QPs have been idle since the degrade flush) and
// the safeguard is re-armed on the current source.
func (r *ResilientGroup) restore() {
	r.fallback = false
	r.consec = 0
	r.Stats.Restores++
	r.Stats.SchemeSwitches++
	if n := len(r.spans); n > 0 {
		r.spans[n-1].RestoreAt = r.c.Eng.Now()
	}
	if r.reprobe != nil {
		r.reprobe.Stop()
	}
	r.Group.SyncAllPSN()
	r.armSafeguard()
	// If a broadcast is still draining over fallback QPs it completes on its
	// own, but the safeguard now watches an idle native QP — re-arm the
	// deadline so a second fault during the drain re-degrades instead of
	// wedging the broadcast.
	if bc := r.bc; bc != nil && r.Opts.Deadline > 0 {
		bc.deadline = r.c.Eng.AfterTimer(r.Opts.Deadline, func() {
			if r.bc == bc && !r.fallback {
				r.Stats.Deadlines++
				r.degrade("fallback drain deadline exceeded")
			}
		})
	}
	r.event("restored native multicast")
}
