package cepheus

import (
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultTraceCapacity is the flight-recorder ring size EnableTrace uses
// when the caller passes 0: large enough to hold the complete history of a
// testbed-scale run, bounded enough that a fat-tree sweep keeps only its
// recent past (a flight recorder, not a full log).
const DefaultTraceCapacity = 1 << 20

// EnableTrace turns the flight recorder on for every device in the cluster
// and returns it. capacity bounds the central event ring (0 selects
// DefaultTraceCapacity). Call it after construction and before the traffic
// of interest; tracing can only be enabled once per cluster.
//
// Devices register switches-first in topology order, so device ids — and
// therefore the canonical export order — are identical across sequential and
// partitioned execution of the same topology. In parallel mode the recorder's
// per-LP shards are merged at every window barrier by the coordinator; in
// sequential mode everything lives in one shard and merging happens at
// export.
func (c *Cluster) EnableTrace(capacity int) *obs.Recorder {
	if c.Rec != nil {
		return c.Rec
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	nlp := 1
	if c.Par != nil {
		nlp = c.Par.NumLPs()
	}
	rec := obs.NewRecorder(nlp, capacity)
	for _, sw := range c.Net.Switches {
		// The switch, its ports, and its attached accelerator share one
		// device id; the Port field distinguishes egresses.
		sw.SetTracer(rec.NewTracer(sw.Name, sw.Engine().LP()))
	}
	for i, h := range c.Net.Hosts {
		tr := rec.NewTracer(h.Name, h.Engine().LP())
		h.NIC.SetTracer(tr)
		c.RNICs[i].SetTracer(tr)
	}
	if c.Par != nil {
		c.Par.SetBarrier(rec.Barrier)
	}
	c.Rec = rec
	return rec
}

// WriteTrace exports the recorded history to w: JSONL when jsonl is true,
// pcap-like text otherwise. A convenience over Rec.Events + WriteJSONL.
func (c *Cluster) WriteTrace(w io.Writer, jsonl bool) error {
	if c.Rec == nil {
		return nil
	}
	evs := c.Rec.Events()
	if jsonl {
		return c.Rec.WriteJSONL(w, evs)
	}
	return c.Rec.WriteText(w, evs)
}

// WriteTraceFile is WriteTrace to a named file.
func (c *Cluster) WriteTraceFile(path string, jsonl bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f, jsonl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DeliveryLatency merges every QP's delivery-latency histogram across the
// cluster's RNICs: the distribution, in nanoseconds, from requester emission
// of a data packet to its in-order acceptance at a responder. Histogram
// merging is commutative, so the result is independent of iteration order.
func (c *Cluster) DeliveryLatency() obs.Summary {
	var h obs.Histogram
	for _, r := range c.RNICs {
		r.MergeDeliveryLatency(&h)
	}
	return h.Summary()
}

// QueueDepth merges the egress queue-depth histograms of every port in the
// fabric (switch egresses and host NICs): the distribution, in bytes, of
// queue occupancy observed at each enqueue. Max is the deepest any queue
// ever got.
func (c *Cluster) QueueDepth() obs.Summary {
	var h obs.Histogram
	for _, sw := range c.Net.Switches {
		for _, pt := range sw.Ports {
			h.Merge(&pt.QHist)
		}
	}
	for _, hst := range c.Net.Hosts {
		h.Merge(&hst.NIC.QHist)
	}
	return h.Summary()
}

// SettleUntil drives the cluster until every event with timestamp <= t has
// executed (or the run quiesces), in either execution mode. Trace
// comparisons across modes cut at such a fixed horizon: a partitioned run
// may execute slightly past it (to its window edge), a sequential run stops
// exactly on it, and EventsUntil(t) yields the event set both agree on.
func (c *Cluster) SettleUntil(t sim.Time) {
	if c.Par != nil {
		c.Par.RunUntil(t)
		return
	}
	c.Eng.RunUntil(t)
}
