package cepheus

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/roce"
	"repro/internal/sim"
)

// DefaultTraceCapacity is the flight-recorder ring size EnableTrace uses
// when the caller passes 0: large enough to hold the complete history of a
// testbed-scale run, bounded enough that a fat-tree sweep keeps only its
// recent past (a flight recorder, not a full log).
const DefaultTraceCapacity = 1 << 20

// EnableTrace turns the flight recorder on for every device in the cluster
// and returns it. capacity bounds the central event ring (0 selects
// DefaultTraceCapacity). Call it after construction and before the traffic
// of interest; tracing can only be enabled once per cluster.
//
// Devices register switches-first in topology order, so device ids — and
// therefore the canonical export order — are identical across sequential and
// partitioned execution of the same topology. In parallel mode the recorder's
// per-LP shards are merged at every window barrier by the coordinator; in
// sequential mode everything lives in one shard and merging happens at
// export.
func (c *Cluster) EnableTrace(capacity int) *obs.Recorder {
	if c.Rec != nil {
		return c.Rec
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	nlp := 1
	if c.Par != nil {
		nlp = c.Par.NumLPs()
	}
	rec := obs.NewRecorder(nlp, capacity)
	for _, sw := range c.Net.Switches {
		// The switch, its ports, and its attached accelerator share one
		// device id; the Port field distinguishes egresses.
		sw.SetTracer(rec.NewTracer(sw.Name, sw.Engine().LP()))
	}
	for i, h := range c.Net.Hosts {
		tr := rec.NewTracer(h.Name, h.Engine().LP())
		h.NIC.SetTracer(tr)
		c.RNICs[i].SetTracer(tr)
	}
	if c.Par != nil {
		c.Par.SetBarrier(rec.Barrier)
	}
	c.Rec = rec
	return rec
}

// EnableGroupStats turns per-group attribution on for every device in the
// cluster and returns the registry: delivered payload and per-message
// latency book at responder RNICs, retransmissions at requester RNICs, and
// drops wherever the fabric kills a frame — each keyed by the multicast
// group id that owned the traffic. bucket is the goodput time-series
// resolution (0 selects obs.DefaultGoodputBucket).
//
// Attribution is pure host-side accounting on per-LP shards (one writer
// each, merged at read time): it schedules no events, mutates no packets,
// and draws no randomness, so enabling it is digest- and trace-byte-neutral
// at every worker count — unlike EnableSeries, it works in parallel mode.
// Declare SLO objectives (GS.SetObjective) before the traffic of interest;
// the delivery-latency threshold is latched at each group's first packet.
func (c *Cluster) EnableGroupStats(bucket sim.Time) *obs.GroupStats {
	if c.GS != nil {
		return c.GS
	}
	nlp := 1
	if c.Par != nil {
		nlp = c.Par.NumLPs()
	}
	gs := obs.NewGroupStats(nlp, bucket)
	for _, sw := range c.Net.Switches {
		sw.SetGroupStats(gs.LP(sw.Engine().LP()))
	}
	for i, h := range c.Net.Hosts {
		lp := gs.LP(h.Engine().LP())
		h.NIC.SetGroupStats(lp)
		c.RNICs[i].SetGroupStats(lp)
	}
	c.GS = gs
	return gs
}

// GroupStats returns the per-group attribution registry (nil until
// EnableGroupStats).
func (c *Cluster) GroupStats() *obs.GroupStats { return c.GS }

// GroupReports returns the merged per-group snapshot, sorted by group id;
// empty until EnableGroupStats and some multicast traffic. Read only while
// the cluster is quiescent (between runs).
func (c *Cluster) GroupReports() []obs.GroupReport { return c.GS.Snapshot() }

// GroupFairness derives the fairness report (Jain's index, max/min goodput
// ratio, p99 isolation gap) from the current group snapshot.
func (c *Cluster) GroupFairness() obs.FairnessReport {
	return obs.Fairness(c.GS.Snapshot())
}

// auditDrainInterval is how often a sequential cluster drains recorder
// shards through the auditor. Parallel clusters drain at every window
// barrier already; sequential ones drain lazily at export, which would let
// a long run overflow its shard before the auditor ever saw an event.
const auditDrainInterval = sim.Millisecond

// EnableAudit attaches the online protocol auditor to the flight recorder
// (enabling tracing if needed) and returns it. The auditor verifies PSN/ACK
// sanity, delivery uniqueness, per-port byte conservation, and MFT epoch
// monotonicity, streaming, as events drain — identically under every worker
// count. Call it before the traffic of interest; events drained before the
// auditor attaches are not audited.
//
// The go-back-N window bound is taken from the cluster's RoCE configuration.
func (c *Cluster) EnableAudit() *obs.Auditor {
	if c.Aud != nil {
		return c.Aud
	}
	rec := c.EnableTrace(0)
	cfg := obs.AuditConfig{}
	if len(c.RNICs) > 0 {
		cfg.WindowPkts = c.RNICs[0].Cfg.WindowPkts
	}
	aud := obs.NewAuditor(cfg)
	rec.Attach(aud.Observe)
	if c.Par == nil {
		var drain *sim.Timer
		drain = c.Eng.NewTimer(func() {
			rec.Barrier()
			drain.Reset(auditDrainInterval)
		})
		drain.Reset(auditDrainInterval)
	}
	c.Aud = aud
	return aud
}

// EnableSeries starts the periodic telemetry sampler and returns it, wired
// with the cluster-wide defaults: aggregate and maximum egress queue depth,
// and per-interval deltas of every fabric counter. Callers add more probes
// (TrackPortDepths, TrackQPRates, or custom closures) before traffic starts.
// interval 0 selects 100µs; capacity 0 selects 4096 samples (the set
// decimates and doubles its interval when full).
//
// Sampling requires sequential execution: probes read live device state,
// which under PDES would race with worker goroutines. Partitioned runs
// should sample offline from the trace instead.
func (c *Cluster) EnableSeries(interval sim.Time, capacity int) (*obs.SeriesSet, error) {
	if c.Series != nil {
		return c.Series, nil
	}
	if c.Par != nil {
		return nil, fmt.Errorf("cepheus: EnableSeries requires sequential execution (Workers <= 1)")
	}
	if interval <= 0 {
		interval = 100 * sim.Microsecond
	}
	s := obs.NewSeriesSet(c.Eng, interval, capacity)
	s.Track("qdepth/total", func() float64 {
		var t int64
		for _, sw := range c.Net.Switches {
			for _, pt := range sw.Ports {
				t += int64(pt.QueuedBytes())
			}
		}
		for _, h := range c.Net.Hosts {
			t += int64(h.NIC.QueuedBytes())
		}
		return float64(t)
	})
	s.Track("qdepth/max", func() float64 {
		var m int64
		for _, sw := range c.Net.Switches {
			for _, pt := range sw.Ports {
				if d := int64(pt.QueuedBytes()); d > m {
					m = d
				}
			}
		}
		for _, h := range c.Net.Hosts {
			if d := int64(h.NIC.QueuedBytes()); d > m {
				m = d
			}
		}
		return float64(m)
	})
	for fc := obs.FCounter(0); fc < obs.NumFCounters; fc++ {
		fc := fc
		s.TrackDelta("fab/"+fc.String(), func() float64 {
			return float64(c.Fab.Total(fc))
		})
	}
	c.Series = s
	return s, nil
}

// TrackPortDepths adds one queue-depth series per switch egress port
// ("q/<switch>:<port>") and per host NIC ("q/<host>") to s. Call before
// Start; intended for testbed/fat-tree scales where per-port series are
// still plottable.
func (c *Cluster) TrackPortDepths(s *obs.SeriesSet) {
	for _, sw := range c.Net.Switches {
		for _, pt := range sw.Ports {
			pt := pt
			s.Track(fmt.Sprintf("q/%s:%d", sw.Name, pt.ID), func() float64 {
				return float64(pt.QueuedBytes())
			})
		}
	}
	for _, h := range c.Net.Hosts {
		nic := h.NIC
		s.Track("q/"+h.Name, func() float64 { return float64(nic.QueuedBytes()) })
	}
}

// TrackQPRates adds one DCQCN-rate series per existing QP
// ("rate/<host>/qp<N>", in Gbit/s) to s. Only QPs alive at call time are
// tracked — set groups up first; QPs created later (recovery fallbacks) are
// not retroactively added.
func (c *Cluster) TrackQPRates(s *obs.SeriesSet) {
	for i, r := range c.RNICs {
		host := c.Net.Hosts[i].Name
		r.EachQP(func(qp *roce.QP) {
			s.Track(fmt.Sprintf("rate/%s/qp%d", host, qp.QPN), func() float64 {
				return qp.Rate() / 1e9
			})
		})
	}
}

// WriteTrace exports the recorded history to w: JSONL when jsonl is true,
// pcap-like text otherwise. A convenience over Rec.Events + WriteJSONL.
func (c *Cluster) WriteTrace(w io.Writer, jsonl bool) error {
	if c.Rec == nil {
		return nil
	}
	evs := c.Rec.Events()
	if jsonl {
		return c.Rec.WriteJSONL(w, evs)
	}
	return c.Rec.WriteText(w, evs)
}

// WriteTraceFile is WriteTrace to a named file.
func (c *Cluster) WriteTraceFile(path string, jsonl bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteTrace(f, jsonl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DeliveryLatency merges every QP's delivery-latency histogram across the
// cluster's RNICs: the distribution, in nanoseconds, from requester emission
// of a data packet to its in-order acceptance at a responder. Histogram
// merging is commutative, so the result is independent of iteration order.
func (c *Cluster) DeliveryLatency() obs.Summary {
	var h obs.Histogram
	for _, r := range c.RNICs {
		r.MergeDeliveryLatency(&h)
	}
	return h.Summary()
}

// MessageLatency merges every QP's per-message delivery-latency histogram
// across the cluster's RNICs: the distribution, in nanoseconds, from the
// requester emitting a message's first data packet to a responder accepting
// its last packet in order. Each receiver of a multicast contributes one
// sample per message, so the percentiles spread with fan-out, pacing, and
// retransmission — unlike per-packet transit latency, which is nearly
// constant on an uncongested fabric.
func (c *Cluster) MessageLatency() obs.Summary {
	var h obs.Histogram
	for _, r := range c.RNICs {
		r.MergeMessageLatency(&h)
	}
	return h.Summary()
}

// QueueDepth merges the egress queue-depth histograms of every port in the
// fabric (switch egresses and host NICs): the distribution, in bytes, of
// queue occupancy observed at each enqueue. Max is the deepest any queue
// ever got.
func (c *Cluster) QueueDepth() obs.Summary {
	var h obs.Histogram
	for _, sw := range c.Net.Switches {
		for _, pt := range sw.Ports {
			h.Merge(&pt.QHist)
		}
	}
	for _, hst := range c.Net.Hosts {
		h.Merge(&hst.NIC.QHist)
	}
	return h.Summary()
}

// SettleUntil drives the cluster until every event with timestamp <= t has
// executed (or the run quiesces), in either execution mode. Trace
// comparisons across modes cut at such a fixed horizon: a partitioned run
// may execute slightly past it (to its window edge), a sequential run stops
// exactly on it, and EventsUntil(t) yields the event set both agree on.
func (c *Cluster) SettleUntil(t sim.Time) {
	if c.Par != nil {
		c.Par.RunUntil(t)
		return
	}
	c.Eng.RunUntil(t)
}
