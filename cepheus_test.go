package cepheus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
)

func TestNewTestbedDefaults(t *testing.T) {
	c := NewTestbed(4, Options{})
	if c.Hosts() != 4 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	if len(c.Accels) != 1 || len(c.RNICs) != 4 || len(c.Agents) != 4 {
		t.Fatal("cluster wiring incomplete")
	}
}

func TestNewFatTreeDefaults(t *testing.T) {
	c := NewFatTree(4, Options{})
	if c.Hosts() != 16 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	if len(c.Accels) != 20 {
		t.Fatalf("accels = %d, want one per switch", len(c.Accels))
	}
}

func TestNewGroupRegisters(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{})
	g, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Registered() {
		t.Fatal("group not registered")
	}
	if c.Accels[0].MFT(g.ID) == nil {
		t.Fatal("no MFT on the ToR")
	}
}

func TestEverySchemeRuns(t *testing.T) {
	schemes := []Scheme{
		SchemeCepheus, SchemeBinomial, SchemeChain, SchemeRing,
		SchemeNUnicast, SchemeRDMC, SchemeLong,
	}
	for _, s := range schemes {
		core.ResetMcstIDs()
		c := NewTestbed(4, Options{})
		b, err := c.Broadcaster(s, []int{0, 1, 2, 3}, 4)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if jct := c.RunBcast(b, 0, 256<<10); jct <= 0 {
			t.Fatalf("%s: JCT %v", s, jct)
		}
	}
}

func TestUnknownSchemeErrors(t *testing.T) {
	c := NewTestbed(2, Options{})
	if _, err := c.Broadcaster("bogus", []int{0, 1}, 0); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestOptionsOverride(t *testing.T) {
	tr := roce.DefaultConfig()
	tr.MTU = 4096
	c := NewTestbed(2, Options{Seed: 7, Transport: &tr, LinkRate: 25e9, PropDelay: 2 * sim.Microsecond})
	if c.Net.LinkRate != 25e9 || c.Net.PropDelay != 2*sim.Microsecond {
		t.Fatal("link options not applied")
	}
	if c.RNICs[0].Cfg.MTU != 4096 {
		t.Fatal("transport option not applied")
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() sim.Time {
		core.ResetMcstIDs()
		c := NewTestbed(4, Options{Seed: 42})
		c.SetLossRate(1e-3)
		b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c.RunBcast(b, 0, 4<<20)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestLossInjectionThroughAPI(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{})
	c.SetLossRate(0.01)
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunBcast(b, 0, 8<<20)
	if c.TotalDrops() == 0 {
		t.Fatal("loss injection never fired")
	}
}
