package cepheus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestSpanRoundTripTestbed drives the fig8 workload (testbed broadcast size
// sweep) with the flight recorder on and folds the trace back into causal
// spans: every traced message must yield exactly one span, and on the
// two-level testbed every multicast span crosses exactly two hops (origin
// host NIC + ToR) with one delivery per non-origin member at path length 2.
func TestSpanRoundTripTestbed(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{64, 512, 4 << 10, 64 << 10} {
		if _, err := c.RunBcastErr(b, 0, size); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
	c.SettleUntil(c.Eng.Now() + sim.Millisecond)
	evs := rec.Events()
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}

	traced := make(map[uint64]bool)
	for i := range evs {
		if evs[i].Msg != 0 {
			traced[evs[i].Msg] = true
		}
	}
	if len(traced) == 0 {
		t.Fatal("trace carries no message ids")
	}
	spans := obs.BuildSpans(evs)
	perMsg := make(map[uint64]int)
	for i := range spans {
		perMsg[spans[i].Msg]++
	}
	if len(spans) != len(traced) {
		t.Errorf("%d spans for %d traced messages", len(spans), len(traced))
	}
	for m := range traced {
		if perMsg[m] != 1 {
			t.Errorf("message %s has %d spans, want exactly 1", obs.MsgString(m), perMsg[m])
		}
	}
	for i := range spans {
		s := &spans[i]
		if len(s.Hops) != 2 {
			t.Errorf("span %s crosses %d hops, want 2 (host NIC + ToR)", obs.MsgString(s.Msg), len(s.Hops))
			continue
		}
		if s.Hops[0].Depth != 0 || s.Hops[0].Parent != -1 || s.Hops[1].Depth != 1 || s.Hops[1].Parent != 0 {
			t.Errorf("span %s hop tree malformed: %+v", obs.MsgString(s.Msg), s.Hops)
		}
		if len(s.Delivers) != 3 {
			t.Errorf("span %s has %d deliveries, want 3 (every non-origin member)", obs.MsgString(s.Msg), len(s.Delivers))
		}
		for j := range s.Delivers {
			if d := &s.Delivers[j]; d.PathLen != 2 || d.LastHop != 1 {
				t.Errorf("span %s delivery %d: pathlen=%d lasthop=%d, want 2/1", obs.MsgString(s.Msg), j, d.PathLen, d.LastHop)
			}
		}
		if s.Bytes == 0 {
			t.Errorf("span %s delivered no payload bytes", obs.MsgString(s.Msg))
		}
		if s.Critical < 0 {
			t.Errorf("span %s has no critical delivery", obs.MsgString(s.Msg))
		}
	}
}

// spanWorkload renders the spans of the digest-equivalence fat-tree workload
// under a given worker count (partitioned coordinator throughout, so the
// canonical event stream — and hence the rendering — must be byte-stable).
func spanWorkload(t *testing.T, workers int) []byte {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: 1, Workers: workers, Partition: true})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	spans := obs.BuildSpans(evs)
	if len(spans) == 0 {
		t.Fatal("no spans reconstructed from the fat-tree trace")
	}
	var buf bytes.Buffer
	if err := obs.WriteSpans(&buf, spans, rec.DevName); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpanWorkerInvariance: span reconstruction consumes the canonical
// (time, device, seq) stream, so its rendered output must be byte-identical
// from serial partitioned execution through any parallel worker count.
func TestSpanWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	ref := spanWorkload(t, 1)
	for _, w := range []int{2, 4} {
		if got := spanWorkload(t, w); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d span rendering diverges from serial partitioned run (%d vs %d bytes)", w, len(got), len(ref))
		}
	}
}
