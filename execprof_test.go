package cepheus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Executor profiling promises byte-level neutrality: Options.Profile reads
// the wall clock only in executor host code, so enabling it must change
// nothing simulated — not the digest, not a single trace byte — at any
// worker count. These tests are that promise's acceptance gate.

// profWorkload runs the digest-equivalence workload on the partitioned
// coordinator with profiling on or off and returns the simulated digest, the
// canonical trace serialization cut at a fixed horizon, and the profile
// report (nil when off).
func profWorkload(t *testing.T, seed int64, workers int, profile bool) (simDigest, []byte, *obs.ExecReport) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers, Partition: true, Profile: profile})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	d := simDigest{jct: jct, metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d, buf.Bytes(), c.ExecProfile()
}

// TestProfileDigestTraceNeutral: with the partitioned coordinator's
// canonical serialization, the unprofiled workers=1 run is the reference;
// profiled runs at workers {1,2,4,8} must reproduce its digest and its trace
// byte-for-byte, while still yielding a populated profile report.
func TestProfileDigestTraceNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	const seed = 1
	refD, refTrace, refProf := profWorkload(t, seed, 1, false)
	if refProf != nil {
		t.Fatalf("ExecProfile non-nil with profiling off: %+v", refProf)
	}
	for _, w := range []int{1, 2, 4, 8} {
		d, trace, prof := profWorkload(t, seed, w, true)
		if d != refD {
			t.Errorf("workers=%d profiled: digest diverged:\n  ref: %+v\n  got: %+v", w, refD, d)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("workers=%d profiled: trace diverged from unprofiled reference (%d vs %d bytes)",
				w, len(trace), len(refTrace))
		}
		if prof == nil {
			t.Fatalf("workers=%d: ExecProfile = nil with Options.Profile set", w)
		}
		if prof.TotalEvents == 0 || prof.Windows == 0 || len(prof.Workers_) == 0 {
			t.Errorf("workers=%d: profile report empty: events=%d windows=%d workers=%d",
				w, prof.TotalEvents, prof.Windows, len(prof.Workers_))
		}
		var lpSum uint64
		for _, ph := range prof.Workers_ {
			lpSum += ph.Events
		}
		if lpSum != prof.TotalEvents {
			t.Errorf("workers=%d: per-worker events sum %d != total %d", w, lpSum, prof.TotalEvents)
		}
	}
}
