package cepheus

// End-to-end failure injection across the public API: the §V-D safeguard
// pipeline from detection to AMcast fallback, plus an in-flight pathology
// (throughput collapse) while an application is running.

import (
	"testing"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
)

func TestFailoverRegistrationToFallback(t *testing.T) {
	core.ResetMcstIDs()
	acc := core.DefaultAccelConfig()
	acc.MaxGroups = 1
	c := NewTestbed(4, Options{Accel: &acc})
	if _, err := c.NewGroup([]int{0, 1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	_, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	if err == nil {
		t.Fatal("over-capacity registration accepted")
	}
	// The application-side policy: on registration failure, run the same
	// workload over the default AMcast approach.
	var b amcast.Broadcaster
	b, berr := c.Broadcaster(SchemeChain, []int{0, 1, 2, 3}, 4)
	if berr != nil {
		t.Fatal(berr)
	}
	if jct := c.RunBcast(b, 0, 4<<20); jct <= 0 {
		t.Fatal("fallback broadcast failed")
	}
}

func TestFailoverMidStreamCollapse(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{})
	g, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Members[0].QP
	for _, m := range g.Members[1:] {
		m.QP.OnMessage = func(roce.Message) {}
	}
	fellBack := false
	sg := core.NewSafeguard(c.Eng, src, 0.5, sim.Millisecond, func(reason string) {
		fellBack = true
	})
	streaming := true
	var post func()
	post = func() {
		if streaming {
			src.PostSend(1<<20, post)
		}
	}
	post()
	c.Eng.RunUntil(10 * sim.Millisecond)
	if sg.Tripped() {
		t.Fatal("safeguard tripped on healthy traffic")
	}
	// Misconfiguration strikes: pathological loss on the ToR.
	c.SetLossRate(0.9)
	c.Eng.RunUntil(150 * sim.Millisecond)
	streaming = false
	if !fellBack {
		t.Fatal("safeguard never detected the collapse")
	}
	// Recovery: drain, then run the fallback AMcast path over the (still
	// lossy, but reliable-transport) unicast overlay.
	c.SetLossRate(0.01)
	b, err := c.Broadcaster(SchemeChain, []int{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if jct := c.RunBcast(b, 0, 1<<20); jct <= 0 {
		t.Fatal("post-failure fallback broadcast failed")
	}
}

func TestLeafSpineClusterRuns(t *testing.T) {
	core.ResetMcstIDs()
	c := NewLeafSpine(4, 2, 4, Options{})
	if c.Hosts() != 16 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	// A cross-leaf group with the full machinery.
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 5, 10, 15}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if jct := c.RunBcast(b, 0, 4<<20); jct <= 0 {
		t.Fatal("leaf-spine multicast failed")
	}
}
