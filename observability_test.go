package cepheus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestMetricsFabricMatchesWalk drives a lossy workload with a crash/restart
// cycle and checks that the sharded fabric counters Metrics() reads agree
// exactly with a walk over every device's private counters.
func TestMetricsFabricMatchesWalk(t *testing.T) {
	core.ResetMcstIDs()
	c := NewFatTree(4, Options{Seed: 7})
	defer c.Close()
	members := []int{0, 3, 6, 9, 12, 15}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLossRate(0.01)
	c.SetControlLossRate(0.005)
	if _, err := c.RunBcastErr(b, 0, 512<<10); err != nil {
		t.Fatal(err)
	}
	// Crash a core switch mid-flight of a second transfer, then restart it:
	// exercises crash drops, MFT wipes, unknown-group drops and NACKs.
	sw := c.Net.Switches[len(c.Net.Switches)-1]
	var done bool
	b.Bcast(0, 512<<10, func() { done = true })
	c.Eng.RunFor(50 * sim.Microsecond)
	sw.Crash()
	c.Eng.RunFor(200 * sim.Microsecond)
	sw.Restart()
	c.Eng.RunFor(5 * sim.Millisecond)
	_ = done // the transfer may or may not finish around the crash; irrelevant here
	c.Eng.RunFor(1 * sim.Millisecond)

	got, want := c.Metrics(), c.metricsWalk()
	if got != want {
		t.Fatalf("fabric metrics diverge from device walk:\n fabric: %+v\n   walk: %+v", got, want)
	}
	if got.DataDrops == 0 || got.CtrlDrops == 0 {
		t.Fatalf("workload did not exercise loss counters: %v", got)
	}
}

// TestDeliveryLatencySanity checks the always-on latency histograms: a
// completed broadcast must record one observation per accepted data packet
// at each receiver, with quantiles bounded by physical limits.
func TestDeliveryLatencySanity(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	jct, err := c.RunBcastErr(b, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	c.SettleUntil(c.Eng.Now() + sim.Millisecond)
	s := c.DeliveryLatency()
	if s.Count == 0 {
		t.Fatal("no delivery latency observations after a completed broadcast")
	}
	if s.Min <= 0 {
		t.Fatalf("delivery latency min %d must be positive (propagation alone is nonzero)", s.Min)
	}
	if s.Max > int64(jct) {
		t.Fatalf("delivery latency max %d exceeds the whole JCT %d", s.Max, jct)
	}
	if s.P50 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: %v", s)
	}
	q := c.QueueDepth()
	if q.Count == 0 || q.Max <= 0 {
		t.Fatalf("queue-depth histogram empty after traffic: %v", q)
	}
}

// TestGroupDeliveryLatency checks the per-group histogram merge.
func TestGroupDeliveryLatency(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	g, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var done bool
	g.Members[0].QP.PostSend(32<<10, func() { done = true })
	for !done {
		if !c.Eng.Step() {
			t.Fatal("queue drained before completion")
		}
	}
	c.Eng.RunFor(sim.Millisecond)
	gs := g.DeliveryLatency()
	cs := c.DeliveryLatency()
	if gs.Count == 0 || gs != cs {
		t.Fatalf("group summary %+v differs from cluster summary %+v (single group)", gs, cs)
	}
}

// traceWorkload runs the digest-equivalence workload with the flight
// recorder on and returns the canonical JSONL export cut at a fixed virtual
// horizon — every event at or before it executed in every mode — plus a
// per-(device, kind) census of the same events. partition selects the
// partitioned coordinator even at workers <= 1.
func traceWorkload(t *testing.T, seed int64, workers int, partition bool) ([]byte, map[string]int) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers, Partition: partition})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if len(evs) == 0 {
		t.Fatal("trace captured nothing")
	}
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d); grow capacity so the comparison sees complete histories", rec.Lost())
	}
	census := make(map[string]int)
	for i := range evs {
		census[rec.DevName(evs[i].Dev)+"/"+evs[i].Kind.String()]++
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), census
}

// TestTraceSeqParEquivalence is the tracing analogue of the digest test.
//
// The canonical trace serialization is the partitioned coordinator's: it
// breaks same-nanosecond cross-LP delivery ties by (time, source LP, send
// order), a rule independent of how many goroutines execute the windows. So
// the merged stream must be byte-identical from fully serial execution
// (workers=1 under Partition) through any parallel worker count.
//
// The legacy single engine serializes those same ties by scheduling order
// instead. Both serializations are deterministic and result-equivalent
// (TestSeqParDigestEquivalence pins jct/metrics/retransmits), but tie-order
// leaks into order-sensitive trace payloads — which packet got which queue
// depth — so legacy-vs-partitioned is compared on the tie-insensitive
// per-(device, kind) event census rather than bytes. DESIGN.md §10 records
// the distinction.
func TestTraceSeqParEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		ref, refCensus := traceWorkload(t, seed, 1, true)
		for _, w := range []int{2, 4} {
			got, _ := traceWorkload(t, seed, w, true)
			if !bytes.Equal(ref, got) {
				t.Errorf("seed %d: workers=%d trace diverges from serial partitioned run (%d vs %d bytes)", seed, w, len(got), len(ref))
			}
		}
		_, legacyCensus := traceWorkload(t, seed, 0, false)
		if len(legacyCensus) != len(refCensus) {
			t.Errorf("seed %d: legacy engine census has %d (device, kind) classes, partitioned %d", seed, len(legacyCensus), len(refCensus))
		}
		for k, n := range refCensus {
			if legacyCensus[k] != n {
				t.Errorf("seed %d: event census diverges at %s: legacy %d, partitioned %d", seed, k, legacyCensus[k], n)
			}
		}
	}
}
