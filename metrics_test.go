package cepheus

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// fcounterField maps every fabric counter to the Metrics field it must
// land in. The mapping test walks this table AND asserts exhaustiveness in
// both directions, so adding an FCounter without wiring it through
// Cluster.Metrics() (or a Metrics field without a counter) fails here
// instead of silently reading zero forever.
var fcounterField = map[obs.FCounter]string{
	obs.FDataDrops:         "DataDrops",
	obs.FCtrlDrops:         "CtrlDrops",
	obs.FCrashDrops:        "CrashDrops",
	obs.FNoRouteDrops:      "NoRouteDrops",
	obs.FFaultDrops:        "FaultDrops",
	obs.FMFTWipes:          "MFTWipes",
	obs.FEpochRebuilds:     "EpochRebuilds",
	obs.FStaleMRPDropped:   "StaleMRPDropped",
	obs.FUnknownGroupDrops: "UnknownGroupDrops",
	obs.FUnknownGroupNacks: "UnknownGroupNacks",
	obs.FImpairDrops:       "ImpairDrops",
	obs.FCorruptDrops:      "CorruptDrops",
	obs.FStormDrops:        "CtrlStormDrops",
}

// TestMetricsFieldMapping: incrementing each fabric counter moves exactly
// its Metrics field by exactly one, and the counter set and the Metrics
// struct stay in one-to-one correspondence.
func TestMetricsFieldMapping(t *testing.T) {
	if got, want := len(fcounterField), int(obs.NumFCounters); got != want {
		t.Fatalf("mapping table covers %d counters, obs declares %d — update fcounterField and Cluster.Metrics()", got, want)
	}
	if got, want := reflect.TypeOf(Metrics{}).NumField(), int(obs.NumFCounters); got != want {
		t.Fatalf("Metrics has %d fields, obs declares %d counters — update Metrics and Cluster.Metrics()", got, want)
	}
	core.ResetMcstIDs()
	c := NewTestbed(2, Options{Seed: 1})
	defer c.Close()
	for fc := obs.FCounter(0); fc < obs.NumFCounters; fc++ {
		want, ok := fcounterField[fc]
		if !ok {
			t.Fatalf("counter %v (%d) missing from fcounterField", fc, fc)
		}
		before := c.Metrics()
		c.Fab.LP(0).Inc(fc)
		after := c.Metrics()
		bv, av := reflect.ValueOf(before), reflect.ValueOf(after)
		for i := 0; i < bv.NumField(); i++ {
			name := bv.Type().Field(i).Name
			delta := av.Field(i).Uint() - bv.Field(i).Uint()
			switch {
			case name == want && delta != 1:
				t.Errorf("Inc(%v): Metrics.%s moved by %d, want 1", fc, name, delta)
			case name != want && delta != 0:
				t.Errorf("Inc(%v): Metrics.%s moved by %d, want 0 (only %s should move)", fc, name, delta, want)
			}
		}
	}
	// Every counter incremented once: the renderer must now name all of them.
	if s := c.Metrics().String(); s == "clean" {
		t.Fatalf("Metrics.String() = %q after incrementing every counter", s)
	}
}
