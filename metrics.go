package cepheus

import (
	"fmt"

	"repro/internal/obs"
)

// Metrics aggregates the cluster-wide health and fault counters: what the
// fabric dropped and why, and what the accelerators did to their volatile
// state. RecoveryStats (per ResilientGroup) covers the scheme-switching
// side; Metrics covers the fabric side.
type Metrics struct {
	// DataDrops counts loss-injected data discards across switches.
	DataDrops uint64
	// CtrlDrops counts control packets (MRP/ACK/NACK/CNP) discarded by
	// ControlLossRate across switches.
	CtrlDrops uint64
	// CrashDrops counts packets that died at a crashed switch.
	CrashDrops uint64
	// NoRouteDrops counts packets dropped for lack of a FIB entry (routes
	// repaired around a dead destination).
	NoRouteDrops uint64
	// FaultDrops counts frames lost to dead links, summed over every port
	// (switch ports and host NICs).
	FaultDrops uint64

	// ImpairDrops counts frames lost to gray-failure wire impairments
	// (iid and Gilbert-Elliott burst loss), summed over every port.
	ImpairDrops uint64
	// CorruptDrops counts frames lost to modeled CRC corruption.
	CorruptDrops uint64
	// CtrlStormDrops counts control packets lost to targeted control-plane
	// loss storms.
	CtrlStormDrops uint64

	// MFTWipes counts multicast groups lost to switch crashes (volatile
	// MFTs), summed over accelerators.
	MFTWipes uint64
	// EpochRebuilds counts MFTs replaced wholesale by a newer-epoch
	// registration.
	EpochRebuilds uint64
	// StaleMRPDropped counts older-epoch MRP replays discarded by switches.
	StaleMRPDropped uint64
	// UnknownGroupDrops counts multicast data packets dropped by a switch
	// with no MFT for the group (e.g. after a crash wiped it).
	UnknownGroupDrops uint64
	// UnknownGroupNacks counts the rejections switches sent toward sources
	// of unknown-group data — the signal that invalidates a stale group.
	UnknownGroupNacks uint64
}

// Metrics reads the fault and drop counters for the whole fabric: a sum of
// the per-LP counter shards, O(NumLPs) instead of a walk over every device.
// Only meaningful while the simulation is quiescent (between Run calls).
func (c *Cluster) Metrics() Metrics {
	f := c.Fab
	return Metrics{
		DataDrops:         f.Total(obs.FDataDrops),
		CtrlDrops:         f.Total(obs.FCtrlDrops),
		CrashDrops:        f.Total(obs.FCrashDrops),
		NoRouteDrops:      f.Total(obs.FNoRouteDrops),
		FaultDrops:        f.Total(obs.FFaultDrops),
		ImpairDrops:       f.Total(obs.FImpairDrops),
		CorruptDrops:      f.Total(obs.FCorruptDrops),
		CtrlStormDrops:    f.Total(obs.FStormDrops),
		MFTWipes:          f.Total(obs.FMFTWipes),
		EpochRebuilds:     f.Total(obs.FEpochRebuilds),
		StaleMRPDropped:   f.Total(obs.FStaleMRPDropped),
		UnknownGroupDrops: f.Total(obs.FUnknownGroupDrops),
		UnknownGroupNacks: f.Total(obs.FUnknownGroupNacks),
	}
}

// metricsWalk recomputes Metrics the slow way, by walking every device's
// private counters. It exists as a cross-check that the sharded fabric
// counters track the per-device truth exactly (TestMetricsFabricMatchesWalk).
func (c *Cluster) metricsWalk() Metrics {
	var m Metrics
	for _, sw := range c.Net.Switches {
		m.DataDrops += sw.DataDrops
		m.CtrlDrops += sw.CtrlDrops
		m.CrashDrops += sw.CrashDrops
		m.NoRouteDrops += sw.NoRouteDrops
		for _, pt := range sw.Ports {
			m.FaultDrops += pt.Stats.FaultDrops
			m.ImpairDrops += pt.Stats.ImpairDrops
			m.CorruptDrops += pt.Stats.CorruptDrops
			m.CtrlStormDrops += pt.Stats.StormDrops
		}
	}
	for _, h := range c.Net.Hosts {
		m.FaultDrops += h.NIC.Stats.FaultDrops
		m.ImpairDrops += h.NIC.Stats.ImpairDrops
		m.CorruptDrops += h.NIC.Stats.CorruptDrops
		m.CtrlStormDrops += h.NIC.Stats.StormDrops
	}
	for _, a := range c.Accels {
		m.MFTWipes += a.Stats.MFTWipes
		m.EpochRebuilds += a.Stats.EpochRebuilds
		m.StaleMRPDropped += a.Stats.StaleMRPDropped
		m.UnknownGroupDrops += a.Stats.UnknownGroupDrops
		m.UnknownGroupNacks += a.Stats.UnknownGroupNacks
	}
	return m
}

// String renders the non-zero counters compactly.
func (m Metrics) String() string {
	s := ""
	add := func(name string, v uint64) {
		if v > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", name, v)
		}
	}
	add("dataDrops", m.DataDrops)
	add("ctrlDrops", m.CtrlDrops)
	add("crashDrops", m.CrashDrops)
	add("noRouteDrops", m.NoRouteDrops)
	add("faultDrops", m.FaultDrops)
	add("impairDrops", m.ImpairDrops)
	add("corruptDrops", m.CorruptDrops)
	add("ctrlStormDrops", m.CtrlStormDrops)
	add("mftWipes", m.MFTWipes)
	add("epochRebuilds", m.EpochRebuilds)
	add("staleMRPDropped", m.StaleMRPDropped)
	add("unknownGroupDrops", m.UnknownGroupDrops)
	add("unknownGroupNacks", m.UnknownGroupNacks)
	if s == "" {
		return "clean"
	}
	return s
}

// SetControlLossRate injects random control-plane loss (MRP, confirmations,
// ACK/NACK/CNP — everything except PFC) on every switch, exercising the
// registration retransmission and feedback recovery paths.
func (c *Cluster) SetControlLossRate(rate float64) {
	for _, sw := range c.Net.Switches {
		sw.ControlLossRate = rate
	}
}
