// Package topo builds the network topologies the paper evaluates on: the
// 4-server single-switch testbed (§IV) and the 1024-server 3-layer fat-tree
// with 1:1 oversubscription used in the ns-3 simulations (§V-C). It also
// computes shortest-path ECMP unicast forwarding tables, which Cepheus MRP
// registration consults to pick multicast routing ports.
package topo

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// DefaultLinkRate is 100 Gbps, matching both the testbed RNICs and the
// simulated fat-tree.
const DefaultLinkRate = 100e9

// DefaultPropDelay is the per-hop propagation plus switch pipeline delay.
const DefaultPropDelay = 600 * sim.Nanosecond

// Network is a built topology: hosts, switches, and the wiring between them.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*simnet.Host
	Switches []*simnet.Switch

	// LinkRate and PropDelay record the parameters the network was built
	// with, so transports can size windows from the BDP.
	LinkRate  float64
	PropDelay sim.Time

	// Domains optionally groups switches into coarser partition units for
	// PartitionPods: every switch in a domain — and every host hanging off
	// one — shares a logical process, so only inter-domain trunks cross LPs.
	// FatTree populates one domain per pod (its edges and aggregations) plus
	// one per core group; nil for topologies without a natural grouping, in
	// which case PartitionPods falls back to the per-switch Partition.
	Domains [][]*simnet.Switch
}

// HostIP returns the address of host i. Host addresses are assigned
// sequentially starting at 10.0.0.1 and never collide with McstIDs.
func HostIP(i int) simnet.Addr { return simnet.Addr(0x0A000001 + uint32(i)) }

// HostByIP finds a host by address, or nil.
func (n *Network) HostByIP(ip simnet.Addr) *simnet.Host {
	i := int(uint32(ip) - 0x0A000001)
	if i < 0 || i >= len(n.Hosts) {
		return nil
	}
	return n.Hosts[i]
}

// LeafOf returns the switch a host is directly attached to.
func (n *Network) LeafOf(h *simnet.Host) *simnet.Switch {
	sw, ok := h.NIC.Peer.Dev.(*simnet.Switch)
	if !ok {
		panic(fmt.Sprintf("topo: host %s not attached to a switch", h.Name))
	}
	return sw
}

// Testbed builds the §IV configuration: nHosts servers on one Ethernet
// switch. The paper uses four servers with ConnectX-5 100Gbps RNICs.
func Testbed(eng *sim.Engine, nHosts int) *Network {
	return TestbedWith(eng, nHosts, DefaultLinkRate, DefaultPropDelay)
}

// TestbedWith is Testbed with explicit link parameters.
func TestbedWith(eng *sim.Engine, nHosts int, rate float64, prop sim.Time) *Network {
	n := &Network{Eng: eng, LinkRate: rate, PropDelay: prop}
	sw := simnet.NewSwitch(eng, "tor0")
	sw.PFC = simnet.DefaultPFC
	n.Switches = []*simnet.Switch{sw}
	for i := 0; i < nHosts; i++ {
		h := simnet.NewHost(eng, fmt.Sprintf("h%d", i), HostIP(i), rate, prop)
		p := sw.AddPort(rate, prop)
		simnet.Connect(h.NIC, p)
		sw.AddRoute(h.IP, p.ID)
		n.Hosts = append(n.Hosts, h)
	}
	return n
}

// FatTree builds a k-ary 3-layer fat-tree with 1:1 oversubscription:
// k pods, each with k/2 edge and k/2 aggregation switches, (k/2)^2 core
// switches, and k^3/4 hosts. k=16 yields the paper's 1024-server topology.
// All links share one rate, so the fabric is rearrangeably non-blocking.
func FatTree(eng *sim.Engine, k int) *Network {
	return FatTreeWith(eng, k, DefaultLinkRate, DefaultPropDelay)
}

// FatTreeWith is FatTree with explicit link parameters.
func FatTreeWith(eng *sim.Engine, k int, rate float64, prop sim.Time) *Network {
	return FatTreeWithTrunk(eng, k, rate, prop, prop)
}

// FatTreeWithTrunk is FatTreeWith with a separate propagation delay for the
// aggregation↔core trunks. Core trunks are physically longer than in-pod
// cabling in a real datacenter, and under PartitionPods they are the only
// cross-LP links — so coreProp sets the conservative lookahead directly,
// letting scale experiments trade modeled trunk length against
// synchronization frequency.
func FatTreeWithTrunk(eng *sim.Engine, k int, rate float64, prop, coreProp sim.Time) *Network {
	if k < 2 || k%2 != 0 {
		panic("topo: fat-tree arity must be even and >= 2")
	}
	n := &Network{Eng: eng, LinkRate: rate, PropDelay: prop}
	half := k / 2

	newSwitch := func(name string) *simnet.Switch {
		sw := simnet.NewSwitch(eng, name)
		sw.PFC = simnet.DefaultPFC
		n.Switches = append(n.Switches, sw)
		return sw
	}

	edges := make([][]*simnet.Switch, k) // [pod][i]
	aggs := make([][]*simnet.Switch, k)  // [pod][i]
	cores := make([]*simnet.Switch, 0, half*half)

	for p := 0; p < k; p++ {
		edges[p] = make([]*simnet.Switch, half)
		aggs[p] = make([]*simnet.Switch, half)
		for i := 0; i < half; i++ {
			edges[p][i] = newSwitch(fmt.Sprintf("edge-p%d-%d", p, i))
			aggs[p][i] = newSwitch(fmt.Sprintf("agg-p%d-%d", p, i))
		}
	}
	for c := 0; c < half*half; c++ {
		cores = append(cores, newSwitch(fmt.Sprintf("core-%d", c)))
	}

	connect := func(a, b *simnet.Switch, d sim.Time) {
		pa := a.AddPort(rate, d)
		pb := b.AddPort(rate, d)
		simnet.Connect(pa, pb)
	}

	// Hosts to edge switches.
	hostID := 0
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				h := simnet.NewHost(eng, fmt.Sprintf("h%d", hostID), HostIP(hostID), rate, prop)
				pt := edges[p][i].AddPort(rate, prop)
				simnet.Connect(h.NIC, pt)
				n.Hosts = append(n.Hosts, h)
				hostID++
			}
		}
	}
	// Edge to aggregation (full mesh within pod).
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				connect(edges[p][i], aggs[p][j], prop)
			}
		}
	}
	// Aggregation to core: agg j in each pod connects to cores
	// j*half .. j*half+half-1.
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			for c := 0; c < half; c++ {
				connect(aggs[p][j], cores[j*half+c], coreProp)
			}
		}
	}

	// Partition domains: one per pod, one per core group. Core group j is
	// cores j*half..j*half+half-1, which attach to agg j of every pod — so
	// the only inter-domain links are the aggregation↔core trunks.
	for p := 0; p < k; p++ {
		d := make([]*simnet.Switch, 0, k)
		d = append(d, edges[p]...)
		d = append(d, aggs[p]...)
		n.Domains = append(n.Domains, d)
	}
	for j := 0; j < half; j++ {
		d := make([]*simnet.Switch, half)
		copy(d, cores[j*half:(j+1)*half])
		n.Domains = append(n.Domains, d)
	}

	buildRoutes(n)
	return n
}

// LeafSpine builds a two-tier Clos: leaves hold hostsPerLeaf servers each
// and connect to every spine. The oversubscription ratio is
// hostsPerLeaf/spines (1:1 when equal). Useful for experiments that need a
// flatter fabric or deliberate oversubscription.
func LeafSpine(eng *sim.Engine, leaves, spines, hostsPerLeaf int) *Network {
	return LeafSpineWith(eng, leaves, spines, hostsPerLeaf, DefaultLinkRate, DefaultPropDelay)
}

// LeafSpineWith is LeafSpine with explicit link parameters.
func LeafSpineWith(eng *sim.Engine, leaves, spines, hostsPerLeaf int, rate float64, prop sim.Time) *Network {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic("topo: leaf-spine dimensions must be positive")
	}
	n := &Network{Eng: eng, LinkRate: rate, PropDelay: prop}
	leafSw := make([]*simnet.Switch, leaves)
	for l := range leafSw {
		leafSw[l] = simnet.NewSwitch(eng, fmt.Sprintf("leaf-%d", l))
		leafSw[l].PFC = simnet.DefaultPFC
		n.Switches = append(n.Switches, leafSw[l])
	}
	for s := 0; s < spines; s++ {
		sp := simnet.NewSwitch(eng, fmt.Sprintf("spine-%d", s))
		sp.PFC = simnet.DefaultPFC
		n.Switches = append(n.Switches, sp)
		for _, lf := range leafSw {
			pa := lf.AddPort(rate, prop)
			pb := sp.AddPort(rate, prop)
			simnet.Connect(pa, pb)
		}
	}
	hostID := 0
	for _, lf := range leafSw {
		for j := 0; j < hostsPerLeaf; j++ {
			h := simnet.NewHost(eng, fmt.Sprintf("h%d", hostID), HostIP(hostID), rate, prop)
			pt := lf.AddPort(rate, prop)
			simnet.Connect(h.NIC, pt)
			n.Hosts = append(n.Hosts, h)
			hostID++
		}
	}
	buildRoutes(n)
	return n
}

// Partition splits the network into one logical process per switch for a
// conservative parallel run: each switch — and every host hanging off it —
// becomes one LP of par, so the only cross-LP links are switch↔switch trunks.
// That makes the partition's lookahead the minimum trunk propagation delay,
// which Partition computes, hands to par.Finalize, and returns (0 when the
// topology has a single switch and thus no cross-LP links at all).
//
// The assignment is a pure function of the topology — LP i is switch i in
// build order — never of par's worker count, which is what makes results
// byte-identical across worker counts (see DESIGN.md §9). Switch weights
// (ports plus attached hosts) are handed to par.SetLPWeights so the
// LP→worker plan balances loaded leaves against bare spines — weights steer
// only which worker runs an LP, never what the LP computes, so they cannot
// perturb results. Call it on a freshly built network, with a fresh
// Parallel, before any traffic or timers exist; the network's original
// engine is disconnected so stray scheduling on it fails loudly instead of
// silently never running.
func (n *Network) Partition(par *sim.Parallel) sim.Time {
	if par.NumLPs() != 0 {
		panic("topo: Partition requires a fresh Parallel")
	}
	lps := make([]*sim.Engine, len(n.Switches))
	idx := make(map[*simnet.Switch]int, len(n.Switches))
	weights := make([]float64, len(n.Switches))
	for i, sw := range n.Switches {
		lps[i] = par.AddLP()
		idx[sw] = i
		sw.Rebind(lps[i])
		weights[i] = float64(len(sw.Ports))
	}
	for _, h := range n.Hosts {
		i := idx[n.LeafOf(h)]
		h.Rebind(lps[i])
		weights[i]++ // the host's NIC/stack load rides on its leaf's LP
	}
	var la sim.Time
	for _, sw := range n.Switches {
		for _, pt := range sw.Ports {
			if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
				if la == 0 || pt.PropDelay < la {
					la = pt.PropDelay
				}
			}
		}
	}
	par.SetLPWeights(weights)
	par.Finalize(la)
	n.Eng = nil
	return la
}

// PartitionPods splits the network into one logical process per partition
// domain (Network.Domains): every switch of a domain, and every host behind
// one, lands on the same LP. On a fat-tree that means k pod LPs plus k/2
// core-group LPs, with only the aggregation↔core trunks crossing LPs — far
// fewer cross-LP messages and a lookahead set by the (typically longer)
// trunk propagation delay instead of the shortest link anywhere.
//
// Like Partition, the assignment is a pure function of the topology: LP i is
// domain i in build order, regardless of par's worker count, so results stay
// byte-identical across worker counts. Domain weights (ports plus attached
// hosts) are handed to par.SetLPWeights so the LP→worker plan balances the
// heavyweight pod LPs against the lighter core groups. Falls back to the
// per-switch Partition when the topology declares no domains.
func (n *Network) PartitionPods(par *sim.Parallel) sim.Time {
	if len(n.Domains) == 0 {
		return n.Partition(par)
	}
	if par.NumLPs() != 0 {
		panic("topo: PartitionPods requires a fresh Parallel")
	}
	lps := make([]*sim.Engine, len(n.Domains))
	dom := make(map[*simnet.Switch]int, len(n.Switches))
	for d, sws := range n.Domains {
		lps[d] = par.AddLP()
		for _, sw := range sws {
			if _, dup := dom[sw]; dup {
				panic("topo: switch appears in two partition domains")
			}
			dom[sw] = d
			sw.Rebind(lps[d])
		}
	}
	if len(dom) != len(n.Switches) {
		panic("topo: Domains must cover every switch")
	}
	weights := make([]float64, len(n.Domains))
	for _, sw := range n.Switches {
		weights[dom[sw]] += float64(len(sw.Ports))
	}
	for _, h := range n.Hosts {
		d := dom[n.LeafOf(h)]
		h.Rebind(lps[d])
		weights[d]++ // the host's NIC/stack load rides on its leaf's LP
	}
	var la sim.Time
	for _, sw := range n.Switches {
		for _, pt := range sw.Ports {
			psw, ok := pt.Peer.Dev.(*simnet.Switch)
			if !ok || dom[psw] == dom[sw] {
				continue
			}
			if la == 0 || pt.PropDelay < la {
				la = pt.PropDelay
			}
		}
	}
	par.SetLPWeights(weights)
	par.Finalize(la)
	n.Eng = nil
	return la
}

// linkUp reports whether pt is a usable edge: both ends of the link (and
// the devices behind them) alive. During the initial topology build nothing
// is down and every edge qualifies.
func linkUp(pt *simnet.Port) bool {
	if pt.Down() || pt.Peer == nil || pt.Peer.Down() {
		return false
	}
	if psw, ok := pt.Peer.Dev.(*simnet.Switch); ok && psw.Crashed() {
		return false
	}
	return true
}

// buildRoutes computes shortest-path ECMP FIB entries for every host
// destination via BFS across the switch graph. Both the distance field and
// the resulting (switch, port) route set depend only on the host's leaf
// (and whether its access link is up), so hosts sharing a leaf compute them
// once and install the shared per-switch port sets with one map write per
// switch — on a fat-tree that divides the route-build cost by the
// hosts-per-leaf count and makes the replay allocation-free, which is what
// keeps the 1024-host topology's setup cheap. Only the leaf's direct route
// to the host itself differs per host.
func buildRoutes(n *Network) {
	// Map each switch to an index for the BFS arrays.
	idx := make(map[*simnet.Switch]int, len(n.Switches))
	for i, sw := range n.Switches {
		idx[sw] = i
	}
	type distKey struct {
		leaf *simnet.Switch
		up   bool
	}
	type swRoutes struct {
		sw    int   // switch index
		ports []int // ECMP egress ports toward the leaf, FIB order, len == cap
	}
	type leafRoutes struct {
		reachable bool // the leaf itself is up and routable
		routes    []swRoutes
	}
	cache := make(map[distKey]*leafRoutes)
	for _, h := range n.Hosts {
		leaf, ok := h.NIC.Peer.Dev.(*simnet.Switch)
		if !ok {
			continue
		}
		key := distKey{leaf, !leaf.Crashed() && linkUp(h.NIC)}
		lr, cached := cache[key]
		if !cached {
			dist := make([]int, len(n.Switches))
			for i := range dist {
				dist[i] = -1
			}
			if key.up {
				dist[idx[leaf]] = 0
			}
			queue := []*simnet.Switch{leaf}
			for len(queue) > 0 {
				sw := queue[0]
				queue = queue[1:]
				d := dist[idx[sw]]
				if d == -1 {
					continue
				}
				for _, pt := range sw.Ports {
					peer, ok := pt.Peer.Dev.(*simnet.Switch)
					if !ok || !linkUp(pt) {
						continue
					}
					if dist[idx[peer]] == -1 {
						dist[idx[peer]] = d + 1
						queue = append(queue, peer)
					}
				}
			}
			// Every non-leaf switch routes toward the leaf via ports whose
			// switch peer is one hop closer. The per-switch port set is
			// frozen with len == cap so every host behind this leaf can
			// share it (see Switch.SetRoutes).
			lr = &leafRoutes{reachable: dist[idx[leaf]] == 0}
			for i, sw := range n.Switches {
				if sw == leaf {
					continue
				}
				d := dist[i]
				if d == -1 {
					continue
				}
				var ports []int
				for _, pt := range sw.Ports {
					peer, ok := pt.Peer.Dev.(*simnet.Switch)
					if !ok || !linkUp(pt) {
						continue
					}
					if dist[idx[peer]] == d-1 {
						ports = append(ports, pt.ID)
					}
				}
				if len(ports) > 0 {
					ports = ports[:len(ports):len(ports)]
					lr.routes = append(lr.routes, swRoutes{sw: i, ports: ports})
				}
			}
			cache[key] = lr
		}
		if !lr.reachable {
			continue // host unreachable: its access link or leaf is dead
		}
		// The leaf routes directly to the host port; everything else replays
		// the memoized route set for this leaf.
		for _, pt := range leaf.Ports {
			if pt.Peer.Dev == simnet.Device(h) {
				leaf.AddRoute(h.IP, pt.ID)
			}
		}
		for _, rt := range lr.routes {
			n.Switches[rt.sw].SetRoutes(h.IP, rt.ports)
		}
	}
}

// RebuildRoutes recomputes every switch's ECMP FIB from the current fault
// state, excluding down links and crashed switches. It is the route-repair
// step of the recovery pipeline: after it runs, unicast fallback traffic and
// freshly registered MDTs avoid dead elements. Hosts with no surviving path
// get no FIB entries; forwarding to them panics, so callers should exclude
// unreachable members before sending.
func (n *Network) RebuildRoutes() {
	for _, sw := range n.Switches {
		sw.ResetFIB()
	}
	buildRoutes(n)
}

// PathExists reports whether a usable path currently connects hosts a and b
// under the fault state (down links, crashed switches). The recovery layer
// consults it before sending unicast traffic or re-registering a group, so
// a dead destination never drives forwarding into a routeless FIB.
func (n *Network) PathExists(a, b *simnet.Host) bool {
	if a == b {
		return true
	}
	if !linkUp(a.NIC) || !linkUp(b.NIC) {
		return false
	}
	aLeaf, ok := a.NIC.Peer.Dev.(*simnet.Switch)
	if !ok || aLeaf.Crashed() {
		return false
	}
	bLeaf, ok := b.NIC.Peer.Dev.(*simnet.Switch)
	if !ok || bLeaf.Crashed() {
		return false
	}
	if aLeaf == bLeaf {
		return true
	}
	seen := map[*simnet.Switch]bool{aLeaf: true}
	queue := []*simnet.Switch{aLeaf}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		for _, pt := range sw.Ports {
			peer, ok := pt.Peer.Dev.(*simnet.Switch)
			if !ok || !linkUp(pt) || seen[peer] {
				continue
			}
			if peer == bLeaf {
				return true
			}
			seen[peer] = true
			queue = append(queue, peer)
		}
	}
	return false
}
