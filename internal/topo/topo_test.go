package topo

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestTestbedWiring(t *testing.T) {
	eng := sim.New(1)
	n := Testbed(eng, 4)
	if len(n.Hosts) != 4 || len(n.Switches) != 1 {
		t.Fatalf("testbed has %d hosts, %d switches", len(n.Hosts), len(n.Switches))
	}
	for i, h := range n.Hosts {
		if h.IP != HostIP(i) {
			t.Errorf("host %d IP = %v", i, h.IP)
		}
		if n.LeafOf(h) != n.Switches[0] {
			t.Errorf("host %d not on the ToR", i)
		}
	}
}

func TestHostByIP(t *testing.T) {
	eng := sim.New(1)
	n := Testbed(eng, 4)
	if n.HostByIP(HostIP(2)) != n.Hosts[2] {
		t.Fatal("HostByIP lookup failed")
	}
	if n.HostByIP(simnet.Addr(1)) != nil {
		t.Fatal("bogus IP resolved to a host")
	}
	if n.HostByIP(HostIP(4)) != nil {
		t.Fatal("out-of-range IP resolved to a host")
	}
}

func TestFatTreeShape(t *testing.T) {
	eng := sim.New(1)
	k := 4
	n := FatTree(eng, k)
	if want := k * k * k / 4; len(n.Hosts) != want {
		t.Fatalf("hosts = %d, want %d", len(n.Hosts), want)
	}
	if want := k*k + k*k/4; len(n.Switches) != want {
		t.Fatalf("switches = %d, want %d", len(n.Switches), want)
	}
	// Edge and agg switches have k ports, cores have k ports.
	for _, sw := range n.Switches {
		if sw.NumPorts() != k {
			t.Fatalf("%s has %d ports, want %d", sw.Name, sw.NumPorts(), k)
		}
	}
}

func TestFatTreeOddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd arity did not panic")
		}
	}()
	FatTree(sim.New(1), 3)
}

func deliver(t *testing.T, n *Network, from, to int) sim.Time {
	t.Helper()
	eng := n.Eng
	var at sim.Time = -1
	n.Hosts[to].Handler = func(p *simnet.Packet) { at = eng.Now() }
	start := eng.Now()
	n.Hosts[from].Send(&simnet.Packet{Type: simnet.Data, Src: HostIP(from), Dst: HostIP(to), Payload: 64})
	eng.Run()
	if at < 0 {
		t.Fatalf("packet %d->%d not delivered", from, to)
	}
	return at - start
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	eng := sim.New(1)
	n := FatTree(eng, 4)
	for from := 0; from < len(n.Hosts); from++ {
		for to := 0; to < len(n.Hosts); to++ {
			if from == to {
				continue
			}
			deliver(t, n, from, to)
		}
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	eng := sim.New(1)
	n := FatTree(eng, 4)
	// Same edge switch: host -> edge -> host = 2 links.
	dSame := deliver(t, n, 0, 1)
	// Same pod, different edge: 4 links.
	dPod := deliver(t, n, 0, 2)
	// Different pod: 6 links.
	dFar := deliver(t, n, 0, 4)
	if !(dSame < dPod && dPod < dFar) {
		t.Fatalf("hop-count ordering violated: same-edge %v, same-pod %v, cross-pod %v", dSame, dPod, dFar)
	}
	txPlusProp := n.Hosts[0].NIC.TxTime(64+simnet.WireOverhead) + DefaultPropDelay
	if want := 2 * txPlusProp; dSame != want {
		t.Fatalf("same-edge latency %v, want %v", dSame, want)
	}
	if want := 6 * txPlusProp; dFar != want {
		t.Fatalf("cross-pod latency %v, want %v", dFar, want)
	}
}

func TestFatTreeECMPPresence(t *testing.T) {
	eng := sim.New(1)
	n := FatTree(eng, 4)
	// An edge switch should have 2 equal-cost uplinks toward a host in a
	// different pod.
	leaf := n.LeafOf(n.Hosts[0])
	far := HostIP(len(n.Hosts) - 1)
	if got := len(leaf.FIB[far]); got != 2 {
		t.Fatalf("edge switch has %d ECMP uplinks to cross-pod host, want 2", got)
	}
	// And exactly 1 port toward its own directly connected host.
	if got := len(leaf.FIB[HostIP(0)]); got != 1 {
		t.Fatalf("edge switch has %d routes to local host, want 1", got)
	}
}

func TestFatTree16Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("k=16 build is slow in -short mode")
	}
	eng := sim.New(1)
	n := FatTree(eng, 16)
	if len(n.Hosts) != 1024 {
		t.Fatalf("k=16 fat-tree has %d hosts, want 1024", len(n.Hosts))
	}
	deliver(t, n, 0, 1023)
}

func TestLeafSpineShape(t *testing.T) {
	eng := sim.New(1)
	n := LeafSpine(eng, 4, 2, 8) // 2:1 oversubscribed
	if len(n.Hosts) != 32 || len(n.Switches) != 6 {
		t.Fatalf("hosts=%d switches=%d", len(n.Hosts), len(n.Switches))
	}
	// Cross-leaf traffic has 2 ECMP spines.
	leaf := n.LeafOf(n.Hosts[0])
	if got := len(leaf.FIB[HostIP(31)]); got != 2 {
		t.Fatalf("ECMP width %d, want 2 spines", got)
	}
}

func TestLeafSpineAllPairs(t *testing.T) {
	eng := sim.New(1)
	n := LeafSpine(eng, 3, 3, 2)
	for from := 0; from < len(n.Hosts); from++ {
		deliver(t, n, from, (from+3)%len(n.Hosts))
	}
}

func TestPartitionAssignment(t *testing.T) {
	eng := sim.New(1)
	n := FatTree(eng, 4)
	par := sim.NewParallel(1, 4)
	defer par.Close()
	la := n.Partition(par)
	if par.NumLPs() != len(n.Switches) {
		t.Fatalf("LPs = %d, want one per switch (%d)", par.NumLPs(), len(n.Switches))
	}
	if la != DefaultPropDelay {
		t.Fatalf("lookahead = %v, want trunk prop delay %v", la, DefaultPropDelay)
	}
	if n.Eng != nil {
		t.Fatal("Partition left the original engine attached")
	}
	// Every switch owns its own LP; every host lives in its leaf's LP.
	for i, sw := range n.Switches {
		if sw.Engine() != par.LP(i) {
			t.Fatalf("switch %s not on LP %d", sw.Name, i)
		}
	}
	for _, h := range n.Hosts {
		if h.Engine() != n.LeafOf(h).Engine() {
			t.Fatalf("host %s not co-located with its leaf", h.Name)
		}
	}
}

func TestPartitionTestbedSingleLP(t *testing.T) {
	eng := sim.New(1)
	n := Testbed(eng, 4)
	par := sim.NewParallel(1, 2)
	defer par.Close()
	if la := n.Partition(par); la != 0 {
		t.Fatalf("single-switch lookahead = %v, want 0 (no cross-LP links)", la)
	}
	if par.NumLPs() != 1 {
		t.Fatalf("LPs = %d, want 1", par.NumLPs())
	}
}

// TestPartitionDelivery runs a cross-pod packet through the partitioned
// fabric and checks the arrival time matches the sequential model exactly:
// cross-LP handoff must add zero virtual latency.
func TestPartitionDelivery(t *testing.T) {
	n := FatTree(sim.New(1), 4)
	par := sim.NewParallel(1, 4)
	defer par.Close()
	n.Partition(par)
	from, to := 0, 4 // different pods: 6 links
	var at sim.Time = -1
	dstEng := n.Hosts[to].Engine()
	n.Hosts[to].Handler = func(p *simnet.Packet) { at = dstEng.Now() }
	n.Hosts[from].Send(&simnet.Packet{Type: simnet.Data, Src: HostIP(from), Dst: HostIP(to), Payload: 64})
	par.Run(sim.Second, nil)
	txPlusProp := n.Hosts[from].NIC.TxTime(64+simnet.WireOverhead) + DefaultPropDelay
	if want := 6 * txPlusProp; at != want {
		t.Fatalf("cross-pod latency %v, want %v", at, want)
	}
}

func TestLeafSpineBadDimensionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero spines accepted")
		}
	}()
	LeafSpine(sim.New(1), 2, 0, 4)
}
