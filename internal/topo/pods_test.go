package topo

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestFatTreeDomains pins the shape of the fat-tree's partition domains:
// one per pod (its k/2 edges and k/2 aggs, in build order) followed by one
// per core group (the k/2 cores attached to agg j of every pod), covering
// every switch exactly once.
func TestFatTreeDomains(t *testing.T) {
	eng := sim.New(1)
	k := 4
	half := k / 2
	n := FatTree(eng, k)
	if want := k + half; len(n.Domains) != want {
		t.Fatalf("domains = %d, want %d", len(n.Domains), want)
	}
	seen := make(map[*simnet.Switch]int)
	for d, sws := range n.Domains {
		want := k // pod: k/2 edges + k/2 aggs
		if d >= k {
			want = half // core group
		}
		if len(sws) != want {
			t.Errorf("domain %d has %d switches, want %d", d, len(sws), want)
		}
		for _, sw := range sws {
			if prev, dup := seen[sw]; dup {
				t.Errorf("%s in domains %d and %d", sw.Name, prev, d)
			}
			seen[sw] = d
		}
	}
	if len(seen) != len(n.Switches) {
		t.Fatalf("domains cover %d switches, topology has %d", len(seen), len(n.Switches))
	}
	// Inter-domain links must all be agg↔core trunks: an edge switch's
	// switch-peers live in its own domain.
	for d, sws := range n.Domains {
		for _, sw := range sws {
			for _, pt := range sw.Ports {
				psw, ok := pt.Peer.Dev.(*simnet.Switch)
				if !ok || seen[psw] == d {
					continue
				}
				if d < k == (seen[psw] < k) {
					t.Errorf("cross-domain link %s↔%s joins two domains of the same tier", sw.Name, psw.Name)
				}
			}
		}
	}
}

// TestPartitionPodsColocation: every switch lands on its domain's LP (LP i =
// domain i, in build order) and every host lands on its leaf's LP.
func TestPartitionPodsColocation(t *testing.T) {
	eng := sim.New(1)
	n := FatTree(eng, 4)
	par := sim.NewParallel(1, 1)
	la := n.PartitionPods(par)
	if par.NumLPs() != len(n.Domains) {
		t.Fatalf("NumLPs = %d, want %d", par.NumLPs(), len(n.Domains))
	}
	if la != DefaultPropDelay {
		t.Fatalf("lookahead = %v, want %v", la, DefaultPropDelay)
	}
	for d, sws := range n.Domains {
		for _, sw := range sws {
			if sw.Engine().LP() != d {
				t.Errorf("%s on LP %d, want domain %d", sw.Name, sw.Engine().LP(), d)
			}
		}
	}
	for _, h := range n.Hosts {
		if h.Engine().LP() != n.LeafOf(h).Engine().LP() {
			t.Errorf("host %s on LP %d, leaf %s on LP %d",
				h.Name, h.Engine().LP(), n.LeafOf(h).Name, n.LeafOf(h).Engine().LP())
		}
	}
}

// TestPartitionPodsDeterministicNumbering: the LP assignment is a pure
// function of the topology, never of the worker count.
func TestPartitionPodsDeterministicNumbering(t *testing.T) {
	assign := func(workers int) map[string]int {
		eng := sim.New(1)
		n := FatTree(eng, 4)
		par := sim.NewParallel(1, workers)
		n.PartitionPods(par)
		m := make(map[string]int)
		for _, sw := range n.Switches {
			m[sw.Name] = sw.Engine().LP()
		}
		return m
	}
	ref := assign(1)
	for _, w := range []int{2, 4, 8} {
		got := assign(w)
		for name, lp := range ref {
			if got[name] != lp {
				t.Fatalf("workers=%d: %s on LP %d, want %d", w, name, got[name], lp)
			}
		}
	}
}

// TestPartitionPodsTrunkLookahead: with longer core trunks, the cross-LP
// lookahead is exactly the trunk delay — every shorter link is intra-LP —
// and it can never be below the minimum inter-domain propagation delay.
func TestPartitionPodsTrunkLookahead(t *testing.T) {
	eng := sim.New(1)
	coreProp := 3 * DefaultPropDelay
	n := FatTreeWithTrunk(eng, 4, DefaultLinkRate, DefaultPropDelay, coreProp)
	par := sim.NewParallel(1, 1)
	la := n.PartitionPods(par)
	if la != coreProp {
		t.Fatalf("lookahead = %v, want trunk delay %v", la, coreProp)
	}
}

// TestPartitionPodsFallback: a topology without declared domains partitions
// per switch, exactly as Partition would.
func TestPartitionPodsFallback(t *testing.T) {
	eng := sim.New(1)
	n := LeafSpine(eng, 2, 2, 4)
	if n.Domains != nil {
		t.Fatal("leaf-spine unexpectedly declares domains")
	}
	par := sim.NewParallel(1, 1)
	la := n.PartitionPods(par)
	if par.NumLPs() != len(n.Switches) {
		t.Fatalf("fallback NumLPs = %d, want per-switch %d", par.NumLPs(), len(n.Switches))
	}
	if la != DefaultPropDelay {
		t.Fatalf("fallback lookahead = %v, want %v", la, DefaultPropDelay)
	}
}
