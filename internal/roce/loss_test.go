package roce

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestGoBackNLossSweepBound drives go-back-N through sustained iid wire loss
// at rates up to the 5% gray-failure ceiling and checks the analytic
// retransmission bounds: every dropped data frame forces at least one
// retransmission (R >= D), and each recovery event — a NACK rewind tied to a
// drop or an RTO — resends at most one window (R <= (D + timeouts) * W).
func TestGoBackNLossSweepBound(t *testing.T) {
	for _, p := range []float64{0.01, 0.03, 0.05} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("p%.2f/seed%d", p, seed), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.WindowPkts = 64
				e := newPairEnv(t, cfg)
				e.net.Hosts[0].NIC.SetImpairment(simnet.Impairment{LossRate: p}, seed)
				var got *Message
				e.qb.OnMessage = func(m Message) { got = &m }
				size := cfg.MTU * 2000
				e.qa.PostSend(size, nil)
				e.eng.RunUntil(sim.Second)
				if got == nil || got.Size != size {
					t.Fatalf("transfer under %.0f%% loss incomplete: %+v", p*100, got)
				}
				drops := e.net.Hosts[0].NIC.Stats.ImpairDrops
				if drops == 0 {
					t.Fatal("impairment never fired; test is vacuous")
				}
				retx := e.ra.Stats.Retransmits
				if retx < drops {
					t.Fatalf("R=%d < D=%d: a dropped frame was never resent", retx, drops)
				}
				if limit := (drops + e.ra.Stats.Timeouts) * uint64(cfg.WindowPkts); retx > limit {
					t.Fatalf("R=%d exceeds (D=%d + timeouts=%d) * W=%d = %d",
						retx, drops, e.ra.Stats.Timeouts, cfg.WindowPkts, limit)
				}
				// The observed loss fraction should sit near the configured
				// rate; a generous 3x band keeps the seeded draw stable.
				frac := float64(drops) / float64(e.ra.Stats.DataSent)
				if frac < p/3 || frac > 3*p {
					t.Fatalf("observed loss %.4f far from configured %.4f", frac, p)
				}
			})
		}
	}
}

// TestNackRewindAckRaceDoesNotWedge reproduces a wedge found by the gray
// chaos soak: a NACK rewinds sndNxt, then the cumulative ACK for the NACKed
// range (which was delayed in flight, not lost) lands before the rewound
// packets are re-emitted. sndUna jumps past sndNxt, the unsigned in-flight
// count underflows, and — with everything acknowledged — the RTO stops, so
// the QP is permanently dormant: the next PostSend never transmits.
func TestNackRewindAckRaceDoesNotWedge(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	blackhole := true
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		return blackhole
	})
	// Get a 4-packet window fully emitted but unacknowledged.
	e.qa.PostSend(cfg.MTU*4, nil)
	e.eng.RunUntil(100 * sim.Microsecond)
	if e.qa.maxSent != 4 || e.qa.sndUna != 0 {
		t.Fatalf("setup: maxSent=%d sndUna=%d, want 4/0", e.qa.maxSent, e.qa.sndUna)
	}
	// The receiver NACKs expecting PSN 2; the requester rewinds sndNxt.
	nack := simnet.NewPacket()
	nack.Type, nack.PSN = simnet.Nack, 2
	e.qa.handle(nack)
	if e.qa.sndNxt != 2 {
		t.Fatalf("NACK rewind: sndNxt=%d, want 2", e.qa.sndNxt)
	}
	// Before the rewound range re-emits, the in-flight tail 2..3 arrives
	// after all and its cumulative ACK lands: everything is acknowledged.
	ack := simnet.NewPacket()
	ack.Type, ack.PSN = simnet.Ack, 3
	e.qa.handle(ack)
	if e.qa.sndUna != 4 {
		t.Fatalf("cumulative ACK: sndUna=%d, want 4", e.qa.sndUna)
	}
	if e.qa.sndNxt < e.qa.sndUna {
		t.Fatalf("invariant broken: sndNxt=%d < sndUna=%d", e.qa.sndNxt, e.qa.sndUna)
	}
	// Align the responder with the acknowledgements injected on its behalf,
	// reopen the wire, and post again: the QP must transmit, not sleep.
	e.qb.SetRqPSN(4)
	blackhole = false
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostSend(cfg.MTU*2, nil)
	e.eng.Run()
	if got == nil || got.Size != cfg.MTU*2 {
		t.Fatalf("post-race message never delivered (QP wedged): %+v", got)
	}
}

// TestRetxBackoffGrowsAndResets exercises the opt-in exponential RTO backoff:
// consecutive timeouts with zero progress double the RTO up to the cap, and
// the first cumulative-ACK progress snaps it back to the configured base.
func TestRetxBackoffGrowsAndResets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetxBackoff = 2
	cfg.RetxBackoffMax = 4 * cfg.RetxTimeout
	e := newPairEnv(t, cfg)
	blackhole := true
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		return blackhole && p.Type == simnet.Data
	})
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostSend(100, nil)
	e.eng.RunUntil(20 * sim.Millisecond)
	if e.ra.Stats.Timeouts == 0 {
		t.Fatal("no RTO fired under a data black hole")
	}
	if e.qa.curRTO != cfg.RetxBackoffMax {
		t.Fatalf("curRTO = %v after sustained timeouts, want cap %v", e.qa.curRTO, cfg.RetxBackoffMax)
	}
	// Backed-off RTO means far fewer timeouts than the fixed 500us schedule
	// (which would fire ~40 times in 20ms); 0.5+1+2+2+... fires ~11 times.
	if e.ra.Stats.Timeouts > 15 {
		t.Fatalf("%d timeouts in 20ms; backoff not applied", e.ra.Stats.Timeouts)
	}
	blackhole = false
	e.eng.Run()
	if got == nil {
		t.Fatal("message never recovered after the black hole lifted")
	}
	if e.qa.curRTO != 0 {
		t.Fatalf("curRTO = %v after progress, want reset to 0", e.qa.curRTO)
	}
}

// TestRetxBackoffDefaultOff pins the default behavior: with RetxBackoff unset
// the RTO stays at the fixed configured timeout, byte-identical to the
// pre-backoff golden traces.
func TestRetxBackoffDefaultOff(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	dropped := false
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		if p.Type == simnet.Data && p.Last && !dropped {
			dropped = true
			return true
		}
		return false
	})
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostSend(cfg.MTU*3, nil)
	e.eng.Run()
	if got == nil || e.ra.Stats.Timeouts == 0 {
		t.Fatal("RTO recovery path untested")
	}
	if e.qa.curRTO != 0 {
		t.Fatalf("curRTO = %v with backoff disabled, want 0 always", e.qa.curRTO)
	}
}
