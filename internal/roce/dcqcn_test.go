package roce

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// dcqcnEnv: two senders share one receiver's link through the ToR.
func TestDCQCNFairConvergence(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 3)
	cfg := DefaultConfig()
	cfg.DCQCN = true
	cfg.WindowPkts = 256
	r0 := NewRNIC(n.Hosts[0], cfg)
	r1 := NewRNIC(n.Hosts[1], cfg)
	r2 := NewRNIC(n.Hosts[2], cfg)
	q0 := r0.CreateQP()
	q1 := r1.CreateQP()
	d0 := r2.CreateQP()
	d1 := r2.CreateQP()
	q0.Connect(n.Hosts[2].IP, d0.QPN)
	q1.Connect(n.Hosts[2].IP, d1.QPN)
	// Long-running transfers: keep posting.
	var post0, post1 func()
	post0 = func() { q0.PostSend(1<<20, post0) }
	post1 = func() { q1.PostSend(1<<20, post1) }
	post0()
	post1()

	eng.RunUntil(20 * sim.Millisecond)
	g0at20, g1at20 := d0.GoodputBytes, d1.GoodputBytes
	eng.RunUntil(40 * sim.Millisecond)
	// Measure over the second 20ms, after convergence.
	tput0 := float64(d0.GoodputBytes-g0at20) * 8 / 0.020 / 1e9
	tput1 := float64(d1.GoodputBytes-g1at20) * 8 / 0.020 / 1e9
	total := tput0 + tput1
	if total < 60 || total > 100 {
		t.Fatalf("aggregate %.1f Gbps; link under-utilized or oversubscribed", total)
	}
	ratio := tput0 / tput1
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair split: %.1f vs %.1f Gbps", tput0, tput1)
	}
	if r0.Stats.CNPsRecv == 0 && r1.Stats.CNPsRecv == 0 {
		t.Fatal("no CNPs received; congestion control never engaged")
	}
}

func TestDCQCNCutsOnCNP(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	cfg := DefaultConfig()
	cfg.DCQCN = true
	r0 := NewRNIC(n.Hosts[0], cfg)
	q0 := r0.CreateQP()
	q0.Connect(n.Hosts[1].IP, 2)
	line := n.LinkRate
	if q0.Rate() != line {
		t.Fatalf("initial rate %.0f, want line rate", q0.Rate())
	}
	q0.cc.onCNP()
	if q0.Rate() >= line {
		t.Fatal("rate did not decrease on CNP")
	}
	// alpha=1 at first CNP: cut should be half.
	if got := q0.Rate(); got < line*0.49 || got > line*0.51 {
		t.Fatalf("first cut to %.1f%% of line, want ~50%%", got/line*100)
	}
}

func TestDCQCNMinDecreaseInterval(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	cfg := DefaultConfig()
	cfg.DCQCN = true
	r0 := NewRNIC(n.Hosts[0], cfg)
	q0 := r0.CreateQP()
	q0.Connect(n.Hosts[1].IP, 2)
	q0.cc.onCNP()
	after1 := q0.Rate()
	q0.cc.onCNP() // immediately again: inside MinDecreaseNs
	if q0.Rate() != after1 {
		t.Fatal("second cut inside the 50us window was not suppressed")
	}
}

func TestDCQCNRecoversAfterCongestion(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	cfg := DefaultConfig()
	cfg.DCQCN = true
	r0 := NewRNIC(n.Hosts[0], cfg)
	r1 := NewRNIC(n.Hosts[1], cfg)
	q0 := r0.CreateQP()
	qd := r1.CreateQP()
	q0.Connect(n.Hosts[1].IP, qd.QPN)
	q0.cc.onCNP()
	cut := q0.Rate()
	// Keep traffic flowing so byte-counter increase events occur too.
	var repost func()
	repost = func() { q0.PostSend(1<<20, repost) }
	repost()
	eng.RunUntil(50 * sim.Millisecond)
	if q0.Rate() <= cut {
		t.Fatalf("rate %.1fG did not recover from cut %.1fG", q0.Rate()/1e9, cut/1e9)
	}
	if q0.Rate() > n.LinkRate {
		t.Fatal("rate exceeded line rate")
	}
}

func TestDCQCNAlphaDecays(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	cfg := DefaultConfig()
	cfg.DCQCN = true
	r0 := NewRNIC(n.Hosts[0], cfg)
	q0 := r0.CreateQP()
	q0.Connect(n.Hosts[1].IP, 2)
	q0.cc.onCNP()
	a0 := q0.cc.alpha
	eng.RunUntil(5 * sim.Millisecond)
	// The decay timer is virtual: ticks apply when the state is observed.
	q0.cc.catchUp()
	if q0.cc.alpha >= a0 {
		t.Fatalf("alpha %.4f did not decay from %.4f", q0.cc.alpha, a0)
	}
}
