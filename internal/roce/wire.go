package roce

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/simnet"
)

// Wire codec for the RoCEv2 headers the simulator models. The simulator
// moves typed Packet structs for speed, but the header layout matters for
// fidelity: Cepheus' connection bridging rewrites exactly these fields
// (dstQP, PSN, the WRITE RETH, and the IP addresses), and its feedback
// handling parses them. The codec round-trips every transport packet type
// through the same 24-bit wire PSN the BTH carries, so the virtual-PSN
// simplification (see psn.go) is exercised at the packet boundary.

// Opcode is the BTH opcode (RC subset used here).
type Opcode uint8

// RC opcodes (values follow the InfiniBand spec's RC opcode space).
const (
	OpSendOnly    Opcode = 0x04
	OpWriteFirst  Opcode = 0x06
	OpWriteMiddle Opcode = 0x07
	OpWriteLast   Opcode = 0x08
	OpWriteOnly   Opcode = 0x0A
	OpAcknowledge Opcode = 0x11
	OpCNP         Opcode = 0x81 // RoCEv2 CNP (reserved opcode space)
)

// Header sizes in bytes.
const (
	bthBytes  = 12
	aethBytes = 4
	rethBytes = 16
	ipv4Bytes = 20
	udpBytes  = 8
)

// AETH syndromes (top bits of the syndrome byte).
const (
	synAck  = 0x00
	synNack = 0x60 // PSN sequence error NAK
)

// WireHeader is the decoded transport header of a packet.
type WireHeader struct {
	Opcode Opcode
	Src    simnet.Addr
	Dst    simnet.Addr
	DstQP  uint32
	PSN    uint32 // 24-bit wire PSN
	AckReq bool

	// AETH (feedback packets)
	Nack bool

	// RETH (first/only WRITE packet)
	HasRETH bool
	VA      uint64
	RKey    uint32
	DMALen  uint32
}

// EncodeHeader serializes IPv4+UDP+BTH (+AETH/RETH) into buf and returns
// the number of bytes written. buf must have at least MaxHeaderBytes.
func EncodeHeader(buf []byte, h *WireHeader) int {
	// IPv4 (only the fields the data plane reads: src, dst).
	buf[0] = 0x45
	binary.BigEndian.PutUint32(buf[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(buf[16:20], uint32(h.Dst))
	// UDP: RoCEv2 destination port 4791.
	binary.BigEndian.PutUint16(buf[ipv4Bytes+2:], 4791)
	// BTH.
	b := buf[ipv4Bytes+udpBytes:]
	b[0] = byte(h.Opcode)
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], 0xFFFF) // pkey
	putUint24(b[5:8], h.DstQP)
	if h.AckReq {
		b[8] = 0x80
	} else {
		b[8] = 0
	}
	putUint24(b[9:12], h.PSN&psnMask)
	n := ipv4Bytes + udpBytes + bthBytes
	switch {
	case h.Opcode == OpAcknowledge:
		a := buf[n:]
		if h.Nack {
			a[0] = synNack
		} else {
			a[0] = synAck
		}
		putUint24(a[1:4], h.PSN&psnMask) // MSN mirror (diagnostic)
		n += aethBytes
	case h.HasRETH:
		r := buf[n:]
		binary.BigEndian.PutUint64(r[0:8], h.VA)
		binary.BigEndian.PutUint32(r[8:12], h.RKey)
		binary.BigEndian.PutUint32(r[12:16], h.DMALen)
		n += rethBytes
	}
	return n
}

// MaxHeaderBytes is the largest encoded header (IPv4+UDP+BTH+RETH).
const MaxHeaderBytes = ipv4Bytes + udpBytes + bthBytes + rethBytes

// DecodeHeader parses a header previously produced by EncodeHeader.
func DecodeHeader(buf []byte) (*WireHeader, error) {
	if len(buf) < ipv4Bytes+udpBytes+bthBytes {
		return nil, errors.New("roce: short header")
	}
	if buf[0]>>4 != 4 {
		return nil, fmt.Errorf("roce: not IPv4 (version %d)", buf[0]>>4)
	}
	h := &WireHeader{
		Src: simnet.Addr(binary.BigEndian.Uint32(buf[12:16])),
		Dst: simnet.Addr(binary.BigEndian.Uint32(buf[16:20])),
	}
	if port := binary.BigEndian.Uint16(buf[ipv4Bytes+2:]); port != 4791 {
		return nil, fmt.Errorf("roce: UDP port %d is not RoCEv2", port)
	}
	b := buf[ipv4Bytes+udpBytes:]
	h.Opcode = Opcode(b[0])
	h.DstQP = uint24(b[5:8])
	h.AckReq = b[8]&0x80 != 0
	h.PSN = uint24(b[9:12])
	n := ipv4Bytes + udpBytes + bthBytes
	switch {
	case h.Opcode == OpAcknowledge:
		if len(buf) < n+aethBytes {
			return nil, errors.New("roce: short AETH")
		}
		h.Nack = buf[n]&0xE0 == synNack
	case h.Opcode == OpWriteFirst || h.Opcode == OpWriteOnly:
		if len(buf) < n+rethBytes {
			return nil, errors.New("roce: short RETH")
		}
		r := buf[n:]
		h.HasRETH = true
		h.VA = binary.BigEndian.Uint64(r[0:8])
		h.RKey = binary.BigEndian.Uint32(r[8:12])
		h.DMALen = binary.BigEndian.Uint32(r[12:16])
	}
	return h, nil
}

// HeaderFor derives the wire header of a simulated packet. msgBytes is the
// message's total length (RETH DMALen); firstOfWrite marks the packet that
// carries the RETH.
func HeaderFor(p *simnet.Packet, msgBytes int) *WireHeader {
	h := &WireHeader{
		Src: p.Src, Dst: p.Dst, DstQP: p.DstQP,
		PSN: WirePSN(p.PSN), AckReq: p.Last,
	}
	switch p.Type {
	case simnet.Data:
		if p.WriteVA != 0 || p.WriteRKey != 0 {
			h.Opcode = OpWriteFirst
			if p.Last {
				h.Opcode = OpWriteOnly
			}
			h.HasRETH = true
			h.VA = p.WriteVA
			h.RKey = p.WriteRKey
			h.DMALen = uint32(msgBytes)
		} else {
			h.Opcode = OpSendOnly
		}
	case simnet.Ack:
		h.Opcode = OpAcknowledge
	case simnet.Nack:
		h.Opcode = OpAcknowledge
		h.Nack = true
	case simnet.CNP:
		h.Opcode = OpCNP
	}
	return h
}

func putUint24(b []byte, v uint32) {
	b[0] = byte(v >> 16)
	b[1] = byte(v >> 8)
	b[2] = byte(v)
}

func uint24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}
