// Package roce models the RoCE (RoCEv2) RC transport the paper relies on:
// queue pairs, PSN-stamped packetization, cumulative ACKs with coalescing,
// NACK-driven go-back-N retransmission, retransmission timeout, RDMA WRITE
// header fields, CNP generation on ECN, and DCQCN rate control. It is the
// commodity-RNIC stand-in the Cepheus accelerator must interoperate with
// (see DESIGN.md §1).
package roce

// RoCE PSNs are 24-bit sequence numbers that wrap. The simulator tracks
// *virtual* PSNs (uint64, never wrapping) so that minimum computations in
// the Cepheus MFT stay simple, and converts at the wire boundary with the
// helpers here. The reconstruction is exact as long as sender and receiver
// stay within half the PSN space of each other, which the RC window
// guarantees by construction.

// PSNSpace is the size of the 24-bit PSN space.
const PSNSpace = 1 << 24

// psnMask extracts the wire PSN.
const psnMask = PSNSpace - 1

// WirePSN narrows a virtual PSN to its 24-bit wire representation.
func WirePSN(v uint64) uint32 { return uint32(v & psnMask) }

// ReconstructPSN widens wire back to a virtual PSN, choosing the value
// congruent to wire (mod 2^24) nearest to ref. It inverts WirePSN for any
// offset within (-2^23, 2^23] of ref.
func ReconstructPSN(ref uint64, wire uint32) uint64 {
	w := uint64(wire & psnMask)
	base := ref &^ uint64(psnMask)
	cand := base | w
	// Three candidates: same epoch as ref, one below, one above.
	best := cand
	bestDist := dist(ref, cand)
	if cand >= PSNSpace {
		if d := dist(ref, cand-PSNSpace); d < bestDist {
			best, bestDist = cand-PSNSpace, d
		}
	}
	if d := dist(ref, cand+PSNSpace); d < bestDist {
		best = cand + PSNSpace
	}
	return best
}

func dist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// PSNLess compares two 24-bit wire PSNs using serial-number arithmetic
// (RFC 1982 style): a < b iff the forward distance from a to b is less than
// half the space.
func PSNLess(a, b uint32) bool {
	if a == b {
		return false
	}
	return (b-a)&psnMask < PSNSpace/2
}
