package roce

import (
	"testing"
	"testing/quick"
)

func TestWirePSN(t *testing.T) {
	if WirePSN(0) != 0 {
		t.Fatal("WirePSN(0)")
	}
	if WirePSN(PSNSpace) != 0 {
		t.Fatal("WirePSN(2^24) should wrap to 0")
	}
	if WirePSN(PSNSpace+5) != 5 {
		t.Fatal("WirePSN(2^24+5)")
	}
}

func TestReconstructExactAtRef(t *testing.T) {
	for _, ref := range []uint64{0, 1, 100, PSNSpace - 1, PSNSpace, 3 * PSNSpace / 2, 10 * PSNSpace} {
		if got := ReconstructPSN(ref, WirePSN(ref)); got != ref {
			t.Fatalf("ReconstructPSN(%d, wire) = %d", ref, got)
		}
	}
}

func TestReconstructAcrossWrap(t *testing.T) {
	ref := uint64(PSNSpace - 10)
	v := uint64(PSNSpace + 10) // 20 ahead, wire wraps to 10
	if got := ReconstructPSN(ref, WirePSN(v)); got != v {
		t.Fatalf("forward across wrap: got %d, want %d", got, v)
	}
	ref = uint64(PSNSpace + 10)
	v = uint64(PSNSpace - 10)
	if got := ReconstructPSN(ref, WirePSN(v)); got != v {
		t.Fatalf("backward across wrap: got %d, want %d", got, v)
	}
}

// Property: reconstruction inverts WirePSN for any offset within half the
// PSN space of the reference.
func TestReconstructProperty(t *testing.T) {
	f := func(refRaw uint64, deltaRaw int32) bool {
		ref := refRaw % (1 << 40)
		delta := int64(deltaRaw) % (PSNSpace / 2)
		v := int64(ref) + delta
		if v < 0 {
			return true // skip: virtual PSNs are non-negative
		}
		return ReconstructPSN(ref, WirePSN(uint64(v))) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPSNLess(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{psnMask, 0, true},  // wrap: 2^24-1 < 0
		{0, psnMask, false}, // and not the reverse
		{0, PSNSpace/2 - 1, true},
	}
	for _, c := range cases {
		if got := PSNLess(c.a, c.b); got != c.want {
			t.Errorf("PSNLess(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: PSNLess is antisymmetric for distinct wire PSNs outside the
// ambiguous half-space boundary.
func TestPSNLessAntisymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		a &= psnMask
		b &= psnMask
		if a == b {
			return !PSNLess(a, b) && !PSNLess(b, a)
		}
		if (b-a)&psnMask == PSNSpace/2 {
			return true // boundary is implementation-defined, skip
		}
		return PSNLess(a, b) != PSNLess(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
