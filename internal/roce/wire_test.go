package roce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func TestHeaderRoundTripData(t *testing.T) {
	h := &WireHeader{
		Opcode: OpSendOnly, Src: 0x0A000001, Dst: 0xE0000001,
		DstQP: 0x123456, PSN: 0xABCDEF, AckReq: true,
	}
	buf := make([]byte, MaxHeaderBytes)
	n := EncodeHeader(buf, h)
	got, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripWrite(t *testing.T) {
	h := &WireHeader{
		Opcode: OpWriteFirst, Src: 1, Dst: 2, DstQP: 7, PSN: 0,
		HasRETH: true, VA: 0xDEADBEEF00112233, RKey: 42, DMALen: 1 << 20,
	}
	buf := make([]byte, MaxHeaderBytes)
	n := EncodeHeader(buf, h)
	if n != MaxHeaderBytes {
		t.Fatalf("WRITE header %dB, want %d", n, MaxHeaderBytes)
	}
	got, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
}

func TestHeaderRoundTripAckNack(t *testing.T) {
	for _, nack := range []bool{false, true} {
		h := &WireHeader{Opcode: OpAcknowledge, Src: 9, Dst: 8, DstQP: 3, PSN: 77, Nack: nack}
		buf := make([]byte, MaxHeaderBytes)
		n := EncodeHeader(buf, h)
		got, err := DecodeHeader(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if got.Nack != nack {
			t.Fatalf("nack flag lost (want %v)", nack)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 4)); err == nil {
		t.Fatal("short buffer accepted")
	}
	buf := make([]byte, MaxHeaderBytes)
	buf[0] = 0x60 // IPv6 version nibble
	if _, err := DecodeHeader(buf); err == nil {
		t.Fatal("non-IPv4 accepted")
	}
	buf[0] = 0x45
	// UDP port stays zero -> not RoCEv2.
	if _, err := DecodeHeader(buf); err == nil {
		t.Fatal("non-RoCE UDP port accepted")
	}
}

// Property: encode/decode round-trips arbitrary headers, and the PSN on the
// wire combined with ReconstructPSN recovers the virtual PSN.
func TestHeaderRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(srcRaw, dstRaw, qpRaw uint32, psnRaw uint64, op uint8) bool {
		ops := []Opcode{OpSendOnly, OpWriteFirst, OpWriteOnly, OpAcknowledge, OpCNP}
		h := &WireHeader{
			Opcode: ops[int(op)%len(ops)],
			Src:    simnet.Addr(srcRaw), Dst: simnet.Addr(dstRaw),
			DstQP: qpRaw & 0xFFFFFF,
			PSN:   WirePSN(psnRaw % (1 << 40)),
		}
		if h.Opcode == OpWriteFirst || h.Opcode == OpWriteOnly {
			h.HasRETH = true
			h.VA = rng.Uint64()
			h.RKey = rng.Uint32()
			h.DMALen = rng.Uint32()
		}
		if h.Opcode == OpAcknowledge {
			h.Nack = rng.Intn(2) == 0
		}
		buf := make([]byte, MaxHeaderBytes)
		n := EncodeHeader(buf, h)
		got, err := DecodeHeader(buf[:n])
		if err != nil {
			return false
		}
		return *got == *h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFor(t *testing.T) {
	p := &simnet.Packet{Type: simnet.Data, Src: 1, Dst: 2, DstQP: 9, PSN: PSNSpace + 5,
		WriteVA: 0x100, WriteRKey: 3, Last: true}
	h := HeaderFor(p, 4096)
	if h.Opcode != OpWriteOnly || !h.HasRETH || h.DMALen != 4096 {
		t.Fatalf("WRITE mapping wrong: %+v", h)
	}
	if h.PSN != 5 {
		t.Fatalf("wire PSN %d, want wrapped 5", h.PSN)
	}
	n := HeaderFor(&simnet.Packet{Type: simnet.Nack, PSN: 7}, 0)
	if n.Opcode != OpAcknowledge || !n.Nack {
		t.Fatalf("NACK mapping wrong: %+v", n)
	}
	c := HeaderFor(&simnet.Packet{Type: simnet.CNP}, 0)
	if c.Opcode != OpCNP {
		t.Fatalf("CNP mapping wrong: %+v", c)
	}
}

// TestBridgingPreservesWireValidity: the exact rewrite Cepheus performs on
// a bridged copy (dst, dstQP, src, RETH) must produce a decodable header
// with the receiver's values — the connection-bridging contract of Fig 4.
func TestBridgingPreservesWireValidity(t *testing.T) {
	orig := &simnet.Packet{
		Type: simnet.Data, Src: 0x0A000001, Dst: 0xE0000001, DstQP: 1,
		PSN: 42, WriteVA: 0x1000, WriteRKey: 5,
	}
	bridged := orig.Clone()
	bridged.Dst = 0x0A000002
	bridged.DstQP = 77
	bridged.Src = 0xE0000001
	bridged.WriteVA = 0x2000
	bridged.WriteRKey = 9

	buf := make([]byte, MaxHeaderBytes)
	n := EncodeHeader(buf, HeaderFor(bridged, 8192))
	h, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.Dst != 0x0A000002 || h.DstQP != 77 || h.Src != 0xE0000001 {
		t.Fatalf("bridged addressing lost: %+v", h)
	}
	if h.VA != 0x2000 || h.RKey != 9 {
		t.Fatalf("bridged MR lost: %+v", h)
	}
}
