package roce

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// VirtualQPN is the reserved destination QPN (0x1) Cepheus assigns to the
// virtual remote connection of every QP in a multicast group (§III-A).
const VirtualQPN uint32 = 0x1

// WQE is a posted send work request.
type WQE struct {
	MsgID    uint64
	Size     int
	IsWrite  bool
	VA       uint64
	RKey     uint32
	IsReduce bool
	Value    float64
	FirstPSN uint64
	LastPSN  uint64

	// OnComplete fires when the whole message is acknowledged.
	OnComplete func()
}

// Message is a fully received, in-order message surfaced to the
// application.
type Message struct {
	MsgID uint64
	Size  int
	Src   simnet.Addr
	SrcQP uint32
	// WriteVA/WriteRKey echo the RETH of a WRITE message's first packet.
	WriteVA   uint64
	WriteRKey uint32

	// Value is the (aggregated) reduction value of a reduce message.
	Value float64
}

// QP is an RC queue pair. One struct holds both requester (send) and
// responder (receive) state, as on a real RNIC.
type QP struct {
	QPN    uint32
	DstIP  simnet.Addr
	DstQPN uint32

	// OnMessage delivers completed in-order messages (after the host-stack
	// delivery cost).
	OnMessage func(m Message)

	// GoodputBytes counts in-order accepted data payload at the responder
	// side; experiments sample it to plot throughput over time (Fig 14).
	GoodputBytes uint64

	// LatHist observes end-to-end delivery latency at the responder: the
	// gap between the requester stamping a data packet at emission and this
	// QP accepting it in order. Always on — Observe is allocation-free and
	// a handful of arithmetic ops per accepted packet.
	LatHist obs.Histogram

	// MsgLatHist observes per-message delivery latency: the gap between the
	// requester emitting the message's first data packet and this responder
	// accepting the last one in order. Unlike LatHist's per-packet transit
	// samples — which collapse to a single value on an uncongested paced
	// fabric — message latency grows with serialization, pacing, and
	// retransmission, so its percentiles spread across receivers and sizes.
	MsgLatHist obs.Histogram

	nic *RNIC
	eng *sim.Engine

	// ---- requester (sender) ----
	wqes    []*WQE
	tail    uint64 // next PSN to assign
	sndUna  uint64 // first unacknowledged PSN
	sndNxt  uint64 // next PSN to transmit (rewinds on go-back-N)
	maxSent uint64 // highest PSN+1 ever transmitted

	nextTx        sim.Time
	sendScheduled bool
	rto           *sim.Timer
	rtoAt         sim.Time // logical retransmission deadline (0: stopped)
	rtoArmedAt    sim.Time // when the physical rto timer fires (0: unarmed)
	emitT         *sim.Timer
	curRTO        sim.Time // backed-off timeout (0: Cfg.RetxTimeout)
	lastRewindE   uint64
	lastRewindAt  sim.Time
	cc            *dcqcn
	rtq           []uint64 // IRN: PSNs awaiting selective retransmission
	backpressured bool     // parked on NIC backpressure (see RNIC.defer1)

	// ---- responder (receiver) ----
	rqPSN       uint64 // expected PSN
	sinceAck    int
	ackDue      bool
	nackPending bool
	curBytes    int
	curVA       uint64
	curRKey     uint32
	curValue    float64
	msgStamp    sim.Time // emission stamp of the current message's first packet
	lastCNP     sim.Time

	// IRN responder state: buffered out-of-order packets and NACK dedup.
	ooo           map[uint64]oooPkt
	lastNackedPSN uint64
	lastNackedAt  sim.Time

	// Group-stats cell caches (nil while attribution is off or the flow is
	// unicast): gsRx is the receive-side cell keyed by the arriving
	// packet's source, gsTx the send-side cell keyed by DstIP. Caching the
	// cell pointer keeps per-packet attribution to a few field adds.
	gsRx    *obs.GroupCell
	gsRxSrc simnet.Addr
	gsTx    *obs.GroupCell
}

// oooPkt is an out-of-order packet buffered by an IRN responder until the
// sequence gap closes.
type oooPkt struct {
	payload int
	last    bool
	msgID   uint64
	va      uint64
	rkey    uint32
	value   float64
	stamp   sim.Time
}

func newQP(r *RNIC, qpn uint32) *QP {
	qp := &QP{
		QPN: qpn, nic: r, eng: r.eng,
		lastCNP: -1 << 60, lastRewindAt: -1 << 60,
		lastNackedPSN: ^uint64(0), lastNackedAt: -1 << 60,
	}
	// One re-armable RTO and one emission timer per QP for the connection's
	// lifetime: re-arming on every ACK or paced send moves the single heap
	// entry instead of churning the scheduler.
	qp.rto = r.eng.NewTimer(qp.onRTO)
	qp.emitT = r.eng.NewTimer(qp.emit)
	if r.Cfg.IRN {
		qp.ooo = make(map[uint64]oooPkt)
	}
	if r.Cfg.DCQCN {
		qp.cc = newDCQCN(qp, r.Cfg.DCQCNParams)
	}
	return qp
}

// Connect activates the QP against a remote <dstIP, dstQPN>. For Cepheus
// multicast QPs the remote is the virtual connection <McstID, 0x1>.
func (qp *QP) Connect(dstIP simnet.Addr, dstQPN uint32) {
	qp.DstIP = dstIP
	qp.DstQPN = dstQPN
	qp.gsTx = nil // re-resolve the send-side group cell for the new remote
}

// rxGroupCell resolves (and caches) the receive-side group-stats cell for
// ref's source; nil for unicast flows. Callers guard with qp.nic.gs != nil.
func (qp *QP) rxGroupCell(ref *simnet.Packet) *obs.GroupCell {
	if qp.gsRxSrc != ref.Src {
		qp.gsRxSrc = ref.Src
		if ref.Src.IsMulticast() {
			qp.gsRx = qp.nic.gs.Cell(uint32(ref.Src))
		} else {
			qp.gsRx = nil
		}
	}
	return qp.gsRx
}

// txGroupCell resolves (and caches) the send-side group-stats cell for the
// QP's remote; nil for unicast connections. Callers guard with
// qp.nic.gs != nil.
func (qp *QP) txGroupCell() *obs.GroupCell {
	if qp.gsTx == nil {
		if !qp.DstIP.IsMulticast() {
			return nil
		}
		qp.gsTx = qp.nic.gs.Cell(uint32(qp.DstIP))
	}
	return qp.gsTx
}

// SqPSN returns the requester's next send PSN (the paper's sqPSN).
func (qp *QP) SqPSN() uint64 { return qp.tail }

// RqPSN returns the responder's expected PSN (the paper's rqPSN).
func (qp *QP) RqPSN() uint64 { return qp.rqPSN }

// SetSqPSN overwrites requester PSN state. It is only legal while the send
// queue is idle; Cepheus uses it for the PSN Synchronization step of
// multicast source switching (§III-E).
func (qp *QP) SetSqPSN(psn uint64) {
	if len(qp.wqes) > 0 {
		panic("roce: SetSqPSN with in-flight messages")
	}
	qp.tail, qp.sndUna, qp.sndNxt, qp.maxSent = psn, psn, psn, psn
	qp.recPSNSync(psn, 0)
}

// SetRqPSN overwrites the responder's expected PSN (see SetSqPSN).
func (qp *QP) SetRqPSN(psn uint64) {
	qp.rqPSN = psn
	qp.recPSNSync(psn, 1)
}

// recPSNSync traces an out-of-band PSN overwrite (side 0 = SQ, 1 = RQ) so
// streaming consumers can reset per-flow expectations instead of flagging
// the sanctioned jump as a protocol violation.
func (qp *QP) recPSNSync(psn uint64, side int64) {
	if qp.nic.tr.On() {
		qp.nic.tr.Record(qp.eng.Now(), obs.KPSNSync, obs.RNone, -1, uint8(simnet.Data),
			uint32(qp.nic.Host.IP), 0, qp.QPN, 0, psn, 0, side, 0)
	}
}

// Flush aborts everything in flight on the QP, in both roles: posted WQEs
// are dropped without completions, pending retransmissions and the RTO are
// cancelled, and responder-side partial message assembly and out-of-order
// buffers are discarded. It models the error/flush transition a verbs stack
// performs when a connection is torn down mid-transfer — the safeguard uses
// it before falling back to AMcast so no half-delivered multicast message
// can ever surface, and Group.SyncAllPSN can later realign the survivors.
func (qp *QP) Flush() {
	// Requester: forget the unacknowledged tail entirely. sndUna jumps to
	// tail so nothing is considered outstanding; maxSent follows so future
	// packets are not misclassified as retransmissions.
	qp.wqes = nil
	qp.sndUna, qp.sndNxt, qp.maxSent = qp.tail, qp.tail, qp.tail
	qp.rtq = nil
	qp.stopRTO()
	qp.curRTO = 0
	// Responder: discard partial assembly and buffered out-of-order data so
	// a pre-fault message prefix can never merge with post-recovery bytes.
	qp.curBytes, qp.curVA, qp.curRKey, qp.curValue = 0, 0, 0, 0
	qp.msgStamp = 0
	qp.sinceAck, qp.ackDue, qp.nackPending = 0, false, false
	if qp.ooo != nil {
		qp.ooo = make(map[uint64]oooPkt)
	}
}

// AckedPSN returns the first unacknowledged PSN; everything below it has
// been acknowledged by the remote (or, for Cepheus, by every receiver).
func (qp *QP) AckedPSN() uint64 { return qp.sndUna }

// Outstanding returns how many packets are posted but not yet acknowledged.
func (qp *QP) Outstanding() uint64 { return qp.tail - qp.sndUna }

// Rate returns the requester's current sending rate in bps.
func (qp *QP) Rate() float64 {
	if qp.cc != nil {
		qp.cc.catchUp()
		return qp.cc.rc
	}
	return qp.nic.Host.NIC.RateBps
}

// PostSend posts a SEND of size bytes. onComplete (may be nil) fires when
// the message is fully acknowledged.
func (qp *QP) PostSend(size int, onComplete func()) {
	qp.post(size, false, 0, 0, onComplete)
}

// PostWrite posts an RDMA WRITE of size bytes targeting the remote MR
// <va, rkey>. The responder RNIC validates the MR on the first packet.
func (qp *QP) PostWrite(size int, va uint64, rkey uint32, onComplete func()) {
	qp.post(size, true, va, rkey, onComplete)
}

// PostReduce posts a reduction contribution of size bytes carrying value.
// On a Cepheus group QP the fabric combines contributions per PSN and the
// root receives a single message whose Value is the group aggregate.
func (qp *QP) PostReduce(size int, value float64, onComplete func()) {
	r := qp.nic
	r.stackDefer(r.Cfg.PostOverhead, func() {
		w := qp.enqueueWQE(size, false, 0, 0, onComplete)
		w.IsReduce = true
		w.Value = value
		qp.trySend()
	})
}

func (qp *QP) post(size int, isWrite bool, va uint64, rkey uint32, onComplete func()) {
	if size <= 0 {
		panic("roce: post of non-positive size")
	}
	r := qp.nic
	r.stackDefer(r.Cfg.PostOverhead, func() {
		qp.enqueueWQE(size, isWrite, va, rkey, onComplete)
		qp.trySend()
	})
}

func (qp *QP) enqueueWQE(size int, isWrite bool, va uint64, rkey uint32, onComplete func()) *WQE {
	r := qp.nic
	npkt := (size + r.Cfg.MTU - 1) / r.Cfg.MTU
	w := &WQE{
		MsgID:      r.nextMsg,
		Size:       size,
		IsWrite:    isWrite,
		VA:         va,
		RKey:       rkey,
		FirstPSN:   qp.tail,
		LastPSN:    qp.tail + uint64(npkt) - 1,
		OnComplete: onComplete,
	}
	r.nextMsg++
	qp.tail += uint64(npkt)
	qp.wqes = append(qp.wqes, w)
	return w
}

// ---- requester side ----

// nextToSend picks the next PSN to transmit: selective retransmissions
// first (IRN), then new data within the window.
func (qp *QP) nextToSend() (psn uint64, retx, ok bool) {
	for len(qp.rtq) > 0 {
		if qp.rtq[0] < qp.sndUna {
			qp.rtq = qp.rtq[1:] // acknowledged while queued
			continue
		}
		return qp.rtq[0], true, true
	}
	if qp.sndNxt < qp.tail && qp.sndNxt-qp.sndUna < uint64(qp.nic.Cfg.WindowPkts) {
		return qp.sndNxt, false, true
	}
	return 0, false, false
}

func (qp *QP) trySend() {
	if qp.sendScheduled {
		return
	}
	if _, _, ok := qp.nextToSend(); !ok {
		return // a post, ACK or NACK will kick us
	}
	at := qp.eng.Now()
	if qp.nextTx > at {
		at = qp.nextTx
	}
	qp.sendScheduled = true
	// Re-arming the one emission timer moves its heap entry in place (and a
	// pacer firing that immediately re-arms never leaves the heap top), where
	// scheduling a fresh event per emission would push and pop one each time.
	qp.emitT.Reset(at - qp.eng.Now())
}

func (qp *QP) emit() {
	qp.sendScheduled = false
	if qp.cc != nil {
		// Apply virtual rate-timer ticks due before this emission first, as
		// the scheduler would have: within the event, time is frozen, so the
		// catch-ups inside Rate() and onBytesSent() below are then no-ops.
		qp.cc.catchUp()
	}
	psn, retx, ok := qp.nextToSend()
	if !ok {
		return
	}
	if qp.nic.nicBackpressured() {
		// The NIC egress is full or PFC-paused: hold the packet and resume
		// when the queue drains rather than overrunning it.
		qp.nic.defer1(qp)
		return
	}
	if retx {
		qp.rtq = qp.rtq[1:]
	}
	w := qp.wqeFor(psn)
	if w == nil {
		panic(fmt.Sprintf("roce: %s qp%d has no WQE for psn %d", qp.nic.Host.Name, qp.QPN, psn))
	}
	idx := int(psn - w.FirstPSN)
	payload := w.Size - idx*qp.nic.Cfg.MTU
	if payload > qp.nic.Cfg.MTU {
		payload = qp.nic.Cfg.MTU
	}
	p := simnet.NewPacket()
	p.Type = simnet.Data
	p.Src = qp.nic.Host.IP
	p.Dst = qp.DstIP
	p.SrcQP = qp.QPN
	p.DstQP = qp.DstQPN
	p.PSN = psn
	p.Payload = payload
	p.MsgID = w.MsgID
	p.Last = psn == w.LastPSN
	p.Retrans = psn < qp.maxSent
	if w.IsWrite && idx == 0 {
		p.WriteVA = w.VA
		p.WriteRKey = w.RKey
	}
	if w.IsReduce {
		p.Reduce = true
		p.Value = w.Value
	}
	if p.Retrans {
		qp.nic.Stats.Retransmits++
		if qp.nic.tr.On() {
			qp.nic.rec(obs.KRetransmit, p, 0, int64(payload))
		}
		if qp.nic.gs != nil {
			if c := qp.txGroupCell(); c != nil {
				c.Retransmit(qp.eng.Now(), int64(payload))
			}
		}
	}
	p.Stamp = qp.eng.Now()
	qp.nic.Stats.DataSent++
	qp.nic.Host.Send(p)

	// Pace the next emission at the current rate.
	bits := float64((payload + simnet.WireOverhead) * 8)
	gap := sim.Time(bits / qp.Rate() * 1e9)
	now := qp.eng.Now()
	if qp.nextTx < now {
		qp.nextTx = now
	}
	qp.nextTx += gap
	if qp.cc != nil {
		qp.cc.onBytesSent(payload + simnet.WireOverhead)
	}
	if !retx {
		qp.sndNxt = psn + 1
		if qp.sndNxt > qp.maxSent {
			qp.maxSent = qp.sndNxt
		}
	}
	qp.armRTO()
	qp.trySend()
}

func (qp *QP) wqeFor(psn uint64) *WQE {
	for _, w := range qp.wqes {
		if psn >= w.FirstPSN && psn <= w.LastPSN {
			return w
		}
	}
	return nil
}

// armRTO moves the logical retransmission deadline to now+timeout. The
// physical timer is lazy: it only re-keys the heap when it would otherwise
// fire too late, so the per-ACK and per-send re-arms on the hot path are two
// field writes. A stale (early) firing defers itself in onRTO — one heap op
// per timeout period instead of one per packet.
func (qp *QP) armRTO() {
	to := qp.curRTO
	if to <= 0 {
		to = qp.nic.Cfg.RetxTimeout
	}
	now := qp.eng.Now()
	qp.rtoAt = now + to
	if qp.rtoArmedAt == 0 || qp.rtoArmedAt > qp.rtoAt {
		qp.rto.Reset(qp.rtoAt - now)
		qp.rtoArmedAt = qp.rtoAt
	}
}

// stopRTO cancels the logical deadline. An armed physical timer is left to
// fire once and find nothing due, which is cheaper than removing it from
// the heap on every full-acknowledgment edge.
func (qp *QP) stopRTO() { qp.rtoAt = 0 }

// backoffRTO grows the effective timeout after an expiry, when enabled.
func (qp *QP) backoffRTO() {
	cfg := &qp.nic.Cfg
	if cfg.RetxBackoff <= 1 {
		return
	}
	cur := qp.curRTO
	if cur <= 0 {
		cur = cfg.RetxTimeout
	}
	next := sim.Time(float64(cur) * cfg.RetxBackoff)
	if cfg.RetxBackoffMax > 0 && next > cfg.RetxBackoffMax {
		next = cfg.RetxBackoffMax
	}
	qp.curRTO = next
}

func (qp *QP) onRTO() {
	qp.rtoArmedAt = 0
	if qp.rtoAt == 0 || qp.sndUna >= qp.tail {
		return // logically stopped, or everything acknowledged
	}
	if now := qp.eng.Now(); qp.rtoAt > now {
		// Stale wakeup: the deadline moved while the physical timer stayed
		// put (armRTO's lazy re-arm). Chase the live deadline.
		qp.rto.Reset(qp.rtoAt - now)
		qp.rtoArmedAt = qp.rtoAt
		return
	}
	qp.rtoAt = 0
	if qp.backpressured || qp.nic.nicBackpressured() {
		// Feedback is stalled because *we* cannot transmit (local PFC
		// pause); retransmitting would only deepen the backlog.
		qp.armRTO()
		return
	}
	qp.nic.Stats.Timeouts++
	qp.backoffRTO()
	if qp.nic.Cfg.IRN {
		qp.queueRetx(qp.sndUna)
	} else {
		qp.sndNxt = qp.sndUna
	}
	qp.armRTO()
	qp.trySend()
}

// queueRetx schedules one PSN for selective retransmission (IRN).
func (qp *QP) queueRetx(psn uint64) {
	for _, v := range qp.rtq {
		if v == psn {
			return
		}
	}
	qp.rtq = append(qp.rtq, psn)
	// Keep ascending so retransmissions repair the oldest gap first.
	for i := len(qp.rtq) - 1; i > 0 && qp.rtq[i] < qp.rtq[i-1]; i-- {
		qp.rtq[i], qp.rtq[i-1] = qp.rtq[i-1], qp.rtq[i]
	}
}

func (qp *QP) advanceCum(acked uint64) {
	if acked < qp.sndUna {
		return
	}
	if acked > qp.sndUna {
		qp.curRTO = 0 // forward progress: shed any retransmission backoff
	}
	qp.sndUna = acked
	// A NACK rewind can leave sndNxt below a cumulative ACK that lands
	// before the rewound range is re-emitted (the NACKed packets were
	// delayed, not lost). Restore sndNxt >= sndUna or the unsigned
	// in-flight count underflows: the window then reads as permanently
	// full and the QP goes dormant with its RTO stopped.
	if qp.sndNxt < qp.sndUna {
		qp.sndNxt = qp.sndUna
	}
	for len(qp.wqes) > 0 && qp.wqes[0].LastPSN < qp.sndUna {
		w := qp.wqes[0]
		qp.wqes = qp.wqes[1:]
		if w.OnComplete != nil {
			w.OnComplete()
		}
	}
	if qp.sndUna >= qp.tail {
		qp.stopRTO()
	} else {
		qp.armRTO()
	}
	qp.trySend()
}

// ---- packet dispatch ----

func (qp *QP) handle(p *simnet.Packet) {
	switch p.Type {
	case simnet.Data:
		qp.handleData(p)
	case simnet.Ack:
		qp.nic.Stats.AcksRecv++
		if qp.nic.tr.On() {
			qp.nic.rec(obs.KAckRx, p, 0, 0)
		}
		qp.advanceCum(p.PSN + 1)
	case simnet.Nack:
		qp.nic.Stats.NacksRecv++
		if qp.nic.tr.On() {
			qp.nic.rec(obs.KNackRx, p, 0, 0)
		}
		qp.handleNack(p)
	case simnet.CNP:
		qp.nic.Stats.CNPsRecv++
		if qp.nic.tr.On() {
			qp.nic.rec(obs.KCNPRx, p, 0, 0)
		}
		if qp.cc != nil {
			qp.cc.onCNP()
		}
	}
}

func (qp *QP) handleNack(p *simnet.Packet) {
	e := p.PSN // expected PSN: everything below e is acknowledged
	qp.advanceCum(e)
	if e >= qp.maxSent {
		return // nothing sent at or beyond e; nothing to retransmit
	}
	if e < qp.sndUna {
		// Stale feedback for a range already acknowledged — or flushed by a
		// fault-recovery abort; there is no WQE left to retransmit from.
		return
	}
	// Suppress duplicate repairs of the same point within the holdoff (the
	// retransmission is already in flight).
	now := qp.eng.Now()
	if e == qp.lastRewindE && now-qp.lastRewindAt < qp.nic.Cfg.RetxTimeout/8 {
		return
	}
	qp.lastRewindE, qp.lastRewindAt = e, now
	if qp.nic.Cfg.IRN {
		// Selective repeat: resend exactly the named packet; everything
		// after it stays in flight.
		qp.nic.Stats.SelectiveRetx++
		qp.queueRetx(e)
	} else {
		// Go-back-N: rewind and resend the whole window tail.
		qp.nic.Stats.GoBackN++
		if qp.sndNxt > e {
			qp.sndNxt = e
		}
	}
	qp.trySend()
}

// ---- responder side ----

func (qp *QP) handleData(p *simnet.Packet) {
	qp.nic.Stats.DataRecv++
	cfg := qp.nic.Cfg
	now := qp.eng.Now()
	if p.ECN && now-qp.lastCNP >= cfg.CNPInterval {
		qp.lastCNP = now
		qp.nic.Stats.CNPsSent++
		cnp := simnet.NewPacket()
		cnp.Type, cnp.Src, cnp.Dst = simnet.CNP, qp.nic.Host.IP, p.Src
		cnp.SrcQP, cnp.DstQP = qp.QPN, p.SrcQP
		if qp.nic.tr.On() {
			qp.nic.rec(obs.KCNPTx, cnp, 0, 0)
		}
		qp.nic.Host.Send(cnp)
	}
	switch {
	case p.PSN == qp.rqPSN:
		qp.ingest(p.Payload, p.Last, p.MsgID, p.WriteVA, p.WriteRKey, p.Value, p.Stamp, p)
		// IRN: the gap closed; drain whatever was buffered behind it.
		for qp.ooo != nil {
			o, ok := qp.ooo[qp.rqPSN]
			if !ok {
				break
			}
			delete(qp.ooo, qp.rqPSN)
			qp.ingest(o.payload, o.last, o.msgID, o.va, o.rkey, o.value, o.stamp, p)
		}
		if qp.ackDue {
			qp.ackDue = false
			qp.sinceAck = 0
			qp.sendAck(p)
		}
	case p.PSN > qp.rqPSN:
		if qp.nic.Cfg.IRN {
			// Selective repeat: buffer out-of-order data and name the gap.
			if _, dup := qp.ooo[p.PSN]; dup {
				qp.nic.Stats.DupData++
			} else {
				qp.ooo[p.PSN] = oooPkt{
					payload: p.Payload, last: p.Last, msgID: p.MsgID,
					va: p.WriteVA, rkey: p.WriteRKey, value: p.Value,
					stamp: p.Stamp,
				}
			}
			if qp.rqPSN != qp.lastNackedPSN || now-qp.lastNackedAt >= cfg.RetxTimeout/8 {
				qp.lastNackedPSN, qp.lastNackedAt = qp.rqPSN, now
				qp.sendNack(p)
			}
			return
		}
		// Go-back-N: NACK once and drop until the expected PSN shows up.
		if !qp.nackPending {
			qp.nackPending = true
			qp.sendNack(p)
		}
	default:
		// Duplicate of an already-received packet: re-ACK so the requester
		// (or the aggregation tree) can advance.
		qp.nic.Stats.DupData++
		qp.sendAck(p)
	}
}

// ingest accepts one in-order packet's worth of state: cumulative PSN,
// message assembly, delivery, and ACK coalescing accounting. ref carries
// the flow addressing used for feedback and delivery metadata; stamp is the
// requester-side emission time of this packet (not of ref, which for a
// buffered out-of-order packet is the later gap-filler).
func (qp *QP) ingest(payload int, last bool, msgID uint64, va uint64, rkey uint32, value float64, stamp sim.Time, ref *simnet.Packet) {
	if qp.curBytes == 0 && stamp > 0 {
		qp.msgStamp = stamp
	}
	if stamp > 0 {
		lat := int64(qp.eng.Now() - stamp)
		qp.LatHist.Observe(lat)
		// Per-packet latency goes into the always-on histogram; the trace
		// gets one DELIVER per completed message (the event an application
		// observes). Tracing every accepted packet would add ~20% event
		// volume while repeating what LatHist already aggregates.
		if last && qp.nic.tr.On() {
			qp.nic.tr.Record(qp.eng.Now(), obs.KDeliver, obs.RNone, -1, uint8(simnet.Data),
				uint32(ref.Src), uint32(qp.nic.Host.IP), ref.SrcQP, qp.QPN, qp.rqPSN, msgID,
				lat, int64(qp.curBytes+payload))
		}
	}
	qp.rqPSN++
	qp.nackPending = false
	qp.GoodputBytes += uint64(payload)
	if qp.nic.gs != nil {
		if c := qp.rxGroupCell(ref); c != nil {
			c.Packet(qp.eng.Now(), int64(payload))
		}
	}
	if va != 0 || rkey != 0 {
		qp.curVA, qp.curRKey = va, rkey
	}
	if value != 0 {
		qp.curValue = value
	}
	qp.curBytes += payload
	qp.sinceAck++
	if last {
		if qp.msgStamp > 0 {
			mlat := int64(qp.eng.Now() - qp.msgStamp)
			qp.MsgLatHist.Observe(mlat)
			if qp.gsRx != nil {
				qp.gsRx.Message(qp.eng.Now(), mlat)
			}
		}
		m := Message{
			MsgID: msgID, Size: qp.curBytes, Src: ref.Src, SrcQP: ref.SrcQP,
			WriteVA: qp.curVA, WriteRKey: qp.curRKey, Value: qp.curValue,
		}
		qp.curBytes, qp.curVA, qp.curRKey, qp.curValue = 0, 0, 0, 0
		qp.msgStamp = 0
		if qp.OnMessage != nil {
			qp.nic.stackDefer(qp.nic.Cfg.DeliverOverhead, func() { qp.OnMessage(m) })
		}
	}
	if last || qp.sinceAck >= qp.nic.Cfg.AckEvery {
		qp.ackDue = true
	}
}

func (qp *QP) sendNack(ref *simnet.Packet) {
	qp.nic.Stats.NacksSent++
	n := simnet.NewPacket()
	n.Type, n.Src, n.Dst = simnet.Nack, qp.nic.Host.IP, ref.Src
	n.SrcQP, n.DstQP, n.PSN = qp.QPN, ref.SrcQP, qp.rqPSN
	if qp.nic.tr.On() {
		qp.nic.rec(obs.KNackTx, n, 0, 0)
	}
	qp.nic.Host.Send(n)
}

func (qp *QP) sendAck(p *simnet.Packet) {
	qp.nic.Stats.AcksSent++
	a := simnet.NewPacket()
	a.Type, a.Src, a.Dst = simnet.Ack, qp.nic.Host.IP, p.Src
	a.SrcQP, a.DstQP, a.PSN = qp.QPN, p.SrcQP, qp.rqPSN-1
	if qp.nic.tr.On() {
		qp.nic.rec(obs.KAckTx, a, 0, 0)
	}
	qp.nic.Host.Send(a)
}
