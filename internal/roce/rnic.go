package roce

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stats aggregates transport counters across an RNIC's QPs.
type Stats struct {
	DataSent      uint64
	DataRecv      uint64
	AcksSent      uint64
	AcksRecv      uint64
	NacksSent     uint64
	NacksRecv     uint64
	CNPsSent      uint64
	CNPsRecv      uint64
	GoBackN       uint64 // NACK-triggered rewinds (go-back-N mode)
	SelectiveRetx uint64 // NACK-triggered single-packet repairs (IRN mode)
	Timeouts      uint64 // RTO-triggered rewinds
	Retransmits   uint64 // retransmitted data packets
	DupData       uint64 // duplicate (already received) data packets seen
}

// RNIC models the host NIC's RoCE engine: it owns the QPs, dispatches
// received packets, and serializes end-host stack costs on a single
// CPU-like resource (posts and deliveries contend, which is what makes
// AMcast relays expensive).
type RNIC struct {
	Host *simnet.Host
	Cfg  Config

	// CtrlHandler receives packets that are not RoCE transport traffic
	// (MRP registration, raw application control).
	CtrlHandler func(p *simnet.Packet)

	Stats Stats

	eng     *sim.Engine
	qps     map[uint32]*QP
	lastQPN uint32 // receive's one-entry demux cache (lastQP nil = invalid)
	lastQP  *QP
	nextQPN uint32
	nextMsg uint64
	cpuNext sim.Time
	cpuQ    taskRing   // host-stack work queue, FIFO in completion time
	cpuT    *sim.Timer // one re-armable timer walks cpuQ (see stackDefer)

	// blocked holds QPs deferred by NIC backpressure, resumed on drain.
	blocked []*QP

	// tr is the host's flight-recorder handle (shared with the NIC port);
	// nil while tracing is off.
	tr *obs.Tracer

	// gs is this host's LP's group-stats shard; nil while group
	// attribution is off (the nil check is the entire disabled cost).
	gs *obs.GroupLP
}

// SetTracer attaches the host's flight-recorder handle. Transport events
// (ACK/NACK/CNP tx+rx, retransmits, deliveries) record under the host's
// device id with Port = -1.
func (r *RNIC) SetTracer(tr *obs.Tracer) { r.tr = tr }

// SetGroupStats attaches the LP's group-stats shard. Responder QPs book
// accepted multicast payload and message latency against it; requester QPs
// book retransmissions. Attribution is pure host-side accounting — it
// schedules nothing and mutates no packet, so enabling it never perturbs
// the simulation.
func (r *RNIC) SetGroupStats(gs *obs.GroupLP) { r.gs = gs }

// rec captures one transport event against packet p; callers guard with
// r.tr.On().
func (r *RNIC) rec(k obs.Kind, p *simnet.Packet, a, b int64) {
	r.tr.Record(r.eng.Now(), k, obs.RNone, -1, uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, a, b)
}

// EachQP calls fn for every QP on the NIC in ascending QPN order (a
// deterministic iteration over the otherwise unordered map).
func (r *RNIC) EachQP(fn func(*QP)) {
	ids := make([]uint32, 0, len(r.qps))
	for id := range r.qps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(r.qps[id])
	}
}

// MergeDeliveryLatency folds every QP's delivery-latency histogram into h.
// Histogram merge is commutative, so the map iteration order is irrelevant.
func (r *RNIC) MergeDeliveryLatency(h *obs.Histogram) {
	for _, qp := range r.qps {
		h.Merge(&qp.LatHist)
	}
}

// MergeMessageLatency folds every QP's per-message delivery-latency
// histogram into h (first data packet emitted to last packet accepted).
func (r *RNIC) MergeMessageLatency(h *obs.Histogram) {
	for _, qp := range r.qps {
		h.Merge(&qp.MsgLatHist)
	}
}

// NewRNIC attaches a RoCE engine to a host and installs itself as the
// host's packet handler.
func NewRNIC(h *simnet.Host, cfg Config) *RNIC {
	// Message ids are namespaced by host address (high 32 bits) so they are
	// globally unique: span reconstruction can follow one message across the
	// fabric, and the originator is recoverable as msg>>32. The values are
	// behaviorally opaque — only equality matters to the protocol — so this
	// changes no simulated outcome.
	r := &RNIC{Host: h, Cfg: cfg, eng: h.Engine(), qps: make(map[uint32]*QP),
		nextQPN: 2, nextMsg: uint64(uint32(h.IP)) << 32}
	h.Handler = r.receive
	// NIC backpressure: QPs stop injecting when the egress queue holds a
	// few packets (or the link is PFC-paused) and resume as it drains,
	// instead of overrunning a drop-tail queue.
	h.NIC.LowWater = 2 * (cfg.MTU + simnet.WireOverhead)
	h.NIC.OnDrain = r.kick
	return r
}

// nicBackpressured reports whether QPs should hold off injecting.
func (r *RNIC) nicBackpressured() bool {
	nic := r.Host.NIC
	return nic.Paused() || nic.QueuedBytes() > 4*(r.Cfg.MTU+simnet.WireOverhead)
}

// defer1 parks a QP until the NIC drains.
func (r *RNIC) defer1(qp *QP) {
	if qp.backpressured {
		return
	}
	qp.backpressured = true
	r.blocked = append(r.blocked, qp)
}

// kick resumes every parked QP.
func (r *RNIC) kick() {
	if len(r.blocked) == 0 {
		return
	}
	qs := r.blocked
	r.blocked = nil
	for _, qp := range qs {
		qp.backpressured = false
		qp.trySend()
	}
}

// Engine returns the simulation engine.
func (r *RNIC) Engine() *sim.Engine { return r.eng }

// CreateQP allocates a queue pair. QPN 0 and 1 are reserved (1 is the
// Cepheus virtual remote QPN).
func (r *RNIC) CreateQP() *QP {
	qp := newQP(r, r.nextQPN)
	r.qps[r.nextQPN] = qp
	r.nextQPN++
	r.lastQPN, r.lastQP = 0, nil
	return qp
}

// QP returns the queue pair with the given number, or nil.
func (r *RNIC) QP(qpn uint32) *QP { return r.qps[qpn] }

// cpuTask is one unit of queued host-stack work: run fn at time at.
type cpuTask struct {
	at sim.Time
	fn func()
}

// taskRing is a FIFO of cpuTasks backed by a power-of-two circular buffer,
// the same shape as simnet's flight ring. Completion times are nondecreasing
// because stackDefer serializes work on cpuNext.
type taskRing struct {
	buf        []cpuTask
	head, tail int // head = next pop, tail = next push slot
	n          int
}

func (r *taskRing) len() int { return r.n }

func (r *taskRing) grow() {
	nb := make([]cpuTask, max(8, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head, r.tail = nb, 0, r.n
}

func (r *taskRing) pushBack(t cpuTask) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = t
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *taskRing) peekFront() *cpuTask { return &r.buf[r.head] }

func (r *taskRing) popFront() cpuTask {
	t := r.buf[r.head]
	r.buf[r.head].fn = nil // drop the closure reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return t
}

// stackDefer runs fn after cost nanoseconds of serialized host-stack time.
// The stack is a single serial resource: concurrent posts/deliveries queue
// behind each other, which bounds message rate the way a real verbs stack
// and CPU core do.
//
// Tasks complete in nondecreasing cpuNext order, so instead of a heap event
// per task the queue is a FIFO walked by one re-armable timer: only the
// head task occupies the event heap, and each completion re-arms in place.
func (r *RNIC) stackDefer(cost sim.Time, fn func()) {
	start := r.eng.Now()
	if r.cpuNext > start {
		start = r.cpuNext
	}
	r.cpuNext = start + cost
	r.cpuQ.pushBack(cpuTask{at: r.cpuNext, fn: fn})
	if r.cpuQ.len() == 1 {
		if r.cpuT == nil {
			r.cpuT = r.eng.NewTimer(r.onCPU)
		}
		r.cpuT.Reset(r.cpuNext - r.eng.Now())
	}
}

// onCPU completes the head host-stack task and re-arms for the next one.
func (r *RNIC) onCPU() {
	t := r.cpuQ.popFront()
	if r.cpuQ.len() > 0 {
		// The timer fired exactly at t.at, so it is "now" without a clock read.
		r.cpuT.Reset(r.cpuQ.peekFront().at - t.at)
	}
	t.fn()
}

func (r *RNIC) receive(p *simnet.Packet) {
	switch p.Type {
	case simnet.Data, simnet.Ack, simnet.Nack, simnet.CNP:
		// One-entry demux cache: a NIC's traffic is dominated by one QP at
		// a time, so the common case skips the map access. CreateQP
		// invalidates it (QPs are never deleted).
		qp := r.lastQP
		if qp == nil || p.DstQP != r.lastQPN {
			var ok bool
			qp, ok = r.qps[p.DstQP]
			if !ok {
				// Packets to a torn-down or unknown QP are dropped silently,
				// as an RNIC drops packets with no matching QP context.
				return
			}
			r.lastQPN, r.lastQP = p.DstQP, qp
		}
		qp.handle(p)
	default:
		if r.CtrlHandler != nil {
			r.CtrlHandler(p)
		}
	}
}

func (r *RNIC) String() string {
	return fmt.Sprintf("rnic(%s)", r.Host.Name)
}
