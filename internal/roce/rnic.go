package roce

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Stats aggregates transport counters across an RNIC's QPs.
type Stats struct {
	DataSent      uint64
	DataRecv      uint64
	AcksSent      uint64
	AcksRecv      uint64
	NacksSent     uint64
	NacksRecv     uint64
	CNPsSent      uint64
	CNPsRecv      uint64
	GoBackN       uint64 // NACK-triggered rewinds (go-back-N mode)
	SelectiveRetx uint64 // NACK-triggered single-packet repairs (IRN mode)
	Timeouts      uint64 // RTO-triggered rewinds
	Retransmits   uint64 // retransmitted data packets
	DupData       uint64 // duplicate (already received) data packets seen
}

// RNIC models the host NIC's RoCE engine: it owns the QPs, dispatches
// received packets, and serializes end-host stack costs on a single
// CPU-like resource (posts and deliveries contend, which is what makes
// AMcast relays expensive).
type RNIC struct {
	Host *simnet.Host
	Cfg  Config

	// CtrlHandler receives packets that are not RoCE transport traffic
	// (MRP registration, raw application control).
	CtrlHandler func(p *simnet.Packet)

	Stats Stats

	eng     *sim.Engine
	qps     map[uint32]*QP
	nextQPN uint32
	nextMsg uint64
	cpuNext sim.Time

	// blocked holds QPs deferred by NIC backpressure, resumed on drain.
	blocked []*QP

	// tr is the host's flight-recorder handle (shared with the NIC port);
	// nil while tracing is off.
	tr *obs.Tracer
}

// SetTracer attaches the host's flight-recorder handle. Transport events
// (ACK/NACK/CNP tx+rx, retransmits, deliveries) record under the host's
// device id with Port = -1.
func (r *RNIC) SetTracer(tr *obs.Tracer) { r.tr = tr }

// rec captures one transport event against packet p; callers guard with
// r.tr.On().
func (r *RNIC) rec(k obs.Kind, p *simnet.Packet, a, b int64) {
	r.tr.Record(r.eng.Now(), k, obs.RNone, -1, uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, a, b)
}

// EachQP calls fn for every QP on the NIC in ascending QPN order (a
// deterministic iteration over the otherwise unordered map).
func (r *RNIC) EachQP(fn func(*QP)) {
	ids := make([]uint32, 0, len(r.qps))
	for id := range r.qps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(r.qps[id])
	}
}

// MergeDeliveryLatency folds every QP's delivery-latency histogram into h.
// Histogram merge is commutative, so the map iteration order is irrelevant.
func (r *RNIC) MergeDeliveryLatency(h *obs.Histogram) {
	for _, qp := range r.qps {
		h.Merge(&qp.LatHist)
	}
}

// NewRNIC attaches a RoCE engine to a host and installs itself as the
// host's packet handler.
func NewRNIC(h *simnet.Host, cfg Config) *RNIC {
	// Message ids are namespaced by host address (high 32 bits) so they are
	// globally unique: span reconstruction can follow one message across the
	// fabric, and the originator is recoverable as msg>>32. The values are
	// behaviorally opaque — only equality matters to the protocol — so this
	// changes no simulated outcome.
	r := &RNIC{Host: h, Cfg: cfg, eng: h.Engine(), qps: make(map[uint32]*QP),
		nextQPN: 2, nextMsg: uint64(uint32(h.IP)) << 32}
	h.Handler = r.receive
	// NIC backpressure: QPs stop injecting when the egress queue holds a
	// few packets (or the link is PFC-paused) and resume as it drains,
	// instead of overrunning a drop-tail queue.
	h.NIC.LowWater = 2 * (cfg.MTU + simnet.WireOverhead)
	h.NIC.OnDrain = r.kick
	return r
}

// nicBackpressured reports whether QPs should hold off injecting.
func (r *RNIC) nicBackpressured() bool {
	nic := r.Host.NIC
	return nic.Paused() || nic.QueuedBytes() > 4*(r.Cfg.MTU+simnet.WireOverhead)
}

// defer1 parks a QP until the NIC drains.
func (r *RNIC) defer1(qp *QP) {
	if qp.backpressured {
		return
	}
	qp.backpressured = true
	r.blocked = append(r.blocked, qp)
}

// kick resumes every parked QP.
func (r *RNIC) kick() {
	if len(r.blocked) == 0 {
		return
	}
	qs := r.blocked
	r.blocked = nil
	for _, qp := range qs {
		qp.backpressured = false
		qp.trySend()
	}
}

// Engine returns the simulation engine.
func (r *RNIC) Engine() *sim.Engine { return r.eng }

// CreateQP allocates a queue pair. QPN 0 and 1 are reserved (1 is the
// Cepheus virtual remote QPN).
func (r *RNIC) CreateQP() *QP {
	qp := newQP(r, r.nextQPN)
	r.qps[r.nextQPN] = qp
	r.nextQPN++
	return qp
}

// QP returns the queue pair with the given number, or nil.
func (r *RNIC) QP(qpn uint32) *QP { return r.qps[qpn] }

// stackDefer runs fn after cost nanoseconds of serialized host-stack time.
// The stack is a single serial resource: concurrent posts/deliveries queue
// behind each other, which bounds message rate the way a real verbs stack
// and CPU core do.
func (r *RNIC) stackDefer(cost sim.Time, fn func()) {
	start := r.eng.Now()
	if r.cpuNext > start {
		start = r.cpuNext
	}
	r.cpuNext = start + cost
	r.eng.Schedule(r.cpuNext, fn)
}

func (r *RNIC) receive(p *simnet.Packet) {
	switch p.Type {
	case simnet.Data, simnet.Ack, simnet.Nack, simnet.CNP:
		qp, ok := r.qps[p.DstQP]
		if !ok {
			// Packets to a torn-down or unknown QP are dropped silently,
			// as an RNIC drops packets with no matching QP context.
			return
		}
		qp.handle(p)
	default:
		if r.CtrlHandler != nil {
			r.CtrlHandler(p)
		}
	}
}

func (r *RNIC) String() string {
	return fmt.Sprintf("rnic(%s)", r.Host.Name)
}
