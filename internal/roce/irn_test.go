package roce

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func irnConfig() Config {
	cfg := DefaultConfig()
	cfg.IRN = true
	return cfg
}

func TestIRNDeliversInOrder(t *testing.T) {
	e := newPairEnv(t, irnConfig())
	var sizes []int
	e.qb.OnMessage = func(m Message) { sizes = append(sizes, m.Size) }
	e.qa.PostSend(100, nil)
	e.qa.PostSend(5000, nil)
	e.eng.Run()
	if len(sizes) != 2 || sizes[0] != 100 || sizes[1] != 5000 {
		t.Fatalf("sizes %v", sizes)
	}
}

func TestIRNSelectiveRepairSingleLoss(t *testing.T) {
	cfg := irnConfig()
	e := newPairEnv(t, cfg)
	dropped := false
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		if p.Type == simnet.Data && p.PSN == 50 && !dropped {
			dropped = true
			return true
		}
		return false
	})
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	size := cfg.MTU * 200
	e.qa.PostSend(size, nil)
	e.eng.Run()
	if got == nil || got.Size != size {
		t.Fatalf("transfer incomplete: %+v", got)
	}
	// Exactly one packet is repaired; go-back-N would resend a window tail.
	if e.ra.Stats.Retransmits != 1 {
		t.Fatalf("IRN retransmitted %d packets for one loss, want 1", e.ra.Stats.Retransmits)
	}
	if e.ra.Stats.SelectiveRetx == 0 {
		t.Fatal("selective-retx path never used")
	}
	if e.ra.Stats.GoBackN != 0 {
		t.Fatal("IRN mode performed a go-back-N rewind")
	}
}

func TestIRNFarLessRetransmissionThanGBN(t *testing.T) {
	run := func(irn bool) (retx uint64, ok bool) {
		cfg := DefaultConfig()
		cfg.IRN = irn
		e := newPairEnv(t, cfg)
		e.net.Switches[0].LossRate = 0.01
		done := false
		e.qb.OnMessage = func(m Message) { done = true }
		e.qa.PostSend(4<<20, nil)
		e.eng.RunUntil(sim.Second)
		return e.ra.Stats.Retransmits, done
	}
	gbn, ok1 := run(false)
	irn, ok2 := run(true)
	if !ok1 || !ok2 {
		t.Fatalf("transfers incomplete: gbn=%v irn=%v", ok1, ok2)
	}
	if irn*3 > gbn {
		t.Fatalf("IRN retransmitted %d vs GBN %d; selective repeat not paying off", irn, gbn)
	}
}

func TestIRNHeavyLossCompletes(t *testing.T) {
	cfg := irnConfig()
	e := newPairEnv(t, cfg)
	e.net.Switches[0].LossRate = 0.2
	done := false
	e.qb.OnMessage = func(m Message) { done = true }
	e.qa.PostSend(256<<10, nil)
	e.eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("IRN transfer under 20% loss incomplete")
	}
}

func TestIRNGoodputExact(t *testing.T) {
	cfg := irnConfig()
	e := newPairEnv(t, cfg)
	e.net.Switches[0].LossRate = 0.05
	size := 1 << 20
	done := false
	e.qb.OnMessage = func(m Message) { done = true }
	e.qa.PostSend(size, nil)
	e.eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("incomplete")
	}
	if e.qb.GoodputBytes != uint64(size) {
		t.Fatalf("goodput %d != %d: duplicate or missing bytes surfaced", e.qb.GoodputBytes, size)
	}
}

// Cepheus + IRN: the aggregation semantics (cumulative ACKs, ePSN NACKs)
// are unchanged, so the accelerator interoperates with IRN endpoints; this
// is the §V-C suggestion for tolerating higher loss rates.
func TestIRNTailLossRTO(t *testing.T) {
	cfg := irnConfig()
	e := newPairEnv(t, cfg)
	dropped := false
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		if p.Type == simnet.Data && p.Last && !dropped {
			dropped = true
			return true
		}
		return false
	})
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostSend(cfg.MTU*3, nil)
	e.eng.Run()
	if got == nil {
		t.Fatal("tail loss not repaired")
	}
	if e.ra.Stats.Timeouts == 0 {
		t.Fatal("RTO path untested")
	}
	// The RTO repair must be selective, not a rewind: with no ACKs in
	// flight the sender probes sndUna first, then the actual tail — at
	// most two packets, never a window.
	if e.ra.Stats.Retransmits > 2 {
		t.Fatalf("%d retransmits for tail loss, want <=2", e.ra.Stats.Retransmits)
	}
	if e.ra.Stats.GoBackN != 0 {
		t.Fatal("IRN mode performed a go-back-N rewind")
	}
}
