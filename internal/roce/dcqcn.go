package roce

import "repro/internal/sim"

// dcqcn implements the reaction-point (sender) side of DCQCN (Zhu et al.,
// SIGCOMM'15), the congestion control built into the ConnectX-family RNICs
// the paper's testbed uses. The notification point (CNP generation on
// ECN-CE) lives in QP.handleData; the congestion point (RED/ECN marking)
// lives in simnet's egress queues. Cepheus leaves all of this untouched and
// only filters which CNPs reach the sender (§III-D).
//
// The alpha-decay and rate-increase timers are virtual: instead of parking
// two heap entries per QP that fire every few tens of microseconds whether
// or not the QP is active (hundreds of standing scheduler slots on a big
// group, deepening every sift), each keeps only its next deadline and the
// state is caught up in closed form at the points where it is observed —
// emission pacing, CNP arrival, byte-counter ticks, and Rate() sampling.
// Catch-up replays the exact per-tick float arithmetic in deadline order,
// so the state a QP observes is bit-identical to timer-driven execution,
// and the elided firings are credited to the engine's event ledger.
type dcqcn struct {
	qp *QP
	p  DCQCNParams

	rc    float64 // current rate
	rt    float64 // target rate
	alpha float64

	lastDecrease sim.Time
	bytes        int
	tCount       int // increase events from the timer since last cut
	bCount       int // increase events from the byte counter since last cut

	alphaAt sim.Time // next virtual alpha-decay deadline
	incAt   sim.Time // next virtual rate-increase deadline
}

func newDCQCN(qp *QP, p DCQCNParams) *dcqcn {
	line := qp.nic.Host.NIC.RateBps
	c := &dcqcn{qp: qp, p: p, rc: line, rt: line, alpha: 1, lastDecrease: -1 << 60}
	c.armAlphaTimer()
	c.armIncTimer()
	return c
}

func (c *dcqcn) armAlphaTimer() {
	c.alphaAt = c.qp.eng.Now() + c.p.AlphaTimer
}

func (c *dcqcn) armIncTimer() {
	c.incAt = c.qp.eng.Now() + c.p.IncTimer
}

// catchUp applies every virtual timer tick due at or before now, in the
// order the scheduler would have fired them. The two tick kinds touch
// disjoint state (alpha vs rt/rc/tCount), so replaying each stream
// separately preserves the timer-driven result exactly.
func (c *dcqcn) catchUp() {
	now := c.qp.eng.Now()
	if c.alphaAt > now && c.incAt > now {
		return
	}
	n := uint64(0)
	for c.alphaAt <= now {
		c.alpha *= 1 - c.p.G
		c.alphaAt += c.p.AlphaTimer
		n++
	}
	for c.incAt <= now {
		c.tCount++
		c.increase()
		c.incAt += c.p.IncTimer
		n++
	}
	c.qp.eng.Credit(n)
}

// onCNP is the DCQCN cut: alpha absorbs the congestion signal and the rate
// halves proportionally to it, at most once per MinDecreaseNs.
func (c *dcqcn) onCNP() {
	c.catchUp()
	c.alpha = (1-c.p.G)*c.alpha + c.p.G
	c.armAlphaTimer()
	now := c.qp.eng.Now()
	if now-c.lastDecrease < c.p.MinDecreaseNs {
		return
	}
	c.lastDecrease = now
	c.rt = c.rc
	c.rc *= 1 - c.alpha/2
	if c.rc < c.p.MinRate {
		c.rc = c.p.MinRate
	}
	c.tCount, c.bCount, c.bytes = 0, 0, 0
	c.armIncTimer()
}

func (c *dcqcn) onBytesSent(n int) {
	c.catchUp()
	c.bytes += n
	for c.bytes >= c.p.ByteCounter {
		c.bytes -= c.p.ByteCounter
		c.bCount++
		c.increase()
	}
}

func (c *dcqcn) increase() {
	f := c.p.FastRecovery
	switch {
	case c.tCount <= f && c.bCount <= f:
		// Fast recovery: climb halfway back to the pre-cut rate.
	case c.tCount > f && c.bCount > f:
		c.rt += c.p.RateHAI
	default:
		c.rt += c.p.RateAI
	}
	line := c.qp.nic.Host.NIC.RateBps
	if c.rt > line {
		c.rt = line
	}
	c.rc = (c.rt + c.rc) / 2
	if c.rc > line {
		c.rc = line
	}
	c.qp.trySend()
}
