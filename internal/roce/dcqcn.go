package roce

import "repro/internal/sim"

// dcqcn implements the reaction-point (sender) side of DCQCN (Zhu et al.,
// SIGCOMM'15), the congestion control built into the ConnectX-family RNICs
// the paper's testbed uses. The notification point (CNP generation on
// ECN-CE) lives in QP.handleData; the congestion point (RED/ECN marking)
// lives in simnet's egress queues. Cepheus leaves all of this untouched and
// only filters which CNPs reach the sender (§III-D).
type dcqcn struct {
	qp *QP
	p  DCQCNParams

	rc    float64 // current rate
	rt    float64 // target rate
	alpha float64

	lastDecrease sim.Time
	bytes        int
	tCount       int // increase events from the timer since last cut
	bCount       int // increase events from the byte counter since last cut

	alphaTimer *sim.Timer
	incTimer   *sim.Timer
}

func newDCQCN(qp *QP, p DCQCNParams) *dcqcn {
	line := qp.nic.Host.NIC.RateBps
	c := &dcqcn{qp: qp, p: p, rc: line, rt: line, alpha: 1, lastDecrease: -1 << 60}
	// Both rate timers live as long as the QP and are re-armed in place —
	// they fire (or are pushed back by a CNP) thousands of times per flow.
	c.alphaTimer = qp.eng.NewTimer(c.onAlphaTimer)
	c.incTimer = qp.eng.NewTimer(c.onIncTimer)
	c.armAlphaTimer()
	c.armIncTimer()
	return c
}

func (c *dcqcn) armAlphaTimer() {
	c.alphaTimer.Reset(c.p.AlphaTimer)
}

func (c *dcqcn) armIncTimer() {
	c.incTimer.Reset(c.p.IncTimer)
}

func (c *dcqcn) onAlphaTimer() {
	c.alpha *= 1 - c.p.G
	c.armAlphaTimer()
}

func (c *dcqcn) onIncTimer() {
	c.tCount++
	c.increase()
	c.armIncTimer()
}

// onCNP is the DCQCN cut: alpha absorbs the congestion signal and the rate
// halves proportionally to it, at most once per MinDecreaseNs.
func (c *dcqcn) onCNP() {
	c.alpha = (1-c.p.G)*c.alpha + c.p.G
	c.armAlphaTimer()
	now := c.qp.eng.Now()
	if now-c.lastDecrease < c.p.MinDecreaseNs {
		return
	}
	c.lastDecrease = now
	c.rt = c.rc
	c.rc *= 1 - c.alpha/2
	if c.rc < c.p.MinRate {
		c.rc = c.p.MinRate
	}
	c.tCount, c.bCount, c.bytes = 0, 0, 0
	c.armIncTimer()
}

func (c *dcqcn) onBytesSent(n int) {
	c.bytes += n
	for c.bytes >= c.p.ByteCounter {
		c.bytes -= c.p.ByteCounter
		c.bCount++
		c.increase()
	}
}

func (c *dcqcn) increase() {
	f := c.p.FastRecovery
	switch {
	case c.tCount <= f && c.bCount <= f:
		// Fast recovery: climb halfway back to the pre-cut rate.
	case c.tCount > f && c.bCount > f:
		c.rt += c.p.RateHAI
	default:
		c.rt += c.p.RateAI
	}
	line := c.qp.nic.Host.NIC.RateBps
	if c.rt > line {
		c.rt = line
	}
	c.rc = (c.rt + c.rc) / 2
	if c.rc > line {
		c.rc = line
	}
	c.qp.trySend()
}
