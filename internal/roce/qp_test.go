package roce

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// pair builds two connected hosts through a ToR and returns connected QPs
// a->b.
type pairEnv struct {
	eng    *sim.Engine
	net    *topo.Network
	ra, rb *RNIC
	qa, qb *QP
}

func newPairEnv(t *testing.T, cfg Config) *pairEnv {
	t.Helper()
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	ra := NewRNIC(n.Hosts[0], cfg)
	rb := NewRNIC(n.Hosts[1], cfg)
	qa := ra.CreateQP()
	qb := rb.CreateQP()
	qa.Connect(n.Hosts[1].IP, qb.QPN)
	qb.Connect(n.Hosts[0].IP, qa.QPN)
	return &pairEnv{eng: eng, net: n, ra: ra, rb: rb, qa: qa, qb: qb}
}

func TestSendDeliverSmall(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	completed := false
	e.qa.PostSend(100, func() { completed = true })
	e.eng.Run()
	if got == nil {
		t.Fatal("message not delivered")
	}
	if got.Size != 100 {
		t.Fatalf("size = %d", got.Size)
	}
	if !completed {
		t.Fatal("sender completion did not fire")
	}
	if e.qa.SqPSN() != 1 || e.qb.RqPSN() != 1 {
		t.Fatalf("PSNs: sq=%d rq=%d, want 1/1", e.qa.SqPSN(), e.qb.RqPSN())
	}
}

func TestSendMultiPacketMessage(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	size := cfg.MTU*7 + 13
	e.qa.PostSend(size, nil)
	e.eng.Run()
	if got == nil || got.Size != size {
		t.Fatalf("got %+v, want size %d", got, size)
	}
	if e.qb.RqPSN() != 8 {
		t.Fatalf("rqPSN = %d, want 8 packets", e.qb.RqPSN())
	}
}

func TestMultipleMessagesInOrder(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	var sizes []int
	e.qb.OnMessage = func(m Message) { sizes = append(sizes, m.Size) }
	e.qa.PostSend(10, nil)
	e.qa.PostSend(2000, nil)
	e.qa.PostSend(333, nil)
	e.eng.Run()
	if len(sizes) != 3 || sizes[0] != 10 || sizes[1] != 2000 || sizes[2] != 333 {
		t.Fatalf("delivered sizes %v", sizes)
	}
}

func TestWriteCarriesMR(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostWrite(5000, 0xDEAD0000, 42, nil)
	e.eng.Run()
	if got == nil {
		t.Fatal("write not delivered")
	}
	if got.WriteVA != 0xDEAD0000 || got.WriteRKey != 42 {
		t.Fatalf("MR info lost: va=%x rkey=%d", got.WriteVA, got.WriteRKey)
	}
}

func TestAckCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckEvery = 4
	e := newPairEnv(t, cfg)
	e.qa.PostSend(cfg.MTU*16, nil) // 16 packets
	e.eng.Run()
	// 16 in-order packets at AckEvery=4 -> 4 ACKs (last packet coincides
	// with a coalescing boundary).
	if e.rb.Stats.AcksSent != 4 {
		t.Fatalf("receiver sent %d ACKs for 16 packets, want 4", e.rb.Stats.AcksSent)
	}
}

func TestThroughputNearLineRate(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	done := sim.Time(0)
	size := 8 << 20 // 8MB
	e.qa.PostSend(size, func() { done = e.eng.Now() })
	e.eng.Run()
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	gbps := float64(size*8) / done.Seconds() / 1e9
	if gbps < 85 || gbps > 100 {
		t.Fatalf("goodput %.1f Gbps, want near line rate", gbps)
	}
}

func TestGoBackNRecoversFromLoss(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	e.net.Switches[0].LossRate = 0.01
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	size := 2 << 20
	e.qa.PostSend(size, nil)
	e.eng.Run()
	if got == nil || got.Size != size {
		t.Fatalf("lossy transfer incomplete: %+v", got)
	}
	if e.net.Switches[0].DataDrops == 0 {
		t.Fatal("loss injector never fired; test is vacuous")
	}
	if e.ra.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions despite drops")
	}
}

func TestHeavyLossStillCompletes(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	e.net.Switches[0].LossRate = 0.2
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	size := 256 << 10
	e.qa.PostSend(size, nil)
	e.eng.RunUntil(sim.Second) // bound runtime; plenty for 256KB at 20% loss
	if got == nil || got.Size != size {
		t.Fatalf("transfer under 20%% loss incomplete: %+v", got)
	}
}

func TestRTORecoversFromTailLoss(t *testing.T) {
	cfg := DefaultConfig()
	e := newPairEnv(t, cfg)
	// Drop exactly the last data packet once via a hook.
	dropped := false
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		if p.Type == simnet.Data && p.Last && !dropped {
			dropped = true
			return true // consume = drop
		}
		return false
	})
	var got *Message
	e.qb.OnMessage = func(m Message) { got = &m }
	e.qa.PostSend(cfg.MTU*3, nil)
	e.eng.Run()
	if !dropped {
		t.Fatal("tail-drop hook never fired")
	}
	if got == nil {
		t.Fatal("tail loss not recovered by RTO")
	}
	if e.ra.Stats.Timeouts == 0 {
		t.Fatal("no RTO fired; recovery path untested")
	}
}

type hookFunc func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool

func (f hookFunc) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	return f(sw, p, in)
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowPkts = 4
	e := newPairEnv(t, cfg)
	// Black-hole all ACKs so the window must close.
	e.net.Switches[0].Hook = hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
		return p.Type == simnet.Ack
	})
	e.qa.PostSend(cfg.MTU*100, nil)
	e.eng.RunUntil(cfg.RetxTimeout - 1) // stop before RTO complicates counting
	if e.ra.Stats.DataSent > 4 {
		t.Fatalf("sent %d packets with window 4 and no ACKs", e.ra.Stats.DataSent)
	}
}

func TestPostOverheadSerializes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PostOverhead = 10 * sim.Microsecond
	e := newPairEnv(t, cfg)
	delivered := 0
	e.qb.OnMessage = func(m Message) { delivered++ }
	for i := 0; i < 5; i++ {
		e.qa.PostSend(64, nil)
	}
	e.eng.Run()
	if delivered != 5 {
		t.Fatalf("delivered %d", delivered)
	}
	// 5 posts x 10us serialized stack time is the floor.
	if e.eng.Now() < 50*sim.Microsecond {
		t.Fatalf("finished at %v; stack serialization not applied", e.eng.Now())
	}
}

func TestPSNSynchronization(t *testing.T) {
	// The §III-E source-switching PSN sync: after A sends to B, B can take
	// over as source once both sides synchronize sqPSN/rqPSN.
	e := newPairEnv(t, DefaultConfig())
	e.qb.OnMessage = func(m Message) {}
	e.qa.PostSend(DefaultConfig().MTU*100, nil)
	e.eng.Run()
	if e.qa.SqPSN() != e.qb.RqPSN() {
		t.Fatalf("sq=%d rq=%d after transfer", e.qa.SqPSN(), e.qb.RqPSN())
	}
	// Old source: rqPSN := sqPSN. New source: sqPSN := rqPSN.
	e.qa.SetRqPSN(e.qa.SqPSN())
	e.qb.SetSqPSN(e.qb.RqPSN())
	var got *Message
	e.qa.OnMessage = func(m Message) { got = &m }
	e.qb.PostSend(777, nil)
	e.eng.Run()
	if got == nil || got.Size != 777 {
		t.Fatalf("reverse transfer after PSN sync failed: %+v", got)
	}
}

func TestSetSqPSNPanicsWithInflight(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	e.qa.PostSend(1024, nil)
	e.eng.RunFor(DefaultConfig().PostOverhead + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetSqPSN with in-flight WQEs did not panic")
		}
	}()
	e.qa.SetSqPSN(0)
}

func TestPostNonPositivePanics(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("PostSend(0) did not panic")
		}
	}()
	e.qa.PostSend(0, nil)
}

func TestUnknownQPNDropped(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	// Packet to a QPN that does not exist must not crash.
	e.net.Hosts[0].Send(&simnet.Packet{
		Type: simnet.Data, Src: e.net.Hosts[0].IP, Dst: e.net.Hosts[1].IP,
		SrcQP: 99, DstQP: 99, PSN: 0, Payload: 64,
	})
	e.eng.Run()
}

func TestGoodputBytesCountsInOrderOnly(t *testing.T) {
	e := newPairEnv(t, DefaultConfig())
	e.net.Switches[0].LossRate = 0.05
	size := 1 << 20
	var done bool
	e.qb.OnMessage = func(m Message) { done = true }
	e.qa.PostSend(size, nil)
	e.eng.Run()
	if !done {
		t.Fatal("transfer incomplete")
	}
	if e.qb.GoodputBytes != uint64(size) {
		t.Fatalf("goodput %d != size %d (duplicates or gaps counted)", e.qb.GoodputBytes, size)
	}
}

// Property: outstanding never exceeds the window, and retransmissions never
// touch acknowledged PSNs, across random loss patterns and both
// retransmission modes.
func TestWindowAndRetxInvariants(t *testing.T) {
	for _, irn := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultConfig()
			cfg.IRN = irn
			cfg.WindowPkts = 32
			eng := sim.New(seed)
			n := topo.Testbed(eng, 2)
			n.Switches[0].LossRate = 0.02
			ra := NewRNIC(n.Hosts[0], cfg)
			rb := NewRNIC(n.Hosts[1], cfg)
			qa := ra.CreateQP()
			qb := rb.CreateQP()
			qa.Connect(n.Hosts[1].IP, qb.QPN)
			qb.Connect(n.Hosts[0].IP, qa.QPN)
			done := false
			qb.OnMessage = func(m Message) { done = true }
			qa.PostSend(1<<20, nil)
			steps := 0
			for !done {
				if !eng.Step() {
					t.Fatalf("irn=%v seed=%d: stalled", irn, seed)
				}
				steps++
				if steps%100 == 0 {
					if out := qa.sndNxt - qa.sndUna; out > uint64(cfg.WindowPkts) {
						t.Fatalf("irn=%v: %d outstanding exceeds window %d", irn, out, cfg.WindowPkts)
					}
					for _, psn := range qa.rtq {
						if psn < qa.sndUna {
							// allowed transiently; nextToSend prunes, but it
							// must never be *sent*: checked implicitly by
							// receiver dup counting below.
							_ = psn
						}
					}
				}
			}
			if qb.GoodputBytes != 1<<20 {
				t.Fatalf("irn=%v seed=%d: goodput %d", irn, seed, qb.GoodputBytes)
			}
		}
	}
}
