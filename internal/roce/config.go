package roce

import "repro/internal/sim"

// Config sets the transport parameters of an RNIC. Defaults match the
// ConnectX-5-style behaviour the paper's testbed and ns-3 setup use
// (go-back-N retransmission, DCQCN congestion control, PFC underneath).
type Config struct {
	// MTU is the data payload per packet ("cell"). Large-flow benches raise
	// it to keep event counts tractable; see DESIGN.md §1.
	MTU int

	// WindowPkts bounds outstanding (unacknowledged) packets per QP.
	WindowPkts int

	// AckEvery coalesces ACKs: the receiver acknowledges every Nth in-order
	// packet (and always the last packet of a message).
	AckEvery int

	// RetxTimeout is the sender-side go-back-N safeguard timeout.
	RetxTimeout sim.Time

	// RetxBackoff, when > 1, multiplies the effective retransmission timeout
	// by this factor after every expiry that finds the window still stalled,
	// up to RetxBackoffMax; a cumulative advance resets it to RetxTimeout.
	// Sustained-loss soaks turn this on so a dead or heavily impaired path
	// decays to a slow probe instead of a fixed-period retransmit storm.
	// The default (0) keeps the fixed timeout — and existing traces —
	// byte-identical.
	RetxBackoff    float64
	RetxBackoffMax sim.Time

	// PostOverhead is the end-host stack cost per posted message (verbs
	// post, doorbell, descriptor fetch). AMcast relays pay it at every hop;
	// this is the "through the end-host stacks multiple times" effect the
	// paper highlights.
	PostOverhead sim.Time

	// DeliverOverhead is the end-host stack cost to surface a completed
	// message to the application.
	DeliverOverhead sim.Time

	// CNPInterval is the minimum gap between CNPs generated for one flow
	// (DCQCN's NP-side 50us rule).
	CNPInterval sim.Time

	// IRN enables selective-repeat retransmission (Mittal et al., SIGCOMM'18)
	// instead of go-back-N: receivers accept out-of-order packets and the
	// sender retransmits only what a NACK names. The paper recommends IRN
	// to substantially enhance Cepheus' loss tolerance (§V-C).
	IRN bool

	// DCQCN enables sender-side rate control. Off, a QP sends at line rate
	// subject to the window.
	DCQCN bool

	// DCQCNParams tunes rate control when DCQCN is true.
	DCQCNParams DCQCNParams
}

// DefaultConfig returns the calibrated testbed configuration (DESIGN.md §5).
func DefaultConfig() Config {
	return Config{
		MTU:             1024,
		WindowPkts:      1024,
		AckEvery:        4,
		RetxTimeout:     500 * sim.Microsecond,
		PostOverhead:    1500 * sim.Nanosecond,
		DeliverOverhead: 1000 * sim.Nanosecond,
		CNPInterval:     50 * sim.Microsecond,
		DCQCN:           false,
		DCQCNParams:     DefaultDCQCNParams(),
	}
}

// DCQCNParams are the standard DCQCN constants (Zhu et al., SIGCOMM'15),
// with the ns-3 community defaults for the increase machinery.
type DCQCNParams struct {
	G             float64  // alpha gain (1/256)
	AlphaTimer    sim.Time // alpha decay period without CNPs (55us)
	IncTimer      sim.Time // rate-increase timer period (300us)
	ByteCounter   int      // rate-increase byte counter (10MB)
	FastRecovery  int      // F: stages of fast recovery (5)
	RateAI        float64  // additive increase step, bps (40Mbps)
	RateHAI       float64  // hyper increase step, bps (400Mbps)
	MinRate       float64  // rate floor, bps (100Mbps)
	MinDecreaseNs sim.Time // min interval between rate cuts (50us)
}

// DefaultDCQCNParams returns the constants above.
func DefaultDCQCNParams() DCQCNParams {
	return DCQCNParams{
		G:             1.0 / 256.0,
		AlphaTimer:    55 * sim.Microsecond,
		IncTimer:      300 * sim.Microsecond,
		ByteCounter:   10 << 20,
		FastRecovery:  5,
		RateAI:        40e6,
		RateHAI:       400e6,
		MinRate:       100e6,
		MinDecreaseNs: 50 * sim.Microsecond,
	}
}
