package storage

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func newCluster(t *testing.T, mode Mode) *Cluster {
	t.Helper()
	core.ResetMcstIDs()
	return NewCluster(sim.New(1), mode, DefaultConfig())
}

func TestSingleWriteCompletes(t *testing.T) {
	for _, mode := range []Mode{Unicast1, UnicastN, CepheusWrite} {
		c := newCluster(t, mode)
		done := false
		c.SubmitWrite(8<<10, func() { done = true })
		c.Eng.RunUntil(c.Eng.Now() + 10*sim.Millisecond)
		if !done {
			t.Fatalf("%v: write never committed", mode)
		}
		if c.Completed() != 1 {
			t.Fatalf("%v: completed=%d", mode, c.Completed())
		}
	}
}

func TestPipelinedWritesCompleteInOrder(t *testing.T) {
	c := newCluster(t, UnicastN)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		c.SubmitWrite(8<<10, func() { order = append(order, i) })
	}
	c.Eng.RunUntil(c.Eng.Now() + 50*sim.Millisecond)
	if len(order) != 20 {
		t.Fatalf("completed %d of 20", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestTable1IOPSShape(t *testing.T) {
	// Table I: 8KB IOPS — 1-unicast 1.188M, 3-unicasts 0.413M, Cepheus
	// 1.167M. We assert the shape: Cepheus ~ 1-unicast, and 3-unicasts at
	// roughly a third.
	iops := func(mode Mode) float64 {
		c := newCluster(t, mode)
		return c.RunIOPS(8<<10, 64, 20*sim.Millisecond)
	}
	u1 := iops(Unicast1)
	u3 := iops(UnicastN)
	ceph := iops(CepheusWrite)
	t.Logf("IOPS: 1-unicast=%.3fM 3-unicasts=%.3fM cepheus=%.3fM", u1/1e6, u3/1e6, ceph/1e6)
	if u1 < 0.9e6 || u1 > 1.5e6 {
		t.Fatalf("1-unicast IOPS %.3fM outside the calibrated band around 1.19M", u1/1e6)
	}
	if ceph < 0.85*u1 {
		t.Fatalf("cepheus %.3fM should be near 1-unicast %.3fM", ceph/1e6, u1/1e6)
	}
	if r := u3 / ceph; r < 0.25 || r > 0.55 {
		t.Fatalf("3-unicasts at %.0f%% of cepheus, paper says ~35%%", r*100)
	}
}

func TestFig10LatencyShape(t *testing.T) {
	lat := func(mode Mode, size int) sim.Time {
		c := newCluster(t, mode)
		return c.MeasureLatency(size, 10)
	}
	// 8KB: Cepheus ~23% lower than 3-unicasts; 512KB: ~60% lower.
	u3Small, cephSmall := lat(UnicastN, 8<<10), lat(CepheusWrite, 8<<10)
	u3Big, cephBig := lat(UnicastN, 512<<10), lat(CepheusWrite, 512<<10)
	t.Logf("8KB: 3-uni=%v ceph=%v (-%.0f%%); 512KB: 3-uni=%v ceph=%v (-%.0f%%)",
		u3Small, cephSmall, 100*(1-float64(cephSmall)/float64(u3Small)),
		u3Big, cephBig, 100*(1-float64(cephBig)/float64(u3Big)))
	redSmall := 1 - float64(cephSmall)/float64(u3Small)
	redBig := 1 - float64(cephBig)/float64(u3Big)
	if redSmall < 0.10 || redSmall > 0.45 {
		t.Fatalf("8KB latency reduction %.0f%%, paper says ~23%%", redSmall*100)
	}
	if redBig < 0.45 || redBig > 0.75 {
		t.Fatalf("512KB latency reduction %.0f%%, paper says ~60%%", redBig*100)
	}
	if redBig <= redSmall {
		t.Fatal("the gap must widen with IO size (paper: 'enlarged as IO size increases')")
	}
	// And Cepheus ~ 1-unicast.
	u1Small := lat(Unicast1, 8<<10)
	if float64(cephSmall) > 1.3*float64(u1Small) {
		t.Fatalf("cepheus 8KB latency %v far above 1-unicast %v", cephSmall, u1Small)
	}
}

func TestUnicast1UsesOneServer(t *testing.T) {
	c := newCluster(t, Unicast1)
	done := false
	c.SubmitWrite(8<<10, func() { done = true })
	c.Eng.RunUntil(c.Eng.Now() + 10*sim.Millisecond)
	if !done {
		t.Fatal("write incomplete")
	}
	if c.acked[0] != 1 || c.acked[1] != 0 || c.acked[2] != 0 {
		t.Fatalf("acks %v, want only server 0", c.acked)
	}
}

func TestCepheusWriteHitsAllReplicas(t *testing.T) {
	c := newCluster(t, CepheusWrite)
	done := false
	c.SubmitWrite(64<<10, func() { done = true })
	c.Eng.RunUntil(c.Eng.Now() + 10*sim.Millisecond)
	if !done {
		t.Fatal("write incomplete")
	}
	for s, a := range c.acked {
		if a != 1 {
			t.Fatalf("server %d acked %d writes, want 1", s, a)
		}
	}
}

func TestModeString(t *testing.T) {
	if Unicast1.String() != "1-unicast" || UnicastN.String() != "n-unicasts" || CepheusWrite.String() != "cepheus" {
		t.Fatal("mode names changed")
	}
}
