// Package storage models the paper's distributed-storage replication
// application (§V-B1): a client writes each IO to R storage servers
// (three-replica writing) and completes when every server's storage stack
// has acknowledged. Three write paths are supported — the 1-unicast
// baseline reference, the default 3-unicasts approach, and Cepheus
// multicast WRITE — reproducing Table I (replication IOPS) and Fig 10
// (single IO latency).
package storage

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Mode selects the replication write path.
type Mode int

const (
	// Unicast1 writes to a single server: the ideal one-to-one reference.
	Unicast1 Mode = iota
	// UnicastN writes independently to every replica over separate RC
	// connections (the paper's default "3-unicasts").
	UnicastN
	// Cepheus writes once into the multicast group; the fabric replicates.
	CepheusWrite
)

func (m Mode) String() string {
	switch m {
	case Unicast1:
		return "1-unicast"
	case UnicastN:
		return "n-unicasts"
	case CepheusWrite:
		return "cepheus"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config calibrates the storage protocol stack (DESIGN.md §5). The client
// stack cost plus the RNIC post overhead set the per-IO CPU floor that
// caps 8KB writing at ~1.19M IOPS for 1-unicast, as in Table I.
type Config struct {
	Replicas      int
	ClientStackNs sim.Time // client storage-stack cost per IO (serialized)
	ServerStackNs sim.Time // server storage-stack cost per IO (serialized)
	Transport     roce.Config
}

// DefaultConfig returns the calibrated setup: 3 replicas, a polling-mode
// storage stack (850ns client / 600ns server), and a lean transport post
// path (340ns per post, free CQ polling). With the client stack and one
// post serialized per IO, the 1-unicast 8KB path floors at ~850ns/IO —
// Table I's 1.19M IOPS.
func DefaultConfig() Config {
	tr := roce.DefaultConfig()
	tr.PostOverhead = 340 * sim.Nanosecond
	tr.DeliverOverhead = 0
	return Config{
		Replicas:      3,
		ClientStackNs: 850 * sim.Nanosecond,
		ServerStackNs: 600 * sim.Nanosecond,
		Transport:     tr,
	}
}

// stack is a serialized processing resource (one storage-protocol thread).
type stack struct {
	eng  *sim.Engine
	next sim.Time
}

func (s *stack) do(cost sim.Time, fn func()) {
	start := s.eng.Now()
	if s.next > start {
		start = s.next
	}
	s.next = start + cost
	s.eng.Schedule(s.next, fn)
}

// Cluster is a storage testbed: one client plus Replicas servers on a ToR.
type Cluster struct {
	Cfg  Config
	Mode Mode

	Eng *sim.Engine
	Net *topo.Network

	clientStack  stack
	serverStacks []stack

	// write path
	writeQPs []*roce.QP // client->server, one per replica (unicast modes)
	group    *core.Group
	memberQP *roce.QP // client's group QP (cepheus mode)

	// reply path: server->client unicast QPs and per-server delivery
	// counters; in-order RC delivery makes reply j acknowledge IO j.
	replyQPs []*roce.QP
	acked    []uint64

	issued    uint64
	completed uint64
	onDone    map[uint64]func()
}

// NewCluster wires the testbed for the given mode. Cepheus mode registers
// a multicast group over client+servers and runs the registration to
// completion before returning.
func NewCluster(eng *sim.Engine, mode Mode, cfg Config) *Cluster {
	n := cfg.Replicas + 1
	c := &Cluster{Cfg: cfg, Mode: mode, Eng: eng, Net: topo.Testbed(eng, n), onDone: make(map[uint64]func())}
	rnics := make([]*roce.RNIC, n)
	agents := make([]*core.Agent, n)
	for i, h := range c.Net.Hosts {
		rnics[i] = roce.NewRNIC(h, cfg.Transport)
		agents[i] = core.NewAgent(rnics[i])
	}
	c.clientStack = stack{eng: eng}
	c.serverStacks = make([]stack, cfg.Replicas)
	c.acked = make([]uint64, cfg.Replicas)
	nrep := replicasFor(mode, cfg.Replicas)

	// Reply QPs: server s -> client.
	for s := 0; s < cfg.Replicas; s++ {
		c.serverStacks[s] = stack{eng: eng}
		sq := rnics[s+1].CreateQP()
		rq := rnics[0].CreateQP()
		sq.Connect(c.Net.Hosts[0].IP, rq.QPN)
		rq.Connect(c.Net.Hosts[s+1].IP, sq.QPN)
		s := s
		rq.OnMessage = func(m roce.Message) { c.onReply(s) }
		c.replyQPs = append(c.replyQPs, sq)
	}

	serverRecv := func(s int) func(m roce.Message) {
		return func(m roce.Message) {
			// Server storage stack processes the write, then acknowledges.
			c.serverStacks[s].do(cfg.ServerStackNs, func() {
				c.replyQPs[s].PostSend(64, nil)
			})
		}
	}

	switch mode {
	case Unicast1, UnicastN:
		for s := 0; s < nrep; s++ {
			wq := rnics[0].CreateQP()
			rq := rnics[s+1].CreateQP()
			wq.Connect(c.Net.Hosts[s+1].IP, rq.QPN)
			rq.Connect(c.Net.Hosts[0].IP, wq.QPN)
			rq.OnMessage = serverRecv(s)
			c.writeQPs = append(c.writeQPs, wq)
		}
	case CepheusWrite:
		core.Attach(c.Net.Switches[0], core.DefaultAccelConfig())
		var members []*core.Member
		for i := 0; i < n; i++ {
			members = append(members, &core.Member{
				Host: c.Net.Hosts[i], RNIC: rnics[i], QP: rnics[i].CreateQP(),
				WVA: uint64(0x100000 * (i + 1)), WRKey: uint32(i + 1),
			})
		}
		g := core.NewGroup(eng, core.AllocMcstID(), members, 0, agents)
		regErr := make(chan error, 1)
		g.Register(10*sim.Millisecond, func(err error) { regErr <- err })
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		select {
		case err := <-regErr:
			if err != nil {
				panic("storage: cepheus registration failed: " + err.Error())
			}
		default:
			panic("storage: cepheus registration did not finish")
		}
		c.group = g
		c.memberQP = members[0].QP
		for s := 0; s < cfg.Replicas; s++ {
			members[s+1].QP.OnMessage = serverRecv(s)
		}
	}
	return c
}

func replicasFor(mode Mode, replicas int) int {
	if mode == Unicast1 {
		return 1
	}
	return replicas
}

// SubmitWrite issues one IO of size bytes; done (may be nil) fires when all
// replicas acknowledged through their storage stacks.
func (c *Cluster) SubmitWrite(size int, done func()) {
	id := c.issued
	c.issued++
	if done != nil {
		c.onDone[id] = done
	}
	c.clientStack.do(c.Cfg.ClientStackNs, func() {
		switch c.Mode {
		case Unicast1, UnicastN:
			for s, wq := range c.writeQPs {
				wq.PostWrite(size, uint64(0x100000*(s+2)), uint32(s+2), nil)
			}
		case CepheusWrite:
			c.memberQP.PostWrite(size, 0xC0DE, 1, nil)
		}
	})
}

func (c *Cluster) onReply(server int) {
	c.acked[server]++
	// IO i is complete once every participating server has acknowledged
	// at least i+1 IOs (in-order RC delivery pairs replies with IOs).
	for {
		next := c.completed
		if next >= c.issued {
			return
		}
		ok := true
		for s := 0; s < replicasFor(c.Mode, c.Cfg.Replicas); s++ {
			if c.acked[s] < next+1 {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		c.completed++
		if cb, found := c.onDone[next]; found {
			delete(c.onDone, next)
			cb()
		}
	}
}

// Completed reports how many IOs have fully committed.
func (c *Cluster) Completed() uint64 { return c.completed }

// RunIOPS drives the cluster with queueDepth outstanding IOs of size bytes
// for the duration and returns the measured IOPS.
func (c *Cluster) RunIOPS(size, queueDepth int, duration sim.Time) float64 {
	stopAt := c.Eng.Now() + duration
	startCompleted := c.completed
	var pump func()
	pump = func() {
		if c.Eng.Now() >= stopAt {
			return
		}
		c.SubmitWrite(size, pump)
	}
	for i := 0; i < queueDepth; i++ {
		pump()
	}
	c.Eng.RunUntil(stopAt)
	return float64(c.completed-startCompleted) / duration.Seconds()
}

// MeasureLatency issues count sequential IOs (queue depth 1) and returns
// the mean end-to-end latency.
func (c *Cluster) MeasureLatency(size, count int) sim.Time {
	var total sim.Time
	for i := 0; i < count; i++ {
		start := c.Eng.Now()
		done := false
		c.SubmitWrite(size, func() { done = true })
		for !done {
			if !c.Eng.Step() || c.Eng.Now() > start+sim.Second {
				panic("storage: IO did not complete within 1s")
			}
		}
		total += c.Eng.Now() - start
	}
	return total / sim.Time(count)
}
