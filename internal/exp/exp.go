// Package exp provides the experiment harness shared by the benchmarks and
// the cmd/cepheus-bench tool: parameter sweeps, table/series formatting,
// and the flow-size-aware cell sizing rule from DESIGN.md §1.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table: one row per configuration, one column
// per scheme/metric — the same rows/series the paper's figures report.
type Table struct {
	Title   string
	Columns []string
	rows    []row
}

type row struct {
	label  string
	values []string
}

// NewTable creates a table with the given title and column headers (the
// first header labels the row key).
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row of already-formatted cells.
func (t *Table) Add(label string, cells ...string) {
	t.rows = append(t.rows, row{label: label, values: cells})
}

// AddF appends a row of float cells formatted with %.4g.
func (t *Table) AddF(label string, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.4g", v)
	}
	t.Add(label, cells...)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
		for i, v := range r.values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	for _, r := range t.rows {
		line(append([]string{r.label}, r.values...))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Rows reports how many data rows the table holds.
func (t *Table) Rows() int { return len(t.rows) }

// FormatBytes renders a byte count the way the paper labels its x-axes
// (64B, 8KB, 256MB, ...).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Sizes returns a doubling sweep from lo to hi inclusive (both powers of
// two), optionally stepping by more than one doubling.
func Sizes(lo, hi, doublings int) []int {
	var out []int
	for s := lo; s <= hi; s <<= doublings {
		out = append(out, s)
	}
	return out
}

// CellFor implements the DESIGN.md §1 cell-size rule: large flows are
// simulated with a bigger packet cell so event counts stay tractable. The
// cell is the smallest power-of-two multiple of baseMTU that keeps the flow
// under maxPackets packets, capped at 1MB.
func CellFor(flowBytes, baseMTU, maxPackets int) int {
	cell := baseMTU
	for cell < 1<<20 && flowBytes/cell > maxPackets {
		cell <<= 1
	}
	return cell
}

// Ratio returns a/b, guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ApplyCell configures a transport for a flow simulated at cell
// granularity: the MTU follows CellFor, and the go-back-N window is
// rescaled to keep a constant byte depth (~1MB) so a loss costs the same
// retransmission volume regardless of cell size (DESIGN.md §1).
func ApplyCell(mtu *int, windowPkts *int, flowBytes, baseMTU, maxPackets int) {
	*mtu = CellFor(flowBytes, baseMTU, maxPackets)
	w := (1 << 20) / *mtu
	if w < 32 {
		w = 32
	}
	if w < *windowPkts {
		*windowPkts = w
	}
}
