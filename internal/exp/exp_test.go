package exp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "size", "a", "b")
	tab.Add("64B", "1.0", "2.0")
	tab.AddF("1KB", 3.14159, 2.71828)
	s := tab.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "64B") || !strings.Contains(s, "3.142") {
		t.Fatalf("missing cells:\n%s", s)
	}
	if tab.Rows() != 2 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	// Columns align: every line has the header width or more.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count %d", len(lines))
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		64:        "64B",
		1 << 10:   "1KB",
		8 << 10:   "8KB",
		1 << 20:   "1MB",
		512 << 20: "512MB",
		1 << 30:   "1GB",
		1500:      "1500B",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(64, 1024, 1)
	want := []int{64, 128, 256, 512, 1024}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%v", got)
		}
	}
	if s := Sizes(64, 1024, 2); len(s) != 3 {
		t.Fatalf("doublings=2: %v", s)
	}
}

func TestCellFor(t *testing.T) {
	if c := CellFor(1<<20, 1024, 4096); c != 1024 {
		t.Fatalf("small flow should keep base MTU, got %d", c)
	}
	c := CellFor(1<<30, 1024, 2048)
	if (1<<30)/c > 2048 {
		t.Fatalf("cell %d leaves too many packets", c)
	}
	if c > 1<<20 {
		t.Fatalf("cell %d exceeds the 1MB cap", c)
	}
}

// Property: the cell is always a power-of-two multiple of the base MTU, at
// most 1MB, and honors maxPackets whenever the cap allows it.
func TestCellForProperty(t *testing.T) {
	f := func(flowRaw uint32, mtuExp uint8) bool {
		flow := int(flowRaw%(1<<30)) + 1
		base := 256 << (mtuExp % 4) // 256..2048
		cell := CellFor(flow, base, 2048)
		if cell%base != 0 || cell > 1<<20 {
			return false
		}
		if cell < 1<<20 && flow/cell > 2048 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("div by zero guard")
	}
}
