package amcast

import "math"

// Analysis reproduces Fig 1d: the analytic comparison of multicast schemes
// for a 1-to-N transfer on a two-level tree (sender and receivers under
// leaf switches, as drawn in Fig 1a-c).
type Analysis struct {
	Scheme string
	// TotalHops is the number of link traversals summed over all copies of
	// the data.
	TotalHops int
	// SenderCopies is how many times the sender transmits the message
	// (the outbound bandwidth bottleneck factor).
	SenderCopies int
	// StackTraversals is how many end-host stacks the data crosses on the
	// longest path (latency-relevant).
	StackTraversals int
	// Steps is the number of sequential relay steps on the critical path.
	Steps int
}

// AnalyzeFig1d returns the Fig 1d rows for a 1-to-n multicast where each
// host is hops links away from the replication point (hops=2 in the
// figure's two-switch diagram).
func AnalyzeFig1d(n, hops int) []Analysis {
	logN := int(math.Ceil(math.Log2(float64(n + 1))))
	return []Analysis{
		{
			// Native multicast / Cepheus: one copy up, replicated as late
			// as possible; hop count is the MDT edge count.
			Scheme:          "nmcast/cepheus",
			TotalHops:       hops + n, // shared trunk + one leaf edge per receiver (best case)
			SenderCopies:    1,
			StackTraversals: 2, // sender stack + receiver stack
			Steps:           1,
		},
		{
			Scheme:          "n-unicast",
			TotalHops:       n * 2 * hops,
			SenderCopies:    n,
			StackTraversals: 2,
			Steps:           1,
		},
		{
			Scheme:          "binomial-tree",
			TotalHops:       n * 2 * hops,
			SenderCopies:    logN,
			StackTraversals: 1 + logN, // relays re-enter a host stack each round
			Steps:           logN,
		},
		{
			Scheme:          "chain",
			TotalHops:       n * 2 * hops,
			SenderCopies:    1,
			StackTraversals: 1 + n, // every node in the chain
			Steps:           n,
		},
	}
}
