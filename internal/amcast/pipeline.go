package amcast

import (
	"fmt"

	"repro/internal/roce"
)

// RDMC approximates RDMC's binomial pipeline (Behrens et al., DSN'18): the
// message is split into blocks, and in synchronized steps every node
// exchanges with its XOR partner the lowest-index block the partner lacks.
// Large transfers approach full bisection use after the log2(N) ramp-up,
// but every byte still crosses end-host stacks at every relay — which is
// why the paper's Cepheus beats it on 256MB (§V-A).
type RDMC struct {
	C      *Comm
	Blocks int
}

func (r RDMC) Name() string { return fmt.Sprintf("rdmc-%d", r.Blocks) }

func (r RDMC) Bcast(root, size int, done func()) {
	n := len(r.C.Nodes)
	if n == 1 {
		done()
		return
	}
	blocks := r.Blocks
	if blocks < 1 {
		blocks = 1
	}
	if blocks > size {
		blocks = size
	}
	blockSize := func(b int) int {
		base := size / blocks
		if b < size%blocks {
			base++
		}
		return base
	}
	d := 0
	for 1<<d < n {
		d++
	}
	has := make([][]bool, n)
	for i := range has {
		has[i] = make([]bool, blocks)
	}
	for b := 0; b < blocks; b++ {
		has[root][b] = true
	}
	allDone := func() bool {
		for i := 0; i < n; i++ {
			for b := 0; b < blocks; b++ {
				if !has[i][b] {
					return false
				}
			}
		}
		return true
	}

	type pairKey [2]int
	inFlight := make(map[pairKey][]int) // FIFO of block ids per (src,dst)
	pending := 0
	step := 0

	var runStep func()
	r.C.begin(func(dst, src int, m roce.Message) {
		key := pairKey{src, dst}
		q := inFlight[key]
		b := q[0]
		inFlight[key] = q[1:]
		has[dst][b] = true
		pending--
		if pending == 0 {
			if allDone() {
				r.C.end()
				done()
				return
			}
			step++
			runStep()
		}
	})

	runStep = func() {
		// Guard against pathological no-progress loops.
		for tries := 0; tries <= 4*d; tries++ {
			for i := 0; i < n; i++ {
				j := i ^ (1 << (step % d))
				if j >= n || j <= i {
					continue
				}
				// Bidirectional exchange: each side sends the lowest block
				// the other lacks.
				for _, dir := range [2][2]int{{i, j}, {j, i}} {
					from, to := dir[0], dir[1]
					for b := 0; b < blocks; b++ {
						if has[from][b] && !has[to][b] {
							inFlight[pairKey{from, to}] = append(inFlight[pairKey{from, to}], b)
							pending++
							r.C.send(from, to, blockSize(b))
							break
						}
					}
				}
			}
			if pending > 0 {
				return
			}
			step++
		}
		panic("amcast: rdmc schedule made no progress")
	}
	runStep()
}

// Long is the bandwidth-optimal scatter + ring-allgather broadcast
// (Van de Geijn), the algorithm HPL's documentation recommends for the
// row-swap ("long") phase. The root scatters N chunks to their home nodes;
// each chunk then circulates the ring until it has visited everyone.
type Long struct{ C *Comm }

func (Long) Name() string { return "long" }

func (l Long) Bcast(root, size int, done func()) {
	n := len(l.C.Nodes)
	if n == 1 {
		done()
		return
	}
	chunkSize := func(c int) int {
		base := size / n
		if c < size%n {
			base++
		}
		if base == 0 {
			base = 1
		}
		return base
	}
	next := func(i int) int { return (i + 1) % n }

	type pairKey [2]int
	inFlight := make(map[pairKey][]int)
	total := (n - 1) + n*(n-1) // scatter deliveries + ring deliveries
	received := 0

	sendChunk := func(from, to, c int) {
		inFlight[pairKey{from, to}] = append(inFlight[pairKey{from, to}], c)
		l.C.send(from, to, chunkSize(c))
	}

	// forward decides the ring continuation for chunk c arriving at node i.
	forward := func(i, c int) {
		if next(i) != c { // stop before revisiting the chunk's home
			sendChunk(i, next(i), c)
		}
	}

	l.C.begin(func(dst, src int, m roce.Message) {
		key := pairKey{src, dst}
		q := inFlight[key]
		c := q[0]
		inFlight[key] = q[1:]
		received++
		if received == total {
			l.C.end()
			done()
			return
		}
		forward(dst, c)
	})

	// Phase 1: scatter chunk c to its home node c (root keeps its own and
	// starts its ring leg immediately).
	for c := 0; c < n; c++ {
		if c == root {
			continue
		}
		sendChunk(root, c, c)
	}
	forward(root, root)
}
