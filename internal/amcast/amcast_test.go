package amcast

import (
	"testing"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testComm builds an n-host testbed and a communicator over all hosts.
func testComm(t *testing.T, n int) (*sim.Engine, *topo.Network, *Comm) {
	t.Helper()
	eng := sim.New(1)
	net := topo.Testbed(eng, n)
	nodes := make([]*Node, n)
	for i, h := range net.Hosts {
		nodes[i] = &Node{Host: h, RNIC: roce.NewRNIC(h, roce.DefaultConfig())}
	}
	return eng, net, NewComm(eng, nodes)
}

// runBcast runs one broadcast and returns its JCT.
func runBcast(t *testing.T, eng *sim.Engine, b Broadcaster, root, size int) sim.Time {
	t.Helper()
	start := eng.Now()
	var end sim.Time = -1
	b.Bcast(root, size, func() { end = eng.Now() })
	eng.RunUntil(start + 10*sim.Second)
	if end < 0 {
		t.Fatalf("%s bcast of %dB never completed", b.Name(), size)
	}
	return end - start
}

func TestAllBroadcastersDeliver(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		eng, _, c := testComm(t, n)
		bs := []Broadcaster{
			NUnicast{c},
			Binomial{C: c},
			Chain{C: c, Slices: 4},
			Chain{C: c, Slices: 1},
			RDMC{C: c, Blocks: 8},
			Long{c},
		}
		for _, b := range bs {
			for root := 0; root < n; root += max(1, n-1) {
				jct := runBcast(t, eng, b, root, 64<<10)
				if jct <= 0 {
					t.Fatalf("n=%d %s root=%d: nonpositive JCT", n, b.Name(), root)
				}
			}
		}
	}
}

func TestSingleNodeBcastTrivial(t *testing.T) {
	eng, _, c := testComm(t, 1)
	for _, b := range []Broadcaster{NUnicast{c}, Binomial{C: c}, Chain{C: c, Slices: 4}, RDMC{C: c, Blocks: 4}, Long{c}} {
		called := false
		b.Bcast(0, 100, func() { called = true })
		eng.Run()
		if !called {
			t.Fatalf("%s: single-node bcast did not complete immediately", b.Name())
		}
	}
}

func TestChainLatencyLinearInN(t *testing.T) {
	// Small message: Chain JCT grows ~linearly with node count.
	jct := func(n int) sim.Time {
		eng, _, c := testComm(t, n)
		return runBcast(t, eng, Chain{C: c, Slices: 1}, 0, 64)
	}
	j4, j8 := jct(4), jct(8)
	if ratio := float64(j8) / float64(j4); ratio < 1.8 || ratio > 2.8 {
		t.Fatalf("chain latency ratio 8/4 nodes = %.2f, want ~2.3 (linear)", ratio)
	}
}

func TestBinomialLatencyLogarithmic(t *testing.T) {
	jct := func(n int) sim.Time {
		eng, _, c := testComm(t, n)
		return runBcast(t, eng, Binomial{C: c}, 0, 64)
	}
	j4, j16 := jct(4), jct(16)
	// log2: 2 rounds vs 4 rounds -> ratio ~2, far from the 4x of linear.
	if ratio := float64(j16) / float64(j4); ratio > 3 {
		t.Fatalf("binomial latency ratio 16/4 nodes = %.2f; not logarithmic", ratio)
	}
}

func TestBinomialBeatsChainSmall(t *testing.T) {
	eng, _, c := testComm(t, 8)
	chain := runBcast(t, eng, Chain{C: c, Slices: 1}, 0, 64)
	bt := runBcast(t, eng, Binomial{C: c}, 0, 64)
	if bt >= chain {
		t.Fatalf("BT (%v) should beat Chain (%v) on small messages", bt, chain)
	}
}

func TestChainBeatsBinomialLarge(t *testing.T) {
	eng, _, c := testComm(t, 4)
	size := 64 << 20
	bt := runBcast(t, eng, Binomial{C: c}, 0, size)
	chain := runBcast(t, eng, Chain{C: c, Slices: 4}, 0, size)
	if chain >= bt {
		t.Fatalf("Chain (%v) should beat BT (%v) on large messages", chain, bt)
	}
}

func TestNUnicastSenderBottleneck(t *testing.T) {
	eng, net, c := testComm(t, 4)
	size := 32 << 20
	jct := runBcast(t, eng, NUnicast{c}, 0, size)
	// Three copies leave the root's 100G link: at least 3 serializations.
	minTime := net.Hosts[0].NIC.TxTime(3 * size)
	if jct < minTime {
		t.Fatalf("n-unicast JCT %v beat the physical sender bottleneck %v", jct, minTime)
	}
}

func TestRDMCFasterThanNUnicastLarge(t *testing.T) {
	eng, _, c := testComm(t, 4)
	size := 64 << 20
	nu := runBcast(t, eng, NUnicast{c}, 0, size)
	rd := runBcast(t, eng, RDMC{C: c, Blocks: 16}, 0, size)
	if rd >= nu {
		t.Fatalf("RDMC (%v) should beat n-unicast (%v) on large messages", rd, nu)
	}
}

func TestLongDeliversEveryChunk(t *testing.T) {
	for n := 2; n <= 6; n++ {
		eng, _, c := testComm(t, n)
		jct := runBcast(t, eng, Long{c}, 1%n, 1<<20)
		if jct <= 0 {
			t.Fatalf("long n=%d: bad JCT", n)
		}
	}
}

func TestCommReuseAcrossOps(t *testing.T) {
	eng, _, c := testComm(t, 4)
	b := Chain{C: c, Slices: 4}
	j1 := runBcast(t, eng, b, 0, 1<<20)
	j2 := runBcast(t, eng, b, 2, 1<<20)
	if j1 <= 0 || j2 <= 0 {
		t.Fatal("reused communicator failed")
	}
	// QPs must be reused, not leaked: 4 nodes chain uses at most n pairs
	// per direction over both roots.
	if len(c.sendQP) > 12 {
		t.Fatalf("%d QP pairs created; communicator not reusing connections", len(c.sendQP))
	}
}

func TestConcurrentCollectivePanics(t *testing.T) {
	eng, _, c := testComm(t, 4)
	Chain{C: c, Slices: 4}.Bcast(0, 1<<20, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second concurrent collective did not panic")
		}
	}()
	Binomial{C: c}.Bcast(0, 100, func() {})
	eng.Run()
}

func TestCepheusBroadcaster(t *testing.T) {
	core.ResetMcstIDs()
	eng := sim.New(1)
	net := topo.Testbed(eng, 4)
	cfg := roce.DefaultConfig()
	var members []*core.Member
	var agents []*core.Agent
	for _, h := range net.Hosts {
		r := roce.NewRNIC(h, cfg)
		agents = append(agents, core.NewAgent(r))
		members = append(members, &core.Member{Host: h, RNIC: r, QP: r.CreateQP()})
	}
	core.Attach(net.Switches[0], core.DefaultAccelConfig())
	g := core.NewGroup(eng, core.AllocMcstID(), members, 0, agents)
	g.Register(10*sim.Millisecond, func(err error) {
		if err != nil {
			t.Fatalf("register: %v", err)
		}
	})
	eng.RunUntil(10 * sim.Millisecond)
	b := &Cepheus{Group: g}
	jct := runBcast(t, eng, b, 0, 8<<20)
	// Compare with chain on the same topology shape.
	eng2, _, c2 := testComm(t, 4)
	chain := runBcast(t, eng2, Chain{C: c2, Slices: 4}, 0, 8<<20)
	if jct >= chain {
		t.Fatalf("Cepheus (%v) should beat Chain (%v) on 8MB", jct, chain)
	}
}

func TestAnalyzeFig1d(t *testing.T) {
	rows := AnalyzeFig1d(4, 2)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Analysis{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	nm := byName["nmcast/cepheus"]
	nu := byName["n-unicast"]
	bt := byName["binomial-tree"]
	ch := byName["chain"]
	if nm.TotalHops >= nu.TotalHops {
		t.Fatal("nmcast must minimize total hops")
	}
	if nm.SenderCopies != 1 || ch.SenderCopies != 1 {
		t.Fatal("nmcast and chain transmit once from the sender")
	}
	if nu.SenderCopies != 4 {
		t.Fatal("n-unicast sender copies")
	}
	if !(nm.StackTraversals < bt.StackTraversals && bt.StackTraversals < ch.StackTraversals) {
		t.Fatal("stack traversal ordering nmcast < bt < chain violated")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
