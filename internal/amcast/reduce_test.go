package amcast

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/topo"
)

// runReduce drives one reduction and returns the total and its latency.
func runReduce(t *testing.T, eng *sim.Engine, r Reducer, root, size, n int) (float64, sim.Time) {
	t.Helper()
	start := eng.Now()
	var got float64 = math.NaN()
	var end sim.Time
	r.Reduce(root, size, func(rank int) float64 { return float64(rank + 1) }, func(total float64) {
		got = total
		end = eng.Now()
	})
	eng.RunUntil(start + 10*sim.Second)
	if math.IsNaN(got) {
		t.Fatalf("%s reduce never completed", r.Name())
	}
	want := float64(n*(n+1)) / 2 // sum of rank+1
	if got != want {
		t.Fatalf("%s total = %v, want %v", r.Name(), got, want)
	}
	return got, end - start
}

func TestGatherReduce(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		eng, _, c := testComm(t, n)
		runReduce(t, eng, GatherReduce{c}, 0, 8<<10, n)
	}
}

func TestBinomialReduce(t *testing.T) {
	for _, n := range []int{2, 4, 8, 9} {
		eng, _, c := testComm(t, n)
		runReduce(t, eng, BinomialReduce{c}, 0, 8<<10, n)
		runReduce(t, eng, BinomialReduce{c}, n-1, 8<<10, n)
	}
}

func cepheusGroup(t *testing.T, n int) (*sim.Engine, *core.Group) {
	eng, g, _ := cepheusGroupNet(t, n)
	return eng, g
}

func cepheusGroupNet(t *testing.T, n int) (*sim.Engine, *core.Group, *topo.Network) {
	t.Helper()
	core.ResetMcstIDs()
	eng := sim.New(1)
	net := topo.Testbed(eng, n)
	cfg := roce.DefaultConfig()
	var members []*core.Member
	var agents []*core.Agent
	for _, h := range net.Hosts {
		r := roce.NewRNIC(h, cfg)
		agents = append(agents, core.NewAgent(r))
		members = append(members, &core.Member{Host: h, RNIC: r, QP: r.CreateQP()})
	}
	core.Attach(net.Switches[0], core.DefaultAccelConfig())
	g := core.NewGroup(eng, core.AllocMcstID(), members, 0, agents)
	ok := false
	g.Register(10*sim.Millisecond, func(err error) {
		if err != nil {
			t.Fatalf("register: %v", err)
		}
		ok = true
	})
	eng.RunUntil(10 * sim.Millisecond)
	if !ok {
		t.Fatal("registration incomplete")
	}
	return eng, g, net
}

func TestCepheusReduceAggregatesInNetwork(t *testing.T) {
	eng, g := cepheusGroup(t, 4)
	r := &CepheusReduce{Group: g}
	runReduce(t, eng, r, 0, 64<<10, 4)
	// Every contributor posted once; the root received ONE message whose
	// value is the sum — verify the in-network combining actually happened
	// by checking the root saw far fewer data packets than 3x the flow.
	rootRecv := g.Members[0].RNIC.Stats.DataRecv
	pkts := uint64((64<<10)/roce.DefaultConfig().MTU) + 1 // + priming msg
	if rootRecv > pkts+4 {
		t.Fatalf("root received %d packets; aggregation should bound it near %d", rootRecv, pkts)
	}
}

func TestCepheusReduceRepeated(t *testing.T) {
	eng, g := cepheusGroup(t, 4)
	r := &CepheusReduce{Group: g}
	for i := 0; i < 5; i++ {
		runReduce(t, eng, r, 0, 8<<10, 4)
	}
}

func TestCepheusReduceRootChange(t *testing.T) {
	eng, g := cepheusGroup(t, 4)
	r := &CepheusReduce{Group: g}
	runReduce(t, eng, r, 0, 8<<10, 4)
	runReduce(t, eng, r, 2, 8<<10, 4)
	runReduce(t, eng, r, 0, 8<<10, 4)
}

func TestCepheusReduceUnderLoss(t *testing.T) {
	eng, g, net := cepheusGroupNet(t, 4)
	r := &CepheusReduce{Group: g}
	// Prime first (lossless), then inject loss for the reduction itself:
	// lost contributions stall their slot until the contributor's RTO
	// repairs them through the replicated feedback path.
	done := false
	r.Prime(0, func() { done = true })
	for !done {
		if !eng.Step() {
			t.Fatal("prime stalled")
		}
	}
	net.Switches[0].LossRate = 5e-3
	runReduce(t, eng, r, 0, 256<<10, 4)
	if net.Switches[0].DataDrops == 0 {
		t.Skip("loss injector never fired at this seed")
	}
}

func TestCepheusReduceLatencyBeatsGather(t *testing.T) {
	// In-network aggregation should beat root-link incast for large
	// contributions.
	engC, g := cepheusGroup(t, 4)
	rc := &CepheusReduce{Group: g}
	// Warm the orientation so the comparison measures steady state.
	_, _ = runReduce(t, engC, rc, 0, 64, 4)
	_, tCeph := runReduce(t, engC, rc, 0, 8<<20, 4)

	engG, _, c := testComm(t, 4)
	_, tGather := runReduce(t, engG, GatherReduce{c}, 0, 8<<20, 4)
	if tCeph >= tGather {
		t.Fatalf("cepheus-reduce (%v) should beat gather (%v) at 8MB", tCeph, tGather)
	}
}

func TestAllReduce(t *testing.T) {
	// Compose reduce + bcast over Cepheus primitives: every node ends up
	// knowing the aggregate.
	eng, g := cepheusGroup(t, 4)
	r := &CepheusReduce{Group: g}
	b := &Cepheus{Group: g}
	var got float64
	deliveredTo := 0
	AllReduce(r, b, 0, 8<<10, func(rank int) float64 { return float64(rank + 1) }, func(total float64) {
		got = total
		deliveredTo++
	})
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	if deliveredTo != 1 {
		t.Fatalf("done fired %d times", deliveredTo)
	}
	if got != 10 {
		t.Fatalf("allreduce total %v, want 10", got)
	}
}

func TestAllReduceBaseline(t *testing.T) {
	eng, _, c := testComm(t, 5)
	var got float64 = -1
	AllReduce(GatherReduce{c}, Binomial{C: c}, 0, 8<<10,
		func(rank int) float64 { return 1 }, func(total float64) { got = total })
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	if got != 5 {
		t.Fatalf("baseline allreduce %v, want 5", got)
	}
}
