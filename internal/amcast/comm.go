// Package amcast implements the application-layer multicast baselines the
// paper compares against (§II-C, §V-A) — n-unicasts, Binomial Tree, Chain
// (sliced pipeline), an RDMC-style binomial pipeline, increasing-ring and
// the "long" scatter+allgather algorithm — plus a uniform Broadcaster
// front-end for Cepheus itself, so applications and benches can swap
// schemes freely. All baselines run over ordinary RoCE RC unicast QPs, the
// way OpenMPI/NCCL/Spark overlays do.
package amcast

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Node is one participant: a host with its RoCE engine.
type Node struct {
	Host *simnet.Host
	RNIC *roce.RNIC
}

// Broadcaster is a one-to-many collective over a fixed node set. Bcast
// delivers size bytes from the root to every other node; done fires when
// the last node holds the complete message (MPI-Bcast JCT semantics).
type Broadcaster interface {
	Name() string
	Bcast(root, size int, done func())
}

// Comm is an MPI-communicator-like object: a fixed node set with lazily
// created pairwise RC connections, reused across operations (as real MPI
// reuses its QPs). One collective runs at a time.
type Comm struct {
	Eng   *sim.Engine
	Nodes []*Node

	sendQP map[[2]int]*roce.QP // [from][to] requester-side QP

	// current operation's receive dispatcher: (dst, src, message)
	onRecv func(dst, src int, m roce.Message)
}

// NewComm builds a communicator over the nodes.
func NewComm(eng *sim.Engine, nodes []*Node) *Comm {
	return &Comm{Eng: eng, Nodes: nodes, sendQP: make(map[[2]int]*roce.QP)}
}

// qp returns (creating if needed) the sender-side QP from node i to node j.
func (c *Comm) qp(i, j int) *roce.QP {
	if i == j {
		panic("amcast: self-connection requested")
	}
	key := [2]int{i, j}
	if q, ok := c.sendQP[key]; ok {
		return q
	}
	sq := c.Nodes[i].RNIC.CreateQP()
	rq := c.Nodes[j].RNIC.CreateQP()
	sq.Connect(c.Nodes[j].Host.IP, rq.QPN)
	rq.Connect(c.Nodes[i].Host.IP, sq.QPN)
	dst, src := j, i
	rq.OnMessage = func(m roce.Message) {
		if c.onRecv != nil {
			c.onRecv(dst, src, m)
		}
	}
	c.sendQP[key] = sq
	return sq
}

// send posts a message from node i to node j under the current operation.
func (c *Comm) send(i, j, size int) { c.qp(i, j).PostSend(size, nil) }

// begin installs the operation's receive dispatcher.
func (c *Comm) begin(onRecv func(dst, src int, m roce.Message)) {
	if c.onRecv != nil {
		panic("amcast: collective already in progress on this communicator")
	}
	c.onRecv = onRecv
}

func (c *Comm) end() { c.onRecv = nil }

// ---- n-unicasts ----

// NUnicast is the straightforward AMcast: the sender transmits identical
// data independently to every receiver, saturating its outbound link
// (Fig 1d's bandwidth bottleneck).
type NUnicast struct{ C *Comm }

func (NUnicast) Name() string { return "n-unicast" }

func (b NUnicast) Bcast(root, size int, done func()) {
	n := len(b.C.Nodes)
	remaining := n - 1
	if remaining == 0 {
		done()
		return
	}
	b.C.begin(func(dst, src int, m roce.Message) {
		remaining--
		if remaining == 0 {
			b.C.end()
			done()
		}
	})
	for j := 0; j < n; j++ {
		if j != root {
			b.C.send(root, j, size)
		}
	}
}

// ---- Binomial Tree ----

// Binomial is the latency-oriented overlay (Fig 1b): O(log2 N) relay
// rounds, each node forwarding the message to its children after receiving
// it (farthest subtree first, as MPI orders it). Segment > 0 additionally
// pipelines large messages through the tree in segments, as OpenMPI's
// tuned segmented binomial does; the default relays whole messages, which
// is the configuration the paper's Fig 9/12 BT numbers correspond to.
type Binomial struct {
	C *Comm
	// Segment is the optional pipeline segment size in bytes; 0 relays
	// whole messages.
	Segment int
}

func (Binomial) Name() string { return "binomial-tree" }

func (b Binomial) Bcast(root, size int, done func()) {
	n := len(b.C.Nodes)
	if n == 1 {
		done()
		return
	}
	seg := b.Segment
	if seg <= 0 || seg > size {
		seg = size
	}
	nseg := (size + seg - 1) / seg
	segSize := func(s int) int {
		if s == nseg-1 {
			return size - (nseg-1)*seg
		}
		return seg
	}
	abs := func(rank int) int { return (rank + root) % n }
	// children of rank: rank+2^k for each k with 2^k > rank (rank 0 covers
	// all powers), farthest subtree first — the standard MPI ordering.
	children := func(rank int) []int {
		start := uint(0)
		for rank>>start != 0 {
			start++
		}
		var out []int
		for k := start; ; k++ {
			child := rank + 1<<k
			if child >= n {
				break
			}
			out = append(out, child)
		}
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	forward := func(rank, s int) {
		for _, c := range children(rank) {
			b.C.send(abs(rank), abs(c), segSize(s))
		}
	}
	got := make([]int, n) // segments received per rank (in order per QP)
	remaining := (n - 1) * nseg
	b.C.begin(func(dst, src int, m roce.Message) {
		rank := (dst - root + n) % n
		s := got[rank]
		got[rank]++
		remaining--
		if remaining == 0 {
			b.C.end()
			done()
			return
		}
		forward(rank, s)
	})
	for s := 0; s < nseg; s++ {
		forward(0, s)
	}
}

// ---- Chain ----

// Chain is the throughput-oriented overlay (Fig 1c): nodes form a logical
// chain and relay slices as they arrive. The paper fixes Slices=4 (equal to
// the host count) as the practical configuration, since every intermediate
// host pays end-host stack cost per slice.
type Chain struct {
	C      *Comm
	Slices int
}

func (c Chain) Name() string {
	if c.Slices <= 1 {
		return "increasing-ring"
	}
	return fmt.Sprintf("chain-%d", c.Slices)
}

func (c Chain) Bcast(root, size int, done func()) {
	n := len(c.C.Nodes)
	if n == 1 {
		done()
		return
	}
	slices := c.Slices
	if slices < 1 {
		slices = 1
	}
	if slices > size {
		slices = size
	}
	sliceSize := func(s int) int {
		base := size / slices
		if s < size%slices {
			base++
		}
		return base
	}
	next := func(i int) int { return (i + 1) % n }
	last := (root - 1 + n) % n
	remaining := (n - 1) * slices
	c.C.begin(func(dst, src int, m roce.Message) {
		remaining--
		if remaining == 0 {
			c.C.end()
			done()
			return
		}
		if dst != last {
			c.C.send(dst, next(dst), m.Size)
		}
	})
	for s := 0; s < slices; s++ {
		c.C.send(root, next(root), sliceSize(s))
	}
}

// ---- Cepheus front-end ----

// Cepheus adapts a registered core.Group to the Broadcaster interface: the
// source posts once; the fabric replicates; done fires when every member
// has delivered the message (which, by feedback aggregation, coincides with
// the sender's completion up to one stack delay).
//
// When successive Bcast calls use different roots — HPL's panel broadcast
// rotates the root every iteration — the broadcaster performs the §III-E
// PSN Synchronization between the old and new source before posting, so
// the group keeps a single MFT and no QP is re-established.
type Cepheus struct {
	Group *core.Group
	// SrcIndex maps a Bcast root to the group member index; identity when
	// nil.
	SrcIndex func(root int) int

	lastSrc int
}

func (*Cepheus) Name() string { return "cepheus" }

func (c *Cepheus) Bcast(root, size int, done func()) {
	idx := root
	if c.SrcIndex != nil {
		idx = c.SrcIndex(root)
	}
	if idx != c.lastSrc {
		c.Group.SwitchSource(c.lastSrc, idx)
		c.lastSrc = idx
	}
	members := c.Group.Members
	remaining := len(members) - 1
	if remaining == 0 {
		done()
		return
	}
	for i, m := range members {
		if i == idx {
			continue
		}
		qp := m.QP
		qp.OnMessage = func(msg roce.Message) {
			remaining--
			if remaining == 0 {
				done()
			}
		}
	}
	members[idx].QP.PostSend(size, nil)
}

// BcastRecord starts a broadcast like Bcast but records completions instead
// of counting them: member i's delivery time is written into times[i] (and
// the source's slot gets the post time). Non-source slots are reset to -1
// first, so "done" is times[i] >= 0 for all i.
//
// This is the parallel-mode entry point: under a partitioned run each
// member's OnMessage fires on that member's own logical process, so a shared
// decrement counter (Bcast's done accounting) would race across workers.
// Here every slot of times is written only by its owning member's LP, and
// the coordinator reads the slice between windows — where the barrier
// provides the happens-before edge — making completion detection race-free
// without any atomics.
func (c *Cepheus) BcastRecord(root, size int, times []sim.Time) {
	idx := root
	if c.SrcIndex != nil {
		idx = c.SrcIndex(root)
	}
	if idx != c.lastSrc {
		c.Group.SwitchSource(c.lastSrc, idx)
		c.lastSrc = idx
	}
	members := c.Group.Members
	if len(times) != len(members) {
		panic("amcast: BcastRecord times length must equal the member count")
	}
	for i := range times {
		times[i] = -1
	}
	for i, m := range members {
		if i == idx {
			continue
		}
		i := i
		eng := m.RNIC.Engine()
		m.QP.OnMessage = func(msg roce.Message) { times[i] = eng.Now() }
	}
	times[idx] = members[idx].RNIC.Engine().Now()
	members[idx].QP.PostSend(size, nil)
}
