package amcast

import (
	"repro/internal/core"
	"repro/internal/roce"
)

// Reducer is a many-to-one collective: every node contributes size bytes
// and a partial value; done fires at the root with the group aggregate.
// This is the MPI-Reduce-shaped primitive the paper names as future work;
// the Cepheus implementation aggregates in-network (see internal/core's
// reduction extension), the baselines gather over unicast.
type Reducer interface {
	Name() string
	Reduce(root, size int, value func(rank int) float64, done func(total float64))
}

// CepheusReduce runs the reduction over a registered group's MDT. The tree
// orientation follows the current multicast source, so the root must have
// been the group's most recent sender (Prime arranges that).
type CepheusReduce struct {
	Group *core.Group

	lastRoot int
	primed   bool
}

func (*CepheusReduce) Name() string { return "cepheus-reduce" }

// Prime orients the MDT at root by running a minimal multicast from it
// (with PSN synchronization if the source moves). It completes when every
// member delivered the priming message.
func (c *CepheusReduce) Prime(root int, done func()) {
	if c.primed && c.lastRoot == root {
		done()
		return
	}
	if c.primed && c.lastRoot != root {
		// Moving the reduction root: contributors' and the old root's PSN
		// lines have diverged, so the whole group realigns (SyncAllPSN)
		// rather than the pairwise §III-E sync.
		c.Group.SyncAllPSN()
	}
	c.lastRoot = root
	c.primed = true
	members := c.Group.Members
	remaining := len(members) - 1
	for i, m := range members {
		if i == root {
			continue
		}
		m.QP.OnMessage = func(roce.Message) {
			remaining--
			if remaining == 0 {
				done()
			}
		}
	}
	members[root].QP.PostSend(64, nil)
}

// Reduce posts every member's contribution; the fabric combines them and
// the root's QP delivers one message carrying the aggregate (plus the
// root's own local value, added here as MPI-Reduce does).
func (c *CepheusReduce) Reduce(root, size int, value func(rank int) float64, done func(total float64)) {
	run := func() {
		members := c.Group.Members
		members[root].QP.OnMessage = func(m roce.Message) {
			done(m.Value + value(root))
		}
		for i, m := range members {
			if i == root {
				continue
			}
			m.QP.PostReduce(size, value(i), nil)
		}
	}
	if !c.primed || c.lastRoot != root {
		c.Prime(root, run)
		return
	}
	run()
}

// GatherReduce is the AMcast baseline: every node unicasts its
// contribution to the root, which folds them in software — n-1 incasting
// flows on the root's link, the dual of n-unicast broadcast.
type GatherReduce struct{ C *Comm }

func (GatherReduce) Name() string { return "gather-reduce" }

func (g GatherReduce) Reduce(root, size int, value func(rank int) float64, done func(total float64)) {
	n := len(g.C.Nodes)
	total := value(root)
	remaining := n - 1
	if remaining == 0 {
		done(total)
		return
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = value(i)
	}
	g.C.begin(func(dst, src int, m roce.Message) {
		total += vals[src]
		remaining--
		if remaining == 0 {
			g.C.end()
			done(total)
		}
	})
	for i := 0; i < n; i++ {
		if i != root {
			g.C.send(i, root, size)
		}
	}
}

// AllReduce composes a reduction with a broadcast of the result — the
// MPI-Allreduce shape, here built from the two Cepheus primitives (or any
// baseline pair). done fires when every node holds the aggregate.
func AllReduce(r Reducer, b Broadcaster, root, size int, value func(rank int) float64, done func(total float64)) {
	r.Reduce(root, size, value, func(total float64) {
		b.Bcast(root, size, func() { done(total) })
	})
}

// BinomialReduce is the tree baseline: ranks fold their subtree's partial
// before forwarding, log2(N) levels of software aggregation.
type BinomialReduce struct{ C *Comm }

func (BinomialReduce) Name() string { return "binomial-reduce" }

func (b BinomialReduce) Reduce(root, size int, value func(rank int) float64, done func(total float64)) {
	n := len(b.C.Nodes)
	if n == 1 {
		done(value(root))
		return
	}
	abs := func(rank int) int { return (rank + root) % n }
	// partial[r] accumulates rank r's subtree; pending[r] counts children
	// not yet heard from.
	partial := make([]float64, n)
	pending := make([]int, n)
	parent := make([]int, n)
	for r := 0; r < n; r++ {
		partial[r] = value(abs(r))
		if r != 0 {
			// Parent clears the lowest set bit.
			parent[r] = r & (r - 1)
			pending[parent[r]]++
		}
	}
	// Leaves send immediately; internal ranks wait for their children.
	sendUp := func(r int) {
		b.C.send(abs(r), abs(parent[r]), size)
	}
	b.C.begin(func(dst, src int, m roce.Message) {
		r := (dst - root + n) % n
		child := (src - root + n) % n
		partial[r] += partial[child]
		pending[r]--
		if pending[r] == 0 {
			if r == 0 {
				b.C.end()
				done(partial[0])
				return
			}
			sendUp(r)
		}
	})
	for r := 1; r < n; r++ {
		if pending[r] == 0 {
			sendUp(r)
		}
	}
}
