package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func TestSamplerCollects(t *testing.T) {
	eng := sim.New(1)
	v := 0.0
	s := NewSampler(eng, sim.Millisecond, func() float64 { v++; return v })
	eng.RunUntil(5 * sim.Millisecond)
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("%d samples in 5ms at 1ms period", len(pts))
	}
	for i, p := range pts {
		if p.T != sim.Time(i+1)*sim.Millisecond || p.V != float64(i+1) {
			t.Fatalf("sample %d = %+v", i, p)
		}
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.New(1)
	s := NewSampler(eng, sim.Millisecond, func() float64 { return 1 })
	eng.RunUntil(2 * sim.Millisecond)
	s.Stop()
	eng.RunUntil(10 * sim.Millisecond)
	if len(s.Points()) != 2 {
		t.Fatalf("%d samples after Stop at 2ms", len(s.Points()))
	}
}

// TestSamplerStopCancelsHeapSlot pins the Timer-based re-arm: Stop must
// remove the pending poll from the event heap, so a run over a stopped
// sampler drains instead of ticking forever (the closure-based re-arm left
// a live event behind and Run never returned on a sampler-only engine).
func TestSamplerStopCancelsHeapSlot(t *testing.T) {
	eng := sim.New(1)
	s := NewSampler(eng, sim.Millisecond, func() float64 { return 1 })
	eng.RunUntil(3 * sim.Millisecond)
	if eng.Pending() != 1 {
		t.Fatalf("%d pending events while armed, want the one poll", eng.Pending())
	}
	s.Stop()
	if eng.Pending() != 0 {
		t.Fatalf("%d pending events after Stop, want 0: the poll still holds a heap slot", eng.Pending())
	}
	// With the heap empty, Run terminates immediately at the same virtual time.
	eng.Run()
	if eng.Now() != 3*sim.Millisecond {
		t.Fatalf("engine advanced to %v after Stop; the abandoned poll kept ticking", eng.Now())
	}
	if len(s.Points()) != 3 {
		t.Fatalf("%d samples, want 3", len(s.Points()))
	}
}

func TestSamplerCSV(t *testing.T) {
	eng := sim.New(1)
	s := NewSampler(eng, sim.Millisecond, func() float64 { return 2.5 })
	eng.RunUntil(2 * sim.Millisecond)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "1000000,2.5\n2000000,2.5\n"
	if b.String() != want {
		t.Fatalf("csv %q, want %q", b.String(), want)
	}
}

func TestRateSampler(t *testing.T) {
	eng := sim.New(1)
	var bytes uint64
	s := RateSampler(eng, sim.Millisecond, func() uint64 { return bytes })
	// 1.25MB in the first ms = 10 Gbps.
	eng.After(sim.Millisecond/2, func() { bytes += 1_250_000 })
	eng.RunUntil(2 * sim.Millisecond)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("%d samples", len(pts))
	}
	if pts[0].V < 9.9 || pts[0].V > 10.1 {
		t.Fatalf("first window %v Gbps, want 10", pts[0].V)
	}
	if pts[1].V != 0 {
		t.Fatalf("second window %v Gbps, want 0", pts[1].V)
	}
}

func TestTapCountsWithoutDisturbing(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	tap := &Tap{Filter: func(p *simnet.Packet) bool { return p.Type == simnet.Data }}
	tap.Install(n.Switches[0])
	delivered := 0
	n.Hosts[1].Handler = func(p *simnet.Packet) { delivered++ }
	for i := 0; i < 3; i++ {
		n.Hosts[0].Send(&simnet.Packet{Type: simnet.Data, Src: n.Hosts[0].IP, Dst: n.Hosts[1].IP, Payload: 64})
	}
	n.Hosts[0].Send(&simnet.Packet{Type: simnet.Ack, Src: n.Hosts[0].IP, Dst: n.Hosts[1].IP})
	eng.Run()
	if delivered != 4 {
		t.Fatalf("tap disturbed forwarding: %d delivered", delivered)
	}
	if tap.Matched != 3 {
		t.Fatalf("tap matched %d, want 3 data packets", tap.Matched)
	}
}

func TestTapChainsToInnerHook(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	dropAll := hookFunc(func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool { return true })
	n.Switches[0].Hook = dropAll
	tap := &Tap{}
	tap.Install(n.Switches[0])
	delivered := 0
	n.Hosts[1].Handler = func(p *simnet.Packet) { delivered++ }
	n.Hosts[0].Send(&simnet.Packet{Type: simnet.Data, Src: n.Hosts[0].IP, Dst: n.Hosts[1].IP, Payload: 64})
	eng.Run()
	if delivered != 0 {
		t.Fatal("inner hook's consume decision was overridden")
	}
	if tap.Matched != 1 {
		t.Fatal("tap did not observe the packet")
	}
}

type hookFunc func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool

func (f hookFunc) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	return f(sw, p, in)
}
