// Package trace provides measurement utilities for experiments: periodic
// samplers for time-series (throughput curves like Fig 14, queue depth
// over time) and a packet tap that observes traffic at a switch without
// disturbing the forwarding path.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Point is one sample of a time series.
type Point struct {
	T sim.Time
	V float64
}

// Sampler polls a probe on a fixed period of virtual time.
type Sampler struct {
	Interval sim.Time

	eng    *sim.Engine
	probe  func() float64
	points []Point
	tm     *sim.Timer
}

// NewSampler starts sampling probe every interval, beginning one interval
// from now.
func NewSampler(eng *sim.Engine, interval sim.Time, probe func() float64) *Sampler {
	s := &Sampler{Interval: interval, eng: eng, probe: probe}
	s.tm = eng.NewTimer(s.sample)
	s.tm.Reset(s.Interval)
	return s
}

func (s *Sampler) sample() {
	s.points = append(s.points, Point{T: s.eng.Now(), V: s.probe()})
	s.tm.Reset(s.Interval)
}

// Stop ends sampling and cancels the pending poll, so a stopped sampler no
// longer holds a slot in the event heap (a drained run can complete instead
// of ticking an abandoned sampler forever).
func (s *Sampler) Stop() { s.tm.Stop() }

// Points returns the collected series.
func (s *Sampler) Points() []Point { return s.points }

// WriteCSV emits "t_ns,value" rows.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%d,%g\n", int64(p.T), p.V); err != nil {
			return err
		}
	}
	return nil
}

// RateSampler converts a monotone byte counter into a Gbps series: each
// sample is the throughput over the last interval.
func RateSampler(eng *sim.Engine, interval sim.Time, counter func() uint64) *Sampler {
	last := counter()
	return NewSampler(eng, interval, func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(delta) * 8 / interval.Seconds() / 1e9
	})
}

// Tap observes packets at a switch, delegating forwarding decisions to the
// wrapped hook (or plain forwarding when Inner is nil). Use it to count or
// log traffic classes without modifying the data path.
type Tap struct {
	Inner  simnet.SwitchHook
	Filter func(p *simnet.Packet) bool // nil matches everything

	Matched uint64
	OnMatch func(p *simnet.Packet, in *simnet.Port)
}

// Install wraps the switch's current hook with the tap.
func (t *Tap) Install(sw *simnet.Switch) {
	t.Inner = sw.Hook
	sw.Hook = t
}

// Handle implements simnet.SwitchHook.
func (t *Tap) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	if t.Filter == nil || t.Filter(p) {
		t.Matched++
		if t.OnMatch != nil {
			t.OnMatch(p, in)
		}
	}
	if t.Inner != nil {
		return t.Inner.Handle(sw, p, in)
	}
	return false
}
