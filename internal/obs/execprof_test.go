package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// synthStats builds a hand-checkable snapshot: 4 LPs on 2 workers, LP 0 hot
// enough to trip both the imbalance and hot-LP diagnoses, merge the dominant
// stall, 90% of windows saturated.
func synthStats() *sim.ExecStats {
	st := &sim.ExecStats{
		Workers:          2,
		LPs:              4,
		Lookahead:        500,
		Runs:             1,
		RunNs:            2000,
		Windows:          100,
		SaturatedWindows: 90,
		VirtualAdvance:   1_000_000,
		MaxWindowAdvance: 50_000,
		Phases: []sim.WorkerPhase{
			{Worker: 0, LPs: 2, Windows: 100, ExecNs: 800, MergeNs: 100, SpinNs: 50, ParkNs: 50, SeqNs: 20},
			{Worker: 1, LPs: 2, Windows: 100, ExecNs: 400, MergeNs: 600, SpinNs: 100, ParkNs: 100},
		},
		LPWorker:    []int{0, 0, 1, 1},
		LPWeights:   []float64{10, 1, 2, 3},
		LPEvents:    []uint64{1000, 100, 200, 300},
		LPWindows:   []uint64{100, 40, 60, 80},
		LPMaxWindow: []uint64{30, 5, 8, 12},
		Traffic:     make([]uint64, 16),
	}
	st.Traffic[0*4+1] = 5
	st.Traffic[2*4+3] = 50
	st.Traffic[3*4+0] = 10
	st.CrossMsgs = 65
	return st
}

func approx(got, want float64) bool { return math.Abs(got-want) < 1e-9 }

func TestBuildExecReportNil(t *testing.T) {
	if r := BuildExecReport(nil, nil); r != nil {
		t.Fatalf("BuildExecReport(nil) = %+v, want nil", r)
	}
}

func TestBuildExecReportDerived(t *testing.T) {
	r := BuildExecReport(synthStats(), []string{"edge-a", "edge-b"})
	if r.TotalEvents != 1600 {
		t.Fatalf("TotalEvents = %d, want 1600", r.TotalEvents)
	}
	if !approx(r.EventsPerWindow, 16) || !approx(r.MsgsPerWindow, 0.65) {
		t.Fatalf("window shape: %.2f events, %.2f msgs (want 16, 0.65)", r.EventsPerWindow, r.MsgsPerWindow)
	}
	if !approx(r.SaturatedPct, 90) || !approx(r.AvgAdvanceNs, 10_000) {
		t.Fatalf("saturation %.1f%%, avg advance %.0f (want 90, 10000)", r.SaturatedPct, r.AvgAdvanceNs)
	}
	// 100 windows over 1ms of virtual advance = 100 barriers per virtual ms.
	if !approx(r.BarriersPerVirtualMs, 100) {
		t.Fatalf("BarriersPerVirtualMs = %v, want 100", r.BarriersPerVirtualMs)
	}

	// Worker 0 owns LPs {0,1}: 1100 events of 1600 -> imbalance 1.375; the
	// same split on weights (11 of 16).
	if !approx(r.EventImbalance, 1.375) || !approx(r.WeightImbalance, 1.375) {
		t.Fatalf("imbalance: events %.3f, weight %.3f (want 1.375 both)", r.EventImbalance, r.WeightImbalance)
	}
	if len(r.Workers_) != 2 {
		t.Fatalf("worker lines = %d, want 2", len(r.Workers_))
	}
	w0 := r.Workers_[0]
	if w0.Events != 1100 || !approx(w0.Weight, 11) {
		t.Fatalf("worker 0 load: %d events, weight %.0f (want 1100, 11)", w0.Events, w0.Weight)
	}
	if !approx(w0.ExecPct, 100*800.0/1020.0) {
		t.Fatalf("worker 0 exec%% = %.2f, want %.2f", w0.ExecPct, 100*800.0/1020.0)
	}

	// Phase totals: exec 1200, merge 700, spin 150, park 150, seq 20.
	// Merge dominates the 1020ns of stall; efficiency = 1200/(2000*2).
	if r.DominantStall != PhaseMerge || !approx(r.StallPct, 100*700.0/1020.0) {
		t.Fatalf("stall = %s %.1f%%, want merge %.1f%%", r.DominantStall, r.StallPct, 100*700.0/1020.0)
	}
	if !approx(r.ExecEfficiency, 0.3) {
		t.Fatalf("ExecEfficiency = %.3f, want 0.3", r.ExecEfficiency)
	}

	// LP loads ranked by events; labels fall back past the given slice.
	if r.LPLoads[0].LP != 0 || r.LPLoads[0].Label != "edge-a" || r.LPLoads[0].Events != 1000 {
		t.Fatalf("hottest LP = %+v, want LP 0 edge-a 1000", r.LPLoads[0])
	}
	if r.LPLoads[1].LP != 3 || r.LPLoads[1].Label != "lp3" {
		t.Fatalf("second LP = %+v, want LP 3 lp3", r.LPLoads[1])
	}

	// Edges ranked by messages, zero cells dropped.
	if len(r.TopEdges) != 3 {
		t.Fatalf("edges = %d, want 3 nonzero", len(r.TopEdges))
	}
	if e := r.TopEdges[0]; e.Src != 2 || e.Dst != 3 || e.Msgs != 50 {
		t.Fatalf("heaviest edge = %+v, want 2->3 x50", e)
	}

	// Diagnosis: merge stall, imbalance (>1.25), hot LP (62.5% > 37.5%),
	// saturated (>80%), and the efficiency line; not the inline note.
	joined := strings.Join(r.Diagnosis, "\n")
	for _, want := range []string{
		"dominant stall is cross-LP merge",
		"busiest worker executes 1.38x the mean",
		"hottest LP edge-a (worker 0) executes 62% of all events",
		"90% of windows are back-to-back",
		"exec efficiency 30%",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("diagnosis missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "inline") {
		t.Fatalf("inline note on a parallel run:\n%s", joined)
	}
}

func TestBuildExecReportInlineAndTopK(t *testing.T) {
	st := synthStats()
	st.Inline = true
	// Blow up the LP count to check the top-k cut: 40 LPs, each with a
	// distinct event count and a nonzero edge to its neighbour.
	n := 40
	st.LPs = n
	st.LPWorker = make([]int, n)
	st.LPWeights = nil
	st.LPEvents = make([]uint64, n)
	st.LPWindows = make([]uint64, n)
	st.LPMaxWindow = make([]uint64, n)
	st.Traffic = make([]uint64, n*n)
	st.CrossMsgs = 0
	for i := 0; i < n; i++ {
		st.LPEvents[i] = uint64(1 + i)
		st.Traffic[i*n+(i+1)%n] = uint64(1 + i)
		st.CrossMsgs += uint64(1 + i)
	}
	r := BuildExecReport(st, nil)
	if len(r.LPLoads) != 12 || len(r.TopEdges) != 12 {
		t.Fatalf("top-k cut: %d LP loads, %d edges (want 12, 12)", len(r.LPLoads), len(r.TopEdges))
	}
	if r.LPLoads[0].Events != 40 || r.TopEdges[0].Msgs != 40 {
		t.Fatalf("ranking broken after cut: hottest LP %d events, heaviest edge %d msgs",
			r.LPLoads[0].Events, r.TopEdges[0].Msgs)
	}
	if !strings.Contains(strings.Join(r.Diagnosis, "\n"), "inline single-goroutine path") {
		t.Fatalf("inline run missing inline note: %v", r.Diagnosis)
	}
}

func TestWriteExecReport(t *testing.T) {
	r := BuildExecReport(synthStats(), []string{"edge-a", "edge-b"})
	var buf bytes.Buffer
	if err := WriteExecReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== executor profile: 2 workers, 4 LPs",
		"per-worker phase breakdown",
		"hottest LPs:",
		"heaviest cross-LP edges:",
		"edge-a",
		"lp3",
		"diagnosis:",
		"dominant stall: merge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
