package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Group-scoped attribution: every delivered, dropped, and retransmitted byte
// in the fabric is booked against the multicast group id that owns it, per
// LP, with the same single-writer discipline as the fabric counters
// (fabric.go). The hot path when attribution is disabled is one nil check;
// when enabled it is a cached-cell pointer add. Nothing here schedules
// events, mutates packets, or draws randomness, so enabling group stats is
// digest- and trace-byte-neutral by construction at every worker count.

// GroupAddrBase mirrors simnet.MulticastBase (obs cannot import simnet —
// simnet imports obs). Addresses at or above it are multicast group ids.
const GroupAddrBase uint32 = 0xE0000000

// IsGroupAddr reports whether a is a multicast group id (McstID).
func IsGroupAddr(a uint32) bool { return a >= GroupAddrBase }

// DefaultGoodputBucket is the goodput time-series resolution when the
// caller passes 0: fine enough that a fat-tree broadcast (~3.5ms JCT)
// yields tens of points, coarse enough that an hour of simulated time is
// still a bounded map.
const DefaultGoodputBucket = 100 * sim.Microsecond

// GBucket is one goodput time-series bucket: everything the group did in
// [Start, Start+bucket).
type GBucket struct {
	Bytes     int64  // delivered payload bytes
	Pkts      uint64 // accepted data packets
	Msgs      uint64 // completed messages
	Slow      uint64 // messages over the group's delivery-latency objective
	Drops     uint64 // frames dropped anywhere in the fabric
	DropBytes int64  // bytes of those frames
	Retrans   uint64 // retransmitted data packets
	RetxBytes int64  // payload bytes of those retransmissions
}

func (b *GBucket) add(o *GBucket) {
	b.Bytes += o.Bytes
	b.Pkts += o.Pkts
	b.Msgs += o.Msgs
	b.Slow += o.Slow
	b.Drops += o.Drops
	b.DropBytes += o.DropBytes
	b.Retrans += o.Retrans
	b.RetxBytes += o.RetxBytes
}

// GroupCell is one LP's accumulator for one multicast group. Exactly one
// goroutine (the owning LP) writes a cell; readers wait for quiescence.
// Requester-side RNICs cache the cell pointer per QP, so the steady-state
// cost of attribution is a handful of field adds.
type GroupCell struct {
	group  uint32
	bucket sim.Time
	slowNs int64 // delivery objective; 0 = no objective declared

	DeliveredBytes int64
	Pkts           uint64
	Messages       uint64
	DroppedPkts    uint64
	DroppedBytes   int64
	RetransPkts    uint64
	RetransBytes   int64
	Lat            Histogram // per-message delivery latency, ns

	bk      map[int64]*GBucket
	lastIdx int64
	lastBk  *GBucket
}

// at returns the bucket covering t, caching the last one touched: traffic
// is time-local, so the common case is a pointer compare, not a map lookup.
func (c *GroupCell) at(t sim.Time) *GBucket {
	idx := int64(t / c.bucket)
	if c.lastBk != nil && idx == c.lastIdx {
		return c.lastBk
	}
	b := c.bk[idx]
	if b == nil {
		b = &GBucket{}
		c.bk[idx] = b
	}
	c.lastIdx, c.lastBk = idx, b
	return b
}

// Packet books one accepted data packet's payload.
func (c *GroupCell) Packet(at sim.Time, payload int64) {
	c.DeliveredBytes += payload
	c.Pkts++
	b := c.at(at)
	b.Bytes += payload
	b.Pkts++
}

// Message books one completed message delivery: latency in ns from first
// emission to in-order acceptance of the last packet at this receiver.
func (c *GroupCell) Message(at sim.Time, latNs int64) {
	c.Messages++
	c.Lat.Observe(latNs)
	b := c.at(at)
	b.Msgs++
	if c.slowNs > 0 && latNs > c.slowNs {
		b.Slow++
	}
}

// Drop books one frame the fabric killed while it belonged to this group.
func (c *GroupCell) Drop(at sim.Time, frameBytes int64) {
	c.DroppedPkts++
	c.DroppedBytes += frameBytes
	b := c.at(at)
	b.Drops++
	b.DropBytes += frameBytes
}

// Retransmit books one retransmitted data packet.
func (c *GroupCell) Retransmit(at sim.Time, payload int64) {
	c.RetransPkts++
	c.RetransBytes += payload
	b := c.at(at)
	b.Retrans++
	b.RetxBytes += payload
}

// GroupLP is one logical process's shard of the group-stats registry.
// A nil *GroupLP is a valid no-op target — the nil check is the entire
// disabled cost, exactly like FabricLP.
type GroupLP struct {
	gs    *GroupStats
	cells map[uint32]*GroupCell
}

// Cell returns (lazily creating) this LP's accumulator for group. Returns
// nil on a nil receiver so callers can cache the result unconditionally.
func (l *GroupLP) Cell(group uint32) *GroupCell {
	if l == nil {
		return nil
	}
	c := l.cells[group]
	if c == nil {
		c = &GroupCell{
			group:  group,
			bucket: l.gs.bucket,
			slowNs: l.gs.slowFor(group),
			bk:     make(map[int64]*GBucket),
		}
		l.cells[group] = c
	}
	return c
}

// Drop books a dropped frame against group. Safe on a nil receiver; drop
// paths are cold, so the per-call map lookup is fine.
func (l *GroupLP) Drop(group uint32, at sim.Time, frameBytes int64) {
	if l == nil {
		return
	}
	l.Cell(group).Drop(at, frameBytes)
}

// GroupStats is the cluster-wide registry: one GroupLP shard per logical
// process, merged deterministically at read time (between runs, when every
// shard is quiescent — the same contract as Fabric.Total).
type GroupStats struct {
	bucket sim.Time
	lps    []*GroupLP
	objs   map[uint32]SLOObjective
	def    *SLOObjective
}

// NewGroupStats creates a registry with n shards (n = number of LPs; 1 for
// sequential execution). bucket is the goodput time-series resolution
// (0 selects DefaultGoodputBucket).
func NewGroupStats(n int, bucket sim.Time) *GroupStats {
	if n < 1 {
		n = 1
	}
	if bucket <= 0 {
		bucket = DefaultGoodputBucket
	}
	g := &GroupStats{bucket: bucket, lps: make([]*GroupLP, n)}
	for i := range g.lps {
		g.lps[i] = &GroupLP{gs: g, cells: make(map[uint32]*GroupCell)}
	}
	return g
}

// LP returns the shard for logical process i (nil on a nil receiver).
func (g *GroupStats) LP(i int) *GroupLP {
	if g == nil {
		return nil
	}
	return g.lps[i]
}

// Bucket returns the goodput time-series resolution.
func (g *GroupStats) Bucket() sim.Time { return g.bucket }

// SetObjective declares the SLO objective for one group. Must be called
// before the group's traffic starts: the delivery-latency threshold is
// copied into each per-LP cell at its first packet.
func (g *GroupStats) SetObjective(group uint32, o SLOObjective) {
	if g.objs == nil {
		g.objs = make(map[uint32]SLOObjective)
	}
	g.objs[group] = o
}

// SetDefaultObjective declares the objective applied to every group without
// a per-group override. Must precede traffic, like SetObjective.
func (g *GroupStats) SetDefaultObjective(o SLOObjective) { g.def = &o }

// ObjectiveFor returns the declared objective for group, falling back to
// the default; ok is false when neither exists.
func (g *GroupStats) ObjectiveFor(group uint32) (SLOObjective, bool) {
	if g == nil {
		return SLOObjective{}, false
	}
	if o, ok := g.objs[group]; ok {
		return o, true
	}
	if g.def != nil {
		return *g.def, true
	}
	return SLOObjective{}, false
}

func (g *GroupStats) slowFor(group uint32) int64 {
	if o, ok := g.ObjectiveFor(group); ok {
		return int64(o.DeliveryP99)
	}
	return 0
}

// GoodputPoint is one point of a group's goodput time-series.
type GoodputPoint struct {
	Start sim.Time // bucket start (inclusive)
	GBucket
}

// GroupReport is the merged, quiescent view of one group.
type GroupReport struct {
	Group          uint32 // the McstID (class-D address)
	DeliveredBytes int64
	Pkts           uint64
	Messages       uint64
	DroppedPkts    uint64
	DroppedBytes   int64
	RetransPkts    uint64
	RetransBytes   int64
	Latency        Summary
	Bucket         sim.Time
	Series         []GoodputPoint // sorted by Start, sparse (empty buckets omitted)

	hist Histogram // merged latency histogram, kept for fleet quantiles
}

// ID returns the small group number (Group - GroupAddrBase).
func (r *GroupReport) ID() uint32 { return r.Group - GroupAddrBase }

// Hist returns a copy of the merged per-message latency histogram.
func (r *GroupReport) Hist() Histogram { return r.hist }

// Snapshot merges every shard into one report per group, sorted by group
// id. Only meaningful while the simulation is quiescent; the merge is
// commutative sums and bucket-index keyed adds, so the result is identical
// at every worker count.
func (g *GroupStats) Snapshot() []GroupReport {
	if g == nil {
		return nil
	}
	ids := make([]uint32, 0, 8)
	seen := make(map[uint32]bool)
	for _, lp := range g.lps {
		for id := range lp.cells {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]GroupReport, 0, len(ids))
	for _, id := range ids {
		r := GroupReport{Group: id, Bucket: g.bucket}
		bk := make(map[int64]*GBucket)
		for _, lp := range g.lps {
			c := lp.cells[id]
			if c == nil {
				continue
			}
			r.DeliveredBytes += c.DeliveredBytes
			r.Pkts += c.Pkts
			r.Messages += c.Messages
			r.DroppedPkts += c.DroppedPkts
			r.DroppedBytes += c.DroppedBytes
			r.RetransPkts += c.RetransPkts
			r.RetransBytes += c.RetransBytes
			r.hist.Merge(&c.Lat)
			for idx, b := range c.bk {
				m := bk[idx]
				if m == nil {
					m = &GBucket{}
					bk[idx] = m
				}
				m.add(b)
			}
		}
		r.Latency = r.hist.Summary()
		idxs := make([]int64, 0, len(bk))
		for idx := range bk {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		r.Series = make([]GoodputPoint, len(idxs))
		for i, idx := range idxs {
			r.Series[i] = GoodputPoint{Start: sim.Time(idx) * g.bucket, GBucket: *bk[idx]}
		}
		out = append(out, r)
	}
	return out
}

// GroupReportsFromEvents rebuilds group reports offline from a canonical
// event stream (cepheus-trace works on JSONL exports, not live clusters).
// Delivered bytes are booked at message completion — KDeliver carries the
// whole message's payload — so packet counts equal message counts and the
// goodput series has message, not packet, granularity. objFor supplies
// per-group objectives for slow-message counting (nil = none declared).
func GroupReportsFromEvents(evs []Event, bucket sim.Time, objFor func(uint32) (SLOObjective, bool)) []GroupReport {
	gs := NewGroupStats(1, bucket)
	if objFor != nil {
		for i := range evs {
			e := &evs[i]
			var grp uint32
			switch {
			case e.Kind == KDeliver && IsGroupAddr(e.Src):
				grp = e.Src
			case e.Kind == KRetransmit && IsGroupAddr(e.Dst):
				grp = e.Dst
			case e.Kind == KDrop && IsGroupAddr(e.Dst):
				grp = e.Dst
			case e.Kind == KDrop && IsGroupAddr(e.Src):
				grp = e.Src
			default:
				continue
			}
			if _, ok := gs.objs[grp]; ok {
				continue
			}
			if o, ok := objFor(grp); ok {
				gs.SetObjective(grp, o)
			}
		}
	}
	lp := gs.LP(0)
	for i := range evs {
		e := &evs[i]
		switch e.Kind {
		case KDeliver:
			if IsGroupAddr(e.Src) {
				c := lp.Cell(e.Src)
				c.Packet(e.At, e.B)
				c.Message(e.At, e.A)
			}
		case KRetransmit:
			if IsGroupAddr(e.Dst) {
				lp.Cell(e.Dst).Retransmit(e.At, e.B)
			}
		case KDrop:
			switch {
			case IsGroupAddr(e.Dst):
				lp.Drop(e.Dst, e.At, e.B)
			case IsGroupAddr(e.Src):
				lp.Drop(e.Src, e.At, e.B)
			}
		}
	}
	return gs.Snapshot()
}

// FairnessReport quantifies how evenly the fabric served its groups.
type FairnessReport struct {
	Groups     int
	TotalBytes int64
	// JainIndex is Jain's fairness index over per-group delivered bytes:
	// 1.0 = perfectly even, 1/n = one group got everything.
	JainIndex float64
	// MaxMinRatio is max/min per-group delivered bytes; 0 when some group
	// delivered nothing (starvation — the ratio would be infinite).
	MaxMinRatio float64
	// FleetP99 is the p99 of the pooled per-message latency distribution;
	// WorstP99 the highest per-group p99, WorstGroup its owner.
	FleetP99   int64
	WorstP99   int64
	WorstGroup uint32
	// P99IsolationGap is WorstP99/FleetP99: 1.0 = the slowest group's tail
	// is indistinguishable from the fleet's, larger = one group's tail is
	// being stretched by its neighbors.
	P99IsolationGap float64
}

// Fairness derives the fairness report from a group snapshot. Returns the
// zero report when fewer than one group exists.
func Fairness(reports []GroupReport) FairnessReport {
	f := FairnessReport{Groups: len(reports)}
	if len(reports) == 0 {
		return f
	}
	var sum, sumSq float64
	minB, maxB := reports[0].DeliveredBytes, reports[0].DeliveredBytes
	var fleet Histogram
	for i := range reports {
		r := &reports[i]
		x := float64(r.DeliveredBytes)
		sum += x
		sumSq += x * x
		f.TotalBytes += r.DeliveredBytes
		if r.DeliveredBytes < minB {
			minB = r.DeliveredBytes
		}
		if r.DeliveredBytes > maxB {
			maxB = r.DeliveredBytes
		}
		fleet.Merge(&r.hist)
		if r.Latency.P99 > f.WorstP99 {
			f.WorstP99 = r.Latency.P99
			f.WorstGroup = r.Group
		}
	}
	if sumSq > 0 {
		f.JainIndex = sum * sum / (float64(len(reports)) * sumSq)
	}
	if minB > 0 {
		f.MaxMinRatio = float64(maxB) / float64(minB)
	}
	f.FleetP99 = fleet.Quantile(0.99)
	if f.FleetP99 > 0 {
		f.P99IsolationGap = float64(f.WorstP99) / float64(f.FleetP99)
	}
	return f
}

// WriteGroupTable renders reports as an aligned text table (the shared
// backend of cepheus-trace groups and the -groups CLI flags).
func WriteGroupTable(w io.Writer, reports []GroupReport) {
	if len(reports) == 0 {
		fmt.Fprintln(w, "no group traffic")
		return
	}
	fmt.Fprintf(w, "%-8s %12s %8s %8s %6s %6s %12s %12s %12s\n",
		"group", "bytes", "pkts", "msgs", "drops", "retx", "p50ns", "p99ns", "maxns")
	for i := range reports {
		r := &reports[i]
		fmt.Fprintf(w, "g%-7d %12d %8d %8d %6d %6d %12d %12d %12d\n",
			r.ID(), r.DeliveredBytes, r.Pkts, r.Messages, r.DroppedPkts,
			r.RetransPkts, r.Latency.P50, r.Latency.P99, r.Latency.Max)
	}
	f := Fairness(reports)
	fmt.Fprintf(w, "fairness: groups=%d jain=%.4f maxmin=%.3f fleet_p99=%dns worst_p99=%dns (g%d) isolation_gap=%.3f\n",
		f.Groups, f.JainIndex, f.MaxMinRatio, f.FleetP99, f.WorstP99, f.WorstGroup-GroupAddrBase, f.P99IsolationGap)
}
