package obs

import (
	"fmt"
	"io"
	"strings"
)

// Auditor is an online protocol-invariant checker fed from the recorder
// drain (Recorder.Attach). It verifies, streaming, per event:
//
//   - go-back-N sender sanity: first transmissions advance PSN contiguously,
//     retransmissions never name a PSN that was not sent or that is already
//     cumulatively acknowledged, and (optionally) the in-flight window stays
//     within the configured bound;
//   - cumulative-ACK consistency: no ACK acknowledges beyond the highest
//     transmitted PSN, no NACK expects beyond it;
//   - per-receiver delivery order: delivery PSNs on a QP are strictly
//     increasing, and no (message, receiver) pair is delivered twice;
//   - per-port conservation: replaying ENQ/DEQ byte accounting reproduces
//     each queue's recorded depth exactly (ENQ = DEQ + DROP, in bytes);
//   - MFT lifecycle: installs never clobber a live table, rebuilds carry a
//     newer epoch, stale-replay discards pair with a genuinely stale epoch,
//     wipes hit a live table, and unknown-group NACKs fire only without one.
//
// KPSNSync events mark sanctioned out-of-band PSN overwrites (recovery's
// group-wide resynchronization); the auditor resets the affected flow state
// instead of flagging the jump. Fault-injected drops put the affected port's
// depth replay into an unknown state (a purge records drops against a bulk
// byte count) until the next ENQ re-anchors it.
//
// Determinism: every checker is keyed per device (flows, ports, tables live
// on one device), and a device's events reach the drain in its own record
// order under every execution mode — so the auditor's verdict and violation
// list are identical across worker counts. The auditor assumes tracing was
// enabled before the traffic of interest; attaching mid-run can misread
// pre-existing flow state as a violation.
type Auditor struct {
	cfg AuditConfig

	seen       uint64
	nviol      uint64
	violations []Violation

	// Injected-vs-anomalous drop classification: injected counts drops whose
	// Reason marks deliberate loss (loss models, gray impairments, fail-stop
	// faults); anomalous counts the protocol machinery's own discards (tail
	// drops, no-route, unknown-group). The split lets a chaos soak assert
	// "all loss was ours" without reading the trace back.
	injected  uint64
	anomalous uint64

	sends    map[flowKey]*sendFlow
	rxs      map[flowKey]*rxFlow
	ports    map[portKey]*portState
	mfts     map[mftKey]*mftState
	delivers map[delivKey]struct{}
}

// AuditConfig tunes the auditor.
type AuditConfig struct {
	// WindowPkts, when positive, bounds the sender's in-flight packet count
	// (the transport's go-back-N window). Zero disables the window check.
	WindowPkts int
	// MaxViolations caps retained violations (their count is still exact).
	// Zero means 64.
	MaxViolations int
}

// Violation is one invariant breach, carrying the offending event.
type Violation struct {
	Check  string // checker id: "gbn", "ack", "deliver", "port", "mft"
	Detail string
	Event  Event
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s: %s (t=%d dev=%d kind=%s psn=%d msg=%d a=%d b=%d)",
		v.Check, v.Detail, int64(v.Event.At), v.Event.Dev, v.Event.Kind, v.Event.PSN, v.Event.Msg, v.Event.A, v.Event.B)
}

// ptData mirrors simnet.Data (obs cannot import simnet; the wire enum is
// stable and checked by TestPacketTypeNamesInSync).
const ptData uint8 = 0

type flowKey struct {
	addr uint32 // host address (flows are end-to-end, named by the endpoint)
	qp   uint32
}

type portKey struct {
	dev  uint32
	port int16
}

type mftKey struct {
	dev   uint32
	group uint32
}

type delivKey struct {
	dev uint32
	msg uint64
}

// sendFlow is requester-side state for one (host, QP).
type sendFlow struct {
	originDev uint32
	nxt       uint64 // next first-transmission PSN (== maxSent)
	cumAck    uint64 // next PSN expected to be acknowledged (== sndUna)
}

// rxFlow is responder-side state for one (host, QP).
type rxFlow struct {
	next uint64 // next expected delivery PSN
}

// portState replays one egress queue's byte accounting.
type portState struct {
	depth int64
	known bool
}

// mftState mirrors one switch's table for one group.
type mftState struct {
	present bool
	// rebuilt marks that the last event was an epoch rebuild: the switch
	// deletes and re-installs in one step, so the install that immediately
	// follows (same epoch) is the rebuild's second half, not a double
	// install.
	rebuilt bool
	epoch   uint16
}

// NewAuditor creates an auditor; attach it with rec.Attach(a.Observe).
func NewAuditor(cfg AuditConfig) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	return &Auditor{
		cfg:      cfg,
		sends:    make(map[flowKey]*sendFlow),
		rxs:      make(map[flowKey]*rxFlow),
		ports:    make(map[portKey]*portState),
		mfts:     make(map[mftKey]*mftState),
		delivers: make(map[delivKey]struct{}),
	}
}

func (a *Auditor) violate(e *Event, check, format string, args ...interface{}) {
	a.nviol++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, Violation{
			Check: check, Detail: fmt.Sprintf(format, args...), Event: *e,
		})
	}
}

// Observe feeds one drained event through every checker. The pointer is not
// retained.
func (a *Auditor) Observe(e *Event) {
	a.seen++
	switch e.Kind {
	case KEnqueue:
		a.port(e, e.B)
		a.senderEnq(e)
	case KDequeue:
		a.port(e, -e.B)
	case KDrop:
		a.drop(e)
	case KPFCPause, KPFCResume:
		a.port(e, 0)
	case KAckRx:
		a.ackRx(e)
	case KNackRx:
		a.nackRx(e)
	case KRetransmit:
		a.retx(e)
	case KDeliver:
		a.deliver(e)
	case KPSNSync:
		a.psnSync(e)
	case KMFTInstall, KMFTRebuild, KMFTWipe, KMFTStale, KMFTNack:
		a.mft(e)
	}
}

// port replays queue-depth accounting: the event's A field records the depth
// the device saw after the operation, which must equal the replayed depth.
func (a *Auditor) port(e *Event, delta int64) {
	if e.Port < 0 {
		return
	}
	k := portKey{e.Dev, e.Port}
	st := a.ports[k]
	if st == nil {
		st = &portState{}
		a.ports[k] = st
	}
	if !st.known {
		st.depth, st.known = e.A, true
		return
	}
	want := st.depth + delta
	if e.A != want {
		a.violate(e, "port", "queue depth %d does not conserve bytes (replayed %d%+d)", e.A, st.depth, delta)
	}
	st.depth = e.A
}

// drop handles KDrop: queue-limit drops must agree with the replayed depth;
// fault drops (purges) desynchronize it until the next enqueue re-anchors;
// gray-failure wire drops happen after the dequeue already left the queue,
// so the replayed depth must be exactly unperturbed — an impairment that
// shifted queue accounting would be a port bug hiding behind injected loss.
func (a *Auditor) drop(e *Event) {
	if e.Reason.InjectedLoss() {
		a.injected++
	} else {
		a.anomalous++
	}
	if e.Port >= 0 {
		k := portKey{e.Dev, e.Port}
		st := a.ports[k]
		switch e.Reason {
		case RFault:
			if st != nil {
				st.known = false
			}
		case RQueueLimit:
			if st != nil && st.known && e.A != st.depth {
				a.violate(e, "port", "tail-drop depth %d disagrees with replayed %d", e.A, st.depth)
			}
		case RImpairLoss, RCorrupt, RStormLoss:
			if st != nil && st.known && e.A != st.depth {
				a.violate(e, "port", "wire-loss drop records depth %d but replay says %d (injected loss must not perturb queue accounting)", e.A, st.depth)
			}
		}
	}
}

// senderEnq audits first transmissions and retransmissions at the origin
// host. The first device ever to enqueue a flow's data is its origin (a
// host's enqueue strictly precedes any switch seeing the packet); data
// passing through switches re-uses the same flow key but a different device,
// and is skipped.
func (a *Auditor) senderEnq(e *Event) {
	if e.PT != ptData || e.Msg == 0 || e.Src != MsgOrigin(e.Msg) {
		return
	}
	k := flowKey{e.Src, e.SrcQP}
	f := a.sends[k]
	if f == nil {
		a.sends[k] = &sendFlow{originDev: e.Dev, nxt: e.PSN + 1, cumAck: e.PSN}
		return
	}
	if f.originDev != e.Dev {
		return
	}
	switch {
	case e.PSN > f.nxt:
		a.violate(e, "gbn", "first transmission skips PSNs (%d after %d)", e.PSN, f.nxt)
		f.nxt = e.PSN + 1
	case e.PSN == f.nxt:
		f.nxt++
	default: // retransmission through the queue
		if e.PSN < f.cumAck {
			a.violate(e, "gbn", "retransmission of already-acknowledged PSN %d (cumAck %d)", e.PSN, f.cumAck)
		}
	}
	if w := uint64(a.cfg.WindowPkts); w > 0 && f.nxt-f.cumAck > w {
		a.violate(e, "gbn", "in-flight window overrun: %d unacked > %d", f.nxt-f.cumAck, w)
		f.cumAck = f.nxt - w // re-anchor so one overrun reports once
	}
}

// ackRx audits cumulative ACK consistency at the sender.
func (a *Auditor) ackRx(e *Event) {
	f := a.sends[flowKey{e.Dst, e.DstQP}]
	if f == nil || f.originDev != e.Dev {
		return
	}
	if e.PSN >= f.nxt {
		a.violate(e, "ack", "cumulative ACK of PSN %d beyond highest sent %d", e.PSN, f.nxt-1)
		return
	}
	if e.PSN+1 > f.cumAck {
		f.cumAck = e.PSN + 1
	}
}

// nackRx audits the NACK's expected PSN and advances the cumulative point
// (a NACK for e implicitly acknowledges everything below e).
func (a *Auditor) nackRx(e *Event) {
	f := a.sends[flowKey{e.Dst, e.DstQP}]
	if f == nil || f.originDev != e.Dev {
		return
	}
	if e.PSN > f.nxt {
		a.violate(e, "ack", "NACK expects PSN %d beyond next transmission %d", e.PSN, f.nxt)
		return
	}
	if e.PSN > f.cumAck {
		f.cumAck = e.PSN
	}
}

// retx audits the requester's retransmission decision itself (the RNIC
// event; the queue-level copy is audited by senderEnq).
func (a *Auditor) retx(e *Event) {
	f := a.sends[flowKey{e.Src, e.SrcQP}]
	if f == nil || f.originDev != e.Dev {
		return
	}
	if e.PSN >= f.nxt {
		a.violate(e, "gbn", "retransmission of never-sent PSN %d (next %d)", e.PSN, f.nxt)
	}
	if e.PSN < f.cumAck {
		a.violate(e, "gbn", "retransmission of already-acknowledged PSN %d (cumAck %d)", e.PSN, f.cumAck)
	}
}

// deliver audits responder-side delivery order and per-(message, receiver)
// uniqueness.
func (a *Auditor) deliver(e *Event) {
	k := flowKey{e.Dst, e.DstQP}
	f := a.rxs[k]
	if f == nil {
		a.rxs[k] = &rxFlow{next: e.PSN + 1}
	} else {
		if e.PSN < f.next {
			a.violate(e, "deliver", "delivery PSN %d not above previous (next expected %d)", e.PSN, f.next)
		}
		f.next = e.PSN + 1
	}
	if e.Msg != 0 {
		dk := delivKey{e.Dev, e.Msg}
		if _, dup := a.delivers[dk]; dup {
			a.violate(e, "deliver", "duplicate delivery of message %s at receiver", MsgString(e.Msg))
		}
		a.delivers[dk] = struct{}{}
	}
}

// psnSync resets flow expectations on a sanctioned out-of-band PSN
// overwrite (A = 0 for the send side, 1 for the receive side).
func (a *Auditor) psnSync(e *Event) {
	k := flowKey{e.Src, e.SrcQP}
	if e.A == 0 {
		f := a.sends[k]
		if f == nil {
			f = &sendFlow{originDev: e.Dev}
			a.sends[k] = f
		}
		f.originDev = e.Dev
		f.nxt, f.cumAck = e.PSN, e.PSN
	} else {
		f := a.rxs[k]
		if f == nil {
			f = &rxFlow{}
			a.rxs[k] = f
		}
		f.next = e.PSN
	}
}

// auditStaleEpoch mirrors core's RFC 1982 serial comparison.
func auditStaleEpoch(a, b uint16) bool { return int16(a-b) < 0 }

// mft audits the MFT lifecycle state machine per (switch, group).
func (a *Auditor) mft(e *Event) {
	k := mftKey{e.Dev, e.Dst}
	st := a.mfts[k]
	epoch := uint16(e.A)
	switch e.Kind {
	case KMFTInstall:
		if st != nil && st.present && !(st.rebuilt && epoch == st.epoch) {
			a.violate(e, "mft", "install (epoch %d) over a live MFT (epoch %d)", epoch, st.epoch)
		}
		if st == nil {
			st = &mftState{}
			a.mfts[k] = st
		}
		st.present, st.epoch, st.rebuilt = true, epoch, false
	case KMFTRebuild:
		if st != nil {
			if !st.present {
				a.violate(e, "mft", "rebuild (epoch %d) without an installed MFT", epoch)
			} else if auditStaleEpoch(epoch, st.epoch) || epoch == st.epoch {
				a.violate(e, "mft", "rebuild epoch %d is not newer than live epoch %d", epoch, st.epoch)
			}
		} else {
			st = &mftState{}
			a.mfts[k] = st
		}
		st.present, st.epoch, st.rebuilt = true, epoch, true
	case KMFTStale:
		if st != nil {
			if !st.present {
				a.violate(e, "mft", "stale-replay discard (epoch %d) without a live MFT", epoch)
			} else if !auditStaleEpoch(epoch, st.epoch) {
				a.violate(e, "mft", "discarded MRP epoch %d is not stale against live epoch %d", epoch, st.epoch)
			}
		}
	case KMFTWipe:
		if st != nil && !st.present {
			a.violate(e, "mft", "wipe of a group with no MFT")
		}
		if st == nil {
			st = &mftState{}
			a.mfts[k] = st
		}
		st.present, st.rebuilt = false, false
	case KMFTNack:
		if st != nil && st.present {
			a.violate(e, "mft", "unknown-group NACK while an MFT (epoch %d) is live", st.epoch)
		}
	}
}

// Seen returns how many events the auditor has observed.
func (a *Auditor) Seen() uint64 { return a.seen }

// InjectedDrops returns how many observed drops carried an injected-loss
// reason (loss models, gray impairments, fail-stop faults).
func (a *Auditor) InjectedDrops() uint64 { return a.injected }

// AnomalousDrops returns how many observed drops the protocol machinery
// itself decided on (tail drop, no-route, unknown-group). Nonzero is not a
// violation — tail drops are legal — but a lossless workload can assert zero.
func (a *Auditor) AnomalousDrops() uint64 { return a.anomalous }

// ViolationCount returns the exact number of violations (including any past
// the retention cap).
func (a *Auditor) ViolationCount() uint64 { return a.nviol }

// Violations returns the retained violations, in stream order.
func (a *Auditor) Violations() []Violation { return a.violations }

// Clean reports whether no invariant was violated.
func (a *Auditor) Clean() bool { return a.nviol == 0 }

// Err returns nil when clean, or an error naming the first violation.
func (a *Auditor) Err() error {
	if a.nviol == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", a.nviol, a.violations[0].String())
}

// Verdict renders the one-line summary CLIs print. lost is the recorder's
// Lost() count: a nonzero value means coverage was incomplete.
func (a *Auditor) Verdict(lost uint64) string {
	var b strings.Builder
	if a.nviol == 0 {
		fmt.Fprintf(&b, "audit: PASS — %d events, 0 violations", a.seen)
	} else {
		fmt.Fprintf(&b, "audit: FAIL — %d events, %d violation(s)", a.seen, a.nviol)
	}
	if lost > 0 {
		fmt.Fprintf(&b, " (%d events lost; coverage incomplete)", lost)
	}
	return b.String()
}

// Report writes every retained violation, one per line.
func (a *Auditor) Report(w io.Writer) {
	for i := range a.violations {
		fmt.Fprintf(w, "  violation %s\n", a.violations[i].String())
	}
	if extra := a.nviol - uint64(len(a.violations)); extra > 0 {
		fmt.Fprintf(w, "  ... and %d more\n", extra)
	}
}
