package obs

import "testing"

// Edge cases the main quantile/merge tests don't reach.

func TestHistogramEmptyQuantiles(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q=%v = %d, want 0", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.P999 != 0 {
		t.Fatalf("empty summary not all-zero: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary must still render")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(12345)
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Fatalf("single-sample q=%v = %d, want the sample itself", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 1 || s.Mean != 12345 || s.Min != 12345 || s.Max != 12345 {
		t.Fatalf("single-sample summary: %+v", s)
	}
}

// TestHistogramOverflowBucketP999 drives values into the top octaves (beyond
// 2^60) and checks the quantiles stay clamped to the true observed range
// rather than reporting a bucket upper bound past max.
func TestHistogramOverflowBucketP999(t *testing.T) {
	var h Histogram
	const big = int64(1) << 62
	for i := 0; i < 999; i++ {
		h.Observe(1000)
	}
	h.Observe(big)
	s := h.Summary()
	if s.Max != big {
		t.Fatalf("max = %d, want %d", s.Max, big)
	}
	if s.P999 > big {
		t.Fatalf("p999 %d exceeds the observed max %d", s.P999, big)
	}
	// Quantiles report bucket upper bounds: within the 1/2^histSubBits
	// relative error of the true 1000.
	if s.P50 < 1000 || s.P50 > 1000+1000/histSub {
		t.Fatalf("p50 = %d, want 1000 within bucket error", s.P50)
	}
	// A histogram of only huge values must clamp every quantile to [min, max].
	var g Histogram
	g.Observe(big)
	g.Observe(big + 1)
	if q := g.Quantile(0.999); q < big || q > big+1 {
		t.Fatalf("overflow-bucket q999 = %d outside [%d, %d]", q, big, big+1)
	}
}

func TestHistogramMergeDisjointShards(t *testing.T) {
	// Two shards with disjoint value ranges, as per-LP latency shards are.
	var lo, hi, merged Histogram
	for i := int64(1); i <= 100; i++ {
		lo.Observe(i)
		merged.Observe(i)
	}
	for i := int64(1 << 20); i < 1<<20+100; i++ {
		hi.Observe(i)
		merged.Observe(i)
	}
	var a Histogram
	a.Merge(&lo)
	a.Merge(&hi)
	// Merge in the opposite order: must be identical (commutative).
	var b Histogram
	b.Merge(&hi)
	b.Merge(&lo)
	if a != b {
		t.Fatal("merge is not commutative")
	}
	if a.Summary() != merged.Summary() {
		t.Fatalf("merged summary %+v differs from combined-stream summary %+v", a.Summary(), merged.Summary())
	}
	if a.Count() != 200 || a.Summary().Min != 1 || a.Summary().Max != 1<<20+99 {
		t.Fatalf("merged bounds wrong: %+v", a.Summary())
	}
	// Merging an empty or nil histogram is a no-op.
	before := a
	a.Merge(nil)
	var empty Histogram
	a.Merge(&empty)
	if a != before {
		t.Fatal("nil/empty merge changed the histogram")
	}
}
