package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

const g0 = GroupAddrBase // first group id

// TestGroupStatsMergeAcrossShards: the same bookings, split across shards
// in different ways, merge to the same snapshot — the property the PDES
// neutrality test relies on at full scale.
func TestGroupStatsMergeAcrossShards(t *testing.T) {
	book := func(gs *GroupStats, lpOf func(i int) *GroupLP) {
		for i := 0; i < 8; i++ {
			c := lpOf(i).Cell(g0)
			c.Packet(sim.Time(i)*sim.Millisecond, 1000)
			c.Message(sim.Time(i)*sim.Millisecond, int64(1000+i))
			lpOf(i).Drop(g0, sim.Time(i)*sim.Millisecond, 64)
			c.Retransmit(sim.Time(i)*sim.Millisecond, 256)
		}
	}
	one := NewGroupStats(1, 0)
	book(one, func(int) *GroupLP { return one.LP(0) })
	four := NewGroupStats(4, 0)
	book(four, func(i int) *GroupLP { return four.LP(i % 4) })

	s1, s4 := one.Snapshot(), four.Snapshot()
	if !reflect.DeepEqual(s1, s4) {
		t.Fatalf("snapshot depends on sharding:\n  1 shard: %+v\n  4 shards: %+v", s1, s4)
	}
	r := s1[0]
	if r.DeliveredBytes != 8000 || r.Pkts != 8 || r.Messages != 8 ||
		r.DroppedPkts != 8 || r.DroppedBytes != 8*64 ||
		r.RetransPkts != 8 || r.RetransBytes != 8*256 {
		t.Fatalf("totals wrong: %+v", r)
	}
	if len(r.Series) != 8 {
		t.Fatalf("series: got %d buckets, want 8 (one per ms at %v buckets)", len(r.Series), r.Bucket)
	}
}

// TestGroupStatsNilSafe: every disabled-path receiver is a no-op, not a
// panic — the contract the hot-path call sites rely on.
func TestGroupStatsNilSafe(t *testing.T) {
	var gs *GroupStats
	if gs.LP(0) != nil || gs.Snapshot() != nil {
		t.Fatal("nil *GroupStats not inert")
	}
	var lp *GroupLP
	if lp.Cell(g0) != nil {
		t.Fatal("nil *GroupLP.Cell != nil")
	}
	lp.Drop(g0, 0, 64) // must not panic
	if _, ok := gs.ObjectiveFor(g0); ok {
		t.Fatal("nil *GroupStats claims an objective")
	}
}

// TestFairnessMath pins Jain's index, max/min ratio, and the isolation gap
// on hand-checkable distributions.
func TestFairnessMath(t *testing.T) {
	mk := func(bytes ...int64) []GroupReport {
		gs := NewGroupStats(1, 0)
		for i, b := range bytes {
			c := gs.LP(0).Cell(g0 + uint32(i))
			c.Packet(0, b)
			c.Message(0, 100*int64(i+1)) // p99s: 100, 200, ...
		}
		return gs.Snapshot()
	}
	f := Fairness(mk(1000, 1000, 1000, 1000))
	if math.Abs(f.JainIndex-1.0) > 1e-9 || f.MaxMinRatio != 1.0 {
		t.Fatalf("even split: jain=%v maxmin=%v, want 1/1", f.JainIndex, f.MaxMinRatio)
	}
	// One group hogs everything: Jain -> 1/n.
	f = Fairness(mk(4000, 0, 0, 0))
	if math.Abs(f.JainIndex-0.25) > 1e-9 {
		t.Fatalf("monopoly: jain=%v, want 0.25", f.JainIndex)
	}
	if f.MaxMinRatio != 0 {
		t.Fatalf("starved group: maxmin=%v, want 0 (sentinel)", f.MaxMinRatio)
	}
	f = Fairness(mk(1000, 2000))
	if f.MaxMinRatio != 2.0 {
		t.Fatalf("maxmin=%v, want 2", f.MaxMinRatio)
	}
	if f.WorstGroup != g0+1 || f.WorstP99 < f.FleetP99 || f.P99IsolationGap < 1.0 {
		t.Fatalf("isolation: %+v", f)
	}
	if z := Fairness(nil); z.Groups != 0 || z.JainIndex != 0 {
		t.Fatalf("empty fairness not zero: %+v", z)
	}
}

// TestParseSLO covers the shared CLI spec grammar.
func TestParseSLO(t *testing.T) {
	o, w, err := ParseSLO("p99=2ms,goodput=1e9,drops=0.001,window=500us")
	if err != nil {
		t.Fatal(err)
	}
	if o.DeliveryP99 != 2*sim.Millisecond || o.GoodputFloor != 1e9 || o.DropBudget != 0.001 {
		t.Fatalf("parsed objective: %+v", o)
	}
	if w.Short != 500*sim.Microsecond {
		t.Fatalf("parsed window: %+v", w)
	}
	for _, bad := range []string{"", "p99", "p99=abc", "drops=2", "drops=0", "nope=1", "window=1ms"} {
		if _, _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q): want error", bad)
		}
	}
	if s := o.String(); !strings.Contains(s, "p99<=") || !strings.Contains(s, "goodput>=") {
		t.Errorf("objective String: %q", s)
	}
}

// synthReport builds a report whose goodput series is bytes[i] in bucket i
// (100us buckets), with msgs/slow alongside.
func synthReport(bytes []int64, slow []uint64) GroupReport {
	gs := NewGroupStats(1, 100*sim.Microsecond)
	gs.SetObjective(g0, SLOObjective{DeliveryP99: sim.Millisecond})
	c := gs.LP(0).Cell(g0)
	for i, b := range bytes {
		at := sim.Time(i) * 100 * sim.Microsecond
		if b > 0 {
			c.Packet(at, b)
		}
		c.Message(at, 10) // fast message keeps the bucket non-empty
		if slow != nil {
			for j := uint64(0); j < slow[i]; j++ {
				c.Message(at, int64(2*sim.Millisecond)) // over the objective
			}
		}
	}
	return gs.Snapshot()[0]
}

// TestSLOBreachTimeline: a goodput collapse mid-run opens exactly one
// breach covering the starved span, once both windows confirm it.
func TestSLOBreachTimeline(t *testing.T) {
	// 100us buckets; 10KB/bucket = 1e8 B/s. Floor at 5e7 B/s: the zeroed
	// span [20, 40) starves both windows.
	bytes := make([]int64, 60)
	for i := range bytes {
		bytes[i] = 10_000
		if i >= 20 && i < 40 {
			bytes[i] = 0
		}
	}
	r := synthReport(bytes, nil)
	w := SLOWindows{Short: 200 * sim.Microsecond, Long: 600 * sim.Microsecond}
	res := EvalGroupSLO(&r, SLOObjective{GoodputFloor: 5e7}, w)
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	g := res[0]
	if len(g.Breaches) != 1 {
		t.Fatalf("got %d breaches, want 1: %+v", len(g.Breaches), g.Breaches)
	}
	b := g.Breaches[0]
	// The short window (2 buckets) is fully starved from bucket 21; the
	// long window confirms within the gap; recovery restores compliance
	// after bucket 40.
	if b.Start < 20*100*sim.Microsecond || b.Start > 26*100*sim.Microsecond {
		t.Errorf("breach start %v outside the starved span onset", b.Start)
	}
	if b.End < 40*100*sim.Microsecond || b.End > 46*100*sim.Microsecond {
		t.Errorf("breach end %v outside the recovery edge", b.End)
	}
	if g.PeakShortBurn < 1/goodputSlack-1e-9 {
		t.Errorf("fully starved short window burn %v, want ~%v", g.PeakShortBurn, 1/goodputSlack)
	}
}

// TestSLOMultiWindowSuppressesBlips: a one-bucket latency blip trips the
// short window but not the long one, so no breach opens — the whole point
// of multi-window burn rates.
func TestSLOMultiWindowSuppressesBlips(t *testing.T) {
	slow := make([]uint64, 60)
	slow[30] = 1 // one slow message among 60 fast ones
	r := synthReport(make([]int64, 60), slow)
	w := SLOWindows{Short: 100 * sim.Microsecond, Long: 3 * sim.Millisecond, Threshold: 30}
	res := EvalGroupSLO(&r, SLOObjective{DeliveryP99: sim.Millisecond}, w)
	g := res[0]
	if g.PeakShortBurn < 30 {
		t.Fatalf("short window never saw the blip: peak=%v", g.PeakShortBurn)
	}
	if g.PeakLongBurn >= 30 {
		t.Fatalf("long window amplified the blip: peak=%v", g.PeakLongBurn)
	}
	if g.Breached() {
		t.Fatalf("blip opened a breach: %+v", g.Breaches)
	}
}

// TestGroupReportsFromEvents: the offline (trace-replay) builder books
// deliveries, retransmits, and drops by the same classification the live
// hooks use, at message granularity.
func TestGroupReportsFromEvents(t *testing.T) {
	host := uint32(0x0A000001)
	evs := []Event{
		{At: 1000, Kind: KDeliver, Src: g0, Dst: host, A: 500, B: 4096, Msg: 1},
		{At: 2000, Kind: KDeliver, Src: g0, Dst: host, A: 700, B: 4096, Msg: 2},
		{At: 2500, Kind: KDeliver, Src: host, Dst: host, A: 100, B: 64, Msg: 3}, // unicast: ignored
		{At: 3000, Kind: KRetransmit, Src: host, Dst: g0, B: 1024},
		{At: 4000, Kind: KDrop, Src: host, Dst: g0, B: 1088},
		{At: 5000, Kind: KDrop, Src: g0, Dst: host, B: 60}, // group-sourced feedback
	}
	reps := GroupReportsFromEvents(evs, 0, func(g uint32) (SLOObjective, bool) {
		return SLOObjective{DeliveryP99: 600}, true
	})
	if len(reps) != 1 {
		t.Fatalf("got %d groups, want 1", len(reps))
	}
	r := reps[0]
	if r.DeliveredBytes != 8192 || r.Messages != 2 || r.RetransPkts != 1 ||
		r.RetransBytes != 1024 || r.DroppedPkts != 2 || r.DroppedBytes != 1148 {
		t.Fatalf("offline report: %+v", r)
	}
	var slow uint64
	for _, p := range r.Series {
		slow += p.Slow
	}
	if slow != 1 {
		t.Fatalf("slow messages = %d, want 1 (700ns > 600ns objective)", slow)
	}
	if r.ID() != 0 {
		t.Fatalf("ID() = %d, want 0", r.ID())
	}
}

// TestWriteGroupTable smoke-checks the shared table renderer.
func TestWriteGroupTable(t *testing.T) {
	var sb strings.Builder
	WriteGroupTable(&sb, nil)
	if !strings.Contains(sb.String(), "no group traffic") {
		t.Fatalf("empty table: %q", sb.String())
	}
	gs := NewGroupStats(1, 0)
	gs.LP(0).Cell(g0).Packet(0, 100)
	gs.LP(0).Cell(g0).Message(0, 42)
	sb.Reset()
	WriteGroupTable(&sb, gs.Snapshot())
	out := sb.String()
	if !strings.Contains(out, "g0") || !strings.Contains(out, "fairness:") {
		t.Fatalf("table missing rows: %q", out)
	}
}
