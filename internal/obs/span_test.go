package obs

import (
	"bytes"
	"strings"
	"testing"
)

const (
	spanOrigin = uint32(0x0A000001) // 10.0.0.1
	spanRcv1   = uint32(0x0A000002)
	spanRcv2   = uint32(0x0A000003)
	spanGroup  = uint32(0xE0000001)
)

// spanTestEvents is a hand-built canonical stream: one multicast message from
// the origin host (dev 0) through a leaf switch (dev 1, fanout 2) to two
// receivers (devs 2 and 3), with a cumulative ACK closing the epilogue.
func spanTestEvents() ([]Event, uint64) {
	msg := uint64(spanOrigin)<<32 | 7
	evs := []Event{
		{At: 100, Dev: 0, Kind: KEnqueue, Port: 0, PT: 0, Src: spanOrigin, Dst: spanGroup, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 1064, B: 1064},
		{At: 200, Dev: 0, Kind: KDequeue, Port: 0, PT: 0, Src: spanOrigin, Dst: spanGroup, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 0, B: 1064},
		// The leaf rewrites each clone's destination to the member address.
		{At: 300, Dev: 1, Kind: KEnqueue, Port: 1, PT: 0, Src: spanOrigin, Dst: spanRcv1, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 1064, B: 1064},
		{At: 300, Dev: 1, Kind: KEnqueue, Port: 2, PT: 0, Src: spanOrigin, Dst: spanRcv2, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 1064, B: 1064},
		{At: 400, Dev: 1, Kind: KDequeue, Port: 1, PT: 0, Src: spanOrigin, Dst: spanRcv1, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 0, B: 1064},
		{At: 400, Dev: 1, Kind: KDequeue, Port: 2, PT: 0, Src: spanOrigin, Dst: spanRcv2, SrcQP: 2, DstQP: 1, PSN: 5, Msg: msg, A: 0, B: 1064},
		{At: 500, Dev: 2, Kind: KDeliver, Port: -1, PT: 0, Src: spanOrigin, Dst: spanRcv1, SrcQP: 2, DstQP: 3, PSN: 5, Msg: msg, A: 400, B: 1024},
		{At: 520, Dev: 3, Kind: KDeliver, Port: -1, PT: 0, Src: spanOrigin, Dst: spanRcv2, SrcQP: 2, DstQP: 3, PSN: 5, Msg: msg, A: 420, B: 1024},
		{At: 600, Dev: 0, Kind: KAckRx, Port: -1, PT: 1, Src: spanRcv1, Dst: spanOrigin, SrcQP: 3, DstQP: 2, PSN: 5},
	}
	return evs, msg
}

func TestBuildSpansTreeAndDeliveries(t *testing.T) {
	evs, msg := spanTestEvents()
	spans := BuildSpans(evs)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := &spans[0]
	if s.Msg != msg || s.Origin != spanOrigin || s.Dst != spanGroup || s.SrcQP != 2 {
		t.Fatalf("span identity wrong: %+v", s)
	}
	if s.Start != 100 || s.End != 600 || s.FirstPSN != 5 || s.LastPSN != 5 {
		t.Fatalf("span bounds wrong: start=%d end=%d psn=[%d,%d]", s.Start, s.End, s.FirstPSN, s.LastPSN)
	}
	if s.Bytes != 1024 {
		t.Fatalf("delivered bytes %d, want 1024", s.Bytes)
	}
	if len(s.Hops) != 2 {
		t.Fatalf("got %d hops, want 2 (origin + leaf)", len(s.Hops))
	}
	h0, h1 := &s.Hops[0], &s.Hops[1]
	if h0.Dev != 0 || h0.Depth != 0 || h0.Parent != -1 {
		t.Fatalf("origin hop wrong: %+v", h0)
	}
	if h1.Dev != 1 || h1.Depth != 1 || h1.Parent != 0 {
		t.Fatalf("leaf hop wrong: %+v", h1)
	}
	if h1.Fanout != 2 || h1.Enq != 2 || h1.Deq != 2 {
		t.Fatalf("leaf replication wrong: fanout=%d enq=%d deq=%d", h1.Fanout, h1.Enq, h1.Deq)
	}
	if len(s.Delivers) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(s.Delivers))
	}
	for i := range s.Delivers {
		d := &s.Delivers[i]
		if d.LastHop != 1 || d.PathLen != 2 {
			t.Fatalf("delivery %d not bound to the leaf: %+v", i, d)
		}
	}
	if s.Critical != 1 || s.Delivers[s.Critical].Dev != 3 {
		t.Fatalf("critical delivery wrong: idx=%d", s.Critical)
	}
	if s.AckRx != 1 || s.NackRx != 0 || s.Retx != 0 || s.Drops != 0 {
		t.Fatalf("epilogue wrong: ack=%d nack=%d retx=%d drops=%d", s.AckRx, s.NackRx, s.Retx, s.Drops)
	}
}

func TestBuildSpansDropAndRetx(t *testing.T) {
	evs, msg := spanTestEvents()
	extra := []Event{
		{At: 350, Dev: 1, Kind: KDrop, Reason: RQueueLimit, Port: 1, PT: 0, Src: spanOrigin, Dst: spanRcv1, PSN: 6, Msg: msg, A: 1064, B: 1064},
		{At: 450, Dev: 0, Kind: KRetransmit, Port: -1, PT: 0, Src: spanOrigin, Dst: spanGroup, SrcQP: 2, PSN: 6, Msg: msg, B: 1024},
	}
	spans := BuildSpans(append(evs, extra...))
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := &spans[0]
	if s.Drops != 1 || s.Retx != 1 {
		t.Fatalf("drops=%d retx=%d, want 1/1", s.Drops, s.Retx)
	}
	if s.Hops[1].Drops != 1 {
		t.Fatalf("leaf hop drops=%d, want 1", s.Hops[1].Drops)
	}
}

func TestBuildSpansDeterministic(t *testing.T) {
	evs, _ := spanTestEvents()
	names := func(d uint32) string { return []string{"h1", "tor", "h2", "h3"}[d] }
	var a, b bytes.Buffer
	if err := WriteSpans(&a, BuildSpans(evs), names); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&b, BuildSpans(evs), names); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteSpans output not deterministic across identical builds")
	}
	out := a.String()
	for _, want := range []string{
		"span msg=10.0.0.1#7", "dst=224.0.0.1",
		"hop tor", "parent=h1", "deliver h2", "deliver h3",
		"critical h3", "path: h1 > tor > h3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteSpans output missing %q:\n%s", want, out)
		}
	}
}

func TestMsgString(t *testing.T) {
	if got := MsgString(uint64(spanOrigin)<<32 | 42); got != "10.0.0.1#42" {
		t.Fatalf("MsgString = %q", got)
	}
}

func TestWriteTimeline(t *testing.T) {
	evs, msg := spanTestEvents()
	names := func(d uint32) string { return []string{"h1", "tor", "h2", "h3"}[d] }
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, evs, names, TimelineOptions{Width: 50, Msg: msg}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + legend + one lifeline per device that has events.
	if len(lines) != 2+4 {
		t.Fatalf("timeline has %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "timeline ") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("timeline missing deliver glyph:\n%s", out)
	}
	// The ACK epilogue is excluded by Msg selection (its Msg is 0), so the
	// origin row must show E/D but no A.
	for _, l := range lines[2:] {
		if strings.HasPrefix(l, "h1") && strings.Contains(l, "A") {
			t.Fatalf("msg-filtered timeline leaked epilogue events: %q", l)
		}
	}
}
