package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Executor-profiling report: the derived, human- and machine-readable view of
// sim.ExecStats. The sim layer counts (phase nanoseconds, per-LP events,
// cross-LP messages); this layer ranks and diagnoses (load imbalance, the
// dominant stall phase, the hottest LPs and LP-pair edges) — the evidence a
// scaling investigation starts from. See DESIGN.md §15.

// ExecPhase names one wall-clock phase of a PDES window.
type ExecPhase string

const (
	PhaseExec  ExecPhase = "exec"  // executing events
	PhaseMerge ExecPhase = "merge" // merging + injecting cross-LP traffic
	PhaseSpin  ExecPhase = "spin"  // barrier wait, spinning
	PhasePark  ExecPhase = "park"  // barrier wait, parked
	PhaseSeq   ExecPhase = "seq"   // coordinator-only sequential section
)

// ExecWorker is one worker's share of the run, phases plus assigned load.
type ExecWorker struct {
	Worker  int     `json:"worker"`
	LPs     int     `json:"lps"`
	Windows uint64  `json:"windows"`
	ExecNs  uint64  `json:"exec_ns"`
	MergeNs uint64  `json:"merge_ns"`
	SpinNs  uint64  `json:"spin_ns"`
	ParkNs  uint64  `json:"park_ns"`
	SeqNs   uint64  `json:"seq_ns,omitempty"`
	Events  uint64  `json:"events"`
	Weight  float64 `json:"weight,omitempty"`
	// ExecPct is the worker's useful-work fraction: exec over the sum of
	// all its phases.
	ExecPct float64 `json:"exec_pct"`
}

// ExecLP is one logical process's load line.
type ExecLP struct {
	LP        int     `json:"lp"`
	Label     string  `json:"label,omitempty"`
	Worker    int     `json:"worker"`
	Weight    float64 `json:"weight,omitempty"`
	Events    uint64  `json:"events"`
	Windows   uint64  `json:"windows"`
	MaxWindow uint64  `json:"max_window"`
}

// ExecEdge is one cross-LP traffic matrix cell.
type ExecEdge struct {
	Src      int    `json:"src"`
	SrcLabel string `json:"src_label,omitempty"`
	Dst      int    `json:"dst"`
	DstLabel string `json:"dst_label,omitempty"`
	Msgs     uint64 `json:"msgs"`
}

// ExecReport is the full executor-introspection report, serialized by
// cepheus-bench -pdesprof and rendered by cepheus-trace pdes.
type ExecReport struct {
	Workers     int   `json:"workers"`
	LPs         int   `json:"lps"`
	LookaheadNs int64 `json:"lookahead_ns"`
	Inline      bool  `json:"inline"`

	WallNs      uint64 `json:"wall_ns"`
	Runs        uint64 `json:"runs"`
	TotalEvents uint64 `json:"total_events"`
	Windows     uint64 `json:"windows"`
	CrossMsgs   uint64 `json:"cross_msgs"`

	// Window shape: how hard the conservative synchronization works.
	EventsPerWindow float64 `json:"events_per_window"`
	MsgsPerWindow   float64 `json:"msgs_per_window"`
	// BarriersPerVirtualMs is the barrier frequency: windows per simulated
	// millisecond of advance.
	BarriersPerVirtualMs float64 `json:"barriers_per_virtual_ms"`
	// SaturatedPct is the share of windows whose start advanced by at most
	// the lookahead — back-to-back windows, the executor's maximum barrier
	// cadence. Low saturation means idle skips (lookahead slack to spare).
	SaturatedPct float64 `json:"saturated_pct"`
	AvgAdvanceNs float64 `json:"avg_advance_ns"`
	MaxAdvanceNs int64   `json:"max_advance_ns"`

	Workers_ []ExecWorker `json:"worker_phases"`
	LPLoads  []ExecLP     `json:"lp_loads"`
	TopEdges []ExecEdge   `json:"top_edges"`

	// Scaling diagnosis.
	DominantStall ExecPhase `json:"dominant_stall"`
	// StallPct is the dominant stall's share of total non-exec worker time.
	StallPct float64 `json:"stall_pct"`
	// ExecEfficiency is summed exec time over workers x wall: the fraction
	// of the run's CPU budget doing useful event execution.
	ExecEfficiency float64 `json:"exec_efficiency"`
	// EventImbalance is max/mean of per-worker executed events — how far
	// the realized load diverges from perfect balance.
	EventImbalance float64 `json:"event_imbalance"`
	// WeightImbalance is max/mean of per-worker LPT weight — how good the
	// static assignment was against its own weight model.
	WeightImbalance float64  `json:"weight_imbalance"`
	Diagnosis       []string `json:"diagnosis"`
}

// execTopK bounds the hot-LP and heavy-edge lists in the report.
const execTopK = 12

// BuildExecReport derives the report from a raw snapshot. labels optionally
// names LPs (labels[i] for LP i; shorter slices or nil fall back to "lp<i>").
// Returns nil when st is nil (profiling was off).
func BuildExecReport(st *sim.ExecStats, labels []string) *ExecReport {
	if st == nil {
		return nil
	}
	label := func(lp int) string {
		if lp < len(labels) && labels[lp] != "" {
			return labels[lp]
		}
		return fmt.Sprintf("lp%d", lp)
	}
	r := &ExecReport{
		Workers:     st.Workers,
		LPs:         st.LPs,
		LookaheadNs: int64(st.Lookahead),
		Inline:      st.Inline,
		WallNs:      st.RunNs,
		Runs:        st.Runs,
		Windows:     st.Windows,
		CrossMsgs:   st.CrossMsgs,
	}

	// Per-worker realized load (events, weight) from the LP assignment.
	wEvents := make([]uint64, st.Workers)
	wWeight := make([]float64, st.Workers)
	for lp, ev := range st.LPEvents {
		r.TotalEvents += ev
		if lp < len(st.LPWorker) && st.LPWorker[lp] < st.Workers {
			wEvents[st.LPWorker[lp]] += ev
		}
	}
	for lp, w := range st.LPWeights {
		if lp < len(st.LPWorker) && st.LPWorker[lp] < st.Workers {
			wWeight[st.LPWorker[lp]] += w
		}
	}

	if st.Windows > 0 {
		r.EventsPerWindow = float64(r.TotalEvents) / float64(st.Windows)
		r.MsgsPerWindow = float64(st.CrossMsgs) / float64(st.Windows)
		r.SaturatedPct = 100 * float64(st.SaturatedWindows) / float64(st.Windows)
		r.AvgAdvanceNs = float64(st.VirtualAdvance) / float64(st.Windows)
	}
	if st.VirtualAdvance > 0 {
		r.BarriersPerVirtualMs = float64(st.Windows) / (float64(st.VirtualAdvance) / 1e6)
	}
	r.MaxAdvanceNs = int64(st.MaxWindowAdvance)

	// Phase totals and per-worker lines.
	var phaseTotal [5]uint64 // exec, merge, spin, park, seq
	for _, ph := range st.Phases {
		w := ExecWorker{
			Worker: ph.Worker, LPs: ph.LPs, Windows: ph.Windows,
			ExecNs: ph.ExecNs, MergeNs: ph.MergeNs,
			SpinNs: ph.SpinNs, ParkNs: ph.ParkNs, SeqNs: ph.SeqNs,
		}
		if ph.Worker < len(wEvents) {
			w.Events = wEvents[ph.Worker]
		}
		if ph.Worker < len(wWeight) {
			w.Weight = wWeight[ph.Worker]
		}
		if tot := ph.ExecNs + ph.MergeNs + ph.SpinNs + ph.ParkNs + ph.SeqNs; tot > 0 {
			w.ExecPct = 100 * float64(ph.ExecNs) / float64(tot)
		}
		phaseTotal[0] += ph.ExecNs
		phaseTotal[1] += ph.MergeNs
		phaseTotal[2] += ph.SpinNs
		phaseTotal[3] += ph.ParkNs
		phaseTotal[4] += ph.SeqNs
		r.Workers_ = append(r.Workers_, w)
	}
	if st.RunNs > 0 && st.Workers > 0 {
		r.ExecEfficiency = float64(phaseTotal[0]) / (float64(st.RunNs) * float64(st.Workers))
	}

	// Dominant stall: the largest non-exec phase.
	stallNames := []ExecPhase{PhaseMerge, PhaseSpin, PhasePark, PhaseSeq}
	var stallTotal uint64
	best := 0
	for i, v := range phaseTotal[1:] {
		stallTotal += v
		if v > phaseTotal[1:][best] {
			best = i
		}
	}
	if stallTotal > 0 {
		r.DominantStall = stallNames[best]
		r.StallPct = 100 * float64(phaseTotal[1:][best]) / float64(stallTotal)
	}

	// Imbalance ratios (max/mean over workers).
	r.EventImbalance = maxMeanRatioU(wEvents)
	r.WeightImbalance = maxMeanRatioF(wWeight)

	// Full per-LP load list, hottest first.
	for lp := 0; lp < st.LPs; lp++ {
		l := ExecLP{LP: lp, Label: label(lp)}
		if lp < len(st.LPWorker) {
			l.Worker = st.LPWorker[lp]
		}
		if lp < len(st.LPWeights) {
			l.Weight = st.LPWeights[lp]
		}
		if lp < len(st.LPEvents) {
			l.Events = st.LPEvents[lp]
		}
		if lp < len(st.LPWindows) {
			l.Windows = st.LPWindows[lp]
		}
		if lp < len(st.LPMaxWindow) {
			l.MaxWindow = st.LPMaxWindow[lp]
		}
		r.LPLoads = append(r.LPLoads, l)
	}
	sort.SliceStable(r.LPLoads, func(i, j int) bool { return r.LPLoads[i].Events > r.LPLoads[j].Events })
	if len(r.LPLoads) > execTopK {
		r.LPLoads = r.LPLoads[:execTopK]
	}

	// Heaviest cross-LP edges.
	for s := 0; s < st.LPs; s++ {
		for d := 0; d < st.LPs; d++ {
			if i := s*st.LPs + d; i < len(st.Traffic) && st.Traffic[i] > 0 {
				r.TopEdges = append(r.TopEdges, ExecEdge{
					Src: s, SrcLabel: label(s), Dst: d, DstLabel: label(d), Msgs: st.Traffic[i],
				})
			}
		}
	}
	sort.SliceStable(r.TopEdges, func(i, j int) bool { return r.TopEdges[i].Msgs > r.TopEdges[j].Msgs })
	if len(r.TopEdges) > execTopK {
		r.TopEdges = r.TopEdges[:execTopK]
	}

	r.Diagnosis = diagnose(r)
	return r
}

func maxMeanRatioU(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max uint64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(xs)) / float64(sum)
}

func maxMeanRatioF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0
	}
	return max * float64(len(xs)) / sum
}

// diagnose turns the derived numbers into the report's plain-language
// scaling verdicts. Deterministic: same stats, same strings.
func diagnose(r *ExecReport) []string {
	var out []string
	if r.Inline {
		out = append(out, "run degraded to the inline single-goroutine path (workers=1 or GOMAXPROCS=1): phase split reflects serialized execution, spin/park are zero")
	}
	switch r.DominantStall {
	case PhasePark, PhaseSpin:
		out = append(out, fmt.Sprintf(
			"dominant stall is barrier wait (%s, %.0f%% of stall time): windows are too short or load per window too uneven — coarsen the partition, raise the lookahead, or re-balance LP weights",
			r.DominantStall, r.StallPct))
	case PhaseMerge:
		out = append(out, fmt.Sprintf(
			"dominant stall is cross-LP merge (%.0f%% of stall time): mailbox traffic per window is heavy (%.1f msgs/window) — batch cross-LP handoff or cut the heaviest edges by re-partitioning",
			r.StallPct, r.MsgsPerWindow))
	case PhaseSeq:
		out = append(out, fmt.Sprintf(
			"dominant stall is the coordinator's sequential section (%.0f%% of stall time): barrier hooks (trace drains) or the transpose dominate — reduce per-window coordinator work",
			r.StallPct))
	}
	if r.EventImbalance > 1.25 {
		out = append(out, fmt.Sprintf(
			"LP load is imbalanced: the busiest worker executes %.2fx the mean (LPT weight imbalance %.2fx) — the weight model underestimates the hot LPs",
			r.EventImbalance, r.WeightImbalance))
	}
	if len(r.LPLoads) > 0 && r.TotalEvents > 0 {
		hot := r.LPLoads[0]
		pct := 100 * float64(hot.Events) / float64(r.TotalEvents)
		if pct > 150/float64(maxInt(r.LPs, 1)) && r.LPs > 1 {
			out = append(out, fmt.Sprintf(
				"hottest LP %s (worker %d) executes %.0f%% of all events: it bounds the per-window critical path regardless of worker count",
				hot.Label, hot.Worker, pct))
		}
	}
	if r.SaturatedPct > 80 {
		out = append(out, fmt.Sprintf(
			"%.0f%% of windows are back-to-back (advance <= lookahead %v): the run is barrier-bound at %.0f barriers per virtual ms",
			r.SaturatedPct, sim.Time(r.LookaheadNs), r.BarriersPerVirtualMs))
	} else if r.SaturatedPct < 20 && r.Windows > 0 {
		out = append(out, fmt.Sprintf(
			"only %.0f%% of windows are back-to-back: the schedule is sparse (avg advance %v vs lookahead %v), barrier cost is not the bottleneck",
			r.SaturatedPct, sim.Time(r.AvgAdvanceNs), sim.Time(r.LookaheadNs)))
	}
	if r.ExecEfficiency > 0 {
		out = append(out, fmt.Sprintf(
			"exec efficiency %.0f%%: of %d workers' total wall-clock budget, %.0f%% went to executing events",
			100*r.ExecEfficiency, r.Workers, 100*r.ExecEfficiency))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteExecReport renders the report as text, the cepheus-trace pdes view.
func WriteExecReport(w io.Writer, r *ExecReport) error {
	bw := bufio.NewWriter(w)
	mode := "parallel"
	if r.Inline {
		mode = "inline"
	}
	fmt.Fprintf(bw, "== executor profile: %d workers, %d LPs, lookahead %v (%s, %d run(s)) ==\n",
		r.Workers, r.LPs, sim.Time(r.LookaheadNs), mode, r.Runs)
	fmt.Fprintf(bw, "wall %.1fms  events %d  windows %d  cross-LP msgs %d\n",
		float64(r.WallNs)/1e6, r.TotalEvents, r.Windows, r.CrossMsgs)
	fmt.Fprintf(bw, "window shape: %.1f events/window, %.2f msgs/window, %.0f barriers per virtual ms, %.0f%% saturated, advance avg %v max %v\n",
		r.EventsPerWindow, r.MsgsPerWindow, r.BarriersPerVirtualMs, r.SaturatedPct,
		sim.Time(r.AvgAdvanceNs), sim.Time(r.MaxAdvanceNs))

	fmt.Fprintf(bw, "\nper-worker phase breakdown (ms):\n")
	fmt.Fprintf(bw, "  %-6s %4s %9s %9s %9s %9s %9s %9s %7s %12s\n",
		"worker", "lps", "windows", "exec", "merge", "spin", "park", "seq", "exec%", "events")
	for _, ph := range r.Workers_ {
		fmt.Fprintf(bw, "  %-6d %4d %9d %9.2f %9.2f %9.2f %9.2f %9.2f %6.1f%% %12d\n",
			ph.Worker, ph.LPs, ph.Windows,
			float64(ph.ExecNs)/1e6, float64(ph.MergeNs)/1e6,
			float64(ph.SpinNs)/1e6, float64(ph.ParkNs)/1e6, float64(ph.SeqNs)/1e6,
			ph.ExecPct, ph.Events)
	}
	fmt.Fprintf(bw, "  dominant stall: %s (%.0f%% of stall time), exec efficiency %.0f%%, event imbalance %.2fx, weight imbalance %.2fx\n",
		r.DominantStall, r.StallPct, 100*r.ExecEfficiency, r.EventImbalance, r.WeightImbalance)

	fmt.Fprintf(bw, "\nhottest LPs:\n")
	fmt.Fprintf(bw, "  %-16s %6s %7s %12s %9s %10s %8s\n", "lp", "worker", "weight", "events", "windows", "max/window", "share")
	for _, l := range r.LPLoads {
		share := 0.0
		if r.TotalEvents > 0 {
			share = 100 * float64(l.Events) / float64(r.TotalEvents)
		}
		fmt.Fprintf(bw, "  %-16s %6d %7.0f %12d %9d %10d %7.1f%%\n",
			l.Label, l.Worker, l.Weight, l.Events, l.Windows, l.MaxWindow, share)
	}

	fmt.Fprintf(bw, "\nheaviest cross-LP edges:\n")
	fmt.Fprintf(bw, "  %-16s -> %-16s %12s %8s\n", "src", "dst", "msgs", "share")
	for _, e := range r.TopEdges {
		share := 0.0
		if r.CrossMsgs > 0 {
			share = 100 * float64(e.Msgs) / float64(r.CrossMsgs)
		}
		fmt.Fprintf(bw, "  %-16s -> %-16s %12d %7.1f%%\n", e.SrcLabel, e.DstLabel, e.Msgs, share)
	}

	fmt.Fprintf(bw, "\ndiagnosis:\n")
	for _, d := range r.Diagnosis {
		fmt.Fprintf(bw, "  - %s\n", d)
	}
	return bw.Flush()
}
