package obs

import (
	"fmt"
	"math/bits"
)

// histSubBits fixes the histogram resolution: each power-of-two octave is
// split into 2^histSubBits sub-buckets, bounding the relative quantile error
// at 1/2^histSubBits (~6% for 3 bits). 512 uint64 buckets cover the full
// non-negative int64 range in 4 KiB per histogram.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = 512
)

// histIndex maps a value to its bucket. Values below 2*histSub land in
// exact unit-width buckets; above that, bucket i covers
// [m<<e, (m+1)<<e) with m = i mod histSub + histSub and e = i/histSub - 1.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1 - histSubBits
	return int(e)<<histSubBits + int(v>>e)
}

// histValue returns the representative (upper-bound) value of bucket i,
// the inverse of histIndex up to bucket width.
func histValue(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	e := uint(i>>histSubBits) - 1
	m := int64(i) - int64(e)<<histSubBits
	return m<<e + (1<<e - 1)
}

// histWidth returns the number of distinct values bucket i covers: 1 in the
// exact unit-width range, 2^e above it.
func histWidth(i int) int64 {
	if i < 2*histSub {
		return 1
	}
	return 1 << (uint(i>>histSubBits) - 1)
}

// Histogram is a log-bucketed (HDR-style) histogram of non-negative int64
// values — delivery latencies in ns, queue depths in bytes. Observe is
// allocation-free and O(1); Merge is a bucket-wise add, so merging shards is
// commutative and order-independent (deterministic regardless of iteration
// order). The zero value is ready to use.
type Histogram struct {
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[histIndex(uint64(v))]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the exact maximum observed value (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Merge folds o into h. Safe when o is nil or empty.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset clears the histogram to its zero state.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile returns the q-quantile (0 < q <= 1), linearly interpolated by
// rank within the bucket holding the target, clamped to the exact observed
// [min, max]. Interpolation matters when a tight distribution lands entirely
// in one log bucket — e.g. per-receiver message latencies on an uncongested
// fabric, spread over ~3 µs at a ~94 µs magnitude where the bucket is ~12 µs
// wide: upper-bound reporting would collapse every quantile to the same
// value, while rank interpolation keeps p50 < p99 ordered across the real
// [min, max] span.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i]
		cum += n
		if cum < target {
			continue
		}
		hi := histValue(i)
		lo := hi - histWidth(i) + 1
		// Tighten the bucket span with the exact observed bounds: when the
		// whole distribution sits in one bucket, this interpolates across
		// the true [min, max] instead of the wider bucket range (whose
		// midpoint would clamp to max for top-of-bucket clusters).
		if lo < h.min {
			lo = h.min
		}
		if hi > h.max {
			hi = h.max
		}
		frac := float64(target-(cum-n)) / float64(n)
		return lo + int64(frac*float64(hi-lo))
	}
	return h.max
}

// Summary is a point-in-time digest of a Histogram.
type Summary struct {
	Count uint64
	Mean  int64
	Min   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64
	P999  int64
}

// Summary computes the digest.
func (h *Histogram) Summary() Summary {
	s := Summary{
		Count: h.count,
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if h.count > 0 {
		s.Mean = h.sum / int64(h.count)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%d p50=%d p90=%d p99=%d p999=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}
