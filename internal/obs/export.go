package obs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/sim"
)

// WriteJSONL writes events as one JSON object per line. The schema is
// fixed-width (every key always present) so downstream tooling — including
// cmd/cepheus-trace — can decode records without schema negotiation:
//
//	{"t":<ns>,"dev":"<name>","port":<id>,"kind":"<Kind>","reason":"<Reason>",
//	 "pt":"<PacketType>","src":"<addr>","dst":"<addr>","sqp":<n>,"dqp":<n>,
//	 "psn":<n>,"msg":<n>,"a":<n>,"b":<n>}
//
// LP and Seq are deliberately omitted: LP is an execution artifact and Seq
// is recoverable from line order, so exports from sequential and partitioned
// runs of the same history are byte-identical.
func (r *Recorder) WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for i := range evs {
		e := &evs[i]
		_, err := fmt.Fprintf(bw,
			"{\"t\":%d,\"dev\":%q,\"port\":%d,\"kind\":%q,\"reason\":%q,\"pt\":%q,\"src\":%q,\"dst\":%q,\"sqp\":%d,\"dqp\":%d,\"psn\":%d,\"msg\":%d,\"a\":%d,\"b\":%d}\n",
			int64(e.At), r.DevName(e.Dev), e.Port, e.Kind.String(), e.Reason.String(),
			PktTypeName(e.PT), AddrString(e.Src), AddrString(e.Dst), e.SrcQP, e.DstQP, e.PSN, e.Msg, e.A, e.B)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteText writes events in a pcap-like human-readable form, one event per
// line: timestamp, device[:port], kind, frame type, src > dst, PSN, and the
// kind-specific a/b payload.
func (r *Recorder) WriteText(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for i := range evs {
		e := &evs[i]
		dev := r.DevName(e.Dev)
		if e.Port >= 0 {
			dev = fmt.Sprintf("%s:%d", dev, e.Port)
		}
		line := fmt.Sprintf("%-14v %-12s %-11s", sim.Time(e.At), dev, e.Kind)
		if e.Reason != RNone {
			line += fmt.Sprintf(" [%s]", e.Reason)
		}
		if e.Src != 0 || e.Dst != 0 {
			line += fmt.Sprintf(" %s %s > %s psn=%d", PktTypeName(e.PT), AddrString(e.Src), AddrString(e.Dst), e.PSN)
		}
		if e.Msg != 0 {
			line += fmt.Sprintf(" msg=%d", e.Msg)
		}
		line += fmt.Sprintf(" a=%d b=%d", e.A, e.B)
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
