package obs

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkRecord measures the per-event recording cost against a ring large
// enough that every slot write is a compulsory cache miss — the regime the
// pdes workload runs in (a ~300k-event history streamed into a 64MB ring).
func BenchmarkRecord(b *testing.B) {
	r := NewRecorder(1, 1<<20)
	tr := r.NewTracer("bench", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), KEnqueue, RNone, 3, 0, 0x0A000001, 0xE0000001, 2, 5, uint64(i), uint64(i), int64(i), 1024)
	}
}

// BenchmarkRecordHot is the same store pattern into a ring that fits in L2:
// the difference against BenchmarkRecord is pure memory-subsystem cost.
func BenchmarkRecordHot(b *testing.B) {
	r := NewRecorder(1, 1024)
	tr := r.NewTracer("bench", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), KEnqueue, RNone, 3, 0, 0x0A000001, 0xE0000001, 2, 5, uint64(i), uint64(i), int64(i), 1024)
	}
}
