package obs

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

const (
	audHost = uint32(0x0A000001)
	audPeer = uint32(0x0A000002)
)

func simT(at int64) sim.Time { return sim.Time(at) }

func observeAll(a *Auditor, evs []Event) {
	for i := range evs {
		a.Observe(&evs[i])
	}
}

// expectViolation asserts exactly n violations, all from the named checker.
func expectViolation(t *testing.T, a *Auditor, check string, n int) {
	t.Helper()
	if a.ViolationCount() != uint64(n) {
		t.Fatalf("got %d violations, want %d: %v", a.ViolationCount(), n, a.Violations())
	}
	for _, v := range a.Violations() {
		if v.Check != check {
			t.Fatalf("violation from checker %q, want %q: %v", v.Check, check, &v)
		}
	}
}

// sendEv builds an origin-host data enqueue for the flow (audHost, qp 2).
func sendEv(at int64, psn uint64) Event {
	return Event{At: simT(at), Dev: 0, Kind: KEnqueue, Port: 0, PT: ptData,
		Src: audHost, Dst: audPeer, SrcQP: 2, DstQP: 3, PSN: psn,
		Msg: uint64(audHost)<<32 | 1, A: 1064 * int64(1), B: 1064}
}

func TestAuditCleanStream(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	evs := []Event{sendEv(100, 0), sendEv(200, 1), sendEv(300, 2),
		{At: 400, Dev: 0, Kind: KAckRx, Port: -1, Src: audPeer, Dst: audHost, SrcQP: 3, DstQP: 2, PSN: 2},
		{At: 500, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 0, Msg: uint64(audHost)<<32 | 1, A: 400, B: 1024},
	}
	// Fix the depth replay: successive enqueues at one port must accumulate.
	evs[1].A, evs[2].A = 2128, 3192
	observeAll(a, evs)
	if !a.Clean() || a.Err() != nil {
		t.Fatalf("clean stream flagged: %v", a.Violations())
	}
	if a.Seen() != uint64(len(evs)) {
		t.Fatalf("seen %d, want %d", a.Seen(), len(evs))
	}
	if !strings.Contains(a.Verdict(0), "PASS") {
		t.Fatalf("verdict: %s", a.Verdict(0))
	}
	if v := a.Verdict(3); !strings.Contains(v, "3 events lost") {
		t.Fatalf("lossy verdict must flag incomplete coverage: %s", v)
	}
}

func TestAuditPSNSkip(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	evs := []Event{sendEv(100, 0), sendEv(200, 3)}
	evs[1].A = 2128
	observeAll(a, evs)
	expectViolation(t, a, "gbn", 1)
}

func TestAuditRetxOfAcked(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	evs := []Event{sendEv(100, 0), sendEv(200, 1),
		{At: 300, Dev: 0, Kind: KAckRx, Port: -1, Src: audPeer, Dst: audHost, SrcQP: 3, DstQP: 2, PSN: 1},
		sendEv(400, 0), // retransmits PSN 0, already cumulatively acked
	}
	evs[1].A = 2128
	evs[3].A = 3192
	observeAll(a, evs)
	expectViolation(t, a, "gbn", 1)
}

func TestAuditAckBeyondSent(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{sendEv(100, 0),
		{At: 200, Dev: 0, Kind: KAckRx, Port: -1, Src: audPeer, Dst: audHost, SrcQP: 3, DstQP: 2, PSN: 9},
	})
	expectViolation(t, a, "ack", 1)
}

func TestAuditNackBeyondNext(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{sendEv(100, 0),
		{At: 200, Dev: 0, Kind: KNackRx, Port: -1, Src: audPeer, Dst: audHost, SrcQP: 3, DstQP: 2, PSN: 9},
	})
	expectViolation(t, a, "ack", 1)
}

func TestAuditWindowOverrun(t *testing.T) {
	a := NewAuditor(AuditConfig{WindowPkts: 2})
	evs := []Event{sendEv(100, 0), sendEv(200, 1), sendEv(300, 2)}
	evs[1].A, evs[2].A = 2128, 3192
	observeAll(a, evs)
	expectViolation(t, a, "gbn", 1)
}

func TestAuditRetxDecision(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{sendEv(100, 0),
		// RNIC-level retransmit of a PSN that was never transmitted.
		{At: 200, Dev: 0, Kind: KRetransmit, Port: -1, PT: ptData, Src: audHost, Dst: audPeer, SrcQP: 2, PSN: 7, Msg: uint64(audHost)<<32 | 1, B: 1024},
	})
	expectViolation(t, a, "gbn", 1)
}

func TestAuditDuplicateDeliver(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	msg := uint64(audHost)<<32 | 9
	d := Event{At: 100, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 4, Msg: msg, A: 400, B: 1024}
	d2 := d
	d2.At, d2.PSN = 200, 5
	d3 := d // same (message, receiver) again
	d3.At, d3.PSN = 300, 6
	observeAll(a, []Event{d, d2, d3})
	if a.ViolationCount() != 2 { // d2 and d3 both re-deliver msg at dev 5
		t.Fatalf("got %d violations: %v", a.ViolationCount(), a.Violations())
	}
}

func TestAuditDeliveryPSNRegression(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{
		{At: 100, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 7, A: 400, B: 1024},
		{At: 200, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 6, A: 400, B: 1024},
	})
	expectViolation(t, a, "deliver", 1)
}

func TestAuditPortConservation(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	enq := func(at, depth int64) Event {
		return Event{At: simT(at), Dev: 1, Kind: KEnqueue, Port: 2, PT: ptData, Src: audHost, Dst: audPeer, A: depth, B: 1064}
	}
	deq := func(at, depth int64) Event {
		return Event{At: simT(at), Dev: 1, Kind: KDequeue, Port: 2, PT: ptData, Src: audHost, Dst: audPeer, A: depth, B: 1064}
	}
	observeAll(a, []Event{enq(100, 1064), enq(200, 2128), deq(300, 1064), deq(400, 0)})
	if !a.Clean() {
		t.Fatalf("conserving replay flagged: %v", a.Violations())
	}
	observeAll(a, []Event{enq(500, 9999)}) // 0 + 1064 != 9999
	expectViolation(t, a, "port", 1)
}

func TestAuditFaultDropDesyncs(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{
		{At: 100, Dev: 1, Kind: KEnqueue, Port: 2, PT: ptData, A: 1064, B: 1064},
		// A link-fault purge records drops against bulk byte counts; the
		// replayed depth is unknowable until the next enqueue re-anchors.
		{At: 200, Dev: 1, Kind: KDrop, Reason: RFault, Port: 2, PT: ptData, A: 1064, B: 1064},
		{At: 300, Dev: 1, Kind: KEnqueue, Port: 2, PT: ptData, A: 424242, B: 1064},
		{At: 400, Dev: 1, Kind: KEnqueue, Port: 2, PT: ptData, A: 424242 + 1064, B: 1064},
	})
	if !a.Clean() {
		t.Fatalf("fault purge must desync, not violate: %v", a.Violations())
	}
}

func TestAuditTailDropDepth(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{
		{At: 100, Dev: 1, Kind: KEnqueue, Port: 2, PT: ptData, A: 1064, B: 1064},
		// Tail drop at a full queue: depth must match the replay (1064).
		{At: 200, Dev: 1, Kind: KDrop, Reason: RQueueLimit, Port: 2, PT: ptData, A: 555, B: 1064},
	})
	expectViolation(t, a, "port", 1)
}

func TestAuditMFTLifecycle(t *testing.T) {
	grp := uint32(0xE0000001)
	mft := func(at int64, k Kind, epoch int64) Event {
		return Event{At: simT(at), Dev: 1, Kind: k, Port: -1, Dst: grp, A: epoch}
	}
	t.Run("install-over-live", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 1), mft(2, KMFTInstall, 2)})
		expectViolation(t, a, "mft", 1)
	})
	t.Run("rebuild-then-install-same-epoch-ok", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 1), mft(2, KMFTRebuild, 2), mft(2, KMFTInstall, 2)})
		if !a.Clean() {
			t.Fatalf("epoch rebuild's re-install flagged: %v", a.Violations())
		}
	})
	t.Run("rebuild-not-newer", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 5), mft(2, KMFTRebuild, 5)})
		expectViolation(t, a, "mft", 1)
	})
	t.Run("stale-not-stale", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 3), mft(2, KMFTStale, 4)})
		expectViolation(t, a, "mft", 1)
	})
	t.Run("stale-ok", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 3), mft(2, KMFTStale, 2)})
		if !a.Clean() {
			t.Fatalf("genuinely stale replay flagged: %v", a.Violations())
		}
	})
	t.Run("wipe-install-cycle", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 1), mft(2, KMFTWipe, 1), mft(3, KMFTInstall, 1)})
		if !a.Clean() {
			t.Fatalf("install after wipe flagged: %v", a.Violations())
		}
	})
	t.Run("double-wipe", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 1), mft(2, KMFTWipe, 1), mft(3, KMFTWipe, 1)})
		expectViolation(t, a, "mft", 1)
	})
	t.Run("nack-while-live", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		observeAll(a, []Event{mft(1, KMFTInstall, 1), mft(2, KMFTNack, 0)})
		expectViolation(t, a, "mft", 1)
	})
	t.Run("epoch-wraparound", func(t *testing.T) {
		a := NewAuditor(AuditConfig{})
		// Serial arithmetic: 2 is newer than 65535, so a rebuild across the
		// wrap is legitimate.
		observeAll(a, []Event{mft(1, KMFTInstall, 65535), mft(2, KMFTRebuild, 2), mft(2, KMFTInstall, 2)})
		if !a.Clean() {
			t.Fatalf("wraparound rebuild flagged: %v", a.Violations())
		}
	})
}

func TestAuditPSNSyncResets(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	evs := []Event{sendEv(100, 0), sendEv(200, 1)}
	evs[1].A = 2128
	// Recovery resynchronizes the flow to PSN 40; the next first transmission
	// at 40 must not read as a skip from 2.
	sync := Event{At: 300, Dev: 0, Kind: KPSNSync, Port: -1, Src: audHost, SrcQP: 2, PSN: 40, A: 0}
	after := sendEv(400, 40)
	after.A = 3192
	observeAll(a, append(evs, sync, after))
	if !a.Clean() {
		t.Fatalf("sanctioned PSN sync flagged: %v", a.Violations())
	}

	// Receive side: a delivery below the previous next-PSN is fine after the
	// responder resynchronized.
	b := NewAuditor(AuditConfig{})
	observeAll(b, []Event{
		{At: 100, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 7, A: 1, B: 1024},
		{At: 200, Dev: 5, Kind: KPSNSync, Port: -1, Src: audPeer, SrcQP: 3, PSN: 2, A: 1},
		{At: 300, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 2, A: 1, B: 1024},
	})
	if !b.Clean() {
		t.Fatalf("post-sync delivery flagged: %v", b.Violations())
	}
}

// TestAuditBatchCadenceInvariance feeds the same stream in different barrier
// batch sizes; the auditor is per-event streaming, so cadence cannot change
// the verdict.
func TestAuditBatchCadenceInvariance(t *testing.T) {
	evs := []Event{sendEv(100, 0), sendEv(200, 3), // skip -> 1 violation
		{At: 300, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 7, A: 1, B: 1024},
		{At: 400, Dev: 5, Kind: KDeliver, Port: -1, Dst: audPeer, DstQP: 3, PSN: 6, A: 1, B: 1024},
	}
	evs[1].A = 2128
	var counts []uint64
	for _, chunk := range []int{1, 2, len(evs)} {
		a := NewAuditor(AuditConfig{})
		for i := 0; i < len(evs); i += chunk {
			end := i + chunk
			if end > len(evs) {
				end = len(evs)
			}
			observeAll(a, evs[i:end])
		}
		counts = append(counts, a.ViolationCount())
	}
	if counts[0] != 2 || counts[1] != counts[0] || counts[2] != counts[0] {
		t.Fatalf("violation counts vary with cadence: %v", counts)
	}
}

func TestAuditErrAndReport(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	observeAll(a, []Event{sendEv(100, 0), sendEv(200, 3)})
	evErr := a.Err()
	if evErr == nil || !strings.Contains(evErr.Error(), "violation") {
		t.Fatalf("Err() = %v", evErr)
	}
	var sb strings.Builder
	a.Report(&sb)
	if !strings.Contains(sb.String(), "gbn") {
		t.Fatalf("report missing checker id:\n%s", sb.String())
	}
	if !strings.Contains(a.Verdict(0), "FAIL") {
		t.Fatalf("verdict: %s", a.Verdict(0))
	}
}
