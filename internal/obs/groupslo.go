package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Per-group SLO engine: declarative objectives (delivery p99, goodput
// floor, drop budget) evaluated over rolling windows of the goodput
// time-series, with multi-window burn rates and a deterministic breach
// timeline. Everything is a pure reduction over GroupReport buckets, which
// are themselves identical at every worker count, so two runs of the same
// history always produce the same timeline.

// SLOObjective declares what a group is owed. Zero-valued fields disable
// the corresponding objective.
type SLOObjective struct {
	// DeliveryP99: at least 99% of message deliveries must complete within
	// this latency. Messages above it spend the 1% error budget.
	DeliveryP99 sim.Time
	// GoodputFloor: rolling-window goodput must stay at or above this many
	// bytes/second. Windows up to goodputSlack below the floor are
	// tolerated; deeper shortfall burns budget proportionally.
	GoodputFloor float64
	// DropBudget: the allowed fraction of this group's frames the fabric
	// may drop (drops / (drops + accepted packets)).
	DropBudget float64
}

// deliveryBudget is the error budget implied by a p99 objective: 1% of
// messages may exceed the target.
const deliveryBudget = 0.01

// goodputSlack is the tolerated relative shortfall below a goodput floor
// before budget burns: a window at 95% of the floor is compliant, a window
// at 0 burns at 1/goodputSlack = 20x.
const goodputSlack = 0.05

// String renders the objective compactly ("p99<=2ms goodput>=1.0e+09B/s
// drops<=0.1%"); empty for the zero objective.
func (o SLOObjective) String() string {
	var parts []string
	if o.DeliveryP99 > 0 {
		parts = append(parts, fmt.Sprintf("p99<=%v", o.DeliveryP99))
	}
	if o.GoodputFloor > 0 {
		parts = append(parts, fmt.Sprintf("goodput>=%.3gB/s", o.GoodputFloor))
	}
	if o.DropBudget > 0 {
		parts = append(parts, fmt.Sprintf("drops<=%.3g", o.DropBudget))
	}
	return strings.Join(parts, " ")
}

// ParseSLO parses a comma-separated objective spec shared by the
// cepheus-bench, faultsim, and cepheus-trace -slo flags:
//
//	p99=<dur>,goodput=<bytes/s>,drops=<fraction>[,window=<dur>]
//
// e.g. "p99=2ms,goodput=1e9,drops=0.001,window=500us". Durations accept
// ns/us/ms/s suffixes (bare numbers are ns). The window (optional) is the
// short evaluation window; it is returned separately because it configures
// the evaluator, not the objective.
func ParseSLO(spec string) (SLOObjective, SLOWindows, error) {
	var o SLOObjective
	var w SLOWindows
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return o, w, fmt.Errorf("slo: %q is not key=value", kv)
		}
		switch k {
		case "p99":
			d, err := parseDur(v)
			if err != nil {
				return o, w, fmt.Errorf("slo: p99: %v", err)
			}
			o.DeliveryP99 = d
		case "goodput":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				return o, w, fmt.Errorf("slo: goodput: bad bytes/s %q", v)
			}
			o.GoodputFloor = f
		case "drops":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f >= 1 {
				return o, w, fmt.Errorf("slo: drops: bad fraction %q (need 0<f<1)", v)
			}
			o.DropBudget = f
		case "window":
			d, err := parseDur(v)
			if err != nil {
				return o, w, fmt.Errorf("slo: window: %v", err)
			}
			w.Short = d
		default:
			return o, w, fmt.Errorf("slo: unknown key %q (want p99/goodput/drops/window)", k)
		}
	}
	if o == (SLOObjective{}) {
		return o, w, fmt.Errorf("slo: spec %q declares no objective", spec)
	}
	return o, w, nil
}

// parseDur parses a simulated duration with an optional ns/us/ms/s suffix
// (bare numbers are nanoseconds).
func parseDur(s string) (sim.Time, error) {
	mult := sim.Time(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		s, mult = strings.TrimSuffix(s, "us"), sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), sim.Millisecond
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), sim.Second
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	return sim.Time(n * float64(mult)), nil
}

// SLOWindows configures the rolling evaluation. Short is the fast-burn
// detection window, Long the confirmation window; a breach opens only when
// both windows burn above Threshold (the standard multi-window alert shape:
// the short window catches the onset, the long window suppresses blips).
type SLOWindows struct {
	Short     sim.Time // 0 selects 1ms
	Long      sim.Time // 0 selects 6*Short
	Threshold float64  // 0 selects 1.0 (burning faster than sustainable)
}

func (w SLOWindows) norm(bucket sim.Time) SLOWindows {
	if w.Short <= 0 {
		w.Short = sim.Millisecond
	}
	if w.Short < bucket {
		w.Short = bucket
	}
	if w.Long <= 0 {
		w.Long = 6 * w.Short
	}
	if w.Threshold <= 0 {
		w.Threshold = 1.0
	}
	return w
}

// Breach is one contiguous interval during which an objective burned above
// threshold in both windows. End is exclusive, at bucket granularity; a
// breach still open at the end of the history ends at the last bucket edge.
type Breach struct {
	Start, End sim.Time
	Peak       float64 // highest short-window burn inside the interval
}

// SLOResult is the evaluation of one (group, objective) pair.
type SLOResult struct {
	Group         uint32
	Objective     string // "delivery-p99" | "goodput-floor" | "drop-budget"
	Target        string // human-readable objective
	BudgetSpent   float64
	PeakShortBurn float64
	PeakLongBurn  float64
	Breaches      []Breach
}

// Breached reports whether the objective breached at least once.
func (r *SLOResult) Breached() bool { return len(r.Breaches) > 0 }

// errRatio is the per-window error function of one objective kind: given
// the summed bucket contents of a window, return the fraction of budget-
// relevant events that were bad, in [0, 1].
type errRatio func(b *GBucket, window sim.Time) float64

// EvalGroupSLO evaluates one group's report against its objective,
// returning one SLOResult per enabled objective (delivery, goodput, drop),
// in that order. The rolling windows slide bucket-by-bucket across the
// group's active span [first bucket, last bucket]; silent mid-run gaps
// count as zero traffic (which breaches a goodput floor — a starved group
// is exactly what the floor exists to catch).
func EvalGroupSLO(r *GroupReport, o SLOObjective, w SLOWindows) []SLOResult {
	w = w.norm(r.Bucket)
	var out []SLOResult
	if o.DeliveryP99 > 0 {
		res := evalObjective(r, w, "delivery-p99",
			fmt.Sprintf("99%% of messages <= %v", o.DeliveryP99),
			deliveryBudget,
			func(b *GBucket, _ sim.Time) float64 {
				if b.Msgs == 0 {
					return 0
				}
				return float64(b.Slow) / float64(b.Msgs)
			})
		if r.Messages > 0 {
			res.BudgetSpent = float64(sumSlow(r)) / (deliveryBudget * float64(r.Messages))
		}
		out = append(out, res)
	}
	if o.GoodputFloor > 0 {
		floor := o.GoodputFloor
		res := evalObjective(r, w, "goodput-floor",
			fmt.Sprintf("goodput >= %.3g B/s", floor),
			goodputSlack,
			func(b *GBucket, window sim.Time) float64 {
				g := float64(b.Bytes) / (float64(window) / float64(sim.Second))
				if g >= floor {
					return 0
				}
				return 1 - g/floor
			})
		out = append(out, res)
	}
	if o.DropBudget > 0 {
		res := evalObjective(r, w, "drop-budget",
			fmt.Sprintf("drop fraction <= %.3g", o.DropBudget),
			o.DropBudget,
			func(b *GBucket, _ sim.Time) float64 {
				tot := b.Drops + b.Pkts
				if tot == 0 {
					return 0
				}
				return float64(b.Drops) / float64(tot)
			})
		tot := r.DroppedPkts + r.Pkts
		if tot > 0 {
			res.BudgetSpent = (float64(r.DroppedPkts) / float64(tot)) / o.DropBudget
		}
		out = append(out, res)
	}
	return out
}

func sumSlow(r *GroupReport) uint64 {
	var n uint64
	for i := range r.Series {
		n += r.Series[i].Slow
	}
	return n
}

// evalObjective slides the short and long windows across the group's
// active bucket span and builds the breach timeline.
func evalObjective(r *GroupReport, w SLOWindows, kind, target string, budget float64, f errRatio) SLOResult {
	res := SLOResult{Group: r.Group, Objective: kind, Target: target}
	if len(r.Series) == 0 || budget <= 0 {
		return res
	}
	bucket := r.Bucket
	// Dense bucket span, zero-filled: the series is sparse but windows
	// must see silence.
	first := int64(r.Series[0].Start / bucket)
	last := int64(r.Series[len(r.Series)-1].Start / bucket)
	n := int(last - first + 1)
	dense := make([]GBucket, n)
	for i := range r.Series {
		p := &r.Series[i]
		dense[int64(p.Start/bucket)-first] = p.GBucket
	}
	shortN := int(w.Short / bucket)
	longN := int(w.Long / bucket)
	if shortN < 1 {
		shortN = 1
	}
	if longN < shortN {
		longN = shortN
	}
	burnAt := func(end, span int) float64 { // window = dense[end-span+1 .. end]
		lo := end - span + 1
		if lo < 0 {
			lo = 0
			span = end + 1
		}
		var sum GBucket
		for i := lo; i <= end; i++ {
			sum.add(&dense[i])
		}
		return f(&sum, sim.Time(span)*bucket) / budget
	}
	var open *Breach
	for i := 0; i < n; i++ {
		sb := burnAt(i, shortN)
		lb := burnAt(i, longN)
		if sb > res.PeakShortBurn {
			res.PeakShortBurn = sb
		}
		if lb > res.PeakLongBurn {
			res.PeakLongBurn = lb
		}
		edge := sim.Time(first+int64(i)) * bucket
		if sb >= w.Threshold && lb >= w.Threshold {
			if open == nil {
				res.Breaches = append(res.Breaches, Breach{Start: edge, Peak: sb})
				open = &res.Breaches[len(res.Breaches)-1]
			} else if sb > open.Peak {
				open.Peak = sb
			}
			open.End = edge + bucket
		} else {
			open = nil
		}
	}
	return res
}

// EvalSLOs evaluates every group in reports against objFor's objectives
// (groups without one are skipped), returning results sorted by (group,
// objective order). This is the shared backend of the -slo CLI flags.
func EvalSLOs(reports []GroupReport, objFor func(uint32) (SLOObjective, bool), w SLOWindows) []SLOResult {
	var out []SLOResult
	for i := range reports {
		o, ok := objFor(reports[i].Group)
		if !ok {
			continue
		}
		out = append(out, EvalGroupSLO(&reports[i], o, w)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// WriteSLOReport renders results as text: one status line per objective
// plus an indented deterministic breach timeline. Returns the number of
// objectives that breached.
func WriteSLOReport(w io.Writer, results []SLOResult) int {
	breached := 0
	for i := range results {
		r := &results[i]
		status := "ok"
		if r.Breached() {
			status = "BREACH"
			breached++
		}
		fmt.Fprintf(w, "slo g%-4d %-14s %-6s budget_spent=%.3f peak_burn=%.2f/%.2f (%s)\n",
			r.Group-GroupAddrBase, r.Objective, status, r.BudgetSpent,
			r.PeakShortBurn, r.PeakLongBurn, r.Target)
		for _, b := range r.Breaches {
			fmt.Fprintf(w, "  breach [%v, %v) peak_burn=%.2f\n", b.Start, b.End, b.Peak)
		}
	}
	return breached
}
