package obs

import (
	"testing"

	"repro/internal/sim"
)

func TestQuantileEmpty(t *testing.T) {
	if got := Quantile(nil, 0.5); got != -1 {
		t.Fatalf("Quantile(nil) = %v, want -1", got)
	}
	if got := Quantile([]sim.Time{}, 0.99); got != -1 {
		t.Fatalf("Quantile(empty) = %v, want -1", got)
	}
}

func TestQuantileSingle(t *testing.T) {
	xs := []sim.Time{42}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := Quantile(xs, q); got != 42 {
			t.Fatalf("Quantile([42], %v) = %v, want 42", q, got)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	// Unsorted on purpose: Quantile must sort a copy.
	xs := []sim.Time{70, 10, 100, 40, 90, 20, 60, 30, 80, 50}
	cases := []struct {
		q    float64
		want sim.Time
	}{
		{0.01, 10}, // rank rounds below the first element: clamps to min
		{0.1, 10},
		{0.5, 50},
		{0.9, 90},
		{0.99, 100}, // rank rounds past the last element: clamps to max
		{1, 100},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 70 || xs[9] != 50 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestDeliveredBytes(t *testing.T) {
	evs := []Event{
		{At: 5, Kind: KDeliver, B: 100},   // before the window
		{At: 10, Kind: KDeliver, B: 1000}, // at from: included
		{At: 15, Kind: KEnqueue, B: 777},  // wrong kind
		{At: 15, Kind: KDeliver, B: 200},
		{At: 20, Kind: KDeliver, B: 4000}, // at to: excluded (half-open)
		{At: 25, Kind: KDeliver, B: 100},  // after the window
	}
	if got := DeliveredBytes(evs, 10, 20); got != 1200 {
		t.Fatalf("DeliveredBytes = %d, want 1200", got)
	}
	if got := DeliveredBytes(evs, 0, 100); got != 5400 {
		t.Fatalf("DeliveredBytes(all) = %d, want 5400", got)
	}
	if got := DeliveredBytes(nil, 0, 100); got != 0 {
		t.Fatalf("DeliveredBytes(nil) = %d, want 0", got)
	}
}

func TestCountDrops(t *testing.T) {
	evs := []Event{
		{Kind: KDrop, Reason: RQueueLimit},
		{Kind: KDrop, Reason: RLoss},
		{Kind: KDrop, Reason: RQueueLimit},
		{Kind: KEnqueue, Reason: RQueueLimit}, // not a drop: ignored
		{Kind: KDrop, Reason: RImpairLoss},
	}
	m := CountDrops(evs)
	want := map[Reason]uint64{RQueueLimit: 2, RLoss: 1, RImpairLoss: 1}
	if len(m) != len(want) {
		t.Fatalf("CountDrops = %v, want %v", m, want)
	}
	for r, n := range want {
		if m[r] != n {
			t.Fatalf("CountDrops[%v] = %d, want %d", r, m[r], n)
		}
	}
	if got := CountDrops(nil); len(got) != 0 {
		t.Fatalf("CountDrops(nil) = %v, want empty", got)
	}
}
