package obs

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestHistIndexRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 15, 16, 17, 100, 1023, 1024, 1 << 20, 1<<62 - 1, 1 << 62} {
		i := histIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		hi := histValue(i)
		if uint64(hi) < v {
			t.Fatalf("histValue(%d) = %d below value %d it must bound", i, hi, v)
		}
		// Relative bucket width is bounded by 1/2^subBits.
		if v >= 2*histSub {
			lo := histValue(i-1) + 1
			if width := uint64(hi) - uint64(lo); width > v>>histSubBits {
				t.Fatalf("bucket %d for %d too wide: [%d,%d]", i, v, lo, hi)
			}
		}
	}
	// Indexes are monotone in v.
	prev := -1
	for v := uint64(0); v < 1<<16; v += 7 {
		if i := histIndex(v); i < prev {
			t.Fatalf("histIndex not monotone at %d", v)
		} else {
			prev = i
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		v := int64(rng.ExpFloat64() * 50000) // latency-shaped distribution
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		// Log-bucketed error bound: within one sub-bucket (~12.5%) plus slack
		// for rank rounding.
		lo, hi := float64(exact)*0.85, float64(exact)*1.15
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q%v: got %d, exact %d (allowed [%v,%v])", q, got, exact, lo, hi)
		}
	}
	if h.Max() != vals[len(vals)-1] {
		t.Errorf("Max = %d, want %d", h.Max(), vals[len(vals)-1])
	}
	s := h.Summary()
	if s.Count != 100000 || s.Min != vals[0] || s.Max != h.Max() {
		t.Errorf("summary mismatch: %+v", s)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	m.Merge(nil) // no-op
	if m != all {
		t.Fatal("merged histogram differs from combined observation")
	}
	// Merge order must not matter.
	var m2 Histogram
	m2.Merge(&b)
	m2.Merge(&a)
	if m2 != m {
		t.Fatal("merge is order-dependent")
	}
}

func TestFabricNilSafeAndTotals(t *testing.T) {
	var nilLP *FabricLP
	nilLP.Inc(FDataDrops) // must not panic
	nilLP.Add(FMFTWipes, 3)

	f := NewFabric(4)
	f.LP(0).Inc(FDataDrops)
	f.LP(3).Add(FDataDrops, 2)
	f.LP(1).Inc(FCrashDrops)
	if got := f.Total(FDataDrops); got != 3 {
		t.Fatalf("Total(FDataDrops) = %d, want 3", got)
	}
	if got := f.Total(FCrashDrops); got != 1 {
		t.Fatalf("Total(FCrashDrops) = %d, want 1", got)
	}
	if got := f.Total(FMFTWipes); got != 0 {
		t.Fatalf("Total(FMFTWipes) = %d, want 0", got)
	}
}

func TestTracerNilOn(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Fatal("nil tracer must report off")
	}
}

func TestRecorderCanonicalOrder(t *testing.T) {
	r := NewRecorder(2, 1<<12)
	// Register in a fixed order; record interleaved across LPs.
	t0 := r.NewTracer("s0", 0)
	t1 := r.NewTracer("h0", 1)
	t1.Record(20, KDeliver, RNone, -1, 0, 1, 2, 0, 0, 5, 9, 100, 64)
	t0.Record(10, KEnqueue, RNone, 0, 0, 1, 2, 0, 0, 5, 9, 64, 64)
	t0.Record(20, KDequeue, RNone, 0, 0, 1, 2, 0, 0, 5, 9, 0, 64)
	r.Barrier()
	t1.Record(5, KDrop, RLoss, -1, 0, 1, 2, 0, 0, 6, 9, 0, 64) // later barrier, earlier time
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Canonical order: (At, Dev, Seq).
	want := []struct {
		at  sim.Time
		dev uint32
		k   Kind
	}{
		{5, 1, KDrop}, {10, 0, KEnqueue}, {20, 0, KDequeue}, {20, 1, KDeliver},
	}
	for i, w := range want {
		if evs[i].At != w.at || evs[i].Dev != w.dev || evs[i].Kind != w.k {
			t.Fatalf("event %d = %+v, want at=%d dev=%d kind=%v", i, evs[i], w.at, w.dev, w.k)
		}
	}
	if r.Lost() != 0 {
		t.Fatalf("Lost = %d, want 0", r.Lost())
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(1, 1024) // floor capacities: central 1024, shard 4096
	tr := r.NewTracer("d", 0)
	const total = 3000
	for i := 0; i < total; i++ {
		tr.Record(sim.Time(i), KEnqueue, RNone, 0, 0, 0, 0, 0, 0, 0, 0, int64(i), 0)
	}
	evs := r.Events()
	if len(evs) != 1024 {
		t.Fatalf("kept %d events, want 1024", len(evs))
	}
	// The recorder keeps the most recent history.
	if evs[0].A != total-1024 || evs[len(evs)-1].A != total-1 {
		t.Fatalf("window [%d,%d], want [%d,%d]", evs[0].A, evs[len(evs)-1].A, total-1024, total-1)
	}
	if r.Lost() != total-1024 {
		t.Fatalf("Lost = %d, want %d", r.Lost(), total-1024)
	}
}

func TestRecorderEventsUntil(t *testing.T) {
	r := NewRecorder(1, 1<<12)
	tr := r.NewTracer("d", 0)
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i*10), KEnqueue, RNone, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	if got := len(r.EventsUntil(45)); got != 5 {
		t.Fatalf("EventsUntil(45) kept %d, want 5", got)
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(1, 1<<12)
	tr := r.NewTracer("d", 0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(1, KEnqueue, RNone, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
	var h Histogram
	allocs = testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", allocs)
	}
}

func TestExportFormats(t *testing.T) {
	r := NewRecorder(1, 1<<12)
	tr := r.NewTracer("s3", 0)
	tr.Record(1500, KDrop, RQueueLimit, 2, 0, 0x0A000001, 0xE0000003, 3, 1, 42, 7, 81920, 1064)
	evs := r.Events()

	var j bytes.Buffer
	if err := r.WriteJSONL(&j, evs); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1500,"dev":"s3","port":2,"kind":"DROP","reason":"qlimit","pt":"DATA","src":"10.0.0.1","dst":"224.0.0.3","sqp":3,"dqp":1,"psn":42,"msg":7,"a":81920,"b":1064}` + "\n"
	if j.String() != want {
		t.Fatalf("JSONL:\n got %q\nwant %q", j.String(), want)
	}

	var x bytes.Buffer
	if err := r.WriteText(&x, evs); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"s3:2", "DROP", "[qlimit]", "10.0.0.1", "224.0.0.3", "psn=42", "msg=7"} {
		if !strings.Contains(x.String(), frag) {
			t.Fatalf("text export missing %q: %q", frag, x.String())
		}
	}
}

func TestKindReasonNames(t *testing.T) {
	if len(kindNames) != int(numKinds) {
		t.Fatalf("kindNames has %d entries, want %d", len(kindNames), numKinds)
	}
	if len(reasonNames) != int(numReasons) {
		t.Fatalf("reasonNames has %d entries, want %d", len(reasonNames), numReasons)
	}
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v,%v", k.String(), got, ok)
		}
	}
	for r := RQueueLimit; r < numReasons; r++ {
		got, ok := ReasonByName(r.String())
		if !ok || got != r {
			t.Fatalf("ReasonByName(%q) = %v,%v", r.String(), got, ok)
		}
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	r := NewRecorder(1, 1<<16)
	tr := r.NewTracer("d", 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), KEnqueue, RNone, 0, 0, 1, 2, 3, 4, uint64(i), uint64(i), 64, 64)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
