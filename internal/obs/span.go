package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Span reconstruction folds the canonical (At, Dev, Seq) event stream into
// per-message causal spans: requester emission, per-switch ENQ/DEQ and
// replication, per-receiver DELIVER, and the ACK/NACK/RETX epilogue. It is a
// pure function of the event stream — spans built from a sequential run and
// from any PDES worker count are identical, byte for byte, because the
// streams are.
//
// The reconstruction leans on two invariants of the recorded history:
//
//  1. Message ids are globally unique and name their origin (MsgOrigin), so
//     every data event carrying Msg belongs to exactly one span.
//  2. Propagation delay is strictly positive, so a device's first ENQ of a
//     message happens strictly after the upstream device dequeued it. The
//     replication tree falls out: a hop's parent is the device whose latest
//     DEQ of the message precedes the hop's first ENQ.

// Hop is one device's participation in a span: the origin host, or a switch
// that carried (and possibly replicated) the message.
type Hop struct {
	Dev      uint32
	Parent   int // index into Span.Hops; -1 for the origin (or an orphan)
	Depth    int // links from the origin host; 0 at the origin
	ArriveAt sim.Time
	LastDeq  sim.Time
	Enq      int
	Deq      int
	Drops    int
	Fanout   int   // distinct egress ports that enqueued this message
	Bytes    int64 // wire bytes enqueued at this device for this message

	deqs []sim.Time // sorted DEQ times, for parent inference
}

// Delivery is one receiver completing the message.
type Delivery struct {
	Dev     uint32 // receiver host device
	Addr    uint32 // receiver address (the DELIVER event's Dst)
	QP      uint32
	At      sim.Time
	Latency int64
	PSN     uint64
	LastHop int // index into Span.Hops of the final switch; -1 if unknown
	PathLen int // links origin → receiver (LastHop depth + 1); 0 if unknown
}

// Span is the reconstructed life of one message.
type Span struct {
	Msg      uint64
	Origin   uint32 // originating host address (MsgOrigin)
	Dst      uint32 // first emission's destination: group or unicast peer
	SrcQP    uint32
	FirstPSN uint64
	LastPSN  uint64
	Start    sim.Time // first ENQ at the origin host
	End      sim.Time // latest event attributed to the span
	Bytes    int64    // delivered payload bytes (0 if never delivered)
	Hops     []Hop
	Delivers []Delivery
	Retx     int
	Drops    int
	AckRx    int // cumulative ACKs the sender absorbed for this PSN range
	NackRx   int
	Critical int // index into Delivers of the latest delivery; -1 if none
}

// Duration is End - Start.
func (s *Span) Duration() sim.Time { return s.End - s.Start }

// BuildSpans reconstructs one span per message id present in evs. The input
// must be in canonical order (Recorder.Events). Output spans are sorted by
// (Start, Msg); hops by (ArriveAt, Dev); deliveries by (At, Dev).
func BuildSpans(evs []Event) []Span {
	type acc struct {
		span  Span
		hops  map[uint32]*Hop
		seen  bool
		order int
	}
	byMsg := make(map[uint64]*acc)
	get := func(msg uint64) *acc {
		a := byMsg[msg]
		if a == nil {
			a = &acc{hops: make(map[uint32]*Hop), order: len(byMsg)}
			a.span = Span{Msg: msg, Origin: MsgOrigin(msg), Critical: -1}
			byMsg[msg] = a
		}
		return a
	}
	hop := func(a *acc, dev uint32) *Hop {
		h := a.hops[dev]
		if h == nil {
			h = &Hop{Dev: dev, Parent: -1}
			a.hops[dev] = h
		}
		return h
	}
	touch := func(a *acc, at sim.Time) {
		if at > a.span.End {
			a.span.End = at
		}
	}
	notePSN := func(a *acc, psn uint64) {
		if !a.seen || psn < a.span.FirstPSN {
			a.span.FirstPSN = psn
		}
		if !a.seen || psn > a.span.LastPSN {
			a.span.LastPSN = psn
		}
		a.seen = true
	}

	for i := range evs {
		e := &evs[i]
		if e.Msg == 0 {
			continue
		}
		switch e.Kind {
		case KEnqueue, KECNMark:
			a := get(e.Msg)
			h := hop(a, e.Dev)
			if e.Kind == KECNMark {
				touch(a, e.At)
				continue
			}
			if h.Enq == 0 {
				h.ArriveAt = e.At
				if len(a.hops) == 1 {
					// First device to carry the message: the origin host.
					a.span.Start = e.At
					a.span.Dst = e.Dst
					a.span.SrcQP = e.SrcQP
				}
			}
			h.Enq++
			h.Bytes += e.B
			notePSN(a, e.PSN)
			touch(a, e.At)
		case KDequeue:
			a := get(e.Msg)
			h := hop(a, e.Dev)
			h.Deq++
			h.LastDeq = e.At
			h.deqs = append(h.deqs, e.At)
			notePSN(a, e.PSN)
			touch(a, e.At)
		case KDrop:
			a := get(e.Msg)
			a.span.Drops++
			if h := a.hops[e.Dev]; h != nil {
				h.Drops++
			}
			touch(a, e.At)
		case KRetransmit:
			a := get(e.Msg)
			a.span.Retx++
			touch(a, e.At)
		case KDeliver:
			a := get(e.Msg)
			a.span.Delivers = append(a.span.Delivers, Delivery{
				Dev: e.Dev, Addr: e.Dst, QP: e.DstQP, At: e.At,
				Latency: e.A, PSN: e.PSN, LastHop: -1,
			})
			if e.B > a.span.Bytes {
				a.span.Bytes = e.B
			}
			notePSN(a, e.PSN)
			touch(a, e.At)
		}
	}

	// Second pass: per-hop fanout (distinct egress ports) and the
	// (msg, dev, dst) enqueue index that binds deliveries to their final
	// switch — shared across spans so the whole build stays O(events).
	type devPort struct {
		msg  uint64
		dev  uint32
		port int16
	}
	type devDst struct {
		msg uint64
		dev uint32
		dst uint32
	}
	seenPort := make(map[devPort]struct{})
	enqTo := make(map[devDst]struct{})
	for i := range evs {
		e := &evs[i]
		if e.Msg == 0 || e.Kind != KEnqueue {
			continue
		}
		enqTo[devDst{e.Msg, e.Dev, e.Dst}] = struct{}{}
		if e.Port < 0 {
			continue
		}
		k := devPort{e.Msg, e.Dev, e.Port}
		if _, dup := seenPort[k]; dup {
			continue
		}
		seenPort[k] = struct{}{}
		if a := byMsg[e.Msg]; a != nil {
			if h := a.hops[e.Dev]; h != nil {
				h.Fanout++
			}
		}
	}

	// Epilogue attribution: cumulative feedback the origin host absorbed for
	// each span's PSN range. PSN ranges of successive messages on a QP are
	// disjoint, so (flow, PSN) names the message.
	for i := range evs {
		e := &evs[i]
		if e.Kind != KAckRx && e.Kind != KNackRx {
			continue
		}
		for _, a := range byMsg {
			s := &a.span
			if e.Dst != s.Origin || e.DstQP != s.SrcQP || !a.seen {
				continue
			}
			if e.PSN < s.FirstPSN || e.PSN > s.LastPSN {
				continue
			}
			if e.Kind == KAckRx {
				s.AckRx++
			} else {
				s.NackRx++
			}
			touch(a, e.At)
		}
	}

	// Assemble: order hops, infer the replication tree, bind deliveries.
	accs := make([]*acc, 0, len(byMsg))
	for _, a := range byMsg {
		accs = append(accs, a)
	}
	sort.Slice(accs, func(i, j int) bool { return accs[i].order < accs[j].order })

	spans := make([]Span, 0, len(accs))
	for _, a := range accs {
		s := a.span
		for _, h := range a.hops {
			s.Hops = append(s.Hops, *h)
		}
		sort.Slice(s.Hops, func(i, j int) bool {
			x, y := &s.Hops[i], &s.Hops[j]
			if x.ArriveAt != y.ArriveAt {
				return x.ArriveAt < y.ArriveAt
			}
			return x.Dev < y.Dev
		})
		inferTree(s.Hops)
		msg := s.Msg
		bindDeliveries(&s, func(dev, dst uint32) bool {
			_, ok := enqTo[devDst{msg, dev, dst}]
			return ok
		})
		sort.Slice(s.Delivers, func(i, j int) bool {
			x, y := &s.Delivers[i], &s.Delivers[j]
			if x.At != y.At {
				return x.At < y.At
			}
			return x.Dev < y.Dev
		})
		for i := range s.Delivers {
			d := &s.Delivers[i]
			if s.Critical < 0 || d.At > s.Delivers[s.Critical].At {
				s.Critical = i
			}
		}
		for i := range s.Hops {
			s.Hops[i].deqs = nil
		}
		spans = append(spans, s)
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Msg < spans[j].Msg
	})
	return spans
}

// inferTree assigns each hop's parent: the hop whose latest DEQ of the
// message strictly precedes this hop's first ENQ (latest such DEQ wins;
// ties break toward the smaller device id). Hops are in (ArriveAt, Dev)
// order, so a parent always precedes its children and depths resolve in one
// pass.
func inferTree(hops []Hop) {
	for i := 1; i < len(hops); i++ {
		h := &hops[i]
		best, bestAt := -1, sim.Time(-1)
		for j := 0; j < i; j++ {
			g := &hops[j]
			// Latest DEQ at g strictly before h's arrival.
			ds := g.deqs
			lo, hi := 0, len(ds)
			for lo < hi {
				mid := (lo + hi) / 2
				if ds[mid] < h.ArriveAt {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == 0 {
				continue
			}
			if at := ds[lo-1]; at > bestAt {
				bestAt, best = at, j
			}
		}
		h.Parent = best
		if best >= 0 {
			h.Depth = hops[best].Depth + 1
		}
	}
}

// bindDeliveries locates each delivery's final switch: the deepest hop that
// enqueued the message toward the receiver's address (the leaf rewrites the
// clone's destination to the member, so only the last switch matches for
// multicast; for unicast every hop matches and the deepest is the last).
// enqueuedTo reports whether dev enqueued this span's message toward dst.
func bindDeliveries(s *Span, enqueuedTo func(dev, dst uint32) bool) {
	for i := range s.Delivers {
		d := &s.Delivers[i]
		for j := range s.Hops {
			h := &s.Hops[j]
			if !enqueuedTo(h.Dev, d.Addr) {
				continue
			}
			if d.LastHop < 0 || h.Depth > s.Hops[d.LastHop].Depth {
				d.LastHop = j
			}
		}
		if d.LastHop >= 0 {
			d.PathLen = s.Hops[d.LastHop].Depth + 1
		}
	}
}

// MsgString renders a message id as origin#counter, the human-readable form
// used by span exports.
func MsgString(msg uint64) string {
	return fmt.Sprintf("%s#%d", AddrString(MsgOrigin(msg)), uint32(msg))
}

// WriteSpans renders spans in a fixed, deterministic text form. names maps
// device ids to names (Recorder.DevName, or the CLI's table).
func WriteSpans(w io.Writer, spans []Span, names func(uint32) string) error {
	bw := bufio.NewWriter(w)
	for i := range spans {
		s := &spans[i]
		fmt.Fprintf(bw, "span msg=%s qp=%d dst=%s psn=[%d,%d] bytes=%d start=%d end=%d dur=%d\n",
			MsgString(s.Msg), s.SrcQP, AddrString(s.Dst), s.FirstPSN, s.LastPSN,
			s.Bytes, int64(s.Start), int64(s.End), int64(s.Duration()))
		for j := range s.Hops {
			h := &s.Hops[j]
			parent := "-"
			if h.Parent >= 0 {
				parent = names(s.Hops[h.Parent].Dev)
			}
			fmt.Fprintf(bw, "  hop %-12s depth=%d parent=%-12s arrive=%-12d enq=%d deq=%d drop=%d fanout=%d bytes=%d\n",
				names(h.Dev), h.Depth, parent, int64(h.ArriveAt), h.Enq, h.Deq, h.Drops, h.Fanout, h.Bytes)
		}
		for j := range s.Delivers {
			d := &s.Delivers[j]
			via := "-"
			if d.LastHop >= 0 {
				via = names(s.Hops[d.LastHop].Dev)
			}
			fmt.Fprintf(bw, "  deliver %-8s at=%-12d lat=%-10d psn=%d path=%d via=%s\n",
				names(d.Dev), int64(d.At), d.Latency, d.PSN, d.PathLen, via)
		}
		fmt.Fprintf(bw, "  epilogue retx=%d drops=%d ack-rx=%d nack-rx=%d\n",
			s.Retx, s.Drops, s.AckRx, s.NackRx)
		if s.Critical >= 0 {
			d := &s.Delivers[s.Critical]
			fmt.Fprintf(bw, "  critical %s lat=%d path: %s\n",
				names(d.Dev), d.Latency, criticalPath(s, d, names))
		}
	}
	return bw.Flush()
}

// criticalPath renders the hop chain origin → ... → receiver for the
// critical (latest) delivery.
func criticalPath(s *Span, d *Delivery, names func(uint32) string) string {
	var chain []string
	for j := d.LastHop; j >= 0; j = s.Hops[j].Parent {
		chain = append(chain, names(s.Hops[j].Dev))
	}
	// chain is leaf→origin; reverse and append the receiver.
	out := ""
	for i := len(chain) - 1; i >= 0; i-- {
		out += chain[i] + " > "
	}
	return out + names(d.Dev)
}

// TimelineOptions selects and scales a timeline rendering.
type TimelineOptions struct {
	From  sim.Time
	To    sim.Time // 0 = last event
	Width int      // columns; 0 = 96
	Msg   uint64   // 0 = all messages
	Group uint32   // 0 = all destinations; otherwise require Dst == Group
}

// timelineGlyph maps an event to its lifeline character and priority
// (higher priority overwrites lower when events share a column).
func timelineGlyph(k Kind) (byte, int) {
	switch k {
	case KEnqueue:
		return 'E', 1
	case KDequeue:
		return 'D', 2
	case KECNMark:
		return 'e', 3
	case KPFCPause, KPFCResume:
		return 'P', 3
	case KCNPTx, KCNPRx:
		return 'C', 4
	case KAckTx, KAckRx:
		return 'A', 5
	case KNackTx, KNackRx:
		return 'N', 6
	case KRetransmit:
		return 'R', 7
	case KMFTInstall, KMFTRebuild, KMFTWipe, KMFTStale, KMFTNack:
		return 'M', 8
	case KPSNSync:
		return 'S', 8
	case KDrop:
		return 'X', 9
	case KDeliver:
		return '*', 10
	}
	return '.', 0
}

// WriteTimeline renders a fixed-width lifeline per device for the selected
// message/group/time window: one row per device, one column per time slice,
// the highest-priority event in each slice as its glyph. Deterministic —
// device rows are in device-id order.
func WriteTimeline(w io.Writer, evs []Event, names func(uint32) string, opt TimelineOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 96
	}
	from, to := opt.From, opt.To
	if to == 0 {
		for i := range evs {
			if evs[i].At > to {
				to = evs[i].At
			}
		}
	}
	if to <= from {
		to = from + 1
	}
	span := int64(to - from)
	perCol := (span + int64(width) - 1) / int64(width)
	if perCol < 1 {
		perCol = 1
	}

	keep := func(e *Event) bool {
		if e.At < from || e.At > to {
			return false
		}
		if opt.Msg != 0 && e.Msg != opt.Msg {
			return false
		}
		if opt.Group != 0 && e.Dst != opt.Group {
			return false
		}
		return true
	}

	rows := make(map[uint32][]byte)
	prios := make(map[uint32][]int)
	var devs []uint32
	for i := range evs {
		e := &evs[i]
		if !keep(e) {
			continue
		}
		row := rows[e.Dev]
		if row == nil {
			row = make([]byte, width)
			for j := range row {
				row[j] = '-'
			}
			rows[e.Dev] = row
			prios[e.Dev] = make([]int, width)
			devs = append(devs, e.Dev)
		}
		col := int(int64(e.At-from) / perCol)
		if col >= width {
			col = width - 1
		}
		g, p := timelineGlyph(e.Kind)
		if p > prios[e.Dev][col] {
			row[col] = g
			prios[e.Dev][col] = p
		}
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "timeline %d..%d ns, %d cols, %d ns/col\n", int64(from), int64(to), width, perCol)
	fmt.Fprintf(bw, "legend: E enq  D deq  e ecn  P pfc  A ack  N nack  C cnp  R retx  M mft  S psn-sync  X drop  * deliver\n")
	for _, d := range devs {
		fmt.Fprintf(bw, "%-12s |%s|\n", names(d), rows[d])
	}
	return bw.Flush()
}
