package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSeriesSampling(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	var counter float64
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.TrackDelta("delta", func() float64 { return counter })
	// The counter grows by 3 between every pair of samples.
	var bump func()
	bump = func() {
		counter += 3
		eng.Schedule(eng.Now()+10, bump)
	}
	eng.Schedule(5, bump)
	s.Start()
	eng.RunUntil(55)

	if s.Samples() != 5 {
		t.Fatalf("got %d samples, want 5", s.Samples())
	}
	now := s.Values("now")
	for i, want := range []float64{10, 20, 30, 40, 50} {
		if now[i] != want {
			t.Fatalf("now[%d] = %v, want %v", i, now[i], want)
		}
	}
	for i, d := range s.Values("delta") {
		if d != 3 {
			t.Fatalf("delta[%d] = %v, want 3", i, d)
		}
	}
	if got := s.Names(); len(got) != 2 || got[0] != "now" || got[1] != "delta" {
		t.Fatalf("names = %v", got)
	}

	s.Stop()
	eng.RunUntil(200)
	if s.Samples() != 5 {
		t.Fatalf("sampler kept ticking after Stop: %d samples", s.Samples())
	}
}

func TestSeriesDecimation(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 16)
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(165) // 16 ticks -> fills capacity -> decimate to 8, interval 20
	if s.Samples() != 8 || s.Interval() != 20 {
		t.Fatalf("after first fill: %d samples, interval %d (want 8, 20)", s.Samples(), s.Interval())
	}
	ts := s.Times()
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("time axis not increasing after decimation: %v", ts)
		}
	}
	// Surviving samples are the even-indexed originals: 10, 30, 50, ...
	if ts[0] != 10 || ts[1] != 30 {
		t.Fatalf("decimation kept wrong samples: %v", ts)
	}
	eng.RunUntil(2000)
	if s.Samples() >= 16 {
		t.Fatalf("series exceeded capacity: %d", s.Samples())
	}
}

func TestSeriesExports(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	s.Track("a", func() float64 { return 1.5 })
	s.Track("b", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(35)

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if lines[0] != "t_ns,a,b" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+3 {
		t.Fatalf("csv has %d rows, want 4:\n%s", len(lines), csv.String())
	}
	if lines[1] != "10,1.5,10" {
		t.Fatalf("csv row = %q", lines[1])
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	out := js.String()
	for _, want := range []string{`"interval_ns":10`, `"t":[10,20,30]`, `"a":[1.5,1.5,1.5]`, `"b":[10,20,30]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesTrackAfterSamplingPanics(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	s.Track("a", func() float64 { return 0 })
	s.Start()
	eng.RunUntil(15)
	defer func() {
		if recover() == nil {
			t.Fatal("Track after sampling must panic")
		}
	}()
	s.Track("late", func() float64 { return 0 })
}
