package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSeriesSampling(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	var counter float64
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.TrackDelta("delta", func() float64 { return counter })
	// The counter grows by 3 between every pair of samples.
	var bump func()
	bump = func() {
		counter += 3
		eng.Schedule(eng.Now()+10, bump)
	}
	eng.Schedule(5, bump)
	s.Start()
	eng.RunUntil(55)

	if s.Samples() != 5 {
		t.Fatalf("got %d samples, want 5", s.Samples())
	}
	now := s.Values("now")
	for i, want := range []float64{10, 20, 30, 40, 50} {
		if now[i] != want {
			t.Fatalf("now[%d] = %v, want %v", i, now[i], want)
		}
	}
	for i, d := range s.Values("delta") {
		if d != 3 {
			t.Fatalf("delta[%d] = %v, want 3", i, d)
		}
	}
	if got := s.Names(); len(got) != 2 || got[0] != "now" || got[1] != "delta" {
		t.Fatalf("names = %v", got)
	}

	s.Stop()
	eng.RunUntil(200)
	if s.Samples() != 5 {
		t.Fatalf("sampler kept ticking after Stop: %d samples", s.Samples())
	}
}

func TestSeriesDecimation(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 16)
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(165) // 16 ticks -> fills capacity -> decimate to 8, interval 20
	if s.Samples() != 8 || s.Interval() != 20 {
		t.Fatalf("after first fill: %d samples, interval %d (want 8, 20)", s.Samples(), s.Interval())
	}
	ts := s.Times()
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("time axis not increasing after decimation: %v", ts)
		}
	}
	// Surviving samples are the even-indexed originals: 10, 30, 50, ...
	if ts[0] != 10 || ts[1] != 30 {
		t.Fatalf("decimation kept wrong samples: %v", ts)
	}
	eng.RunUntil(2000)
	if s.Samples() >= 16 {
		t.Fatalf("series exceeded capacity: %d", s.Samples())
	}
}

func TestSeriesDecimationExactCapacity(t *testing.T) {
	// Decimation triggers exactly when the sample count reaches capacity —
	// one tick earlier the set is still full-resolution.
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 16)
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(155) // 15 ticks: one short of capacity
	if s.Samples() != 15 || s.Interval() != 10 {
		t.Fatalf("at capacity-1: %d samples, interval %d (want 15, 10)", s.Samples(), s.Interval())
	}
	eng.RunUntil(165) // the 16th tick fills capacity and decimates
	if s.Samples() != 8 || s.Interval() != 20 {
		t.Fatalf("at capacity: %d samples, interval %d (want 8, 20)", s.Samples(), s.Interval())
	}
}

func TestSeriesSingleSample(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 16)
	s.Track("v", func() float64 { return 7 })
	s.Start()
	eng.RunUntil(15) // exactly one tick
	s.Stop()
	if s.Samples() != 1 || s.Interval() != 10 {
		t.Fatalf("%d samples, interval %d (want 1, 10)", s.Samples(), s.Interval())
	}
	if vs := s.Values("v"); len(vs) != 1 || vs[0] != 7 {
		t.Fatalf("values = %v, want [7]", vs)
	}
	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if want := "t_ns,v\n10,7\n"; csv.String() != want {
		t.Fatalf("csv = %q, want %q", csv.String(), want)
	}
}

func TestSeriesRefillAfterDecimation(t *testing.T) {
	// After the first decimation (8 samples @ interval 20), the set keeps
	// sampling on the doubled grid, refills to capacity, and decimates
	// again — interval 40, still the even-indexed survivors of the finer
	// grid, time axis strictly increasing throughout.
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 16)
	s.Track("now", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(165) // first fill: decimate to 8 @ 20
	if s.Samples() != 8 || s.Interval() != 20 {
		t.Fatalf("after first decimation: %d samples, interval %d", s.Samples(), s.Interval())
	}
	// 8 more ticks at interval 20 (t=180..320) refill to 16 -> decimate.
	eng.RunUntil(325)
	if s.Samples() != 8 || s.Interval() != 40 {
		t.Fatalf("after refill: %d samples, interval %d (want 8, 40)", s.Samples(), s.Interval())
	}
	ts := s.Times()
	// Survivors of two decimations: every 4th original 10ns-grid sample
	// until the first decimation, then every other 20ns-grid sample.
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("time axis not increasing after refill decimation: %v", ts)
		}
	}
	if ts[0] != 10 || ts[1] != 50 {
		t.Fatalf("second decimation kept wrong samples: %v", ts)
	}
	vs := s.Values("now")
	for i := range vs {
		if vs[i] != float64(ts[i]) {
			t.Fatalf("column desynced from time axis at %d: t=%v v=%v", i, ts[i], vs[i])
		}
	}
}

func TestSeriesExports(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	s.Track("a", func() float64 { return 1.5 })
	s.Track("b", func() float64 { return float64(eng.Now()) })
	s.Start()
	eng.RunUntil(35)

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if lines[0] != "t_ns,a,b" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+3 {
		t.Fatalf("csv has %d rows, want 4:\n%s", len(lines), csv.String())
	}
	if lines[1] != "10,1.5,10" {
		t.Fatalf("csv row = %q", lines[1])
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	out := js.String()
	for _, want := range []string{`"interval_ns":10`, `"t":[10,20,30]`, `"a":[1.5,1.5,1.5]`, `"b":[10,20,30]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("json missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesTrackAfterSamplingPanics(t *testing.T) {
	eng := sim.New(1)
	s := NewSeriesSet(eng, 10, 0)
	s.Track("a", func() float64 { return 0 })
	s.Start()
	eng.RunUntil(15)
	defer func() {
		if recover() == nil {
			t.Fatal("Track after sampling must panic")
		}
	}()
	s.Track("late", func() float64 { return 0 })
}
