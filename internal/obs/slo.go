package obs

import (
	"sort"

	"repro/internal/sim"
)

// Recovery-SLO extraction helpers: small, deterministic reductions over
// recorded histories that the fault soak harness (internal/fault, cmd/
// faultsim) uses to turn spans and traces into p50/p99 SLO numbers. They
// live here because obs owns the event taxonomy; fault owns the episode
// semantics layered on top.

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) of xs, sorting a
// copy; -1 if xs is empty. Exact-by-construction for the small sample sets a
// soak produces (unlike the log-bucketed Histogram, which trades exactness
// for allocation-free hot paths).
func Quantile(xs []sim.Time, q float64) sim.Time {
	if len(xs) == 0 {
		return -1
	}
	s := append([]sim.Time(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// DeliveredBytes sums the payload bytes of messages delivered in [from, to)
// across evs (KDeliver events carry B = message payload bytes). Because the
// canonical event stream is identical across worker counts, so is this sum.
func DeliveredBytes(evs []Event, from, to sim.Time) int64 {
	var n int64
	for i := range evs {
		e := &evs[i]
		if e.Kind == KDeliver && e.At >= from && e.At < to {
			n += e.B
		}
	}
	return n
}

// CountDrops tallies KDrop events by reason over evs, for report lines that
// attribute observed loss to its injector.
func CountDrops(evs []Event) map[Reason]uint64 {
	m := make(map[Reason]uint64)
	for i := range evs {
		if evs[i].Kind == KDrop {
			m[evs[i].Reason]++
		}
	}
	return m
}
