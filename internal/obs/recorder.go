package obs

import (
	"sort"

	"repro/internal/sim"
)

// Shard is one logical process's slice of the flight recorder: a fixed-size
// ring of Events with a single writer (the LP's worker goroutine, or the
// lone goroutine in sequential mode). When the ring fills, the oldest events
// are overwritten and counted in lost — a flight recorder keeps the recent
// past, not everything.
type Shard struct {
	ring []Event
	mask int // len(ring)-1; ring capacity is a power of two so the hot path masks instead of dividing
	head int
	n    int
	lost uint64
	lp   int16
}

// slot returns the next ring entry to write, overwriting the oldest when
// full. Handing out the slot pointer lets Record store each field exactly
// once instead of building an Event and copying 64 bytes.
func (s *Shard) slot() *Event {
	if s.n < len(s.ring) {
		e := &s.ring[(s.head+s.n)&s.mask]
		s.n++
		return e
	}
	e := &s.ring[s.head]
	s.head = (s.head + 1) & s.mask
	s.lost++
	return e
}

// Tracer is a per-device recording handle. Devices hold a *Tracer that is
// nil while tracing is off; the nil check in On is the entire disabled-path
// cost. Seq numbers events per device: a device's events are totally ordered
// by its own execution, which is deterministic, so (At, Dev, Seq) is a
// canonical order independent of how the simulation was parallelized. Seq is
// stamped at the Barrier drain, not in Record — a device's events leave its
// shard in record order, so the numbering is identical and the hot path
// saves a store.
type Tracer struct {
	sh  *Shard
	dev uint32
}

// On reports whether this tracer records. Safe on a nil receiver — the
// idiomatic guard at every record site is:
//
//	if tr.On() { tr.Record(...) }
func (t *Tracer) On() bool { return t != nil }

// Record captures one event. Allocation-free: a field-wise store into the
// shard ring — each field is written exactly once, with no zeroing of a
// temporary Event (a by-value signature benchmarks ~70% slower for exactly
// that reason). port is the device-local port id (-1 when not port-scoped),
// pt the simnet.PacketType of the frame involved (0/DATA when none). Dev and
// LP are stamped here, Seq at the next barrier drain.
func (t *Tracer) Record(at sim.Time, k Kind, reason Reason, port int, pt uint8, src, dst, srcQP, dstQP uint32, psn, msg uint64, a, b int64) {
	e := t.sh.slot()
	e.At = at
	e.PSN = psn
	e.Msg = msg
	e.A = a
	e.B = b
	e.Dev = t.dev
	e.Src = src
	e.Dst = dst
	e.SrcQP = srcQP
	e.DstQP = dstQP
	e.Port = int16(port)
	e.LP = t.sh.lp
	e.Kind = k
	e.Reason = reason
	e.PT = pt
}

// Dev returns the device id this tracer records under.
func (t *Tracer) Dev() uint32 { return t.dev }

// Recorder owns the flight-recorder storage: one Shard per LP plus a central
// ring that shards merge into at PDES window barriers (or lazily, in
// sequential mode). The merge is deterministic: within a barrier the drained
// events are ordered by (time, lp, ring order), which under conservative
// PDES is a pure function of the partitioned execution — every worker count
// over the same partition produces byte-identical central contents.
type Recorder struct {
	shards   []*Shard
	devNames []string
	devSeq   []uint32 // next Seq per device, advanced at Barrier drains

	central []Event
	chead   int
	cn      int
	clost   uint64

	scratch []Event
	sorter  barrierSort // persistent sort adapter: Barrier stays allocation-free

	observer func(*Event)
}

// barrierSort orders a barrier drain by (time, lp); sort.Stable preserves
// each shard's causal ring order among same-time events. A pointer to a
// persistent instance converts to sort.Interface without allocating, unlike
// sort.SliceStable's per-call closure + reflect.Swapper — this runs on every
// PDES window barrier while tracing, so it must not allocate.
type barrierSort struct{ ev []Event }

func (s *barrierSort) Len() int { return len(s.ev) }
func (s *barrierSort) Less(i, j int) bool {
	a, b := &s.ev[i], &s.ev[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.LP < b.LP
}
func (s *barrierSort) Swap(i, j int) { s.ev[i], s.ev[j] = s.ev[j], s.ev[i] }

// NewRecorder creates a recorder for nLP logical processes with a central
// ring of the given capacity. Each shard gets capacity/nLP slots (at least
// 4096) — shards only buffer between barriers, the central ring is the
// long-term memory.
func NewRecorder(nLP, capacity int) *Recorder {
	if nLP < 1 {
		nLP = 1
	}
	if capacity < 1024 {
		capacity = 1024
	}
	shardCap := capacity / nLP
	if shardCap < 4096 {
		shardCap = 4096
	}
	if shardCap > capacity {
		shardCap = capacity
	}
	// Round up to a power of two: push masks instead of dividing.
	pow := 1
	for pow < shardCap {
		pow <<= 1
	}
	shardCap = pow
	r := &Recorder{
		shards:  make([]*Shard, nLP),
		central: make([]Event, capacity),
	}
	for i := range r.shards {
		r.shards[i] = &Shard{ring: make([]Event, shardCap), mask: shardCap - 1, lp: int16(i)}
	}
	return r
}

// NewTracer registers a device on logical process lp and returns its
// recording handle. Registration order defines device ids, so callers must
// register in a topology-derived (execution-mode-invariant) order.
func (r *Recorder) NewTracer(name string, lp int) *Tracer {
	if lp < 0 || lp >= len(r.shards) {
		lp = 0
	}
	t := &Tracer{sh: r.shards[lp], dev: uint32(len(r.devNames))}
	r.devNames = append(r.devNames, name)
	r.devSeq = append(r.devSeq, 0)
	return t
}

// DevName returns the registered name for a device id.
func (r *Recorder) DevName(dev uint32) string {
	if int(dev) < len(r.devNames) {
		return r.devNames[dev]
	}
	return "?"
}

func (r *Recorder) pushCentral(e *Event) {
	if r.cn < len(r.central) {
		r.central[(r.chead+r.cn)%len(r.central)] = *e
		r.cn++
		return
	}
	r.central[r.chead] = *e
	r.chead = (r.chead + 1) % len(r.central)
	r.clost++
}

// Barrier drains every shard into the central ring in (time, lp, ring
// order). Called by the PDES coordinator between windows — all workers are
// parked, so shard access is race-free — and by Events at the end of a
// sequential run. The sort is stable, preserving each shard's causal ring
// order among same-time events.
func (r *Recorder) Barrier() {
	r.scratch = r.scratch[:0]
	for _, s := range r.shards {
		for s.n > 0 {
			e := s.ring[s.head]
			// Stamp the per-device sequence here: shard ring order is the
			// device's record order, so this numbering matches what the hot
			// path would have produced, one store cheaper.
			e.Seq = r.devSeq[e.Dev]
			r.devSeq[e.Dev]++
			r.scratch = append(r.scratch, e)
			s.head = (s.head + 1) & s.mask
			s.n--
		}
	}
	r.sorter.ev = r.scratch
	sort.Stable(&r.sorter)
	if r.observer != nil {
		for i := range r.scratch {
			r.observer(&r.scratch[i])
		}
	}
	for i := range r.scratch {
		r.pushCentral(&r.scratch[i])
	}
}

// Attach registers fn to observe every event as it drains through Barrier,
// after the deterministic (time, lp, ring order) sort and before central-ring
// eviction can lose it. Because barriers only move the drain *boundaries* —
// never the order of any device's events, which is its own record order —
// a per-device streaming consumer (the invariant auditor) sees an identical
// per-device history under every worker count and barrier cadence. The
// pointer is valid only for the duration of the call; copy to retain.
func (r *Recorder) Attach(fn func(*Event)) { r.observer = fn }

// Lost returns how many events were overwritten before export (shard
// overflow between barriers plus central-ring eviction). A flight recorder
// with Lost() == 0 captured the complete history.
func (r *Recorder) Lost() uint64 {
	t := r.clost
	for _, s := range r.shards {
		t += s.lost
	}
	return t
}

// ShardLost returns how many events were overwritten in per-LP shards before
// a barrier drained them — events an attached observer never saw. Central-
// ring eviction (the rest of Lost) happens after observers run, so ShardLost
// is the auditor's true coverage gap even when the ring forgot old history.
func (r *Recorder) ShardLost() uint64 {
	var t uint64
	for _, s := range r.shards {
		t += s.lost
	}
	return t
}

// Events drains any shard residue and returns a copy of the recorded
// history in canonical (At, Dev, Seq) order. That order is a pure function
// of the simulated history — it does not depend on worker count or on
// sequential-vs-partitioned execution — so exports are directly comparable
// across runs.
func (r *Recorder) Events() []Event {
	return r.EventsUntil(sim.Time(1<<63 - 1))
}

// EventsUntil is Events restricted to events with At <= cutoff. Partitioned
// execution may run slightly past a RunUntil horizon (to its window edge);
// cutting at the horizon yields the event set both execution modes agree on.
func (r *Recorder) EventsUntil(cutoff sim.Time) []Event {
	r.Barrier()
	out := make([]Event, 0, r.cn)
	for i := 0; i < r.cn; i++ {
		e := &r.central[(r.chead+i)%len(r.central)]
		if e.At <= cutoff {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Dev != b.Dev {
			return a.Dev < b.Dev
		}
		return a.Seq < b.Seq
	})
	return out
}
