// Package obs is the unified observability layer: a flight recorder of typed
// trace events (allocation-free, per-LP, merged deterministically), sharded
// fabric counters that replace hand-summed metric walks, and log-bucketed
// histograms for latency and queue-depth distributions.
//
// The package sits below simnet/roce/core in the dependency order (it imports
// only sim), so every layer of the stack can record into it. Everything is
// built to cost nothing when disabled: recording is guarded by a nil Tracer
// check, counters are nil-safe increments, and nothing on any path allocates.
// See DESIGN.md §10.
package obs

import (
	"fmt"

	"repro/internal/sim"
)

// Kind enumerates the trace event taxonomy. The set mirrors the behaviours
// the paper's evaluation reasons about: queue dynamics (enqueue/dequeue, ECN,
// drops, PFC), the feedback stream (ACK/NACK/CNP in both directions,
// retransmissions, deliveries), and the accelerator's MFT lifecycle.
type Kind uint8

const (
	// KEnqueue: a frame entered an egress queue. A = queue depth in bytes
	// after the enqueue, B = frame wire size.
	KEnqueue Kind = iota
	// KDequeue: a frame left an egress queue and began serializing.
	// A = queue depth after the dequeue, B = frame wire size.
	KDequeue
	// KECNMark: an egress queue CE-marked a data frame. A = queue depth,
	// B = frame wire size.
	KECNMark
	// KDrop: a frame died. Reason says why; A = queue depth at the drop
	// (where meaningful), B = frame wire size.
	KDrop
	// KPFCPause: PFC paused an egress. A = queue depth at the pause.
	KPFCPause
	// KPFCResume: PFC resumed an egress. A = queue depth at the resume.
	KPFCResume
	// KAckTx / KAckRx: a transport ACK left / reached an endpoint.
	KAckTx
	KAckRx
	// KNackTx / KNackRx: a transport NACK left / reached an endpoint.
	// PSN is the expected PSN the NACK names.
	KNackTx
	KNackRx
	// KCNPTx / KCNPRx: a DCQCN congestion notification left / reached an
	// endpoint.
	KCNPTx
	KCNPRx
	// KRetransmit: the requester re-emitted a data packet. Msg identifies
	// the message, B = payload bytes.
	KRetransmit
	// KDeliver: the responder completed an in-order message (the packet
	// carrying the last flag was accepted). A = the final packet's delivery
	// latency in ns (from requester emission), B = message payload bytes,
	// Msg = the message id. Per-packet latencies are aggregated in the
	// always-on QP histograms; the trace records the application-visible
	// delivery.
	KDeliver
	// KMFTInstall: an accelerator installed a new MFT. Dst = group,
	// A = epoch.
	KMFTInstall
	// KMFTRebuild: a newer-epoch registration replaced an MFT wholesale.
	// Dst = group, A = new epoch.
	KMFTRebuild
	// KMFTWipe: a switch crash wiped an MFT (one event per group).
	// Dst = group.
	KMFTWipe
	// KMFTStale: an older-epoch MRP replay was discarded. Dst = group,
	// A = stale epoch.
	KMFTStale
	// KMFTNack: a switch rejected unknown-group data toward its source.
	// Dst = group.
	KMFTNack
	// KPSNSync: recovery overwrote a QP's PSN state out of band (group-wide
	// resynchronization, §III-E, or a source switch). SrcQP = the QP,
	// PSN = the new value, A = 0 for the send side (SQ), 1 for the receive
	// side (RQ). The auditor resets its per-flow expectations on this event:
	// PSN jumps across recovery are sanctioned, silent ones are not.
	KPSNSync

	numKinds
)

var kindNames = [...]string{
	"ENQ", "DEQ", "ECN", "DROP", "PAUSE", "RESUME",
	"ACK-TX", "ACK-RX", "NACK-TX", "NACK-RX", "CNP-TX", "CNP-RX",
	"RETX", "DELIVER",
	"MFT-INSTALL", "MFT-REBUILD", "MFT-WIPE", "MFT-STALE", "MFT-NACK",
	"PSN-SYNC",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a kind name (as printed by String, case-sensitive).
func KindByName(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// KindNames lists every kind name, for CLI help text.
func KindNames() []string { return append([]string(nil), kindNames[:]...) }

// Reason qualifies a KDrop event.
type Reason uint8

const (
	RNone Reason = iota
	// RQueueLimit: drop-tail at a bounded egress queue.
	RQueueLimit
	// RLoss: injected random data loss (Fig 13 experiments).
	RLoss
	// RCtrlLoss: injected random control loss.
	RCtrlLoss
	// RCrash: the frame arrived at or was emitted by a crashed switch.
	RCrash
	// RNoRoute: no FIB entry for the destination.
	RNoRoute
	// RFault: a dead link killed the frame (queued, enqueued-while-down, or
	// in flight when the link failed).
	RFault
	// RUnknownGroup: multicast data for a group the switch has no MFT for.
	RUnknownGroup
	// RImpairLoss: a gray-failure impairment lost the frame on the wire
	// (independent or Gilbert-Elliott burst loss at an impaired port).
	RImpairLoss
	// RCorrupt: a gray-failure impairment corrupted the frame; the receiver's
	// CRC check would discard it, modeled as a wire loss at the sender port.
	RCorrupt
	// RStormLoss: a control-plane-targeted loss storm dropped a control frame
	// (MRP/ACK/NACK/CNP) at an impaired port.
	RStormLoss

	numReasons
)

var reasonNames = [...]string{
	"", "qlimit", "loss", "ctrl-loss", "crash", "no-route", "fault", "unknown-group",
	"impair-loss", "corrupt", "ctrl-storm",
}

// InjectedLoss reports whether r marks a deliberately injected discard (loss
// models, gray impairments, fail-stop faults) as opposed to a drop the
// protocol machinery itself decided on (tail drop, missing route, unknown
// group). The auditor uses the distinction to keep injected loss from ever
// reading as a protocol violation.
func (r Reason) InjectedLoss() bool {
	switch r {
	case RLoss, RCtrlLoss, RCrash, RFault, RImpairLoss, RCorrupt, RStormLoss:
		return true
	}
	return false
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// ReasonByName resolves a reason name (as printed by String).
func ReasonByName(s string) (Reason, bool) {
	for i, n := range reasonNames {
		if n == s && i > 0 {
			return Reason(i), true
		}
	}
	return 0, false
}

// pktTypeNames mirrors simnet.PacketType's String values (obs cannot import
// simnet; the wire enum is stable and checked by TestPacketTypeNamesInSync).
var pktTypeNames = [...]string{
	"DATA", "ACK", "NACK", "CNP", "MRP", "MRP-CONFIRM", "MRP-REJECT",
	"PAUSE", "RESUME", "RAW",
}

// PktTypeName renders a simnet.PacketType value for export.
func PktTypeName(pt uint8) string {
	if int(pt) < len(pktTypeNames) {
		return pktTypeNames[pt]
	}
	return fmt.Sprintf("PT(%d)", pt)
}

// PktTypeByName resolves a packet-type name (as printed by PktTypeName).
func PktTypeByName(s string) (uint8, bool) {
	for i, n := range pktTypeNames {
		if n == s {
			return uint8(i), true
		}
	}
	return 0, false
}

// AddrString renders a 32-bit address in dotted-quad form, identically to
// simnet.Addr.String.
func AddrString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseAddr inverts AddrString. It accepts exactly the dotted-quad form the
// exports emit; anything else returns false.
func ParseAddr(s string) (uint32, bool) {
	var q [4]int
	start, qi := 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if qi == 4 || i == start {
				return 0, false
			}
			v := 0
			for _, c := range s[start:i] {
				if c < '0' || c > '9' {
					return 0, false
				}
				v = v*10 + int(c-'0')
				if v > 255 {
					return 0, false
				}
			}
			q[qi] = v
			qi++
			start = i + 1
		}
	}
	if qi != 4 {
		return 0, false
	}
	return uint32(q[0])<<24 | uint32(q[1])<<16 | uint32(q[2])<<8 | uint32(q[3]), true
}

// Event is one flight-recorder record. It is a fixed-size, pointer-free
// value: rings of events move nothing the GC cares about, and recording one
// is a field-wise store.
//
// A and B carry kind-specific values (documented per Kind above). Seq is a
// per-device sequence number: together with Dev it identifies an event
// uniquely, and the canonical (At, Dev, Seq) order it induces is a pure
// function of the simulated history — independent of worker count and of
// sequential-vs-partitioned execution. LP records which logical process
// captured the event; it is an execution artifact and is deliberately
// excluded from exports.
// Msg identifies the message a data frame belongs to. Message ids are
// globally unique — the originating host's address in the high 32 bits, a
// per-host counter in the low 32 — so a span reconstructor can follow one
// message across devices without guessing, and MsgOrigin recovers the
// sender. SrcQP/DstQP carry the frame's queue-pair addressing; control
// frames built fresh (ACK/NACK/CNP) carry Msg = 0.
type Event struct {
	At  sim.Time
	PSN uint64
	Msg uint64
	A   int64
	B   int64
	// Seq is uint32 deliberately: it keeps the struct at 72 bytes (one
	// cache line per record most of the time instead of always two), and a
	// single device never records 4G+ events in a run that fits in memory.
	// It is internal ordering state, omitted from exports.
	Seq    uint32
	Dev    uint32
	Src    uint32
	Dst    uint32
	SrcQP  uint32
	DstQP  uint32
	Port   int16
	LP     int16
	Kind   Kind
	Reason Reason
	PT     uint8 // simnet.PacketType of the frame involved, if any
}

// MsgOrigin extracts the originating host address from a message id.
func MsgOrigin(msg uint64) uint32 { return uint32(msg >> 32) }
