package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Probe reads one telemetry value at sample time (a queue depth, a DCQCN
// rate, a counter). Probes run inside the simulation — at deterministic
// simulated instants — so sampled series are reproducible across runs.
type Probe func() float64

// SeriesSet is a periodic telemetry sampler riding one re-armable
// sim.Timer: every interval it reads every tracked probe into fixed-capacity
// columns sharing a single time axis. When the capacity fills, the set
// decimates in place — every other sample is dropped and the interval
// doubles — so a run of any length fits in constant memory while keeping a
// uniform grid (the adaptive scheme flight recorders use).
//
// The sampler is for sequential execution: its timer lives on the root
// engine, and probes read device state directly. (Under PDES that would race
// with worker goroutines; partitioned runs should sample offline from the
// trace instead.)
type SeriesSet struct {
	eng      *sim.Engine
	timer    *sim.Timer
	interval sim.Time
	capacity int
	started  bool
	stopped  bool

	t    []sim.Time
	cols []seriesCol
}

type seriesCol struct {
	name  string
	probe Probe
	delta bool
	prev  float64
	v     []float64
}

// NewSeriesSet creates a sampler on eng with the given sampling interval and
// per-series capacity (minimum 16; the default of 4096 applies when
// capacity <= 0). Call Track/TrackDelta, then Start.
func NewSeriesSet(eng *sim.Engine, interval sim.Time, capacity int) *SeriesSet {
	if interval <= 0 {
		interval = 1e6 // 1 ms
	}
	if capacity <= 0 {
		capacity = 4096
	}
	if capacity < 16 {
		capacity = 16
	}
	s := &SeriesSet{eng: eng, interval: interval, capacity: capacity}
	s.timer = eng.NewTimer(s.tick)
	return s
}

// Track adds a gauge series sampled as probe().
func (s *SeriesSet) Track(name string, probe Probe) {
	if len(s.t) > 0 {
		panic("obs: Track after sampling started")
	}
	s.cols = append(s.cols, seriesCol{name: name, probe: probe})
}

// TrackDelta adds a rate-style series: each sample records the increase of
// probe() since the previous sample (counters become per-interval deltas).
func (s *SeriesSet) TrackDelta(name string, probe Probe) {
	if len(s.t) > 0 {
		panic("obs: TrackDelta after sampling started")
	}
	s.cols = append(s.cols, seriesCol{name: name, probe: probe, delta: true})
}

// Start arms the sampler; the first sample lands one interval from now.
func (s *SeriesSet) Start() {
	if s.started {
		return
	}
	s.started = true
	for i := range s.cols {
		if s.cols[i].delta {
			s.cols[i].prev = s.cols[i].probe()
		}
	}
	s.timer.Reset(s.interval)
}

// Stop disarms the sampler; recorded samples remain readable.
func (s *SeriesSet) Stop() {
	s.stopped = true
	s.timer.Stop()
}

func (s *SeriesSet) tick() {
	if s.stopped {
		return
	}
	s.t = append(s.t, s.eng.Now())
	for i := range s.cols {
		c := &s.cols[i]
		v := c.probe()
		if c.delta {
			v, c.prev = v-c.prev, v
		}
		c.v = append(c.v, v)
	}
	if len(s.t) >= s.capacity {
		s.decimate()
	}
	s.timer.Reset(s.interval)
}

// decimate halves the sample count in place and doubles the interval.
func (s *SeriesSet) decimate() {
	n := len(s.t) / 2
	for i := 0; i < n; i++ {
		s.t[i] = s.t[2*i]
	}
	s.t = s.t[:n]
	for ci := range s.cols {
		c := &s.cols[ci]
		for i := 0; i < n; i++ {
			c.v[i] = c.v[2*i]
		}
		c.v = c.v[:n]
	}
	s.interval *= 2
}

// Samples returns how many samples each series currently holds.
func (s *SeriesSet) Samples() int { return len(s.t) }

// Interval returns the current sampling interval (doubles on decimation).
func (s *SeriesSet) Interval() sim.Time { return s.interval }

// Names lists the tracked series, in Track order.
func (s *SeriesSet) Names() []string {
	out := make([]string, len(s.cols))
	for i := range s.cols {
		out[i] = s.cols[i].name
	}
	return out
}

// Values returns the sample column for a series name, or nil.
func (s *SeriesSet) Values(name string) []float64 {
	for i := range s.cols {
		if s.cols[i].name == name {
			return s.cols[i].v
		}
	}
	return nil
}

// Times returns the shared time axis.
func (s *SeriesSet) Times() []sim.Time { return s.t }

// fmtF renders a float deterministically (shortest round-trip form).
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes the set in wide form: a t_ns column then one column per
// series, one row per sample.
func (s *SeriesSet) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "t_ns")
	for i := range s.cols {
		fmt.Fprintf(bw, ",%s", s.cols[i].name)
	}
	fmt.Fprintln(bw)
	for r := range s.t {
		fmt.Fprintf(bw, "%d", int64(s.t[r]))
		for i := range s.cols {
			fmt.Fprintf(bw, ",%s", fmtF(s.cols[i].v[r]))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteJSON writes {"interval_ns":…,"t":[…],"series":{name:[…],…}} with
// deterministic float formatting and series in Track order.
func (s *SeriesSet) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"interval_ns\":%d,\"t\":[", int64(s.interval))
	for i, t := range s.t {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%d", int64(t))
	}
	fmt.Fprint(bw, "],\"series\":{")
	for ci := range s.cols {
		if ci > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%q:[", s.cols[ci].name)
		for i, v := range s.cols[ci].v {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(fmtF(v))
		}
		bw.WriteByte(']')
	}
	fmt.Fprintln(bw, "}}")
	return bw.Flush()
}
