package obs

// FCounter names one cluster-wide fabric counter. The set mirrors the
// fields of the root package's Metrics struct; Metrics() is assembled from
// Fabric totals instead of walking every device.
type FCounter uint8

const (
	// FDataDrops: injected random data-packet loss at switches.
	FDataDrops FCounter = iota
	// FCtrlDrops: injected random control-packet loss at switches.
	FCtrlDrops
	// FCrashDrops: frames that reached or left a crashed switch.
	FCrashDrops
	// FNoRouteDrops: frames with no FIB entry.
	FNoRouteDrops
	// FFaultDrops: frames killed by a dead link.
	FFaultDrops
	// FMFTWipes: MFT entries wiped by switch crashes.
	FMFTWipes
	// FEpochRebuilds: MFTs replaced wholesale by a newer-epoch registration.
	FEpochRebuilds
	// FStaleMRPDropped: older-epoch MRP replays discarded.
	FStaleMRPDropped
	// FUnknownGroupDrops: multicast data dropped for lack of an MFT.
	FUnknownGroupDrops
	// FUnknownGroupNacks: unknown-group NACKs emitted toward sources.
	FUnknownGroupNacks
	// FImpairDrops: frames lost to gray-failure wire impairments (independent
	// and burst loss) at ports.
	FImpairDrops
	// FCorruptDrops: frames lost to injected CRC corruption at ports.
	FCorruptDrops
	// FStormDrops: control frames lost to control-plane loss storms at ports.
	FStormDrops

	NumFCounters
)

var fcounterNames = [...]string{
	"data-drops", "ctrl-drops", "crash-drops", "no-route-drops", "fault-drops",
	"mft-wipes", "epoch-rebuilds", "stale-mrp", "unknown-group-drops",
	"unknown-group-nacks", "impair-drops", "corrupt-drops", "ctrl-storm-drops",
}

// String names the counter (stable identifiers for exports and series).
func (c FCounter) String() string {
	if int(c) < len(fcounterNames) {
		return fcounterNames[c]
	}
	return "?"
}

// FabricLP is one logical process's shard of the fabric counters. Every
// device owned by an LP increments the same shard, so the hot path is a
// plain (non-atomic) add with no cross-LP cache contention; totals are read
// only when the simulation is quiescent. The struct is padded to two cache
// lines so adjacent shards never false-share.
//
// A nil *FabricLP is a valid no-op target: devices built outside a Cluster
// (unit tests, sub-simulations) skip fabric accounting without a branch at
// every call site.
type FabricLP struct {
	c [NumFCounters]uint64
	_ [48]byte
}

// Inc adds 1 to counter id. Safe on a nil receiver.
func (l *FabricLP) Inc(id FCounter) {
	if l != nil {
		l.c[id]++
	}
}

// Add adds n to counter id. Safe on a nil receiver.
func (l *FabricLP) Add(id FCounter, n uint64) {
	if l != nil {
		l.c[id] += n
	}
}

// Fabric holds one FabricLP shard per logical process.
type Fabric struct {
	lps []FabricLP
}

// NewFabric creates a fabric with n shards (n = number of LPs; 1 for
// sequential execution).
func NewFabric(n int) *Fabric {
	if n < 1 {
		n = 1
	}
	return &Fabric{lps: make([]FabricLP, n)}
}

// LP returns the shard for logical process i.
func (f *Fabric) LP(i int) *FabricLP {
	if f == nil {
		return nil
	}
	return &f.lps[i]
}

// Total sums counter id across all shards. Only meaningful while the
// simulation is quiescent (between Run calls).
func (f *Fabric) Total(id FCounter) uint64 {
	if f == nil {
		return 0
	}
	var t uint64
	for i := range f.lps {
		t += f.lps[i].c[id]
	}
	return t
}
