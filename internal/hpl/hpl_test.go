package hpl

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func run(t *testing.T, p, q int, pb, rs Alg) Result {
	t.Helper()
	core.ResetMcstIDs()
	eng := sim.New(1)
	c := NewTestbedCluster(eng, DefaultTestbedConfig(p, q), pb, rs)
	return c.Run()
}

func TestHPLRunsBaseline1x4(t *testing.T) {
	r := run(t, 1, 4, AlgRing, AlgLong)
	if r.Iterations != 32 {
		t.Fatalf("iterations=%d", r.Iterations)
	}
	if r.PB <= 0 || r.RS != 0 {
		t.Fatalf("1x4 grid must have PB>0 and RS==0, got PB=%v RS=%v", r.PB, r.RS)
	}
	if r.JCT != r.PF+r.PB+r.RS+r.Update {
		t.Fatalf("JCT %v does not decompose: %v", r.JCT, r.PF+r.PB+r.RS+r.Update)
	}
}

func TestHPLRunsBaseline4x1(t *testing.T) {
	r := run(t, 4, 1, AlgRing, AlgLong)
	if r.RS <= 0 || r.PB != 0 {
		t.Fatalf("4x1 grid must have RS>0 and PB==0, got PB=%v RS=%v", r.PB, r.RS)
	}
}

func TestFig11PBAcceleration(t *testing.T) {
	base := run(t, 1, 4, AlgRing, AlgLong)
	accel := run(t, 1, 4, AlgCepheus, AlgLong)
	commRed := 1 - float64(accel.PB)/float64(base.PB)
	jctRed := 1 - float64(accel.JCT)/float64(base.JCT)
	t.Logf("PB: comm -%.0f%% (paper 67%%), JCT -%.1f%% (paper 12%%); baseline comm share %.0f%%",
		commRed*100, jctRed*100, 100*float64(base.Comm())/float64(base.JCT))
	if commRed < 0.5 || commRed > 0.85 {
		t.Fatalf("PB comm reduction %.0f%%, paper reports 67%%", commRed*100)
	}
	if jctRed < 0.06 || jctRed > 0.20 {
		t.Fatalf("JCT reduction %.1f%%, paper reports 12%%", jctRed*100)
	}
	// Compute must be untouched by the communication change.
	if accel.Others() != base.Others() {
		t.Fatalf("compute time changed: %v vs %v", accel.Others(), base.Others())
	}
}

func TestFig11RSAcceleration(t *testing.T) {
	base := run(t, 4, 1, AlgRing, AlgLong)
	accel := run(t, 4, 1, AlgRing, AlgCepheus)
	commRed := 1 - float64(accel.RS)/float64(base.RS)
	jctRed := 1 - float64(accel.JCT)/float64(base.JCT)
	t.Logf("RS: comm -%.0f%% (paper 18%%), JCT -%.1f%% (paper 4%%)", commRed*100, jctRed*100)
	// Our scatter+allgather "long" baseline pays per-chunk relay stack
	// costs that HPL's tuned implementation amortizes better, so the comm
	// reduction overshoots the paper's 18%; the end-to-end effect (the
	// claim that matters) stays at the paper's ~4%.
	if commRed < 0.08 || commRed > 0.60 {
		t.Fatalf("RS comm reduction %.0f%%, paper reports 18%%", commRed*100)
	}
	if jctRed < 0.005 || jctRed > 0.10 {
		t.Fatalf("JCT reduction %.1f%%, paper reports 4%%", jctRed*100)
	}
	if jctRed >= 1-float64(run(t, 1, 4, AlgCepheus, AlgLong).JCT)/float64(run(t, 1, 4, AlgRing, AlgLong).JCT) {
		t.Fatal("RS acceleration should gain less than PB acceleration (paper: 4% vs 12%)")
	}
}

func TestAnalyticModelOrdering(t *testing.T) {
	// For any n and message size, cepheus <= binomial and cepheus <= ring.
	for _, n := range []int{2, 4, 16, 128} {
		for _, b := range []float64{64, 1 << 20, 64 << 20} {
			ceph := CepheusModel(n, b)
			if ring := RingModel(n, b); ceph > ring {
				t.Fatalf("cepheus %f > ring %f at n=%d b=%.0f", ceph, ring, n, b)
			}
			if bt := BinomialModel(n, b); ceph > bt {
				t.Fatalf("cepheus %f > bt %f at n=%d b=%.0f", ceph, bt, n, b)
			}
		}
	}
	// Ring latency grows linearly; long approaches 2x the wire optimum for
	// large messages.
	if RingModel(128, 64) < 100*RingModel(2, 64)/2 {
		t.Fatal("ring latency not linear in n")
	}
}

func TestAnalyticLargeScaleHPL(t *testing.T) {
	// The paper's supplementary claim: Cepheus maintains consistent gains
	// up to a 128x128 grid.
	for _, grid := range []int{8, 32, 128} {
		cfg := Config{N: 65536, NB: 256, P: grid, Q: grid, GFlops: 800}
		base := Analytic(cfg, RingModel, LongModel)
		accel := Analytic(cfg, CepheusModel, CepheusModel)
		if accel.JCTSeconds >= base.JCTSeconds {
			t.Fatalf("grid %dx%d: no gain (%.3fs vs %.3fs)", grid, grid, accel.JCTSeconds, base.JCTSeconds)
		}
		gain := 1 - accel.JCTSeconds/base.JCTSeconds
		t.Logf("grid %dx%d: JCT %.2fs -> %.2fs (-%.1f%%)", grid, grid, base.JCTSeconds, accel.JCTSeconds, gain*100)
		if gain < 0.01 {
			t.Fatalf("grid %dx%d: gain %.2f%% vanishing at scale", grid, grid, gain*100)
		}
	}
}

func TestAnalyticMatchesSimulatedShape(t *testing.T) {
	// The closed form and the packet-level run should agree on the sign
	// and rough magnitude of the PB gain for the testbed grid.
	cfg := DefaultTestbedConfig(1, 4)
	aBase := Analytic(cfg, RingModel, LongModel)
	aAccel := Analytic(cfg, CepheusModel, LongModel)
	aGain := 1 - aAccel.JCTSeconds/aBase.JCTSeconds
	sBase := run(t, 1, 4, AlgRing, AlgLong)
	sAccel := run(t, 1, 4, AlgCepheus, AlgLong)
	sGain := 1 - float64(sAccel.JCT)/float64(sBase.JCT)
	if aGain < sGain/3 || aGain > sGain*3 {
		t.Fatalf("analytic gain %.1f%% vs simulated %.1f%%: models diverged", aGain*100, sGain*100)
	}
}
