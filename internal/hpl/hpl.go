// Package hpl models the High-Performance Linpack application the paper
// accelerates (§V-B2). The simulated schedule follows HPL's three phases
// per iteration — Panel Factorization (PF), Panel Broadcast (PB) along each
// process row, and Update whose Row Swap (RS) step broadcasts along each
// process column — with compute as calibrated delays and communication run
// through the network simulator using pluggable broadcast algorithms
// (increasing-ring and "long" for the baseline, Cepheus for the accelerated
// runs). A closed-form analytic model covers the paper's supplementary
// 128x128-grid simulation.
package hpl

import (
	"repro/internal/amcast"
	"repro/internal/sim"
)

// Config describes the HPL run.
type Config struct {
	// N is the global matrix order; NB the blocking factor.
	N, NB int
	// P, Q shape the process grid; the testbed uses 1x4 (PB-only) and 4x1
	// (RS-only).
	P, Q int
	// GFlops is the per-node DGEMM rate used for the compute model.
	GFlops float64
}

// Result decomposes the job completion time.
type Result struct {
	JCT        sim.Time
	PF         sim.Time // panel factorization (compute)
	PB         sim.Time // panel broadcast (communication)
	RS         sim.Time // row swap (communication)
	Update     sim.Time // trailing update (compute)
	Iterations int
}

// Comm returns the total communication time.
func (r Result) Comm() sim.Time { return r.PB + r.RS }

// Others returns PF plus Update — the paper's "Others" bar in Fig 11a.
func (r Result) Others() sim.Time { return r.PF + r.Update }

// Cluster runs HPL over a grid of nodes with pluggable row/column
// broadcasters. rowBcasts[p] broadcasts within process row p (Q nodes);
// colBcasts[q] within column q (P nodes). Either may be nil when that grid
// dimension is 1.
type Cluster struct {
	Eng       *sim.Engine
	Cfg       Config
	RowBcasts []amcast.Broadcaster
	ColBcasts []amcast.Broadcaster
}

// Run executes the factorization schedule and returns the decomposed JCT.
// Phases run sequentially within an iteration, as in HPL without lookahead.
func (c *Cluster) Run() Result {
	eng := c.Eng
	cfg := c.Cfg
	steps := cfg.N / cfg.NB
	res := Result{Iterations: steps}
	start := eng.Now()

	flopsTime := func(flops float64) sim.Time {
		return sim.Time(flops / (cfg.GFlops * 1e9) * 1e9)
	}

	// wait drives the engine until the continuation fires.
	wait := func(f func(done func())) sim.Time {
		t0 := eng.Now()
		finished := false
		f(func() { finished = true })
		for !finished {
			if !eng.Step() {
				panic("hpl: phase stalled with no pending events")
			}
		}
		return eng.Now() - t0
	}

	// bcastAll runs one broadcast in every communicator of a dimension
	// concurrently and waits for all (rows do their PBs in parallel).
	bcastAll := func(bs []amcast.Broadcaster, root, bytes int) sim.Time {
		if len(bs) == 0 || bytes <= 0 {
			return 0
		}
		return wait(func(done func()) {
			remaining := len(bs)
			for _, b := range bs {
				b.Bcast(root, bytes, func() {
					remaining--
					if remaining == 0 {
						done()
					}
				})
			}
		})
	}

	for k := 0; k < steps; k++ {
		mk := cfg.N - k*cfg.NB     // trailing matrix rows
		nk := cfg.N - (k+1)*cfg.NB // trailing matrix cols after this panel
		localM := (mk + cfg.P - 1) / cfg.P
		localN := (nk + cfg.Q - 1) / cfg.Q

		// PF: factorize the NB-wide panel (column of P processes works on
		// its localM x NB slab).
		pf := flopsTime(2 * float64(cfg.NB) * float64(cfg.NB) * float64(localM))
		eng.RunFor(pf)
		res.PF += pf

		// PB: broadcast the factored panel along each process row. Root is
		// the column owning panel k.
		if cfg.Q > 1 {
			panelBytes := localM * cfg.NB * 8
			res.PB += bcastAll(c.RowBcasts, k%cfg.Q, panelBytes)
		}

		// RS: swap/broadcast the pivot rows along each process column.
		if cfg.P > 1 {
			rowBytes := cfg.NB * localN * 8
			res.RS += bcastAll(c.ColBcasts, k%cfg.P, rowBytes)
		}

		// Update: trailing DGEMM on each node's local block.
		up := flopsTime(2 * float64(cfg.NB) * float64(localM) * float64(localN))
		eng.RunFor(up)
		res.Update += up
	}
	res.JCT = eng.Now() - start
	return res
}
