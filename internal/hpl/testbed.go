package hpl

import (
	"fmt"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Alg names a broadcast algorithm for an HPL phase.
type Alg string

const (
	// AlgRing is HPL's recommended increasing-ring for PB.
	AlgRing Alg = "increasing-ring"
	// AlgLong is HPL's recommended "long" (scatter+allgather) for RS.
	AlgLong Alg = "long"
	// AlgCepheus replaces the phase's AMcast with Cepheus multicast.
	AlgCepheus Alg = "cepheus"
)

// NewTestbedCluster wires a P*Q grid on a single-ToR testbed (the paper's
// four servers) with pbAlg driving row broadcasts and rsAlg driving column
// broadcasts. Cepheus phases register one multicast group per communicator
// before returning.
func NewTestbedCluster(eng *sim.Engine, cfg Config, pbAlg, rsAlg Alg) *Cluster {
	n := cfg.P * cfg.Q
	net := topo.Testbed(eng, n)
	tr := roce.DefaultConfig()
	rnics := make([]*roce.RNIC, n)
	agents := make([]*core.Agent, n)
	for i, h := range net.Hosts {
		rnics[i] = roce.NewRNIC(h, tr)
		agents[i] = core.NewAgent(rnics[i])
	}
	needCepheus := pbAlg == AlgCepheus || rsAlg == AlgCepheus
	if needCepheus {
		core.Attach(net.Switches[0], core.DefaultAccelConfig())
	}
	nodeAt := func(p, q int) int { return p*cfg.Q + q }

	build := func(idx []int, alg Alg) amcast.Broadcaster {
		if len(idx) <= 1 {
			return nil
		}
		switch alg {
		case AlgCepheus:
			var members []*core.Member
			var ags []*core.Agent
			for _, i := range idx {
				members = append(members, &core.Member{Host: net.Hosts[i], RNIC: rnics[i], QP: rnics[i].CreateQP()})
				ags = append(ags, agents[i])
			}
			g := core.NewGroup(eng, core.AllocMcstID(), members, 0, ags)
			ok := false
			g.Register(10*sim.Millisecond, func(err error) {
				if err != nil {
					panic("hpl: cepheus registration failed: " + err.Error())
				}
				ok = true
			})
			eng.RunUntil(eng.Now() + 10*sim.Millisecond)
			if !ok {
				panic("hpl: cepheus registration did not finish")
			}
			return &amcast.Cepheus{Group: g}
		case AlgRing:
			nodes := commNodes(net, rnics, idx)
			return amcast.Chain{C: amcast.NewComm(eng, nodes), Slices: 1}
		case AlgLong:
			nodes := commNodes(net, rnics, idx)
			return amcast.Long{C: amcast.NewComm(eng, nodes)}
		default:
			panic(fmt.Sprintf("hpl: unknown algorithm %q", alg))
		}
	}

	c := &Cluster{Eng: eng, Cfg: cfg}
	if cfg.Q > 1 {
		for p := 0; p < cfg.P; p++ {
			idx := make([]int, cfg.Q)
			for q := range idx {
				idx[q] = nodeAt(p, q)
			}
			c.RowBcasts = append(c.RowBcasts, build(idx, pbAlg))
		}
	}
	if cfg.P > 1 {
		for q := 0; q < cfg.Q; q++ {
			idx := make([]int, cfg.P)
			for p := range idx {
				idx[p] = nodeAt(p, q)
			}
			c.ColBcasts = append(c.ColBcasts, build(idx, rsAlg))
		}
	}
	return c
}

func commNodes(net *topo.Network, rnics []*roce.RNIC, idx []int) []*amcast.Node {
	nodes := make([]*amcast.Node, len(idx))
	for i, j := range idx {
		nodes[i] = &amcast.Node{Host: net.Hosts[j], RNIC: rnics[j]}
	}
	return nodes
}

// DefaultTestbedConfig is the calibrated 4-node HPL problem: a compute rate
// that makes baseline PB communication ~18% of JCT, so the paper's 67% PB
// reduction yields the reported ~12% end-to-end gain (HPL is
// computation-intensive, §V-B2).
func DefaultTestbedConfig(p, q int) Config {
	return Config{N: 8192, NB: 256, P: p, Q: q, GFlops: 340}
}
