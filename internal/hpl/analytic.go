package hpl

import "math"

// The analytic model backs the paper's supplementary large-scale HPL
// simulation ("up to 128*128 nodes"), where packet-level simulation of
// every broadcast is unnecessary: per-iteration broadcast times follow
// alpha-beta cost models and the compute term is deterministic.

// BcastModel is an alpha-beta cost model for a 1-to-n broadcast of b bytes:
// the predicted completion time in nanoseconds.
type BcastModel func(n int, bytes float64) float64

// Alpha-beta constants: alpha is per-hop software+link latency (ns), beta
// the per-byte wire time at 100Gbps (ns/B).
const (
	alphaNs = 3000.0
	betaNs  = 8.0 / 100.0 // 100Gbps -> 0.08 ns per byte
)

// RingModel is the increasing-ring (store-and-forward chain) used by HPL's
// default PB: latency linear in n, full message relayed n-1 times.
func RingModel(n int, bytes float64) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * (alphaNs + bytes*betaNs)
}

// LongModel is scatter + ring allgather: 2(n-1) steps moving bytes/n each.
func LongModel(n int, bytes float64) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	return steps * (alphaNs + bytes/float64(n)*betaNs)
}

// BinomialModel is the binomial tree: log2(n) full-message rounds.
func BinomialModel(n int, bytes float64) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds * (alphaNs + bytes*betaNs)
}

// CepheusModel is native-multicast-shaped: one stack traversal and one wire
// serialization regardless of n (plus a small per-hop fabric latency).
func CepheusModel(n int, bytes float64) float64 {
	if n <= 1 {
		return 0
	}
	return alphaNs + bytes*betaNs
}

// AnalyticResult summarizes a modeled HPL run.
type AnalyticResult struct {
	JCTSeconds  float64
	CommSeconds float64
}

// Analytic evaluates the HPL schedule of Config with the given PB and RS
// broadcast models, returning total and communication time. It mirrors
// Cluster.Run's per-iteration accounting in closed form.
func Analytic(cfg Config, pb, rs BcastModel) AnalyticResult {
	var comm, comp float64 // ns
	steps := cfg.N / cfg.NB
	for k := 0; k < steps; k++ {
		mk := cfg.N - k*cfg.NB
		nk := cfg.N - (k+1)*cfg.NB
		localM := (mk + cfg.P - 1) / cfg.P
		localN := (nk + cfg.Q - 1) / cfg.Q
		comp += 2 * float64(cfg.NB) * float64(cfg.NB) * float64(localM) / cfg.GFlops
		comp += 2 * float64(cfg.NB) * float64(localM) * float64(localN) / cfg.GFlops
		if cfg.Q > 1 {
			comm += pb(cfg.Q, float64(localM*cfg.NB*8))
		}
		if cfg.P > 1 {
			comm += rs(cfg.P, float64(cfg.NB*localN*8))
		}
	}
	return AnalyticResult{
		JCTSeconds:  (comm + comp) / 1e9,
		CommSeconds: comm / 1e9,
	}
}
