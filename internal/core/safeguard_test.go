package core

import (
	"testing"

	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestSafeguardNoFalseTripOnBurstyTraffic: healthy-but-bursty senders (idle
// gaps between posts) must not trip the safeguard. A burst that begins just
// before a sampling edge yields a busy-but-low-progress window — a
// measurement artifact the judged-window rule (busy across the *whole*
// window) and the consecutive-bad-window requirement both absorb.
func TestSafeguardNoFalseTripOnBurstyTraffic(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	src := e.group.Members[0].QP
	reason := ""
	NewSafeguard(e.eng, src, 0.5, sim.Millisecond, func(r string) { reason = r })
	// Bursty app: 4MB burst, then an idle gap, repeated. The burst length
	// (~350us at 100Gbps) never spans a full sampling window, and the gap
	// varies so bursts drift across sampling edges.
	gap := sim.Time(700 * sim.Microsecond)
	stop := false
	var post func()
	post = func() {
		if stop {
			return
		}
		src.PostSend(4<<20, func() {
			gap += 130 * sim.Microsecond
			if gap > 2*sim.Millisecond {
				gap = 700 * sim.Microsecond
			}
			e.eng.After(gap, post)
		})
	}
	post()
	e.eng.RunFor(200 * sim.Millisecond)
	stop = true
	if reason != "" {
		t.Fatalf("safeguard false-tripped on healthy bursty traffic: %s", reason)
	}
}

// TestSafeguardRecoverHook: after tripping, the safeguard keeps sampling
// and fires OnRecover once throughput holds above threshold for
// RecoverWindows consecutive windows — the re-probe signal the recovery
// pipeline builds on.
func TestSafeguardRecoverHook(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	src := e.group.Members[0].QP
	tripped, recovered := false, false
	s := NewSafeguard(e.eng, src, 0.5, sim.Millisecond, func(string) { tripped = true })
	s.OnRecover = func() { recovered = true }
	stop := false
	var repost func()
	repost = func() {
		if !stop {
			src.PostSend(1<<20, repost)
		}
	}
	repost()
	e.eng.RunFor(10 * sim.Millisecond)
	if tripped {
		t.Fatal("tripped on healthy traffic")
	}
	e.net.Switches[0].LossRate = 0.9
	e.eng.RunFor(90 * sim.Millisecond)
	if !tripped {
		t.Fatal("never tripped under 90% loss")
	}
	if recovered {
		t.Fatal("recovered while loss still pathological")
	}
	// The pathology clears; throughput returns, and the safeguard must
	// notice without being re-created.
	e.net.Switches[0].LossRate = 0
	e.eng.RunFor(100 * sim.Millisecond)
	stop = true
	if !recovered {
		t.Fatal("OnRecover never fired after throughput returned")
	}
	if s.Tripped() {
		t.Fatal("safeguard still reports tripped after recovery")
	}
}

// TestSafeguardPrimeKeepsPreFaultNorm demonstrates the gray-failure blind
// spot Prime closes: a safeguard created *after* a link has already degraded
// learns the degraded rate as its norm and never trips, while one primed
// with the pre-fault best detects the collapse. This is exactly the
// restore-onto-still-lossy-link situation the recovery pipeline hits when it
// re-creates the safeguard after restoring native service.
func TestSafeguardPrimeKeepsPreFaultNorm(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	src := e.group.Members[0].QP
	stop := false
	var repost func()
	repost = func() {
		if !stop {
			src.PostSend(1<<20, repost)
		}
	}

	// Learn the healthy norm.
	probe := NewSafeguard(e.eng, src, 0.5, sim.Millisecond, nil)
	repost()
	e.eng.RunFor(10 * sim.Millisecond)
	best := probe.Best()
	probe.Stop()
	if best == 0 {
		t.Fatal("healthy run established no baseline")
	}

	// The wire degrades to 30% of line rate — a steady gray degradation, the
	// kind that produces a consistent-but-collapsed rate — and only then are
	// fresh safeguards created: the shape of a restore onto a still-degraded
	// link.
	e.net.Hosts[0].NIC.SetImpairment(simnet.Impairment{BandwidthFraction: 0.3}, 1)
	unprimedTrip, primedTrip := false, false
	unprimed := NewSafeguard(e.eng, src, 0.5, sim.Millisecond, func(string) { unprimedTrip = true })
	primed := NewSafeguard(e.eng, src, 0.5, sim.Millisecond, func(string) { primedTrip = true })
	primed.Prime(best)
	e.eng.RunFor(100 * sim.Millisecond)
	stop = true
	_ = unprimed
	if !primedTrip {
		t.Fatal("primed safeguard never tripped on the degraded link")
	}
	if unprimedTrip {
		t.Fatal("unprimed safeguard tripped; the blind spot this test pins no longer exists — update Prime's rationale")
	}
}
