package core

import "repro/internal/simnet"

// Many-to-one reduction — the extension the paper names as future work
// ("we plan to extend Cepheus for more collective communication
// primitives, such as many-to-one (e.g., MPI-Reduce)", §VIII).
//
// The design reuses everything the multicast path already established:
//
//   - The MDT is an unrooted tree; a reduction is oriented toward the
//     *current multicast source* (the paper's AckOutPort orientation).
//     In the parameter-server pattern this is exactly right: the PS
//     multicasts parameters (becoming the source), then workers push
//     gradients back up the same tree.
//   - Contributions are ordinary RoCE data packets on the members' one
//     group QP, marked Reduce, carrying a partial aggregate. A switch
//     combines the contributions arriving on every MDT port except
//     AckOutPort, per PSN, and emits one packet upstream — hierarchical,
//     with per-switch state bounded by the PSN window, not the group size.
//   - Feedback is the exact dual of multicast: the root's ACK/NACK arrives
//     *on* AckOutPort and is replicated down every other MDT path (with
//     connection bridging at host ports), so every contributor's commodity
//     RoCE sender sees a unicast-like feedback stream. A NACK resynchronizes
//     every contributor at the same ePSN — contributions share one PSN line,
//     like the synchronized sqPSNs that source switching maintains.
//
// Lost contributions simply stall a slot; the root's go-back-N (or IRN)
// machinery repairs them through the replicated feedback.

// rslot accumulates one PSN's contributions at a switch.
type rslot struct {
	value   float64
	payload int
	last    bool
	msgID   uint64
	got     map[int]bool // ports heard from
}

// reduceState is the per-group reduction table on one switch.
type reduceState struct {
	slots map[uint64]*rslot
}

// ReduceStats counts reduction activity.
type ReduceStats struct {
	Contributions uint64
	Combined      uint64 // packets emitted upstream
	FeedbackDown  uint64 // ACK/NACK/CNP replicated toward contributors
}

// handleReduce aggregates one contribution. in must be an MDT port other
// than AckOutPort (contributions flowing on the source-facing port would
// be the root's own, which the root adds locally).
func (a *Accel) handleReduce(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.Reduce.Contributions++
	if mft.AckOutPort < 0 {
		return // no orientation yet: the root has never transmitted
	}
	if a.reduces == nil {
		a.reduces = make(map[simnet.Addr]*reduceState)
	}
	rs := a.reduces[mft.McstID]
	if rs == nil {
		rs = &reduceState{slots: make(map[uint64]*rslot)}
		a.reduces[mft.McstID] = rs
	}
	slot := rs.slots[p.PSN]
	if slot == nil {
		slot = &rslot{got: make(map[int]bool)}
		rs.slots[p.PSN] = slot
	}
	if slot.got[in.ID] {
		return // duplicate contribution (retransmission already counted)
	}
	slot.got[in.ID] = true
	slot.value += p.Value
	slot.payload = p.Payload
	slot.last = p.Last
	slot.msgID = p.MsgID

	// All contributing paths = every MDT port except the root-facing one.
	expected := 0
	for _, e := range mft.Paths {
		if e.Port != mft.AckOutPort {
			expected++
		}
	}
	if len(slot.got) < expected {
		return
	}
	delete(rs.slots, p.PSN)
	a.Stats.Reduce.Combined++
	up := p.Clone()
	up.Value = slot.value
	up.Src = mft.McstID
	out := a.sw.Ports[mft.AckOutPort]
	if out.PeerIsHost() {
		up.Dst = mft.SrcIP
		up.DstQP = mft.SrcQP
	}
	a.sw.Output(up, mft.AckOutPort, in)
}

// replicateFeedbackDown mirrors the root's feedback to every contributor
// path, bridging connections at host ports — the dual of data replication.
func (a *Accel) replicateFeedbackDown(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.Reduce.FeedbackDown++
	for _, e := range mft.Paths {
		if e.Port == in.ID {
			continue
		}
		q := p.Clone()
		if e.NextIsHost {
			q.Dst = e.DstIP
			q.DstQP = e.DstQP
			q.Src = mft.McstID
		}
		a.sw.Output(q, e.Port, in)
	}
}
