package core

import (
	"testing"

	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// TestNackInterCoveringPrevented reproduces the §III-D scenario: R1 loses
// p1 and R2 loses p2 with p1 < p2. The sender must see a NACK for p1 before
// any NACK for p2, otherwise p1's loss would be covered and never repaired.
func TestNackInterCoveringPrevented(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	// Drop psn=10 toward member 1 and psn=20 toward member 2, once each, by
	// intercepting the bridged copies at each host's ingress — fully
	// deterministic, and the replication path stays untouched.
	var senderNacks []uint64
	origHandler1 := e.net.Hosts[1].Handler
	drop1 := true
	e.net.Hosts[1].Handler = func(p *simnet.Packet) {
		if p.Type == simnet.Data && p.PSN == 10 && drop1 {
			drop1 = false
			return
		}
		origHandler1(p)
	}
	origHandler2 := e.net.Hosts[2].Handler
	drop2 := true
	e.net.Hosts[2].Handler = func(p *simnet.Packet) {
		if p.Type == simnet.Data && p.PSN == 20 && drop2 {
			drop2 = false
			return
		}
		origHandler2(p)
	}
	origHandler0 := e.net.Hosts[0].Handler
	e.net.Hosts[0].Handler = func(p *simnet.Packet) {
		if p.Type == simnet.Nack {
			senderNacks = append(senderNacks, p.PSN)
		}
		origHandler0(p)
	}
	runMulticast(t, e, 0, 64<<10) // 64 packets at MTU 1024
	if drop1 || drop2 {
		t.Fatal("test drops never engaged")
	}
	if len(senderNacks) == 0 {
		t.Fatal("sender saw no NACKs despite two losses")
	}
	// Every NACK for ePSN=20 must come after the NACK for ePSN=10 was
	// already emitted (inter-covering prevention).
	seen10 := false
	for _, e := range senderNacks {
		if e == 10 {
			seen10 = true
		}
		if e == 20 && !seen10 {
			t.Fatalf("NACK(20) reached the sender before NACK(10): %v", senderNacks)
		}
	}
	if !seen10 {
		t.Fatalf("NACK(10) never reached the sender: %v", senderNacks)
	}
}

type hook func(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool

func (f hook) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	return f(sw, p, in)
}

// TestCNPFilterPassesMostCongested: CNPs from three ports; only the most
// congested port's CNPs reach the sender.
func TestCNPFilterPassesMostCongested(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 4096) // establish AckOutPort and source identity
	accel := e.accels[0]
	mft := accel.MFT(e.group.ID)
	sw := e.net.Switches[0]
	cnpsAtSender := 0
	orig := e.net.Hosts[0].Handler
	e.net.Hosts[0].Handler = func(p *simnet.Packet) {
		if p.Type == simnet.CNP {
			cnpsAtSender++
		}
		orig(p)
	}
	// Port of member 2 is "most congested": inject 10 CNPs from it and 2
	// from member 1's port.
	port1 := e.net.Hosts[1].NIC.Peer
	port2 := e.net.Hosts[2].NIC.Peer
	mk := func() *simnet.Packet {
		return &simnet.Packet{Type: simnet.CNP, Src: 0, Dst: e.group.ID, DstQP: mft.SrcQP}
	}
	for i := 0; i < 10; i++ {
		accel.Handle(sw, mk(), port2)
	}
	fwd := accel.Stats.CNPsForwarded
	for i := 0; i < 2; i++ {
		accel.Handle(sw, mk(), port1)
	}
	e.eng.RunUntil(e.eng.Now() + sim.Millisecond)
	if accel.Stats.CNPsForwarded != fwd {
		t.Fatalf("CNPs from the less congested port were forwarded (%d -> %d)",
			fwd, accel.Stats.CNPsForwarded)
	}
	if accel.Stats.CNPsFiltered != 2 {
		t.Fatalf("filtered %d CNPs, want 2", accel.Stats.CNPsFiltered)
	}
	if cnpsAtSender == 0 {
		t.Fatal("no CNPs reached the sender at all")
	}
}

// TestCNPFilterAging: after the aging period, a previously quiet port can
// become the most congested one.
func TestCNPFilterAging(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 4096)
	accel := e.accels[0]
	sw := e.net.Switches[0]
	port1 := e.net.Hosts[1].NIC.Peer
	port2 := e.net.Hosts[2].NIC.Peer
	mk := func() *simnet.Packet {
		return &simnet.Packet{Type: simnet.CNP, Src: 0, Dst: e.group.ID}
	}
	for i := 0; i < 10; i++ {
		accel.Handle(sw, mk(), port2)
	}
	// Let several aging periods pass: old congestion decays.
	e.eng.RunUntil(e.eng.Now() + 10*accel.Cfg.CNPAgingPeriod)
	fwd := accel.Stats.CNPsForwarded
	for i := 0; i < 3; i++ {
		accel.Handle(sw, mk(), port1)
	}
	if accel.Stats.CNPsForwarded <= fwd {
		t.Fatal("port1 could not take over as most-congested after aging")
	}
}

// TestAblationNaiveAckForwarding: without the trigger condition the sender
// receives strictly more ACKs.
func TestAblationNaiveAckForwarding(t *testing.T) {
	run := func(naive bool) uint64 {
		e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
		for _, a := range e.accels {
			a.Cfg.NaiveAckForwarding = naive
		}
		register(t, e)
		runMulticast(t, e, 0, 4<<20)
		return e.rnics[0].Stats.AcksRecv
	}
	withTrigger := run(false)
	naive := run(true)
	if naive <= withTrigger {
		t.Fatalf("trigger condition did not reduce sender ACKs: %d (trigger) vs %d (naive)",
			withTrigger, naive)
	}
}

// TestAblationRetransmitFilterOff: with the filter disabled, receivers see
// duplicate retransmissions.
func TestAblationRetransmitFilterOff(t *testing.T) {
	run := func(disable bool) (dups uint64) {
		e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
		for _, a := range e.accels {
			a.Cfg.DisableRetransFilter = disable
		}
		register(t, e)
		// Deterministic single loss toward member 1 only.
		orig := e.net.Hosts[1].Handler
		drop := true
		e.net.Hosts[1].Handler = func(p *simnet.Packet) {
			if p.Type == simnet.Data && p.PSN == 50 && drop {
				drop = false
				return
			}
			orig(p)
		}
		runMulticast(t, e, 0, 256<<10)
		for _, r := range e.rnics[1:] {
			dups += r.Stats.DupData
		}
		return dups
	}
	filtered := run(false)
	unfiltered := run(true)
	if unfiltered <= filtered {
		t.Fatalf("retransmit filter showed no benefit: %d dups (on) vs %d (off)", filtered, unfiltered)
	}
}

func TestSafeguardTripsOnThroughputCollapse(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	src := e.group.Members[0].QP
	reason := ""
	NewSafeguard(e.eng, src, 0.5, sim.Millisecond, func(r string) { reason = r })
	// Healthy phase: stream messages back-to-back.
	stop := false
	var repost func()
	repost = func() {
		if !stop {
			src.PostSend(1<<20, repost)
		}
	}
	repost()
	e.eng.RunUntil(10 * sim.Millisecond)
	if reason != "" {
		t.Fatalf("safeguard tripped during healthy traffic: %s", reason)
	}
	// Catastrophic loss: goodput collapses but the QP stays busy.
	e.net.Switches[0].LossRate = 0.9
	e.eng.RunUntil(100 * sim.Millisecond)
	stop = true
	if reason == "" {
		t.Fatal("safeguard never tripped under 90% loss")
	}
}

func TestSafeguardRegistrationTrip(t *testing.T) {
	eng := sim.New(1)
	n := topo.Testbed(eng, 2)
	r := roce.NewRNIC(n.Hosts[0], roce.DefaultConfig())
	qp := r.CreateQP()
	tripped := ""
	s := NewSafeguard(eng, qp, 0.5, sim.Millisecond, func(r string) { tripped = r })
	s.TripRegistration(&RegistrationError{Reason: "switch full"})
	if tripped == "" || !s.Tripped() {
		t.Fatal("registration failure did not trip the safeguard")
	}
	// A second trip is idempotent.
	s.TripRegistration(&RegistrationError{Reason: "again"})
}

// TestFeedbackFromOutsideMDTDropped: stray feedback on a port that is not
// part of the MDT must not corrupt aggregation state.
func TestFeedbackFromOutsideMDTDropped(t *testing.T) {
	e := newEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) },
		[]int{0, 1}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 4096)
	// Pick a switch in the MDT and a port not in it.
	var accel *Accel
	var mft *MFT
	for _, a := range e.accels {
		if m := a.MFT(e.group.ID); m != nil {
			accel, mft = a, m
			break
		}
	}
	outside := -1
	for p := 0; p < len(mft.PathIndex); p++ {
		if !mft.InMDT(p) {
			outside = p
			break
		}
	}
	if outside == -1 {
		t.Skip("no outside port on this switch")
	}
	before := mft.AggAckPSN
	accel.Handle(accel.sw, &simnet.Packet{Type: simnet.Ack, Dst: e.group.ID, PSN: 999999},
		accel.sw.Ports[outside])
	if mft.AggAckPSN != before {
		t.Fatal("stray ACK from outside the MDT changed aggregation state")
	}
}

// TestUnknownGroupDataDropped: data for an unregistered McstID is consumed
// without forwarding or panic.
func TestUnknownGroupDataDropped(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	delivered := 0
	for _, h := range e.net.Hosts[1:] {
		orig := h.Handler
		h.Handler = func(p *simnet.Packet) { delivered++; orig(p) }
	}
	e.net.Hosts[0].Send(&simnet.Packet{
		Type: simnet.Data, Src: e.net.Hosts[0].IP, Dst: simnet.MulticastBase + 999,
		SrcQP: 5, DstQP: roce.VirtualQPN, Payload: 64,
	})
	e.eng.RunUntil(e.eng.Now() + sim.Millisecond)
	if delivered != 0 {
		t.Fatalf("unregistered group data reached %d hosts", delivered)
	}
}

// TestFeedbackHeaderRewriteAtSenderLeaf: the final feedback hop must carry
// the sender's real <IP, QPN> (Fig 2c step 6), not the McstID.
func TestFeedbackHeaderRewriteAtSenderLeaf(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	// Packets are pooled and released after the handler returns: record
	// copies, not pointers.
	var acks, nacks, cnps []simnet.Packet
	orig := e.net.Hosts[0].Handler
	e.net.Hosts[0].Handler = func(p *simnet.Packet) {
		switch p.Type {
		case simnet.Ack:
			acks = append(acks, *p)
		case simnet.Nack:
			nacks = append(nacks, *p)
		case simnet.CNP:
			cnps = append(cnps, *p)
		}
		orig(p)
	}
	// One loss so a NACK flows too.
	dropped := false
	h1orig := e.net.Hosts[1].Handler
	e.net.Hosts[1].Handler = func(p *simnet.Packet) {
		if p.Type == simnet.Data && p.PSN == 20 && !dropped {
			dropped = true
			return
		}
		h1orig(p)
	}
	runMulticast(t, e, 0, 256<<10)
	senderIP := e.net.Hosts[0].IP
	senderQPN := e.group.Members[0].QP.QPN
	if len(acks) == 0 || len(nacks) == 0 {
		t.Fatalf("feedback incomplete: %d acks %d nacks", len(acks), len(nacks))
	}
	for _, p := range append(acks, nacks...) {
		if p.Dst != senderIP || p.DstQP != senderQPN {
			t.Fatalf("feedback not rewritten for the sender: %v", p)
		}
		if p.Src != e.group.ID {
			t.Fatalf("feedback srcIP %v, want McstID %v", p.Src, e.group.ID)
		}
	}
}

// TestAccelStatsAccounting: the per-switch counters stay consistent with
// the traffic that actually flowed.
func TestAccelStatsAccounting(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 1<<20)
	st := e.accels[0].Stats
	pkts := uint64((1 << 20) / roce.DefaultConfig().MTU)
	if st.DataIn != pkts {
		t.Fatalf("DataIn %d, want %d", st.DataIn, pkts)
	}
	// Each packet replicated to 3 receivers = 2 extra copies each.
	if st.DataReplicated != 2*pkts {
		t.Fatalf("DataReplicated %d, want %d", st.DataReplicated, 2*pkts)
	}
	if st.DataBridged != 3*pkts {
		t.Fatalf("DataBridged %d, want %d", st.DataBridged, 3*pkts)
	}
	if st.AcksEmitted == 0 || st.AcksEmitted > st.AcksIn {
		t.Fatalf("AcksEmitted %d vs AcksIn %d", st.AcksEmitted, st.AcksIn)
	}
}
