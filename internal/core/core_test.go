package core

import (
	"testing"

	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// env is a Cepheus-enabled cluster for tests.
type env struct {
	eng    *sim.Engine
	net    *topo.Network
	rnics  []*roce.RNIC
	agents []*Agent
	accels []*Accel
	group  *Group
}

// newEnv builds a topology with accelerators on every switch and one group
// over the given member host indices. leader is an index into memberIdx.
func newEnv(t *testing.T, build func(*sim.Engine) *topo.Network, memberIdx []int, leader int, cfg roce.Config) *env {
	t.Helper()
	ResetMcstIDs()
	eng := sim.New(1)
	n := build(eng)
	e := &env{eng: eng, net: n}
	for _, h := range n.Hosts {
		r := roce.NewRNIC(h, cfg)
		e.rnics = append(e.rnics, r)
		e.agents = append(e.agents, NewAgent(r))
	}
	for _, sw := range n.Switches {
		e.accels = append(e.accels, Attach(sw, DefaultAccelConfig()))
	}
	var members []*Member
	var agents []*Agent
	for _, i := range memberIdx {
		members = append(members, &Member{Host: n.Hosts[i], RNIC: e.rnics[i], QP: e.rnics[i].CreateQP()})
		agents = append(agents, e.agents[i])
	}
	e.group = NewGroup(eng, AllocMcstID(), members, leader, agents)
	return e
}

func testbed4(eng *sim.Engine) *topo.Network { return topo.Testbed(eng, 4) }

func register(t *testing.T, e *env) {
	t.Helper()
	var err error
	done := false
	e.group.Register(10*sim.Millisecond, func(regErr error) { err = regErr; done = true })
	e.eng.RunUntil(e.eng.Now() + 10*sim.Millisecond)
	if !done {
		t.Fatal("registration did not finish")
	}
	if err != nil {
		t.Fatalf("registration failed: %v", err)
	}
}

func TestRegistrationTestbed(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	mft := e.accels[0].MFT(e.group.ID)
	if mft == nil {
		t.Fatal("ToR has no MFT after registration")
	}
	// All four host ports are in the MDT, each as a direct host entry.
	hosts := 0
	for _, pe := range mft.Paths {
		if pe.NextIsHost {
			hosts++
		}
	}
	if hosts != 4 {
		t.Fatalf("MFT has %d host entries, want 4", hosts)
	}
}

func TestRegistrationFatTree(t *testing.T) {
	e := newEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) },
		[]int{0, 3, 7, 12}, 0, roce.DefaultConfig())
	register(t, e)
	// Member leaves must hold bridging entries for their local members.
	withMFT := 0
	for _, a := range e.accels {
		if a.MFT(e.group.ID) != nil {
			withMFT++
		}
	}
	if withMFT < 3 {
		t.Fatalf("only %d switches built an MFT; MDT did not span the tree", withMFT)
	}
}

// runMulticast sends size bytes from member src and waits for delivery on
// all other members. Returns completion time of the sender's WQE.
func runMulticast(t *testing.T, e *env, src, size int) sim.Time {
	t.Helper()
	got := make(map[int]int)
	for i, m := range e.group.Members {
		if i == src {
			continue
		}
		i := i
		m.QP.OnMessage = func(msg roce.Message) { got[i] += msg.Size }
	}
	var done sim.Time = -1
	start := e.eng.Now()
	e.group.Members[src].QP.PostSend(size, func() { done = e.eng.Now() })
	e.eng.RunUntil(start + 4*sim.Second)
	if done < 0 {
		t.Fatalf("sender completion never fired (acks outstanding=%d)", e.group.Members[src].QP.Outstanding())
	}
	for i := range e.group.Members {
		if i == src {
			continue
		}
		if got[i] != size {
			t.Fatalf("member %d received %d bytes, want %d", i, got[i], size)
		}
	}
	return done - start
}

func TestMulticastDeliversToAll(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 100)
}

func TestMulticastLargeMessage(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	jct := runMulticast(t, e, 0, 8<<20)
	// The sender transmits once; JCT should be near one link-serialization
	// of 8MB (~0.67ms), far below the 3-unicast ~2ms.
	if jct > 2*sim.Millisecond {
		t.Fatalf("multicast 8MB JCT %v; replication not happening in-network", jct)
	}
}

func TestSenderTransmitsOnce(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 1<<20)
	sent := e.rnics[0].Stats.DataSent
	want := uint64((1 << 20) / roce.DefaultConfig().MTU)
	if sent != want {
		t.Fatalf("sender transmitted %d packets, want exactly %d (one copy)", sent, want)
	}
	if e.accels[0].Stats.DataReplicated == 0 {
		t.Fatal("switch performed no replication")
	}
}

func TestMulticastFatTree(t *testing.T) {
	e := newEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) },
		[]int{0, 3, 7, 12, 15}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 1<<20)
}

func TestAckAggregationReducesAcks(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 4<<20)
	acksIn := e.accels[0].Stats.AcksIn
	acksOut := e.rnics[0].Stats.AcksRecv
	if acksOut == 0 {
		t.Fatal("sender received no ACKs")
	}
	// Three receivers ACK independently; the trigger condition must keep
	// the sender's ACK stream well below the aggregate inflow.
	if acksOut*2 > acksIn {
		t.Fatalf("sender got %d ACKs of %d inflowing; aggregation ineffective", acksOut, acksIn)
	}
}

func TestMulticastWriteBridgesMR(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	for i, m := range e.group.Members {
		m.WVA = uint64(0x1000 * (i + 1))
		m.WRKey = uint32(100 + i)
	}
	register(t, e)
	type rcv struct {
		va   uint64
		rkey uint32
	}
	got := map[int]rcv{}
	for i, m := range e.group.Members {
		if i == 0 {
			continue
		}
		i := i
		m.QP.OnMessage = func(msg roce.Message) { got[i] = rcv{msg.WriteVA, msg.WriteRKey} }
	}
	e.group.Members[0].QP.PostWrite(8192, 0xAAAA, 7, nil)
	e.eng.RunUntil(e.eng.Now() + 100*sim.Millisecond)
	for i := 1; i < 4; i++ {
		want := rcv{uint64(0x1000 * (i + 1)), uint32(100 + i)}
		if got[i] != want {
			t.Fatalf("member %d saw MR %+v, want its registered %+v", i, got[i], want)
		}
	}
}

func TestMulticastUnderLoss(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	e.net.Switches[0].LossRate = 1e-3
	runMulticast(t, e, 0, 4<<20)
	if e.net.Switches[0].DataDrops == 0 {
		t.Skip("loss injector never fired at this seed")
	}
	if e.rnics[0].Stats.Retransmits == 0 && e.rnics[0].Stats.Timeouts == 0 {
		t.Fatal("drops occurred but sender never retransmitted")
	}
}

func TestRetransmitFilterPreventsDuplicates(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	e.net.Switches[0].LossRate = 5e-3
	runMulticast(t, e, 0, 8<<20)
	if e.net.Switches[0].DataDrops == 0 {
		t.Skip("no drops at this seed")
	}
	filtered := e.accels[0].Stats.RetransFiltered
	if filtered == 0 {
		t.Fatal("retransmissions happened but the filter never engaged")
	}
	// Receivers should see almost no duplicates: only those retransmissions
	// racing their own ACKs.
	var dup uint64
	for _, r := range e.rnics[1:] {
		dup += r.Stats.DupData
	}
	var retrans uint64 = e.rnics[0].Stats.Retransmits
	if retrans > 0 && dup > retrans*3 {
		t.Fatalf("receivers saw %d duplicates for %d retransmissions; filter leaky", dup, retrans)
	}
}

func TestSourceSwitching(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 1<<20)
	// Switch source 0 -> 2 with PSN synchronization; no re-registration.
	e.group.SwitchSource(0, 2)
	runMulticast(t, e, 2, 1<<20)
	if e.accels[0].Groups() != 1 {
		t.Fatalf("switch holds %d MFTs after source switch, want 1", e.accels[0].Groups())
	}
	if e.accels[0].MFT(e.group.ID).SourceSwitches == 0 {
		t.Fatal("switch never detected the source change")
	}
	// And back again.
	e.group.SwitchSource(2, 1)
	runMulticast(t, e, 1, 64<<10)
}

func TestSourceSwitchingFatTree(t *testing.T) {
	e := newEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) },
		[]int{0, 5, 9, 14}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 256<<10)
	e.group.SwitchSource(0, 3)
	runMulticast(t, e, 3, 256<<10)
}

func TestRegistrationChunking(t *testing.T) {
	nodes := make([]NodeInfo, 450)
	chunks := chunkNodes(nodes)
	if len(chunks) != 3 {
		t.Fatalf("450 nodes -> %d chunks, want 3 (183+183+84)", len(chunks))
	}
	if len(chunks[0]) != MRPMaxNodes || len(chunks[2]) != 450-2*MRPMaxNodes {
		t.Fatalf("chunk sizes %d/%d/%d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	if chunkNodes(nil) != nil {
		t.Fatal("empty chunking should be nil")
	}
}

func TestRegistrationCapacityReject(t *testing.T) {
	ResetMcstIDs()
	eng := sim.New(1)
	n := topo.Testbed(eng, 4)
	cfg := roce.DefaultConfig()
	var rnics []*roce.RNIC
	var agents []*Agent
	for _, h := range n.Hosts {
		r := roce.NewRNIC(h, cfg)
		rnics = append(rnics, r)
		agents = append(agents, NewAgent(r))
	}
	acfg := DefaultAccelConfig()
	acfg.MaxGroups = 1
	Attach(n.Switches[0], acfg)
	mk := func() (*Group, *error) {
		var members []*Member
		for i := range n.Hosts {
			members = append(members, &Member{Host: n.Hosts[i], RNIC: rnics[i], QP: rnics[i].CreateQP()})
		}
		g := NewGroup(eng, AllocMcstID(), members, 0, agents)
		var err error
		errp := &err
		g.Register(5*sim.Millisecond, func(e error) { *errp = e })
		return g, errp
	}
	g1, err1 := mk()
	g2, err2 := mk()
	eng.RunUntil(20 * sim.Millisecond)
	if *err1 != nil || !g1.Registered() {
		t.Fatalf("first group should register: %v", *err1)
	}
	if *err2 == nil || g2.Registered() {
		t.Fatal("second group should be rejected at MaxGroups=1")
	}
	if _, ok := (*err2).(*RegistrationError); !ok {
		t.Fatalf("error type %T, want *RegistrationError", *err2)
	}
}

func TestRegistrationTimeout(t *testing.T) {
	ResetMcstIDs()
	eng := sim.New(1)
	n := topo.Testbed(eng, 4)
	cfg := roce.DefaultConfig()
	var rnics []*roce.RNIC
	var agents []*Agent
	for _, h := range n.Hosts {
		r := roce.NewRNIC(h, cfg)
		rnics = append(rnics, r)
		agents = append(agents, NewAgent(r))
	}
	// No accelerator attached: MRP packets hit a switch with no hook and are
	// unicast-forwarded nowhere useful, so confirmations never arrive.
	n.Switches[0].Hook = dropMRP{}
	var members []*Member
	for i := range n.Hosts {
		members = append(members, &Member{Host: n.Hosts[i], RNIC: rnics[i], QP: rnics[i].CreateQP()})
	}
	g := NewGroup(eng, AllocMcstID(), members, 0, agents)
	var err error
	g.Register(1*sim.Millisecond, func(e error) { err = e })
	eng.RunUntil(5 * sim.Millisecond)
	if err == nil {
		t.Fatal("registration should time out when MRP is black-holed")
	}
	if g.Registered() {
		t.Fatal("group claims registered after timeout")
	}
}

type dropMRP struct{}

func (dropMRP) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	return p.Type == simnet.MRP
}

func TestMFTMemoryBound(t *testing.T) {
	// The paper: 1K groups cost at most 0.69MB on a 64-port switch.
	perGroup := MaxMemoryBytes(64)
	total := 1000 * perGroup
	if total > 725000 {
		t.Fatalf("1K groups cost %d bytes, exceeding the paper's ~0.69MB bound", total)
	}
	// And the bound must not depend on group size: an MFT for a 4-port
	// testbed switch in a 1000-member group is still 4 entries max.
	m := NewMFT(simnet.MulticastBase+1, 4)
	for p := 0; p < 4; p++ {
		m.EnsureEntry(p)
	}
	if m.MemoryBytes() != MaxMemoryBytes(4) {
		t.Fatalf("full 4-port MFT = %d bytes, want %d", m.MemoryBytes(), MaxMemoryBytes(4))
	}
}

func TestMinAckSemantics(t *testing.T) {
	m := NewMFT(simnet.MulticastBase+1, 8)
	m.AckOutPort = 0
	m.EnsureEntry(0)
	m.EnsureEntry(1)
	m.EnsureEntry(2)
	if _, _, ok := m.MinAck(); ok {
		t.Fatal("MinAck ok before any feedback")
	}
	m.Entry(1).AckPSN = 5
	if _, _, ok := m.MinAck(); ok {
		t.Fatal("MinAck ok with one silent path")
	}
	m.Entry(2).AckPSN = 3
	min, argmin, ok := m.MinAck()
	if !ok || min != 3 || argmin != 2 {
		t.Fatalf("MinAck = %d/%d/%v, want 3/2/true", min, argmin, ok)
	}
	// The AckOutPort path must be excluded even though it never acked.
	if m.Entry(0).AckPSN != ackNone {
		t.Fatal("test setup broken")
	}
}

func TestNackZeroEPSN(t *testing.T) {
	// A NACK with ePSN=0 (very first packet lost) acknowledges nothing but
	// proves the path is alive: MinAck must become valid at -1.
	m := NewMFT(simnet.MulticastBase+1, 4)
	m.AckOutPort = 0
	m.EnsureEntry(0)
	e := m.EnsureEntry(1)
	e.AckPSN = -1 // what handleNack sets for ePSN=0
	min, _, ok := m.MinAck()
	if !ok || min != -1 {
		t.Fatalf("MinAck = %d/%v, want -1/true", min, ok)
	}
}
