package core

import (
	"repro/internal/simnet"
)

// MRPMaxNodes is the maximum number of node records one MRP packet carries.
// With a 1500B MTU and 8B per record plus metadata, the paper derives 183.
const MRPMaxNodes = 183

// NodeInfo is one member's connection (and MR) state as carried by MRP.
type NodeInfo struct {
	IP    simnet.Addr
	QPN   uint32
	WVA   uint64 // MR virtual address for multicast WRITE (§III-B2)
	WRKey uint32 // MR remote key
}

// MRPPayload is the MRP packet body (Fig 5): metadata (seq/total for
// chunking past the MTU limit, the registration epoch) plus the node records
// routed through the receiving switch. CtrlIP addresses confirmations and
// rejections back to the controller on the leader host.
//
// Epoch is the group's registration generation. Every (re-)registration
// increments it; switches stamp their MFT with it, replace the MFT wholesale
// when a newer epoch registers, and discard stale-epoch MRP replays — so a
// retransmitted or reordered registration from a previous generation can
// never resurrect a dead distribution tree.
type MRPPayload struct {
	McstID simnet.Addr
	Seq    int
	Total  int
	Epoch  uint16
	CtrlIP simnet.Addr
	Nodes  []NodeInfo
}

// wireBytes is the MRP payload size on the wire, from the Fig 5 codec.
func (m *MRPPayload) wireBytes() int { return len(EncodeMRP(m)) }

// newMRPPacket builds a pooled MRP packet for a payload. MRP is UDP-based
// with dstIP = McstID so switches classify it like other group traffic.
func newMRPPacket(src simnet.Addr, pay *MRPPayload) *simnet.Packet {
	p := simnet.NewPacket()
	p.Type = simnet.MRP
	p.Src = src
	p.Dst = pay.McstID
	p.Payload = pay.wireBytes()
	p.Meta = pay
	return p
}

// chunkNodes splits a member list into MRP-sized chunks.
func chunkNodes(nodes []NodeInfo) [][]NodeInfo {
	if len(nodes) == 0 {
		return nil
	}
	var out [][]NodeInfo
	for len(nodes) > MRPMaxNodes {
		out = append(out, nodes[:MRPMaxNodes])
		nodes = nodes[MRPMaxNodes:]
	}
	return append(out, nodes)
}

// confirmPayload is the body of an MRPConfirm/MRPReject packet. Epoch echoes
// the registration generation being answered, so the controller can discard
// confirmations and rejections that belong to a superseded attempt.
type confirmPayload struct {
	McstID simnet.Addr
	Member simnet.Addr
	Epoch  uint16
	Reason string // set on rejection
}

// epochUnknown marks switch-originated rejections that carry no registration
// epoch — notably the NACK a restarted switch sends when multicast data
// arrives for a group its wiped MFT no longer knows. The controller treats
// such a rejection on a registered group as an invalidation rather than a
// registration failure.
const epochUnknown uint16 = 0xFFFF
