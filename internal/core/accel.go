package core

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// AccelConfig tunes one switch's accelerator.
type AccelConfig struct {
	// MaxGroups bounds the number of MFTs; registration beyond it is
	// rejected, which exercises the safeguard fallback (§V-D).
	MaxGroups int

	// CNPAgingPeriod is the decay period of the per-port congestion
	// counters used by CNP filtering.
	CNPAgingPeriod sim.Time

	// NackHoldoff suppresses duplicate NACK emissions for the same ePSN
	// within this window, while the retransmission is already in flight.
	NackHoldoff sim.Time

	// UnknownGroupNackHoldoff rate-limits the per-group rejection a switch
	// sends when multicast data arrives for a group it has no MFT for.
	UnknownGroupNackHoldoff sim.Time

	// DisableRetransFilter turns off §III-D's duplicate-retransmission
	// filtering (ablation).
	DisableRetransFilter bool

	// DisableCNPFilter forwards every CNP instead of only those from the
	// most congested path (ablation).
	DisableCNPFilter bool

	// NaiveAckForwarding disables the trigger condition and emits an
	// aggregated ACK on every feedback arrival that advances the minimum
	// (ablation for the ACK-exploding mitigation).
	NaiveAckForwarding bool
}

// DefaultAccelConfig returns the prototype's configuration.
func DefaultAccelConfig() AccelConfig {
	return AccelConfig{
		MaxGroups:               1024,
		CNPAgingPeriod:          200 * sim.Microsecond,
		NackHoldoff:             20 * sim.Microsecond,
		UnknownGroupNackHoldoff: 100 * sim.Microsecond,
	}
}

// AccelStats counts accelerator activity, per switch.
type AccelStats struct {
	DataIn          uint64
	DataReplicated  uint64
	DataBridged     uint64
	RetransFiltered uint64
	AcksIn          uint64
	AcksEmitted     uint64
	NacksIn         uint64
	NacksEmitted    uint64
	CNPsIn          uint64
	CNPsForwarded   uint64
	CNPsFiltered    uint64
	MRPProcessed    uint64
	MRPRejected     uint64
	Reduce          ReduceStats

	// Fault/recovery counters.
	MFTWipes          uint64 // groups lost to a switch crash (volatile MFT)
	EpochRebuilds     uint64 // MFTs replaced by a newer-epoch registration
	StaleMRPDropped   uint64 // older-epoch MRP replays discarded
	UnknownGroupDrops uint64 // multicast data dropped for an unknown group
	UnknownGroupNacks uint64 // rejections emitted for unknown-group data
}

// Accel is the Cepheus accelerator attached to one switch. The paper
// implements it as an FPGA board on four spare ports with ACL redirection;
// here it sits inline in the switch pipeline (a substitution recorded in
// DESIGN.md §1). It implements simnet.SwitchHook.
type Accel struct {
	Cfg   AccelConfig
	Stats AccelStats

	sw      *simnet.Switch
	mfts    map[simnet.Addr]*MFT
	reduces map[simnet.Addr]*reduceState

	// One-entry MFT lookup cache: a switch in a multicast hot path sees the
	// same group on nearly every packet, so this turns the per-packet map
	// access into a compare. Invalidated on any mfts mutation.
	cacheID  simnet.Addr
	cacheMFT *MFT

	// mgLoad counts how many groups route through each port, for the
	// group-level load balancing MRP performs when picking among ECMP
	// candidates (§III-C).
	mgLoad []int

	// lastUnknownNack rate-limits the rejection a switch sends when data
	// arrives for a group it has no MFT for (post-crash), so a full-rate
	// sender does not become a control-plane NACK storm.
	lastUnknownNack map[simnet.Addr]sim.Time
}

// Attach creates an accelerator and installs it on the switch. The switch's
// restart hook is claimed to model the MFT's volatility: a crashed switch
// comes back with no multicast forwarding state and must be re-registered.
func Attach(sw *simnet.Switch, cfg AccelConfig) *Accel {
	a := &Accel{Cfg: cfg, sw: sw, mfts: make(map[simnet.Addr]*MFT)}
	sw.Hook = a
	sw.OnRestart = a.onSwitchRestart
	return a
}

// onSwitchRestart wipes all volatile accelerator state, as a power cycle of
// the FPGA board would: every MFT, reduction state, and the load counters.
func (a *Accel) onSwitchRestart() {
	a.Stats.MFTWipes += uint64(len(a.mfts))
	a.sw.Fabric().Add(obs.FMFTWipes, uint64(len(a.mfts)))
	if tr := a.sw.Tracer(); tr.On() && len(a.mfts) > 0 {
		// One event per wiped group, in sorted group order — map iteration
		// order must never leak into the trace.
		groups := make([]simnet.Addr, 0, len(a.mfts))
		for id := range a.mfts {
			groups = append(groups, id)
		}
		sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
		for _, id := range groups {
			a.recMFT(obs.KMFTWipe, id, int64(a.mfts[id].Epoch))
		}
	}
	a.mfts = make(map[simnet.Addr]*MFT)
	a.reduces = nil
	a.mgLoad = nil
	a.lastUnknownNack = nil
	a.cacheID, a.cacheMFT = 0, nil
}

// recMFT captures one MFT lifecycle event for a group; aVal is the epoch
// involved. Callers on hot paths guard with a.sw.Tracer().On().
func (a *Accel) recMFT(k obs.Kind, group simnet.Addr, aVal int64) {
	tr := a.sw.Tracer()
	if !tr.On() {
		return
	}
	tr.Record(a.sw.Engine().Now(), k, obs.RNone, -1, uint8(simnet.MRP), 0, uint32(group), 0, 0, 0, 0, aVal, 0)
}

// MFT returns the switch's table for a group, or nil.
func (a *Accel) MFT(id simnet.Addr) *MFT { return a.mfts[id] }

// Groups returns how many MFTs the switch currently holds.
func (a *Accel) Groups() int { return len(a.mfts) }

// MemoryBytes totals the modeled MFT memory on this switch.
func (a *Accel) MemoryBytes() int {
	total := 0
	for _, m := range a.mfts {
		total += m.MemoryBytes()
	}
	return total
}

// Handle implements simnet.SwitchHook. Cepheus traffic is classified by a
// multicast destination (data, feedback and MRP all carry dstIP = McstID
// once inside the fabric); everything else falls through to unicast
// forwarding. Every consumed packet is released here: the per-type handlers
// replicate via Clone and never retain the original.
func (a *Accel) Handle(sw *simnet.Switch, p *simnet.Packet, in *simnet.Port) bool {
	if p.Type == simnet.MRP && p.Dst.IsMulticast() {
		a.handleMRP(p, in)
		p.Release()
		return true
	}
	if !p.Dst.IsMulticast() {
		return false
	}
	mft := a.cacheMFT
	if p.Dst != a.cacheID || mft == nil {
		mft = a.mfts[p.Dst]
		if mft != nil {
			a.cacheID, a.cacheMFT = p.Dst, mft
		}
	}
	if mft == nil {
		// No registration reached this switch — or a crash wiped it. Never
		// forward blind: drop, and for data packets NACK the source so its
		// controller learns the tree is gone and re-registers, instead of
		// the sender discovering the black hole only via safeguard timeout.
		if p.Type == simnet.Data {
			a.Stats.UnknownGroupDrops++
			a.sw.Fabric().Inc(obs.FUnknownGroupDrops)
			a.sw.GroupStats().Drop(uint32(p.Dst), a.sw.Engine().Now(), int64(p.Size()))
			if tr := a.sw.Tracer(); tr.On() {
				tr.Record(a.sw.Engine().Now(), obs.KDrop, obs.RUnknownGroup, in.ID,
					uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, 0, int64(p.Size()))
			}
			a.nackUnknownGroup(p)
		}
		p.Release()
		return true
	}
	switch p.Type {
	case simnet.Data:
		if p.Reduce {
			// Many-to-one contribution flowing up toward the root.
			if in.ID != mft.AckOutPort {
				a.handleReduce(mft, p, in)
			}
		} else {
			a.handleData(mft, p, in)
		}
	case simnet.Ack:
		if in.ID == mft.AckOutPort {
			// Root-side feedback for a reduction: replicate down.
			a.replicateFeedbackDown(mft, p, in)
		} else {
			a.handleAck(mft, p, in)
		}
	case simnet.Nack:
		if in.ID == mft.AckOutPort {
			a.replicateFeedbackDown(mft, p, in)
		} else {
			a.handleNack(mft, p, in)
		}
	case simnet.CNP:
		if in.ID == mft.AckOutPort {
			a.replicateFeedbackDown(mft, p, in)
		} else {
			a.handleCNP(mft, p, in)
		}
	default:
		return false
	}
	p.Release()
	return true
}

// ---- MRP registration (§III-C) ----

func (a *Accel) handleMRP(p *simnet.Packet, in *simnet.Port) {
	pay := p.Meta.(*MRPPayload)
	a.Stats.MRPProcessed++
	mft := a.mfts[pay.McstID]
	if mft != nil && pay.Epoch != mft.Epoch {
		if staleEpoch(pay.Epoch, mft.Epoch) {
			// A retransmitted or reordered chunk from a superseded
			// registration: discard rather than corrupt the live tree.
			a.Stats.StaleMRPDropped++
			a.sw.Fabric().Inc(obs.FStaleMRPDropped)
			a.recMFT(obs.KMFTStale, pay.McstID, int64(pay.Epoch))
			return
		}
		// A newer generation registers: the old tree is dead state. Replace
		// it wholesale — merged entries from different epochs could route
		// through links the controller now knows to be gone.
		a.Stats.EpochRebuilds++
		a.sw.Fabric().Inc(obs.FEpochRebuilds)
		a.recMFT(obs.KMFTRebuild, pay.McstID, int64(pay.Epoch))
		mft = nil
		delete(a.mfts, pay.McstID)
		a.cacheID, a.cacheMFT = 0, nil
	}
	if mft == nil {
		if a.Cfg.MaxGroups > 0 && len(a.mfts) >= a.Cfg.MaxGroups {
			a.Stats.MRPRejected++
			a.reject(pay, "switch "+a.sw.Name+": MFT capacity exhausted")
			return
		}
		mft = NewMFT(pay.McstID, a.sw.NumPorts())
		mft.Epoch = pay.Epoch
		a.mfts[pay.McstID] = mft
		a.recMFT(obs.KMFTInstall, pay.McstID, int64(pay.Epoch))
	}
	if a.mgLoad == nil {
		a.mgLoad = make([]int, a.sw.NumPorts())
	}

	// The arrival port joins the MDT: it is the upstream path toward the
	// registration root. Marking it keeps the tree floodable from any
	// entry point, which is what source switching relies on.
	mft.EnsureEntry(in.ID)

	// Route every node record, grouping downstream forwards per port.
	downstream := make(map[int][]NodeInfo)
	for _, n := range pay.Nodes {
		port, direct := a.routeNode(mft, n)
		e := mft.EnsureEntry(port)
		if direct {
			e.NextIsHost = true
			e.DstIP = n.IP
			e.DstQP = n.QPN
			e.WVA = n.WVA
			e.WRKey = n.WRKey
		}
		downstream[port] = append(downstream[port], n)
	}
	// Forward in ascending port order — map iteration order must never leak
	// into the packet serialization (the flight recorder would see it).
	ports := make([]int, 0, len(downstream))
	for port := range downstream {
		ports = append(ports, port)
	}
	sort.Ints(ports)
	for _, port := range ports {
		if port == in.ID {
			continue // never reflect registration back upstream
		}
		np := newMRPPacket(p.Src, &MRPPayload{
			McstID: pay.McstID, Seq: pay.Seq, Total: pay.Total, Epoch: pay.Epoch,
			CtrlIP: pay.CtrlIP, Nodes: downstream[port],
		})
		a.sw.Output(np, port, in)
	}
}

// routeNode finds the multicast routing port for one node: the directly
// connected port if the node is attached here; otherwise an ECMP candidate,
// preferring a port already in the MDT (delaying replication saves
// bandwidth), and breaking ties toward the port least used by other groups.
func (a *Accel) routeNode(mft *MFT, n NodeInfo) (port int, direct bool) {
	for _, pt := range a.sw.Ports {
		if h, ok := pt.Peer.Dev.(*simnet.Host); ok && h.IP == n.IP {
			return pt.ID, true
		}
	}
	cands := a.sw.FIB[n.IP]
	if len(cands) == 0 {
		panic("core: " + a.sw.Name + " has no route to member " + n.IP.String())
	}
	for _, c := range cands {
		if mft.InMDT(c) {
			return c, false
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if a.mgLoad[c] < a.mgLoad[best] {
			best = c
		}
	}
	a.mgLoad[best]++
	return best, false
}

// reject sends an MRPReject to the controller via unicast forwarding.
func (a *Accel) reject(pay *MRPPayload, reason string) {
	rp := simnet.NewPacket()
	rp.Type, rp.Src, rp.Dst = simnet.MRPReject, pay.McstID, pay.CtrlIP
	rp.Payload = 64
	rp.Meta = &confirmPayload{McstID: pay.McstID, Epoch: pay.Epoch, Reason: reason}
	a.sw.Forward(rp, nil)
}

// staleEpoch reports whether a is an older registration generation than b,
// under 16-bit serial-number arithmetic (RFC 1982 style) so long-lived
// groups survive epoch wraparound.
func staleEpoch(a, b uint16) bool {
	return int16(a-b) < 0
}

// nackUnknownGroup tells the data source's controller that this switch has
// no forwarding state for the group. The rejection is rate-limited per group
// and carries no epoch (the switch does not know one) — the controller
// treats it as an invalidation of a registered group.
func (a *Accel) nackUnknownGroup(p *simnet.Packet) {
	now := a.sw.Engine().Now()
	if a.lastUnknownNack == nil {
		a.lastUnknownNack = make(map[simnet.Addr]sim.Time)
	}
	if last, ok := a.lastUnknownNack[p.Dst]; ok && now-last < a.Cfg.UnknownGroupNackHoldoff {
		return
	}
	a.lastUnknownNack[p.Dst] = now
	a.Stats.UnknownGroupNacks++
	a.sw.Fabric().Inc(obs.FUnknownGroupNacks)
	a.recMFT(obs.KMFTNack, p.Dst, 0)
	rp := simnet.NewPacket()
	rp.Type, rp.Src, rp.Dst = simnet.MRPReject, p.Dst, p.Src
	rp.Payload = 64
	rp.Meta = &confirmPayload{
		McstID: p.Dst, Epoch: epochUnknown,
		Reason: "switch " + a.sw.Name + ": no MFT for group (crashed or never registered)",
	}
	a.sw.Forward(rp, nil)
}

// ---- data replication and connection bridging (§III-B2) ----

func (a *Accel) handleData(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.DataIn++
	if mft.AckOutPort != in.ID || mft.SrcIP != p.Src {
		if mft.SrcIP != 0 && mft.SrcIP != p.Src {
			mft.SourceSwitches++
		}
		mft.AckOutPort = in.ID
		mft.SrcIP = p.Src
		mft.SrcQP = p.SrcQP
		// Re-arm the aggregation trigger: the previous minimum owner may be
		// the port that just became the source-facing path, which never
		// carries ACKs; leaving TriPort there would stall aggregation until
		// the sender's safeguard timeout.
		mft.TriPort = -1
	}
	psn := int64(p.PSN)
	copies := 0
	for _, e := range mft.Paths {
		if e.Port == in.ID {
			continue
		}
		// Retransmit filtering: paths that already acknowledged this PSN
		// must not see it again (§III-D).
		if !a.Cfg.DisableRetransFilter && e.AckPSN != ackNone && psn <= e.AckPSN {
			a.Stats.RetransFiltered++
			continue
		}
		q := p.Clone()
		if e.NextIsHost {
			// Connection bridging (Fig 4): match the receiver's QP and
			// redirect feedback into the MFT via srcIP = McstID.
			q.Dst = e.DstIP
			q.DstQP = e.DstQP
			q.Src = mft.McstID
			if q.WriteVA != 0 || q.WriteRKey != 0 {
				q.WriteVA = e.WVA
				q.WriteRKey = e.WRKey
			}
			a.Stats.DataBridged++
		}
		copies++
		a.sw.Output(q, e.Port, in)
	}
	if copies > 1 {
		a.Stats.DataReplicated += uint64(copies - 1)
	}
	if copies == 0 && p.Retrans {
		// Every path already acknowledged this retransmission: regenerate
		// the aggregate so a sender stalled on a lost/step-skipped ACK
		// makes progress instead of retransmitting forever.
		a.tryEmit(mft)
	}
}

// ---- feedback handling (§III-D) ----

func (a *Accel) handleAck(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.AcksIn++
	e := mft.Entry(in.ID)
	if e == nil {
		return // feedback from outside the MDT: drop
	}
	psn := int64(p.PSN)
	if e.AckPSN == ackNone || psn > e.AckPSN {
		e.AckPSN = psn
	}
	if a.Cfg.NaiveAckForwarding {
		// Ablation: forward an aggregate on every incoming ACK, with no
		// dedup — the "ACK exploding" behaviour the trigger condition
		// exists to prevent.
		if min, argmin, ok := mft.MinAck(); ok && min >= 0 {
			mft.AggAckPSN, mft.AggValid, mft.TriPort = min, true, argmin
			a.Stats.AcksEmitted++
			a.emitFeedback(mft, newFeedback(simnet.Ack, mft.McstID, uint64(min)))
		}
		return
	}
	// Trigger Condition: only an ACK on the port that owned the minimum at
	// the last emission (triPort) can trigger a new aggregated ACK, and
	// only if it advances past AggAckPSN. This is what keeps the sender's
	// ACK count low (the ACK-exploding mitigation).
	if mft.TriPort == -1 || (in.ID == mft.TriPort && (!mft.AggValid || psn > mft.AggAckPSN)) {
		a.tryEmit(mft)
	}
}

func (a *Accel) handleNack(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.NacksIn++
	e := mft.Entry(in.ID)
	if e == nil {
		return
	}
	// A NACK with ePSN acknowledges everything below ePSN.
	acked := int64(p.PSN) - 1
	if e.AckPSN == ackNone || acked > e.AckPSN {
		e.AckPSN = acked
	}
	if !mft.MeValid || int64(p.PSN) < mft.MePSN {
		mft.MePSN = int64(p.PSN)
		mft.MeValid = true
	}
	a.tryEmit(mft)
}

// tryEmit re-evaluates the group's aggregate state and emits at most one
// feedback packet toward the source: a NACK when every surviving path has
// acknowledged exactly up to the lost packet (preventing NACK
// inter-covering), otherwise an aggregated ACK when the minimum advanced.
func (a *Accel) tryEmit(mft *MFT) {
	min, argmin, ok := mft.MinAck()
	if !ok {
		return
	}
	// Re-point the trigger at whichever port owns the minimum now. Doing
	// this on every evaluation (not only on emission) keeps the scheme
	// live when the straggler rotates between ports at a message tail.
	mft.TriPort = argmin
	now := a.sw.Engine().Now()
	if mft.MeValid && min+1 == mft.MePSN {
		dup := mft.MePSN == mft.lastNackPSN && now-mft.lastNackAt < a.Cfg.NackHoldoff
		if !dup {
			mft.lastNackPSN, mft.lastNackAt = mft.MePSN, now
			mft.AggAckPSN, mft.AggValid, mft.TriPort = min, true, argmin
			a.Stats.NacksEmitted++
			a.emitFeedback(mft, newFeedback(simnet.Nack, mft.McstID, uint64(mft.MePSN)))
		}
		// Discard the history either way: the NACK for this ePSN is out
		// (or suppressed as an in-flight duplicate).
		mft.MeValid = false
		return
	}
	if min < 0 {
		return // paths alive but nothing acknowledged yet
	}
	if mft.AggValid && min <= mft.AggAckPSN {
		return
	}
	mft.AggAckPSN, mft.AggValid, mft.TriPort = min, true, argmin
	a.Stats.AcksEmitted++
	a.emitFeedback(mft, newFeedback(simnet.Ack, mft.McstID, uint64(min)))
}

// newFeedback builds a pooled aggregate feedback packet addressed within the
// group (emitFeedback bridges it to the source's real connection at the leaf).
func newFeedback(t simnet.PacketType, group simnet.Addr, psn uint64) *simnet.Packet {
	p := simnet.NewPacket()
	p.Type, p.Src, p.Dst, p.PSN = t, group, group, psn
	return p
}

func (a *Accel) handleCNP(mft *MFT, p *simnet.Packet, in *simnet.Port) {
	a.Stats.CNPsIn++
	a.ageCNP(mft)
	mft.CNPCount[in.ID]++
	if !a.Cfg.DisableCNPFilter {
		// Pass only CNPs from the most congested link, so DCQCN matches
		// the sending rate to the most congested path (single-rate scheme).
		max, argmax := 0.0, -1
		for port, c := range mft.CNPCount {
			if c > max {
				max, argmax = c, port
			}
		}
		if argmax != in.ID {
			a.Stats.CNPsFiltered++
			return
		}
	}
	a.Stats.CNPsForwarded++
	a.emitFeedback(mft, p.Clone())
}

// ageCNP decays the congestion counters so the filter tracks changing
// network dynamics.
func (a *Accel) ageCNP(mft *MFT) {
	now := a.sw.Engine().Now()
	if now-mft.lastAging < a.Cfg.CNPAgingPeriod {
		return
	}
	elapsed := now - mft.lastAging
	mft.lastAging = now
	halvings := int(elapsed / a.Cfg.CNPAgingPeriod)
	if halvings > 30 {
		halvings = 30
	}
	factor := 1.0 / float64(int64(1)<<uint(halvings))
	for i := range mft.CNPCount {
		mft.CNPCount[i] *= factor
		if mft.CNPCount[i] < 0.01 {
			mft.CNPCount[i] = 0
		}
	}
}

// emitFeedback sends a feedback packet toward the source through
// AckOutPort. If the source is directly attached there, this switch is the
// final hop and rewrites the header to the source's real connection.
func (a *Accel) emitFeedback(mft *MFT, p *simnet.Packet) {
	if mft.AckOutPort < 0 {
		p.Release() // no data seen yet; nowhere to send feedback
		return
	}
	out := a.sw.Ports[mft.AckOutPort]
	if out.PeerIsHost() {
		p.Dst = mft.SrcIP
		p.DstQP = mft.SrcQP
	}
	a.sw.Output(p, mft.AckOutPort, nil)
}
