package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/simnet"
)

// Wire codec for the MRP packet body (Fig 5). The layout is:
//
//	metadata: McstID(4) seq(1) total(1) epoch(2) = 8 bytes
//	node record: IP(4) QPN(3) flags(1)           = 8 bytes
//	  flags bit0 set: record is followed by MR info VA(8) RKey(4)
//
// The controller address is the packet's IP source (the leader host), so
// it costs nothing on the wire; the record count is implied by the body
// length. A 1500B IP MTU leaves 1500-20-8 = 1472 bytes of UDP payload:
// 8 + 183*8 = 1472 — exactly the paper's 183-node chunking constant.
// seq/total are single bytes (255 chunks × 183 records covers ~46K members,
// far beyond the fabric sizes modeled), which frees two metadata bytes for
// the registration epoch without giving up a node record per packet.
// The simulator moves the decoded struct for speed but sizes every MRP
// packet from this encoding, and the codec is what a hardware MRP parser
// would implement.

const (
	mrpMetaBytes = 8
	mrpNodeBytes = 8
	mrpMRBytes   = 12
	mrpFlagMR    = 0x01
)

// EncodeMRP serializes an MRP payload.
func EncodeMRP(p *MRPPayload) []byte {
	buf := make([]byte, 0, mrpMetaBytes+len(p.Nodes)*(mrpNodeBytes+mrpMRBytes))
	var meta [mrpMetaBytes]byte
	binary.BigEndian.PutUint32(meta[0:4], uint32(p.McstID))
	meta[4] = byte(p.Seq)
	meta[5] = byte(p.Total)
	binary.BigEndian.PutUint16(meta[6:8], p.Epoch)
	buf = append(buf, meta[:]...)
	for _, n := range p.Nodes {
		var rec [mrpNodeBytes]byte
		binary.BigEndian.PutUint32(rec[0:4], uint32(n.IP))
		rec[4] = byte(n.QPN >> 16)
		rec[5] = byte(n.QPN >> 8)
		rec[6] = byte(n.QPN)
		hasMR := n.WVA != 0 || n.WRKey != 0
		if hasMR {
			rec[7] = mrpFlagMR
		}
		buf = append(buf, rec[:]...)
		if hasMR {
			var mr [mrpMRBytes]byte
			binary.BigEndian.PutUint64(mr[0:8], n.WVA)
			binary.BigEndian.PutUint32(mr[8:12], n.WRKey)
			buf = append(buf, mr[:]...)
		}
	}
	return buf
}

// DecodeMRP parses an encoded MRP payload. ctrlIP is the packet's IP
// source, which addresses the controller.
func DecodeMRP(buf []byte, ctrlIP simnet.Addr) (*MRPPayload, error) {
	if len(buf) < mrpMetaBytes {
		return nil, errors.New("core: short MRP metadata")
	}
	p := &MRPPayload{
		McstID: simnet.Addr(binary.BigEndian.Uint32(buf[0:4])),
		Seq:    int(buf[4]),
		Total:  int(buf[5]),
		Epoch:  binary.BigEndian.Uint16(buf[6:8]),
		CtrlIP: ctrlIP,
	}
	off := mrpMetaBytes
	for off < len(buf) {
		if len(buf) < off+mrpNodeBytes {
			return nil, errors.New("core: truncated MRP node record")
		}
		rec := buf[off : off+mrpNodeBytes]
		n := NodeInfo{
			IP:  simnet.Addr(binary.BigEndian.Uint32(rec[0:4])),
			QPN: uint32(rec[4])<<16 | uint32(rec[5])<<8 | uint32(rec[6]),
		}
		off += mrpNodeBytes
		if rec[7]&mrpFlagMR != 0 {
			if len(buf) < off+mrpMRBytes {
				return nil, errors.New("core: truncated MRP MR record")
			}
			n.WVA = binary.BigEndian.Uint64(buf[off : off+8])
			n.WRKey = binary.BigEndian.Uint32(buf[off+8 : off+12])
			off += mrpMRBytes
		}
		p.Nodes = append(p.Nodes, n)
	}
	return p, nil
}
