package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/simnet"
)

func TestMRPRoundTrip(t *testing.T) {
	p := &MRPPayload{
		McstID: simnet.MulticastBase + 7, Seq: 1, Total: 3, CtrlIP: 0x0A000001,
		Nodes: []NodeInfo{
			{IP: 0x0A000002, QPN: 2},
			{IP: 0x0A000003, QPN: 0xABCDEF, WVA: 0x1000, WRKey: 99},
		},
	}
	got, err := DecodeMRP(EncodeMRP(p), p.CtrlIP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, p)
	}
}

func TestMRPEmptyNodes(t *testing.T) {
	p := &MRPPayload{McstID: simnet.MulticastBase + 1, Total: 1}
	got, err := DecodeMRP(EncodeMRP(p), p.CtrlIP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 0 {
		t.Fatalf("nodes = %v", got.Nodes)
	}
}

func TestMRPDecodeRejectsCorruption(t *testing.T) {
	p := &MRPPayload{
		McstID: simnet.MulticastBase + 1, Total: 1,
		Nodes: []NodeInfo{{IP: 1, QPN: 2}, {IP: 3, QPN: 4, WVA: 5, WRKey: 6}},
	}
	buf := EncodeMRP(p)
	if _, err := DecodeMRP(buf[:len(buf)-1], 0); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := DecodeMRP(buf[:5], 0); err == nil {
		t.Fatal("short metadata accepted")
	}
}

// The paper's chunking constant: 183 plain node records must fit a 1500B
// MTU alongside Ethernet/IP/UDP headers.
func TestMRPMaxNodesFitsMTU(t *testing.T) {
	nodes := make([]NodeInfo, MRPMaxNodes)
	for i := range nodes {
		nodes[i] = NodeInfo{IP: simnet.Addr(i + 1), QPN: uint32(i + 2)}
	}
	p := &MRPPayload{McstID: simnet.MulticastBase + 1, Total: 1, Nodes: nodes}
	ipPayload := len(EncodeMRP(p)) + 20 + 8 // + IPv4/UDP
	if ipPayload > 1500 {
		t.Fatalf("183-node MRP packet is %dB of IP payload on a 1500B MTU", ipPayload)
	}
	if ipPayload != 1500 {
		t.Fatalf("183 nodes should exactly fill the MTU, got %dB", ipPayload)
	}
}

// Property: arbitrary payloads round-trip exactly.
func TestMRPRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seq, total uint8, n uint8) bool {
		p := &MRPPayload{
			McstID: simnet.MulticastBase + simnet.Addr(rng.Uint32()%1000),
			Seq:    int(seq), Total: int(total),
			CtrlIP: simnet.Addr(rng.Uint32()),
		}
		for i := 0; i < int(n)%32; i++ {
			node := NodeInfo{IP: simnet.Addr(rng.Uint32()), QPN: rng.Uint32() & 0xFFFFFF}
			if rng.Intn(2) == 0 {
				node.WVA = rng.Uint64()
				node.WRKey = rng.Uint32()
				if node.WVA == 0 && node.WRKey == 0 {
					node.WRKey = 1 // the MR flag encodes "has MR"
				}
			}
			p.Nodes = append(p.Nodes, node)
		}
		got, err := DecodeMRP(EncodeMRP(p), p.CtrlIP)
		if err != nil {
			return false
		}
		if len(p.Nodes) == 0 {
			return len(got.Nodes) == 0 && got.McstID == p.McstID
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
