package core

import (
	"repro/internal/roce"
	"repro/internal/sim"
)

// Safeguard implements the §V-D fallback: it watches a sender QP's
// acknowledged progress and trips when throughput collapses below a
// fraction of the recent norm (e.g. pathological loss), or immediately on a
// registration failure. The policy of *what* to fall back to (the default
// AMcast algorithm) belongs to the caller; OnTrip is the hook.
//
// After tripping, the safeguard keeps sampling (unless OnRecover is nil):
// when the QP's throughput returns above the threshold for RecoverWindows
// consecutive busy windows, it re-arms and fires OnRecover — the signal the
// recovery pipeline uses to restore native multicast without hand-rolled
// re-probe timers.
type Safeguard struct {
	// Threshold is the fraction of the recent best throughput below which
	// the safeguard trips (the paper suggests 50%).
	Threshold float64

	// Window is the sampling period.
	Window sim.Time

	// TripWindows is how many *consecutive* judged-bad windows are required
	// to trip (default 2). A single bad window — e.g. a burst that started
	// just before a sampling edge — is a measurement artifact, not a
	// collapse; an idle window resets the count, since a QP with nothing
	// posted cannot be collapsing.
	TripWindows int

	// RecoverWindows is how many consecutive healthy busy windows are
	// required after a trip before OnRecover fires (default 3). Ignored
	// when OnRecover is nil, in which case a trip stops the timer
	// permanently (the original one-shot behaviour).
	RecoverWindows int

	// OnTrip fires on each transition into the tripped state, with a reason.
	OnTrip func(reason string)

	// OnRecover fires when a tripped safeguard observes sustained healthy
	// throughput again.
	OnRecover func()

	qp       *roce.QP
	eng      *sim.Engine
	lastPSN  uint64
	bestRate float64
	tripped  bool
	warmup   int
	bad      int // consecutive judged-bad windows
	good     int // consecutive healthy windows while tripped
	prevBusy bool
	timer    *sim.Timer
}

// NewSafeguard starts monitoring a sender QP.
func NewSafeguard(eng *sim.Engine, qp *roce.QP, threshold float64, window sim.Time, onTrip func(reason string)) *Safeguard {
	s := &Safeguard{
		Threshold: threshold, Window: window, OnTrip: onTrip,
		TripWindows: 2, RecoverWindows: 3,
		qp: qp, eng: eng, lastPSN: qp.AckedPSN(),
	}
	s.timer = eng.NewTimer(s.sample)
	s.arm()
	return s
}

// Best returns the highest per-window progress observed so far (the
// collapse baseline), in PSNs per window.
func (s *Safeguard) Best() float64 { return s.bestRate }

// Prime seeds the collapse baseline from an earlier safeguard's Best and
// skips the warmup windows. A fresh safeguard otherwise learns its norm
// from whatever the link currently delivers — which, when native service is
// restored onto a still-degraded (lossy, not dead) link, silently adopts
// the degraded rate as "normal" and never re-trips. Priming keeps the
// pre-fault norm as the baseline, so gray degradation trips the safeguard
// exactly like a post-restore relapse would.
func (s *Safeguard) Prime(best float64) {
	if best > s.bestRate {
		s.bestRate = best
	}
	if s.bestRate > 0 {
		s.warmup = 2
	}
}

// TripRegistration records a registration failure, the other fallback
// trigger the paper names.
func (s *Safeguard) TripRegistration(err error) {
	s.trip("registration failed: " + err.Error())
}

// Tripped reports whether the safeguard is currently in the tripped state.
func (s *Safeguard) Tripped() bool { return s.tripped }

// Stop halts monitoring.
func (s *Safeguard) Stop() {
	s.timer.Stop()
}

func (s *Safeguard) arm() {
	s.timer.Reset(s.Window)
}

func (s *Safeguard) sample() {
	cur := s.qp.AckedPSN()
	progress := float64(cur - s.lastPSN)
	s.lastPSN = cur
	busy := s.qp.Outstanding() > 0
	judged := busy && s.prevBusy // the QP was loaded across the whole window
	s.prevBusy = busy
	if progress > s.bestRate {
		s.bestRate = progress
	}
	if s.tripped {
		s.sampleTripped(progress, busy)
		return
	}
	// Only judge windows where the QP was actually trying to make progress
	// for the full window and we have a baseline; the first busy windows
	// establish the norm. Windows that began idle fold post latency into
	// the measurement (bursty-but-healthy traffic) and are not judged.
	if judged && s.bestRate > 0 {
		if s.warmup < 2 {
			s.warmup++
		} else if progress < s.Threshold*s.bestRate {
			s.bad++
			if s.bad >= s.tripWindows() {
				s.trip("throughput collapsed below threshold")
				return
			}
		} else {
			s.bad = 0
		}
	} else {
		s.bad = 0 // idle (or partially idle) window: no evidence of collapse
	}
	s.arm()
}

// sampleTripped is the post-trip sampling loop: it watches for sustained
// recovery. The pre-collapse bestRate stays the baseline, so "recovered"
// means the QP is again moving at a healthy fraction of its former rate.
func (s *Safeguard) sampleTripped(progress float64, busy bool) {
	if busy && s.bestRate > 0 && progress >= s.Threshold*s.bestRate {
		s.good++
		if s.good >= s.recoverWindows() {
			s.tripped = false
			s.bad, s.good, s.warmup = 0, 0, 0
			if s.OnRecover != nil {
				s.OnRecover()
			}
			s.arm()
			return
		}
	} else if busy {
		s.good = 0 // still collapsed; idle windows neither help nor hurt
	}
	s.arm()
}

func (s *Safeguard) tripWindows() int {
	if s.TripWindows < 1 {
		return 1
	}
	return s.TripWindows
}

func (s *Safeguard) recoverWindows() int {
	if s.RecoverWindows < 1 {
		return 1
	}
	return s.RecoverWindows
}

func (s *Safeguard) trip(reason string) {
	if s.tripped {
		return
	}
	s.tripped = true
	s.bad, s.good = 0, 0
	s.Stop()
	if s.OnTrip != nil {
		s.OnTrip(reason)
	}
	// Keep sampling for recovery detection only if someone is listening;
	// otherwise preserve the original fire-once contract.
	if s.OnRecover != nil {
		s.arm()
	}
}
