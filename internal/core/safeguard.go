package core

import (
	"repro/internal/roce"
	"repro/internal/sim"
)

// Safeguard implements the §V-D fallback: it watches a sender QP's
// acknowledged progress and trips when throughput collapses below a
// fraction of the recent norm (e.g. pathological loss), or immediately on a
// registration failure. The policy of *what* to fall back to (the default
// AMcast algorithm) belongs to the caller; OnTrip is the hook.
type Safeguard struct {
	// Threshold is the fraction of the recent best throughput below which
	// the safeguard trips (the paper suggests 50%).
	Threshold float64

	// Window is the sampling period.
	Window sim.Time

	// OnTrip fires once, with a reason.
	OnTrip func(reason string)

	qp       *roce.QP
	eng      *sim.Engine
	lastPSN  uint64
	bestRate float64
	tripped  bool
	warmup   int
	timer    *sim.Timer
}

// NewSafeguard starts monitoring a sender QP.
func NewSafeguard(eng *sim.Engine, qp *roce.QP, threshold float64, window sim.Time, onTrip func(reason string)) *Safeguard {
	s := &Safeguard{Threshold: threshold, Window: window, OnTrip: onTrip, qp: qp, eng: eng, lastPSN: qp.AckedPSN()}
	s.arm()
	return s
}

// TripRegistration records a registration failure, the other fallback
// trigger the paper names.
func (s *Safeguard) TripRegistration(err error) {
	s.trip("registration failed: " + err.Error())
}

// Tripped reports whether the safeguard has fired.
func (s *Safeguard) Tripped() bool { return s.tripped }

// Stop halts monitoring.
func (s *Safeguard) Stop() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

func (s *Safeguard) arm() {
	s.timer = s.eng.AfterTimer(s.Window, s.sample)
}

func (s *Safeguard) sample() {
	if s.tripped {
		return
	}
	cur := s.qp.AckedPSN()
	progress := float64(cur - s.lastPSN)
	s.lastPSN = cur
	busy := s.qp.Outstanding() > 0
	if progress > s.bestRate {
		s.bestRate = progress
	}
	// Only judge windows where the QP was actually trying to make progress
	// and we have a baseline; the first busy windows establish the norm.
	if busy && s.bestRate > 0 {
		if s.warmup < 2 {
			s.warmup++
		} else if progress < s.Threshold*s.bestRate {
			s.trip("throughput collapsed below threshold")
			return
		}
	}
	s.arm()
}

func (s *Safeguard) trip(reason string) {
	if s.tripped {
		return
	}
	s.tripped = true
	s.Stop()
	if s.OnTrip != nil {
		s.OnTrip(reason)
	}
}
