package core

import (
	"testing"

	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// multiEnv builds a cluster where several groups can coexist on the same
// hosts and switches, exercising the Agent demux and per-group MFTs.
type multiEnv struct {
	eng    *sim.Engine
	net    *topo.Network
	rnics  []*roce.RNIC
	agents []*Agent
	accels []*Accel
}

func newMultiEnv(t *testing.T, build func(*sim.Engine) *topo.Network) *multiEnv {
	t.Helper()
	ResetMcstIDs()
	eng := sim.New(1)
	n := build(eng)
	m := &multiEnv{eng: eng, net: n}
	for _, h := range n.Hosts {
		r := roce.NewRNIC(h, roce.DefaultConfig())
		m.rnics = append(m.rnics, r)
		m.agents = append(m.agents, NewAgent(r))
	}
	for _, sw := range n.Switches {
		m.accels = append(m.accels, Attach(sw, DefaultAccelConfig()))
	}
	return m
}

func (m *multiEnv) newGroup(t *testing.T, idx []int) *Group {
	t.Helper()
	var members []*Member
	var agents []*Agent
	for _, i := range idx {
		members = append(members, &Member{Host: m.net.Hosts[i], RNIC: m.rnics[i], QP: m.rnics[i].CreateQP()})
		agents = append(agents, m.agents[i])
	}
	g := NewGroup(m.eng, AllocMcstID(), members, 0, agents)
	done, err := false, error(nil)
	g.Register(20*sim.Millisecond, func(e error) { done, err = true, e })
	m.eng.RunUntil(m.eng.Now() + 20*sim.Millisecond)
	if !done || err != nil {
		t.Fatalf("group registration: done=%v err=%v", done, err)
	}
	return g
}

func (m *multiEnv) bcast(t *testing.T, g *Group, src, size int) {
	t.Helper()
	remaining := len(g.Members) - 1
	for i, mem := range g.Members {
		if i == src {
			continue
		}
		mem.QP.OnMessage = func(roce.Message) { remaining-- }
	}
	g.Members[src].QP.PostSend(size, nil)
	deadline := m.eng.Now() + 2*sim.Second
	for remaining > 0 {
		if !m.eng.Step() || m.eng.Now() > deadline {
			t.Fatalf("bcast stalled with %d receivers pending", remaining)
		}
	}
}

func TestTwoGroupsSameHostsCoexist(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.Testbed(eng, 4) })
	g1 := m.newGroup(t, []int{0, 1, 2, 3})
	g2 := m.newGroup(t, []int{0, 1, 2, 3})
	if g1.ID == g2.ID {
		t.Fatal("McstID collision")
	}
	if m.accels[0].Groups() != 2 {
		t.Fatalf("switch holds %d MFTs, want 2", m.accels[0].Groups())
	}
	// Traffic in both groups, interleaved, from different sources.
	m.bcast(t, g1, 0, 256<<10)
	m.bcast(t, g2, 2, 256<<10)
	m.bcast(t, g1, 0, 64)
}

func TestDisjointGroupsFatTree(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) })
	g1 := m.newGroup(t, []int{0, 2, 5, 9})
	g2 := m.newGroup(t, []int{1, 6, 10, 15})
	m.bcast(t, g1, 0, 128<<10)
	m.bcast(t, g2, 0, 128<<10)
}

func TestOverlappingGroupsFatTree(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) })
	g1 := m.newGroup(t, []int{0, 1, 8, 12})
	g2 := m.newGroup(t, []int{0, 1, 8, 13}) // shares three hosts with g1
	m.bcast(t, g1, 0, 64<<10)
	m.bcast(t, g2, 3, 64<<10)
	// Re-sourcing g1 inside the group requires the §III-E PSN sync.
	g1.SwitchSource(0, 2)
	m.bcast(t, g1, 2, 64<<10)
}

// TestLargeGroupChunkedMRP exercises registration past the 183-node MRP
// limit: a 300-member group needs two MRP chunks (Fig 5's seq/total).
func TestLargeGroupChunkedMRP(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 12) })
	if len(m.net.Hosts) < 300 {
		t.Fatalf("topology too small: %d hosts", len(m.net.Hosts))
	}
	idx := make([]int, 300)
	for i := range idx {
		idx[i] = i
	}
	g := m.newGroup(t, idx)
	m.bcast(t, g, 0, 64<<10)
	// Feedback aggregation must have collapsed the 299 ACK streams.
	senderAcks := m.rnics[0].Stats.AcksRecv
	if senderAcks == 0 {
		t.Fatal("sender received no aggregated ACKs")
	}
	var receiverAcks uint64
	for _, r := range m.rnics[1:300] {
		receiverAcks += r.Stats.AcksSent
	}
	if senderAcks*10 > receiverAcks {
		t.Fatalf("sender saw %d ACKs of %d generated; aggregation failed at scale", senderAcks, receiverAcks)
	}
}

// TestGroupLevelLoadBalancing: many groups across the same ECMP choices
// spread across uplinks rather than piling onto one.
func TestGroupLevelLoadBalancing(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.FatTree(eng, 4) })
	// Groups spanning pods force uplink choices at the members' leaves.
	for i := 0; i < 8; i++ {
		m.newGroup(t, []int{0, 15})
	}
	leaf := m.net.LeafOf(m.net.Hosts[0])
	var accel *Accel
	for i, sw := range m.net.Switches {
		if sw == leaf {
			accel = m.accels[i]
		}
	}
	// The leaf has 2 uplinks; 8 groups should not all share one.
	up := map[int]int{}
	for gid := 1; gid <= 8; gid++ {
		mft := accel.MFT(simnet.MulticastBase + simnet.Addr(gid))
		if mft == nil {
			t.Fatalf("group %d has no MFT at the leaf", gid)
		}
		for _, e := range mft.Paths {
			if !e.NextIsHost {
				up[e.Port]++
			}
		}
	}
	if len(up) < 2 {
		t.Fatalf("all groups routed over one uplink: %v", up)
	}
}

// TestMRPRedeliveryIdempotent: control planes retry; delivering the same
// MRP chunk twice must not duplicate Path Table entries or corrupt state.
func TestMRPRedeliveryIdempotent(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.Testbed(eng, 4) })
	g := m.newGroup(t, []int{0, 1, 2, 3})
	accel := m.accels[0]
	mft := accel.MFT(g.ID)
	entries := len(mft.Paths)

	// Re-send the registration from the leader.
	var nodes []NodeInfo
	for _, mem := range g.Members {
		nodes = append(nodes, NodeInfo{IP: mem.Host.IP, QPN: mem.QP.QPN})
	}
	leader := g.Members[0]
	leader.Host.Send(newMRPPacket(leader.Host.IP, &MRPPayload{
		McstID: g.ID, Seq: 0, Total: 1, CtrlIP: leader.Host.IP, Nodes: nodes,
	}))
	m.eng.RunUntil(m.eng.Now() + sim.Millisecond)
	if len(mft.Paths) != entries {
		t.Fatalf("re-delivery grew the Path Table: %d -> %d", entries, len(mft.Paths))
	}
	// The group still works.
	m.bcast(t, g, 0, 64<<10)
}

// TestRegistrationBeforeTrafficRequired: data into a group whose MFT never
// formed on the path is dropped, not misrouted.
func TestGroupIsolation(t *testing.T) {
	m := newMultiEnv(t, func(eng *sim.Engine) *topo.Network { return topo.Testbed(eng, 4) })
	g1 := m.newGroup(t, []int{0, 1})
	g2 := m.newGroup(t, []int{2, 3})
	// Traffic in g1 must never reach g2's members.
	leaked := false
	for _, mem := range g2.Members {
		mem.QP.OnMessage = func(roce.Message) { leaked = true }
	}
	m.bcast(t, g1, 0, 256<<10)
	if leaked {
		t.Fatal("group 1 traffic delivered to group 2 members")
	}
}
