// Package core implements the paper's primary contribution: the Cepheus
// multicast accelerator. It contains the Multicast Forwarding Table (MFT)
// with its Path Index and Path Table (§III-B), the MRP registration
// protocol (§III-C), data replication with connection bridging (§III-B2),
// RoCE-capable feedback handling — ACK aggregation with the trigger
// condition, NACK aggregation via MePSN, retransmit filtering, and CNP
// filtering with aging (§III-D) — plus multicast source switching (§III-E)
// and the safeguard fallback (§V-D).
package core

import (
	"math"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// ackNone marks a path that has produced no feedback yet. A path that
// NACKed with ePSN=0 has acknowledged "nothing, but is alive", which is
// AckPSN == -1; both states must be distinguishable, hence the sentinel.
const ackNone = math.MinInt64

// PathEntry is one Path Table row: an outgoing MDT path through one switch
// port. If the next hop is a host the entry carries the receiver's
// connection (and MR) state used for connection bridging; if it is a
// switch, those fields are invalid and the entry only tracks the
// hierarchical AckPSN for that subtree.
type PathEntry struct {
	Port       int
	NextIsHost bool

	// Connection bridging state (valid when NextIsHost).
	DstIP simnet.Addr
	DstQP uint32
	WVA   uint64 // registered MR virtual address for multicast WRITE
	WRKey uint32 // registered MR remote key

	// AckPSN is the largest PSN cumulatively acknowledged on this path
	// (ackNone before any feedback; -1 after a NACK with ePSN 0).
	AckPSN int64
}

// MFT is one multicast group's forwarding state on one switch: the Path
// Index (per-port membership, §III-B1), the Path Table, and the group-level
// feedback aggregation state. Per the paper's hierarchical design, its size
// is bounded by the switch port count, not the group size.
type MFT struct {
	McstID simnet.Addr

	// Epoch is the registration generation this table was built under
	// (stamped from the MRP payload). A registration with a newer epoch
	// replaces the table wholesale; older-epoch MRP replays are discarded,
	// so stale control traffic can never resurrect dead forwarding state.
	Epoch uint16

	// PathIndex[i] is 0 if port i is not in the MDT, otherwise 1 + the
	// port's entry index in Paths.
	PathIndex []int
	Paths     []*PathEntry

	// Group-level feedback state (§III-D).
	AggAckPSN int64 // largest aggregated-ACK PSN emitted by this switch
	AggValid  bool
	TriPort   int   // port owning the minimum AckPSN at the last emission
	MePSN     int64 // minimum NACK ePSN seen since the last NACK emission
	MeValid   bool

	// AckOutPort is the port feedback leaves through: the port the most
	// recent data packet arrived on. Updated on every data packet, which is
	// what makes source switching transparent to the switch (§III-E).
	AckOutPort int

	// SrcIP/SrcQP identify the current multicast source, learned from data
	// packets; the leaf switch adjacent to the source uses them to rewrite
	// the final feedback header.
	SrcIP simnet.Addr
	SrcQP uint32

	// CNP filtering state: per-port congestion counters with periodic
	// decay (§III-D "Congestion Control").
	CNPCount  []float64
	lastAging sim.Time

	// lastNackPSN/lastNackAt suppress duplicate NACK emissions for the same
	// ePSN inside a short holdoff while the retransmission is in flight.
	lastNackPSN int64
	lastNackAt  sim.Time

	// SourceSwitches counts detected source changes (observable for tests
	// and the ablation bench).
	SourceSwitches uint64
}

// NewMFT creates an empty MFT for a switch with nports ports.
func NewMFT(id simnet.Addr, nports int) *MFT {
	return &MFT{
		McstID:      id,
		PathIndex:   make([]int, nports),
		CNPCount:    make([]float64, nports),
		TriPort:     -1,
		AckOutPort:  -1,
		MePSN:       ackNone,
		lastNackPSN: ackNone,
		lastNackAt:  math.MinInt64,
	}
}

// Entry returns the Path Table entry for a port, or nil if the port is not
// in the MDT.
func (m *MFT) Entry(port int) *PathEntry {
	if port < 0 || port >= len(m.PathIndex) {
		return nil
	}
	idx := m.PathIndex[port]
	if idx == 0 {
		return nil
	}
	return m.Paths[idx-1]
}

// EnsureEntry returns the entry for port, creating it if the port was not
// yet part of the MDT.
func (m *MFT) EnsureEntry(port int) *PathEntry {
	if e := m.Entry(port); e != nil {
		return e
	}
	e := &PathEntry{Port: port, AckPSN: ackNone}
	m.Paths = append(m.Paths, e)
	m.PathIndex[port] = len(m.Paths)
	return e
}

// InMDT reports whether a port is part of the distribution tree.
func (m *MFT) InMDT(port int) bool { return m.Entry(port) != nil }

// MinAck computes the minimum AckPSN over all MDT paths except the port
// feedback leaves through (the source-facing path never acknowledges).
// ok is false while any such path has produced no feedback at all.
func (m *MFT) MinAck() (min int64, argmin int, ok bool) {
	min, argmin = math.MaxInt64, -1
	found := false
	for _, e := range m.Paths {
		if e.Port == m.AckOutPort {
			continue
		}
		if e.AckPSN == ackNone {
			return 0, -1, false
		}
		found = true
		if e.AckPSN < min {
			min, argmin = e.AckPSN, e.Port
		}
	}
	if !found {
		return 0, -1, false
	}
	return min, argmin, true
}

// Memory accounting constants, matching the paper's Fig 3 layout on the
// FPGA: the Path Index is one byte per port, each Path Table entry packs
// dstIP (4B) + dstQP (3B) + a 24-bit AckPSN (3B) = 10B, and the group-level
// state (AggAckPSN, triPort, MePSN, AckOutPort, source identity) is 16B
// plus a 16-bit registration epoch. A fully populated 64-port MFT is then
// 722B, so 1K groups cost ~0.72MB — still the order of the paper's "0.69MB
// per switch" bound.
const (
	entryBytes      = 10
	groupStateBytes = 16 + 2 // +2: registration epoch
)

// MemoryBytes models the switch memory footprint of this MFT.
func (m *MFT) MemoryBytes() int {
	return len(m.PathIndex) + len(m.Paths)*entryBytes + groupStateBytes
}

// MaxMemoryBytes is the worst-case footprint for one group on a switch with
// nports ports (every port in the MDT). It is independent of group size —
// the point of the hierarchical feedback state design.
func MaxMemoryBytes(nports int) int {
	return nports + nports*entryBytes + groupStateBytes
}
