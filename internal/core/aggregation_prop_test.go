package core

import (
	"math/rand"
	"testing"

	"repro/internal/roce"
	"repro/internal/simnet"
)

// propEnv drives the ToR accelerator directly with synthetic feedback and
// captures what reaches the sender, so aggregation invariants can be
// checked against arbitrary interleavings.
type propEnv struct {
	*env
	accel *Accel
	mft   *MFT
	// captured feedback at the sender host, in arrival order
	acks  []uint64
	nacks []uint64
}

func newPropEnv(t *testing.T) *propEnv {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	// Prime with one packet so AckOutPort and source identity are set.
	runMulticast(t, e, 0, 1024)
	p := &propEnv{env: e, accel: e.accels[0], mft: e.accels[0].MFT(e.group.ID)}
	orig := e.net.Hosts[0].Handler
	e.net.Hosts[0].Handler = func(pk *simnet.Packet) {
		switch pk.Type {
		case simnet.Ack:
			p.acks = append(p.acks, pk.PSN)
		case simnet.Nack:
			p.nacks = append(p.nacks, pk.PSN)
		}
		orig(pk)
	}
	return p
}

func (p *propEnv) feedAck(member int, psn uint64) {
	in := p.net.Hosts[member].NIC.Peer
	p.accel.Handle(p.net.Switches[0], &simnet.Packet{
		Type: simnet.Ack, Src: p.net.Hosts[member].IP, Dst: p.group.ID, PSN: psn,
	}, in)
	p.eng.RunFor(10_000) // drain wire events
}

func (p *propEnv) feedNack(member int, ePSN uint64) {
	in := p.net.Hosts[member].NIC.Peer
	p.accel.Handle(p.net.Switches[0], &simnet.Packet{
		Type: simnet.Nack, Src: p.net.Hosts[member].IP, Dst: p.group.ID, PSN: ePSN,
	}, in)
	p.eng.RunFor(10_000)
}

// TestAggregationInvariantRandom drives random per-receiver cumulative ACK
// progressions and checks, after every step:
//  1. aggregated ACKs reaching the sender are strictly increasing;
//  2. no aggregated ACK ever exceeds the true minimum across receivers
//     (never acknowledge what some receiver lacks — the safety property).
func TestAggregationInvariantRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := newPropEnv(t)
		rng := rand.New(rand.NewSource(seed))
		// Receiver progress starts at 0 (psn 0 acked during priming).
		progress := []uint64{0, 0, 0} // members 1..3
		for step := 0; step < 200; step++ {
			m := rng.Intn(3)
			progress[m] += uint64(rng.Intn(5))
			p.feedAck(m+1, progress[m])
			trueMin := progress[0]
			for _, v := range progress[1:] {
				if v < trueMin {
					trueMin = v
				}
			}
			for i, a := range p.acks {
				if i > 0 && a <= p.acks[i-1] {
					t.Fatalf("seed %d: non-increasing agg ACKs %v", seed, p.acks)
				}
				if a > trueMin {
					t.Fatalf("seed %d step %d: agg ACK %d exceeds true min %d (progress %v)",
						seed, step, a, trueMin, progress)
				}
			}
		}
		// Liveness: after everyone reaches the same final PSN, the sender
		// must have seen it.
		final := progress[0]
		for _, v := range progress[1:] {
			if v > final {
				final = v
			}
		}
		for m := range progress {
			p.feedAck(m+1, final)
		}
		if len(p.acks) == 0 || p.acks[len(p.acks)-1] != final {
			t.Fatalf("seed %d: final agg ACK %v, want %d", seed, p.acks, final)
		}
	}
}

// TestNackInvariantRandom injects a NACK into a random ACK interleaving and
// checks the safety property: when NACK(e) reaches the sender, every
// receiver path has acknowledged at least e-1 — so the NACK can never
// cover an earlier, unrepaired loss.
func TestNackInvariantRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := newPropEnv(t)
		rng := rand.New(rand.NewSource(seed + 100))
		progress := []uint64{0, 0, 0}
		loser := rng.Intn(3)
		lossAt := uint64(10 + rng.Intn(20))
		nackSent := false
		for step := 0; step < 300; step++ {
			m := rng.Intn(3)
			if m == loser {
				if progress[m] == lossAt-1 {
					// The loser is stuck at the gap: it keeps NACKing.
					if !nackSent || rng.Intn(4) == 0 {
						p.feedNack(m+1, lossAt)
						nackSent = true
					}
					continue
				}
				// Cumulative progress stops just short of the lost packet.
				progress[m] += uint64(1 + rng.Intn(4))
				if progress[m] > lossAt-1 {
					progress[m] = lossAt - 1
				}
			} else {
				progress[m] += uint64(1 + rng.Intn(4))
			}
			p.feedAck(m+1, progress[m])
		}
		for _, e := range p.nacks {
			if e != lossAt {
				t.Fatalf("seed %d: sender saw NACK(%d), only %d was lost", seed, e, lossAt)
			}
			// Safety: at emission time every non-loser had acked >= e-1.
			// Since non-losers only ever acked their own progress, check
			// the recorded entries.
			for _, pe := range p.mft.Paths {
				if pe.Port == p.mft.AckOutPort || pe.AckPSN == ackNone {
					continue
				}
				if pe.AckPSN < int64(lossAt)-1 {
					t.Fatalf("seed %d: NACK(%d) emitted while path %d only acked %d",
						seed, lossAt, pe.Port, pe.AckPSN)
				}
			}
		}
		if nackSent && len(p.nacks) == 0 {
			t.Fatalf("seed %d: loser NACKed but the sender never learned", seed)
		}
	}
}

// TestAggAckNeverRegressesAcrossSourceSwitch: aggregation state stays on
// one monotonic PSN line across a source change.
func TestAggAckNeverRegressesAcrossSourceSwitch(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e)
	runMulticast(t, e, 0, 256<<10)
	mft := e.accels[0].MFT(e.group.ID)
	before := mft.AggAckPSN
	e.group.SwitchSource(0, 1)
	runMulticast(t, e, 1, 256<<10)
	if mft.AggAckPSN <= before {
		t.Fatalf("AggAckPSN %d did not advance past %d after source switch", mft.AggAckPSN, before)
	}
}

// TestPathIndexConsistency: EnsureEntry keeps the Path Index and Path Table
// mutually consistent under arbitrary port insertions.
func TestPathIndexConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMFT(simnet.MulticastBase+1, 64)
	seen := map[int]*PathEntry{}
	for i := 0; i < 1000; i++ {
		port := rng.Intn(64)
		e := m.EnsureEntry(port)
		if prev, ok := seen[port]; ok && prev != e {
			t.Fatalf("EnsureEntry(%d) returned a different entry", port)
		}
		seen[port] = e
		if e.Port != port {
			t.Fatalf("entry port %d != %d", e.Port, port)
		}
	}
	for port := 0; port < 64; port++ {
		e := m.Entry(port)
		if (e != nil) != (seen[port] != nil) {
			t.Fatalf("port %d presence mismatch", port)
		}
	}
	if len(m.Paths) != len(seen) {
		t.Fatalf("%d paths for %d distinct ports", len(m.Paths), len(seen))
	}
	if m.Entry(-1) != nil || m.Entry(64) != nil {
		t.Fatal("out-of-range ports must return nil")
	}
}
