package core

import (
	"testing"

	"repro/internal/roce"
	"repro/internal/sim"
)

// replayMRP injects a full set of registration chunks for the group at the
// given epoch, as a delayed retransmission would appear on the wire.
func replayMRP(e *env, epoch uint16) {
	leader := e.group.Members[e.group.Leader]
	nodes := make([]NodeInfo, len(e.group.Members))
	for i, m := range e.group.Members {
		nodes[i] = NodeInfo{IP: m.Host.IP, QPN: m.QP.QPN, WVA: m.WVA, WRKey: m.WRKey}
	}
	chunks := chunkNodes(nodes)
	for i, ch := range chunks {
		leader.Host.Send(newMRPPacket(leader.Host.IP, &MRPPayload{
			McstID: e.group.ID, Seq: i, Total: len(chunks), Epoch: epoch,
			CtrlIP: leader.Host.IP, Nodes: ch,
		}))
	}
	e.eng.RunFor(sim.Millisecond)
}

// TestStaleMRPReplayDiscarded: once a newer-epoch registration has replaced
// the MFT, retransmitted chunks from the superseded epoch must be discarded
// — merging entries across generations could route through dead links —
// while same-epoch replays stay idempotent.
func TestStaleMRPReplayDiscarded(t *testing.T) {
	e := newEnv(t, testbed4, []int{0, 1, 2, 3}, 0, roce.DefaultConfig())
	register(t, e) // epoch 1

	// Re-register: epoch 2 replaces the tree wholesale.
	done := false
	var err error
	e.group.RegisterWithPolicy(DefaultRegisterPolicy(), func(regErr error) { err = regErr; done = true })
	e.eng.RunFor(20 * sim.Millisecond)
	if !done || err != nil {
		t.Fatalf("re-registration: done=%v err=%v", done, err)
	}
	acc := e.accels[0]
	if got := acc.Stats.EpochRebuilds; got != 1 {
		t.Fatalf("epoch rebuilds = %d, want 1", got)
	}
	if mft := acc.MFT(e.group.ID); mft.Epoch != 2 {
		t.Fatalf("MFT epoch = %d, want 2", mft.Epoch)
	}

	// A late retransmission from epoch 1 arrives: dropped, tree untouched.
	replayMRP(e, 1)
	if acc.Stats.StaleMRPDropped == 0 {
		t.Fatal("stale-epoch MRP replay was not discarded")
	}
	if mft := acc.MFT(e.group.ID); mft.Epoch != 2 {
		t.Fatalf("stale replay moved MFT epoch to %d", mft.Epoch)
	}

	// A same-epoch replay (lost-confirmation retransmit) is idempotent: no
	// rebuild, registration intact.
	before := acc.Stats.EpochRebuilds
	replayMRP(e, 2)
	if acc.Stats.EpochRebuilds != before {
		t.Fatal("same-epoch replay rebuilt the MFT")
	}
	if !e.group.Registered() {
		t.Fatal("group lost registration after idempotent replay")
	}
}
