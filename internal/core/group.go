package core

import (
	"fmt"

	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

var nextMcstID uint32

// AllocMcstID returns a fresh 32-bit multicast group ID in the class-D
// range.
func AllocMcstID() simnet.Addr {
	nextMcstID++
	return simnet.MulticastBase + simnet.Addr(nextMcstID)
}

// ResetMcstIDs rewinds the allocator (tests and repeated experiments).
func ResetMcstIDs() { nextMcstID = 0 }

// Member is one host's participation in a multicast group: a single RoCE
// QP connected to the virtual remote <McstID, 0x1>, exactly one connection
// per member regardless of group size.
type Member struct {
	Host *simnet.Host
	RNIC *roce.RNIC
	QP   *roce.QP

	// WVA/WRKey describe the member's registered memory region for
	// multicast WRITE.
	WVA   uint64
	WRKey uint32
}

// Agent is the per-host control-plane agent: it demultiplexes MRP traffic
// for every group the host participates in and answers confirmations.
type Agent struct {
	rnic   *roce.RNIC
	groups map[simnet.Addr]*Group
}

// NewAgent installs an agent as the RNIC's control handler.
func NewAgent(rnic *roce.RNIC) *Agent {
	a := &Agent{rnic: rnic, groups: make(map[simnet.Addr]*Group)}
	rnic.CtrlHandler = a.handle
	return a
}

func (a *Agent) handle(p *simnet.Packet) {
	switch p.Type {
	case simnet.MRP:
		pay := p.Meta.(*MRPPayload)
		// Affirm membership: answer the controller with a confirmation for
		// every record naming this host.
		for _, n := range pay.Nodes {
			if n.IP == a.rnic.Host.IP {
				a.rnic.Host.Send(&simnet.Packet{
					Type: simnet.MRPConfirm, Src: a.rnic.Host.IP, Dst: pay.CtrlIP,
					Payload: 64,
					Meta:    &confirmPayload{McstID: pay.McstID, Member: n.IP},
				})
			}
		}
	case simnet.MRPConfirm:
		pay := p.Meta.(*confirmPayload)
		if g := a.groups[pay.McstID]; g != nil {
			g.onConfirm(pay.Member)
		}
	case simnet.MRPReject:
		pay := p.Meta.(*confirmPayload)
		if g := a.groups[pay.McstID]; g != nil {
			g.onReject(pay.Reason)
		}
	}
}

// Group is one multicast group: its members, the controller state on the
// leader host, and the registration lifecycle.
type Group struct {
	ID      simnet.Addr
	Members []*Member

	// Leader indexes the member hosting the controller. Any member may be
	// the multicast source; the leader is only a control-plane role.
	Leader int

	eng        *sim.Engine
	confirmed  map[simnet.Addr]bool
	registered bool
	failure    string
	onDone     func(err error)
	regTimer   *sim.Timer
}

// NewGroup creates a group over the given members. Each member's QP is
// connected to the virtual remote <McstID, 0x1>; the leader's agent is
// registered for controller callbacks.
func NewGroup(eng *sim.Engine, id simnet.Addr, members []*Member, leader int, agents []*Agent) *Group {
	g := &Group{ID: id, Members: members, Leader: leader, eng: eng, confirmed: make(map[simnet.Addr]bool)}
	for _, m := range members {
		m.QP.Connect(id, roce.VirtualQPN)
	}
	for _, ag := range agents {
		ag.groups[id] = g
	}
	return g
}

// RegistrationError reports a failed MFT registration.
type RegistrationError struct{ Reason string }

func (e *RegistrationError) Error() string { return "cepheus: registration failed: " + e.Reason }

// Register runs the MRP registration: the controller encapsulates every
// member's connection state into MRP packets (chunked at MRPMaxNodes) and
// launches them toward the leader's leaf switch; done fires when every
// member confirmed, or with an error on rejection or timeout.
func (g *Group) Register(timeout sim.Time, done func(err error)) {
	g.onDone = done
	leader := g.Members[g.Leader]
	nodes := make([]NodeInfo, len(g.Members))
	for i, m := range g.Members {
		nodes[i] = NodeInfo{IP: m.Host.IP, QPN: m.QP.QPN, WVA: m.WVA, WRKey: m.WRKey}
	}
	// The controller's own host is a participant by construction; the paper
	// collects confirmations only from the other hosts.
	g.confirmed[leader.Host.IP] = true
	chunks := chunkNodes(nodes)
	for i, ch := range chunks {
		pay := &MRPPayload{
			McstID: g.ID, Seq: i, Total: len(chunks),
			CtrlIP: leader.Host.IP, Nodes: ch,
		}
		leader.Host.Send(newMRPPacket(leader.Host.IP, pay))
	}
	if timeout > 0 {
		g.regTimer = g.eng.AfterTimer(timeout, func() {
			if !g.registered && g.failure == "" {
				g.fail(fmt.Sprintf("timeout after %v with %d/%d confirmations",
					timeout, len(g.confirmed), len(g.Members)))
			}
		})
	}
}

func (g *Group) onConfirm(member simnet.Addr) {
	if g.registered || g.failure != "" {
		return
	}
	g.confirmed[member] = true
	if len(g.confirmed) == len(g.Members) {
		g.registered = true
		if g.regTimer != nil {
			g.regTimer.Stop()
		}
		if g.onDone != nil {
			g.onDone(nil)
		}
	}
}

func (g *Group) onReject(reason string) {
	if g.registered || g.failure != "" {
		return
	}
	g.fail(reason)
}

func (g *Group) fail(reason string) {
	g.failure = reason
	if g.regTimer != nil {
		g.regTimer.Stop()
	}
	if g.onDone != nil {
		g.onDone(&RegistrationError{Reason: reason})
	}
}

// Registered reports whether registration completed successfully.
func (g *Group) Registered() bool { return g.registered }

// SyncAllPSN aligns every member's send and receive PSN at the group-wide
// maximum. The reduction extension uses it when the reduction root moves:
// contributors must share one send-PSN line for their packets to combine
// per PSN, which the pairwise §III-E sync cannot restore once members'
// roles have diverged. All QPs must be idle.
func (g *Group) SyncAllPSN() {
	var max uint64
	for _, m := range g.Members {
		if v := m.QP.SqPSN(); v > max {
			max = v
		}
		if v := m.QP.RqPSN(); v > max {
			max = v
		}
	}
	for _, m := range g.Members {
		m.QP.SetSqPSN(max)
		m.QP.SetRqPSN(max)
	}
}

// SwitchSource performs the §III-E PSN Synchronization between the old and
// new source members. The fabric needs no reconfiguration: switches detect
// the new incoming port from the data itself.
func (g *Group) SwitchSource(oldIdx, newIdx int) {
	old := g.Members[oldIdx].QP
	next := g.Members[newIdx].QP
	// Old source: rqPSN := sqPSN, so it can verify the new source's stream.
	old.SetRqPSN(old.SqPSN())
	// New source: sqPSN := rqPSN, so receivers' verification still matches.
	next.SetSqPSN(next.RqPSN())
}
