package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

var nextMcstID uint32

// AllocMcstID returns a fresh 32-bit multicast group ID in the class-D
// range.
func AllocMcstID() simnet.Addr {
	nextMcstID++
	return simnet.MulticastBase + simnet.Addr(nextMcstID)
}

// ResetMcstIDs rewinds the allocator (tests and repeated experiments).
func ResetMcstIDs() { nextMcstID = 0 }

// Member is one host's participation in a multicast group: a single RoCE
// QP connected to the virtual remote <McstID, 0x1>, exactly one connection
// per member regardless of group size.
type Member struct {
	Host *simnet.Host
	RNIC *roce.RNIC
	QP   *roce.QP

	// WVA/WRKey describe the member's registered memory region for
	// multicast WRITE.
	WVA   uint64
	WRKey uint32
}

// Agent is the per-host control-plane agent: it demultiplexes MRP traffic
// for every group the host participates in and answers confirmations.
type Agent struct {
	rnic   *roce.RNIC
	groups map[simnet.Addr]*Group
}

// NewAgent installs an agent as the RNIC's control handler.
func NewAgent(rnic *roce.RNIC) *Agent {
	a := &Agent{rnic: rnic, groups: make(map[simnet.Addr]*Group)}
	rnic.CtrlHandler = a.handle
	return a
}

func (a *Agent) handle(p *simnet.Packet) {
	switch p.Type {
	case simnet.MRP:
		pay := p.Meta.(*MRPPayload)
		// Affirm membership: answer the controller with a confirmation for
		// every record naming this host. Replayed registrations are
		// re-confirmed unconditionally — the retransmit may mean the first
		// confirmation was lost, and duplicates are idempotent upstream.
		for _, n := range pay.Nodes {
			if n.IP == a.rnic.Host.IP {
				cf := simnet.NewPacket()
				cf.Type, cf.Src, cf.Dst = simnet.MRPConfirm, a.rnic.Host.IP, pay.CtrlIP
				cf.Payload = 64
				cf.Meta = &confirmPayload{McstID: pay.McstID, Member: n.IP, Epoch: pay.Epoch}
				a.rnic.Host.Send(cf)
			}
		}
	case simnet.MRPConfirm:
		pay := p.Meta.(*confirmPayload)
		if g := a.groups[pay.McstID]; g != nil {
			g.onConfirm(pay.Member, pay.Epoch)
		}
	case simnet.MRPReject:
		pay := p.Meta.(*confirmPayload)
		if g := a.groups[pay.McstID]; g != nil {
			g.onReject(pay.Reason, pay.Epoch)
		}
	}
}

// Group is one multicast group: its members, the controller state on the
// leader host, and the registration lifecycle.
type Group struct {
	ID      simnet.Addr
	Members []*Member

	// Leader indexes the member hosting the controller. Any member may be
	// the multicast source; the leader is only a control-plane role.
	Leader int

	// OnInvalidate fires when the fabric reports the group's forwarding
	// state gone while the group believed itself registered — e.g. a
	// restarted switch NACKing data for a group its wiped MFT no longer
	// holds. The group transitions back to unregistered; the hook is where
	// a recovery layer trips its safeguard and schedules re-registration.
	OnInvalidate func(reason string)

	// Retries counts MRP retransmission rounds across all registrations.
	Retries uint64

	// Registrations counts completed (re-)registrations.
	Registrations uint64

	eng        *sim.Engine
	epoch      uint16
	confirmed  map[simnet.Addr]bool
	registered bool
	failure    string
	onDone     func(err error)
	regTimer   *sim.Timer
	attempt    int
	policy     RegisterPolicy
	curTimeout sim.Time
}

// RegisterPolicy bounds MRP registration retransmission: each attempt waits
// AttemptTimeout for the remaining confirmations, then resends every chunk
// (replay is idempotent at switches and agents) with the timeout doubling up
// to MaxTimeout, failing after MaxAttempts total attempts.
type RegisterPolicy struct {
	AttemptTimeout sim.Time
	MaxTimeout     sim.Time
	MaxAttempts    int
}

// DefaultRegisterPolicy survives double-digit control-plane loss on the
// topologies modeled: 8 attempts starting at 2ms, capped at 16ms.
func DefaultRegisterPolicy() RegisterPolicy {
	return RegisterPolicy{AttemptTimeout: 2 * sim.Millisecond, MaxTimeout: 16 * sim.Millisecond, MaxAttempts: 8}
}

// NewGroup creates a group over the given members. Each member's QP is
// connected to the virtual remote <McstID, 0x1>; the leader's agent is
// registered for controller callbacks.
func NewGroup(eng *sim.Engine, id simnet.Addr, members []*Member, leader int, agents []*Agent) *Group {
	g := &Group{ID: id, Members: members, Leader: leader, eng: eng, confirmed: make(map[simnet.Addr]bool)}
	for _, m := range members {
		m.QP.Connect(id, roce.VirtualQPN)
	}
	for _, ag := range agents {
		ag.groups[id] = g
	}
	return g
}

// RegistrationError reports a failed MFT registration.
type RegistrationError struct{ Reason string }

func (e *RegistrationError) Error() string { return "cepheus: registration failed: " + e.Reason }

// Register runs the MRP registration as a single attempt with one overall
// timeout — the original one-shot behaviour. done fires when every member
// confirmed, or with an error on rejection or timeout.
func (g *Group) Register(timeout sim.Time, done func(err error)) {
	g.RegisterWithPolicy(RegisterPolicy{AttemptTimeout: timeout, MaxAttempts: 1}, done)
}

// RegisterWithPolicy runs the MRP registration with per-attempt timeout and
// bounded exponential-backoff retransmission. Calling it on an already
// registered (or failed) group starts a fresh registration under the next
// epoch — re-probe after a fault, or first-time registration; switches
// replace older-epoch MFT state wholesale when the new epoch reaches them.
func (g *Group) RegisterWithPolicy(policy RegisterPolicy, done func(err error)) {
	if g.regTimer != nil {
		g.regTimer.Stop()
	}
	g.onDone = done
	g.policy = policy
	g.epoch++
	g.attempt = 0
	g.curTimeout = policy.AttemptTimeout
	g.registered = false
	g.failure = ""
	g.confirmed = make(map[simnet.Addr]bool)
	// The controller's own host is a participant by construction; the paper
	// collects confirmations only from the other hosts.
	g.confirmed[g.Members[g.Leader].Host.IP] = true
	g.sendAttempt()
}

// sendAttempt launches (or relaunches) every MRP chunk and arms the
// per-attempt timer. Resending all chunks rather than only unconfirmed ones
// keeps the controller stateless about which switch dropped what; replay is
// idempotent end to end.
func (g *Group) sendAttempt() {
	leader := g.Members[g.Leader]
	nodes := make([]NodeInfo, len(g.Members))
	for i, m := range g.Members {
		nodes[i] = NodeInfo{IP: m.Host.IP, QPN: m.QP.QPN, WVA: m.WVA, WRKey: m.WRKey}
	}
	chunks := chunkNodes(nodes)
	for i, ch := range chunks {
		pay := &MRPPayload{
			McstID: g.ID, Seq: i, Total: len(chunks), Epoch: g.epoch,
			CtrlIP: leader.Host.IP, Nodes: ch,
		}
		leader.Host.Send(newMRPPacket(leader.Host.IP, pay))
	}
	if g.curTimeout <= 0 {
		return // no timeout: wait forever (legacy Register(0, ...) semantics)
	}
	timeout := g.curTimeout
	g.regTimer = g.eng.AfterTimer(timeout, func() {
		if g.registered || g.failure != "" {
			return
		}
		g.attempt++
		if g.attempt >= g.policy.MaxAttempts {
			g.fail(fmt.Sprintf("timeout after %d attempts with %d/%d confirmations",
				g.attempt, len(g.confirmed), len(g.Members)))
			return
		}
		g.Retries++
		g.curTimeout *= 2
		if g.policy.MaxTimeout > 0 && g.curTimeout > g.policy.MaxTimeout {
			g.curTimeout = g.policy.MaxTimeout
		}
		g.sendAttempt()
	})
}

// Epoch returns the group's current registration generation.
func (g *Group) Epoch() uint16 { return g.epoch }

func (g *Group) onConfirm(member simnet.Addr, epoch uint16) {
	if g.registered || g.failure != "" || epoch != g.epoch {
		return // duplicate, late, or stale-epoch confirmation: idempotent
	}
	g.confirmed[member] = true
	if len(g.confirmed) == len(g.Members) {
		g.registered = true
		g.Registrations++
		if g.regTimer != nil {
			g.regTimer.Stop()
		}
		if g.onDone != nil {
			g.onDone(nil)
		}
	}
}

func (g *Group) onReject(reason string, epoch uint16) {
	if g.registered {
		// The fabric disowned a group we believed registered — a restarted
		// switch with a wiped MFT, or stale forwarding state NACKed. Fall to
		// unregistered and let the recovery layer re-probe.
		if epoch == epochUnknown || epoch == g.epoch {
			g.invalidate(reason)
		}
		return
	}
	if g.failure != "" || (epoch != g.epoch && epoch != epochUnknown) {
		return // stale rejection from a superseded registration attempt
	}
	g.fail(reason)
}

func (g *Group) invalidate(reason string) {
	g.registered = false
	if g.OnInvalidate != nil {
		g.OnInvalidate(reason)
	}
}

func (g *Group) fail(reason string) {
	g.failure = reason
	if g.regTimer != nil {
		g.regTimer.Stop()
	}
	if g.onDone != nil {
		g.onDone(&RegistrationError{Reason: reason})
	}
}

// Registered reports whether registration completed successfully.
func (g *Group) Registered() bool { return g.registered }

// SyncAllPSN aligns every member's send and receive PSN at the group-wide
// maximum. The reduction extension uses it when the reduction root moves:
// contributors must share one send-PSN line for their packets to combine
// per PSN, which the pairwise §III-E sync cannot restore once members'
// roles have diverged. All QPs must be idle.
func (g *Group) SyncAllPSN() {
	var max uint64
	for _, m := range g.Members {
		if v := m.QP.SqPSN(); v > max {
			max = v
		}
		if v := m.QP.RqPSN(); v > max {
			max = v
		}
	}
	for _, m := range g.Members {
		m.QP.SetSqPSN(max)
		m.QP.SetRqPSN(max)
	}
}

// SwitchSource performs the §III-E PSN Synchronization between the old and
// new source members. The fabric needs no reconfiguration: switches detect
// the new incoming port from the data itself.
func (g *Group) SwitchSource(oldIdx, newIdx int) {
	old := g.Members[oldIdx].QP
	next := g.Members[newIdx].QP
	// Old source: rqPSN := sqPSN, so it can verify the new source's stream.
	old.SetRqPSN(old.SqPSN())
	// New source: sqPSN := rqPSN, so receivers' verification still matches.
	next.SetSqPSN(next.RqPSN())
}

// DeliveryLatency merges every member QP's delivery-latency histogram into a
// per-group digest: how long this group's packets took from requester
// emission to in-order acceptance at each receiver.
func (g *Group) DeliveryLatency() obs.Summary {
	var h obs.Histogram
	for _, m := range g.Members {
		h.Merge(&m.QP.LatHist)
	}
	return h.Summary()
}
