package simnet

import (
	"testing"

	"repro/internal/sim"
)

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPacket()
	p.Type = Data
	p.Payload = 100
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	p.Release()
}

func TestReleaseAfterReuseIsIndependent(t *testing.T) {
	// Releasing a packet and drawing a fresh one must hand back a packet in
	// the not-pooled state, even when the pool recycles the same struct.
	p := NewPacket()
	p.Release()
	q := NewPacket()
	if q.inPool {
		t.Fatal("NewPacket returned a packet still marked in-pool")
	}
	q.Release() // must not panic: q is a live packet regardless of identity
}

// sinkDev is a Device that counts and releases everything it receives.
type sinkDev struct {
	name string
	got  int
}

func (d *sinkDev) DeviceName() string { return d.name }
func (d *sinkDev) Receive(p *Packet, in *Port) {
	d.got++
	p.Release()
}

// TestReleaseAfterPurge pins the fault path's ownership rule: SetDown(true)
// purges the egress queue and releases every queued packet exactly once — a
// sender that (incorrectly) retained its handle and releases again must trip
// the double-release detector rather than corrupt the pool.
func TestReleaseAfterPurge(t *testing.T) {
	eng := sim.New(1)
	a := &sinkDev{name: "a"}
	b := &sinkDev{name: "b"}
	pa := NewPort(eng, a, 1e9, 100)
	pb := NewPort(eng, b, 1e9, 100)
	Connect(pa, pb)

	// First frame occupies the wire; the rest sit in the queue.
	var queued []*Packet
	for i := 0; i < 4; i++ {
		p := NewPacket()
		p.Type = Data
		p.Payload = 1000
		if i > 0 {
			queued = append(queued, p)
		}
		pa.Send(p)
	}
	pa.SetDown(true)
	if got := pa.Stats.FaultDrops; got != 3 {
		t.Fatalf("FaultDrops after purge = %d, want 3", got)
	}
	if pa.QueuedBytes() != 0 {
		t.Fatalf("queue not empty after purge: %d bytes", pa.QueuedBytes())
	}
	for _, p := range queued {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("releasing a purged packet did not panic")
				}
			}()
			p.Release()
		}()
	}
}

// TestRingWraparound exercises pktRing's circular index arithmetic at
// capacity boundaries: fill to the initial capacity, drain past the head so
// the window wraps, refill through the wrap, and grow mid-wrap — FIFO order
// must survive all of it.
func TestRingWraparound(t *testing.T) {
	mk := func(id uint64) *Packet {
		p := NewPacket()
		p.Type = Raw
		p.MsgID = id
		return p
	}
	var r pktRing
	next := uint64(0)
	expect := uint64(0)
	// Fill to the initial capacity (8).
	for i := 0; i < 8; i++ {
		r.pushBack(mk(next))
		next++
	}
	// Drain 5 so head sits mid-buffer, then push 5 to wrap the tail.
	for i := 0; i < 5; i++ {
		p := r.popFront()
		if p.MsgID != expect {
			t.Fatalf("popFront = %d, want %d", p.MsgID, expect)
		}
		expect++
		p.Release()
	}
	for i := 0; i < 5; i++ {
		r.pushBack(mk(next))
		next++
	}
	if r.len() != 8 {
		t.Fatalf("len = %d, want 8", r.len())
	}
	// Push one more at exact capacity: grow() must relocate the wrapped
	// window without reordering.
	r.pushBack(mk(next))
	next++
	for r.len() > 0 {
		p := r.popFront()
		if p.MsgID != expect {
			t.Fatalf("after grow: popFront = %d, want %d", p.MsgID, expect)
		}
		expect++
		p.Release()
	}
	if expect != next {
		t.Fatalf("drained %d packets, want %d", expect, next)
	}
}

// TestRingPushFrontWrap covers SendUrgent's head-insertion when head is at
// index 0, which must wrap backwards to the end of the buffer.
func TestRingPushFrontWrap(t *testing.T) {
	var r pktRing
	a := NewPacket()
	a.MsgID = 1
	b := NewPacket()
	b.MsgID = 2
	r.pushBack(a) // head = 0
	r.pushFront(b)
	if p := r.popFront(); p.MsgID != 2 {
		t.Fatalf("popFront = %d, want 2", p.MsgID)
	} else {
		p.Release()
	}
	if p := r.popFront(); p.MsgID != 1 {
		t.Fatalf("popFront = %d, want 1", p.MsgID)
	} else {
		p.Release()
	}
}
