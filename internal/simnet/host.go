package simnet

import "repro/internal/sim"

// Host is a server with a single NIC port. The transport layer (internal/
// roce) installs itself as the Handler; PFC frames are absorbed here, the
// way a NIC's MAC handles them below the transport.
type Host struct {
	Name string
	IP   Addr
	NIC  *Port

	// Handler receives every non-PFC packet addressed to this host.
	Handler func(p *Packet)

	eng *sim.Engine
}

// NewHost creates a host with an unconnected NIC port.
func NewHost(eng *sim.Engine, name string, ip Addr, rateBps float64, prop sim.Time) *Host {
	h := &Host{Name: name, IP: ip, eng: eng}
	h.NIC = NewPort(eng, h, rateBps, prop)
	return h
}

// DeviceName implements Device.
func (h *Host) DeviceName() string { return h.Name }

// Receive implements Device. The packet is released after the handler
// returns: a Handler that wants to keep any of it must copy fields out or
// Clone before returning.
func (h *Host) Receive(p *Packet, in *Port) {
	switch p.Type {
	case Pause:
		in.setPaused(true)
	case Resume:
		in.setPaused(false)
	default:
		if h.Handler != nil {
			h.Handler(p)
		}
	}
	p.Release()
}

// Send transmits p out the host's NIC.
func (h *Host) Send(p *Packet) { h.NIC.Send(p) }

// Engine returns the simulation engine driving this host.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Rebind moves the host — and its NIC — onto eng. Topology partitioning
// calls it while assigning devices to logical processes, before any traffic
// or timers exist.
func (h *Host) Rebind(eng *sim.Engine) {
	h.eng = eng
	h.NIC.Rebind(eng)
}
