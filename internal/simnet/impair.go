package simnet

import (
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Gray-failure impairments: the failures that dominate at hyperscale are not
// clean crashes but lossy links, bit corruption, degraded bandwidth and lost
// control-plane messages. An Impairment attaches to one direction of a link
// (one Port's egress) and perturbs frames as they leave the queue and start
// serializing — after dequeue, so egress byte conservation (the auditor's
// ENQ = DEQ + DROP replay) is untouched, and before delivery scheduling, so a
// lost frame simply never reaches the peer.
//
// Determinism: every probabilistic decision draws from a dedicated per-port
// RNG seeded by the caller, never from the engine's RNG. The draws happen
// inside the port's own transmit events, whose order per logical process is a
// pure function of the simulated history — so a partitioned run produces
// bit-identical impairment decisions at every worker count, and gray episodes
// are safe under PDES (unlike fail-stop injection, which must flip both ends
// of a link and is therefore sequential-only; see DESIGN.md §9 and §12).

// GilbertElliott is the classic two-state burst-loss channel: the chain moves
// between a good and a bad state once per eligible frame, and each state
// drops frames with its own probability. The zero value is inactive.
type GilbertElliott struct {
	PGoodBad float64 // per-frame P(good → bad)
	PBadGood float64 // per-frame P(bad → good)
	LossBad  float64 // drop probability while bad
	LossGood float64 // drop probability while good (usually 0)
}

func (g *GilbertElliott) active() bool { return g.LossBad > 0 || g.LossGood > 0 }

// Impairment describes one egress direction's gray failure. Fields compose:
// a link can be simultaneously lossy, slow and laggy. All probabilities are
// per frame; PFC PAUSE/RESUME frames are exempt from every loss term (they
// model MAC-level frames on a dedicated path — losing them would deadlock
// the flow-control model rather than exercise a protocol retry).
type Impairment struct {
	// LossRate drops each eligible frame independently.
	LossRate float64

	// Burst adds Gilbert-Elliott burst loss on top of LossRate.
	Burst GilbertElliott

	// CorruptRate flips bits in flight; the receiver's CRC check discards the
	// frame, observationally a wire loss recorded under its own reason and
	// counter.
	CorruptRate float64

	// CtrlLossRate targets the control plane only (MRP/ACK/NACK/CNP), the
	// "loss storm" that starves registration and feedback while data flows.
	CtrlLossRate float64

	// ExtraLatency is added to every delivered frame's propagation delay;
	// Jitter adds a further uniform draw from [0, Jitter). Both only ever
	// increase the delay, so an impaired cross-LP link still satisfies the
	// partition's lookahead bound.
	ExtraLatency sim.Time
	Jitter       sim.Time

	// BandwidthFraction in (0, 1) stretches serialization time by 1/fraction,
	// degrading the link to that fraction of line rate. 0 (and anything
	// outside (0,1)) leaves the rate alone.
	BandwidthFraction float64
}

// impairState is the live impairment attached to a port: the config plus the
// seeded RNG and burst-chain state that make its decisions reproducible.
type impairState struct {
	Impairment
	rng *rand.Rand
	bad bool // Gilbert-Elliott chain state
}

// SetImpairment installs (or replaces) this egress direction's gray failure.
// seed initializes the impairment's private RNG; the same seed and workload
// yield the same frame fates. Call it either before the run starts or from
// an event on this port's own engine — the impairment mutates only
// port-local state, which is what makes gray injection PDES-safe.
func (pt *Port) SetImpairment(imp Impairment, seed int64) {
	pt.imp = &impairState{Impairment: imp, rng: rand.New(rand.NewSource(seed))}
}

// ClearImpairment restores the healthy egress. Frames already serialized
// keep the fate they were assigned.
func (pt *Port) ClearImpairment() { pt.imp = nil }

// Impaired reports whether a gray impairment is installed on this egress.
func (pt *Port) Impaired() bool { return pt.imp != nil }

// CurrentImpairment returns the installed impairment config, if any.
func (pt *Port) CurrentImpairment() (Impairment, bool) {
	if pt.imp == nil {
		return Impairment{}, false
	}
	return pt.imp.Impairment, true
}

// stormEligible classifies the control traffic CtrlLossRate applies to,
// mirroring the switch-level isLossyControl set.
func stormEligible(t PacketType) bool {
	switch t {
	case MRP, MRPConfirm, MRPReject, Ack, Nack, CNP:
		return true
	}
	return false
}

// fate decides whether the frame survives the impaired wire, advancing the
// burst chain. The draw sequence is fixed per frame (chain step, then each
// enabled loss term in order), so the decision stream is a pure function of
// the frame sequence and the seed.
func (im *impairState) fate(p *Packet) obs.Reason {
	t := p.Type
	if t == Pause || t == Resume {
		return obs.RNone
	}
	if im.Burst.active() {
		if im.bad {
			if im.rng.Float64() < im.Burst.PBadGood {
				im.bad = false
			}
		} else if im.rng.Float64() < im.Burst.PGoodBad {
			im.bad = true
		}
	}
	if im.LossRate > 0 && im.rng.Float64() < im.LossRate {
		return obs.RImpairLoss
	}
	if im.Burst.active() {
		pl := im.Burst.LossGood
		if im.bad {
			pl = im.Burst.LossBad
		}
		if pl > 0 && im.rng.Float64() < pl {
			return obs.RImpairLoss
		}
	}
	if im.CorruptRate > 0 && im.rng.Float64() < im.CorruptRate {
		return obs.RCorrupt
	}
	if im.CtrlLossRate > 0 && stormEligible(t) && im.rng.Float64() < im.CtrlLossRate {
		return obs.RStormLoss
	}
	return obs.RNone
}

// impairSend is trySend's slow path for an impaired egress: it assigns the
// frame's fate, stretches serialization for bandwidth degradation, inflates
// propagation for latency/jitter, and schedules delivery only for survivors.
// Doomed frames still hold the link for their (stretched) serialization time
// — the bits went onto the wire — and are recorded and released when
// serialization completes (txDoneHandler), keeping the link-busy and PFC
// accounting identical to the healthy path.
func (pt *Port) impairSend(p *Packet, tx sim.Time) {
	im := pt.imp
	if f := im.BandwidthFraction; f > 0 && f < 1 {
		tx = sim.Time(float64(tx) / f)
	}
	reason := im.fate(p)
	p.impairDrop = reason
	prop := pt.PropDelay
	if reason == obs.RNone {
		prop += im.ExtraLatency
		if im.Jitter > 0 {
			prop += sim.Time(im.rng.Int63n(int64(im.Jitter)))
		}
	}
	if peer := pt.Peer; peer.eng != pt.eng {
		p.txEpoch, p.peerEpoch = pt.epoch, 0
		pt.eng.AfterHandler(tx, &pt.txDoneH, p)
		if reason == obs.RNone {
			pt.eng.ScheduleRemote(peer.eng, pt.eng.Now()+tx+prop, &peer.rxH, p)
		}
		return
	}
	p.txEpoch, p.peerEpoch = pt.epoch, pt.Peer.epoch
	pt.eng.AfterHandler(tx, &pt.txDoneH, p)
	if reason == obs.RNone {
		pt.eng.AfterHandler(tx+prop, &pt.deliverH, p)
	}
}

// recordImpairDrop books a frame the impaired wire killed, at serialization
// end. The drop is post-dequeue, so it must not perturb the queue-depth
// replay: the recorded depth is the port's current depth, which the auditor
// checks against its replayed value (injected loss distinguishable from an
// accounting bug).
func (pt *Port) recordImpairDrop(p *Packet) {
	switch p.impairDrop {
	case obs.RImpairLoss:
		pt.Stats.ImpairDrops++
		pt.fab.Inc(obs.FImpairDrops)
	case obs.RCorrupt:
		pt.Stats.CorruptDrops++
		pt.fab.Inc(obs.FCorruptDrops)
	case obs.RStormLoss:
		pt.Stats.StormDrops++
		pt.fab.Inc(obs.FStormDrops)
	}
	pt.gsDrop(p)
	if pt.tr.On() {
		pt.rec(obs.KDrop, p.impairDrop, p, int64(pt.qBytes), int64(p.Size()))
	}
}
