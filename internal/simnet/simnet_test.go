package simnet

import (
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/sim"
)

const gbps100 = 100e9

func newPair(t *testing.T) (*sim.Engine, *Host, *Host) {
	t.Helper()
	eng := sim.New(1)
	a := NewHost(eng, "a", 1, gbps100, 600*sim.Nanosecond)
	b := NewHost(eng, "b", 2, gbps100, 600*sim.Nanosecond)
	Connect(a.NIC, b.NIC)
	return eng, a, b
}

func TestAddrMulticast(t *testing.T) {
	if Addr(10).IsMulticast() {
		t.Error("unicast address classified as multicast")
	}
	if !MulticastBase.IsMulticast() {
		t.Error("MulticastBase not classified as multicast")
	}
	if !(MulticastBase + 1234).IsMulticast() {
		t.Error("McstID not classified as multicast")
	}
}

func TestPacketSize(t *testing.T) {
	p := &Packet{Type: Data, Payload: 1024}
	if p.Size() != 1024+WireOverhead {
		t.Fatalf("data size = %d", p.Size())
	}
	ack := &Packet{Type: Ack}
	if ack.Size() != CtrlPacketBytes {
		t.Fatalf("ack size = %d", ack.Size())
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Type: Data, Dst: 5, DstQP: 9, Payload: 100}
	q := p.Clone()
	q.Dst = 7
	q.DstQP = 11
	if p.Dst != 5 || p.DstQP != 9 {
		t.Fatal("clone aliases the original header")
	}
}

func TestHostToHostDelivery(t *testing.T) {
	eng, a, b := newPair(t)
	delivered := false
	var at sim.Time
	// The host releases the packet after the handler returns: copy what the
	// assertion needs instead of retaining the pointer.
	b.Handler = func(p *Packet) { delivered = true; at = eng.Now() }
	p := &Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024}
	wantTx := a.NIC.TxTime(p.Size())
	a.Send(p)
	eng.Run()
	if !delivered {
		t.Fatal("packet not delivered")
	}
	want := wantTx + 600
	if at != want {
		t.Fatalf("delivered at %v, want %v (tx %v + prop 600ns)", at, want, wantTx)
	}
}

func TestSerializationBackToBack(t *testing.T) {
	eng, a, b := newPair(t)
	var times []sim.Time
	b.Handler = func(p *Packet) { times = append(times, eng.Now()) }
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024})
	}
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(times))
	}
	tx := a.NIC.TxTime(1024 + WireOverhead)
	for i := 1; i < 3; i++ {
		if d := times[i] - times[i-1]; d != tx {
			t.Fatalf("inter-arrival %v, want serialization %v", d, tx)
		}
	}
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	h1 := NewHost(eng, "h1", 1, gbps100, 600)
	h2 := NewHost(eng, "h2", 2, gbps100, 600)
	Connect(h1.NIC, sw.AddPort(gbps100, 600))
	Connect(h2.NIC, sw.AddPort(gbps100, 600))
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	var got int
	h2.Handler = func(p *Packet) { got++ }
	h1.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 256})
	eng.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
}

func TestSwitchNoRouteDrops(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	h1 := NewHost(eng, "h1", 1, gbps100, 600)
	Connect(h1.NIC, sw.AddPort(gbps100, 600))
	h1.Send(&Packet{Type: Data, Src: 1, Dst: 99, Payload: 64})
	eng.Run()
	if sw.NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1 (unroutable packets must be dropped, not forwarded)", sw.NoRouteDrops)
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	p1 := &Packet{Src: 1, Dst: 2, SrcQP: 10, DstQP: 20}
	p2 := &Packet{Src: 1, Dst: 2, SrcQP: 10, DstQP: 20}
	if flowHash(p1) != flowHash(p2) {
		t.Fatal("same flow hashed differently")
	}
	p3 := &Packet{Src: 1, Dst: 2, SrcQP: 11, DstQP: 20}
	if flowHash(p1) == flowHash(p3) {
		t.Log("different flows collided (allowed, but suspicious for FNV)")
	}
}

func TestQueueDropTail(t *testing.T) {
	eng := sim.New(1)
	// Slow egress so the queue actually builds.
	a := NewHost(eng, "a", 1, 1e9, 600)
	b := NewHost(eng, "b", 2, 1e9, 600)
	Connect(a.NIC, b.NIC)
	a.NIC.QueueLimit = 3000
	delivered := 0
	b.Handler = func(p *Packet) { delivered++ }
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1000})
	}
	eng.Run()
	if a.NIC.Stats.Drops == 0 {
		t.Fatal("no drops despite tiny queue")
	}
	if delivered+int(a.NIC.Stats.Drops) != 10 {
		t.Fatalf("delivered %d + drops %d != 10", delivered, a.NIC.Stats.Drops)
	}
}

func TestECNMarking(t *testing.T) {
	eng := sim.New(1)
	a := NewHost(eng, "a", 1, 1e9, 600) // 1 Gbps: queue builds fast
	b := NewHost(eng, "b", 2, 1e9, 600)
	Connect(a.NIC, b.NIC)
	a.NIC.ECN = ECNConfig{Enabled: true, KminBytes: 2000, KmaxBytes: 8000, PMax: 1.0}
	marks := 0
	b.Handler = func(p *Packet) {
		if p.ECN {
			marks++
		}
	}
	for i := 0; i < 50; i++ {
		a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1000})
	}
	eng.Run()
	if marks == 0 {
		t.Fatal("no ECN marks despite saturated queue")
	}
	if a.NIC.Stats.ECNMarks != uint64(marks) {
		t.Fatalf("stats marks %d != observed %d", a.NIC.Stats.ECNMarks, marks)
	}
}

func TestPFCPauseResume(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	sw.PFC = PFCConfig{Enabled: true, XOffBytes: 20000, XOnBytes: 10000}
	src := NewHost(eng, "src", 1, gbps100, 600)
	dst := NewHost(eng, "dst", 2, 1e9, 600) // slow egress builds switch queue
	pSrc := sw.AddPort(gbps100, 600)
	pDst := sw.AddPort(1e9, 600)
	Connect(src.NIC, pSrc)
	Connect(dst.NIC, pDst)
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	pDst.QueueLimit = 1 << 30 // PFC, not drops, must do the work
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }
	n := 200
	for i := 0; i < n; i++ {
		src.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1000})
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d, want %d (lossless)", delivered, n)
	}
	if pSrc.Stats.PauseSent == 0 {
		t.Fatal("no PAUSE sent despite 100:1 rate mismatch")
	}
	if pSrc.Stats.ResumeSent == 0 {
		t.Fatal("no RESUME sent")
	}
	if pDst.Stats.Drops != 0 {
		t.Fatalf("%d drops under PFC", pDst.Stats.Drops)
	}
}

func TestPFCPreventsDropsWithFiniteQueue(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	sw.PFC = PFCConfig{Enabled: true, XOffBytes: 64 << 10, XOnBytes: 32 << 10}
	src := NewHost(eng, "src", 1, gbps100, 600)
	dst := NewHost(eng, "dst", 2, 10e9, 600)
	pSrc := sw.AddPort(gbps100, 600)
	pDst := sw.AddPort(10e9, 600)
	Connect(src.NIC, pSrc)
	Connect(dst.NIC, pDst)
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	// Queue limit above XOFF plus in-flight headroom.
	pDst.QueueLimit = 256 << 10
	delivered := 0
	dst.Handler = func(p *Packet) { delivered++ }
	n := 2000
	for i := 0; i < n; i++ {
		src.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1000})
	}
	eng.Run()
	if delivered != n {
		t.Fatalf("delivered %d, want %d", delivered, n)
	}
	if pDst.Stats.Drops != 0 {
		t.Fatalf("%d drops despite PFC headroom", pDst.Stats.Drops)
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	sw.LossRate = 0.5
	h1 := NewHost(eng, "h1", 1, gbps100, 600)
	h2 := NewHost(eng, "h2", 2, gbps100, 600)
	Connect(h1.NIC, sw.AddPort(gbps100, 600))
	Connect(h2.NIC, sw.AddPort(gbps100, 600))
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	delivered := 0
	h2.Handler = func(p *Packet) { delivered++ }
	n := 1000
	for i := 0; i < n; i++ {
		h1.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 64})
	}
	eng.Run()
	if delivered+int(sw.DataDrops) != n {
		t.Fatalf("delivered %d + drops %d != %d", delivered, sw.DataDrops, n)
	}
	if delivered < 300 || delivered > 700 {
		t.Fatalf("delivered %d of %d at loss 0.5 — injector biased", delivered, n)
	}
}

func TestLossInjectionSparesControl(t *testing.T) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	sw.LossRate = 1.0
	h1 := NewHost(eng, "h1", 1, gbps100, 600)
	h2 := NewHost(eng, "h2", 2, gbps100, 600)
	Connect(h1.NIC, sw.AddPort(gbps100, 600))
	Connect(h2.NIC, sw.AddPort(gbps100, 600))
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	got := 0
	h2.Handler = func(p *Packet) { got++ }
	h1.Send(&Packet{Type: Ack, Src: 1, Dst: 2})
	h1.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 64})
	eng.Run()
	if got != 1 {
		t.Fatalf("got %d packets, want only the ACK to survive full data loss", got)
	}
}

// Property: TxTime is additive — transmitting a+b bytes takes as long as a
// then b (within integer rounding).
func TestTxTimeAdditive(t *testing.T) {
	eng := sim.New(1)
	h := NewHost(eng, "h", 1, gbps100, 0)
	f := func(a, b uint16) bool {
		whole := h.NIC.TxTime(int(a) + int(b))
		split := h.NIC.TxTime(int(a)) + h.NIC.TxTime(int(b))
		d := whole - split
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPortStatsCountTx(t *testing.T) {
	eng, a, b := newPair(t)
	b.Handler = func(p *Packet) {}
	a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 500})
	eng.Run()
	if a.NIC.Stats.TxPackets != 1 {
		t.Fatalf("TxPackets = %d", a.NIC.Stats.TxPackets)
	}
	if a.NIC.Stats.TxBytes != uint64(500+WireOverhead) {
		t.Fatalf("TxBytes = %d", a.NIC.Stats.TxBytes)
	}
}

func TestControlQueuePriority(t *testing.T) {
	eng := sim.New(1)
	a := NewHost(eng, "a", 1, 1e9, 600) // slow link so data queues up
	b := NewHost(eng, "b", 2, 1e9, 600)
	Connect(a.NIC, b.NIC)
	var order []PacketType
	b.Handler = func(p *Packet) { order = append(order, p.Type) }
	// Queue a burst of data, then one ACK: the ACK must overtake all but
	// the in-flight packet (Fig 7a's queue isolation).
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1000})
	}
	a.Send(&Packet{Type: Ack, Src: 1, Dst: 2})
	eng.Run()
	if len(order) != 11 {
		t.Fatalf("delivered %d", len(order))
	}
	if order[1] != Ack {
		t.Fatalf("ACK delivered at position %v, want right after the in-flight packet", order)
	}
}

func TestPriorityQueuesPreserveWork(t *testing.T) {
	eng := sim.New(1)
	a := NewHost(eng, "a", 1, 1e9, 600)
	b := NewHost(eng, "b", 2, 1e9, 600)
	Connect(a.NIC, b.NIC)
	n := 0
	b.Handler = func(p *Packet) { n++ }
	for i := 0; i < 50; i++ {
		a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 500})
		a.Send(&Packet{Type: Ack, Src: 1, Dst: 2})
	}
	eng.Run()
	if n != 100 {
		t.Fatalf("delivered %d of 100 across both queues", n)
	}
	if a.NIC.QueuedBytes() != 0 {
		t.Fatalf("%d bytes stranded in queues", a.NIC.QueuedBytes())
	}
}

// TestObsPacketTypeNamesInSync pins the duplicated packet-type name table in
// internal/obs (which cannot import simnet — simnet imports obs) to this
// package's PacketType.String. A new PacketType must be added to both.
func TestObsPacketTypeNamesInSync(t *testing.T) {
	for pt := Data; pt <= Raw; pt++ {
		if got := obs.PktTypeName(uint8(pt)); got != pt.String() {
			t.Errorf("obs.PktTypeName(%d) = %q, simnet %q", uint8(pt), got, pt.String())
		}
	}
	if got := obs.PktTypeName(uint8(Raw) + 1); got == Raw.String() {
		t.Errorf("obs names a packet type simnet does not have: %q", got)
	}
}
