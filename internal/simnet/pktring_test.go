package simnet

import (
	"testing"

	"repro/internal/sim"
)

// Burst formation (trySend trains) leans on pktRing invariants that the
// packet-path tests only exercise incidentally: growth while the ring is
// wrapped, urgent pushFront mixed into a train, and refilling after a full
// drain. These tests hit them directly with sentinel packets.

// ringPkts makes n distinguishable packets (PSN carries the identity).
func ringPkts(n int) []*Packet {
	ps := make([]*Packet, n)
	for i := range ps {
		ps[i] = &Packet{PSN: uint64(i)}
	}
	return ps
}

// drainCheck pops every element and verifies the PSN sequence.
func drainCheck(t *testing.T, r *pktRing, want []uint64) {
	t.Helper()
	if r.len() != len(want) {
		t.Fatalf("len = %d, want %d", r.len(), len(want))
	}
	for i, w := range want {
		if got := r.peekFront(); got.PSN != w {
			t.Fatalf("peek %d: PSN %d, want %d", i, got.PSN, w)
		}
		if got := r.popFront(); got.PSN != w {
			t.Fatalf("pop %d: PSN %d, want %d", i, got.PSN, w)
		}
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty after drain: len=%d", r.len())
	}
}

// TestPktRingGrowDuringWrap forces growth at the moment head has wrapped
// past the buffer's midpoint, the case where a naive copy would misorder
// the two segments.
func TestPktRingGrowDuringWrap(t *testing.T) {
	var r pktRing
	ps := ringPkts(32)
	// Fill the initial 8-slot buffer, then pop 5 to push head deep into it.
	for _, p := range ps[:8] {
		r.pushBack(p)
	}
	for i := 0; i < 5; i++ {
		if got := r.popFront(); got.PSN != uint64(i) {
			t.Fatalf("warmup pop: PSN %d, want %d", got.PSN, i)
		}
	}
	// Refill past capacity: the ring is wrapped (head=5, tail behind it)
	// when grow() fires.
	want := []uint64{5, 6, 7}
	for _, p := range ps[8:21] {
		r.pushBack(p)
		want = append(want, p.PSN)
	}
	drainCheck(t, &r, want)
}

// TestPktRingMixedFrontBack interleaves urgent pushFront (SendUrgent's path)
// with pushBack trains, including a pushFront that itself triggers growth.
func TestPktRingMixedFrontBack(t *testing.T) {
	var r pktRing
	ps := ringPkts(16)
	r.pushBack(ps[0])
	r.pushFront(ps[1])
	r.pushBack(ps[2])
	r.pushFront(ps[3])
	drainCheck(t, &r, []uint64{3, 1, 0, 2})

	// Fill to exactly capacity, then pushFront so grow() runs on the front
	// insertion path.
	for _, p := range ps[:8] {
		r.pushBack(p)
	}
	r.pushFront(ps[8])
	want := []uint64{8}
	for _, p := range ps[:8] {
		want = append(want, p.PSN)
	}
	drainCheck(t, &r, want)
}

// TestPktRingDrainRefill drains the ring to empty and refills it repeatedly
// across the wrap point, checking the steady-state cycle neither loses
// elements nor grows without bound.
func TestPktRingDrainRefill(t *testing.T) {
	var r pktRing
	ps := ringPkts(5)
	for round := 0; round < 10; round++ {
		for _, p := range ps {
			r.pushBack(p)
		}
		drainCheck(t, &r, []uint64{0, 1, 2, 3, 4})
	}
	if len(r.buf) != 8 {
		t.Fatalf("steady-state cycle grew the buffer to %d slots", len(r.buf))
	}
}

// TestFlightRingTrain pushes an arrival train through the flight ring with
// growth mid-train and a full drain-refill cycle, verifying FIFO order and
// the nondecreasing arrival times onArrive's single re-armable timer
// depends on.
func TestFlightRingTrain(t *testing.T) {
	var r flightRing
	ps := ringPkts(24)
	for round := 0; round < 3; round++ {
		for i, p := range ps {
			r.pushBack(flightEntry{p: p, at: 100 * sim.Time(i)})
		}
		last := sim.Time(-1)
		for i := range ps {
			if pk := r.peekFront(); pk.p.PSN != uint64(i) {
				t.Fatalf("round %d peek %d: PSN %d", round, i, pk.p.PSN)
			}
			e := r.popFront()
			if e.p.PSN != uint64(i) {
				t.Fatalf("round %d pop %d: PSN %d", round, i, e.p.PSN)
			}
			if e.at < last {
				t.Fatalf("round %d: arrival times regressed (%d after %d)", round, e.at, last)
			}
			last = e.at
		}
		if r.len() != 0 {
			t.Fatalf("round %d: ring not empty", round)
		}
	}
}
