// Package simnet models the network data plane: packets, links, ports with
// egress queues, ECN marking, PFC flow control, loss injection, and the two
// device kinds (hosts and switches). It is deliberately protocol-agnostic:
// the RoCE transport (internal/roce) and the Cepheus accelerator
// (internal/core) plug into it through small interfaces.
package simnet

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Addr is an IPv4-like 32-bit address. Multicast group IDs (McstID in the
// paper) live in the class-D range so IsMulticast can classify packets the
// way the accelerator's parser does.
type Addr uint32

// MulticastBase is the start of the class-D style multicast range used for
// McstIDs.
const MulticastBase Addr = 0xE0000000

// IsMulticast reports whether a is a multicast group ID (McstID).
func (a Addr) IsMulticast() bool { return a >= MulticastBase }

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// PacketType enumerates the wire-level packet kinds the simulator carries.
type PacketType uint8

const (
	// Data is a RoCE data packet (SEND or WRITE payload segment).
	Data PacketType = iota
	// Ack is a RoCE acknowledgement carrying a cumulative PSN.
	Ack
	// Nack is a RoCE negative acknowledgement carrying the receiver's
	// expected PSN (ePSN); it acknowledges all packets with PSN < ePSN.
	Nack
	// CNP is a DCQCN congestion notification packet.
	CNP
	// MRP is a Cepheus MFT Registration Protocol packet (UDP-based in the
	// paper; carried here with an opaque control payload).
	MRP
	// MRPConfirm is a receiver's registration confirmation back to the
	// controller.
	MRPConfirm
	// MRPReject signals a registration failure (e.g. switch MFT capacity
	// exhausted); it triggers the safeguard fallback.
	MRPReject
	// Pause is a PFC PAUSE frame for the single lossless priority.
	Pause
	// Resume is a PFC un-pause frame.
	Resume
	// Raw is an application-defined packet with no transport semantics.
	Raw
)

var packetTypeNames = [...]string{
	"DATA", "ACK", "NACK", "CNP", "MRP", "MRP-CONFIRM", "MRP-REJECT",
	"PAUSE", "RESUME", "RAW",
}

func (t PacketType) String() string {
	if int(t) < len(packetTypeNames) {
		return packetTypeNames[t]
	}
	return fmt.Sprintf("PacketType(%d)", uint8(t))
}

// WireOverhead is the per-packet on-wire overhead in bytes beyond the
// payload: Ethernet (14) + FCS (4) + preamble/IFG (20) + IPv4 (20) + UDP (8)
// + IB BTH (12) + ICRC (4) = 82.
const WireOverhead = 82

// CtrlPacketBytes is the wire size of a payload-less control packet
// (ACK/NACK/CNP/PAUSE); ACKs carry a 4-byte AETH.
const CtrlPacketBytes = WireOverhead + 4

// Packet is the unit the simulator moves. One struct covers all types; the
// transport and the accelerator read only the fields their type defines.
// Copies are cheap and explicit (see Clone) because switch replication must
// not alias rewritten headers.
type Packet struct {
	Type PacketType

	// Addressing. For Cepheus data packets the sender posts Dst = McstID,
	// DstQP = 0x1 (the virtual remote connection); leaf switches rewrite
	// these per receiver and set Src = McstID so feedback routes back into
	// the MFT.
	Src   Addr
	Dst   Addr
	SrcQP uint32
	DstQP uint32

	// PSN is the packet sequence number for Data, the cumulative
	// acknowledged PSN for Ack, and the expected PSN (ePSN) for Nack.
	// Virtual (non-wrapping) PSNs are used internally; see roce/psn.go for
	// the 24-bit wire arithmetic.
	PSN uint64

	// Payload is the application bytes carried; Size() adds wire overhead.
	Payload int

	// MsgID identifies the message a Data packet belongs to; Last marks the
	// final packet of the message.
	MsgID uint64
	Last  bool

	// Retrans marks go-back-N retransmissions (used by the accelerator's
	// retransmit filter and by statistics).
	Retrans bool

	// Reduce marks a many-to-one contribution flowing *up* the multicast
	// distribution tree toward the reduction root (the Cepheus reduction
	// extension; see internal/core). Value is the partial aggregate the
	// packet carries; switches combine values per PSN.
	Reduce bool
	Value  float64

	// ECN is the CE codepoint, set by congested egress queues.
	ECN bool

	// Stamp is the requester-side emission time of a Data packet (set by the
	// transport, zero otherwise). The responder reads it to observe
	// end-to-end delivery latency; Clone inherits it, so a replicated
	// multicast copy still carries the original emission time.
	Stamp sim.Time

	// WriteVA/WriteRKey model the RETH of an RDMA WRITE first packet. The
	// accelerator rewrites them per receiver from the MFT's MR info.
	WriteVA   uint64
	WriteRKey uint32

	// Meta carries control payloads (e.g. the MRP node list) opaquely.
	Meta any

	// acct tracks PFC ingress-buffer accounting inside a switch; it is
	// internal to simnet.
	acct *ingressAccount

	// txEpoch/peerEpoch snapshot both link endpoints' fail-stop epochs when
	// the frame starts serializing; delivery discards the frame if either end
	// flapped while it was in flight. Internal to Port.
	txEpoch   uint64
	peerEpoch uint64

	// enqAt is when the packet entered its current egress queue. Burst train
	// formation (Port.trySend) reads it to decide whether a queued frame
	// predates the formation instant: frames enqueued at the very nanosecond
	// a train forms are deferred to the next train, so the wire schedule is
	// independent of how an execution mode orders same-instant events.
	// Internal to Port.
	enqAt sim.Time

	// impairDrop, when nonzero, is the obs.Reason a gray-failure impairment
	// assigned this frame at dequeue: no delivery is scheduled and the frame
	// is recorded and released when serialization completes. Internal to
	// Port (impair.go).
	impairDrop obs.Reason

	// inPool marks a packet currently parked in the pool, so a second
	// Release of the same packet fails loudly instead of corrupting whoever
	// drew it from the pool in between. Internal to pool.go.
	inPool bool
}

// Size returns the on-wire size in bytes.
func (p *Packet) Size() int {
	if p.Payload == 0 {
		return CtrlPacketBytes
	}
	return p.Payload + WireOverhead
}

// Clone returns a pooled copy that can be rewritten and forwarded
// independently. Accounting and in-flight state are not inherited; Meta is
// shared (control payloads are immutable by convention). The clone is owned
// by the caller and must eventually reach a releasing sink.
func (p *Packet) Clone() *Packet {
	q := NewPacket()
	*q = *p
	q.acct = nil
	q.txEpoch, q.peerEpoch = 0, 0
	q.impairDrop = obs.RNone
	return q
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s %v:%d->%v:%d psn=%d len=%d", p.Type, p.Src, p.SrcQP, p.Dst, p.DstQP, p.PSN, p.Payload)
}
