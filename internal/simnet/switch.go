package simnet

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// SwitchHook lets the Cepheus accelerator (internal/core) sit in the
// forwarding path, the way the paper's FPGA board is attached to the
// Ethernet switch via ACL redirection. Handle returns true when it consumed
// the packet; false falls through to normal unicast forwarding.
type SwitchHook interface {
	Handle(sw *Switch, p *Packet, in *Port) bool
}

// PFCConfig enables priority flow control with ingress-buffer thresholds.
// The model uses explicit PAUSE/RESUME rather than timed quanta; the
// hysteresis between XOFF and XON plays the role of pause refreshing.
type PFCConfig struct {
	Enabled   bool
	XOffBytes int
	XOnBytes  int
}

// DefaultPFC is the lossless profile from DESIGN.md §5.
var DefaultPFC = PFCConfig{Enabled: true, XOffBytes: 2 << 20, XOnBytes: 1 << 20}

// ingressAccount tracks, per ingress port, how many bytes received on that
// port currently sit in this switch's egress queues. Crossing XOFF pauses
// the upstream transmitter; draining below XON resumes it.
type ingressAccount struct {
	sw     *Switch
	in     *Port
	bytes  int
	paused bool
}

func (a *ingressAccount) add(n int) {
	a.bytes += n
	cfg := a.sw.PFC
	if cfg.Enabled && !a.paused && a.bytes >= cfg.XOffBytes {
		a.paused = true
		a.in.Stats.PauseSent++
		f := NewPacket()
		f.Type = Pause
		a.in.SendUrgent(f)
	}
}

func (a *ingressAccount) release(n int) {
	a.bytes -= n
	cfg := a.sw.PFC
	if cfg.Enabled && a.paused && a.bytes <= cfg.XOnBytes {
		a.paused = false
		a.in.Stats.ResumeSent++
		f := NewPacket()
		f.Type = Resume
		a.in.SendUrgent(f)
	}
}

// Switch is a store-and-forward Ethernet switch with per-egress queues,
// ECMP unicast forwarding, optional PFC, optional random loss injection,
// and an optional accelerator hook.
type Switch struct {
	Name string
	PFC  PFCConfig

	// FIB maps a destination address to the set of equal-cost egress ports;
	// flows are hashed onto one of them. fibDst/fibPorts are Forward's
	// one-entry lookup cache (fibPorts nil = invalid).
	FIB      map[Addr][]int
	fibDst   Addr
	fibPorts []int

	// Hook, when set, sees every packet before unicast forwarding.
	Hook SwitchHook

	// LossRate drops each forwarded Data packet with this probability,
	// emulating the paper's "randomly discarding packets in the middle
	// switches" (Fig 13).
	LossRate float64

	// ControlLossRate drops forwarded control packets (MRP, confirmations,
	// ACK/NACK/CNP — everything except PFC) with this probability. Data-only
	// loss leaves the MRP retry and feedback-recovery paths untested; this
	// closes that blind spot.
	ControlLossRate float64

	// DataDrops counts loss-injected discards.
	DataDrops uint64

	// CtrlDrops counts control packets discarded by ControlLossRate.
	CtrlDrops uint64

	// CrashDrops counts packets that arrived or were emitted while the
	// switch was crashed.
	CrashDrops uint64

	// NoRouteDrops counts packets discarded for lack of a FIB entry. With a
	// static fabric this stays zero; once route repair removes unreachable
	// destinations from FIBs, in-flight packets (and go-back-N
	// retransmissions) addressed to them are legitimately unroutable and are
	// dropped here instead of crashing the simulation.
	NoRouteDrops uint64

	// OnRestart, when set, fires after Restart restores the ports — the
	// accelerator hooks it to model volatile state (the MFT) being wiped by
	// a crash.
	OnRestart func()

	Ports    []*Port
	accounts []*ingressAccount

	eng  *sim.Engine
	down bool

	// Observability: the switch-level flight-recorder handle (shared with
	// its ports and its attached accelerator; nil while tracing is off) and
	// the owning LP's fabric-counter shard.
	tr  *obs.Tracer
	fab *obs.FabricLP

	// gs is the owning LP's group-stats shard (nil while group attribution
	// is off); shared with the switch's ports like tr and fab.
	gs *obs.GroupLP
}

// SetTracer attaches the flight-recorder handle and propagates it to every
// port. Switch-scoped events (crash/loss/no-route drops) record with the
// ingress or egress port id where one exists, -1 otherwise.
func (sw *Switch) SetTracer(tr *obs.Tracer) {
	sw.tr = tr
	for _, pt := range sw.Ports {
		pt.SetTracer(tr)
	}
}

// Tracer returns the switch's flight-recorder handle (nil when tracing is
// off), so the attached accelerator can record under the same device.
func (sw *Switch) Tracer() *obs.Tracer { return sw.tr }

// SetFabric attaches the owning LP's fabric-counter shard to the switch and
// its ports.
func (sw *Switch) SetFabric(fab *obs.FabricLP) {
	sw.fab = fab
	for _, pt := range sw.Ports {
		pt.SetFabric(fab)
	}
}

// Fabric returns the switch's fabric shard (nil outside a Cluster).
func (sw *Switch) Fabric() *obs.FabricLP { return sw.fab }

// SetGroupStats attaches the owning LP's group-stats shard to the switch
// and its ports.
func (sw *Switch) SetGroupStats(gs *obs.GroupLP) {
	sw.gs = gs
	for _, pt := range sw.Ports {
		pt.SetGroupStats(gs)
	}
}

// GroupStats returns the switch's group-stats shard (nil while attribution
// is off), so the attached accelerator can book its drops against the same
// shard.
func (sw *Switch) GroupStats() *obs.GroupLP { return sw.gs }

// gsDrop attributes a switch-level drop to its multicast group (see
// Port.gsDrop for the classification rule).
func (sw *Switch) gsDrop(p *Packet) {
	if sw.gs == nil {
		return
	}
	switch {
	case p.Dst.IsMulticast():
		sw.gs.Drop(uint32(p.Dst), sw.eng.Now(), int64(p.Size()))
	case p.Src.IsMulticast():
		sw.gs.Drop(uint32(p.Src), sw.eng.Now(), int64(p.Size()))
	}
}

// recDrop captures a switch-level drop; callers guard with sw.tr.On().
func (sw *Switch) recDrop(r obs.Reason, p *Packet, port int) {
	sw.tr.Record(sw.eng.Now(), obs.KDrop, r, port, uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, 0, int64(p.Size()))
}

// NewSwitch creates a switch with no ports.
func NewSwitch(eng *sim.Engine, name string) *Switch {
	return &Switch{Name: name, eng: eng, FIB: make(map[Addr][]int)}
}

// DeviceName implements Device.
func (sw *Switch) DeviceName() string { return sw.Name }

// Engine returns the simulation engine driving this switch.
func (sw *Switch) Engine() *sim.Engine { return sw.eng }

// Rebind moves the switch — and all its ports — onto eng. Topology
// partitioning calls it while assigning devices to logical processes, before
// any traffic exists.
func (sw *Switch) Rebind(eng *sim.Engine) {
	sw.eng = eng
	for _, pt := range sw.Ports {
		pt.Rebind(eng)
	}
}

// AddPort creates a new port on the switch and returns it. Switch egress
// queues are not drop-tail bounded: shared-buffer occupancy is governed by
// PFC ingress accounting (when enabled), matching a lossless RoCE fabric;
// set QueueLimit explicitly to model a shallow-buffer switch.
func (sw *Switch) AddPort(rateBps float64, prop sim.Time) *Port {
	p := NewPort(sw.eng, sw, rateBps, prop)
	p.ID = len(sw.Ports)
	p.QueueLimit = 0
	p.ECN = DefaultECN
	sw.Ports = append(sw.Ports, p)
	sw.accounts = append(sw.accounts, &ingressAccount{sw: sw, in: p})
	return p
}

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.Ports) }

// Crashed reports whether the switch is in the failed state.
func (sw *Switch) Crashed() bool { return sw.down }

// Crash fail-stops the switch: every port goes down (halting egress and
// dropping queued and in-flight frames) and all further arrivals are
// discarded until Restart.
func (sw *Switch) Crash() {
	if sw.down {
		return
	}
	sw.down = true
	for _, pt := range sw.Ports {
		pt.SetDown(true)
	}
}

// Restart brings a crashed switch back: ports come up and ingress-buffer
// accounting resets (the shared buffer is volatile), then OnRestart fires so
// attached state — the accelerator's MFTs — can model its own volatility.
// The FIB survives, as reloaded switch configuration would.
func (sw *Switch) Restart() {
	if !sw.down {
		return
	}
	sw.down = false
	for _, a := range sw.accounts {
		a.bytes = 0
		a.paused = false
	}
	for _, pt := range sw.Ports {
		pt.SetDown(false)
	}
	if sw.OnRestart != nil {
		sw.OnRestart()
	}
}

// Receive implements Device.
func (sw *Switch) Receive(p *Packet, in *Port) {
	if sw.down {
		sw.CrashDrops++
		sw.fab.Inc(obs.FCrashDrops)
		sw.gsDrop(p)
		if sw.tr.On() {
			port := -1
			if in != nil {
				port = in.ID
			}
			sw.recDrop(obs.RCrash, p, port)
		}
		p.Release()
		return
	}
	switch p.Type {
	case Pause:
		in.setPaused(true)
		p.Release()
		return
	case Resume:
		in.setPaused(false)
		p.Release()
		return
	}
	if sw.Hook != nil && sw.Hook.Handle(sw, p, in) {
		return
	}
	sw.Forward(p, in)
}

// Forward routes p by its destination address using the FIB. Packets with
// no route are counted and dropped, as a real switch would.
func (sw *Switch) Forward(p *Packet, in *Port) {
	// One-entry FIB cache: unicast traffic through a switch is heavily
	// repetitive (one flow's worth of ACKs, one fallback destination), so
	// the common case is a compare instead of a map access. AddRoute and
	// ResetFIB invalidate it.
	ports := sw.fibPorts
	if p.Dst != sw.fibDst || ports == nil {
		ports = sw.FIB[p.Dst]
		if ports != nil {
			sw.fibDst, sw.fibPorts = p.Dst, ports
		}
	}
	if len(ports) == 0 {
		sw.NoRouteDrops++
		sw.fab.Inc(obs.FNoRouteDrops)
		sw.gsDrop(p)
		if sw.tr.On() {
			port := -1
			if in != nil {
				port = in.ID
			}
			sw.recDrop(obs.RNoRoute, p, port)
		}
		p.Release()
		return
	}
	out := ports[0]
	if len(ports) > 1 {
		out = ports[flowHash(p)%uint32(len(ports))]
	}
	sw.Output(p, out, in)
}

// Output transmits p through egress port out, applying loss injection and
// PFC ingress accounting. in may be nil for locally generated packets.
func (sw *Switch) Output(p *Packet, out int, in *Port) {
	if sw.down {
		sw.CrashDrops++
		sw.fab.Inc(obs.FCrashDrops)
		sw.gsDrop(p)
		if sw.tr.On() {
			sw.recDrop(obs.RCrash, p, out)
		}
		p.Release()
		return
	}
	if sw.LossRate > 0 && p.Type == Data && sw.eng.Rand().Float64() < sw.LossRate {
		sw.DataDrops++
		sw.fab.Inc(obs.FDataDrops)
		sw.gsDrop(p)
		if sw.tr.On() {
			sw.recDrop(obs.RLoss, p, out)
		}
		p.Release()
		return
	}
	if sw.ControlLossRate > 0 && isLossyControl(p.Type) && sw.eng.Rand().Float64() < sw.ControlLossRate {
		sw.CtrlDrops++
		sw.fab.Inc(obs.FCtrlDrops)
		sw.gsDrop(p)
		if sw.tr.On() {
			sw.recDrop(obs.RCtrlLoss, p, out)
		}
		p.Release()
		return
	}
	if sw.PFC.Enabled && in != nil && in.Dev == Device(sw) {
		p.acct = sw.accounts[in.ID]
	}
	sw.Ports[out].Send(p)
}

// isLossyControl classifies the control traffic ControlLossRate applies to.
// PFC PAUSE/RESUME stay lossless: they model MAC-level frames on a dedicated
// path, and losing them would deadlock the flow-control model rather than
// exercise a protocol retry.
func isLossyControl(t PacketType) bool {
	switch t {
	case MRP, MRPConfirm, MRPReject, Ack, Nack, CNP:
		return true
	}
	return false
}

// AddRoute appends an equal-cost egress port for dst.
func (sw *Switch) AddRoute(dst Addr, port int) {
	sw.FIB[dst] = append(sw.FIB[dst], port)
	sw.fibDst, sw.fibPorts = 0, nil
}

// SetRoutes installs the full equal-cost port set for dst in one map write.
// The switch takes ownership of ports without copying; callers that share one
// slice across destinations must pass it with len == cap so a later AddRoute
// append reallocates instead of mutating the shared backing array.
func (sw *Switch) SetRoutes(dst Addr, ports []int) {
	sw.FIB[dst] = ports
	sw.fibDst, sw.fibPorts = 0, nil
}

// ResetFIB discards every route (and the lookup cache) ahead of a rebuild.
func (sw *Switch) ResetFIB() {
	sw.FIB = make(map[Addr][]int)
	sw.fibDst, sw.fibPorts = 0, nil
}

// flowHash spreads flows across ECMP members (FNV-1a over the 5-tuple-ish
// fields).
func flowHash(p *Packet) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 16777619
			v >>= 8
		}
	}
	mix(uint32(p.Src))
	mix(uint32(p.Dst))
	mix(p.SrcQP)
	mix(p.DstQP)
	return h
}
