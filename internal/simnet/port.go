package simnet

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Device is anything that terminates a link: a host NIC or a switch.
type Device interface {
	// Receive is called when a packet finishes arriving on one of the
	// device's ports.
	Receive(p *Packet, in *Port)
	// DeviceName identifies the device in traces and errors.
	DeviceName() string
}

// ECNConfig is RED-style marking at an egress queue, as DCQCN expects.
// A packet is CE-marked with probability 0 below KminBytes, PMax above
// KmaxBytes, and linearly in between, evaluated against the instantaneous
// queue depth at enqueue.
type ECNConfig struct {
	Enabled   bool
	KminBytes int
	KmaxBytes int
	PMax      float64
}

// DefaultECN is the marking profile used on 100Gbps ports (see DESIGN.md §5).
var DefaultECN = ECNConfig{Enabled: true, KminBytes: 100 << 10, KmaxBytes: 400 << 10, PMax: 0.2}

// PortStats counts what happened on a port's egress side.
type PortStats struct {
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64
	ECNMarks   uint64
	MaxQueued  int
	PauseSent  uint64
	ResumeSent uint64

	// FaultDrops counts frames lost to a dead link: queued frames purged
	// when the port went down, frames enqueued while down, and in-flight
	// frames whose link failed before delivery. It is a subset of nothing —
	// a separate category from congestion Drops.
	FaultDrops uint64

	// Gray-failure impairment drops (see impair.go), each its own category:
	// ImpairDrops counts frames lost to independent or burst wire loss,
	// CorruptDrops frames killed by injected CRC corruption, StormDrops
	// control frames lost to a control-plane loss storm.
	ImpairDrops  uint64
	CorruptDrops uint64
	StormDrops   uint64
}

// Port is one end of a full-duplex link. The port owns its egress queue and
// serializes transmissions at the link rate; the peer's device receives each
// packet after the serialization plus propagation delay.
type Port struct {
	Dev  Device
	ID   int // index within the owning device
	Peer *Port

	RateBps   float64  // link bandwidth in bits/second
	PropDelay sim.Time // one-way propagation (plus per-hop pipeline) delay

	QueueLimit int // egress queue capacity in bytes (0 = unlimited)
	ECN        ECNConfig

	// Backpressure to the attached sender: when the queue drains to
	// LowWater bytes or below (and after a PFC resume), OnDrain fires so a
	// transport can resume injecting — the way an RNIC stops posting to a
	// paused or full MAC instead of dropping.
	LowWater int
	OnDrain  func()

	Stats PortStats

	// MaxTrain caps how many back-to-back frames one transmission train may
	// commit (0 means DefaultMaxTrain). Larger trains amortize more scheduler
	// work per frame but coarsen PFC pause/drain reaction to the train
	// boundary; see DESIGN.md §13.
	MaxTrain int

	eng    *sim.Engine
	queues [2]pktRing // [0] control/feedback (strict priority), [1] data
	qBytes int
	busy   bool // per-frame (impaired) path only; burst path uses busyUntil
	paused bool

	// Burst transmission state. busyUntil is when the committed train
	// finishes serializing: the link is busy while now < busyUntil, with no
	// standing txDone event — if the train drained the queue, nothing is
	// scheduled at all, and an enqueue arriving mid-serialization arms txT
	// for the train boundary on demand (txArmedAt remembers the deadline it
	// is armed for, so repeated enqueues on a busy port stay O(1)). flight
	// holds locally delivered frames from commit until arrival, drained
	// FIFO by the re-armable rxT chain — one heap entry per busy link
	// instead of one per in-flight frame. Both timers are created lazily on
	// first use so they bind the port's final (possibly partitioned)
	// engine, after Rebind.
	busyUntil sim.Time
	txArmedAt sim.Time
	txT       *sim.Timer
	rxT       *sim.Timer
	flight    flightRing

	// Fail-stop state: a down port neither transmits nor accepts frames.
	// epoch increments on every transition so frames already in flight when
	// the link died are discarded at delivery time.
	down  bool
	epoch uint64

	// Gray-failure state: nil on a healthy egress (the nil check is the
	// entire disabled cost); see impair.go.
	imp *impairState

	// Typed event handlers, allocated once with the port so per-packet
	// scheduling boxes nothing (&pt.txDoneH is an interior pointer).
	txDoneH  txDoneHandler
	deliverH deliverHandler
	rxH      rxHandler

	// Observability. tr is the owning device's flight-recorder handle (nil
	// while tracing is off — the nil check is the entire disabled cost); fab
	// is the owning LP's fabric-counter shard (nil-safe); QHist observes the
	// egress queue depth at every enqueue.
	tr    *obs.Tracer
	fab   *obs.FabricLP
	QHist obs.Histogram

	// gs is the owning LP's group-stats shard (nil while group attribution
	// is off — the nil check is the entire disabled cost). Ports only
	// attribute drops: delivery and retransmission are booked end-host
	// side, where the group is known without classification.
	gs *obs.GroupLP
}

// SetTracer attaches the owning device's flight-recorder handle. Port events
// record under that device id with Port distinguishing the egress.
func (pt *Port) SetTracer(tr *obs.Tracer) { pt.tr = tr }

// SetFabric attaches the owning LP's fabric-counter shard.
func (pt *Port) SetFabric(fab *obs.FabricLP) { pt.fab = fab }

// SetGroupStats attaches the owning LP's group-stats shard.
func (pt *Port) SetGroupStats(gs *obs.GroupLP) { pt.gs = gs }

// gsDrop attributes one dropped frame to its multicast group: forward-path
// frames by destination, group-sourced feedback (whose Src the leaf accel
// rewrote to the McstID) by source. No-op for unicast-only frames or while
// attribution is off; drop paths are cold, so the map lookup inside is fine.
func (pt *Port) gsDrop(p *Packet) {
	if pt.gs == nil {
		return
	}
	switch {
	case p.Dst.IsMulticast():
		pt.gs.Drop(uint32(p.Dst), pt.eng.Now(), int64(p.Size()))
	case p.Src.IsMulticast():
		pt.gs.Drop(uint32(p.Src), pt.eng.Now(), int64(p.Size()))
	}
}

// rec captures one packet-scoped flight-recorder event; callers guard with
// pt.tr.On(). a is the kind-specific payload (usually queue depth in bytes);
// size is p's wire size, passed in so the hot callers (enqueue/dequeue, which
// have it at hand) keep this wrapper within the inlining budget — recording a
// traced event then costs one call, not two.
func (pt *Port) rec(k obs.Kind, r obs.Reason, p *Packet, a, size int64) {
	pt.tr.Record(pt.eng.Now(), k, r, pt.ID, uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, a, size)
}

// DefaultMaxTrain bounds one transmission train to 32 frames: long enough to
// amortize the per-train timer over a deep queue, short enough that pause and
// drain reactions (which wait for the train boundary) stay within a few
// microseconds of wire time at 100Gbps.
const DefaultMaxTrain = 32

// txDoneHandler fires when a frame finishes serializing on the per-frame
// (impaired) path: the link is free for the next frame and the frame's
// ingress-buffer reservation is returned. The healthy burst path releases
// accounting at commit time and uses the txT timer instead.
type txDoneHandler struct{ pt *Port }

func (h *txDoneHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	pt.busy = false
	if p.acct != nil {
		p.acct.release(p.Size())
		p.acct = nil
	}
	if p.impairDrop != obs.RNone {
		// The impaired wire killed this frame (impair.go); no delivery was
		// scheduled, so serialization end is where it dies.
		pt.recordImpairDrop(p)
		p.Release()
	}
	if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
		pt.OnDrain()
	}
	pt.trySend()
}

// deliverHandler fires when a frame finishes propagating: the peer device
// receives it, unless either end of the link flapped while it was in flight.
type deliverHandler struct{ pt *Port }

func (h *deliverHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	peer := pt.Peer
	if pt.epoch != p.txEpoch || peer.epoch != p.peerEpoch {
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, 0, int64(p.Size()))
		}
		p.Release()
		return
	}
	peer.Dev.Receive(p, peer)
}

// rxHandler is the receiving side of a cross-LP link: it runs on the
// RECEIVING port's engine after the frame's serialization plus propagation
// delay, which is when ownership of the packet transfers between logical
// processes. Runtime fault injection is restricted to sequential runs (see
// DESIGN.md §9), so unlike deliverHandler it needs no epoch comparison —
// only the fail-stop state of its own end, which its own LP owns.
type rxHandler struct{ pt *Port }

func (h *rxHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	if pt.down {
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, 0, int64(p.Size()))
		}
		p.Release()
		return
	}
	pt.Dev.Receive(p, pt)
}

// queue classes (Fig 7a's queue system: physical-queue-level isolation,
// with the multiplexer giving feedback strict priority over bulk data).
const (
	qCtrl = 0
	qData = 1
)

// pktRing is a FIFO of packets backed by a reusable circular buffer. A
// plain slice with append/[1:] leaks its front capacity, so a busy port's
// steady enqueue/dequeue cycle reallocates on nearly every frame; the ring
// allocates only when the queue outgrows its high-water mark.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]*Packet, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *pktRing) pushBack(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) pushFront(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head + len(r.buf) - 1) % len(r.buf)
	r.buf[r.head] = p
	r.n++
}

func (r *pktRing) popFront() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

// peekFront returns the head packet without dequeuing it. The caller must
// have checked len() > 0.
func (r *pktRing) peekFront() *Packet { return r.buf[r.head] }

// flightEntry is one committed frame riding the wire toward the peer: the
// packet plus its arrival time (serialization end + propagation).
type flightEntry struct {
	p  *Packet
	at sim.Time
}

// flightRing is the FIFO of committed-but-undelivered frames on a local
// link. Arrival times are nondecreasing (frames of one link serialize
// back-to-back and share the propagation delay), so one re-armable timer
// walking the ring replaces a heap entry per in-flight frame.
type flightRing struct {
	buf  []flightEntry
	head int
	n    int
}

func (r *flightRing) len() int { return r.n }

func (r *flightRing) grow() {
	c := len(r.buf) * 2 // capacity stays a power of two for the index masks
	if c == 0 {
		c = 8
	}
	nb := make([]flightEntry, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

func (r *flightRing) pushBack(e flightEntry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

func (r *flightRing) popFront() flightEntry {
	e := r.buf[r.head]
	r.buf[r.head].p = nil // drop the packet reference; pool reuse needs no zeroed at
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *flightRing) peekFront() *flightEntry { return &r.buf[r.head] }

func classOf(p *Packet) int {
	switch p.Type {
	case Data, Raw:
		return qData
	default:
		return qCtrl
	}
}

// NewPort creates an unconnected port owned by dev.
func NewPort(eng *sim.Engine, dev Device, rateBps float64, prop sim.Time) *Port {
	pt := &Port{Dev: dev, RateBps: rateBps, PropDelay: prop, eng: eng, QueueLimit: 4 << 20}
	pt.txDoneH.pt = pt
	pt.deliverH.pt = pt
	pt.rxH.pt = pt
	return pt
}

// Rebind moves the port onto eng. Topology partitioning calls it while
// assigning devices to logical processes, before any traffic exists; a port
// with queued or in-flight frames must never be rebound.
func (pt *Port) Rebind(eng *sim.Engine) { pt.eng = eng }

// Engine returns the engine the port schedules on (its LP's engine under a
// partitioned run).
func (pt *Port) Engine() *sim.Engine { return pt.eng }

// Connect wires two ports as a full-duplex link. Both sides must be
// unconnected.
func Connect(a, b *Port) {
	if a.Peer != nil || b.Peer != nil {
		panic("simnet: port already connected")
	}
	a.Peer = b
	b.Peer = a
}

// QueuedBytes reports the egress queue depth.
func (pt *Port) QueuedBytes() int { return pt.qBytes }

// Down reports whether the port is failed (fail-stop).
func (pt *Port) Down() bool { return pt.down }

// SetDown transitions the port's fail-stop state. Going down purges the
// egress queue (releasing any PFC accounting) and invalidates frames
// already serialized onto the wire; coming up clears a stale PFC pause so
// the link restarts from a clean slate. Both directions of a link fail
// independently — fault injectors typically flip both ends.
func (pt *Port) SetDown(down bool) {
	if pt.down == down {
		return
	}
	pt.down = down
	pt.epoch++
	if down {
		pt.purge()
		return
	}
	pt.paused = false
	pt.trySend()
}

// purge discards every queued frame, counting them as fault drops and
// releasing ingress-buffer accounting so PFC cannot deadlock on a dead link.
func (pt *Port) purge() {
	for cls := range pt.queues {
		for pt.queues[cls].len() > 0 {
			p := pt.queues[cls].popFront()
			pt.Stats.Drops++
			pt.Stats.FaultDrops++
			pt.fab.Inc(obs.FFaultDrops)
			pt.gsDrop(p)
			if pt.tr.On() {
				pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
			}
			if p.acct != nil {
				p.acct.release(p.Size())
				p.acct = nil
			}
			p.Release()
		}
	}
	pt.qBytes = 0
}

// Paused reports whether PFC has paused this egress.
func (pt *Port) Paused() bool { return pt.paused }

// PeerIsHost reports whether the far end of the link is a host. The Cepheus
// accelerator uses this to decide where feedback header rewriting happens
// (at the leaf switch adjacent to the sender).
func (pt *Port) PeerIsHost() bool {
	if pt.Peer == nil {
		return false
	}
	_, ok := pt.Peer.Dev.(*Host)
	return ok
}

// TxTime returns the serialization delay for n bytes at this port's rate.
func (pt *Port) TxTime(n int) sim.Time {
	return sim.Time(float64(n*8) / pt.RateBps * 1e9)
}

// Send enqueues p for transmission, applying ECN marking and drop-tail.
func (pt *Port) Send(p *Packet) {
	pt.enqueue(p, false)
}

// SendUrgent enqueues p at the head of the control queue, bypassing ECN
// and the queue limit. It is used for PFC PAUSE/RESUME frames, which a
// real switch emits from a dedicated high-priority path.
func (pt *Port) SendUrgent(p *Packet) {
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
		}
		p.Release()
		return
	}
	p.enqAt = pt.eng.Now()
	pt.queues[qCtrl].pushFront(p)
	pt.qBytes += p.Size()
	pt.QHist.Observe(int64(pt.qBytes))
	if pt.tr.On() {
		pt.rec(obs.KEnqueue, obs.RNone, p, int64(pt.qBytes), int64(p.Size()))
	}
	pt.trySend()
}

func (pt *Port) enqueue(p *Packet, urgent bool) {
	size := p.Size()
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
		}
		p.Release()
		return
	}
	if pt.QueueLimit > 0 && pt.qBytes+size > pt.QueueLimit {
		pt.Stats.Drops++
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RQueueLimit, p, int64(pt.qBytes), int64(size))
		}
		// The packet never occupied the queue; no accounting to release.
		p.Release()
		return
	}
	if mp := pt.markProbability(); pt.ECN.Enabled && p.Type == Data && mp > 0 {
		if pt.eng.Rand().Float64() < mp {
			p.ECN = true
			pt.Stats.ECNMarks++
			if pt.tr.On() {
				pt.rec(obs.KECNMark, obs.RNone, p, int64(pt.qBytes), int64(size))
			}
		}
	}
	if p.acct != nil {
		p.acct.add(size)
	}
	cls := classOf(p)
	p.enqAt = pt.eng.Now()
	pt.queues[cls].pushBack(p)
	pt.qBytes += size
	pt.QHist.Observe(int64(pt.qBytes))
	if pt.tr.On() {
		pt.rec(obs.KEnqueue, obs.RNone, p, int64(pt.qBytes), int64(size))
	}
	if pt.qBytes > pt.Stats.MaxQueued {
		pt.Stats.MaxQueued = pt.qBytes
	}
	pt.trySend()
}

func (pt *Port) markProbability() float64 {
	q := pt.qBytes
	switch {
	case q <= pt.ECN.KminBytes:
		return 0
	case q >= pt.ECN.KmaxBytes:
		return 1
	default:
		return pt.ECN.PMax * float64(q-pt.ECN.KminBytes) / float64(pt.ECN.KmaxBytes-pt.ECN.KminBytes)
	}
}

// trySend commits a train of back-to-back frames to the wire in one pass
// (the burst hot path, DESIGN.md §13). Every committed frame dequeues,
// records, and schedules its delivery immediately. If frames remain queued
// at the train boundary, one txT firing at serialization end forms the next
// train; if the train drained the queue, nothing is scheduled at all — the
// busyUntil deadline alone marks the link busy, and an enqueue arriving
// mid-serialization arms txT on demand. The train credits the engine with
// the per-frame events it elided so event accounting stays comparable
// across scheduler generations.
//
// Train formation must be independent of how an execution mode orders
// same-instant events: a frame enqueued at the very nanosecond the train
// forms may land before or after this call depending on tie order alone, so
// only frames whose enqAt predates the formation instant extend a train.
// The priority head is taken regardless when nothing older is queued — then
// the formation was triggered by that frame's own enqueue, which is not a
// tie. Excluded frames go on the next train at the same wire time either
// way.
func (pt *Port) trySend() {
	if pt.busy || pt.paused || pt.down || pt.qBytes == 0 {
		return
	}
	if pt.Peer == nil {
		panic(fmt.Sprintf("simnet: %s port %d transmitting on unconnected link", pt.Dev.DeviceName(), pt.ID))
	}
	now := pt.eng.Now()
	if now < pt.busyUntil {
		// Mid-serialization enqueue (or a port impaired mid-train): make
		// sure the next formation is scheduled at the train boundary.
		pt.armTx(now)
		return
	}
	if pt.imp != nil {
		pt.trySendImpaired()
		return
	}
	peer := pt.Peer
	cross := peer.eng != pt.eng
	end := now
	limit := pt.MaxTrain
	if limit <= 0 {
		limit = DefaultMaxTrain
	}
	n := 0
	for n < limit && !pt.paused && !pt.down && pt.qBytes > 0 {
		// Strict priority among frames that predate the formation instant:
		// control/feedback before bulk data.
		cls := -1
		var p *Packet
		if pt.queues[qCtrl].len() > 0 {
			if q := pt.queues[qCtrl].peekFront(); q.enqAt < now {
				cls, p = qCtrl, q
			}
		}
		if cls < 0 && pt.queues[qData].len() > 0 {
			if q := pt.queues[qData].peekFront(); q.enqAt < now {
				cls, p = qData, q
			}
		}
		if cls < 0 {
			if n > 0 {
				break
			}
			cls = qCtrl
			if pt.queues[qCtrl].len() == 0 {
				cls = qData
			}
			p = pt.queues[cls].peekFront()
		}
		pt.queues[cls].popFront()
		size := p.Size()
		pt.qBytes -= size
		if pt.tr.On() {
			pt.rec(obs.KDequeue, obs.RNone, p, int64(pt.qBytes), int64(size))
		}
		pt.Stats.TxPackets++
		pt.Stats.TxBytes += uint64(size)
		end += pt.TxTime(size)
		if p.acct != nil {
			p.acct.release(size)
			p.acct = nil
		}
		if cross {
			// Cross-LP link: delivery — and packet ownership — hands off to
			// the receiving LP. ScheduleRemote appends to this LP's
			// current-parity outbox for the peer and marks the peer dirty in
			// the source's sparse destination list; the peer's own worker
			// sorts and injects the batch at the start of the next window
			// (DESIGN.md §14), so no lock or channel is touched here. The
			// propagation delay of every cross-LP link is at least the
			// partition's lookahead, so the arrival always lands at or
			// beyond the current window's end. The peer's fail-stop epoch
			// belongs to the peer's LP and cannot be read here; runtime
			// fault injection is sequential-only (DESIGN.md §9).
			p.txEpoch, p.peerEpoch = pt.epoch, 0
			pt.eng.ScheduleRemote(peer.eng, end+pt.PropDelay, &peer.rxH, p)
		} else {
			p.txEpoch, p.peerEpoch = pt.epoch, peer.epoch
			pt.commitFlight(p, end+pt.PropDelay)
		}
		n++
		if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
			pt.OnDrain()
		}
	}
	pt.busyUntil = end
	if pt.qBytes > 0 {
		// Frames remain (deferred same-instant arrivals or the MaxTrain
		// cap): the txT firing at the boundary is this train's one txDone.
		pt.armTx(now)
		pt.eng.Credit(uint64(n - 1))
	} else {
		// The train drained the queue: no txDone event at all. Credit the
		// whole train's worth so the ledger still reads one txDone plus one
		// arrival per frame.
		pt.eng.Credit(uint64(n))
	}
}

// armTx schedules the next train formation at the busyUntil boundary.
// txArmedAt makes re-arming idempotent, so every enqueue on a busy port
// costs a comparison, not a heap re-key.
func (pt *Port) armTx(now sim.Time) {
	if pt.txArmedAt == pt.busyUntil {
		return
	}
	if pt.txT == nil {
		pt.txT = pt.eng.NewTimer(pt.onTxDone)
	}
	pt.txT.Reset(pt.busyUntil - now)
	pt.txArmedAt = pt.busyUntil
}

// onTxDone fires at a train boundary that had more frames queued (or saw an
// enqueue mid-serialization): form the next train. Ingress accounting and
// drain callbacks already ran at commit time.
func (pt *Port) onTxDone() {
	pt.txArmedAt = 0
	pt.trySend()
}

// trySendImpaired is the per-frame transmit path for an impaired egress:
// gray-failure fates draw from the port RNG in a fixed per-frame order, and
// jittered arrivals are not FIFO, so impaired ports keep the
// one-event-per-frame schedule (txDoneH/deliverH) instead of trains.
func (pt *Port) trySendImpaired() {
	cls := qCtrl
	if pt.queues[qCtrl].len() == 0 {
		cls = qData
	}
	p := pt.queues[cls].popFront()
	size := p.Size()
	pt.qBytes -= size
	if pt.tr.On() {
		pt.rec(obs.KDequeue, obs.RNone, p, int64(pt.qBytes), int64(size))
	}
	pt.busy = true
	tx := pt.TxTime(size)
	pt.Stats.TxPackets++
	pt.Stats.TxBytes += uint64(size)
	pt.impairSend(p, tx)
}

// commitFlight schedules a committed frame's local arrival through the
// flight ring, arming the rxT chain when the ring was idle.
func (pt *Port) commitFlight(p *Packet, at sim.Time) {
	first := pt.flight.len() == 0
	pt.flight.pushBack(flightEntry{p: p, at: at})
	if first {
		if pt.rxT == nil {
			pt.rxT = pt.eng.NewTimer(pt.onArrive)
		}
		pt.rxT.Reset(at - pt.eng.Now())
	}
}

// onArrive delivers the flight ring's head frame to the peer device,
// re-arming for the next arrival first so the receive path — which may
// forward and commit further frames — sees a consistent chain.
func (pt *Port) onArrive() {
	fe := pt.flight.popFront()
	if pt.flight.len() > 0 {
		// The timer fired exactly at fe.at, so it is "now" without an
		// engine clock read.
		pt.rxT.Reset(pt.flight.peekFront().at - fe.at)
	}
	p := fe.p
	peer := pt.Peer
	if pt.epoch != p.txEpoch || peer.epoch != p.peerEpoch {
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		pt.gsDrop(p)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, 0, int64(p.Size()))
		}
		p.Release()
		return
	}
	peer.Dev.Receive(p, peer)
}

// setPaused flips PFC pause state on this egress.
func (pt *Port) setPaused(v bool) {
	if pt.paused != v && pt.tr.On() {
		k := obs.KPFCResume
		if v {
			k = obs.KPFCPause
		}
		pt.tr.Record(pt.eng.Now(), k, obs.RNone, pt.ID, 0, 0, 0, 0, 0, 0, 0, int64(pt.qBytes), 0)
	}
	pt.paused = v
	if !v {
		if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
			pt.OnDrain()
		}
		pt.trySend()
	}
}
