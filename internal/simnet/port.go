package simnet

import (
	"fmt"

	"repro/internal/sim"
)

// Device is anything that terminates a link: a host NIC or a switch.
type Device interface {
	// Receive is called when a packet finishes arriving on one of the
	// device's ports.
	Receive(p *Packet, in *Port)
	// DeviceName identifies the device in traces and errors.
	DeviceName() string
}

// ECNConfig is RED-style marking at an egress queue, as DCQCN expects.
// A packet is CE-marked with probability 0 below KminBytes, PMax above
// KmaxBytes, and linearly in between, evaluated against the instantaneous
// queue depth at enqueue.
type ECNConfig struct {
	Enabled   bool
	KminBytes int
	KmaxBytes int
	PMax      float64
}

// DefaultECN is the marking profile used on 100Gbps ports (see DESIGN.md §5).
var DefaultECN = ECNConfig{Enabled: true, KminBytes: 100 << 10, KmaxBytes: 400 << 10, PMax: 0.2}

// PortStats counts what happened on a port's egress side.
type PortStats struct {
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64
	ECNMarks   uint64
	MaxQueued  int
	PauseSent  uint64
	ResumeSent uint64

	// FaultDrops counts frames lost to a dead link: queued frames purged
	// when the port went down, frames enqueued while down, and in-flight
	// frames whose link failed before delivery. It is a subset of nothing —
	// a separate category from congestion Drops.
	FaultDrops uint64
}

// Port is one end of a full-duplex link. The port owns its egress queue and
// serializes transmissions at the link rate; the peer's device receives each
// packet after the serialization plus propagation delay.
type Port struct {
	Dev  Device
	ID   int // index within the owning device
	Peer *Port

	RateBps   float64  // link bandwidth in bits/second
	PropDelay sim.Time // one-way propagation (plus per-hop pipeline) delay

	QueueLimit int // egress queue capacity in bytes (0 = unlimited)
	ECN        ECNConfig

	// Backpressure to the attached sender: when the queue drains to
	// LowWater bytes or below (and after a PFC resume), OnDrain fires so a
	// transport can resume injecting — the way an RNIC stops posting to a
	// paused or full MAC instead of dropping.
	LowWater int
	OnDrain  func()

	Stats PortStats

	eng    *sim.Engine
	queues [2][]*Packet // [0] control/feedback (strict priority), [1] data
	qBytes int
	busy   bool
	paused bool

	// Fail-stop state: a down port neither transmits nor accepts frames.
	// epoch increments on every transition so frames already in flight when
	// the link died are discarded at delivery time.
	down  bool
	epoch uint64
}

// queue classes (Fig 7a's queue system: physical-queue-level isolation,
// with the multiplexer giving feedback strict priority over bulk data).
const (
	qCtrl = 0
	qData = 1
)

func classOf(p *Packet) int {
	switch p.Type {
	case Data, Raw:
		return qData
	default:
		return qCtrl
	}
}

// NewPort creates an unconnected port owned by dev.
func NewPort(eng *sim.Engine, dev Device, rateBps float64, prop sim.Time) *Port {
	return &Port{Dev: dev, RateBps: rateBps, PropDelay: prop, eng: eng, QueueLimit: 4 << 20}
}

// Connect wires two ports as a full-duplex link. Both sides must be
// unconnected.
func Connect(a, b *Port) {
	if a.Peer != nil || b.Peer != nil {
		panic("simnet: port already connected")
	}
	a.Peer = b
	b.Peer = a
}

// QueuedBytes reports the egress queue depth.
func (pt *Port) QueuedBytes() int { return pt.qBytes }

// Down reports whether the port is failed (fail-stop).
func (pt *Port) Down() bool { return pt.down }

// SetDown transitions the port's fail-stop state. Going down purges the
// egress queue (releasing any PFC accounting) and invalidates frames
// already serialized onto the wire; coming up clears a stale PFC pause so
// the link restarts from a clean slate. Both directions of a link fail
// independently — fault injectors typically flip both ends.
func (pt *Port) SetDown(down bool) {
	if pt.down == down {
		return
	}
	pt.down = down
	pt.epoch++
	if down {
		pt.purge()
		return
	}
	pt.paused = false
	pt.trySend()
}

// purge discards every queued frame, counting them as fault drops and
// releasing ingress-buffer accounting so PFC cannot deadlock on a dead link.
func (pt *Port) purge() {
	for cls := range pt.queues {
		for _, p := range pt.queues[cls] {
			pt.Stats.Drops++
			pt.Stats.FaultDrops++
			if p.acct != nil {
				p.acct.release(p.Size())
				p.acct = nil
			}
		}
		pt.queues[cls] = nil
	}
	pt.qBytes = 0
}

// Paused reports whether PFC has paused this egress.
func (pt *Port) Paused() bool { return pt.paused }

// PeerIsHost reports whether the far end of the link is a host. The Cepheus
// accelerator uses this to decide where feedback header rewriting happens
// (at the leaf switch adjacent to the sender).
func (pt *Port) PeerIsHost() bool {
	if pt.Peer == nil {
		return false
	}
	_, ok := pt.Peer.Dev.(*Host)
	return ok
}

// TxTime returns the serialization delay for n bytes at this port's rate.
func (pt *Port) TxTime(n int) sim.Time {
	return sim.Time(float64(n*8) / pt.RateBps * 1e9)
}

// Send enqueues p for transmission, applying ECN marking and drop-tail.
func (pt *Port) Send(p *Packet) {
	pt.enqueue(p, false)
}

// SendUrgent enqueues p at the head of the control queue, bypassing ECN
// and the queue limit. It is used for PFC PAUSE/RESUME frames, which a
// real switch emits from a dedicated high-priority path.
func (pt *Port) SendUrgent(p *Packet) {
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		return
	}
	pt.queues[qCtrl] = append([]*Packet{p}, pt.queues[qCtrl]...)
	pt.qBytes += p.Size()
	pt.trySend()
}

func (pt *Port) enqueue(p *Packet, urgent bool) {
	size := p.Size()
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		if p.acct != nil {
			p.acct = nil
		}
		return
	}
	if pt.QueueLimit > 0 && pt.qBytes+size > pt.QueueLimit {
		pt.Stats.Drops++
		if p.acct != nil {
			// The packet never occupied the queue; nothing to release.
			p.acct = nil
		}
		return
	}
	if pt.ECN.Enabled && p.Type == Data && pt.markProbability() > 0 {
		if pt.eng.Rand().Float64() < pt.markProbability() {
			p.ECN = true
			pt.Stats.ECNMarks++
		}
	}
	if p.acct != nil {
		p.acct.add(size)
	}
	cls := classOf(p)
	pt.queues[cls] = append(pt.queues[cls], p)
	pt.qBytes += size
	if pt.qBytes > pt.Stats.MaxQueued {
		pt.Stats.MaxQueued = pt.qBytes
	}
	pt.trySend()
}

func (pt *Port) markProbability() float64 {
	q := pt.qBytes
	switch {
	case q <= pt.ECN.KminBytes:
		return 0
	case q >= pt.ECN.KmaxBytes:
		return 1
	default:
		return pt.ECN.PMax * float64(q-pt.ECN.KminBytes) / float64(pt.ECN.KmaxBytes-pt.ECN.KminBytes)
	}
}

func (pt *Port) trySend() {
	if pt.busy || pt.paused || pt.down || pt.qBytes == 0 {
		return
	}
	if pt.Peer == nil {
		panic(fmt.Sprintf("simnet: %s port %d transmitting on unconnected link", pt.Dev.DeviceName(), pt.ID))
	}
	// Strict priority: drain control/feedback before bulk data.
	cls := qCtrl
	if len(pt.queues[qCtrl]) == 0 {
		cls = qData
	}
	if len(pt.queues[cls]) == 0 {
		return
	}
	p := pt.queues[cls][0]
	pt.queues[cls] = pt.queues[cls][1:]
	size := p.Size()
	pt.qBytes -= size
	pt.busy = true
	tx := pt.TxTime(size)
	pt.Stats.TxPackets++
	pt.Stats.TxBytes += uint64(size)
	peer := pt.Peer
	pt.eng.After(tx, func() {
		pt.busy = false
		if p.acct != nil {
			p.acct.release(size)
			p.acct = nil
		}
		if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
			pt.OnDrain()
		}
		pt.trySend()
	})
	txEpoch, peerEpoch := pt.epoch, peer.epoch
	pt.eng.After(tx+pt.PropDelay, func() {
		// A frame on the wire is lost if either end of the link failed (or
		// flapped) while it was in flight.
		if pt.epoch != txEpoch || peer.epoch != peerEpoch {
			pt.Stats.FaultDrops++
			return
		}
		peer.Dev.Receive(p, peer)
	})
}

// setPaused flips PFC pause state on this egress.
func (pt *Port) setPaused(v bool) {
	pt.paused = v
	if !v {
		if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
			pt.OnDrain()
		}
		pt.trySend()
	}
}
