package simnet

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Device is anything that terminates a link: a host NIC or a switch.
type Device interface {
	// Receive is called when a packet finishes arriving on one of the
	// device's ports.
	Receive(p *Packet, in *Port)
	// DeviceName identifies the device in traces and errors.
	DeviceName() string
}

// ECNConfig is RED-style marking at an egress queue, as DCQCN expects.
// A packet is CE-marked with probability 0 below KminBytes, PMax above
// KmaxBytes, and linearly in between, evaluated against the instantaneous
// queue depth at enqueue.
type ECNConfig struct {
	Enabled   bool
	KminBytes int
	KmaxBytes int
	PMax      float64
}

// DefaultECN is the marking profile used on 100Gbps ports (see DESIGN.md §5).
var DefaultECN = ECNConfig{Enabled: true, KminBytes: 100 << 10, KmaxBytes: 400 << 10, PMax: 0.2}

// PortStats counts what happened on a port's egress side.
type PortStats struct {
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64
	ECNMarks   uint64
	MaxQueued  int
	PauseSent  uint64
	ResumeSent uint64

	// FaultDrops counts frames lost to a dead link: queued frames purged
	// when the port went down, frames enqueued while down, and in-flight
	// frames whose link failed before delivery. It is a subset of nothing —
	// a separate category from congestion Drops.
	FaultDrops uint64

	// Gray-failure impairment drops (see impair.go), each its own category:
	// ImpairDrops counts frames lost to independent or burst wire loss,
	// CorruptDrops frames killed by injected CRC corruption, StormDrops
	// control frames lost to a control-plane loss storm.
	ImpairDrops  uint64
	CorruptDrops uint64
	StormDrops   uint64
}

// Port is one end of a full-duplex link. The port owns its egress queue and
// serializes transmissions at the link rate; the peer's device receives each
// packet after the serialization plus propagation delay.
type Port struct {
	Dev  Device
	ID   int // index within the owning device
	Peer *Port

	RateBps   float64  // link bandwidth in bits/second
	PropDelay sim.Time // one-way propagation (plus per-hop pipeline) delay

	QueueLimit int // egress queue capacity in bytes (0 = unlimited)
	ECN        ECNConfig

	// Backpressure to the attached sender: when the queue drains to
	// LowWater bytes or below (and after a PFC resume), OnDrain fires so a
	// transport can resume injecting — the way an RNIC stops posting to a
	// paused or full MAC instead of dropping.
	LowWater int
	OnDrain  func()

	Stats PortStats

	eng    *sim.Engine
	queues [2]pktRing // [0] control/feedback (strict priority), [1] data
	qBytes int
	busy   bool
	paused bool

	// Fail-stop state: a down port neither transmits nor accepts frames.
	// epoch increments on every transition so frames already in flight when
	// the link died are discarded at delivery time.
	down  bool
	epoch uint64

	// Gray-failure state: nil on a healthy egress (the nil check is the
	// entire disabled cost); see impair.go.
	imp *impairState

	// Typed event handlers, allocated once with the port so per-packet
	// scheduling boxes nothing (&pt.txDoneH is an interior pointer).
	txDoneH  txDoneHandler
	deliverH deliverHandler
	rxH      rxHandler

	// Observability. tr is the owning device's flight-recorder handle (nil
	// while tracing is off — the nil check is the entire disabled cost); fab
	// is the owning LP's fabric-counter shard (nil-safe); QHist observes the
	// egress queue depth at every enqueue.
	tr    *obs.Tracer
	fab   *obs.FabricLP
	QHist obs.Histogram
}

// SetTracer attaches the owning device's flight-recorder handle. Port events
// record under that device id with Port distinguishing the egress.
func (pt *Port) SetTracer(tr *obs.Tracer) { pt.tr = tr }

// SetFabric attaches the owning LP's fabric-counter shard.
func (pt *Port) SetFabric(fab *obs.FabricLP) { pt.fab = fab }

// rec captures one packet-scoped flight-recorder event; callers guard with
// pt.tr.On(). a is the kind-specific payload (usually queue depth in bytes);
// size is p's wire size, passed in so the hot callers (enqueue/dequeue, which
// have it at hand) keep this wrapper within the inlining budget — recording a
// traced event then costs one call, not two.
func (pt *Port) rec(k obs.Kind, r obs.Reason, p *Packet, a, size int64) {
	pt.tr.Record(pt.eng.Now(), k, r, pt.ID, uint8(p.Type), uint32(p.Src), uint32(p.Dst), p.SrcQP, p.DstQP, p.PSN, p.MsgID, a, size)
}

// txDoneHandler fires when a frame finishes serializing: the link is free for
// the next frame and the frame's ingress-buffer reservation is returned.
type txDoneHandler struct{ pt *Port }

func (h *txDoneHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	pt.busy = false
	if p.acct != nil {
		p.acct.release(p.Size())
		p.acct = nil
	}
	if p.impairDrop != obs.RNone {
		// The impaired wire killed this frame (impair.go); no delivery was
		// scheduled, so serialization end is where it dies.
		pt.recordImpairDrop(p)
		p.Release()
	}
	if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
		pt.OnDrain()
	}
	pt.trySend()
}

// deliverHandler fires when a frame finishes propagating: the peer device
// receives it, unless either end of the link flapped while it was in flight.
type deliverHandler struct{ pt *Port }

func (h *deliverHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	peer := pt.Peer
	if pt.epoch != p.txEpoch || peer.epoch != p.peerEpoch {
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, 0, int64(p.Size()))
		}
		p.Release()
		return
	}
	peer.Dev.Receive(p, peer)
}

// rxHandler is the receiving side of a cross-LP link: it runs on the
// RECEIVING port's engine after the frame's serialization plus propagation
// delay, which is when ownership of the packet transfers between logical
// processes. Runtime fault injection is restricted to sequential runs (see
// DESIGN.md §9), so unlike deliverHandler it needs no epoch comparison —
// only the fail-stop state of its own end, which its own LP owns.
type rxHandler struct{ pt *Port }

func (h *rxHandler) OnEvent(_ *sim.Engine, arg any) {
	pt := h.pt
	p := arg.(*Packet)
	if pt.down {
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, 0, int64(p.Size()))
		}
		p.Release()
		return
	}
	pt.Dev.Receive(p, pt)
}

// queue classes (Fig 7a's queue system: physical-queue-level isolation,
// with the multiplexer giving feedback strict priority over bulk data).
const (
	qCtrl = 0
	qData = 1
)

// pktRing is a FIFO of packets backed by a reusable circular buffer. A
// plain slice with append/[1:] leaks its front capacity, so a busy port's
// steady enqueue/dequeue cycle reallocates on nearly every frame; the ring
// allocates only when the queue outgrows its high-water mark.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

func (r *pktRing) grow() {
	c := len(r.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]*Packet, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

func (r *pktRing) pushBack(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *pktRing) pushFront(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head + len(r.buf) - 1) % len(r.buf)
	r.buf[r.head] = p
	r.n++
}

func (r *pktRing) popFront() *Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return p
}

func classOf(p *Packet) int {
	switch p.Type {
	case Data, Raw:
		return qData
	default:
		return qCtrl
	}
}

// NewPort creates an unconnected port owned by dev.
func NewPort(eng *sim.Engine, dev Device, rateBps float64, prop sim.Time) *Port {
	pt := &Port{Dev: dev, RateBps: rateBps, PropDelay: prop, eng: eng, QueueLimit: 4 << 20}
	pt.txDoneH.pt = pt
	pt.deliverH.pt = pt
	pt.rxH.pt = pt
	return pt
}

// Rebind moves the port onto eng. Topology partitioning calls it while
// assigning devices to logical processes, before any traffic exists; a port
// with queued or in-flight frames must never be rebound.
func (pt *Port) Rebind(eng *sim.Engine) { pt.eng = eng }

// Engine returns the engine the port schedules on (its LP's engine under a
// partitioned run).
func (pt *Port) Engine() *sim.Engine { return pt.eng }

// Connect wires two ports as a full-duplex link. Both sides must be
// unconnected.
func Connect(a, b *Port) {
	if a.Peer != nil || b.Peer != nil {
		panic("simnet: port already connected")
	}
	a.Peer = b
	b.Peer = a
}

// QueuedBytes reports the egress queue depth.
func (pt *Port) QueuedBytes() int { return pt.qBytes }

// Down reports whether the port is failed (fail-stop).
func (pt *Port) Down() bool { return pt.down }

// SetDown transitions the port's fail-stop state. Going down purges the
// egress queue (releasing any PFC accounting) and invalidates frames
// already serialized onto the wire; coming up clears a stale PFC pause so
// the link restarts from a clean slate. Both directions of a link fail
// independently — fault injectors typically flip both ends.
func (pt *Port) SetDown(down bool) {
	if pt.down == down {
		return
	}
	pt.down = down
	pt.epoch++
	if down {
		pt.purge()
		return
	}
	pt.paused = false
	pt.trySend()
}

// purge discards every queued frame, counting them as fault drops and
// releasing ingress-buffer accounting so PFC cannot deadlock on a dead link.
func (pt *Port) purge() {
	for cls := range pt.queues {
		for pt.queues[cls].len() > 0 {
			p := pt.queues[cls].popFront()
			pt.Stats.Drops++
			pt.Stats.FaultDrops++
			pt.fab.Inc(obs.FFaultDrops)
			if pt.tr.On() {
				pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
			}
			if p.acct != nil {
				p.acct.release(p.Size())
				p.acct = nil
			}
			p.Release()
		}
	}
	pt.qBytes = 0
}

// Paused reports whether PFC has paused this egress.
func (pt *Port) Paused() bool { return pt.paused }

// PeerIsHost reports whether the far end of the link is a host. The Cepheus
// accelerator uses this to decide where feedback header rewriting happens
// (at the leaf switch adjacent to the sender).
func (pt *Port) PeerIsHost() bool {
	if pt.Peer == nil {
		return false
	}
	_, ok := pt.Peer.Dev.(*Host)
	return ok
}

// TxTime returns the serialization delay for n bytes at this port's rate.
func (pt *Port) TxTime(n int) sim.Time {
	return sim.Time(float64(n*8) / pt.RateBps * 1e9)
}

// Send enqueues p for transmission, applying ECN marking and drop-tail.
func (pt *Port) Send(p *Packet) {
	pt.enqueue(p, false)
}

// SendUrgent enqueues p at the head of the control queue, bypassing ECN
// and the queue limit. It is used for PFC PAUSE/RESUME frames, which a
// real switch emits from a dedicated high-priority path.
func (pt *Port) SendUrgent(p *Packet) {
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
		}
		p.Release()
		return
	}
	pt.queues[qCtrl].pushFront(p)
	pt.qBytes += p.Size()
	pt.QHist.Observe(int64(pt.qBytes))
	if pt.tr.On() {
		pt.rec(obs.KEnqueue, obs.RNone, p, int64(pt.qBytes), int64(p.Size()))
	}
	pt.trySend()
}

func (pt *Port) enqueue(p *Packet, urgent bool) {
	size := p.Size()
	if pt.down {
		pt.Stats.Drops++
		pt.Stats.FaultDrops++
		pt.fab.Inc(obs.FFaultDrops)
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RFault, p, int64(pt.qBytes), int64(p.Size()))
		}
		p.Release()
		return
	}
	if pt.QueueLimit > 0 && pt.qBytes+size > pt.QueueLimit {
		pt.Stats.Drops++
		if pt.tr.On() {
			pt.rec(obs.KDrop, obs.RQueueLimit, p, int64(pt.qBytes), int64(size))
		}
		// The packet never occupied the queue; no accounting to release.
		p.Release()
		return
	}
	if pt.ECN.Enabled && p.Type == Data && pt.markProbability() > 0 {
		if pt.eng.Rand().Float64() < pt.markProbability() {
			p.ECN = true
			pt.Stats.ECNMarks++
			if pt.tr.On() {
				pt.rec(obs.KECNMark, obs.RNone, p, int64(pt.qBytes), int64(size))
			}
		}
	}
	if p.acct != nil {
		p.acct.add(size)
	}
	cls := classOf(p)
	pt.queues[cls].pushBack(p)
	pt.qBytes += size
	pt.QHist.Observe(int64(pt.qBytes))
	if pt.tr.On() {
		pt.rec(obs.KEnqueue, obs.RNone, p, int64(pt.qBytes), int64(size))
	}
	if pt.qBytes > pt.Stats.MaxQueued {
		pt.Stats.MaxQueued = pt.qBytes
	}
	pt.trySend()
}

func (pt *Port) markProbability() float64 {
	q := pt.qBytes
	switch {
	case q <= pt.ECN.KminBytes:
		return 0
	case q >= pt.ECN.KmaxBytes:
		return 1
	default:
		return pt.ECN.PMax * float64(q-pt.ECN.KminBytes) / float64(pt.ECN.KmaxBytes-pt.ECN.KminBytes)
	}
}

func (pt *Port) trySend() {
	if pt.busy || pt.paused || pt.down || pt.qBytes == 0 {
		return
	}
	if pt.Peer == nil {
		panic(fmt.Sprintf("simnet: %s port %d transmitting on unconnected link", pt.Dev.DeviceName(), pt.ID))
	}
	// Strict priority: drain control/feedback before bulk data.
	cls := qCtrl
	if pt.queues[qCtrl].len() == 0 {
		cls = qData
	}
	if pt.queues[cls].len() == 0 {
		return
	}
	p := pt.queues[cls].popFront()
	size := p.Size()
	pt.qBytes -= size
	if pt.tr.On() {
		pt.rec(obs.KDequeue, obs.RNone, p, int64(pt.qBytes), int64(size))
	}
	pt.busy = true
	tx := pt.TxTime(size)
	pt.Stats.TxPackets++
	pt.Stats.TxBytes += uint64(size)
	if pt.imp != nil {
		pt.impairSend(p, tx)
		return
	}
	if peer := pt.Peer; peer.eng != pt.eng {
		// Cross-LP link: serialization completes on this LP, but delivery —
		// and packet ownership — hands off to the receiving LP through the
		// window-barrier mailbox. The propagation delay of every cross-LP
		// link is at least the partition's lookahead, so the arrival always
		// lands at or beyond the current window's end. The peer's fail-stop
		// epoch belongs to the peer's LP and cannot be read here; runtime
		// fault injection is sequential-only (DESIGN.md §9).
		p.txEpoch, p.peerEpoch = pt.epoch, 0
		pt.eng.AfterHandler(tx, &pt.txDoneH, p)
		pt.eng.ScheduleRemote(peer.eng, pt.eng.Now()+tx+pt.PropDelay, &peer.rxH, p)
		return
	}
	p.txEpoch, p.peerEpoch = pt.epoch, pt.Peer.epoch
	pt.eng.AfterHandler(tx, &pt.txDoneH, p)
	pt.eng.AfterHandler(tx+pt.PropDelay, &pt.deliverH, p)
}

// setPaused flips PFC pause state on this egress.
func (pt *Port) setPaused(v bool) {
	if pt.paused != v && pt.tr.On() {
		k := obs.KPFCResume
		if v {
			k = obs.KPFCPause
		}
		pt.tr.Record(pt.eng.Now(), k, obs.RNone, pt.ID, 0, 0, 0, 0, 0, 0, 0, int64(pt.qBytes), 0)
	}
	pt.paused = v
	if !v {
		if pt.OnDrain != nil && pt.qBytes <= pt.LowWater {
			pt.OnDrain()
		}
		pt.trySend()
	}
}
