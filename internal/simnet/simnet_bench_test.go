package simnet

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkPortForwarding measures per-packet cost through one link.
func BenchmarkPortForwarding(b *testing.B) {
	eng := sim.New(1)
	a := NewHost(eng, "a", 1, gbps100, 600)
	c := NewHost(eng, "b", 2, gbps100, 600)
	Connect(a.NIC, c.NIC)
	got := 0
	c.Handler = func(p *Packet) { got++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1024})
		if i%256 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkSwitchTransit measures host->switch->host per-packet cost,
// including FIB lookup and PFC accounting.
func BenchmarkSwitchTransit(b *testing.B) {
	eng := sim.New(1)
	sw := NewSwitch(eng, "s0")
	sw.PFC = DefaultPFC
	h1 := NewHost(eng, "h1", 1, gbps100, 600)
	h2 := NewHost(eng, "h2", 2, gbps100, 600)
	Connect(h1.NIC, sw.AddPort(gbps100, 600))
	Connect(h2.NIC, sw.AddPort(gbps100, 600))
	sw.AddRoute(1, 0)
	sw.AddRoute(2, 1)
	got := 0
	h2.Handler = func(p *Packet) { got++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h1.Send(&Packet{Type: Data, Src: 1, Dst: 2, Payload: 1024})
		if i%256 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}
