package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func newImpairState(imp Impairment, seed int64) *impairState {
	return &impairState{Impairment: imp, rng: rand.New(rand.NewSource(seed))}
}

func TestImpairFateExemptsPFC(t *testing.T) {
	im := newImpairState(Impairment{LossRate: 1, CorruptRate: 1, CtrlLossRate: 1}, 1)
	for _, pt := range []PacketType{Pause, Resume} {
		if r := im.fate(&Packet{Type: pt}); r != obs.RNone {
			t.Fatalf("%v frame got fate %v; PFC must be exempt", pt, r)
		}
	}
	if r := im.fate(&Packet{Type: Data, Payload: 100}); r != obs.RImpairLoss {
		t.Fatalf("data frame survived LossRate=1: %v", r)
	}
}

func TestImpairFateCtrlStormTargetsControlOnly(t *testing.T) {
	im := newImpairState(Impairment{CtrlLossRate: 1}, 1)
	if r := im.fate(&Packet{Type: Data, Payload: 100}); r != obs.RNone {
		t.Fatalf("ctrl storm killed a data packet: %v", r)
	}
	for _, pt := range []PacketType{Ack, Nack, CNP, MRP, MRPConfirm, MRPReject} {
		if r := im.fate(&Packet{Type: pt}); r != obs.RStormLoss {
			t.Fatalf("%v frame survived a total control storm: %v", pt, r)
		}
	}
}

func TestImpairFateCorruptReason(t *testing.T) {
	im := newImpairState(Impairment{CorruptRate: 1}, 1)
	if r := im.fate(&Packet{Type: Data, Payload: 100}); r != obs.RCorrupt {
		t.Fatalf("fate = %v, want corrupt", r)
	}
}

func TestImpairFateBurstChain(t *testing.T) {
	// PGoodBad=1 flips to bad on the first eligible frame and stays there
	// (PBadGood=0): every frame from the first on must drop.
	im := newImpairState(Impairment{Burst: GilbertElliott{PGoodBad: 1, LossBad: 1}}, 1)
	for i := 0; i < 10; i++ {
		if r := im.fate(&Packet{Type: Data, Payload: 100}); r != obs.RImpairLoss {
			t.Fatalf("frame %d survived the bad state: %v", i, r)
		}
	}
}

func TestImpairFateDeterministic(t *testing.T) {
	imp := Impairment{LossRate: 0.2, Burst: GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, LossBad: 0.8}, CorruptRate: 0.05}
	a := newImpairState(imp, 42)
	b := newImpairState(imp, 42)
	for i := 0; i < 1000; i++ {
		p := &Packet{Type: Data, Payload: 100}
		if ra, rb := a.fate(p), b.fate(p); ra != rb {
			t.Fatalf("fate streams diverged at frame %d: %v vs %v", i, ra, rb)
		}
	}
}

func TestImpairLossEndToEnd(t *testing.T) {
	run := func() (delivered int, drops uint64) {
		eng, a, b := newPair(t)
		a.NIC.SetImpairment(Impairment{LossRate: 0.3}, 7)
		b.Handler = func(p *Packet) { delivered++ }
		const n = 400
		for i := 0; i < n; i++ {
			a.Send(&Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024, PSN: uint64(i)})
		}
		eng.Run()
		drops = a.NIC.Stats.ImpairDrops
		if delivered+int(drops) != n {
			t.Fatalf("delivered %d + dropped %d != sent %d", delivered, drops, n)
		}
		if drops == 0 || delivered == 0 {
			t.Fatalf("loss rate 0.3 produced delivered=%d drops=%d", delivered, drops)
		}
		return delivered, drops
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, x1, d2, x2)
	}
}

func TestImpairBandwidthStretchesSerialization(t *testing.T) {
	eng, a, b := newPair(t)
	a.NIC.SetImpairment(Impairment{BandwidthFraction: 0.5}, 1)
	var at sim.Time
	b.Handler = func(p *Packet) { at = eng.Now() }
	p := &Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024}
	tx := a.NIC.TxTime(p.Size())
	a.Send(p)
	eng.Run()
	want := 2*tx + 600
	if at != want {
		t.Fatalf("delivered at %v, want %v (2x serialization at half rate + prop)", at, want)
	}
}

func TestImpairExtraLatency(t *testing.T) {
	eng, a, b := newPair(t)
	const extra = 5 * sim.Microsecond
	a.NIC.SetImpairment(Impairment{ExtraLatency: extra}, 1)
	var at sim.Time
	b.Handler = func(p *Packet) { at = eng.Now() }
	p := &Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024}
	tx := a.NIC.TxTime(p.Size())
	a.Send(p)
	eng.Run()
	want := tx + 600 + extra
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestClearImpairmentRestoresHealthy(t *testing.T) {
	eng, a, b := newPair(t)
	a.NIC.SetImpairment(Impairment{LossRate: 1}, 1)
	delivered := 0
	b.Handler = func(p *Packet) { delivered++ }
	a.Send(&Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024})
	eng.Run()
	if delivered != 0 {
		t.Fatal("total loss delivered a packet")
	}
	a.NIC.ClearImpairment()
	if a.NIC.Impaired() {
		t.Fatal("still impaired after clear")
	}
	a.Send(&Packet{Type: Data, Src: a.IP, Dst: b.IP, Payload: 1024})
	eng.Run()
	if delivered != 1 {
		t.Fatal("healthy link did not deliver after clear")
	}
}
