package simnet

import "sync"

// Packets are pooled: every hop of a large fat-tree sweep moves one, and
// allocating per hop makes the GC the bottleneck of large-scale experiments.
//
// Ownership rules (see DESIGN.md §8):
//
//   - Port.Send / Switch.Output / Switch.Forward take ownership. The caller
//     must not touch the packet afterwards — it is either delivered, or
//     released internally on a drop (congestion, loss injection, dead link,
//     crash, no route).
//   - A SwitchHook that returns true from Handle owns the packet and must
//     Release it or forward it onward (ownership transfers with each path).
//   - Host.Receive releases the packet after Host.Handler returns. A handler
//     that wants to keep any part of it must copy fields out or Clone.
//   - Clone returns an independently owned packet; replication paths clone
//     once per output and release the original.
//
// Double-release and use-after-release are programming errors; Release zeroes
// the struct so they fail loudly (a reused packet shows impossible fields)
// rather than corrupting a neighbour silently.

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed packet from the pool. Populate it and hand it to
// a port or device; the terminal sink releases it.
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	p.inPool = false
	return p
}

// Release returns p to the pool. Only the current owner may call it, exactly
// once, and must not touch p afterwards. Releasing a packet that is already
// in the pool panics: by then another owner may have drawn it, and zeroing
// it out from under them is the worst kind of silent corruption.
func (p *Packet) Release() {
	if p.inPool {
		panic("simnet: double release of pooled packet")
	}
	*p = Packet{}
	p.inPool = true
	packetPool.Put(p)
}
