package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// The soak harness composes fail-stop and gray episodes into one seeded
// schedule, then reduces the run's recovery spans and trace into a
// per-episode SLO report: how fast each fault was detected, how long
// delivery was degraded, and how long until native service was restored.
// Plan generation draws only from the config's own RNG, so the same config
// always yields the same schedule — the run's SLOs differ only if the
// system under test behaves differently.

// EpisodeKind classifies a planned soak episode.
type EpisodeKind string

// The soak episode kinds, fail-stop first, then the gray impairments.
const (
	EpLinkDown    EpisodeKind = "link-down"
	EpSwitchCrash EpisodeKind = "switch-crash"
	EpLoss        EpisodeKind = "loss"
	EpBurstLoss   EpisodeKind = "burst-loss"
	EpCorrupt     EpisodeKind = "corrupt"
	EpBandwidth   EpisodeKind = "bandwidth"
	EpLatency     EpisodeKind = "latency"
	EpCtrlStorm   EpisodeKind = "ctrl-storm"
)

var grayKinds = []EpisodeKind{EpLoss, EpBurstLoss, EpCorrupt, EpBandwidth, EpLatency, EpCtrlStorm}

// Episode is one planned fault interval.
type Episode struct {
	Index  int
	Kind   EpisodeKind
	Target string
	Start  sim.Time
	End    sim.Time

	// Impair is the installed impairment for gray kinds (zero for fail-stop).
	Impair simnet.Impairment
}

// SoakConfig parameterizes a soak schedule. Zero intensity bounds pick
// defaults; candidate slices select which elements each episode class may
// target.
type SoakConfig struct {
	Seed     int64
	Episodes int
	Horizon  sim.Time

	// MinDuration/MaxDuration bound each episode's length. MaxDuration <=
	// MinDuration pins the length at MinDuration.
	MinDuration sim.Time
	MaxDuration sim.Time

	// FailStopFraction is the fraction of episodes injected as fail-stop
	// (link-down or switch-crash); the rest are gray. Defaults to 0.4 when
	// both fail-stop and gray candidates exist.
	FailStopFraction float64

	// Candidates. Gray episodes impair GrayLinks; fail-stop episodes pick
	// from FailStopLinks and Switches.
	FailStopLinks []*simnet.Port
	Switches      []*simnet.Switch
	GrayLinks     []*simnet.Port

	// Gray intensity bounds; each episode draws its intensity uniformly up
	// to the bound. Zero selects the default in parentheses.
	MaxLossRate          float64  // iid/burst loss ceiling (0.3)
	MaxCorruptRate       float64  // CRC-corruption ceiling (0.05)
	MaxCtrlLossRate      float64  // control-storm ceiling (0.5)
	MaxExtraLatency      sim.Time // added latency ceiling (20µs)
	MinBandwidthFraction float64  // worst-case line-rate fraction (0.1)
}

func (cfg *SoakConfig) withDefaults() SoakConfig {
	c := *cfg
	if c.MaxLossRate == 0 {
		c.MaxLossRate = 0.3
	}
	if c.MaxCorruptRate == 0 {
		c.MaxCorruptRate = 0.05
	}
	if c.MaxCtrlLossRate == 0 {
		c.MaxCtrlLossRate = 0.5
	}
	if c.MaxExtraLatency == 0 {
		c.MaxExtraLatency = 20 * sim.Microsecond
	}
	if c.MinBandwidthFraction == 0 {
		c.MinBandwidthFraction = 0.1
	}
	if c.FailStopFraction == 0 && len(c.FailStopLinks)+len(c.Switches) > 0 && len(c.GrayLinks) > 0 {
		c.FailStopFraction = 0.4
	}
	if len(c.GrayLinks) == 0 {
		c.FailStopFraction = 1
	}
	if len(c.FailStopLinks)+len(c.Switches) == 0 {
		c.FailStopFraction = 0
	}
	return c
}

// Validate rejects configs that cannot produce a meaningful schedule.
func (cfg *SoakConfig) Validate() error {
	if cfg.Episodes <= 0 {
		return fmt.Errorf("soak: Episodes must be positive, got %d", cfg.Episodes)
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("soak: Horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.MinDuration < 0 || cfg.MaxDuration < 0 {
		return fmt.Errorf("soak: durations must be non-negative, got min=%v max=%v", cfg.MinDuration, cfg.MaxDuration)
	}
	if cfg.FailStopFraction < 0 || cfg.FailStopFraction > 1 {
		return fmt.Errorf("soak: FailStopFraction must be in [0,1], got %g", cfg.FailStopFraction)
	}
	if cfg.MaxLossRate < 0 || cfg.MaxCorruptRate < 0 || cfg.MaxCtrlLossRate < 0 ||
		cfg.MaxExtraLatency < 0 || cfg.MinBandwidthFraction < 0 || cfg.MinBandwidthFraction > 1 {
		return errors.New("soak: impairment bounds must be non-negative (bandwidth fraction in [0,1])")
	}
	if len(cfg.FailStopLinks)+len(cfg.Switches)+len(cfg.GrayLinks) == 0 {
		return errors.New("soak: no candidate links or switches")
	}
	return nil
}

// grayImpair draws one gray episode's impairment from the config bounds.
func grayImpair(kind EpisodeKind, cfg *SoakConfig, rng *rand.Rand) simnet.Impairment {
	frac := func() float64 { return 0.2 + 0.8*rng.Float64() } // avoid near-zero no-op episodes
	var imp simnet.Impairment
	switch kind {
	case EpLoss:
		imp.LossRate = cfg.MaxLossRate * frac()
	case EpBurstLoss:
		imp.Burst = simnet.GilbertElliott{
			PGoodBad: 0.01 + 0.04*rng.Float64(),
			PBadGood: 0.1 + 0.2*rng.Float64(),
			LossBad:  cfg.MaxLossRate * frac(),
		}
	case EpCorrupt:
		imp.CorruptRate = cfg.MaxCorruptRate * frac()
	case EpBandwidth:
		imp.BandwidthFraction = cfg.MinBandwidthFraction + (1-cfg.MinBandwidthFraction)*0.5*rng.Float64()
	case EpLatency:
		imp.ExtraLatency = sim.Time(float64(cfg.MaxExtraLatency) * frac())
		imp.Jitter = imp.ExtraLatency / 2
	case EpCtrlStorm:
		imp.CtrlLossRate = cfg.MaxCtrlLossRate * frac()
	}
	return imp
}

// Soak plans and schedules a composed fail-stop + gray episode sequence,
// returning the plan sorted by start time. Fail-stop episodes use the
// hold-counted DownEpisode/CrashEpisode (sequential runs only); gray
// episodes use DegradeEpisode and are PDES-safe. A gray-only soak (no
// fail-stop candidates) can therefore run partitioned at any worker count
// with a byte-identical trace.
func (in *Injector) Soak(cfg SoakConfig) ([]Episode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	var base sim.Time
	if in.eng != nil {
		base = in.eng.Now()
	}
	durFor := func() sim.Time {
		if c.MaxDuration <= c.MinDuration {
			return c.MinDuration
		}
		return c.MinDuration + sim.Time(rng.Int63n(int64(c.MaxDuration-c.MinDuration)))
	}
	plan := make([]Episode, 0, c.Episodes)
	for i := 0; i < c.Episodes; i++ {
		at := base + sim.Time(rng.Int63n(int64(c.Horizon)))
		dur := durFor()
		ep := Episode{Start: at, End: at + dur}
		if rng.Float64() < c.FailStopFraction {
			k := rng.Intn(len(c.FailStopLinks) + len(c.Switches))
			if k < len(c.FailStopLinks) {
				ep.Kind, ep.Target = EpLinkDown, linkName(c.FailStopLinks[k])
			} else {
				ep.Kind, ep.Target = EpSwitchCrash, c.Switches[k-len(c.FailStopLinks)].Name
			}
		} else {
			kind := grayKinds[rng.Intn(len(grayKinds))]
			pt := c.GrayLinks[rng.Intn(len(c.GrayLinks))]
			ep.Kind, ep.Target = kind, linkName(pt)
			ep.Impair = grayImpair(kind, &c, rng)
		}
		plan = append(plan, ep)
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].Start < plan[j].Start })
	for i := range plan {
		plan[i].Index = i
	}
	// Schedule after sorting so episode indices (and derived impairment
	// seeds) are stable properties of the plan, not of RNG draw order.
	for i := range plan {
		ep := &plan[i]
		switch ep.Kind {
		case EpLinkDown:
			in.DownEpisode(in.portByLink(c.FailStopLinks, ep.Target), ep.Start, ep.End)
		case EpSwitchCrash:
			in.CrashEpisode(in.switchByName(c.Switches, ep.Target), ep.Start, ep.End)
		default:
			seed := c.Seed ^ (int64(i+1) * peerSeedMix)
			in.DegradeEpisode(in.portByLink(c.GrayLinks, ep.Target), ep.Start, ep.End, ep.Impair, seed)
		}
	}
	return plan, nil
}

func (in *Injector) portByLink(cands []*simnet.Port, name string) *simnet.Port {
	for _, pt := range cands {
		if linkName(pt) == name {
			return pt
		}
	}
	panic("soak: unknown link " + name)
}

func (in *Injector) switchByName(cands []*simnet.Switch, name string) *simnet.Switch {
	for _, sw := range cands {
		if sw.Name == name {
			return sw
		}
	}
	panic("soak: unknown switch " + name)
}

// RecoveryMark is one detect → fallback → restore cycle observed by the
// recovery pipeline, in the shape the root package's RecoverySpan exports
// (fault cannot import the root package, so the runner copies spans across).
// Negative times mean "never happened".
type RecoveryMark struct {
	Reason          string
	DetectAt        sim.Time
	FirstFallbackAt sim.Time
	RestoreAt       sim.Time
}

// EpisodeSLO is one episode's recovery outcome.
type EpisodeSLO struct {
	Episode
	Detected bool

	// DetectLatency is detection time minus episode start; DeliveryGap is
	// first-fallback minus detection (how long delivery ran un-degraded-to);
	// TimeToRestore is restore minus episode end (negative components mean
	// the stage never happened and are excluded from percentiles).
	DetectLatency sim.Time
	DeliveryGap   sim.Time
	TimeToRestore sim.Time

	// GoodputBytes is the payload delivered during the episode window
	// (filled by AttachGoodput when a trace is available).
	GoodputBytes int64
}

// SLOReport aggregates a soak run.
type SLOReport struct {
	Episodes     int
	Detected     int
	Restored     int
	Marks        int
	Unattributed int // recovery marks not matched to any planned episode

	DetectP50, DetectP99   sim.Time
	GapP50, GapP99         sim.Time
	RestoreP50, RestoreP99 sim.Time

	PerEpisode []EpisodeSLO
}

// String renders the deterministic summary line set used by CI digest
// comparison (times as raw nanosecond integers so formatting can never
// drift between platforms).
func (r *SLOReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "episodes=%d detected=%d restored=%d marks=%d unattributed=%d\n",
		r.Episodes, r.Detected, r.Restored, r.Marks, r.Unattributed)
	fmt.Fprintf(&b, "detect_ns p50=%d p99=%d\n", int64(r.DetectP50), int64(r.DetectP99))
	fmt.Fprintf(&b, "gap_ns p50=%d p99=%d\n", int64(r.GapP50), int64(r.GapP99))
	fmt.Fprintf(&b, "restore_ns p50=%d p99=%d", int64(r.RestoreP50), int64(r.RestoreP99))
	return b.String()
}

// attributionGrace is how far past an episode's end a detection may land and
// still be attributed to it (detection of a fault that ended is legitimate:
// the damage — lost packets, stalled QPs — outlives the fault condition).
const attributionGrace = 25 * sim.Millisecond

// ComputeSLO attributes recovery marks to planned episodes and reduces them
// to per-episode and aggregate SLOs. Attribution is by time: each mark goes
// to the latest not-yet-matched episode whose [Start, End+grace] window
// contains the detection time. Marks that match nothing are counted, not
// dropped — an unattributed detection is itself a signal (e.g. a safeguard
// trip caused by collateral congestion).
func ComputeSLO(plan []Episode, marks []RecoveryMark) *SLOReport {
	r := &SLOReport{Episodes: len(plan), Marks: len(marks)}
	r.PerEpisode = make([]EpisodeSLO, len(plan))
	for i, ep := range plan {
		r.PerEpisode[i] = EpisodeSLO{Episode: ep}
	}
	matched := make([]bool, len(plan))
	var detects, gaps, restores []sim.Time
	for _, m := range marks {
		best := -1
		for i, ep := range plan {
			if matched[i] || m.DetectAt < ep.Start || m.DetectAt > ep.End+attributionGrace {
				continue
			}
			if best < 0 || plan[i].Start >= plan[best].Start {
				best = i
			}
		}
		if best < 0 {
			r.Unattributed++
			continue
		}
		matched[best] = true
		slo := &r.PerEpisode[best]
		slo.Detected = true
		r.Detected++
		slo.DetectLatency = m.DetectAt - slo.Start
		detects = append(detects, slo.DetectLatency)
		if m.FirstFallbackAt >= 0 {
			slo.DeliveryGap = m.FirstFallbackAt - m.DetectAt
			gaps = append(gaps, slo.DeliveryGap)
		} else {
			slo.DeliveryGap = -1
		}
		if m.RestoreAt >= 0 {
			r.Restored++
			slo.TimeToRestore = m.RestoreAt - slo.End
			restores = append(restores, slo.TimeToRestore)
		} else {
			slo.TimeToRestore = -1
		}
	}
	r.DetectP50, r.DetectP99 = obs.Quantile(detects, 0.50), obs.Quantile(detects, 0.99)
	r.GapP50, r.GapP99 = obs.Quantile(gaps, 0.50), obs.Quantile(gaps, 0.99)
	r.RestoreP50, r.RestoreP99 = obs.Quantile(restores, 0.50), obs.Quantile(restores, 0.99)
	return r
}

// AttachGoodput fills each episode's GoodputBytes from a recorded trace:
// the payload bytes delivered anywhere in the fabric during the episode's
// window. The canonical event stream is identical across worker counts, so
// so is this reduction.
func AttachGoodput(slos []EpisodeSLO, evs []obs.Event) {
	for i := range slos {
		slos[i].GoodputBytes = obs.DeliveredBytes(evs, slos[i].Start, slos[i].End)
	}
}
