package fault

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// raw sends a Raw packet from host a to host b and reports whether it
// arrived within window.
func rawDelivered(eng *sim.Engine, net *topo.Network, a, b int, window sim.Time) bool {
	got := false
	net.Hosts[b].Handler = func(p *simnet.Packet) { got = true }
	net.Hosts[a].Send(&simnet.Packet{Type: simnet.Raw, Src: net.Hosts[a].IP, Dst: net.Hosts[b].IP, Payload: 1000})
	eng.RunFor(window)
	return got
}

func TestLinkDownDropsTraffic(t *testing.T) {
	eng := sim.New(1)
	net := topo.Testbed(eng, 3)
	in := NewInjector(net)

	if !rawDelivered(eng, net, 0, 1, sim.Millisecond) {
		t.Fatal("healthy link did not deliver")
	}
	in.LinkDown(in.HostLink(1))
	if rawDelivered(eng, net, 0, 1, sim.Millisecond) {
		t.Fatal("down link delivered a packet")
	}
	if net.Hosts[1].NIC.Peer.Stats.FaultDrops == 0 {
		t.Fatal("no fault drops recorded at the dead link")
	}
	in.LinkUp(in.HostLink(1))
	if !rawDelivered(eng, net, 0, 1, sim.Millisecond) {
		t.Fatal("revived link did not deliver")
	}
	if in.Stats.LinkDowns != 1 || in.Stats.LinkUps != 1 {
		t.Fatalf("stats = %+v", in.Stats)
	}
}

func TestLinkDownLosesInFlightFrames(t *testing.T) {
	eng := sim.New(1)
	net := topo.Testbed(eng, 2)
	in := NewInjector(net)

	got := false
	net.Hosts[1].Handler = func(p *simnet.Packet) { got = true }
	net.Hosts[0].Send(&simnet.Packet{Type: simnet.Raw, Src: net.Hosts[0].IP, Dst: net.Hosts[1].IP, Payload: 1500})
	// Kill the destination access link while the frame is mid-flight
	// (serialization at 100Gbps is ~126ns; propagation 600ns).
	eng.RunFor(200 * sim.Nanosecond)
	in.LinkDown(in.HostLink(1))
	eng.RunFor(sim.Millisecond)
	if got {
		t.Fatal("frame in flight on a failed link was delivered")
	}
}

func TestSwitchCrashAndRestart(t *testing.T) {
	eng := sim.New(1)
	net := topo.Testbed(eng, 3)
	in := NewInjector(net)
	sw := net.Switches[0]

	restarted := false
	sw.OnRestart = func() { restarted = true }

	in.CrashSwitch(sw)
	if !sw.Crashed() {
		t.Fatal("switch not crashed")
	}
	if rawDelivered(eng, net, 0, 1, sim.Millisecond) {
		t.Fatal("crashed switch forwarded a packet")
	}
	if sw.CrashDrops == 0 {
		t.Fatal("crashed switch recorded no crash drops")
	}
	in.RestartSwitch(sw)
	if !restarted {
		t.Fatal("restart hook did not fire")
	}
	if !rawDelivered(eng, net, 0, 1, sim.Millisecond) {
		t.Fatal("restarted switch did not forward")
	}
	// Idempotence: double crash / double restart count once.
	in.CrashSwitch(sw)
	in.CrashSwitch(sw)
	in.RestartSwitch(sw)
	in.RestartSwitch(sw)
	if in.Stats.SwitchCrashes != 2 || in.Stats.SwitchRestarts != 2 {
		t.Fatalf("stats = %+v", in.Stats)
	}
}

func TestFlapRestoresLink(t *testing.T) {
	eng := sim.New(1)
	net := topo.Testbed(eng, 2)
	in := NewInjector(net)

	in.Flap(in.HostLink(1), 100*sim.Microsecond)
	if !net.Hosts[1].NIC.Down() {
		t.Fatal("flap did not take the link down")
	}
	eng.RunFor(sim.Millisecond)
	if net.Hosts[1].NIC.Down() {
		t.Fatal("flap did not bring the link back")
	}
	if in.Stats.PortFlaps != 1 {
		t.Fatalf("stats = %+v", in.Stats)
	}
}

func TestAutoRepairRoutesExcludesDeadSpine(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	in.AutoRepairRoutes = true

	spine := net.Switches[2] // leaves first, then spines
	in.CrashSwitch(spine)
	if in.Stats.RouteRepairs == 0 {
		t.Fatal("auto route repair did not run")
	}
	// Cross-leaf traffic must still flow via the surviving spine.
	if !rawDelivered(eng, net, 0, 2, sim.Millisecond) {
		t.Fatal("cross-leaf traffic died with one of two spines")
	}
	if !net.PathExists(net.Hosts[0], net.Hosts[2]) {
		t.Fatal("PathExists false despite surviving spine")
	}
	// Kill the second spine: now the leaves are partitioned.
	in.CrashSwitch(net.Switches[3])
	if net.PathExists(net.Hosts[0], net.Hosts[2]) {
		t.Fatal("PathExists true with both spines dead")
	}
	if net.PathExists(net.Hosts[0], net.Hosts[1]) == false {
		t.Fatal("same-leaf hosts should remain connected")
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() []Event {
		eng := sim.New(1)
		net := topo.LeafSpine(eng, 2, 2, 2)
		in := NewInjector(net)
		in.AutoRepairRoutes = true
		var links []*simnet.Port
		for _, sw := range net.Switches[:2] {
			for _, pt := range sw.Ports {
				if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
					links = append(links, pt)
				}
			}
		}
		plan, err := in.Chaos(ChaosConfig{
			Seed: 7, Horizon: 50 * sim.Millisecond, Events: 6,
			MinDowntime: sim.Millisecond, MaxDowntime: 5 * sim.Millisecond,
			Links: links, Switches: net.Switches[2:], FlapFraction: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(100 * sim.Millisecond)
		if in.Stats.ChaosEvents != 6 {
			t.Fatalf("chaos injected %d/6 events", in.Stats.ChaosEvents)
		}
		// Everything must be repaired by the end of the horizon + max downtime.
		for _, sw := range net.Switches {
			if sw.Crashed() {
				t.Fatalf("switch %s still dead after chaos drained", sw.Name)
			}
		}
		for _, pt := range links {
			if pt.Down() {
				t.Fatal("link still dead after chaos drained")
			}
		}
		return plan
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
