package fault

import (
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Gray-failure injection: layered on simnet's per-port Impairment, the
// injector adds episode scheduling, both-direction application, overlap
// bookkeeping and fault-event recording. Unlike fail-stop faults, gray
// episodes are PDES-safe: each direction's transition is scheduled on the
// owning port's engine and mutates only port-local state, so a partitioned
// run applies them at exactly the same points in each LP's history as a
// sequential run does.

// peerSeedMix separates the two directions' impairment RNG streams (and
// successive episodes on the same port) without the caller having to manage
// seeds; the constant is the same odd 64-bit mixer the PDES coordinator uses
// for per-LP streams.
const peerSeedMix = int64(-7046029254386353131)

// grayEntry is one scheduled impairment episode on one egress direction.
type grayEntry struct {
	imp    simnet.Impairment
	seed   int64
	active bool
}

// grayStack tracks the episodes targeting one egress direction, in
// scheduling order. When episodes overlap, the most recently scheduled
// active one wins (last-writer semantics, matching SetImpairment replace
// behaviour); when an episode ends, the port falls back to the next still-
// active entry instead of being silently marked healthy — the gray half of
// repair idempotence.
type grayStack struct {
	pt      *simnet.Port
	entries []*grayEntry
}

// apply installs the winning entry (or clears the impairment if none is
// active). Re-applying re-seeds the winner's RNG; that is deterministic —
// the re-seed happens at an episode boundary, which is itself a scheduled
// event — and models the link's error process changing when the fault
// condition changes.
func (gs *grayStack) apply() {
	for i := len(gs.entries) - 1; i >= 0; i-- {
		if e := gs.entries[i]; e.active {
			gs.pt.SetImpairment(e.imp, e.seed)
			return
		}
	}
	gs.pt.ClearImpairment()
}

func (in *Injector) grayFor(pt *simnet.Port) *grayStack {
	gs := in.grays[pt]
	if gs == nil {
		gs = &grayStack{pt: pt}
		in.grays[pt] = gs
	}
	return gs
}

// grayRecord books a gray transition. Under PDES the injector has no engine
// (episodes are scheduled pre-run directly on port engines) and per-LP
// callbacks must not touch shared injector state, so recording is sequential-
// only; stats are counted at scheduling time instead.
func (in *Injector) grayRecord(kind Kind, pt *simnet.Port) {
	if in.eng == nil {
		return
	}
	in.record(kind, linkName(pt))
}

// degradeDir schedules one direction's episode on that port's own engine.
// Only the primary direction records fault events (one LinkDegrade/
// LinkRepair pair per link-level episode, like LinkDown/LinkUp).
func (in *Injector) degradeDir(pt *simnet.Port, at, until sim.Time, imp simnet.Impairment, seed int64, primary bool) {
	gs := in.grayFor(pt)
	e := &grayEntry{imp: imp, seed: seed}
	gs.entries = append(gs.entries, e)
	eng := pt.Engine()
	eng.Schedule(at, func() {
		e.active = true
		gs.apply()
		if primary {
			in.grayRecord(LinkDegrade, pt)
		}
	})
	eng.Schedule(until, func() {
		e.active = false
		gs.apply()
		if primary {
			in.grayRecord(LinkRepair, pt)
		}
	})
}

// DegradeEpisode schedules a gray impairment on both directions of pt's link
// over [at, until). seed derives the episode's private loss/jitter RNG
// streams (the peer direction gets an independent stream). Safe to call
// before a partitioned run: transitions are scheduled on each port's owning
// engine and touch only port-local state.
func (in *Injector) DegradeEpisode(pt *simnet.Port, at, until sim.Time, imp simnet.Impairment, seed int64) {
	in.Stats.LinkDegrades++
	in.Stats.LinkRepairs++
	in.degradeDir(pt, at, until, imp, seed, true)
	if pt.Peer != nil {
		in.degradeDir(pt.Peer, at, until, imp, seed^peerSeedMix, false)
	}
}

// Degrade installs a gray impairment on both directions of pt's link now,
// until Repair. Immediate mutation, so sequential runs only (like LinkDown).
func (in *Injector) Degrade(pt *simnet.Port, imp simnet.Impairment, seed int64) {
	in.Stats.LinkDegrades++
	for i, p := range []*simnet.Port{pt, pt.Peer} {
		if p == nil {
			continue
		}
		gs := in.grayFor(p)
		s := seed
		if i == 1 {
			s ^= peerSeedMix
		}
		gs.entries = append(gs.entries, &grayEntry{imp: imp, seed: s, active: true})
		gs.apply()
	}
	in.grayRecord(LinkDegrade, pt)
}

// Repair ends every active gray episode on pt's link (both directions). A
// repair racing an overlapping scheduled episode is safe: the episode's own
// end event finds its entry already inactive and the stack re-applies
// whatever is still in force.
func (in *Injector) Repair(pt *simnet.Port) {
	repaired := false
	for _, p := range []*simnet.Port{pt, pt.Peer} {
		if p == nil {
			continue
		}
		gs := in.grayFor(p)
		for _, e := range gs.entries {
			if e.active {
				e.active = false
				repaired = true
			}
		}
		gs.apply()
	}
	if repaired {
		in.Stats.LinkRepairs++
		in.grayRecord(LinkRepair, pt)
	}
}
