package fault

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func trunkPort(t *testing.T, net *topo.Network) *simnet.Port {
	t.Helper()
	for _, pt := range net.Switches[0].Ports {
		if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
			return pt
		}
	}
	t.Fatal("no trunk port")
	return nil
}

func TestChaosConfigValidation(t *testing.T) {
	eng := sim.New(1)
	net := topo.Testbed(eng, 2)
	in := NewInjector(net)
	link := in.HostLink(0)
	good := ChaosConfig{
		Seed: 1, Horizon: sim.Millisecond, Events: 2,
		MinDowntime: sim.Microsecond, MaxDowntime: 2 * sim.Microsecond,
		Links: []*simnet.Port{link},
	}
	if _, err := in.Chaos(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*ChaosConfig){
		func(c *ChaosConfig) { c.Events = 0 },
		func(c *ChaosConfig) { c.Events = -3 },
		func(c *ChaosConfig) { c.Horizon = 0 },
		func(c *ChaosConfig) { c.MinDowntime = -sim.Microsecond },
		func(c *ChaosConfig) { c.MaxDowntime = -sim.Microsecond },
		func(c *ChaosConfig) { c.FlapFraction = -0.1 },
		func(c *ChaosConfig) { c.FlapFraction = 1.5 },
		func(c *ChaosConfig) { c.Links, c.Switches = nil, nil },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if plan, err := in.Chaos(cfg); err == nil {
			t.Errorf("bad config %d accepted (plan len %d)", i, len(plan))
		}
	}
}

// TestOverlappingDownEpisodesIdempotent pins the repair-idempotence
// property: two overlapping fail-stop episodes on one link (scheduled via
// either end) must revive the link exactly once, when the LAST one ends.
func TestOverlappingDownEpisodesIdempotent(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)

	in.DownEpisode(pt, 1*sim.Millisecond, 5*sim.Millisecond)
	in.DownEpisode(pt.Peer, 3*sim.Millisecond, 9*sim.Millisecond) // other end: same link

	check := func(at sim.Time, down bool) {
		eng.RunUntil(at)
		if pt.Down() != down || pt.Peer.Down() != down {
			t.Fatalf("at %v: down=%v/%v, want %v", at, pt.Down(), pt.Peer.Down(), down)
		}
	}
	check(500*sim.Microsecond, false)
	check(2*sim.Millisecond, true)
	check(6*sim.Millisecond, true) // first episode's repair must not revive
	check(10*sim.Millisecond, false)
	if in.Stats.LinkDowns != 1 || in.Stats.LinkUps != 1 {
		t.Fatalf("expected exactly one down/up transition, got %+v", in.Stats)
	}
}

// TestDownEpisodeDoesNotClearDegrade pins the other half: a fail-stop
// episode's repair overlapping a gray episode must leave the degraded link
// marked degraded, not healthy.
func TestDownEpisodeDoesNotClearDegrade(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)

	imp := simnet.Impairment{LossRate: 0.2}
	in.DegradeEpisode(pt, 1*sim.Millisecond, 8*sim.Millisecond, imp, 42)
	in.DownEpisode(pt, 2*sim.Millisecond, 5*sim.Millisecond)

	eng.RunUntil(6 * sim.Millisecond) // down episode repaired, gray still active
	if pt.Down() {
		t.Fatal("link still down after its fail-stop episode ended")
	}
	got, ok := pt.CurrentImpairment()
	if !ok || got.LossRate != imp.LossRate {
		t.Fatalf("gray impairment stripped by fail-stop repair: %+v ok=%v", got, ok)
	}
	if !pt.Peer.Impaired() {
		t.Fatal("peer direction lost its impairment")
	}
	eng.RunUntil(9 * sim.Millisecond)
	if pt.Impaired() || pt.Peer.Impaired() {
		t.Fatal("impairment survived its own episode end")
	}
	if in.Stats.LinkDegrades != 1 || in.Stats.LinkRepairs != 1 {
		t.Fatalf("gray stats: %+v", in.Stats)
	}
}

// TestOverlappingDegradeEpisodes: when two gray episodes overlap on one
// egress, the later-scheduled one wins while both are active, and the end
// of the later must fall back to the earlier — not mark the link healthy.
func TestOverlappingDegradeEpisodes(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)

	in.DegradeEpisode(pt, 1*sim.Millisecond, 10*sim.Millisecond, simnet.Impairment{LossRate: 0.1}, 1)
	in.DegradeEpisode(pt, 3*sim.Millisecond, 6*sim.Millisecond, simnet.Impairment{LossRate: 0.5}, 2)

	rate := func(at sim.Time) float64 {
		eng.RunUntil(at)
		imp, ok := pt.CurrentImpairment()
		if !ok {
			return -1
		}
		return imp.LossRate
	}
	if r := rate(2 * sim.Millisecond); r != 0.1 {
		t.Fatalf("before overlap: loss=%v", r)
	}
	if r := rate(4 * sim.Millisecond); r != 0.5 {
		t.Fatalf("during overlap the later episode must win: loss=%v", r)
	}
	if r := rate(7 * sim.Millisecond); r != 0.1 {
		t.Fatalf("after the later ends the earlier must resume: loss=%v", r)
	}
	if r := rate(11 * sim.Millisecond); r != -1 {
		t.Fatalf("after both end the link must be healthy: loss=%v", r)
	}
}

// TestFlapCannotReviveDownEpisode: a short flap inside a longer down
// episode must not bring the link up early when the flap's revival fires.
func TestFlapCannotReviveDownEpisode(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)

	in.DownEpisode(pt, 1*sim.Millisecond, 8*sim.Millisecond)
	in.At(2*sim.Millisecond, func() { in.Flap(pt, sim.Millisecond) })

	eng.RunUntil(4 * sim.Millisecond) // flap's up fired at 3ms
	if !pt.Down() {
		t.Fatal("flap revived a link a longer episode still holds down")
	}
	eng.RunUntil(9 * sim.Millisecond)
	if pt.Down() {
		t.Fatal("link not revived after the last hold released")
	}
}

// TestRepairRacingScheduledEpisodeEnd: a manual Repair before a gray
// episode's scheduled end must not cause the end event to double-book a
// repair or corrupt the stack.
func TestRepairRacingScheduledEpisodeEnd(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)

	in.DegradeEpisode(pt, 1*sim.Millisecond, 8*sim.Millisecond, simnet.Impairment{LossRate: 0.3}, 7)
	in.At(4*sim.Millisecond, func() { in.Repair(pt) })

	eng.RunUntil(5 * sim.Millisecond)
	if pt.Impaired() || pt.Peer.Impaired() {
		t.Fatal("Repair did not clear the active episode")
	}
	eng.RunUntil(9 * sim.Millisecond) // episode's own end event fires harmlessly
	if pt.Impaired() {
		t.Fatal("episode end re-installed a repaired impairment")
	}
	if in.Stats.LinkRepairs != 2 {
		// One counted at scheduling time (the episode's paired repair), one
		// by the manual Repair.
		t.Fatalf("LinkRepairs = %d, want 2", in.Stats.LinkRepairs)
	}
}

func TestSoakValidation(t *testing.T) {
	eng := sim.New(1)
	net := topo.LeafSpine(eng, 2, 2, 2)
	in := NewInjector(net)
	pt := trunkPort(t, net)
	good := SoakConfig{
		Seed: 1, Episodes: 4, Horizon: 10 * sim.Millisecond,
		MinDuration: sim.Millisecond, MaxDuration: 2 * sim.Millisecond,
		GrayLinks: []*simnet.Port{pt},
	}
	bad := []func(*SoakConfig){
		func(c *SoakConfig) { c.Episodes = 0 },
		func(c *SoakConfig) { c.Horizon = 0 },
		func(c *SoakConfig) { c.MinDuration = -1 },
		func(c *SoakConfig) { c.FailStopFraction = 2 },
		func(c *SoakConfig) { c.MaxLossRate = -0.1 },
		func(c *SoakConfig) { c.MinBandwidthFraction = 1.5 },
		func(c *SoakConfig) { c.GrayLinks = nil },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := in.Soak(cfg); err == nil {
			t.Errorf("bad soak config %d accepted", i)
		}
	}
}

// TestSoakPlanDeterministic: the same seed plans the same episodes, and the
// schedule actually drains (every hold released, every impairment cleared).
func TestSoakPlanDeterministic(t *testing.T) {
	run := func() ([]Episode, *topo.Network) {
		eng := sim.New(1)
		net := topo.LeafSpine(eng, 2, 2, 2)
		in := NewInjector(net)
		var trunks []*simnet.Port
		for _, sw := range net.Switches[:2] {
			for _, pt := range sw.Ports {
				if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
					trunks = append(trunks, pt)
				}
			}
		}
		plan, err := in.Soak(SoakConfig{
			Seed: 11, Episodes: 12, Horizon: 30 * sim.Millisecond,
			MinDuration: sim.Millisecond, MaxDuration: 4 * sim.Millisecond,
			FailStopLinks: trunks, Switches: net.Switches[2:], GrayLinks: trunks,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(60 * sim.Millisecond)
		return plan, net
	}
	a, netA := run()
	b, _ := run()
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Start < a[i-1].Start {
			t.Fatal("plan not sorted by start time")
		}
	}
	for _, sw := range netA.Switches {
		if sw.Crashed() {
			t.Fatalf("switch %s still crashed after the schedule drained", sw.Name)
		}
		for _, pt := range sw.Ports {
			if pt.Down() || pt.Impaired() {
				t.Fatal("element still down/impaired after the schedule drained")
			}
		}
	}
}

func TestComputeSLOAttribution(t *testing.T) {
	plan := []Episode{
		{Index: 0, Kind: EpLoss, Target: "a", Start: 1000, End: 5000},
		{Index: 1, Kind: EpLinkDown, Target: "b", Start: 10000, End: 20000},
	}
	marks := []RecoveryMark{
		{Reason: "trip-a", DetectAt: 2000, FirstFallbackAt: 2500, RestoreAt: 6000},
		{Reason: "trip-b", DetectAt: 12000, FirstFallbackAt: -1, RestoreAt: -1},
		{Reason: "stray", DetectAt: 900000, FirstFallbackAt: -1, RestoreAt: -1},
	}
	r := ComputeSLO(plan, marks)
	if r.Detected != 2 || r.Restored != 1 || r.Unattributed != 1 {
		t.Fatalf("report: %+v", r)
	}
	e0 := r.PerEpisode[0]
	if !e0.Detected || e0.DetectLatency != 1000 || e0.DeliveryGap != 500 || e0.TimeToRestore != 1000 {
		t.Fatalf("episode 0 SLO: %+v", e0)
	}
	e1 := r.PerEpisode[1]
	if !e1.Detected || e1.DeliveryGap != -1 || e1.TimeToRestore != -1 {
		t.Fatalf("episode 1 SLO: %+v", e1)
	}
	if r.DetectP50 != 1000 && r.DetectP50 != 2000 {
		t.Fatalf("detect p50 = %v", r.DetectP50)
	}
}
