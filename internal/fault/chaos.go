package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// ChaosConfig parameterizes a seeded schedule of composed faults. The
// schedule is generated up front from its own RNG (not the engine's), so
// two runs with the same seed and candidate sets inject the identical
// fault sequence regardless of what the workload does in between.
type ChaosConfig struct {
	// Seed drives schedule generation.
	Seed int64

	// Horizon is the window faults are injected into, from the current
	// simulation time.
	Horizon sim.Time

	// Events is how many fault episodes to schedule (each episode is a
	// down transition plus its paired repair).
	Events int

	// MinDowntime/MaxDowntime bound how long each episode keeps its target
	// dead. MaxDowntime <= MinDowntime pins the downtime at MinDowntime.
	MinDowntime sim.Time
	MaxDowntime sim.Time

	// Links are candidate links (either end's port). Nil disables link
	// episodes.
	Links []*simnet.Port

	// Switches are candidate crash targets. Nil disables switch episodes.
	Switches []*simnet.Switch

	// FlapFraction is the fraction of link episodes injected as rapid
	// flaps (down and back up after MinDowntime) rather than a full
	// down/up episode. Must lie in [0, 1].
	FlapFraction float64
}

// Validate rejects configurations that would previously have produced a
// silently empty (or nonsensical) schedule.
func (cfg *ChaosConfig) Validate() error {
	if cfg.Events <= 0 {
		return fmt.Errorf("chaos: Events must be positive, got %d", cfg.Events)
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("chaos: Horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.MinDowntime < 0 || cfg.MaxDowntime < 0 {
		return fmt.Errorf("chaos: downtimes must be non-negative, got min=%v max=%v", cfg.MinDowntime, cfg.MaxDowntime)
	}
	if cfg.FlapFraction < 0 || cfg.FlapFraction > 1 {
		return fmt.Errorf("chaos: FlapFraction must be in [0,1], got %g", cfg.FlapFraction)
	}
	if len(cfg.Links) == 0 && len(cfg.Switches) == 0 {
		return errors.New("chaos: no candidate links or switches")
	}
	return nil
}

// Chaos generates and schedules a deterministic fault storm, returning the
// planned episodes (down-transition times) for logging. Episodes are
// hold-counted (DownEpisode/CrashEpisode), so overlapping episodes on the
// same element compose instead of double-reviving: the element comes back
// exactly when its last overlapping episode ends.
func (in *Injector) Chaos(cfg ChaosConfig) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := in.eng.Now()
	downFor := func() sim.Time {
		if cfg.MaxDowntime <= cfg.MinDowntime {
			return cfg.MinDowntime
		}
		return cfg.MinDowntime + sim.Time(rng.Int63n(int64(cfg.MaxDowntime-cfg.MinDowntime)))
	}
	var plan []Event
	for i := 0; i < cfg.Events; i++ {
		at := base + sim.Time(rng.Int63n(int64(cfg.Horizon)))
		// Pick a target class, weighted by candidate counts.
		k := rng.Intn(len(cfg.Links) + len(cfg.Switches))
		if k < len(cfg.Links) {
			pt := cfg.Links[k]
			d := downFor()
			if cfg.FlapFraction > 0 && rng.Float64() < cfg.FlapFraction {
				plan = append(plan, Event{At: at, Kind: PortFlap, Target: linkName(pt)})
				in.At(at, func() { in.Stats.ChaosEvents++; in.Flap(pt, cfg.MinDowntime) })
				continue
			}
			plan = append(plan, Event{At: at, Kind: LinkDown, Target: linkName(pt)})
			in.DownEpisode(pt, at, at+d)
			in.At(at, func() { in.Stats.ChaosEvents++ })
		} else {
			sw := cfg.Switches[k-len(cfg.Links)]
			d := downFor()
			plan = append(plan, Event{At: at, Kind: SwitchCrash, Target: sw.Name})
			in.CrashEpisode(sw, at, at+d)
			in.At(at, func() { in.Stats.ChaosEvents++ })
		}
	}
	return plan, nil
}
