// Package fault is the deterministic fail-stop fault-injection subsystem:
// it kills and revives links, crashes and restarts switches, and flaps
// ports, all as events on the internal/sim engine so every run is
// bit-for-bit reproducible. The primitives compose into scripted scenarios
// (cmd/faultsim) and seeded chaos schedules (chaos.go); the detect →
// degrade → repair → restore pipeline in the root package is exercised
// against them.
//
// The fault model is fail-stop: a dead element transmits nothing and
// absorbs everything, with no byzantine corruption. A crashed switch loses
// its volatile state (the accelerator wipes every MFT via the switch's
// restart hook) but keeps its FIB, the way reloaded switch configuration
// survives a power cycle while FPGA SRAM does not.
package fault

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Kind classifies a fault transition.
type Kind string

// The fault-event kinds an Injector emits.
const (
	LinkDown      Kind = "link-down"
	LinkUp        Kind = "link-up"
	SwitchCrash   Kind = "switch-crash"
	SwitchRestart Kind = "switch-restart"
	PortFlap      Kind = "port-flap"
	LinkDegrade   Kind = "link-degrade" // gray impairment installed (gray.go)
	LinkRepair    Kind = "link-repair"  // gray impairment cleared
)

// Event records one fault transition.
type Event struct {
	At     sim.Time
	Kind   Kind
	Target string
}

func (e Event) String() string { return fmt.Sprintf("%v %s %s", e.At, e.Kind, e.Target) }

// Stats counts fault transitions, for the root Cluster metrics.
type Stats struct {
	LinkDowns       uint64
	LinkUps         uint64
	SwitchCrashes   uint64
	SwitchRestarts  uint64
	PortFlaps       uint64
	LinkDegrades    uint64 // gray impairment episodes installed
	LinkRepairs     uint64 // gray impairment episodes cleared
	ChaosEvents     uint64 // transitions injected by a chaos schedule
	RouteRepairs    uint64 // automatic FIB recomputations
	DroppedInFlight uint64 // unused by the injector itself; reserved
}

// Injector drives fail-stop faults into one network. All mutations happen
// on the simulation engine's clock; scheduling helpers make scripted
// scenarios one-liners.
type Injector struct {
	Net   *topo.Network
	Stats Stats

	// AutoRepairRoutes recomputes every ECMP FIB after each transition, so
	// unicast traffic (and subsequent MDT registrations) immediately avoid
	// dead elements. Scenario runners usually want this on; tests that
	// exercise stale-route behaviour leave it off.
	AutoRepairRoutes bool

	// OnEvent observes every transition (after any route repair).
	OnEvent func(Event)

	// Log keeps every transition in order, for scenario assertions and the
	// faultsim timeline.
	Log []Event

	eng *sim.Engine

	// Hold-counted episode state (see DownEpisode/CrashEpisode and gray.go):
	// overlapping episodes on the same element reference-count their holds,
	// so a repair only revives the element when the LAST overlapping episode
	// releases it, and a fail-stop repair can never strip a still-active
	// degradation. Maps are populated at scheduling time (before the run
	// under PDES); the scheduled callbacks touch only the per-element
	// structs.
	linkHolds map[string]*linkHold
	swHolds   map[*simnet.Switch]*swHold
	grays     map[*simnet.Port]*grayStack
}

// linkHold reference-counts fail-stop episodes on one link (both directions
// fail and revive together, keyed direction-insensitively).
type linkHold struct {
	pt    *simnet.Port
	downs int
}

// swHold reference-counts crash episodes on one switch.
type swHold struct {
	sw      *simnet.Switch
	crashes int
}

// NewInjector binds an injector to a network.
func NewInjector(net *topo.Network) *Injector {
	return &Injector{
		Net: net, eng: net.Eng,
		linkHolds: make(map[string]*linkHold),
		swHolds:   make(map[*simnet.Switch]*swHold),
		grays:     make(map[*simnet.Port]*grayStack),
	}
}

func (in *Injector) record(kind Kind, target string) {
	ev := Event{At: in.eng.Now(), Kind: kind, Target: target}
	in.Log = append(in.Log, ev)
	if in.AutoRepairRoutes {
		in.Net.RebuildRoutes()
		in.Stats.RouteRepairs++
	}
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}

func linkName(pt *simnet.Port) string {
	if pt.Peer == nil {
		return fmt.Sprintf("%s.%d<->?", pt.Dev.DeviceName(), pt.ID)
	}
	return fmt.Sprintf("%s.%d<->%s.%d", pt.Dev.DeviceName(), pt.ID, pt.Peer.Dev.DeviceName(), pt.Peer.ID)
}

// linkKey identifies a link direction-insensitively: episodes targeting the
// two ends of the same link must share one hold counter, or an overlap could
// double-revive.
func linkKey(pt *simnet.Port) string {
	a := fmt.Sprintf("%s.%d", pt.Dev.DeviceName(), pt.ID)
	if pt.Peer == nil {
		return a + "|?"
	}
	b := fmt.Sprintf("%s.%d", pt.Peer.Dev.DeviceName(), pt.Peer.ID)
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

func (in *Injector) holdFor(pt *simnet.Port) *linkHold {
	k := linkKey(pt)
	h := in.linkHolds[k]
	if h == nil {
		h = &linkHold{pt: pt}
		in.linkHolds[k] = h
	}
	return h
}

func (in *Injector) swHoldFor(sw *simnet.Switch) *swHold {
	h := in.swHolds[sw]
	if h == nil {
		h = &swHold{sw: sw}
		in.swHolds[sw] = h
	}
	return h
}

// holdDown takes one episode's down-hold on a link; the link fail-stops on
// the first hold only.
func (in *Injector) holdDown(h *linkHold) {
	h.downs++
	if h.downs > 1 {
		return
	}
	pt := h.pt
	pt.SetDown(true)
	if pt.Peer != nil {
		pt.Peer.SetDown(true)
	}
	in.Stats.LinkDowns++
	in.record(LinkDown, linkName(pt))
}

// releaseDown drops one episode's down-hold; the link revives only when the
// last overlapping episode lets go — the repair-idempotence property that
// paired down/up scheduling lacked.
func (in *Injector) releaseDown(h *linkHold) {
	if h.downs == 0 {
		return
	}
	h.downs--
	if h.downs > 0 {
		return
	}
	pt := h.pt
	pt.SetDown(false)
	if pt.Peer != nil {
		pt.Peer.SetDown(false)
	}
	in.Stats.LinkUps++
	in.record(LinkUp, linkName(pt))
}

func (in *Injector) holdCrash(h *swHold) {
	h.crashes++
	if h.crashes > 1 {
		return
	}
	h.sw.Crash()
	in.Stats.SwitchCrashes++
	in.record(SwitchCrash, h.sw.Name)
}

func (in *Injector) releaseCrash(h *swHold) {
	if h.crashes == 0 {
		return
	}
	h.crashes--
	if h.crashes > 0 {
		return
	}
	h.sw.Restart()
	in.Stats.SwitchRestarts++
	in.record(SwitchRestart, h.sw.Name)
}

// DownEpisode schedules a hold-counted fail-stop episode on pt's link over
// [at, until). Overlapping episodes on the same link compose: the link is
// down while any episode holds it and revives exactly once, when the last
// one ends. Sequential runs only, like all fail-stop injection.
func (in *Injector) DownEpisode(pt *simnet.Port, at, until sim.Time) {
	h := in.holdFor(pt)
	in.eng.Schedule(at, func() { in.holdDown(h) })
	in.eng.Schedule(until, func() { in.releaseDown(h) })
}

// CrashEpisode schedules a hold-counted crash episode on sw over [at,
// until), with the same overlap semantics as DownEpisode.
func (in *Injector) CrashEpisode(sw *simnet.Switch, at, until sim.Time) {
	h := in.swHoldFor(sw)
	in.eng.Schedule(at, func() { in.holdCrash(h) })
	in.eng.Schedule(until, func() { in.releaseCrash(h) })
}

// LinkDown fail-stops both directions of the link pt belongs to: queued and
// in-flight frames are lost, and nothing passes until LinkUp.
func (in *Injector) LinkDown(pt *simnet.Port) {
	if pt.Down() && (pt.Peer == nil || pt.Peer.Down()) {
		return
	}
	pt.SetDown(true)
	if pt.Peer != nil {
		pt.Peer.SetDown(true)
	}
	in.Stats.LinkDowns++
	in.record(LinkDown, linkName(pt))
}

// LinkUp revives both directions of the link pt belongs to.
func (in *Injector) LinkUp(pt *simnet.Port) {
	if !pt.Down() && (pt.Peer == nil || !pt.Peer.Down()) {
		return
	}
	pt.SetDown(false)
	if pt.Peer != nil {
		pt.Peer.SetDown(false)
	}
	in.Stats.LinkUps++
	in.record(LinkUp, linkName(pt))
}

// HostLink returns the access link of host i (the host-side port); handy
// for the common "kill the ToR→host link" scenario.
func (in *Injector) HostLink(i int) *simnet.Port { return in.Net.Hosts[i].NIC }

// CrashSwitch fail-stops a switch: every port goes down and the
// accelerator's volatile state (the MFTs) is wiped when it restarts.
func (in *Injector) CrashSwitch(sw *simnet.Switch) {
	if sw.Crashed() {
		return
	}
	sw.Crash()
	in.Stats.SwitchCrashes++
	in.record(SwitchCrash, sw.Name)
}

// RestartSwitch brings a crashed switch back with an empty MFT.
func (in *Injector) RestartSwitch(sw *simnet.Switch) {
	if !sw.Crashed() {
		return
	}
	sw.Restart()
	in.Stats.SwitchRestarts++
	in.record(SwitchRestart, sw.Name)
}

// Flap takes the link down now and back up after downFor — the classic
// flapping-port pathology that recovery hysteresis exists to absorb. Flaps
// are hold-counted like episodes, so a flap overlapping a longer down
// episode cannot revive the link early.
func (in *Injector) Flap(pt *simnet.Port, downFor sim.Time) {
	in.Stats.PortFlaps++
	in.record(PortFlap, linkName(pt))
	h := in.holdFor(pt)
	in.holdDown(h)
	in.eng.After(downFor, func() { in.releaseDown(h) })
}

// ---- scheduling helpers (absolute simulation time) ----

// At schedules an arbitrary fault action.
func (in *Injector) At(t sim.Time, fn func()) { in.eng.Schedule(t, fn) }

// LinkDownAt schedules LinkDown at t.
func (in *Injector) LinkDownAt(t sim.Time, pt *simnet.Port) {
	in.eng.Schedule(t, func() { in.LinkDown(pt) })
}

// LinkUpAt schedules LinkUp at t.
func (in *Injector) LinkUpAt(t sim.Time, pt *simnet.Port) {
	in.eng.Schedule(t, func() { in.LinkUp(pt) })
}

// CrashAt schedules CrashSwitch at t.
func (in *Injector) CrashAt(t sim.Time, sw *simnet.Switch) {
	in.eng.Schedule(t, func() { in.CrashSwitch(sw) })
}

// RestartAt schedules RestartSwitch at t.
func (in *Injector) RestartAt(t sim.Time, sw *simnet.Switch) {
	in.eng.Schedule(t, func() { in.RestartSwitch(sw) })
}

// FlapAt schedules Flap at t.
func (in *Injector) FlapAt(t sim.Time, pt *simnet.Port, downFor sim.Time) {
	in.eng.Schedule(t, func() { in.Flap(pt, downFor) })
}
