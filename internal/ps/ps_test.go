package ps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func run(t *testing.T, scheme Scheme, cfg Config) Result {
	t.Helper()
	core.ResetMcstIDs()
	eng := sim.New(1)
	c := NewTestbed(eng, cfg, scheme)
	res := c.Run()
	if len(res.GradSums) != cfg.Iterations {
		t.Fatalf("%s: %d gradient aggregates for %d iterations", scheme, len(res.GradSums), cfg.Iterations)
	}
	want := c.ExpectedGradSum()
	for it, got := range res.GradSums {
		if got != want {
			t.Fatalf("%s iter %d: aggregated gradient %v, want %v", scheme, it, got, want)
		}
	}
	return res
}

func smallCfg(workers int) Config {
	return Config{
		Workers: workers, ModelBytes: 4 << 20, GradBytes: 4 << 20,
		ComputeNs: sim.Millisecond, Iterations: 3,
	}
}

func TestTrainingLoopCepheus(t *testing.T) {
	res := run(t, SchemeCepheus, smallCfg(3))
	if res.JCT <= 0 || res.Bcast <= 0 || res.Reduce <= 0 {
		t.Fatalf("degenerate decomposition: %+v", res)
	}
	if res.JCT != res.Bcast+res.Reduce+res.Compute {
		t.Fatalf("JCT %v does not decompose (%v + %v + %v)", res.JCT, res.Bcast, res.Reduce, res.Compute)
	}
}

func TestTrainingLoopAMcast(t *testing.T) {
	run(t, SchemeAMcast, smallCfg(3))
}

func TestCepheusBeatsAMcastCommunication(t *testing.T) {
	cfg := smallCfg(3)
	cfg.ModelBytes = 32 << 20
	cfg.GradBytes = 32 << 20
	ceph := run(t, SchemeCepheus, cfg)
	base := run(t, SchemeAMcast, cfg)
	if ceph.Bcast >= base.Bcast {
		t.Fatalf("cepheus bcast %v not faster than chain %v", ceph.Bcast, base.Bcast)
	}
	if ceph.Reduce >= base.Reduce {
		t.Fatalf("in-network reduce %v not faster than gather %v", ceph.Reduce, base.Reduce)
	}
	if ceph.JCT >= base.JCT {
		t.Fatalf("cepheus JCT %v not faster than baseline %v", ceph.JCT, base.JCT)
	}
	t.Logf("per-iter comm: cepheus %v vs amcast %v (%.1fx)",
		(ceph.Bcast+ceph.Reduce)/sim.Time(cfg.Iterations),
		(base.Bcast+base.Reduce)/sim.Time(cfg.Iterations),
		float64(base.Bcast+base.Reduce)/float64(ceph.Bcast+ceph.Reduce))
}

func TestMoreWorkersSameCepheusBcast(t *testing.T) {
	// The multicast side should be insensitive to worker count; the gather
	// baseline's reduce degrades with incast.
	c3 := run(t, SchemeCepheus, smallCfg(3))
	c6 := run(t, SchemeCepheus, smallCfg(6))
	if float64(c6.Bcast) > 1.5*float64(c3.Bcast) {
		t.Fatalf("cepheus bcast grew with workers: %v -> %v", c3.Bcast, c6.Bcast)
	}
	b3 := run(t, SchemeAMcast, smallCfg(3))
	b6 := run(t, SchemeAMcast, smallCfg(6))
	if b6.Reduce <= b3.Reduce {
		t.Fatalf("gather incast should degrade with workers: %v -> %v", b3.Reduce, b6.Reduce)
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheme accepted")
		}
	}()
	NewTestbed(sim.New(1), smallCfg(2), "bogus")
}
