// Package ps models the parameter-server training pattern the paper's
// introduction motivates: each iteration the PS distributes the updated
// model to every worker (a one-to-many multicast — the paper's headline
// use case) and the workers push gradients back (a many-to-one reduction —
// the future-work primitive implemented in internal/core). With Cepheus
// both directions ride one multicast group; the baseline uses AMcast
// broadcast plus an incast gather.
package ps

import (
	"fmt"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Config sizes the training job.
type Config struct {
	Workers    int
	ModelBytes int      // parameters pushed PS -> workers per iteration
	GradBytes  int      // gradients pushed worker -> PS per iteration
	ComputeNs  sim.Time // per-iteration worker compute time
	Iterations int
}

// DefaultConfig is a communication-heavy small model: 64MB of parameters,
// matching gradients, and 10ms of compute.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:    workers,
		ModelBytes: 64 << 20,
		GradBytes:  64 << 20,
		ComputeNs:  10 * sim.Millisecond,
		Iterations: 4,
	}
}

// Result decomposes a training run.
type Result struct {
	JCT     sim.Time
	Bcast   sim.Time
	Reduce  sim.Time
	Compute sim.Time
	// GradSums holds the PS-side aggregated gradient per iteration, for
	// end-to-end numerical verification.
	GradSums []float64
}

// Scheme selects the communication substrate.
type Scheme string

const (
	// SchemeCepheus uses one multicast group for both directions.
	SchemeCepheus Scheme = "cepheus"
	// SchemeAMcast uses a chain broadcast and a unicast gather.
	SchemeAMcast Scheme = "amcast"
)

// Cluster is a wired PS training testbed: node 0 is the PS, nodes 1..W the
// workers.
type Cluster struct {
	Eng *sim.Engine
	Cfg Config

	bcast  amcast.Broadcaster
	reduce amcast.Reducer
}

// NewTestbed builds the cluster on a single-ToR topology.
func NewTestbed(eng *sim.Engine, cfg Config, scheme Scheme) *Cluster {
	n := cfg.Workers + 1
	net := topo.Testbed(eng, n)
	tr := roce.DefaultConfig()
	rnics := make([]*roce.RNIC, n)
	agents := make([]*core.Agent, n)
	for i, h := range net.Hosts {
		rnics[i] = roce.NewRNIC(h, tr)
		agents[i] = core.NewAgent(rnics[i])
	}
	c := &Cluster{Eng: eng, Cfg: cfg}
	switch scheme {
	case SchemeCepheus:
		core.Attach(net.Switches[0], core.DefaultAccelConfig())
		var members []*core.Member
		for i := 0; i < n; i++ {
			members = append(members, &core.Member{Host: net.Hosts[i], RNIC: rnics[i], QP: rnics[i].CreateQP()})
		}
		g := core.NewGroup(eng, core.AllocMcstID(), members, 0, agents)
		ok := false
		g.Register(10*sim.Millisecond, func(err error) {
			if err != nil {
				panic("ps: registration failed: " + err.Error())
			}
			ok = true
		})
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		if !ok {
			panic("ps: registration did not finish")
		}
		c.bcast = &amcast.Cepheus{Group: g}
		c.reduce = &amcast.CepheusReduce{Group: g}
	case SchemeAMcast:
		nodes := make([]*amcast.Node, n)
		for i := range nodes {
			nodes[i] = &amcast.Node{Host: net.Hosts[i], RNIC: rnics[i]}
		}
		comm := amcast.NewComm(eng, nodes)
		c.bcast = amcast.Chain{C: comm, Slices: n}
		c.reduce = amcast.GatherReduce{C: comm}
	default:
		panic(fmt.Sprintf("ps: unknown scheme %q", scheme))
	}
	return c
}

// Run executes the training loop and returns the decomposition. Gradients
// are synthetic: worker i contributes float64(i) each iteration, so the
// PS-side aggregate must equal W(W+1)/2 - ... (sum over worker ranks).
func (c *Cluster) Run() Result {
	eng := c.Eng
	res := Result{}
	start := eng.Now()

	wait := func(f func(done func())) sim.Time {
		t0 := eng.Now()
		finished := false
		f(func() { finished = true })
		for !finished {
			if !eng.Step() {
				panic("ps: phase stalled")
			}
		}
		return eng.Now() - t0
	}

	for it := 0; it < c.Cfg.Iterations; it++ {
		res.Bcast += wait(func(done func()) {
			c.bcast.Bcast(0, c.Cfg.ModelBytes, done)
		})
		eng.RunFor(c.Cfg.ComputeNs)
		res.Compute += c.Cfg.ComputeNs
		res.Reduce += wait(func(done func()) {
			c.reduce.Reduce(0, c.Cfg.GradBytes,
				func(rank int) float64 {
					if rank == 0 {
						return 0 // the PS holds no gradient
					}
					return float64(rank)
				},
				func(total float64) {
					res.GradSums = append(res.GradSums, total)
					done()
				})
		})
	}
	res.JCT = eng.Now() - start
	return res
}

// ExpectedGradSum is the per-iteration aggregate the PS must observe.
func (c *Cluster) ExpectedGradSum() float64 {
	w := c.Cfg.Workers
	return float64(w*(w+1)) / 2
}
