package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestAfterNested(t *testing.T) {
	e := New(1)
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("nested After times = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestTimerFires(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	e.Run()
	if !fired || !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestStopResume(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Schedule(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d after Stop, want 1", ran)
	}
	e.Resume()
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d after Resume, want 2", ran)
	}
}

func TestDeterminismAcrossSeededRuns(t *testing.T) {
	run := func(seed int64) []Time {
		e := New(seed)
		var order []Time
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			at := Time(rng.Int63n(10000))
			e.Schedule(at, func() {
				order = append(order, e.Now())
				// Random follow-up work exercises the engine's RNG too.
				if e.Rand().Intn(4) == 0 {
					e.After(Time(e.Rand().Int63n(100)), func() {
						order = append(order, e.Now())
					})
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always execute in non-decreasing timestamp order no matter
// the insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New(1)
		var got []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12 * Microsecond, "12.00us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
