package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.Schedule(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestAfterNested(t *testing.T) {
	e := New(1)
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("nested After times = %v", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := New(1)
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
}

func TestTimerFires(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.AfterTimer(10, func() { fired = true })
	e.Run()
	if !fired || !tm.Fired() {
		t.Fatal("timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

// Regression: repeatedly arming and stopping a timer must not grow the
// scheduler. The old implementation left cancelled closures in the heap until
// their deadline, so RTO churn (re-armed on every ACK) accumulated garbage.
func TestTimerChurnDoesNotGrowPending(t *testing.T) {
	e := New(1)
	tm := e.NewTimer(func() {})
	for i := 0; i < 10000; i++ {
		tm.Reset(1000)
		tm.Stop()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after arm/stop churn, want 0", e.Pending())
	}
	for i := 0; i < 10000; i++ {
		tm.Reset(1000)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after repeated Reset, want 1", e.Pending())
	}
}

func TestTimerReset(t *testing.T) {
	e := New(1)
	var firedAt []Time
	tm := e.NewTimer(func() { firedAt = append(firedAt, e.Now()) })
	if tm.Pending() {
		t.Fatal("new timer reports pending")
	}
	tm.Reset(10)
	tm.Reset(30) // re-arm while pending: deadline moves, no duplicate fire
	e.Run()
	if len(firedAt) != 1 || firedAt[0] != 30 {
		t.Fatalf("firedAt = %v, want [30]", firedAt)
	}
	tm.Reset(10) // re-arm after firing
	if tm.Fired() {
		t.Fatal("Fired() still true after Reset")
	}
	e.Run()
	if len(firedAt) != 2 || firedAt[1] != 40 {
		t.Fatalf("firedAt = %v, want [30 40]", firedAt)
	}
}

// Reset while pending must keep FIFO fairness: the re-armed timer gets a fresh
// sequence number, so it runs after events already scheduled at the same
// instant — exactly as if it had been cancelled and re-scheduled.
func TestTimerResetReordersAfterPeers(t *testing.T) {
	e := New(1)
	var got []string
	tm := e.NewTimer(func() { got = append(got, "timer") })
	tm.Reset(10)
	e.Schedule(10, func() { got = append(got, "fn") })
	tm.Reset(10)
	e.Run()
	if len(got) != 2 || got[0] != "fn" || got[1] != "timer" {
		t.Fatalf("order = %v, want [fn timer]", got)
	}
}

type recordingHandler struct {
	got []any
	at  []Time
}

func (h *recordingHandler) OnEvent(e *Engine, arg any) {
	h.got = append(h.got, arg)
	h.at = append(h.at, e.Now())
}

func TestScheduleHandler(t *testing.T) {
	e := New(1)
	h := &recordingHandler{}
	e.ScheduleHandler(20, h, "b")
	e.ScheduleHandler(10, h, "a")
	e.AfterHandler(30, h, nil)
	e.Run()
	if len(h.got) != 3 || h.got[0] != "a" || h.got[1] != "b" || h.got[2] != nil {
		t.Fatalf("handler args = %v", h.got)
	}
	if h.at[0] != 10 || h.at[1] != 20 || h.at[2] != 30 {
		t.Fatalf("handler times = %v", h.at)
	}
}

// Closure, handler, and timer events scheduled at one instant interleave in
// schedule order — the dispatch paths share one sequence space.
func TestMixedDispatchFIFO(t *testing.T) {
	e := New(1)
	var got []any
	h := &recordingHandler{}
	e.Schedule(5, func() { got = append(got, "fn1") })
	e.ScheduleHandler(5, h, "h1")
	tm := e.NewTimer(func() { got = append(got, "tm") })
	tm.Reset(5)
	e.Schedule(5, func() { got = append(got, "fn2") })
	e.Run()
	// Handler records separately; merge check via timestamps is overkill —
	// assert closure/timer order and that the handler ran once.
	if len(got) != 3 || got[0] != "fn1" || got[1] != "tm" || got[2] != "fn2" {
		t.Fatalf("closure/timer order = %v", got)
	}
	if len(h.got) != 1 {
		t.Fatalf("handler ran %d times, want 1", len(h.got))
	}
}

func TestStopResume(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(10, func() { ran++; e.Stop() })
	e.Schedule(20, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran %d after Stop, want 1", ran)
	}
	e.Resume()
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d after Resume, want 2", ran)
	}
}

func TestDeterminismAcrossSeededRuns(t *testing.T) {
	run := func(seed int64) []Time {
		e := New(seed)
		var order []Time
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			at := Time(rng.Int63n(10000))
			e.Schedule(at, func() {
				order = append(order, e.Now())
				// Random follow-up work exercises the engine's RNG too.
				if e.Rand().Intn(4) == 0 {
					e.After(Time(e.Rand().Int63n(100)), func() {
						order = append(order, e.Now())
					})
				}
			})
		}
		e.Run()
		return order
	}
	a, b := run(99), run(99)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always execute in non-decreasing timestamp order no matter
// the insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New(1)
		var got []Time
		for _, at := range times {
			at := Time(at)
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12 * Microsecond, "12.00us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
