// Executor introspection for Parallel runs.
//
// The profiler answers the question the scaling sweeps cannot: when a worker
// sweep plateaus, where does the wall-clock go? It splits every worker's time
// into the four phases of a window — merging inbound cross-LP traffic,
// executing events, spinning at the barrier, and parked at the barrier — and
// counts what the executor moved: events per LP, messages per (source,
// destination) LP pair, windows per unit of virtual time.
//
// Everything here is host-side observation. Wall-clock reads happen only in
// executor code (phase bodies, barrier waits, the coordinator's sequential
// section) — never inside simulated state, handlers, or RNG consumption — so
// enabling the profiler cannot perturb the schedule: simulated results and
// flight-recorder traces are byte-identical with profiling on or off, at any
// worker count. The counters the profiler reads (Engine.nRun, outbox lengths)
// are ones the executor maintains anyway. See DESIGN.md §15.
package sim

import "time"

// profBase anchors monotonic wall-clock reads; profNow is the only clock the
// profiler uses, and it is never visible to simulated state.
var profBase = time.Now()

func profNow() int64 { return int64(time.Since(profBase)) }

// phaseNs is one worker's accumulated wall-clock phase breakdown.
type phaseNs struct {
	MergeNs uint64 // merging + injecting inbound cross-LP traffic (incl. min report)
	ExecNs  uint64 // executing events inside windows
	SpinNs  uint64 // barrier wait, spin portion
	ParkNs  uint64 // barrier wait, parked on the wake channel
	Windows uint64 // windows this worker participated in
}

// execProf is the live profiling state hanging off a Parallel. All per-LP and
// per-pair slices are written only by the LP's (or destination's) owning
// worker during a window, or by the coordinator with workers parked — the
// same exclusivity discipline the executor itself relies on — so no
// synchronization is needed beyond the existing window barrier.
type execProf struct {
	windows    uint64 // executed windows
	satWindows uint64 // windows whose start advanced by <= lookahead
	runs       uint64 // Run/RunSerial invocations
	runNs      uint64 // total wall-clock inside run()
	seqNs      uint64 // coordinator barrier-sequential sections (gather aggregation, hooks, transpose)
	advSum     Time   // total virtual-time advance between window starts
	advMax     Time   // largest single advance (idle skip)

	lpEvents    []uint64 // executed events per LP
	lpWindows   []uint64 // windows in which the LP executed >= 1 event
	lpMaxWindow []uint64 // most events any single window executed on the LP

	// traffic counts cross-LP messages merged, row-major [src*nLP+dst].
	// Each cell is written only by the destination's merging worker, so no
	// synchronization is needed; the total is summed at snapshot time.
	traffic []uint64

	inline bool // most recent run degraded to the single-goroutine path
}

func newExecProf(nLP int) *execProf {
	return &execProf{
		lpEvents:    make([]uint64, nLP),
		lpWindows:   make([]uint64, nLP),
		lpMaxWindow: make([]uint64, nLP),
		traffic:     make([]uint64, nLP*nLP),
	}
}

// EnableProfile turns executor introspection on. Call after Finalize and not
// concurrently with Run; enabling is idempotent. Profiling is host-side only
// and cannot change simulated results (see the package comment above).
func (p *Parallel) EnableProfile() {
	if p.prof != nil {
		return
	}
	if !p.finalized {
		panic("sim: EnableProfile before Finalize")
	}
	p.prof = newExecProf(len(p.lps))
	if p.bar != nil {
		p.bar.prof = true
	}
}

// ProfileEnabled reports whether EnableProfile has been called.
func (p *Parallel) ProfileEnabled() bool { return p.prof != nil }

// ResetProfile zeroes every accumulated profiling counter (a no-op when
// profiling is off). Sweeps call it after warmup so the snapshot covers only
// the measured run.
func (p *Parallel) ResetProfile() {
	pr := p.prof
	if pr == nil {
		return
	}
	p.absorbBarrierProf()
	for i := range p.wstate {
		p.wstate[i].prof = phaseNs{}
	}
	*pr = *newExecProf(len(p.lps))
}

// absorbBarrierProf transfers the barrier's spin/park accumulators into the
// per-worker scratch (worker w's barrier slot is w-1; the coordinator's wait
// is gather time). Called with no window in flight: at snapshots and at pool
// shutdown, both of which the caller sequences against Run.
func (p *Parallel) absorbBarrierProf() {
	b := p.bar
	if b == nil || p.wstate == nil {
		return
	}
	p.wstate[0].prof.SpinNs += b.coordSpinNs
	p.wstate[0].prof.ParkNs += b.coordParkNs
	b.coordSpinNs, b.coordParkNs = 0, 0
	for i := range b.workers {
		if i+1 < len(p.wstate) {
			p.wstate[i+1].prof.SpinNs += b.workers[i].spinNs
			p.wstate[i+1].prof.ParkNs += b.workers[i].parkNs
		}
		b.workers[i].spinNs, b.workers[i].parkNs = 0, 0
	}
}

// WorkerPhase is one worker's wall-clock phase breakdown, in nanoseconds.
// SeqNs is nonzero only for worker 0 (the coordinator): the barrier-
// sequential sections — next-window aggregation, barrier hooks (trace
// drains), the caller's predicate, and the outbox transpose — that every
// other worker's Spin/Park time is spent waiting out.
type WorkerPhase struct {
	Worker  int    `json:"worker"`
	LPs     int    `json:"lps"`
	Windows uint64 `json:"windows"`
	MergeNs uint64 `json:"merge_ns"`
	ExecNs  uint64 `json:"exec_ns"`
	SpinNs  uint64 `json:"spin_ns"`
	ParkNs  uint64 `json:"park_ns"`
	SeqNs   uint64 `json:"seq_ns,omitempty"`
}

// ExecStats is a snapshot of raw executor introspection counters, the input
// to the obs layer's derived report. Slices are copies; the snapshot does not
// alias live profiler state.
type ExecStats struct {
	Workers   int  `json:"workers"`
	LPs       int  `json:"lps"`
	Lookahead Time `json:"lookahead_ns"`
	Inline    bool `json:"inline"` // degraded to the single-goroutine path (GOMAXPROCS=1 or workers=1)

	Runs             uint64 `json:"runs"`
	RunNs            uint64 `json:"run_ns"`
	Windows          uint64 `json:"windows"`
	SaturatedWindows uint64 `json:"saturated_windows"` // window starts advancing <= lookahead
	VirtualAdvance   Time   `json:"virtual_advance_ns"`
	MaxWindowAdvance Time   `json:"max_window_advance_ns"`

	Phases []WorkerPhase `json:"phases"`

	LPWorker    []int     `json:"lp_worker"`     // LP -> executing worker
	LPWeights   []float64 `json:"lp_weights"`    // LPT weights (nil: uniform)
	LPEvents    []uint64  `json:"lp_events"`     // executed events per LP
	LPWindows   []uint64  `json:"lp_windows"`    // windows with >= 1 event per LP
	LPMaxWindow []uint64  `json:"lp_max_window"` // largest single-window event burst per LP

	CrossMsgs uint64   `json:"cross_msgs"`
	Traffic   []uint64 `json:"traffic"` // row-major [src*LPs+dst] cross-LP messages
}

// ProfileSnapshot copies the accumulated profiling counters into an
// ExecStats. Call between runs (never concurrently with Run); returns nil
// when profiling is off.
func (p *Parallel) ProfileSnapshot() *ExecStats {
	pr := p.prof
	if pr == nil {
		return nil
	}
	p.absorbBarrierProf()
	n := len(p.lps)
	st := &ExecStats{
		Workers:          p.workers,
		LPs:              n,
		Lookahead:        p.lookahead,
		Inline:           pr.inline,
		Runs:             pr.runs,
		RunNs:            pr.runNs,
		Windows:          pr.windows,
		SaturatedWindows: pr.satWindows,
		VirtualAdvance:   pr.advSum,
		MaxWindowAdvance: pr.advMax,
		LPEvents:         append([]uint64(nil), pr.lpEvents...),
		LPWindows:        append([]uint64(nil), pr.lpWindows...),
		LPMaxWindow:      append([]uint64(nil), pr.lpMaxWindow...),
		Traffic:          append([]uint64(nil), pr.traffic...),
		LPWeights:        append([]float64(nil), p.weights...),
	}
	for _, t := range st.Traffic {
		st.CrossMsgs += t
	}
	st.LPWorker = make([]int, n)
	if p.plan != nil {
		for w, lps := range p.plan {
			for _, lp := range lps {
				st.LPWorker[lp] = w
			}
		}
		for w := range p.wstate {
			ws := &p.wstate[w]
			ph := WorkerPhase{
				Worker:  w,
				LPs:     len(p.plan[w]),
				Windows: ws.prof.Windows,
				MergeNs: ws.prof.MergeNs,
				ExecNs:  ws.prof.ExecNs,
				SpinNs:  ws.prof.SpinNs,
				ParkNs:  ws.prof.ParkNs,
			}
			if w == 0 {
				ph.SeqNs = pr.seqNs
			}
			st.Phases = append(st.Phases, ph)
		}
	}
	return st
}
