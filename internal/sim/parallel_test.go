package sim

import "testing"

// pingPonger bounces a single event around the LP ring. Only one event is in
// flight at a time, and the barrier between windows orders each hop, so the
// shared counter is race-free by the coordinator's happens-before chain.
type pingPonger struct {
	par   *Parallel
	delay Time
	count int
	limit int
}

func (pp *pingPonger) OnEvent(e *Engine, arg any) {
	pp.count++
	if pp.count >= pp.limit {
		return
	}
	next := pp.par.LP((e.LP() + 1) % pp.par.NumLPs())
	e.ScheduleRemote(next, e.Now()+pp.delay, pp, nil)
}

func TestParallelPingPong(t *testing.T) {
	const lookahead = Time(100)
	p := NewParallel(1, 2)
	defer p.Close()
	a := p.AddLP()
	p.AddLP()
	p.Finalize(lookahead)

	pp := &pingPonger{par: p, delay: lookahead, limit: 10}
	a.ScheduleHandler(0, pp, nil)
	if out := p.Run(Time(1_000_000), nil); out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}
	if pp.count != 10 {
		t.Fatalf("count = %d, want 10", pp.count)
	}
	// Hop i executes at i*lookahead; the last hop lands on LP 1's clock.
	if got := p.LP(1).Now(); got != 9*lookahead {
		t.Fatalf("final LP1 clock = %v, want %v", got, 9*lookahead)
	}
	if got := p.EventsRun(); got != 10 {
		t.Fatalf("EventsRun = %d, want 10", got)
	}
}

// churn is a randomized workload: every event folds its LP's clock and a
// private RNG draw into a per-LP digest, then respawns locally or to a random
// LP at >= lookahead distance. Each digest slot is written only by its owning
// LP, so the workload is parallel-safe and its result depends only on the
// seed and partition — never on the worker count.
type churn struct {
	par    *Parallel
	delay  Time
	digest []uint64
	nLeft  []int
}

func (c *churn) OnEvent(e *Engine, arg any) {
	lp := e.LP()
	c.digest[lp] = c.digest[lp]*1099511628211 ^ uint64(e.Now()) ^ uint64(e.Rand().Int63())
	if c.nLeft[lp] <= 0 {
		return
	}
	c.nLeft[lp]--
	if e.Rand().Intn(100) < 30 {
		dst := c.par.LP(e.Rand().Intn(c.par.NumLPs()))
		e.ScheduleRemote(dst, e.Now()+c.delay+Time(e.Rand().Intn(500)), c, nil)
	} else {
		e.AfterHandler(Time(1+e.Rand().Intn(200)), c, nil)
	}
}

// runChurn executes the churn workload on nLP LPs with the given worker count
// (0 = RunSerial) and returns (combined digest, events run, floor time).
func runChurn(t *testing.T, seed int64, nLP, workers int) (uint64, uint64, Time) {
	t.Helper()
	p := NewParallel(seed, max(workers, 1))
	defer p.Close()
	for i := 0; i < nLP; i++ {
		p.AddLP()
	}
	p.Finalize(200)
	c := &churn{par: p, delay: 200, digest: make([]uint64, nLP), nLeft: make([]int, nLP)}
	for i := 0; i < nLP; i++ {
		c.nLeft[i] = 400
		for j := 0; j < 4; j++ {
			p.LP(i).ScheduleHandler(Time(j), c, nil)
		}
	}
	var out Outcome
	if workers == 0 {
		out = p.RunSerial(Time(1)<<40, nil)
	} else {
		out = p.Run(Time(1)<<40, nil)
	}
	if out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}
	var d uint64
	for _, v := range c.digest {
		d = d*0x9E3779B97F4A7C15 + v
	}
	return d, p.EventsRun(), p.Now()
}

func TestParallelWorkerInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		refD, refN, refT := runChurn(t, seed, 8, 0) // RunSerial reference
		for _, w := range []int{1, 2, 4, 8} {
			d, n, tm := runChurn(t, seed, 8, w)
			if d != refD || n != refN || tm != refT {
				t.Fatalf("seed %d workers %d: (digest %x, events %d, now %v) != serial (%x, %d, %v)",
					seed, w, d, n, tm, refD, refN, refT)
			}
		}
	}
}

// orderProbe records the value carried by each delivered message, in
// execution order. Only the destination LP writes the slice.
type orderProbe struct{ got []int }

func (o *orderProbe) OnEvent(e *Engine, arg any) { o.got = append(o.got, arg.(int)) }

// sendAt emits its prepared batch of cross-LP messages when it fires.
type sendAt struct {
	dst  *Engine
	at   Time
	vals []int
}

func (s *sendAt) OnEvent(e *Engine, arg any) {
	for _, v := range s.vals {
		e.ScheduleRemote(s.dst, s.at, s.probeOf(e), v)
	}
}

// probeOf lets the test thread one probe through without a global.
var testProbe *orderProbe

func (s *sendAt) probeOf(_ *Engine) Handler { return testProbe }

func TestParallelDrainOrder(t *testing.T) {
	// Two source LPs send same-timestamp messages to LP 0. The merge must
	// order them (time, source LP, send order) regardless of which worker
	// finished first, so LP 1's batch precedes LP 2's.
	p := NewParallel(3, 4)
	defer p.Close()
	dst := p.AddLP()
	s1eng := p.AddLP()
	s2eng := p.AddLP()
	p.Finalize(100)

	testProbe = &orderProbe{}
	defer func() { testProbe = nil }()
	const at = Time(250)
	s1 := &sendAt{dst: dst, at: at, vals: []int{10, 11}}
	s2 := &sendAt{dst: dst, at: at, vals: []int{20, 21}}
	// Mixed earlier/later timestamps must interleave purely by time.
	s1eng.ScheduleHandler(0, s1, nil)
	s2eng.ScheduleHandler(0, s2, nil)
	s2eng.ScheduleHandler(1, &sendAt{dst: dst, at: at + 50, vals: []int{99}}, nil)
	if out := p.Run(Time(1_000_000), nil); out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}
	want := []int{10, 11, 20, 21, 99}
	if len(testProbe.got) != len(want) {
		t.Fatalf("got %v, want %v", testProbe.got, want)
	}
	for i, v := range want {
		if testProbe.got[i] != v {
			t.Fatalf("got %v, want %v", testProbe.got, want)
		}
	}
}

func TestParallelOutcomes(t *testing.T) {
	p := NewParallel(9, 2)
	defer p.Close()
	a := p.AddLP()
	p.AddLP()
	p.Finalize(100)

	if out := p.Run(1000, nil); out != Quiescent {
		t.Fatalf("empty run: %v, want Quiescent", out)
	}
	pp := &pingPonger{par: p, delay: 100, limit: 1 << 30}
	a.ScheduleHandler(5000, pp, nil)
	if out := p.Run(1000, nil); out != Horizon {
		t.Fatalf("beyond-limit run: %v, want Horizon", out)
	}
	if pp.count != 0 {
		t.Fatalf("event ran despite horizon: count = %d", pp.count)
	}
	if out := p.Run(Time(1)<<40, func() bool { return pp.count >= 3 }); out != Done {
		t.Fatalf("pred run: %v, want Done", out)
	}
	if pp.count < 3 {
		t.Fatalf("pred satisfied with count = %d", pp.count)
	}
}

// TestParallelSingleLPMatchesSequential pins the RNG-stream contract: LP 0 of
// a Parallel run is seeded exactly like a standalone New(seed) engine, so a
// one-LP partition replays a sequential run event for event.
type selfSpawn struct {
	left int
}

func (s *selfSpawn) OnEvent(e *Engine, arg any) {
	if s.left <= 0 {
		return
	}
	s.left--
	e.AfterHandler(Time(1+e.Rand().Intn(50)), s, nil)
}

func TestParallelSingleLPMatchesSequential(t *testing.T) {
	const seed = 77
	ref := New(seed)
	rs := &selfSpawn{left: 1000}
	ref.ScheduleHandler(0, rs, nil)
	ref.Run()

	p := NewParallel(seed, 4)
	defer p.Close()
	lp := p.AddLP()
	p.Finalize(0) // no cross-LP links: unbounded-lookahead windows
	ps := &selfSpawn{left: 1000}
	lp.ScheduleHandler(0, ps, nil)
	if out := p.Run(Time(1)<<40, nil); out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}
	if lp.EventsRun() != ref.EventsRun() || lp.Now() != ref.Now() {
		t.Fatalf("parallel (events %d, now %v) != sequential (%d, %v)",
			lp.EventsRun(), lp.Now(), ref.EventsRun(), ref.Now())
	}
	if lp.Rand().Int63() != ref.Rand().Int63() {
		t.Fatal("RNG streams diverged between 1-LP parallel and sequential runs")
	}
}

// fanOut is a deterministic all-to-all workload: each firing sends one
// message to every other LP at fixed relative offsets, until its LP's
// respawn budget is exhausted. Every burst replays the same shape relative
// to the current clock, so buffer high-water marks are identical from one
// burst to the next — which is what an allocation-regression test needs
// (the randomized churn workload keeps setting new high-water marks and
// would report residual growth as false-positive leaks).
type fanOut struct {
	par  *Parallel
	left []int
}

func (f *fanOut) OnEvent(e *Engine, arg any) {
	lp := e.LP()
	if f.left[lp] <= 0 {
		return
	}
	f.left[lp]--
	for d := 0; d < f.par.NumLPs(); d++ {
		if d == lp {
			continue
		}
		e.ScheduleRemote(f.par.LP(d), e.Now()+200+Time(d), f, nil)
	}
	e.AfterHandler(37, f, nil)
}

// TestParallelSteadyStateAllocs pins the executor's steady-state allocation
// contract: once the merge scratch, dirty lists, and slab buffers have grown
// to the workload's high-water mark, further windows allocate nothing on the
// coordinator path. The first run warms every buffer; the measured runs must
// then be allocation-free (serial path exactly; the worker path gets a small
// slack for runtime park/unpark bookkeeping on multi-core machines).
func TestParallelSteadyStateAllocs(t *testing.T) {
	p := NewParallel(11, 4)
	defer p.Close()
	const nLP = 8
	for i := 0; i < nLP; i++ {
		p.AddLP()
	}
	p.Finalize(200)
	f := &fanOut{par: p, left: make([]int, nLP)}
	burst := func() {
		for i := 0; i < nLP; i++ {
			f.left[i] = 40
			p.LP(i).ScheduleHandler(p.LP(i).Now()+Time(i+1), f, nil)
		}
	}
	burst()
	if out := p.RunSerial(Time(1)<<40, nil); out != Quiescent {
		t.Fatalf("warmup outcome = %v, want Quiescent", out)
	}
	allocs := testing.AllocsPerRun(3, func() {
		burst()
		if out := p.RunSerial(Time(1)<<40, nil); out != Quiescent {
			t.Fatalf("outcome = %v, want Quiescent", out)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state serial windows allocate: %.1f allocs/run, want 0", allocs)
	}
	// The concurrent path may touch runtime park/unpark machinery; allow a
	// small slack but catch per-window or per-message regressions, which
	// show up in the hundreds.
	allocs = testing.AllocsPerRun(3, func() {
		burst()
		if out := p.Run(Time(1)<<40, nil); out != Quiescent {
			t.Fatalf("outcome = %v, want Quiescent", out)
		}
	})
	if allocs > 16 {
		t.Errorf("steady-state parallel windows allocate: %.1f allocs/run, want <= 16", allocs)
	}
}
