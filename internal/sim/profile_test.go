package sim

import "testing"

func TestEnableProfileBeforeFinalizePanics(t *testing.T) {
	p := NewParallel(1, 2)
	defer p.Close()
	p.AddLP()
	defer func() {
		if recover() == nil {
			t.Fatal("EnableProfile before Finalize must panic")
		}
	}()
	p.EnableProfile()
}

func TestProfileSnapshotNilWhenOff(t *testing.T) {
	p := NewParallel(1, 2)
	defer p.Close()
	p.AddLP()
	p.Finalize(100)
	if p.ProfileEnabled() {
		t.Fatal("profiling enabled without EnableProfile")
	}
	if st := p.ProfileSnapshot(); st != nil {
		t.Fatalf("ProfileSnapshot without EnableProfile = %+v, want nil", st)
	}
	p.ResetProfile() // must be a harmless no-op when off
}

// TestProfileCounters checks the raw counters against a workload whose shape
// is known exactly: a 10-hop ping-pong between two LPs produces 10 executed
// events, 9 of them delivered cross-LP (the first is scheduled locally), and
// one Run invocation. Spin/park are not asserted — on a single-CPU host the
// executor degrades to the inline path where barrier waits never happen.
func TestProfileCounters(t *testing.T) {
	const lookahead = Time(100)
	p := NewParallel(1, 2)
	defer p.Close()
	a := p.AddLP()
	p.AddLP()
	p.Finalize(lookahead)
	p.EnableProfile()
	p.EnableProfile() // idempotent

	pp := &pingPonger{par: p, delay: lookahead, limit: 10}
	a.ScheduleHandler(0, pp, nil)
	if out := p.Run(Time(1_000_000), nil); out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}

	st := p.ProfileSnapshot()
	if st == nil {
		t.Fatal("ProfileSnapshot = nil with profiling on")
	}
	if st.Workers != 2 || st.LPs != 2 || st.Lookahead != lookahead {
		t.Fatalf("shape = %d workers, %d LPs, lookahead %v", st.Workers, st.LPs, st.Lookahead)
	}
	if st.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", st.Runs)
	}
	if st.Windows == 0 || st.RunNs == 0 {
		t.Fatalf("no windows or wall-clock recorded: windows=%d run_ns=%d", st.Windows, st.RunNs)
	}
	var lpSum uint64
	for _, n := range st.LPEvents {
		lpSum += n
	}
	if lpSum != p.EventsRun() || lpSum != 10 {
		t.Fatalf("sum(LPEvents) = %d, want EventsRun = %d = 10", lpSum, p.EventsRun())
	}
	// 9 hops cross LP boundaries, alternating 0->1 and 1->0.
	if st.CrossMsgs != 9 {
		t.Fatalf("CrossMsgs = %d, want 9", st.CrossMsgs)
	}
	if got := st.Traffic[0*2+1] + st.Traffic[1*2+0]; got != 9 || st.Traffic[0] != 0 || st.Traffic[3] != 0 {
		t.Fatalf("traffic matrix = %v, want 9 split across the two off-diagonal cells", st.Traffic)
	}
	if len(st.Phases) != 2 || len(st.LPWorker) != 2 {
		t.Fatalf("phases/LPWorker sized %d/%d, want 2/2", len(st.Phases), len(st.LPWorker))
	}
	var exec uint64
	for _, ph := range st.Phases {
		exec += ph.ExecNs
	}
	if exec == 0 {
		t.Fatal("no exec-phase wall-clock accumulated")
	}
	// The snapshot must not alias live state: mutating it is invisible.
	st.LPEvents[0] = 999
	if p.ProfileSnapshot().LPEvents[0] == 999 {
		t.Fatal("ProfileSnapshot aliases live profiler slices")
	}
}

func TestResetProfile(t *testing.T) {
	p := NewParallel(1, 2)
	defer p.Close()
	a := p.AddLP()
	p.AddLP()
	p.Finalize(100)
	p.EnableProfile()

	pp := &pingPonger{par: p, delay: 100, limit: 6}
	a.ScheduleHandler(0, pp, nil)
	p.Run(Time(1_000_000), nil)
	if st := p.ProfileSnapshot(); st.Windows == 0 {
		t.Fatal("warmup run recorded nothing")
	}
	p.ResetProfile()
	st := p.ProfileSnapshot()
	if st.Windows != 0 || st.Runs != 0 || st.RunNs != 0 || st.CrossMsgs != 0 {
		t.Fatalf("counters survived ResetProfile: %+v", st)
	}
	for i, n := range st.LPEvents {
		if n != 0 {
			t.Fatalf("LPEvents[%d] = %d after reset", i, n)
		}
	}
	for _, ph := range st.Phases {
		if ph.ExecNs != 0 || ph.MergeNs != 0 || ph.SpinNs != 0 || ph.ParkNs != 0 {
			t.Fatalf("worker phase survived reset: %+v", ph)
		}
	}
}

// runChurnProf mirrors runChurn with profiling enabled when prof is set.
func runChurnProf(t *testing.T, seed int64, nLP, workers int, prof bool) (uint64, uint64, Time) {
	t.Helper()
	p := NewParallel(seed, max(workers, 1))
	defer p.Close()
	for i := 0; i < nLP; i++ {
		p.AddLP()
	}
	p.Finalize(200)
	if prof {
		p.EnableProfile()
	}
	c := &churn{par: p, delay: 200, digest: make([]uint64, nLP), nLeft: make([]int, nLP)}
	for i := 0; i < nLP; i++ {
		c.nLeft[i] = 400
		for j := 0; j < 4; j++ {
			p.LP(i).ScheduleHandler(Time(j), c, nil)
		}
	}
	var out Outcome
	if workers == 0 {
		out = p.RunSerial(Time(1)<<40, nil)
	} else {
		out = p.Run(Time(1)<<40, nil)
	}
	if out != Quiescent {
		t.Fatalf("outcome = %v, want Quiescent", out)
	}
	var d uint64
	for _, v := range c.digest {
		d = d*0x9E3779B97F4A7C15 + v
	}
	return d, p.EventsRun(), p.Now()
}

// TestProfileDigestInvariance is the sim-layer digest-neutrality gate: the
// randomized churn workload must produce an identical digest, event count,
// and final clock with profiling on as the unprofiled serial reference, at
// every worker count. Wall-clock reads live only in executor host code, so
// this holds by construction; the test keeps it that way.
func TestProfileDigestInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		refD, refN, refT := runChurnProf(t, seed, 8, 0, false)
		for _, w := range []int{0, 1, 2, 4, 8} {
			d, n, tm := runChurnProf(t, seed, 8, w, true)
			if d != refD || n != refN || tm != refT {
				t.Fatalf("seed %d workers %d profiled: (digest %x, events %d, now %v) != reference (%x, %d, %v)",
					seed, w, d, n, tm, refD, refN, refT)
			}
		}
	}
}
