// Conservative parallel discrete-event execution.
//
// A Parallel run partitions the simulated world into logical processes
// (LPs), each an ordinary single-threaded Engine with its own 4-ary heap,
// clock, and RNG stream. Execution proceeds in time windows bounded by the
// lookahead — the minimum latency of any cross-LP interaction (in the
// network model, the smallest propagation delay of a link whose endpoints
// live in different LPs). Within one window every LP can run independently:
// conservative synchronization guarantees that no event executed in the
// window can cause another LP to receive anything earlier than the window's
// end, so no LP ever has to roll back.
//
// Cross-LP messages travel through per-(source, destination) outboxes that
// only the source LP's worker appends to during a window; at the barrier
// between windows a single coordinator merges each destination's incoming
// messages into its heap in a fixed (timestamp, source LP, send order)
// total order. Because the partition, the per-LP RNG streams, and the merge
// order are all functions of the topology and seed alone — never of the
// worker count or wall-clock interleaving — a run produces byte-identical
// results whether it is driven by one worker, eight, or RunSerial on the
// coordinator itself. See DESIGN.md §9.
package sim

import (
	"fmt"
	"sort"
)

// crossMsg is one cross-LP event hand-off: the scheduled handler and its
// absolute timestamp, buffered until the next window barrier. seq is assigned
// by the destination engine when the coordinator injects the message into its
// slab (Engine.injectSlab), giving slab entries the same total order as
// heap events.
type crossMsg struct {
	at  Time
	seq uint64
	h   Handler
	arg any
}

// outbox is the single-producer buffer of messages from one source LP to one
// destination LP. The source's worker appends during a window; the
// coordinator drains at the barrier. The window barrier itself provides the
// happens-before edge, so no per-message synchronization is needed.
type outbox []crossMsg

// Outcome reports why a Parallel run returned.
type Outcome int

const (
	// Done: the caller's predicate became true at a window barrier.
	Done Outcome = iota
	// Quiescent: no events remain in any LP heap or outbox.
	Quiescent
	// Horizon: the next event lies beyond the caller's time limit.
	Horizon
)

func (o Outcome) String() string {
	switch o {
	case Done:
		return "done"
	case Quiescent:
		return "quiescent"
	case Horizon:
		return "horizon"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// drainKey orders one incoming message during a barrier merge.
type drainKey struct {
	at  Time
	src int32
	idx int32
}

func (a *drainKey) less(b *drainKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.idx < b.idx
}

// Parallel coordinates a set of LP engines through lookahead-bounded
// windows. Construct with NewParallel, create engines with AddLP, then call
// Finalize once before the first event is scheduled across LPs.
type Parallel struct {
	seed      int64
	workers   int
	lookahead Time
	lps       []*Engine
	floor     Time // start of the most recently executed window
	finalized bool

	// Barrier scratch, reused across windows to keep the coordinator
	// allocation-free in steady state. sorter is a persistent field so taking
	// its address for sort.Sort never escapes a fresh header to the heap —
	// boxing one per destination per window was the dominant allocation of
	// parallel runs (BENCH_pr4: 1045 allocs at workers=1 vs ~4850 at
	// workers>=2).
	keys   []drainKey
	msgs   []crossMsg
	sorter drainSort

	// weights biases the LP->worker assignment (SetLPWeights); nil means
	// uniform.
	weights []float64

	// Persistent worker pool, started lazily on the first Run. plan[w] lists
	// the LPs worker w executes each window, fixed at pool start by weighted
	// longest-processing-time assignment.
	started bool
	startCh []chan Time
	doneCh  chan struct{}
	plan    [][]int

	// barrier, when set, runs on the coordinator at every window barrier
	// (all workers parked). The observability layer hooks it to drain
	// per-LP trace shards; any coordinator-side bookkeeping that must see a
	// consistent cross-LP snapshot can ride on it.
	barrier func()
}

// NewParallel creates an empty run. workers is the number of goroutines
// that execute windows (clamped to [1, NumLPs] at run time); it has no
// effect on simulated results, only on wall-clock speed.
func NewParallel(seed int64, workers int) *Parallel {
	if workers < 1 {
		workers = 1
	}
	return &Parallel{seed: seed, workers: workers}
}

// lpSeedStride spaces per-LP RNG seeds (the 64-bit golden ratio, reinterpreted
// as a signed constant so seed arithmetic wraps instead of overflowing).
const lpSeedStride = int64(-7046029254386353131)

// AddLP creates the next logical process. LP 0's RNG stream is seeded
// exactly like New(seed), so a single-LP parallel run consumes randomness
// identically to a standalone sequential engine; further LPs derive
// statistically independent streams from the same seed. The partition must
// be a pure function of the topology — never of the worker count — or
// determinism across worker counts is lost.
func (p *Parallel) AddLP() *Engine {
	if p.finalized {
		panic("sim: AddLP after Finalize")
	}
	lp := int32(len(p.lps))
	e := New(p.seed + int64(lp)*lpSeedStride)
	e.par = p
	e.lp = lp
	p.lps = append(p.lps, e)
	return e
}

// Finalize fixes the LP set and the lookahead, sizing every engine's
// outboxes. lookahead is the conservative window length: the minimum
// virtual-time distance of any cross-LP interaction. A lookahead <= 0 means
// no cross-LP links exist and windows are unbounded.
func (p *Parallel) Finalize(lookahead Time) {
	if p.finalized {
		panic("sim: Finalize called twice")
	}
	p.finalized = true
	p.lookahead = lookahead
	for _, e := range p.lps {
		e.out = make([]outbox, len(p.lps))
	}
}

// NumLPs returns the partition size.
func (p *Parallel) NumLPs() int { return len(p.lps) }

// LP returns the i-th logical process engine.
func (p *Parallel) LP(i int) *Engine { return p.lps[i] }

// Lookahead returns the window bound fixed by Finalize.
func (p *Parallel) Lookahead() Time { return p.lookahead }

// Workers returns the configured worker count.
func (p *Parallel) Workers() int { return p.workers }

// SetLPWeights biases the static LP->worker assignment by expected load
// (e.g. devices or ports per LP): workers receive LPs by weighted
// longest-processing-time scheduling instead of round-robin striding. Call
// before the first Run; w[i] is LP i's relative weight. The assignment
// affects wall-clock balance only — never simulated results, which are fixed
// by the partition and seed alone.
func (p *Parallel) SetLPWeights(w []float64) {
	if p.started {
		panic("sim: SetLPWeights after workers started")
	}
	if len(w) != len(p.lps) {
		panic(fmt.Sprintf("sim: SetLPWeights got %d weights for %d LPs", len(w), len(p.lps)))
	}
	p.weights = append([]float64(nil), w...)
}

// buildPlan assigns LPs to w workers. With weights set, LPs are sorted by
// (weight desc, LP asc) and greedily placed on the least-loaded worker
// (lowest index on ties) — deterministic LPT. Without weights it keeps the
// classic stride lp % w.
func (p *Parallel) buildPlan(w int) [][]int {
	plan := make([][]int, w)
	if p.weights == nil {
		for lp := range p.lps {
			plan[lp%w] = append(plan[lp%w], lp)
		}
		return plan
	}
	order := make([]int, len(p.lps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := p.weights[order[a]], p.weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	load := make([]float64, w)
	for _, lp := range order {
		best := 0
		for i := 1; i < w; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		plan[best] = append(plan[best], lp)
		load[best] += p.weights[lp]
	}
	return plan
}

// SetBarrier installs a hook that the coordinator invokes at every window
// barrier, after cross-LP outboxes have been drained and while all workers
// are parked — the hook may therefore read (and reset) state written by any
// LP during preceding windows without synchronization. A nil f removes the
// hook.
func (p *Parallel) SetBarrier(f func()) { p.barrier = f }

// Now returns the virtual-time floor: the start of the most recent window.
// Every LP's local clock is at or beyond it.
func (p *Parallel) Now() Time { return p.floor }

// EventsRun sums executed events across LPs.
func (p *Parallel) EventsRun() uint64 {
	var n uint64
	for _, e := range p.lps {
		n += e.nRun
	}
	return n
}

// Pending sums scheduled events across LP heaps (outboxes are empty between
// runs; drains happen before the coordinator returns).
func (p *Parallel) Pending() int {
	n := 0
	for _, e := range p.lps {
		n += e.Pending()
	}
	return n
}

// drain merges every outbox into its destination heap in (timestamp, source
// LP, send order) order, assigning destination sequence numbers in that
// fixed order. It runs only on the coordinator, between windows.
func (p *Parallel) drain() {
	for di, dst := range p.lps {
		p.keys = p.keys[:0]
		p.msgs = p.msgs[:0]
		for si, src := range p.lps {
			box := src.out[di]
			for mi := range box {
				p.keys = append(p.keys, drainKey{at: box[mi].at, src: int32(si), idx: int32(mi)})
				p.msgs = append(p.msgs, box[mi])
				box[mi] = crossMsg{} // drop handler/arg refs for the GC
			}
			src.out[di] = box[:0]
		}
		if len(p.keys) == 0 {
			continue
		}
		p.sorter.keys, p.sorter.msgs = p.keys, p.msgs
		sort.Sort(&p.sorter)
		dst.injectSlab(p.msgs)
		for i := range p.msgs {
			p.msgs[i] = crossMsg{} // scratch: drop refs for the GC
		}
	}
}

// drainSort co-sorts keys and msgs by drainKey order.
type drainSort struct {
	keys []drainKey
	msgs []crossMsg
}

func (s *drainSort) Len() int           { return len(s.keys) }
func (s *drainSort) Less(i, j int) bool { return s.keys[i].less(&s.keys[j]) }
func (s *drainSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.msgs[i], s.msgs[j] = s.msgs[j], s.msgs[i]
}

// nextTime returns the earliest pending timestamp across LPs.
func (p *Parallel) nextTime() (Time, bool) {
	var m Time
	ok := false
	for _, e := range p.lps {
		if t, has := e.NextEventTime(); has && (!ok || t < m) {
			m, ok = t, true
		}
	}
	return m, ok
}

// windowEnd bounds one window starting at m. With no cross-LP links the
// window is still capped so the caller's predicate and limit are evaluated
// at a bounded virtual-time stride.
const unboundedWindow = Time(100 * Microsecond)

func (p *Parallel) windowEnd(m, limit Time) Time {
	la := p.lookahead
	if la <= 0 {
		la = unboundedWindow
	}
	end := m + la
	if end < m { // overflow
		end = limit + 1
	}
	return end
}

// startWorkers spins up the persistent worker pool: each worker executes a
// fixed list of LPs every window, built by buildPlan. The static assignment
// is irrelevant to results (LPs share nothing within a window) — it only
// spreads load.
func (p *Parallel) startWorkers() {
	if p.started {
		return
	}
	p.started = true
	w := p.workers
	if w > len(p.lps) {
		w = len(p.lps)
	}
	if w < 1 {
		w = 1
	}
	p.workers = w
	p.plan = p.buildPlan(w)
	p.startCh = make([]chan Time, w)
	p.doneCh = make(chan struct{}, w)
	for i := 0; i < w; i++ {
		p.startCh[i] = make(chan Time, 1)
		go func(worker int) {
			mine := p.plan[worker]
			for end := range p.startCh[worker] {
				for _, lp := range mine {
					p.lps[lp].runWindow(end)
				}
				p.doneCh <- struct{}{}
			}
		}(i)
	}
}

// Close shuts the worker pool down. Safe to call multiple times; further
// Run calls restart it.
func (p *Parallel) Close() {
	if !p.started {
		return
	}
	p.started = false
	for _, ch := range p.startCh {
		close(ch)
	}
	p.startCh, p.doneCh = nil, nil
}

// Run executes windows until pred (evaluated at every barrier, with all
// workers parked) returns true, the next event lies beyond limit, or the
// run quiesces. pred may be nil. The coordinator — the calling goroutine —
// owns all cross-LP merging, so pred may freely read state written by any
// LP during preceding windows.
func (p *Parallel) Run(limit Time, pred func() bool) Outcome {
	return p.run(limit, pred, false)
}

// RunSerial is Run on a single goroutine: the coordinator executes every
// LP's window itself in LP order. The schedule — and therefore every
// simulated result — is byte-identical to Run's; RunSerial exists for
// driver phases whose callbacks touch cross-LP shared state (e.g. a shared
// completion counter) and would race under concurrent workers.
func (p *Parallel) RunSerial(limit Time, pred func() bool) Outcome {
	return p.run(limit, pred, true)
}

func (p *Parallel) run(limit Time, pred func() bool, serial bool) Outcome {
	if !p.finalized {
		panic("sim: Run before Finalize")
	}
	for {
		p.drain()
		if p.barrier != nil {
			p.barrier()
		}
		if pred != nil && pred() {
			return Done
		}
		m, ok := p.nextTime()
		if !ok {
			return Quiescent
		}
		if m > limit {
			return Horizon
		}
		p.floor = m
		end := p.windowEnd(m, limit)
		if serial || len(p.lps) == 1 {
			for _, e := range p.lps {
				e.runWindow(end)
			}
			continue
		}
		p.startWorkers()
		for _, ch := range p.startCh {
			ch <- end
		}
		for range p.startCh {
			<-p.doneCh
		}
	}
}

// RunUntil executes windows until every event with timestamp <= t has run
// (or the run quiesces first). It is the parallel analogue of
// Engine.RunUntil, used to let in-flight traffic settle before counters are
// compared across modes.
func (p *Parallel) RunUntil(t Time) {
	p.Run(t, nil)
}
