// Conservative parallel discrete-event execution.
//
// A Parallel run partitions the simulated world into logical processes
// (LPs), each an ordinary single-threaded Engine with its own 4-ary heap,
// clock, and RNG stream. Execution proceeds in time windows bounded by the
// lookahead — the minimum latency of any cross-LP interaction (in the
// network model, the smallest propagation delay of a link whose endpoints
// live in different LPs). Within one window every LP can run independently:
// conservative synchronization guarantees that no event executed in the
// window can cause another LP to receive anything earlier than the window's
// end, so no LP ever has to roll back.
//
// Cross-LP messages travel through double-buffered per-(source, destination)
// outboxes: during window N the source's worker appends to the parity-N%2
// buffer, and at the start of window N+1 each destination's own worker
// merges the parity-N%2 buffers aimed at it into its heap in a fixed
// (timestamp, source LP, send order) total order — the merge of window N's
// traffic overlaps window N+1's writes into the opposite parity, so one
// barrier per window suffices and the entire drain phase parallelizes
// across workers. Because the partition, the per-LP RNG streams, and the
// merge order are all functions of the topology and seed alone — never of
// the worker count or wall-clock interleaving — a run produces
// byte-identical results whether it is driven by one worker, eight, or
// RunSerial on the coordinator itself. See DESIGN.md §9 and §14.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// crossMsg is one cross-LP event hand-off: the scheduled handler and its
// absolute timestamp, buffered until the next window's merge. seq is assigned
// by the destination engine when its worker injects the message into its
// slab (Engine.injectSlab), giving slab entries the same total order as
// heap events.
type crossMsg struct {
	at  Time
	seq uint64
	h   Handler
	arg any
}

// outbox is the single-producer buffer of messages from one source LP to one
// destination LP within one parity. The source's worker appends during a
// window; the destination's worker drains the opposite parity at the start
// of the next window. The window barrier provides the happens-before edge,
// so no per-message synchronization is needed.
type outbox []crossMsg

// maxTime is the outMin sentinel: no buffered cross-LP message.
const maxTime = Time(1<<63 - 1)

// Outcome reports why a Parallel run returned.
type Outcome int

const (
	// Done: the caller's predicate became true at a window barrier.
	Done Outcome = iota
	// Quiescent: no events remain in any LP heap or outbox.
	Quiescent
	// Horizon: the next event lies beyond the caller's time limit.
	Horizon
)

func (o Outcome) String() string {
	switch o {
	case Done:
		return "done"
	case Quiescent:
		return "quiescent"
	case Horizon:
		return "horizon"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// drainKey orders one incoming message during a merge.
type drainKey struct {
	at  Time
	src int32
	idx int32
}

func (a *drainKey) less(b *drainKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.idx < b.idx
}

// drainSort co-sorts keys and msgs by drainKey order.
type drainSort struct {
	keys []drainKey
	msgs []crossMsg
}

func (s *drainSort) Len() int           { return len(s.keys) }
func (s *drainSort) Less(i, j int) bool { return s.keys[i].less(&s.keys[j]) }
func (s *drainSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.msgs[i], s.msgs[j] = s.msgs[j], s.msgs[i]
}

// workerScratch is one worker's private window state: reusable merge
// buffers (so steady-state windows allocate nothing at any worker count)
// plus the end-of-window report the coordinator aggregates instead of
// rescanning every LP. The trailing pad keeps adjacent workers' hot fields
// off a shared cache line.
type workerScratch struct {
	keys   []drainKey
	msgs   []crossMsg
	sorter drainSort

	// End-of-window report: earliest pending timestamp across this worker's
	// LPs (heap, slab, and freshly written outboxes) and whether any of its
	// LPs executed an event. Written by the worker, read by the coordinator
	// at the barrier.
	min Time
	has bool
	ran bool

	// prof accumulates this worker's wall-clock phase breakdown when
	// executor profiling is enabled (profile.go). Written only by the
	// owning worker during windows; read by the coordinator at snapshots.
	prof phaseNs

	_ [64]byte
}

// workerPark is one worker's parking slot of the phase barrier: a flag the
// releaser swaps to decide whether a wake token is owed, and a buffered
// channel carrying at most that one token.
type workerPark struct {
	parked atomic.Int32
	wake   chan struct{}

	// spinNs/parkNs split this worker's barrier wait when profiling is on
	// (phaseBarrier.prof): written only by the owning worker inside
	// awaitGen, harvested by Parallel.absorbBarrierProf with all workers
	// parked.
	spinNs uint64
	parkNs uint64
	_      [24]byte
}

// phaseBarrier is a sense-reversing spin-then-park barrier. The coordinator
// releases a window by bumping gen; workers spin on gen briefly and park on
// their wake channel only if the release does not arrive. Arrival runs in
// the other direction: workers count into arrived, and the last one wakes
// the coordinator if it parked. The parked-flag Swap protocol makes the
// hand-off lost-wakeup-free: whoever swaps the flag from 1 owns the token.
// Two channel operations per worker per window (the old handshake) become
// zero in the spin path and at most one park/wake pair otherwise.
type phaseBarrier struct {
	gen     atomic.Uint64
	arrived atomic.Int32
	quit    atomic.Bool
	nw      int32 // parked worker goroutines (workers 1..n-1; 0 is the coordinator)
	spins   int

	coordParked atomic.Int32
	coordWake   chan struct{}

	// prof turns on wall-clock accounting of barrier waits (profile.go):
	// workers split their awaitGen time into spin and park, the coordinator
	// its gather time likewise.
	prof        bool
	coordSpinNs uint64
	coordParkNs uint64

	workers []workerPark
}

// release opens the next window: reset the arrival count, publish the new
// generation, and hand a wake token to every worker that already parked.
func (b *phaseBarrier) release() {
	b.arrived.Store(0)
	b.gen.Add(1)
	for i := range b.workers {
		if b.workers[i].parked.Swap(0) == 1 {
			b.workers[i].wake <- struct{}{}
		}
	}
}

// awaitGen blocks worker w until generation want is released, spinning first
// and parking only if the release is slow. Returns false when the pool is
// shutting down. With profiling on, the wait is split into its spin and park
// portions (wall-clock reads happen only while the worker is waiting, so
// they cannot shift any simulated event).
func (b *phaseBarrier) awaitGen(w int, want uint64) bool {
	var t0 int64
	if b.prof {
		t0 = profNow()
	}
	for i := 0; i < b.spins; i++ {
		if b.gen.Load() >= want {
			if b.prof {
				b.workers[w-1].spinNs += uint64(profNow() - t0)
			}
			return !b.quit.Load()
		}
	}
	wp := &b.workers[w-1]
	var t1 int64
	if b.prof {
		t1 = profNow()
		wp.spinNs += uint64(t1 - t0)
	}
	for b.gen.Load() < want {
		wp.parked.Store(1)
		if b.gen.Load() >= want {
			if wp.parked.Swap(0) == 0 {
				// The releaser claimed the flag first and owes a token;
				// consume it so it cannot leak into the next window.
				<-wp.wake
			}
			break
		}
		<-wp.wake
	}
	if b.prof {
		wp.parkNs += uint64(profNow() - t1)
	}
	return !b.quit.Load()
}

// arrive reports one worker's window as finished; the last arrival wakes the
// coordinator if it parked.
func (b *phaseBarrier) arrive() {
	if b.arrived.Add(1) == b.nw {
		if b.coordParked.Swap(0) == 1 {
			b.coordWake <- struct{}{}
		}
	}
}

// gather blocks the coordinator until every worker has arrived. Profiled
// like awaitGen: the coordinator's wait splits into spin and park.
func (b *phaseBarrier) gather() {
	var t0 int64
	if b.prof {
		t0 = profNow()
	}
	for i := 0; i < b.spins; i++ {
		if b.arrived.Load() == b.nw {
			if b.prof {
				b.coordSpinNs += uint64(profNow() - t0)
			}
			return
		}
	}
	var t1 int64
	if b.prof {
		t1 = profNow()
		b.coordSpinNs += uint64(t1 - t0)
	}
	defer func() {
		if b.prof {
			b.coordParkNs += uint64(profNow() - t1)
		}
	}()
	for b.arrived.Load() < b.nw {
		b.coordParked.Store(1)
		if b.arrived.Load() == b.nw {
			if b.coordParked.Swap(0) == 0 {
				<-b.coordWake
			}
			return
		}
		<-b.coordWake
	}
}

// barrierSpins sizes the spin phase. On a single-CPU box spinning can only
// delay the goroutine that would make progress, so workers park immediately;
// with more workers than CPUs a short spin bounds the waste.
func barrierSpins(workers int) int {
	procs := runtime.GOMAXPROCS(0)
	switch {
	case procs <= 1:
		return 0
	case workers > procs:
		return 1_000
	default:
		return 20_000
	}
}

// Parallel coordinates a set of LP engines through lookahead-bounded
// windows. Construct with NewParallel, create engines with AddLP, then call
// Finalize once before the first event is scheduled across LPs.
type Parallel struct {
	seed      int64
	workers   int
	lookahead Time
	lps       []*Engine
	floor     Time // start of the most recently executed window
	finalized bool

	// wp is the write parity of the window currently (or most recently)
	// executing: ScheduleRemote appends into out[wp], while merges drain
	// out[wp^1]. Only the coordinator flips it, at the barrier.
	wp int

	// phaseEnd is the current window's exclusive end, published by the
	// coordinator before releasing workers.
	phaseEnd Time

	// incoming[d] is the coordinator's transpose of the source dirty lists:
	// which sources have messages for destination d this merge, in ascending
	// source order. touched lists the destinations with any, so clearing is
	// proportional to traffic, not to LPs.
	incoming [][]int32
	touched  []int32

	// weights biases the LP->worker assignment (SetLPWeights); nil means
	// uniform.
	weights []float64

	// Execution plan and per-worker state, built lazily on the first run.
	// plan[w] lists the LPs worker w merges and executes each window, fixed
	// by weighted longest-processing-time assignment. The coordinator is
	// worker 0; goroutines exist only for workers 1..n-1.
	plan   [][]int
	wstate []workerScratch

	started bool
	bar     *phaseBarrier
	wg      sync.WaitGroup

	// barrier, when set, runs on the coordinator at every window barrier
	// where state changed (all workers parked). The observability layer
	// hooks it to drain per-LP trace shards; any coordinator-side
	// bookkeeping that must see a consistent cross-LP snapshot can ride on
	// it.
	barrier func()

	// prof, when set, accumulates executor introspection (profile.go):
	// phase timings, per-LP loads, cross-LP traffic. Host-side only —
	// never read by simulated state.
	prof *execProf
}

// NewParallel creates an empty run. workers is the number of goroutines
// that execute windows (clamped to [1, NumLPs] at run time); it has no
// effect on simulated results, only on wall-clock speed.
func NewParallel(seed int64, workers int) *Parallel {
	if workers < 1 {
		workers = 1
	}
	return &Parallel{seed: seed, workers: workers}
}

// lpSeedStride spaces per-LP RNG seeds (the 64-bit golden ratio, reinterpreted
// as a signed constant so seed arithmetic wraps instead of overflowing).
const lpSeedStride = int64(-7046029254386353131)

// AddLP creates the next logical process. LP 0's RNG stream is seeded
// exactly like New(seed), so a single-LP parallel run consumes randomness
// identically to a standalone sequential engine; further LPs derive
// statistically independent streams from the same seed. The partition must
// be a pure function of the topology — never of the worker count — or
// determinism across worker counts is lost.
func (p *Parallel) AddLP() *Engine {
	if p.finalized {
		panic("sim: AddLP after Finalize")
	}
	lp := int32(len(p.lps))
	e := New(p.seed + int64(lp)*lpSeedStride)
	e.par = p
	e.lp = lp
	p.lps = append(p.lps, e)
	return e
}

// Finalize fixes the LP set and the lookahead, sizing every engine's
// outboxes and dirty lists. lookahead is the conservative window length:
// the minimum virtual-time distance of any cross-LP interaction. A
// lookahead <= 0 means no cross-LP links exist and windows are unbounded.
func (p *Parallel) Finalize(lookahead Time) {
	if p.finalized {
		panic("sim: Finalize called twice")
	}
	p.finalized = true
	p.lookahead = lookahead
	n := len(p.lps)
	for _, e := range p.lps {
		for par := 0; par < 2; par++ {
			e.out[par] = make([]outbox, n)
			e.dirty[par] = make([]int32, 0, n)
			e.outMin[par] = maxTime
		}
	}
	p.incoming = make([][]int32, n)
	for i := range p.incoming {
		p.incoming[i] = make([]int32, 0, n)
	}
	p.touched = make([]int32, 0, n)
}

// NumLPs returns the partition size.
func (p *Parallel) NumLPs() int { return len(p.lps) }

// LP returns the i-th logical process engine.
func (p *Parallel) LP(i int) *Engine { return p.lps[i] }

// Lookahead returns the window bound fixed by Finalize.
func (p *Parallel) Lookahead() Time { return p.lookahead }

// Workers returns the configured worker count.
func (p *Parallel) Workers() int { return p.workers }

// SetLPWeights biases the static LP->worker assignment by expected load
// (e.g. devices or ports per LP): workers receive LPs by weighted
// longest-processing-time scheduling instead of round-robin striding. Call
// before the first Run; w[i] is LP i's relative weight. The assignment
// affects wall-clock balance only — never simulated results, which are fixed
// by the partition and seed alone.
func (p *Parallel) SetLPWeights(w []float64) {
	if p.plan != nil {
		panic("sim: SetLPWeights after workers started")
	}
	if len(w) != len(p.lps) {
		panic(fmt.Sprintf("sim: SetLPWeights got %d weights for %d LPs", len(w), len(p.lps)))
	}
	p.weights = append([]float64(nil), w...)
}

// buildPlan assigns LPs to w workers. With weights set, LPs are sorted by
// (weight desc, LP asc) and greedily placed on the least-loaded worker
// (lowest index on ties) — deterministic LPT. Without weights it keeps the
// classic stride lp % w.
func (p *Parallel) buildPlan(w int) [][]int {
	plan := make([][]int, w)
	if p.weights == nil {
		for lp := range p.lps {
			plan[lp%w] = append(plan[lp%w], lp)
		}
		return plan
	}
	order := make([]int, len(p.lps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := p.weights[order[a]], p.weights[order[b]]
		if wa != wb {
			return wa > wb
		}
		return order[a] < order[b]
	})
	load := make([]float64, w)
	for _, lp := range order {
		best := 0
		for i := 1; i < w; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		plan[best] = append(plan[best], lp)
		load[best] += p.weights[lp]
	}
	return plan
}

// SetBarrier installs a hook that the coordinator invokes at window barriers
// where simulation state changed, while all workers are parked — the hook
// may therefore read (and reset) state written by any LP during preceding
// windows without synchronization. A nil f removes the hook.
func (p *Parallel) SetBarrier(f func()) { p.barrier = f }

// Now returns the virtual-time floor: the start of the most recent window.
// Every LP's local clock is at or beyond it.
func (p *Parallel) Now() Time { return p.floor }

// EventsRun sums executed events across LPs.
func (p *Parallel) EventsRun() uint64 {
	var n uint64
	for _, e := range p.lps {
		n += e.nRun
	}
	return n
}

// Pending sums scheduled events across LP heaps (outboxes are empty between
// runs; the coordinator drains any residue before Run returns).
func (p *Parallel) Pending() int {
	n := 0
	for _, e := range p.lps {
		n += e.Pending()
	}
	return n
}

// transpose turns the per-source dirty lists of one parity into
// per-destination merge work: incoming[d] receives every source with
// messages for d, in ascending source order (sources are scanned in LP
// order), and the scanned dirty lists and outbox minima are reset. It runs
// only on the coordinator, with all workers parked, and costs O(LPs +
// dirty pairs) — not O(LPs^2).
func (p *Parallel) transpose(par int) {
	for _, d := range p.touched {
		p.incoming[d] = p.incoming[d][:0]
	}
	p.touched = p.touched[:0]
	for si, src := range p.lps {
		dl := src.dirty[par]
		if len(dl) == 0 {
			continue
		}
		for _, d := range dl {
			if len(p.incoming[d]) == 0 {
				p.touched = append(p.touched, d)
			}
			p.incoming[d] = append(p.incoming[d], int32(si))
		}
		src.dirty[par] = dl[:0]
		src.outMin[par] = maxTime
	}
}

// mergeDst merges destination d's incoming parity-par boxes into its slab in
// (timestamp, source LP, send order) order, using ws's reusable scratch, and
// resets the drained boxes. Callers guarantee exclusive access to d and to
// the listed source boxes: during a window that is d's owning worker (each
// (source box, destination) cell has exactly one reader), at exit barriers
// the coordinator.
func (p *Parallel) mergeDst(ws *workerScratch, d int, srcs []int32, par int) {
	keys := ws.keys[:0]
	msgs := ws.msgs[:0]
	for _, si := range srcs {
		src := p.lps[si]
		box := src.out[par][d]
		if pr := p.prof; pr != nil && len(box) > 0 {
			// Destination d has exactly one merging worker per window, so
			// its traffic row cells are single-writer.
			pr.traffic[int(si)*len(p.lps)+d] += uint64(len(box))
		}
		for mi := range box {
			keys = append(keys, drainKey{at: box[mi].at, src: si, idx: int32(mi)})
			msgs = append(msgs, box[mi])
			box[mi] = crossMsg{} // drop handler/arg refs for the GC
		}
		src.out[par][d] = box[:0]
	}
	ws.sorter.keys, ws.sorter.msgs = keys, msgs
	sort.Sort(&ws.sorter)
	p.lps[d].injectSlab(msgs)
	for i := range msgs {
		msgs[i] = crossMsg{} // scratch: drop refs for the GC
	}
	ws.keys, ws.msgs = keys, msgs // retain grown capacity
}

// drainAll serially merges every buffered cross-LP message of both parities
// into its destination. The coordinator calls it at Run entry (to absorb
// remote scheduling done between runs) and before every return, preserving
// the contract that outboxes are empty whenever Run is not executing.
func (p *Parallel) drainAll() {
	ws := &p.wstate[0]
	for par := 0; par < 2; par++ {
		p.transpose(par)
		for _, d := range p.touched {
			p.mergeDst(ws, int(d), p.incoming[d], par)
		}
	}
}

// mergePhase drains the previous window's traffic aimed at worker w's LPs.
// It runs concurrently with every other worker's mergePhase and runPhase:
// merges read parity wp^1 while runs write parity wp, and each destination
// (and each source box column) has exactly one reading worker.
func (p *Parallel) mergePhase(w int) {
	par := p.wp ^ 1
	ws := &p.wstate[w]
	for _, d := range p.plan[w] {
		if srcs := p.incoming[d]; len(srcs) > 0 {
			p.mergeDst(ws, d, srcs, par)
		}
	}
}

// runPhase executes one window for each of worker w's LPs and records
// whether any of them ran an event. With profiling on it also attributes the
// executed-event delta to the LP — the raw material of the load-imbalance
// report (each LP's cells are written only by its owning worker).
func (p *Parallel) runPhase(w int, end Time) {
	ran := false
	pr := p.prof
	for _, lp := range p.plan[w] {
		e := p.lps[lp]
		n0 := e.nRun
		e.runWindow(end)
		if d := e.nRun - n0; d != 0 {
			ran = true
			if pr != nil {
				pr.lpEvents[lp] += d
				pr.lpWindows[lp]++
				if d > pr.lpMaxWindow[lp] {
					pr.lpMaxWindow[lp] = d
				}
			}
		}
	}
	p.wstate[w].ran = ran
}

// minPhase records worker w's earliest pending timestamp: heap and slab
// minima plus the minimum of any cross-LP messages its LPs buffered this
// window. Aggregating these per-worker reports is how the coordinator finds
// the next window's start without rescanning every LP.
func (p *Parallel) minPhase(w int) {
	var m Time
	has := false
	wp := p.wp
	for _, lp := range p.plan[w] {
		e := p.lps[lp]
		if t, ok := e.NextEventTime(); ok && (!has || t < m) {
			m, has = t, true
		}
		if om := e.outMin[wp]; om != maxTime && (!has || om < m) {
			m, has = om, true
		}
	}
	ws := &p.wstate[w]
	ws.min, ws.has = m, has
}

// phase is one worker's whole window: merge inbound traffic, execute, report.
// With profiling on, the merge+inject and execute+report segments are timed
// (two extra monotonic clock reads per worker-window; simulated state never
// sees them).
func (p *Parallel) phase(w int) {
	end := p.phaseEnd
	pr := p.prof
	if pr == nil {
		p.mergePhase(w)
		p.runPhase(w, end)
		p.minPhase(w)
		return
	}
	t0 := profNow()
	p.mergePhase(w)
	t1 := profNow()
	p.runPhase(w, end)
	p.minPhase(w)
	t2 := profNow()
	ws := &p.wstate[w]
	ws.prof.MergeNs += uint64(t1 - t0)
	ws.prof.ExecNs += uint64(t2 - t1)
	ws.prof.Windows++
}

// scanMin is the full next-event scan, used only on the first window of a
// Run (worker reports are stale or absent there).
func (p *Parallel) scanMin() (Time, bool) {
	var m Time
	ok := false
	for _, e := range p.lps {
		if t, has := e.NextEventTime(); has && (!ok || t < m) {
			m, ok = t, true
		}
		for par := 0; par < 2; par++ {
			if om := e.outMin[par]; om != maxTime && (!ok || om < m) {
				m, ok = om, true
			}
		}
	}
	return m, ok
}

// gatherMin aggregates the per-worker end-of-window reports: the earliest
// pending timestamp anywhere and whether any LP executed an event.
func (p *Parallel) gatherMin() (Time, bool, bool) {
	var m Time
	has, changed := false, false
	for i := range p.wstate {
		ws := &p.wstate[i]
		if ws.ran {
			changed = true
		}
		if ws.has && (!has || ws.min < m) {
			m, has = ws.min, true
		}
	}
	return m, has, changed
}

// windowEnd bounds one window starting at m. With no cross-LP links the
// window is still capped so the caller's predicate and limit are evaluated
// at a bounded virtual-time stride.
const unboundedWindow = Time(100 * Microsecond)

func (p *Parallel) windowEnd(m, limit Time) Time {
	la := p.lookahead
	if la <= 0 {
		la = unboundedWindow
	}
	end := m + la
	if end < m { // overflow
		end = limit + 1
	}
	return end
}

// ensurePlan builds the LP->worker plan and per-worker scratch once, on the
// first run. The plan is fixed for the lifetime of the Parallel so merge
// ownership (which worker drains which destination) never shifts.
func (p *Parallel) ensurePlan() {
	if p.plan != nil {
		return
	}
	w := p.workers
	if w > len(p.lps) {
		w = len(p.lps)
	}
	if w < 1 {
		w = 1
	}
	p.workers = w
	p.plan = p.buildPlan(w)
	p.wstate = make([]workerScratch, w)
}

// startWorkers spins up the persistent pool: workers 1..n-1 each own a fixed
// slice of the plan (the coordinator executes plan[0] itself), labeled for
// CPU profiles so barrier, merge, and LP-execution time attribute per
// worker. The static assignment is irrelevant to results — LPs share
// nothing within a window — it only spreads load.
func (p *Parallel) startWorkers() {
	if p.started {
		return
	}
	p.started = true
	n := p.workers
	b := &phaseBarrier{
		nw:        int32(n - 1),
		spins:     barrierSpins(n),
		coordWake: make(chan struct{}, 1),
		workers:   make([]workerPark, n-1),
		prof:      p.prof != nil,
	}
	for i := range b.workers {
		b.workers[i].wake = make(chan struct{}, 1)
	}
	p.bar = b
	p.wg.Add(n - 1)
	for i := 1; i < n; i++ {
		go func(w int) {
			defer p.wg.Done()
			pprof.Do(context.Background(), pprof.Labels("pdes-worker", strconv.Itoa(w)), func(context.Context) {
				p.workerLoop(w)
			})
		}(i)
	}
}

// workerLoop is one pooled worker: await a window release, run the phase,
// report arrival. Exits when Close releases with the quit flag set.
func (p *Parallel) workerLoop(w int) {
	b := p.bar
	for gen := uint64(1); ; gen++ {
		if !b.awaitGen(w, gen) {
			return
		}
		p.phase(w)
		b.arrive()
	}
}

// Close shuts the worker pool down. Safe to call multiple times; further
// Run calls restart it.
func (p *Parallel) Close() {
	if !p.started {
		return
	}
	p.started = false
	p.bar.quit.Store(true)
	p.bar.release()
	p.wg.Wait()
	p.absorbBarrierProf() // keep barrier wait accounting across pool restarts
	p.bar = nil
}

// Run executes windows until pred (evaluated at barriers where state
// changed, with all workers parked) returns true, the next event lies
// beyond limit, or the run quiesces. pred may be nil. The coordinator — the
// calling goroutine — participates as worker 0 and owns all cross-window
// sequencing, so pred may freely read state written by any LP during
// preceding windows.
func (p *Parallel) Run(limit Time, pred func() bool) Outcome {
	return p.run(limit, pred, false)
}

// RunSerial is Run on a single goroutine: the coordinator executes every
// worker's phase itself. The schedule — and therefore every simulated
// result — is byte-identical to Run's; RunSerial exists for driver phases
// whose callbacks touch cross-LP shared state (e.g. a shared completion
// counter) and would race under concurrent workers.
func (p *Parallel) RunSerial(limit Time, pred func() bool) Outcome {
	return p.run(limit, pred, true)
}

func (p *Parallel) run(limit Time, pred func() bool, serial bool) Outcome {
	if !p.finalized {
		panic("sim: Run before Finalize")
	}
	pr := p.prof
	if pr == nil {
		return p.runLoop(limit, pred, serial)
	}
	t0 := profNow()
	out := p.runLoop(limit, pred, serial)
	pr.runNs += uint64(profNow() - t0)
	pr.runs++
	return out
}

func (p *Parallel) runLoop(limit Time, pred func() bool, serial bool) Outcome {
	p.ensurePlan()
	p.drainAll() // absorb any remote scheduling done between runs
	// Concurrency can only cost on one CPU, so a multi-worker run degrades
	// to the (result-identical) inline schedule there.
	inline := serial || p.workers == 1 || runtime.GOMAXPROCS(0) == 1
	pr := p.prof
	if pr != nil {
		pr.inline = inline
	}
	first := true
	for {
		// Barrier-sequential section: all workers parked.
		var tSeq int64
		if pr != nil {
			tSeq = profNow()
		}
		var m Time
		var ok, changed bool
		if first {
			m, ok = p.scanMin()
			changed = true
		} else {
			m, ok, changed = p.gatherMin()
		}
		if changed {
			if p.barrier != nil {
				p.barrier()
			}
			if pred != nil && pred() {
				p.drainAll()
				return Done
			}
		}
		if !ok {
			p.drainAll()
			return Quiescent
		}
		if m > limit {
			p.drainAll()
			return Horizon
		}
		if pr != nil {
			pr.windows++
			if !first {
				// Virtual advance between consecutive window starts: the
				// lookahead-slack signal. An advance at (or under) the
				// lookahead means back-to-back windows — barrier cadence at
				// its maximum; larger advances are idle skips.
				adv := m - p.floor
				pr.advSum += adv
				if adv > pr.advMax {
					pr.advMax = adv
				}
				if adv <= p.lookahead {
					pr.satWindows++
				}
			}
		}
		first = false
		p.floor = m
		p.phaseEnd = p.windowEnd(m, limit)
		p.transpose(p.wp)
		p.wp ^= 1
		if pr != nil {
			pr.seqNs += uint64(profNow() - tSeq)
		}
		if inline {
			for w := range p.plan {
				p.phase(w)
			}
			continue
		}
		p.startWorkers()
		p.bar.release()
		p.phase(0)
		p.bar.gather()
	}
}

// RunUntil executes windows until every event with timestamp <= t has run
// (or the run quiesces first). It is the parallel analogue of
// Engine.RunUntil, used to let in-flight traffic settle before counters are
// compared across modes.
func (p *Parallel) RunUntil(t Time) {
	p.Run(t, nil)
}
