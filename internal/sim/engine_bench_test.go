package sim

import "testing"

// BenchmarkEngineSchedule measures raw event throughput: the budget every
// packet-level experiment spends.
func BenchmarkEngineSchedule(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineChained measures the self-scheduling pattern ports and
// QPs use (each event schedules the next).
func BenchmarkEngineChained(b *testing.B) {
	e := New(1)
	n := 0
	var next func()
	next = func() {
		n++
		if n < b.N {
			e.After(10, next)
		}
	}
	b.ReportAllocs()
	e.After(10, next)
	e.Run()
}

// BenchmarkTimerChurn measures arm/cancel cycles (RTO management).
func BenchmarkTimerChurn(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.AfterTimer(1000, func() {})
		t.Stop()
		if i%4096 == 0 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkTimerReset measures the re-armable path QPs use per ACK: one timer,
// endlessly re-armed in place. Should be allocation-free.
func BenchmarkTimerReset(b *testing.B) {
	e := New(1)
	t := e.NewTimer(func() {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Reset(1000)
	}
	t.Stop()
}

// BenchmarkHandlerDispatch measures the typed-handler path ports use per hop.
// Should be allocation-free when the handler and arg are pointers.
func BenchmarkHandlerDispatch(b *testing.B) {
	e := New(1)
	h := &nopHandler{}
	arg := &struct{}{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterHandler(Time(i%1000), h, arg)
		if i%1024 == 0 {
			e.Run()
		}
	}
	e.Run()
}

type nopHandler struct{}

func (*nopHandler) OnEvent(*Engine, any) {}
