// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock in nanoseconds and executes scheduled
// callbacks in timestamp order. Events scheduled at the same instant run in
// the order they were scheduled, which keeps runs bit-for-bit reproducible
// for a given seed. Everything above it — links, switches, RNICs, the Cepheus
// accelerator — is built as callbacks on this engine.
//
// The scheduler is allocation-free on its hot paths: events are pointer-free
// key records in a hand-rolled 4-ary heap (payloads live in a recycled slot
// arena, so sifting triggers no GC write barriers), the typed
// Handler dispatch path carries a receiver plus argument without building a
// closure per event, and Timers own a single heap slot that Reset re-arms and
// Stop removes in place — arming and cancelling schedules no garbage. See
// DESIGN.md §8 for the internals.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point on the virtual clock, in nanoseconds since simulation start.
type Time int64

// Convenient duration units, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 2*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 2*Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 2*Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Handler is the typed event dispatch path: hot paths implement OnEvent once
// and schedule (receiver, arg) pairs instead of building a closure per event.
// arg carries per-event state; storing pointers in it does not allocate.
type Handler interface {
	OnEvent(e *Engine, arg any)
}

// event is one heap key: the ordering fields plus the index of the payload
// slot. Keys are deliberately pointer-free so sifting them around the heap
// copies 24 bytes with no GC write barriers — the single hottest operation
// in the simulator.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	slot int32  // index into Engine.slots
}

// before orders events by (timestamp, schedule order).
func (ev *event) before(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eslot is one scheduled callback's payload, parked outside the heap so heap
// moves never touch pointers. Exactly one of fn, h, or tm is set: fn is the
// closure path, h the typed-handler path, tm a Timer's slot (the timer tracks
// its slot index so Stop/Reset can find its heap key in O(1) via heap).
type eslot struct {
	fn   func()
	h    Handler
	arg  any
	tm   *Timer
	heap int32 // current heap index of this slot's key
}

// Engine is a single-threaded discrete-event scheduler with a seeded RNG.
// The zero value is not usable; construct with New.
//
// An engine can also be one logical process (LP) of a Parallel run (see
// parallel.go): it then carries its partition index and per-destination
// outboxes for cross-LP messages, but its heap, clock, and RNG remain
// strictly single-threaded — only the owning worker touches them.
type Engine struct {
	now     Time
	seq     uint64
	events  []event // 4-ary min-heap of pointer-free key records
	slots   []eslot // payload arena, indexed by event.slot
	free    []int32 // recycled slot indices
	rng     *rand.Rand
	stopped bool
	nRun    uint64

	// Parallel-execution identity: nil/0 for a standalone engine.
	par *Parallel
	lp  int32

	// Double-buffered cross-LP mailboxes, indexed by write parity then
	// destination LP. During window N the owning worker appends to parity
	// N%2 while destination workers merge the opposite parity (written in
	// window N-1) — so the merge and the next window overlap with a single
	// barrier between them. dirty lists the destinations this LP touched in
	// each parity (the sparse alternative to scanning all LPs^2 boxes every
	// window) and outMin tracks the earliest buffered timestamp per parity,
	// so the coordinator's next-window bound never walks the boxes.
	out    [2][]outbox
	dirty  [2][]int32
	outMin [2]Time

	// Inbound cross-LP slab: messages injected by the coordinator at window
	// barriers, kept sorted by (at, seq) and consumed from slabIdx forward.
	// Slab entries never enter the heap — Step merges the two streams on the
	// fly — so a cross-LP hand-off costs zero heap operations on the
	// destination. slabScratch is the retired backing array, recycled on the
	// next merge so steady-state injection allocates nothing.
	slab        []crossMsg
	slabIdx     int
	slabScratch []crossMsg
}

// New returns an engine whose RNG is seeded with seed. Two engines built with
// the same seed and driven by the same code execute identical schedules.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsRun reports how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Credit adds n to the executed-event count without dispatching anything.
// The burst packet path uses it to keep event accounting comparable across
// scheduler generations: a train of n back-to-back frames executes as one
// serialization-complete timer plus n arrivals, but each frame still
// represents the two per-frame events (tx done, delivery) the vector path
// replaced, so the train credits the difference.
func (e *Engine) Credit(n uint64) { e.nRun += n }

// Pending reports how many events are currently scheduled, including
// barrier-injected cross-LP slab messages not yet consumed. Stopped timers do
// not linger here: cancelling removes the heap entry immediately.
func (e *Engine) Pending() int { return len(e.events) + (len(e.slab) - e.slabIdx) }

// LP returns this engine's logical-process index within a Parallel run
// (0 for a standalone engine).
func (e *Engine) LP() int { return int(e.lp) }

// NextEventTime returns the timestamp of the earliest pending event — heap or
// cross-LP slab — and whether one exists.
func (e *Engine) NextEventTime() (Time, bool) {
	t := Time(0)
	ok := false
	if len(e.events) > 0 {
		t, ok = e.events[0].at, true
	}
	if e.slabIdx < len(e.slab) {
		if mt := e.slab[e.slabIdx].at; !ok || mt < t {
			t, ok = mt, true
		}
	}
	return t, ok
}

// ---- 4-ary heap of pointer-free key records ----
//
// A 4-ary layout halves the tree depth of a binary heap and keeps children in
// one cache line, which is where a discrete-event simulator spends its time.
// Children of i are 4i+1..4i+4; parent of i is (i-1)/4.

// allocSlot returns a free payload slot, recycling before growing.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.slots = append(e.slots, eslot{})
	return int32(len(e.slots) - 1)
}

// freeSlot zeroes slot s (dropping callback/arg references for the GC) and
// recycles it.
func (e *Engine) freeSlot(s int32) {
	e.slots[s] = eslot{}
	e.free = append(e.free, s)
}

// setEvent writes key ev into heap position i, maintaining the payload's
// back-pointer.
func (e *Engine) setEvent(i int, ev event) {
	e.events[i] = ev
	e.slots[ev.slot].heap = int32(i)
}

// siftUp moves the event at slot i toward the root until ordered.
func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&e.events[parent]) {
			break
		}
		e.setEvent(i, e.events[parent])
		i = parent
	}
	e.setEvent(i, ev)
}

// siftDown moves the event at slot i toward the leaves until ordered.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.events[c].before(&e.events[best]) {
				best = c
			}
		}
		if !e.events[best].before(&ev) {
			break
		}
		e.setEvent(i, e.events[best])
		i = best
	}
	e.setEvent(i, ev)
}

// push inserts ev into the heap.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

// pop removes the earliest event, returning its timestamp and payload. The
// payload slot is recycled before the caller dispatches, so a callback that
// schedules immediately reuses the slot it just vacated.
func (e *Engine) pop() (Time, eslot) {
	top := e.events[0]
	n := len(e.events) - 1
	if n > 0 {
		e.setEvent(0, e.events[n])
	}
	e.events = e.events[:n] // keys hold no pointers; no need to zero
	if n > 1 {
		e.siftDown(0)
	}
	sl := e.slots[top.slot]
	if sl.tm != nil {
		sl.tm.slot = -1
	}
	e.freeSlot(top.slot)
	return top.at, sl
}

// remove deletes the event at heap position i (a cancelled timer's entry).
func (e *Engine) remove(i int) {
	s := e.events[i].slot
	if tm := e.slots[s].tm; tm != nil {
		tm.slot = -1
	}
	e.freeSlot(s)
	n := len(e.events) - 1
	moved := e.events[n]
	e.events = e.events[:n]
	if i < n {
		e.setEvent(i, moved)
		e.siftDown(i)
		e.siftUp(i)
	}
}

// schedule validates the timestamp, parks the payload in a slot, and pushes
// its key.
func (e *Engine) schedule(at Time, fn func(), h Handler, arg any) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	s := e.allocSlot()
	sl := &e.slots[s]
	sl.fn, sl.h, sl.arg = fn, h, arg
	e.push(event{at: at, seq: e.seq, slot: s})
}

// Schedule runs fn at absolute time at. It panics if at precedes Now, since a
// causal model can never schedule into the past.
func (e *Engine) Schedule(at Time, fn func()) {
	e.schedule(at, fn, nil, nil)
}

// After runs fn d nanoseconds from now. A negative d panics via Schedule.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// ScheduleHandler runs h.OnEvent(e, arg) at absolute time at. Unlike
// Schedule, it allocates nothing when h and arg hold pointers — the typed
// path per-packet machinery (ports, QPs) uses on every hop.
func (e *Engine) ScheduleHandler(at Time, h Handler, arg any) {
	e.schedule(at, nil, h, arg)
}

// AfterHandler runs h.OnEvent(e, arg) d nanoseconds from now.
func (e *Engine) AfterHandler(d Time, h Handler, arg any) {
	e.ScheduleHandler(e.now+d, h, arg)
}

// Timer is a cancellable, re-armable scheduled callback. A timer owns at most
// one heap slot: Reset re-arms it in place and Stop removes it immediately,
// so arm/cancel churn (RoCE retransmission timers, DCQCN rate timers) neither
// allocates nor strands dead entries in the scheduler until their deadline.
// Construct with Engine.NewTimer (reusable across arms) or Engine.AfterTimer.
type Timer struct {
	eng   *Engine
	fn    func()
	slot  int32 // payload slot while armed, -1 otherwise
	fired bool
}

// NewTimer creates an unarmed timer that will run fn each time it fires.
// The callback is fixed at construction so re-arming allocates nothing.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn, slot: -1}
}

// AfterTimer schedules fn after d and returns a handle that can cancel or
// re-arm it.
func (e *Engine) AfterTimer(d Time, fn func()) *Timer {
	t := e.NewTimer(fn)
	t.Reset(d)
	return t
}

// Reset (re-)arms the timer to fire d nanoseconds from now, whether it is
// pending, stopped, or already fired. A pending timer's heap slot is moved in
// place; no new entry is created.
func (t *Timer) Reset(d Time) {
	e := t.eng
	at := e.now + d
	if at < e.now {
		panic(fmt.Sprintf("sim: timer reset at %v before now %v", at, e.now))
	}
	t.fired = false
	e.seq++
	if t.slot >= 0 {
		i := int(e.slots[t.slot].heap)
		e.events[i].at = at
		e.events[i].seq = e.seq
		e.siftDown(i)
		e.siftUp(i)
		return
	}
	s := e.allocSlot()
	e.slots[s].tm = t
	t.slot = s
	e.push(event{at: at, seq: e.seq, slot: s})
}

// Stop cancels the timer if it is pending, removing its entry from the
// scheduler immediately. It reports whether the call prevented the callback
// from running.
func (t *Timer) Stop() bool {
	if t.slot < 0 {
		return false
	}
	t.eng.remove(int(t.eng.slots[t.slot].heap))
	return true
}

// Pending reports whether the timer is armed and has not yet fired.
func (t *Timer) Pending() bool { return t.slot >= 0 }

// Fired reports whether the callback ran since the last Reset.
func (t *Timer) Fired() bool { return t.fired }

// Step executes the next pending event, advancing the clock to its timestamp.
// It reports whether an event was executed.
//
// Two fast paths keep the hot loop cheap. A cross-LP slab message earlier
// than the heap top dispatches straight from the slab — no heap traffic at
// all. A timer at the heap top dispatches in place: if its callback re-arms
// it (the dominant pattern for port serialization chains and QP pacers),
// Reset re-keys the existing entry and the fire costs one sift instead of a
// pop/push pair plus slot churn.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	if e.slabIdx < len(e.slab) {
		m := &e.slab[e.slabIdx]
		if len(e.events) == 0 || m.at < e.events[0].at ||
			(m.at == e.events[0].at && m.seq < e.events[0].seq) {
			e.slabIdx++
			e.now = m.at
			e.nRun++
			h, arg := m.h, m.arg
			*m = crossMsg{} // drop refs for the GC
			h.OnEvent(e, arg)
			return true
		}
	}
	if len(e.events) == 0 {
		return false
	}
	top := e.events[0]
	if tm := e.slots[top.slot].tm; tm != nil {
		e.now = top.at
		e.nRun++
		tm.fired = true
		tm.fn()
		if tm.slot == top.slot && tm.fired {
			// Neither Reset (clears fired; may recycle the same slot) nor
			// Stop (clears slot) ran in the callback: retire the entry. The
			// back-pointer finds it even if other heap traffic moved the key.
			e.remove(int(e.slots[top.slot].heap))
		}
		return true
	}
	at, sl := e.pop()
	e.now = at
	e.nRun++
	if sl.h != nil {
		sl.h.OnEvent(e, sl.arg)
	} else {
		sl.fn()
	}
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		at, ok := e.NextEventTime()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for d virtual nanoseconds from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event. Further Step calls return
// false until Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a Stop so the engine can run again.
func (e *Engine) Resume() { e.stopped = false }

// ScheduleRemote schedules h.OnEvent(dst, arg) at absolute time at on dst,
// which may be a different logical process of the same Parallel run. Calls
// targeting the local engine degrade to ScheduleHandler; cross-LP messages
// are appended to a single-producer outbox of the window's write parity and
// merged into dst's slab by dst's own worker at the start of the next window
// in a fixed (time, source LP, send order) total order, so results are
// independent of how many workers drive the run.
//
// The first message to a destination this window also records it in the
// parity's dirty list, which is what the coordinator transposes into
// per-destination merge work — no LP ever scans another LP's empty boxes.
//
// Conservative synchronization requires at to lie at or beyond the end of
// the current window; the network layer guarantees this by construction,
// since every cross-LP link's propagation delay is at least the lookahead.
func (e *Engine) ScheduleRemote(dst *Engine, at Time, h Handler, arg any) {
	if dst == e {
		e.ScheduleHandler(at, h, arg)
		return
	}
	if e.par == nil || dst.par != e.par {
		panic("sim: ScheduleRemote across engines that do not share a Parallel run")
	}
	if e.out[0] == nil {
		panic("sim: ScheduleRemote before Parallel.Finalize")
	}
	wp := e.par.wp
	d := dst.lp
	box := e.out[wp][d]
	if len(box) == 0 {
		e.dirty[wp] = append(e.dirty[wp], d)
	}
	if at < e.outMin[wp] {
		e.outMin[wp] = at
	}
	e.out[wp][d] = append(box, crossMsg{at: at, h: h, arg: arg})
}

// injectSlab hands this engine one window barrier's worth of inbound cross-LP
// messages, already sorted by the coordinator's canonical (timestamp, source
// LP, send order) rule. Each message takes the next local sequence number in
// that order — exactly the numbering the heap-insertion drain used to assign
// — and the batch is merged with any not-yet-consumed slab remainder.
//
// The merge only compares timestamps: every remainder entry survived at least
// one full window (runWindow consumed everything earlier), so its timestamp
// is at or beyond the window end that every new message's timestamp is also
// bounded below by, and its sequence number is older. Taking remainder
// entries first on timestamp ties is therefore (at, seq) order.
func (e *Engine) injectSlab(msgs []crossMsg) {
	for i := range msgs {
		e.seq++
		msgs[i].seq = e.seq
	}
	rem := e.slab[e.slabIdx:]
	if len(rem) == 0 {
		e.slab = append(e.slab[:0], msgs...)
		e.slabIdx = 0
		return
	}
	merged := e.slabScratch[:0]
	i, j := 0, 0
	for i < len(rem) && j < len(msgs) {
		if rem[i].at <= msgs[j].at {
			merged = append(merged, rem[i])
			i++
		} else {
			merged = append(merged, msgs[j])
			j++
		}
	}
	merged = append(merged, rem[i:]...)
	merged = append(merged, msgs[j:]...)
	for k := range rem {
		rem[k] = crossMsg{} // old backing array: drop refs for the GC
	}
	e.slabScratch = e.slab[:0]
	e.slab = merged
	e.slabIdx = 0
}

// runWindow executes every pending event with timestamp strictly before end,
// leaving the clock at the last executed event. It is the per-LP body of one
// lookahead window of a Parallel run.
func (e *Engine) runWindow(end Time) {
	for !e.stopped {
		at, ok := e.NextEventTime()
		if !ok || at >= end {
			return
		}
		e.Step()
	}
}
