// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock in nanoseconds and executes scheduled
// callbacks in timestamp order. Events scheduled at the same instant run in
// the order they were scheduled, which keeps runs bit-for-bit reproducible
// for a given seed. Everything above it — links, switches, RNICs, the Cepheus
// accelerator — is built as callbacks on this engine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point on the virtual clock, in nanoseconds since simulation start.
type Time int64

// Convenient duration units, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 2*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 2*Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 2*Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Engine is a single-threaded discrete-event scheduler with a seeded RNG.
// The zero value is not usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
	nRun    uint64
}

// New returns an engine whose RNG is seeded with seed. Two engines built with
// the same seed and driven by the same code execute identical schedules.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsRun reports how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.nRun }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn at absolute time at. It panics if at precedes Now, since a
// causal model can never schedule into the past.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// After runs fn d nanoseconds from now. A negative d panics via Schedule.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
	fired   bool
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the callback from running.
func (t *Timer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Fired reports whether the callback has already run.
func (t *Timer) Fired() bool { return t.fired }

// AfterTimer schedules fn after d and returns a handle that can cancel it.
func (e *Engine) AfterTimer(d Time, fn func()) *Timer {
	t := &Timer{}
	e.After(d, func() {
		if t.stopped {
			return
		}
		t.fired = true
		fn()
	})
	return t
}

// Step executes the next pending event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.events.empty() || e.stopped {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nRun++
	ev.fn()
	return true
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	for !e.events.empty() && !e.stopped && e.events.peek().at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for d virtual nanoseconds from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Stop halts Run/RunUntil after the current event. Further Step calls return
// false until Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a Stop so the engine can run again.
func (e *Engine) Resume() { e.stopped = false }
