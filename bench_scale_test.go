package cepheus

// Large-scale simulation benchmarks (§V-C): Fig 12 (512-receiver multicast
// FCT), Fig 13 (loss tolerance), and Fig 14 (fairness and convergence).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/roce"
	"repro/internal/sim"
)

// benchScaleEvents measures the simulator's hot-path throughput — the
// events/sec and allocs/op budget every fat-tree sweep spends. One iteration
// is a 1MB Cepheus multicast to 64 receivers on a 128-host fat-tree (k=8)
// under DCQCN, so the workload exercises packet replication, feedback
// aggregation, pacing, and RTO/rate-timer churn together. workers <= 1 runs
// the sequential engine; >= 2 the lookahead-partitioned parallel executor.
func benchScaleEvents(b *testing.B, workers int) {
	var events uint64
	var virtual sim.Time
	start := time.Now()
	for i := 0; i < b.N; i++ {
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		c := NewFatTree(8, Options{Transport: &tr, Workers: workers})
		nodes := make([]int, 65)
		for j := range nodes {
			nodes[j] = j
		}
		br, err := c.Broadcaster(SchemeCepheus, nodes, 65)
		if err != nil {
			b.Fatal(err)
		}
		virtual += c.RunBcast(br, 0, 1<<20)
		events += c.EventsRun()
		c.Close()
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed, "events/s")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	_ = virtual
}

// BenchmarkScaleEvents is the sequential baseline every PR's perf numbers
// track.
func BenchmarkScaleEvents(b *testing.B) { benchScaleEvents(b, 1) }

// BenchmarkScaleEventsParallel sweeps the partitioned executor's worker
// counts on the same workload; the simulated results are byte-identical to
// the sequential run (TestSeqParDigestEquivalence), so the sweep isolates
// pure wall-clock scaling.
func BenchmarkScaleEventsParallel(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchScaleEvents(b, w) })
	}
}

// fatTreeJCT runs one broadcast over a group of the given size on the
// 1024-host fat-tree (k=16), with cell sizing for large flows and optional
// loss injection.
func fatTreeJCT(scheme Scheme, groupSize, size int, loss float64) (jctNs float64, c *Cluster) {
	return fatTreeJCTCells(scheme, groupSize, size, loss, 2048)
}

// fatTreeJCTCells exposes the cell budget: loss experiments use finer
// cells (higher maxPackets) so per-loss go-back-N recovery cost stays
// realistic (see DESIGN.md §1).
func fatTreeJCTCells(scheme Scheme, groupSize, size int, loss float64, maxPackets int) (jctNs float64, c *Cluster) {
	tr := roce.DefaultConfig()
	tr.DCQCN = true // the paper's ns-3 setup runs go-back-N + DCQCN
	exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, maxPackets)
	if loss > 0 {
		// Keep per-byte loss equivalent when cells are larger than the
		// reference 1KB MTU (DESIGN.md §1).
		loss *= float64(tr.MTU) / 1024.0
	}
	c = NewFatTree(16, Options{Transport: &tr})
	nodes := make([]int, groupSize)
	for i := range nodes {
		nodes[i] = i
	}
	// Chain slices follow the paper's "equal to the number of hosts"
	// configuration, which is what keeps Chain within ~2x on large flows.
	b, err := c.Broadcaster(scheme, nodes, groupSize)
	if err != nil {
		panic(err)
	}
	c.SetLossRate(loss)
	return float64(c.RunBcast(b, 0, size)), c
}

// BenchmarkFig12LargeScale regenerates the 512-scale multicast FCT sweep:
// Cepheus up to 164x/4.5x faster than Chain/BT on short flows, 2.1x/8.9x
// on large flows.
func BenchmarkFig12LargeScale(b *testing.B) {
	const group = 513 // sender + 512 receivers
	sizes := []int{64, 64 << 10, 16 << 20}
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Fig 12: FCT of a 512-scale multicast (1024-host fat-tree)",
			"size", "cepheus", "chain", "bt", "vs chain", "vs bt")
		for _, size := range sizes {
			ceph, _ := fatTreeJCT(SchemeCepheus, group, size, 0)
			chain, _ := fatTreeJCT(SchemeChain, group, size, 0)
			bt, _ := fatTreeJCT(SchemeBinomial, group, size, 0)
			t.Add(exp.FormatBytes(size),
				sim.Time(ceph).String(), sim.Time(chain).String(), sim.Time(bt).String(),
				fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
			if chain <= ceph {
				b.Errorf("size %d: chain (%v) not slower than cepheus (%v)",
					size, sim.Time(chain), sim.Time(ceph))
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

// BenchmarkFig13LossTolerance regenerates the loss sweep: FCT and
// normalized throughput of a 128MB multicast under packet loss rates
// 1e-6..1e-4, at group scales 64 and 512, Cepheus vs Chain. The paper's
// crossover — Cepheus falling behind Chain at scale 512 and loss 1e-4 —
// comes from the multicast sender retransmitting for every receiver.
func BenchmarkFig13LossTolerance(b *testing.B) {
	const size = 128 << 20
	// The 512-scale chain runs are expensive; sweep the full loss range at
	// scale 64 and probe the paper's crossover point at scale 512.
	lossesFor := map[int][]float64{
		64:  {0, 1e-6, 1e-5, 1e-4},
		512: {0, 1e-4},
	}
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Fig 13: 128MB multicast under loss",
			"scale/loss", "cepheus FCT", "chain FCT", "ceph norm tput", "chain norm tput")
		for _, scale := range []int{64, 512} {
			var cephBase, chainBase float64
			for _, loss := range lossesFor[scale] {
				ceph, cc := fatTreeJCTCells(SchemeCepheus, scale+1, size, loss, 8192)
				chain, _ := fatTreeJCTCells(SchemeChain, scale+1, size, loss, 8192)
				if loss == 0 {
					cephBase, chainBase = ceph, chain
				} else if cc.TotalDrops() == 0 {
					b.Logf("scale %d loss %g: injector never fired", scale, loss)
				}
				t.Add(fmt.Sprintf("%d/%.0e", scale, loss),
					sim.Time(ceph).String(), sim.Time(chain).String(),
					fmt.Sprintf("%.2f", cephBase/ceph), fmt.Sprintf("%.2f", chainBase/chain))
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

// BenchmarkFig14Fairness regenerates the fairness/convergence experiment:
// a 1-to-15 Cepheus multicast (f1) sharing bottlenecks with sequenced
// unicasts f2 and f3 under DCQCN. Asserts fair sharing while f2 is active
// and re-convergence with f3 after f2 leaves.
func BenchmarkFig14Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		tr.MTU = 4096
		c := NewFatTree(4, Options{Transport: &tr}) // 16 hosts
		members := make([]int, 16)
		for j := range members {
			members[j] = j
		}
		g, err := c.NewGroup(members, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range g.Members[1:] {
			m.QP.OnMessage = func(roce.Message) {}
		}
		f1 := g.Members[0].QP
		mk := func(src, dst int) (*roce.QP, *roce.QP) {
			sq := c.RNICs[src].CreateQP()
			rq := c.RNICs[dst].CreateQP()
			sq.Connect(c.Host(dst).IP, rq.QPN)
			rq.Connect(c.Host(src).IP, sq.QPN)
			return sq, rq
		}
		f2, f2r := mk(1, 2)
		f3, f3r := mk(3, 4)
		stream := func(qp *roce.QP, stop *bool) {
			var post func()
			post = func() {
				if !*stop {
					qp.PostSend(1<<20, post)
				}
			}
			post()
		}
		var stop1, stop2, stop3 bool
		eng := c.Eng
		stream(f1, &stop1)
		eng.Schedule(5*sim.Millisecond, func() { stream(f2, &stop2) })
		eng.Schedule(20*sim.Millisecond, func() { stop2 = true })
		eng.Schedule(25*sim.Millisecond, func() { stream(f3, &stop3) })

		// Sample the representative multicast receiver (host 2 shares its
		// downlink with f2's receiver; host 4 with f3's).
		f1probe := g.Members[1].QP
		gbps := func(cur, prev uint64, ms float64) float64 {
			return float64(cur-prev) * 8 / (ms * 1e6)
		}
		var p1, p2, p3 uint64
		series := exp.NewTable("Fig 14: throughput dynamics (Gbps per 5ms window)",
			"t(ms)", "f1 mcast", "f2 unicast", "f3 unicast")
		var f1Share2, f2Share, f1Share3, f3Share float64
		for tWin := 5 * sim.Millisecond; tWin <= 40*sim.Millisecond; tWin += 5 * sim.Millisecond {
			eng.RunUntil(tWin)
			w1 := gbps(f1probe.GoodputBytes, p1, 5)
			w2 := gbps(f2r.GoodputBytes, p2, 5)
			w3 := gbps(f3r.GoodputBytes, p3, 5)
			p1, p2, p3 = f1probe.GoodputBytes, f2r.GoodputBytes, f3r.GoodputBytes
			series.Add(fmt.Sprint(tWin/sim.Millisecond),
				fmt.Sprintf("%.1f", w1), fmt.Sprintf("%.1f", w2), fmt.Sprintf("%.1f", w3))
			if tWin == 20*sim.Millisecond {
				f1Share2, f2Share = w1, w2
			}
			if tWin == 40*sim.Millisecond {
				f1Share3, f3Share = w1, w3
			}
		}
		stop1, stop3 = true, true
		if i == 0 {
			fmt.Print(series)
		}
		// Fairness assertions: both contention periods end near a fair
		// split (each flow within 2x of the other).
		check := func(phase string, a, bw float64) {
			if a < 20 || bw < 20 {
				b.Errorf("%s: shares %.1f/%.1f Gbps — a flow starved", phase, a, bw)
			} else if r := a / bw; r < 0.33 || r > 3 {
				b.Errorf("%s: unfair split %.1f vs %.1f Gbps", phase, a, bw)
			}
		}
		check("f1 vs f2 (t=20ms)", f1Share2, f2Share)
		check("f1 vs f3 (t=40ms)", f1Share3, f3Share)
		b.ReportMetric(f1Share2, "f1GbpsVsF2")
		b.ReportMetric(f1Share3, "f1GbpsVsF3")
	}
}
