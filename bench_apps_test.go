package cepheus

// Application benchmarks (§V-B): Table I (replication IOPS), Fig 10
// (single IO latency), Fig 11 (HPL), and the supplementary large-scale HPL
// model.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/hpl"
	"repro/internal/sim"
	"repro/internal/storage"
)

func newStorage(mode storage.Mode) *storage.Cluster {
	core.ResetMcstIDs()
	return storage.NewCluster(sim.New(1), mode, storage.DefaultConfig())
}

// BenchmarkTable1ReplicationIOPS regenerates Table I: 8KB replication
// writing throughput for 1-unicast, 3-unicasts and Cepheus.
func BenchmarkTable1ReplicationIOPS(b *testing.B) {
	paper := map[storage.Mode]string{
		storage.Unicast1: "1.188", storage.UnicastN: "0.413", storage.CepheusWrite: "1.167",
	}
	var ceph, u3 float64
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Table I: replication writing throughput, 8KB IOs",
			"scheme", "IOPS(M)", "paper(M)")
		for _, mode := range []storage.Mode{storage.Unicast1, storage.UnicastN, storage.CepheusWrite} {
			c := newStorage(mode)
			rate := c.RunIOPS(8<<10, 64, 20*sim.Millisecond)
			t.Add(mode.String(), fmt.Sprintf("%.3f", rate/1e6), paper[mode])
			switch mode {
			case storage.UnicastN:
				u3 = rate
			case storage.CepheusWrite:
				ceph = rate
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
	b.ReportMetric(ceph/u3, "x-vs-3unicasts")
	if ceph/u3 < 2 {
		b.Errorf("cepheus only %.2fx of 3-unicasts; paper reports 2.7x", ceph/u3)
	}
}

// BenchmarkFig10IOLatency regenerates the single-IO latency sweep.
func BenchmarkFig10IOLatency(b *testing.B) {
	sizes := []int{4 << 10, 8 << 10, 64 << 10, 256 << 10, 512 << 10}
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Fig 10: single IO latency",
			"IO size", "1-unicast", "3-unicasts", "cepheus", "cepheus vs 3-unicasts")
		for _, size := range sizes {
			u1 := newStorage(storage.Unicast1).MeasureLatency(size, 10)
			u3 := newStorage(storage.UnicastN).MeasureLatency(size, 10)
			ceph := newStorage(storage.CepheusWrite).MeasureLatency(size, 10)
			t.Add(exp.FormatBytes(size), u1.String(), u3.String(), ceph.String(),
				fmt.Sprintf("-%.0f%%", 100*(1-float64(ceph)/float64(u3))))
			if ceph >= u3 {
				b.Errorf("%s: cepheus latency %v not below 3-unicasts %v",
					exp.FormatBytes(size), ceph, u3)
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

func runHPL(p, q int, pb, rs hpl.Alg) hpl.Result {
	core.ResetMcstIDs()
	eng := sim.New(1)
	return hpl.NewTestbedCluster(eng, hpl.DefaultTestbedConfig(p, q), pb, rs).Run()
}

// BenchmarkFig11HPLJCT regenerates the end-to-end HPL JCT bars (Fig 11a).
func BenchmarkFig11HPLJCT(b *testing.B) {
	var pbGain float64
	for i := 0; i < b.N; i++ {
		basePB := runHPL(1, 4, hpl.AlgRing, hpl.AlgLong)
		accelPB := runHPL(1, 4, hpl.AlgCepheus, hpl.AlgLong)
		baseRS := runHPL(4, 1, hpl.AlgRing, hpl.AlgLong)
		accelRS := runHPL(4, 1, hpl.AlgRing, hpl.AlgCepheus)
		pbGain = 1 - float64(accelPB.JCT)/float64(basePB.JCT)
		if i == 0 {
			t := exp.NewTable("Fig 11a: HPL JCT", "setting", "JCT", "comm", "others", "reduction")
			t.Add("PB/baseline", basePB.JCT.String(), basePB.Comm().String(), basePB.Others().String(), "-")
			t.Add("PB/cepheus", accelPB.JCT.String(), accelPB.Comm().String(), accelPB.Others().String(),
				fmt.Sprintf("-%.1f%% (paper 12%%)", pbGain*100))
			t.Add("RS/baseline", baseRS.JCT.String(), baseRS.Comm().String(), baseRS.Others().String(), "-")
			t.Add("RS/cepheus", accelRS.JCT.String(), accelRS.Comm().String(), accelRS.Others().String(),
				fmt.Sprintf("-%.1f%% (paper 4%%)", 100*(1-float64(accelRS.JCT)/float64(baseRS.JCT))))
			fmt.Print(t)
		}
	}
	b.ReportMetric(pbGain*100, "%JCT-reduction")
}

// BenchmarkFig11HPLComm regenerates the communication-only bars (Fig 11b).
func BenchmarkFig11HPLComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		basePB := runHPL(1, 4, hpl.AlgRing, hpl.AlgLong)
		accelPB := runHPL(1, 4, hpl.AlgCepheus, hpl.AlgLong)
		baseRS := runHPL(4, 1, hpl.AlgRing, hpl.AlgLong)
		accelRS := runHPL(4, 1, hpl.AlgRing, hpl.AlgCepheus)
		if i == 0 {
			t := exp.NewTable("Fig 11b: HPL communication time",
				"phase", "baseline", "cepheus", "reduction", "paper")
			t.Add("PB", basePB.PB.String(), accelPB.PB.String(),
				fmt.Sprintf("-%.0f%%", 100*(1-float64(accelPB.PB)/float64(basePB.PB))), "-67%")
			t.Add("RS", baseRS.RS.String(), accelRS.RS.String(),
				fmt.Sprintf("-%.0f%%", 100*(1-float64(accelRS.RS)/float64(baseRS.RS))), "-18%")
			fmt.Print(t)
		}
	}
}

// BenchmarkHPLLargeScale regenerates the supplementary large-grid HPL
// simulation with the analytic model (§V-B2: "up to 128*128 nodes ...
// consistent performance").
func BenchmarkHPLLargeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Large-scale HPL (analytic)", "grid", "baseline(s)", "cepheus(s)", "gain")
		for _, g := range []int{8, 32, 128} {
			cfg := hpl.Config{N: 65536, NB: 256, P: g, Q: g, GFlops: 800}
			base := hpl.Analytic(cfg, hpl.RingModel, hpl.LongModel)
			acc := hpl.Analytic(cfg, hpl.CepheusModel, hpl.CepheusModel)
			t.Add(fmt.Sprintf("%dx%d", g, g),
				fmt.Sprintf("%.2f", base.JCTSeconds), fmt.Sprintf("%.2f", acc.JCTSeconds),
				fmt.Sprintf("-%.1f%%", 100*(1-acc.JCTSeconds/base.JCTSeconds)))
			if acc.JCTSeconds >= base.JCTSeconds {
				b.Errorf("grid %d: no gain at scale", g)
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}
