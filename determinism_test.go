package cepheus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
)

// The engine's contract is bit-for-bit determinism: the same seed must yield
// the same schedule, and scheduler refactors must not perturb simulated
// results. Two guards enforce it: same-seed runs must be identical in every
// observable (including EventsRun), and the hardcoded golden digests below —
// captured before the allocation-free scheduler rewrite — must keep
// reproducing, proving the rewrite changed no simulated outcome.

// simDigest summarizes one seeded workload for comparison.
type simDigest struct {
	jct     sim.Time
	events  uint64
	metrics string
	retrans uint64
}

func (d simDigest) String() string {
	return "jct=" + sim.Time(d.jct).String() + " metrics=" + d.metrics
}

// testbedWorkload is a 4-node testbed broadcasting 256KB losslessly — the
// clean path: registration, replication, aggregation, no recovery machinery.
func testbedWorkload(t *testing.T) simDigest {
	t.Helper()
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{})
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return simDigest{jct: jct, events: c.Eng.EventsRun(), metrics: c.Metrics().String()}
}

// fatTreeLossWorkload is a 16-host fat-tree under DCQCN with 1e-3 injected
// loss on a 1MB broadcast — the dirty path: every RNG consumer (ECN marking,
// loss injection) and the go-back-N recovery machinery in one digest.
func fatTreeLossWorkload(t *testing.T) simDigest {
	t.Helper()
	core.ResetMcstIDs()
	tr := roce.DefaultConfig()
	tr.DCQCN = true
	c := NewFatTree(4, Options{Transport: &tr})
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLossRate(1e-3)
	jct, err := c.RunBcastErr(b, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d := simDigest{jct: jct, events: c.Eng.EventsRun(), metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d
}

// TestDeterminismSameSeedTwice runs both workloads twice and demands every
// observable match, event counts included.
func TestDeterminismSameSeedTwice(t *testing.T) {
	for name, run := range map[string]func(*testing.T) simDigest{
		"testbed": testbedWorkload,
		"fattree": fatTreeLossWorkload,
	} {
		a, b := run(t), run(t)
		if a != b {
			t.Errorf("%s: same-seed runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
		}
	}
}

// seqParWorkload runs one 256KB Cepheus broadcast over 16 members spread
// across the 128-host (k=8) fat-tree, with the given worker count (<=1 =
// the sequential engine, >=2 = the partitioned parallel path), and returns
// the digest plus the run's event count.
//
// The workload is lossless, so neither mode consumes engine randomness
// (loss injection and ECN marking are the only RNG draws on this path) —
// the precondition for sequential and partitioned runs to be comparable at
// all, since the partitioned mode gives every LP its own RNG stream. Both
// modes settle the fabric to idle before posting and again before reading
// counters, so the digest is insensitive to where exactly each mode's
// drive loop stops stepping.
func seqParWorkload(t *testing.T, seed int64, workers int) (simDigest, uint64) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers})
	defer c.Close()
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	settle := func(d sim.Time) {
		if c.Par != nil {
			c.Par.RunUntil(c.Par.Now() + d)
		} else {
			c.Eng.RunUntil(c.Eng.Now() + d)
		}
	}
	settle(10 * sim.Millisecond) // drain registration residue
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	settle(1 * sim.Millisecond) // let trailing ACK/feedback traffic land
	d := simDigest{jct: jct, metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d, c.EventsRun()
}

// TestSeqParDigestEquivalence is the acceptance gate for the partitioned
// executor: on the same seed, Workers=1 and Workers∈{2,4,8} must produce
// identical simulated outcomes (JCT, metrics, retransmissions), and the
// parallel runs must additionally match each other in executed event count.
// Event counts are not compared between sequential and parallel modes: the
// drive loops stop at different points (a Step loop halts mid-window,
// window barriers do not), so the modes run different amounts of
// *post-completion* traffic while agreeing on every result.
func TestSeqParDigestEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ref, _ := seqParWorkload(t, seed, 1)
		var parEvents uint64
		for _, w := range []int{2, 4, 8} {
			d, ev := seqParWorkload(t, seed, w)
			if d != ref {
				t.Errorf("seed %d workers %d: digest diverged from sequential:\n  seq: %+v\n  par: %+v", seed, w, ref, d)
			}
			if parEvents == 0 {
				parEvents = ev
			} else if ev != parEvents {
				t.Errorf("seed %d workers %d: event count %d differs from other parallel runs (%d)", seed, w, ev, parEvents)
			}
		}
	}
}

// TestGoldenDigests pins the simulated outcomes to values captured before the
// allocation-free scheduler rewrite. JCT, drop counters, and retransmission
// counts must reproduce exactly; EventsRun is not pinned across refactors
// (cancelled timers no longer execute as no-op events).
func TestGoldenDigests(t *testing.T) {
	if a := testbedWorkload(t); a.jct != 26316 || a.metrics != "clean" {
		t.Errorf("testbed digest drifted: got %v, want jct=26316ns metrics=clean", a)
	}
	b := fatTreeLossWorkload(t)
	if b.jct != 3449620 || b.metrics != "dataDrops=46" || b.retrans != 4017 {
		t.Errorf("fat-tree digest drifted: got %v retrans=%d, want jct=3.450ms metrics=dataDrops=46 retrans=4017",
			b, b.retrans)
	}
}
