package cepheus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/roce"
	"repro/internal/sim"
)

// The engine's contract is bit-for-bit determinism: the same seed must yield
// the same schedule, and scheduler refactors must not perturb simulated
// results. Two guards enforce it: same-seed runs must be identical in every
// observable (including EventsRun), and the hardcoded golden digests below —
// captured before the allocation-free scheduler rewrite — must keep
// reproducing, proving the rewrite changed no simulated outcome.

// simDigest summarizes one seeded workload for comparison.
type simDigest struct {
	jct     sim.Time
	events  uint64
	metrics string
	retrans uint64
}

func (d simDigest) String() string {
	return "jct=" + sim.Time(d.jct).String() + " metrics=" + d.metrics
}

// testbedWorkload is a 4-node testbed broadcasting 256KB losslessly — the
// clean path: registration, replication, aggregation, no recovery machinery.
func testbedWorkload(t *testing.T) simDigest {
	t.Helper()
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{})
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	return simDigest{jct: jct, events: c.Eng.EventsRun(), metrics: c.Metrics().String()}
}

// fatTreeLossWorkload is a 16-host fat-tree under DCQCN with 1e-3 injected
// loss on a 1MB broadcast — the dirty path: every RNG consumer (ECN marking,
// loss injection) and the go-back-N recovery machinery in one digest.
func fatTreeLossWorkload(t *testing.T) simDigest {
	t.Helper()
	core.ResetMcstIDs()
	tr := roce.DefaultConfig()
	tr.DCQCN = true
	c := NewFatTree(4, Options{Transport: &tr})
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLossRate(1e-3)
	jct, err := c.RunBcastErr(b, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d := simDigest{jct: jct, events: c.Eng.EventsRun(), metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d
}

// TestDeterminismSameSeedTwice runs both workloads twice and demands every
// observable match, event counts included.
func TestDeterminismSameSeedTwice(t *testing.T) {
	for name, run := range map[string]func(*testing.T) simDigest{
		"testbed": testbedWorkload,
		"fattree": fatTreeLossWorkload,
	} {
		a, b := run(t), run(t)
		if a != b {
			t.Errorf("%s: same-seed runs diverged:\n  first:  %+v\n  second: %+v", name, a, b)
		}
	}
}

// TestGoldenDigests pins the simulated outcomes to values captured before the
// allocation-free scheduler rewrite. JCT, drop counters, and retransmission
// counts must reproduce exactly; EventsRun is not pinned across refactors
// (cancelled timers no longer execute as no-op events).
func TestGoldenDigests(t *testing.T) {
	if a := testbedWorkload(t); a.jct != 26316 || a.metrics != "clean" {
		t.Errorf("testbed digest drifted: got %v, want jct=26316ns metrics=clean", a)
	}
	b := fatTreeLossWorkload(t)
	if b.jct != 3449620 || b.metrics != "dataDrops=46" || b.retrans != 4017 {
		t.Errorf("fat-tree digest drifted: got %v retrans=%d, want jct=3.450ms metrics=dataDrops=46 retrans=4017",
			b, b.retrans)
	}
}
