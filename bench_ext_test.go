package cepheus

// Benchmarks for the implemented extensions: IRN loss tolerance (the §V-C
// recommendation), the many-to-one reduction (the paper's named future
// work), and the parameter-server training loop from the introduction's
// motivation.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ps"
	"repro/internal/roce"
	"repro/internal/sim"
)

// BenchmarkIRNLossTolerance extends Fig 13: the same 128MB multicast at
// group 64 under loss, go-back-N vs IRN endpoints. The paper: "the
// recently-proposed IRN can substantially enhance Cepheus' tolerance to
// higher loss rates."
func BenchmarkIRNLossTolerance(b *testing.B) {
	const size = 128 << 20
	const group = 65
	run := func(irn bool, loss float64) float64 {
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		tr.IRN = irn
		exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, 2048)
		lossCell := loss * float64(tr.MTU) / 1024.0
		c := NewFatTree(16, Options{Transport: &tr})
		nodes := make([]int, group)
		for i := range nodes {
			nodes[i] = i
		}
		br, err := c.Broadcaster(SchemeCepheus, nodes, 0)
		if err != nil {
			b.Fatal(err)
		}
		c.SetLossRate(lossCell)
		return float64(c.RunBcast(br, 0, size))
	}
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Extension: IRN vs go-back-N under loss (128MB, 64 receivers)",
			"loss", "GBN FCT", "IRN FCT", "GBN norm", "IRN norm")
		var gbnBase, irnBase float64
		for _, loss := range []float64{0, 1e-5, 1e-4} {
			gbn := run(false, loss)
			irn := run(true, loss)
			if loss == 0 {
				gbnBase, irnBase = gbn, irn
			}
			t.Add(fmt.Sprintf("%.0e", loss),
				sim.Time(gbn).String(), sim.Time(irn).String(),
				fmt.Sprintf("%.2f", gbnBase/gbn), fmt.Sprintf("%.2f", irnBase/irn))
			// IRN's benefit shows at moderate loss, where selective repair
			// keeps throughput near lossless while go-back-N collapses; at
			// 1e-4 both are limited by the serialized in-network NACK
			// repairs, so no ordering is asserted there.
			if loss == 1e-5 && irn >= gbn {
				b.Errorf("IRN (%v) not faster than GBN (%v) at 1e-5", sim.Time(irn), sim.Time(gbn))
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

// BenchmarkReduceExtension measures the many-to-one primitive: in-network
// aggregation vs gather and binomial software reduction, across
// contribution sizes.
func BenchmarkReduceExtension(b *testing.B) {
	const n = 8
	runCepheus := func(size int) sim.Time {
		core.ResetMcstIDs()
		c := NewTestbed(n, Options{})
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		g, err := c.NewGroup(nodes, 0)
		if err != nil {
			b.Fatal(err)
		}
		r := &amcast.CepheusReduce{Group: g}
		// Orient once, then measure steady state.
		primeDone := false
		r.Prime(0, func() { primeDone = true })
		for !primeDone {
			c.Eng.Step()
		}
		return runReducer(b, c, r, size, n)
	}
	runBaseline := func(mk func(*amcast.Comm) amcast.Reducer, size int) sim.Time {
		core.ResetMcstIDs()
		c := NewTestbed(n, Options{})
		ns := make([]*amcast.Node, n)
		for i := range ns {
			ns[i] = &amcast.Node{Host: c.Net.Hosts[i], RNIC: c.RNICs[i]}
		}
		return runReducer(b, c, mk(amcast.NewComm(c.Eng, ns)), size, n)
	}
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Extension: many-to-one reduction (8 nodes)",
			"size", "cepheus-reduce", "gather", "binomial-reduce")
		for _, size := range []int{8 << 10, 1 << 20, 16 << 20} {
			ceph := runCepheus(size)
			gather := runBaseline(func(c *amcast.Comm) amcast.Reducer { return amcast.GatherReduce{C: c} }, size)
			bino := runBaseline(func(c *amcast.Comm) amcast.Reducer { return amcast.BinomialReduce{C: c} }, size)
			t.Add(exp.FormatBytes(size), ceph.String(), gather.String(), bino.String())
			if size >= 1<<20 && ceph >= gather {
				b.Errorf("%s: in-network reduce (%v) not faster than gather (%v)",
					exp.FormatBytes(size), ceph, gather)
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

func runReducer(b *testing.B, c *Cluster, r amcast.Reducer, size, n int) sim.Time {
	start := c.Eng.Now()
	var end sim.Time = -1
	total := math.NaN()
	r.Reduce(0, size, func(rank int) float64 { return float64(rank + 1) }, func(v float64) {
		total = v
		end = c.Eng.Now()
	})
	for end < 0 {
		if !c.Eng.Step() || c.Eng.Now()-start > 30*sim.Second {
			b.Fatalf("%s reduce stalled", r.Name())
		}
	}
	if want := float64(n*(n+1)) / 2; total != want {
		b.Fatalf("%s computed %v, want %v", r.Name(), total, want)
	}
	return end - start
}

// BenchmarkPSTraining runs the parameter-server loop end to end: model
// multicast down, gradient reduction up, per iteration.
func BenchmarkPSTraining(b *testing.B) {
	run := func(scheme ps.Scheme) ps.Result {
		core.ResetMcstIDs()
		eng := sim.New(1)
		c := ps.NewTestbed(eng, ps.DefaultConfig(6), scheme)
		res := c.Run()
		for _, got := range res.GradSums {
			if got != c.ExpectedGradSum() {
				b.Fatalf("%s: wrong gradient aggregate %v", scheme, got)
			}
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		ceph := run(ps.SchemeCepheus)
		base := run(ps.SchemeAMcast)
		if i == 0 {
			t := exp.NewTable("Extension: PS training, 6 workers, 64MB model (per run of 4 iterations)",
				"scheme", "JCT", "bcast", "reduce", "compute")
			t.Add("cepheus", ceph.JCT.String(), ceph.Bcast.String(), ceph.Reduce.String(), ceph.Compute.String())
			t.Add("amcast", base.JCT.String(), base.Bcast.String(), base.Reduce.String(), base.Compute.String())
			fmt.Print(t)
		}
		b.ReportMetric(float64(base.JCT)/float64(ceph.JCT), "x-jct")
		if ceph.JCT >= base.JCT {
			b.Error("cepheus PS loop not faster than the AMcast baseline")
		}
	}
}
