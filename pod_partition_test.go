package cepheus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// The pod-level partition (Options.PodPartition / topo.PartitionPods) must
// preserve every equivalence the per-switch partition already guarantees:
// simulated results identical to the sequential engine, and the merged
// flight-recorder stream byte-identical across worker counts. These tests
// mirror TestSeqParDigestEquivalence / TestTraceSeqParEquivalence on the
// coarse partition.

// podWorkload is seqParWorkload on the pod partition: the same 16-member
// 256KB broadcast over the 128-host (k=8) fat-tree, with one LP per pod /
// core group instead of one per switch.
func podWorkload(t *testing.T, seed int64, workers int) (simDigest, uint64) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers, Partition: true, PodPartition: true})
	defer c.Close()
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Par.RunUntil(c.Par.Now() + 10*sim.Millisecond) // drain registration residue
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	c.Par.RunUntil(c.Par.Now() + 1*sim.Millisecond) // let trailing feedback land
	d := simDigest{jct: jct, metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d, c.EventsRun()
}

// TestPodPartitionDigestEquivalence: the pod partition must reproduce the
// sequential engine's simulated outcomes at every worker count, and all pod
// runs must execute the same event count.
func TestPodPartitionDigestEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ref, _ := seqParWorkload(t, seed, 1)
		var podEvents uint64
		for _, w := range []int{1, 2, 4, 8} {
			d, ev := podWorkload(t, seed, w)
			if d != ref {
				t.Errorf("seed %d workers %d: pod digest diverged from sequential:\n  seq: %+v\n  pod: %+v", seed, w, ref, d)
			}
			if podEvents == 0 {
				podEvents = ev
			} else if ev != podEvents {
				t.Errorf("seed %d workers %d: event count %d differs from other pod runs (%d)", seed, w, ev, podEvents)
			}
		}
	}
}

// podTraceWorkload is traceWorkload on the pod partition, with the protocol
// auditor attached: returns the canonical JSONL export cut at a fixed
// virtual horizon.
func podTraceWorkload(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers, Partition: true, PodPartition: true})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	c.EnableAudit()
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if len(evs) == 0 {
		t.Fatal("trace captured nothing")
	}
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	auditMustBeClean(t, c)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPodPartitionTraceEquivalence: the merged trace must be byte-identical
// from serial pod-partitioned execution through any worker count, and every
// run must audit clean.
func TestPodPartitionTraceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		ref := podTraceWorkload(t, seed, 1)
		for _, w := range []int{2, 4} {
			got := podTraceWorkload(t, seed, w)
			if !bytes.Equal(ref, got) {
				t.Errorf("seed %d: workers=%d pod trace diverges from serial pod run (%d vs %d bytes)", seed, w, len(got), len(ref))
			}
		}
	}
}
