package cepheus

// This file regenerates the paper's micro-benchmark tables and figures
// (Fig 1d, Fig 7b, Fig 8, Fig 9, and the RDMC comparison in §V-A). Each
// benchmark runs the full experiment once per b.N iteration and prints the
// same rows/series the paper reports on the first iteration. EXPERIMENTS.md
// records paper-vs-measured for all of them.

import (
	"fmt"
	"testing"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/roce"
)

// testbedJCT runs one broadcast on a fresh 4-host testbed and returns the
// JCT in nanoseconds.
func testbedJCT(scheme Scheme, size int, mtuCap int) float64 {
	tr := roce.DefaultConfig()
	if mtuCap > 0 {
		exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, mtuCap)
	}
	c := NewTestbed(4, Options{Transport: &tr})
	b, err := c.Broadcaster(scheme, []int{0, 1, 2, 3}, 4)
	if err != nil {
		panic(err)
	}
	return float64(c.RunBcast(b, 0, size))
}

// BenchmarkFig1dAnalysis regenerates the Fig 1d comparison table for the
// 1-to-4 multicast.
func BenchmarkFig1dAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := amcast.AnalyzeFig1d(4, 2)
		if i == 0 {
			t := exp.NewTable("Fig 1d: 1-to-4 multicast analysis",
				"scheme", "total hops", "sender copies", "stack traversals", "steps")
			for _, r := range rows {
				t.Add(r.Scheme, fmt.Sprint(r.TotalHops), fmt.Sprint(r.SenderCopies),
					fmt.Sprint(r.StackTraversals), fmt.Sprint(r.Steps))
			}
			fmt.Print(t)
		}
	}
}

// BenchmarkFig7bMFTMemory regenerates the switch-resource accounting: MFT
// memory per group and for the paper's 1K-group bound on a 64-port switch.
func BenchmarkFig7bMFTMemory(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		per := core.MaxMemoryBytes(64)
		total = 1000 * per
		if i == 0 {
			t := exp.NewTable("Fig 7b: MFT memory model (BRAM-resident state)",
				"quantity", "bytes")
			t.Add("one group, 64-port switch (worst case)", fmt.Sprint(per))
			t.Add("1K groups per switch", fmt.Sprint(total))
			t.Add("paper's bound", "~690000 (0.69MB)")
			fmt.Print(t)
		}
	}
	b.ReportMetric(float64(total)/1e6, "MB/1Kgroups")
	if total > 750000 {
		b.Fatalf("1K groups cost %dB, far above the paper's 0.69MB", total)
	}
}

// BenchmarkFig8SmallMessages regenerates the testbed MPI-Bcast JCT for
// small messages: Cepheus vs Chain (3~5.2x) and BT (2.5~3.5x).
func BenchmarkFig8SmallMessages(b *testing.B) {
	sizes := []int{64, 512, 4 << 10, 64 << 10}
	var lastSpeedup float64
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Fig 8: MPI-Bcast JCT, small messages (4-node testbed)",
			"size", "cepheus(us)", "chain(us)", "bt(us)", "vs chain", "vs bt")
		for _, size := range sizes {
			ceph := testbedJCT(SchemeCepheus, size, 0)
			chain := testbedJCT(SchemeChain, size, 0)
			bt := testbedJCT(SchemeBinomial, size, 0)
			t.Add(exp.FormatBytes(size),
				fmt.Sprintf("%.2f", ceph/1e3), fmt.Sprintf("%.2f", chain/1e3),
				fmt.Sprintf("%.2f", bt/1e3),
				fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
			lastSpeedup = chain / ceph
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
	b.ReportMetric(lastSpeedup, "x-vs-chain")
}

// BenchmarkFig9LargeMessages regenerates the testbed MPI-Bcast JCT for
// large messages: Cepheus vs Chain (1.3~2.8x) and BT (2~2.8x).
func BenchmarkFig9LargeMessages(b *testing.B) {
	sizes := []int{1 << 20, 16 << 20, 128 << 20, 512 << 20}
	var lastSpeedup float64
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Fig 9: MPI-Bcast JCT, large messages (4-node testbed)",
			"size", "cepheus(ms)", "chain(ms)", "bt(ms)", "vs chain", "vs bt")
		for _, size := range sizes {
			ceph := testbedJCT(SchemeCepheus, size, 4096)
			chain := testbedJCT(SchemeChain, size, 4096)
			bt := testbedJCT(SchemeBinomial, size, 4096)
			t.Add(exp.FormatBytes(size),
				fmt.Sprintf("%.2f", ceph/1e6), fmt.Sprintf("%.2f", chain/1e6),
				fmt.Sprintf("%.2f", bt/1e6),
				fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
			lastSpeedup = chain / ceph
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
	b.ReportMetric(lastSpeedup, "x-vs-chain")
}

// BenchmarkRDMCComparison regenerates §V-A's RDMC comparison: a 256MB
// multicast, Cepheus 24.4ms vs RDMC ~35ms on the paper's testbed.
func BenchmarkRDMCComparison(b *testing.B) {
	const size = 256 << 20
	var ceph, rdmc float64
	for i := 0; i < b.N; i++ {
		ceph = testbedJCT(SchemeCepheus, size, 4096)
		rdmc = testbedJCT(SchemeRDMC, size, 4096)
		if i == 0 {
			t := exp.NewTable("§V-A: 256MB multicast vs RDMC",
				"scheme", "JCT(ms)", "paper(ms)")
			t.Add("cepheus", fmt.Sprintf("%.1f", ceph/1e6), "24.4")
			t.Add("rdmc", fmt.Sprintf("%.1f", rdmc/1e6), "~35")
			fmt.Print(t)
		}
	}
	b.ReportMetric(rdmc/ceph, "x-vs-rdmc")
	if ceph >= rdmc {
		b.Errorf("Cepheus (%.1fms) did not beat RDMC (%.1fms)", ceph/1e6, rdmc/1e6)
	}
}

// BenchmarkSafeguardFallback exercises §V-D: registration failure trips the
// safeguard, and the multicast falls back to an AMcast broadcaster that
// still delivers.
func BenchmarkSafeguardFallback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.ResetMcstIDs()
		acc := core.DefaultAccelConfig()
		acc.MaxGroups = 1 // the second group must be rejected
		c := NewTestbed(4, Options{Accel: &acc})
		if _, err := c.NewGroup([]int{0, 1, 2, 3}, 0); err != nil {
			b.Fatalf("first group: %v", err)
		}
		_, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
		if err == nil {
			b.Fatal("second group should be rejected")
		}
		// Fallback: the default AMcast approach takes over.
		fb, _ := c.Broadcaster(SchemeChain, []int{0, 1, 2, 3}, 4)
		jct := c.RunBcast(fb, 0, 1<<20)
		if i == 0 {
			fmt.Printf("== §V-D safeguard fallback ==\nregistration rejected (%v)\nfallback %s delivered 1MB in %v\n",
				err, fb.Name(), jct)
		}
	}
}
