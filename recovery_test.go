package cepheus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// fastRecovery makes the detect/repair cycle quick enough for short tests.
func fastRecovery() RecoveryOptions {
	return RecoveryOptions{
		Window:            500 * sim.Microsecond,
		Deadline:          50 * sim.Millisecond,
		ReprobeInterval:   2 * sim.Millisecond,
		RestoreHysteresis: 2,
	}
}

// runRBcast drives the engine until the resilient broadcast completes.
func runRBcast(t *testing.T, c *Cluster, rg *ResilientGroup, root, size int) sim.Time {
	t.Helper()
	start := c.Eng.Now()
	done := false
	rg.Bcast(root, size, func() { done = true })
	for !done {
		if !c.Eng.Step() || c.Eng.Now()-start > 60*sim.Second {
			t.Fatalf("resilient bcast of %dB did not complete (t=%v, stats=%+v)",
				size, c.Eng.Now(), rg.Stats)
		}
	}
	return c.Eng.Now() - start
}

// runUntil drives the engine until cond holds or the deadline passes.
func runUntil(t *testing.T, c *Cluster, cond func() bool, window sim.Time, what string) {
	t.Helper()
	limit := c.Eng.Now() + window
	for !cond() {
		if !c.Eng.Step() || c.Eng.Now() > limit {
			t.Fatalf("%s: not reached within %v", what, window)
		}
	}
}

// TestRecoveryFullCycleSwitchCrash is the scripted end-to-end scenario the
// issue demands: native multicast → ToR crash wipes the MFT mid-transfer →
// safeguard trips → AMcast fallback completes the broadcast over repaired
// routes → re-probe re-registers over the restarted switch → native
// multicast restored — all deliveries byte-exact, asserted via counters.
func TestRecoveryFullCycleSwitchCrash(t *testing.T) {
	c := NewTestbed(4, Options{})
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("initial registration: %v", err)
	}
	in := fault.NewInjector(c.Net)

	// Phase 1: healthy native broadcast.
	runRBcast(t, c, rg, 0, 1<<20)
	if rg.Stats.NativeDeliveries != 3 || !rg.Native() {
		t.Fatalf("healthy broadcast not native: %+v", rg.Stats)
	}

	// Phase 2: the ToR fail-stops mid-transfer (a 64MB broadcast takes
	// ~5.5ms at 100Gbps; the crash lands at 2ms) and restarts 6ms later
	// with its MFT wiped.
	tor := c.Net.Switches[0]
	in.CrashAt(c.Eng.Now()+2*sim.Millisecond, tor)
	in.RestartAt(c.Eng.Now()+8*sim.Millisecond, tor)
	runRBcast(t, c, rg, 0, 64<<20)

	if rg.Stats.Trips != 1 {
		t.Fatalf("safeguard trips = %d, want 1 (stats=%+v)", rg.Stats.Trips, rg.Stats)
	}
	if rg.Stats.FallbackDeliveries != 3 {
		t.Fatalf("fallback deliveries = %d, want 3", rg.Stats.FallbackDeliveries)
	}
	if rg.Stats.CorruptDeliveries != 0 || rg.Stats.DupDeliveries != 0 {
		t.Fatalf("delivery corruption: %+v", rg.Stats)
	}
	m := c.Metrics()
	if m.MFTWipes != 1 {
		t.Fatalf("MFT wipes = %d, want 1", m.MFTWipes)
	}
	if m.CrashDrops == 0 {
		t.Fatal("crash recorded no drops despite killing an active transfer")
	}

	// Phase 3: the re-probe loop must re-register and restore native mode.
	runUntil(t, c, rg.Native, 100*sim.Millisecond, "restore to native")
	if rg.Stats.Restores != 1 || rg.Stats.SchemeSwitches != 2 {
		t.Fatalf("restore accounting wrong: %+v", rg.Stats)
	}
	if rg.Stats.Reprobes < 1 {
		t.Fatalf("no re-probe registrations recorded: %+v", rg.Stats)
	}

	// Phase 4: post-restore broadcasts ride native multicast again.
	runRBcast(t, c, rg, 0, 1<<20)
	if rg.Stats.NativeDeliveries != 6 || !rg.Native() {
		t.Fatalf("post-restore broadcast not native: %+v", rg.Stats)
	}
}

// TestRecoveryMidBcastLinkDown kills a ToR→host access link in the middle
// of a broadcast: the unreachable member stalls feedback aggregation, the
// safeguard trips, reachable members complete over unicast immediately, the
// dead member's delivery is deferred until the link heals, and native
// multicast is eventually restored. No delivery may be lost, duplicated, or
// wrongly sized.
func TestRecoveryMidBcastLinkDown(t *testing.T) {
	c := NewTestbed(4, Options{})
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("initial registration: %v", err)
	}
	in := fault.NewInjector(c.Net)

	link := in.HostLink(3)
	in.LinkDownAt(c.Eng.Now()+2*sim.Millisecond, link)
	in.LinkUpAt(c.Eng.Now()+12*sim.Millisecond, link)
	runRBcast(t, c, rg, 0, 64<<20)

	if rg.Stats.Trips+rg.Stats.Deadlines == 0 {
		t.Fatalf("no degrade trigger fired: %+v", rg.Stats)
	}
	if rg.Stats.FallbackDeliveries != 3 {
		t.Fatalf("fallback deliveries = %d, want 3", rg.Stats.FallbackDeliveries)
	}
	if rg.Stats.DeferredSends == 0 {
		t.Fatalf("partitioned member was never deferred: %+v", rg.Stats)
	}
	if rg.Stats.CorruptDeliveries != 0 || rg.Stats.DupDeliveries != 0 {
		t.Fatalf("delivery corruption: %+v", rg.Stats)
	}
	if m := c.Metrics(); m.FaultDrops == 0 {
		t.Fatal("no frames recorded lost at the dead link")
	}
	runUntil(t, c, rg.Native, 100*sim.Millisecond, "restore to native")
	runRBcast(t, c, rg, 0, 1<<20)
	if rg.Stats.NativeDeliveries != 3 {
		t.Fatalf("post-restore broadcast not native: %+v", rg.Stats)
	}
}

// TestRegistrationUnderControlLoss drops 10% of all control-plane packets
// (MRP, confirmations, ACK/NACK/CNP) and requires registration to succeed
// within the bounded retransmission policy, then a broadcast to complete.
func TestRegistrationUnderControlLoss(t *testing.T) {
	c := NewTestbed(4, Options{})
	c.SetControlLossRate(0.10)
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("registration under 10%% control loss: %v", err)
	}
	if !rg.Group.Registered() {
		t.Fatal("group not registered")
	}
	maxRetries := uint64(core.DefaultRegisterPolicy().MaxAttempts - 1)
	if rg.Group.Retries > maxRetries {
		t.Fatalf("retries = %d, exceeds policy bound %d", rg.Group.Retries, maxRetries)
	}
	runRBcast(t, c, rg, 0, 256<<10)
	if rg.Stats.NativeDeliveries != 3 {
		t.Fatalf("broadcast under control loss: %+v", rg.Stats)
	}
	if m := c.Metrics(); m.CtrlDrops == 0 {
		t.Fatal("control loss injection never dropped anything")
	}
}

// TestStaleEpochDataNeverForwarded: a crashed-then-restarted switch has an
// empty MFT; multicast data from the group's stale registration must be
// dropped and NACKed, never forwarded — the sender learns, degrades, and
// the data flows over unicast until re-registration.
func TestStaleEpochDataNeverForwarded(t *testing.T) {
	c := NewTestbed(4, Options{})
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("initial registration: %v", err)
	}
	in := fault.NewInjector(c.Net)

	// Crash/restart while the group is idle: the group still believes it is
	// registered, but the switch's volatile MFT is gone.
	in.CrashSwitch(c.Net.Switches[0])
	in.RestartSwitch(c.Net.Switches[0])

	runRBcast(t, c, rg, 0, 1<<20)

	if rg.Stats.NativeDeliveries != 0 {
		t.Fatalf("stale-epoch data was forwarded natively: %+v", rg.Stats)
	}
	if rg.Stats.FallbackDeliveries != 3 {
		t.Fatalf("fallback deliveries = %d, want 3", rg.Stats.FallbackDeliveries)
	}
	if rg.Stats.Invalidates != 1 {
		t.Fatalf("invalidations = %d, want 1 (stats=%+v)", rg.Stats.Invalidates, rg.Stats)
	}
	m := c.Metrics()
	if m.UnknownGroupDrops == 0 || m.UnknownGroupNacks == 0 {
		t.Fatalf("restarted switch did not drop+NACK unknown-group data: %+v", m)
	}
	if rg.Stats.CorruptDeliveries != 0 || rg.Stats.DupDeliveries != 0 {
		t.Fatalf("delivery corruption: %+v", rg.Stats)
	}
	runUntil(t, c, rg.Native, 100*sim.Millisecond, "restore to native")
	runRBcast(t, c, rg, 0, 1<<20)
	if rg.Stats.NativeDeliveries != 3 {
		t.Fatalf("post-restore broadcast not native: %+v", rg.Stats)
	}
}
