package cepheus

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// Paper-scale determinism: the digest and trace byte-equivalence guarantees
// proven on the 128-host (k=8) fabric must survive the jump to the 1024-host
// (k=16) fat-tree of §V-C, where the pod partition has 24 LPs and the
// cross-LP mailbox traffic is an order of magnitude denser. These mirror
// TestPodPartitionDigestEquivalence / TestPodPartitionTraceEquivalence at
// bench scale1024 geometry (members spread across all 16 pods), and are the
// correctness side of the BENCH_pr8 worker sweep: any scheduling shortcut
// that only shows up under many-LP merge pressure breaks here first.

// scale1024Members spreads n members across the k=16 fat-tree exactly like
// cepheus-bench's scale1024 sweep: member i lands on pod i mod 16, so every
// pod LP owns replication and delivery work.
func scale1024Members(n int) []int {
	const hostsPerPod = 16 * 16 / 4
	members := make([]int, n)
	for i := range members {
		members[i] = (i%16)*hostsPerPod + i/16
	}
	return members
}

// scale1024Workload runs a 256KB Cepheus broadcast to 64 members on the
// 1024-host fabric. workers=0 selects the sequential engine; otherwise the
// pod-level partition with that worker count.
func scale1024Workload(t *testing.T, seed int64, workers int) (simDigest, uint64) {
	t.Helper()
	core.ResetMcstIDs()
	opts := Options{Seed: seed, Workers: 1}
	if workers > 0 {
		opts.Workers = workers
		opts.Partition = true
		opts.PodPartition = true
	}
	c := NewFatTree(16, opts)
	defer c.Close()
	members := scale1024Members(64)
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	settle := func(d sim.Time) {
		if c.Par != nil {
			c.Par.RunUntil(c.Par.Now() + d)
		} else {
			c.Eng.RunUntil(c.Eng.Now() + d)
		}
	}
	settle(10 * sim.Millisecond) // drain registration residue
	jct, err := c.RunBcastErr(b, members[0], 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	settle(1 * sim.Millisecond) // let trailing feedback land
	d := simDigest{jct: jct, metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d, c.EventsRun()
}

// TestScale1024DigestEquivalence: on the 1024-host fabric, every pod-
// partitioned worker count must reproduce the sequential engine's simulated
// outcomes, and all partitioned runs must execute the same event count.
func TestScale1024DigestEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host fat-tree sweep in -short mode")
	}
	const seed = 7
	ref, _ := scale1024Workload(t, seed, 0)
	var parEvents uint64
	for _, w := range []int{1, 2, 4, 8} {
		d, ev := scale1024Workload(t, seed, w)
		if d != ref {
			t.Errorf("workers %d: digest diverged from sequential:\n  seq: %+v\n  par: %+v", w, ref, d)
		}
		if parEvents == 0 {
			parEvents = ev
		} else if ev != parEvents {
			t.Errorf("workers %d: event count %d differs from other partitioned runs (%d)", w, ev, parEvents)
		}
	}
}

// scale1024TraceWorkload is scale1024Workload with the flight recorder and
// protocol auditor attached, returning the canonical JSONL export cut at a
// fixed virtual horizon.
func scale1024TraceWorkload(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(16, Options{Seed: seed, Workers: workers, Partition: true, PodPartition: true})
	defer c.Close()
	rec := c.EnableTrace(1 << 21)
	c.EnableAudit()
	members := scale1024Members(64)
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, members[0], 256<<10); err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if len(evs) == 0 {
		t.Fatal("trace captured nothing")
	}
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	auditMustBeClean(t, c)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScale1024TraceEquivalence: the merged 1024-host trace must be byte-
// identical from serial pod-partitioned execution through workers {2, 4, 8},
// and every run must audit clean.
func TestScale1024TraceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-host fat-tree sweep in -short mode")
	}
	const seed = 7
	ref := scale1024TraceWorkload(t, seed, 1)
	for _, w := range []int{2, 4, 8} {
		got := scale1024TraceWorkload(t, seed, w)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d trace diverges from serial pod run (%d vs %d bytes)", w, len(got), len(ref))
		}
	}
}
