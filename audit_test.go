package cepheus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// auditMustBeClean fails the test with the auditor's own report when any
// checker fired, and sanity-checks that the auditor actually saw the run.
func auditMustBeClean(t *testing.T, c *Cluster) {
	t.Helper()
	c.Rec.Barrier() // flush shard residue through the attached auditor
	if lost := c.Rec.ShardLost(); lost != 0 {
		t.Fatalf("auditor coverage incomplete: %d events lost to shard overflow", lost)
	}
	if c.Aud.Seen() == 0 {
		t.Fatal("auditor observed no events")
	}
	if !c.Aud.Clean() {
		var sb strings.Builder
		c.Aud.Report(&sb)
		t.Fatalf("auditor flagged a clean workload:\n%s", sb.String())
	}
}

// TestAuditCleanTestbed: a lossless testbed broadcast must audit clean.
func TestAuditCleanTestbed(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	c.EnableAudit()
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
		t.Fatal(err)
	}
	c.SettleUntil(c.Eng.Now() + sim.Millisecond)
	auditMustBeClean(t, c)
}

// TestAuditCleanLossy: random data+control loss plus a core-switch
// crash/restart cycle mid-transfer (the TestMetricsFabricMatchesWalk
// workload) exercises retransmission, NACKs, MFT wipes and unknown-group
// drops — all of which are protocol-legal and must not trip any checker.
func TestAuditCleanLossy(t *testing.T) {
	core.ResetMcstIDs()
	c := NewFatTree(4, Options{Seed: 7})
	defer c.Close()
	c.EnableAudit()
	members := []int{0, 3, 6, 9, 12, 15}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.SetLossRate(0.01)
	c.SetControlLossRate(0.005)
	if _, err := c.RunBcastErr(b, 0, 512<<10); err != nil {
		t.Fatal(err)
	}
	sw := c.Net.Switches[len(c.Net.Switches)-1]
	var done bool
	b.Bcast(0, 512<<10, func() { done = true })
	c.Eng.RunFor(50 * sim.Microsecond)
	sw.Crash()
	c.Eng.RunFor(200 * sim.Microsecond)
	sw.Restart()
	c.Eng.RunFor(5 * sim.Millisecond)
	_ = done
	c.Eng.RunFor(1 * sim.Millisecond)
	auditMustBeClean(t, c)
}

// TestAuditCleanChaos is the in-tree analogue of `faultsim -scenario chaos
// -audit`: a seeded fault storm on a leaf-spine fabric under the resilient
// broadcast pipeline, audited end to end across three seeds.
func TestAuditCleanChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("seeded fault storms in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			core.ResetMcstIDs()
			c := NewLeafSpine(2, 2, 4, Options{Seed: seed})
			defer c.Close()
			c.EnableAudit()
			members := make([]int, c.Hosts())
			for i := range members {
				members[i] = i
			}
			rg, err := c.NewResilientGroup(members, 0, RecoveryOptions{
				Window:          500 * sim.Microsecond,
				ReprobeInterval: 2 * sim.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			in := fault.NewInjector(c.Net)
			var links []*simnet.Port
			for _, sw := range c.Net.Switches[:2] {
				for _, pt := range sw.Ports {
					if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
						links = append(links, pt)
					}
				}
			}
			const horizon = 20 * sim.Millisecond
			if _, err := in.Chaos(fault.ChaosConfig{
				Seed: seed, Horizon: horizon, Events: 4,
				MinDowntime: 2 * sim.Millisecond, MaxDowntime: 6 * sim.Millisecond,
				Links: links, Switches: c.Net.Switches[2:], FlapFraction: 0.25,
			}); err != nil {
				t.Fatal(err)
			}
			minRuntime := c.Eng.Now() + horizon + 8*sim.Millisecond
			for i := 0; i < 2 || c.Eng.Now() < minRuntime; i++ {
				start := c.Eng.Now()
				done := false
				rg.Bcast(0, 1<<20, func() { done = true })
				for !done {
					if !c.Eng.Step() || c.Eng.Now()-start > 60*sim.Second {
						t.Fatalf("broadcast %d wedged at t=%v", i, c.Eng.Now())
					}
				}
			}
			auditMustBeClean(t, c)
		})
	}
}

// TestAuditCorruptedTrace replays a real testbed trace through a fresh
// auditor, first pristine (must be clean), then with a deliberately
// duplicated DELIVER event — the duplicate must trip the delivery checker.
func TestAuditCorruptedTrace(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 64<<10); err != nil {
		t.Fatal(err)
	}
	c.SettleUntil(c.Eng.Now() + sim.Millisecond)
	evs := rec.Events()

	cfg := obs.AuditConfig{WindowPkts: c.RNICs[0].Cfg.WindowPkts}
	pristine := obs.NewAuditor(cfg)
	for i := range evs {
		pristine.Observe(&evs[i])
	}
	if !pristine.Clean() {
		var sb strings.Builder
		pristine.Report(&sb)
		t.Fatalf("pristine trace not clean:\n%s", sb.String())
	}

	// Corrupt: re-deliver an already-delivered packet at the same receiver.
	var dup *obs.Event
	for i := range evs {
		if evs[i].Kind == obs.KDeliver {
			dup = &evs[i]
			break
		}
	}
	if dup == nil {
		t.Fatal("trace has no DELIVER events")
	}
	corrupted := obs.NewAuditor(cfg)
	for i := range evs {
		corrupted.Observe(&evs[i])
	}
	replay := *dup
	replay.At = evs[len(evs)-1].At + 1
	corrupted.Observe(&replay)
	if corrupted.Clean() {
		t.Fatal("duplicated DELIVER did not trip the auditor")
	}
	found := false
	for _, v := range corrupted.Violations() {
		if v.Check == "deliver" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a 'deliver' checker violation, got: %+v", corrupted.Violations())
	}
}

// auditWorkload runs the digest-equivalence fat-tree workload with the
// auditor attached and returns (events seen, violations).
func auditWorkload(t *testing.T, workers int) (uint64, uint64) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: 1, Workers: workers, Partition: true})
	defer c.Close()
	c.EnableAudit()
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
		t.Fatal(err)
	}
	c.SettleUntil(60 * sim.Millisecond)
	c.Rec.Barrier()
	if lost := c.Rec.ShardLost(); lost != 0 {
		t.Fatalf("workers=%d: %d events lost to shard overflow", workers, lost)
	}
	return c.Aud.Seen(), c.Aud.ViolationCount()
}

// TestAuditWorkerInvariance: the auditor consumes the canonical stream at
// the barrier drain, so both its coverage and its verdict must be identical
// under every PDES worker count.
func TestAuditWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	refSeen, refViol := auditWorkload(t, 1)
	if refViol != 0 {
		t.Fatalf("serial partitioned run not clean: %d violations", refViol)
	}
	for _, w := range []int{2, 4} {
		seen, viol := auditWorkload(t, w)
		if seen != refSeen || viol != refViol {
			t.Errorf("workers=%d: auditor saw %d events / %d violations, serial saw %d / %d",
				w, seen, viol, refSeen, refViol)
		}
	}
}
