#!/bin/sh
# Perf smoke gate: BenchmarkScaleEvents must stay above the checked-in
# floor (ci/perf-floor.txt) minus tolerance. The benchmark reports an
# events/s metric; best-of-three absorbs run-to-run scheduler noise, the
# tolerance absorbs runner-to-runner hardware variance.
set -eu
cd "$(dirname "$0")/.."

floor=$(awk -F= '/^floor_events_per_sec=/{print $2}' ci/perf-floor.txt)
tol=$(awk -F= '/^tolerance=/{print $2}' ci/perf-floor.txt)

best=0
for i in 1 2 3; do
	v=$(go test -run NONE -bench 'BenchmarkScaleEvents$' -benchtime 2s . |
		awk '$NF=="events/s"{print $(NF-1)}')
	echo "run $i: $v events/s"
	best=$(awk -v a="$best" -v b="$v" 'BEGIN{print (a>b)?a:b}')
done

awk -v best="$best" -v floor="$floor" -v tol="$tol" 'BEGIN {
	min = floor * (1 - tol)
	printf "best %.0f events/s, gate %.0f (floor %.0f - %.0f%% tolerance)\n",
		best, min, floor, tol * 100
	if (best < min) {
		print "perf smoke FAIL: BenchmarkScaleEvents below floor" > "/dev/stderr"
		exit 1
	}
	print "perf smoke OK"
}'
