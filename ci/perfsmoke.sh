#!/bin/sh
# Perf smoke gate: BenchmarkScaleEvents must stay above the checked-in
# floor (ci/perf-floor.txt) minus tolerance. The benchmark reports an
# events/s metric; best-of-three absorbs run-to-run scheduler noise, the
# tolerance absorbs runner-to-runner hardware variance.
set -eu
cd "$(dirname "$0")/.."

floor=$(awk -F= '/^floor_events_per_sec=/{print $2}' ci/perf-floor.txt)
tol=$(awk -F= '/^tolerance=/{print $2}' ci/perf-floor.txt)

best=0
for i in 1 2 3; do
	v=$(go test -run NONE -bench 'BenchmarkScaleEvents$' -benchtime 2s . |
		awk '$NF=="events/s"{print $(NF-1)}')
	echo "run $i: $v events/s"
	best=$(awk -v a="$best" -v b="$v" 'BEGIN{print (a>b)?a:b}')
done

awk -v best="$best" -v floor="$floor" -v tol="$tol" 'BEGIN {
	min = floor * (1 - tol)
	printf "best %.0f events/s, gate %.0f (floor %.0f - %.0f%% tolerance)\n",
		best, min, floor, tol * 100
	if (best < min) {
		print "perf smoke FAIL: BenchmarkScaleEvents below floor" > "/dev/stderr"
		exit 1
	}
	print "perf smoke OK"
}'

# Parallel-speedup gate: on a multi-core runner, the pdes worker sweep's
# workers=4 row must beat workers=1 by the checked-in ratio. Skipped below
# 4 CPUs — there the executor intentionally degrades to the inline path and
# any residual speedup is heap-partitioning noise, not parallelism.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
ratio=$(awk -F= '/^speedup_w4_over_w1=/{print $2}' ci/perf-floor.txt)
if [ "$ncpu" -lt 4 ]; then
	echo "parallel speedup gate skipped: $ncpu CPUs (need 4)"
else
	tmp=$(mktemp)
	go run ./cmd/cepheus-bench -only pdes -json "$tmp" >/dev/null
	set -- $(awk -F'[:,]' '
		/"case"/ { c = $2 }
		/"events_per_sec"/ {
			if (c ~ /workers=1"/) a = $2
			else if (c ~ /workers=4"/) b = $2
		}
		END { print a, b }' "$tmp")
	rm -f "$tmp"
	awk -v w1="$1" -v w4="$2" -v ratio="$ratio" 'BEGIN {
		if (w1 <= 0 || w4 <= 0) {
			print "parallel speedup FAIL: missing pdes sweep rows" > "/dev/stderr"
			exit 1
		}
		s = w4 / w1
		printf "pdes workers=4 %.2fM events/s vs workers=1 %.2fM: %.2fx (gate %.2fx)\n",
			w4 / 1e6, w1 / 1e6, s, ratio
		if (s < ratio) {
			print "parallel speedup FAIL: workers=4 below checked-in ratio" > "/dev/stderr"
			exit 1
		}
		print "parallel speedup OK"
	}'
fi

# Profiler-overhead gate: executor introspection (Options.Profile) promises
# to cost <3% events/s on the partitioned coordinator. profov measures it
# (median-of-7 interleaved off/on runs, warmed up) and -profover fails the
# process above the budget. Runs at any CPU count: on a 1-CPU box the
# coordinator degrades to the inline path, where the merge/exec phase stamps
# — the profiler's whole per-window cost — are still taken.
go run ./cmd/cepheus-bench -only profov -profover 0.03

# Group-attribution overhead gate: EnableGroupStats promises to cost <3%
# events/s even on its worst case — a pure multicast workload where every
# delivered packet books into a group cell. gsov measures it with the same
# paired-median methodology as traceov/profov and -gsover fails the process
# above the budget. (Disabled cost is one nil check per hook and is covered
# by the BenchmarkScaleEvents floor above.)
go run ./cmd/cepheus-bench -only gsov -gsover 0.03
