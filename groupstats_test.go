package cepheus

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Group attribution promises byte-level neutrality: it books per-group
// counters on host-side shards and nothing else, so enabling it must change
// nothing simulated — not the digest, not a single trace byte — at any
// worker count. These tests are that promise's acceptance gate, plus the
// determinism contract on the attribution itself: the merged snapshot must
// be identical at every worker count.

// groupWorkload runs the digest-equivalence workload with group attribution
// on or off and returns the simulated digest, the canonical trace
// serialization cut at a fixed horizon, and the group snapshot (nil when
// attribution is off).
func groupWorkload(t *testing.T, seed int64, workers int, groups bool) (simDigest, []byte, []obs.GroupReport) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewFatTree(8, Options{Seed: seed, Workers: workers, Partition: true})
	defer c.Close()
	rec := c.EnableTrace(1 << 20)
	if groups {
		c.EnableGroupStats(0)
	}
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 8
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	jct, err := c.RunBcastErr(b, 0, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 60 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	d := simDigest{jct: jct, metrics: c.Metrics().String()}
	for _, r := range c.RNICs {
		d.retrans += r.Stats.Retransmits
	}
	return d, buf.Bytes(), c.GroupReports()
}

// TestGroupStatsDigestTraceNeutral: the unattributed workers=1 run is the
// reference; attributed runs at workers {1,2,4,8} must reproduce its digest
// and its trace byte-for-byte, while yielding a populated — and worker-count
// independent — group snapshot.
func TestGroupStatsDigestTraceNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode fat-tree sweeps in -short mode")
	}
	const seed = 1
	refD, refTrace, refSnap := groupWorkload(t, seed, 1, false)
	if refSnap != nil {
		t.Fatalf("GroupReports non-nil with attribution off: %d groups", len(refSnap))
	}
	var snap1 []obs.GroupReport
	for _, w := range []int{1, 2, 4, 8} {
		d, trace, snap := groupWorkload(t, seed, w, true)
		if d != refD {
			t.Errorf("workers=%d attributed: digest diverged:\n  ref: %+v\n  got: %+v", w, refD, d)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("workers=%d attributed: trace diverged from unattributed reference (%d vs %d bytes)",
				w, len(trace), len(refTrace))
		}
		if len(snap) != 1 {
			t.Fatalf("workers=%d: got %d groups, want 1", w, len(snap))
		}
		r := &snap[0]
		if r.Group < obs.GroupAddrBase {
			t.Errorf("workers=%d: group %#x below multicast base", w, r.Group)
		}
		// 15 receivers (every member but the root) each accept the full
		// 256 KiB message.
		if want := uint64(15); r.Messages != want {
			t.Errorf("workers=%d: messages = %d, want %d", w, r.Messages, want)
		}
		if want := int64(15 * (256 << 10)); r.DeliveredBytes != want {
			t.Errorf("workers=%d: delivered bytes = %d, want %d", w, r.DeliveredBytes, want)
		}
		if r.Latency.Count != r.Messages || r.Latency.P99 <= 0 {
			t.Errorf("workers=%d: latency summary inconsistent: %+v", w, r.Latency)
		}
		if len(r.Series) == 0 {
			t.Errorf("workers=%d: empty goodput series", w)
		}
		var serBytes int64
		for _, p := range r.Series {
			serBytes += p.Bytes
		}
		if serBytes != r.DeliveredBytes {
			t.Errorf("workers=%d: series bytes %d != delivered bytes %d", w, serBytes, r.DeliveredBytes)
		}
		if w == 1 {
			snap1 = snap
		} else if !reflect.DeepEqual(snap, snap1) {
			t.Errorf("workers=%d: group snapshot diverged from workers=1", w)
		}
	}
}

// TestEnableGroupStatsIdempotent: enabling twice returns the same registry.
func TestEnableGroupStatsIdempotent(t *testing.T) {
	core.ResetMcstIDs()
	c := NewTestbed(4, Options{Seed: 1})
	defer c.Close()
	gs := c.EnableGroupStats(0)
	if gs == nil || c.EnableGroupStats(sim.Millisecond) != gs {
		t.Fatal("EnableGroupStats not idempotent")
	}
	if c.GroupStats() != gs {
		t.Fatal("GroupStats() != registry returned by EnableGroupStats")
	}
}

// TestGroupStatsSLOEndToEnd: a testbed broadcast with a declared objective
// produces an evaluable SLO report — generous targets hold (no breach), an
// impossible delivery target breaches with a non-empty deterministic
// timeline.
func TestGroupStatsSLOEndToEnd(t *testing.T) {
	run := func(obj obs.SLOObjective) []obs.SLOResult {
		core.ResetMcstIDs()
		c := NewTestbed(8, Options{Seed: 1})
		defer c.Close()
		gs := c.EnableGroupStats(0)
		gs.SetDefaultObjective(obj)
		b, err := c.Broadcaster(SchemeCepheus, []int{0, 1, 2, 3, 4, 5, 6, 7}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunBcastErr(b, 0, 64<<10); err != nil {
			t.Fatal(err)
		}
		c.SettleUntil(10 * sim.Millisecond)
		return obs.EvalSLOs(c.GroupReports(), gs.ObjectiveFor, obs.SLOWindows{})
	}
	easy := run(obs.SLOObjective{DeliveryP99: sim.Second, DropBudget: 0.5})
	if len(easy) != 2 {
		t.Fatalf("easy: got %d results, want 2 (delivery + drop)", len(easy))
	}
	for _, r := range easy {
		if r.Breached() {
			t.Errorf("easy objective %s breached: %+v", r.Objective, r.Breaches)
		}
	}
	hard := run(obs.SLOObjective{DeliveryP99: 1}) // 1ns: every message is slow
	if len(hard) != 1 {
		t.Fatalf("hard: got %d results, want 1", len(hard))
	}
	if !hard[0].Breached() {
		t.Fatalf("1ns delivery objective did not breach: %+v", hard[0])
	}
	if hard[0].PeakShortBurn < 1 {
		t.Errorf("hard: peak short burn %.2f, want >= 1", hard[0].PeakShortBurn)
	}
	again := run(obs.SLOObjective{DeliveryP99: 1})
	if !reflect.DeepEqual(hard, again) {
		t.Errorf("breach timeline not deterministic:\n  first: %+v\n  again: %+v", hard, again)
	}
}
