package cepheus

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// TestSafeguardTripsOnDegradedLink is the gray-failure blind-spot scenario:
// a member's access link goes lossy — alive, carrying traffic, dropping a
// fraction of it — and the safeguard must trip on throughput collapse even
// though no link ever reports down. Fallback unicast then completes the
// broadcast over the same lossy link via retransmission, and after Repair
// the re-probe loop restores native multicast.
func TestSafeguardTripsOnDegradedLink(t *testing.T) {
	c := NewTestbed(4, Options{})
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("initial registration: %v", err)
	}
	in := fault.NewInjector(c.Net)

	// Healthy broadcast first: the safeguard learns the native norm.
	runRBcast(t, c, rg, 0, 1<<20)
	if !rg.Native() {
		t.Fatalf("healthy broadcast not native: %+v", rg.Stats)
	}

	// Member 3's access link degrades to 30% frame loss in both directions —
	// gray, not fail-stop: the link stays up the whole time.
	link := in.HostLink(3)
	in.Degrade(link, simnet.Impairment{LossRate: 0.3}, 99)
	runRBcast(t, c, rg, 0, 8<<20)

	if rg.Stats.Trips == 0 {
		t.Fatalf("safeguard never tripped on the degraded link: %+v", rg.Stats)
	}
	if rg.Stats.FallbackDeliveries != 3 {
		t.Fatalf("fallback deliveries = %d, want 3", rg.Stats.FallbackDeliveries)
	}
	if rg.Stats.CorruptDeliveries != 0 || rg.Stats.DupDeliveries != 0 {
		t.Fatalf("delivery corruption: %+v", rg.Stats)
	}
	m := c.Metrics()
	if m.ImpairDrops == 0 {
		t.Fatal("impairment never dropped a frame; test is vacuous")
	}
	if m.FaultDrops != 0 {
		t.Fatalf("gray scenario recorded %d fail-stop drops; the link must stay up", m.FaultDrops)
	}

	// Repair the wire; the re-probe loop must restore native multicast.
	in.Repair(link)
	before := rg.Stats.NativeDeliveries
	runUntil(t, c, rg.Native, 200*sim.Millisecond, "restore to native after repair")
	runRBcast(t, c, rg, 0, 1<<20)
	if rg.Stats.NativeDeliveries != before+3 {
		t.Fatalf("post-repair broadcast not native: %+v", rg.Stats)
	}
}

// TestPrimedSafeguardReTripsOnStillLossyLink covers the restore-onto-lossy
// relapse: the safeguard trips, the re-probe loop restores native service
// while the wire is *still* degraded, and the fresh safeguard — primed with
// the pre-fault norm — must trip again instead of adopting the degraded rate
// as the new normal.
func TestPrimedSafeguardReTripsOnStillLossyLink(t *testing.T) {
	c := NewTestbed(4, Options{})
	rg, err := c.NewResilientGroup([]int{0, 1, 2, 3}, 0, fastRecovery())
	if err != nil {
		t.Fatalf("initial registration: %v", err)
	}
	in := fault.NewInjector(c.Net)
	runRBcast(t, c, rg, 0, 1<<20)

	link := in.HostLink(3)
	in.Degrade(link, simnet.Impairment{LossRate: 0.3}, 7)
	runRBcast(t, c, rg, 0, 8<<20)
	if rg.Stats.Trips == 0 {
		t.Fatalf("safeguard never tripped: %+v", rg.Stats)
	}

	// Registration control traffic gets through 30% loss (bounded retries),
	// so the re-probe loop restores native mode onto the still-lossy link.
	runUntil(t, c, rg.Native, 500*sim.Millisecond, "restore onto still-lossy link")
	trips := rg.Stats.Trips

	// The next heavy broadcast rides native multicast over the degraded wire:
	// the primed safeguard still holds the healthy norm and must re-trip.
	runRBcast(t, c, rg, 0, 8<<20)
	if rg.Stats.Trips <= trips {
		t.Fatalf("primed safeguard did not re-trip on the still-lossy link: %+v", rg.Stats)
	}

	in.Repair(link)
	runUntil(t, c, rg.Native, 500*sim.Millisecond, "final restore after repair")
	runRBcast(t, c, rg, 0, 1<<20)
	if !rg.Native() {
		t.Fatalf("not native after repair: %+v", rg.Stats)
	}
}

// graySoakWorkload runs a gray-only soak (loss, burst, corruption, latency,
// bandwidth, control storms — no fail-stop) under the partitioned coordinator
// and returns the canonical trace bytes plus the SLO report with per-episode
// goodput, both of which must be identical at every worker count.
func graySoakWorkload(t *testing.T, seed int64, workers int) ([]byte, string) {
	t.Helper()
	core.ResetMcstIDs()
	c := NewLeafSpine(2, 2, 4, Options{Seed: seed, Workers: workers, Partition: true})
	defer c.Close()
	rec := c.EnableTrace(1 << 21)
	in := fault.NewInjector(c.Net)

	gray := make([]*simnet.Port, 0, len(c.Net.Hosts))
	for _, h := range c.Net.Hosts {
		gray = append(gray, h.NIC)
	}
	cfg := fault.SoakConfig{
		Seed:        seed,
		Episodes:    8,
		Horizon:     30 * sim.Millisecond,
		MinDuration: 2 * sim.Millisecond,
		MaxDuration: 6 * sim.Millisecond,
		GrayLinks:   gray,
	}
	plan, err := in.Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}

	members := make([]int, len(c.Net.Hosts))
	for i := range members {
		members[i] = i
	}
	b, err := c.Broadcaster(SchemeCepheus, members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.RunBcastErr(b, 0, 256<<10); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = 50 * sim.Millisecond
	c.SettleUntil(horizon)
	evs := rec.EventsUntil(horizon)
	if len(evs) == 0 {
		t.Fatal("trace captured nothing")
	}
	if rec.Lost() != 0 {
		t.Fatalf("flight recorder overflowed (lost %d)", rec.Lost())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	report := fault.ComputeSLO(plan, nil)
	fault.AttachGoodput(report.PerEpisode, evs)
	slo := report.String()
	for _, ep := range report.PerEpisode {
		slo += fmt.Sprintf("\nepisode %d %s %s goodput=%d", ep.Index, ep.Kind, ep.Target, ep.GoodputBytes)
	}
	return buf.Bytes(), slo
}

// TestGraySoakDigestAcrossWorkers is the PDES determinism acceptance gate for
// gray failures: the same gray-only soak yields a byte-identical canonical
// trace and an identical SLO report at every worker count.
func TestGraySoakDigestAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker leaf-spine soak sweeps in -short mode")
	}
	ref, refSLO := graySoakWorkload(t, 1, 1)
	for _, w := range []int{2, 4, 8} {
		got, slo := graySoakWorkload(t, 1, w)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d trace diverges from serial partitioned run (%d vs %d bytes)", w, len(got), len(ref))
		}
		if slo != refSLO {
			t.Errorf("workers=%d SLO report diverges:\n--- workers=1\n%s\n--- workers=%d\n%s", w, refSLO, w, slo)
		}
	}
}
