// Large-scale multicast (§V-C, Fig 12): a 512-receiver group on the
// 1024-server fat-tree, Cepheus versus Chain and Binomial Tree across flow
// sizes. Large flows use the DESIGN.md §1 cell-size rule to keep the
// packet-level simulation tractable.
package main

import (
	"fmt"
	"log"

	cepheus "repro"
	"repro/internal/exp"
	"repro/internal/roce"
)

func main() {
	const groupSize = 512
	nodes := make([]int, groupSize+1)
	for i := range nodes {
		nodes[i] = i // 513 hosts span 9 of the 16 pods
	}
	table := exp.NewTable("Fig 12: FCT of a 512-scale multicast (1024-host fat-tree)",
		"size", "cepheus", "chain-4", "binomial", "vs chain", "vs BT")

	for _, size := range []int{64, 64 << 10, 16 << 20} {
		jct := func(scheme cepheus.Scheme) float64 {
			tr := roce.DefaultConfig()
			tr.DCQCN = true // the paper's ns-3 setup runs go-back-N + DCQCN
			exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, 2048)
			c := cepheus.NewFatTree(16, cepheus.Options{Transport: &tr})
			b, err := c.Broadcaster(scheme, nodes, groupSize)
			if err != nil {
				panic(err)
			}
			t, err := c.RunBcastErr(b, 0, size)
			if err != nil {
				log.Fatalf("bcast %s: %v", scheme, err)
			}
			return float64(t)
		}
		ceph := jct(cepheus.SchemeCepheus)
		chain := jct(cepheus.SchemeChain)
		bt := jct(cepheus.SchemeBinomial)
		table.Add(exp.FormatBytes(size),
			fmt.Sprintf("%.1fus", ceph/1e3), fmt.Sprintf("%.1fus", chain/1e3),
			fmt.Sprintf("%.1fus", bt/1e3),
			fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
		fmt.Println("finished", exp.FormatBytes(size))
	}
	fmt.Print(table)
}
