// Fairness and convergence (§V-C, Fig 14): a Cepheus multicast flow
// competing with unicast flows under DCQCN. f1 is a 1-to-15 multicast;
// f2 and f3 are unicasts whose receivers bottleneck f1 at different points
// in time. The CNP filter makes the multicast sender track the most
// congested path, converging to fair shares and re-grabbing bandwidth when
// a competitor leaves.
package main

import (
	"fmt"

	cepheus "repro"
	"repro/internal/roce"
	"repro/internal/sim"
)

func main() {
	tr := roce.DefaultConfig()
	tr.DCQCN = true
	tr.MTU = 4096
	c := cepheus.NewFatTree(4, cepheus.Options{Transport: &tr}) // 16 hosts

	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	g, err := c.NewGroup(members, 0)
	if err != nil {
		panic(err)
	}
	f1 := g.Members[0].QP
	for _, m := range g.Members[1:] {
		m.QP.OnMessage = func(roce.Message) {}
	}

	mk := func(src, dst int) (*roce.QP, *roce.QP) {
		sq := c.RNICs[src].CreateQP()
		rq := c.RNICs[dst].CreateQP()
		sq.Connect(c.Host(dst).IP, rq.QPN)
		rq.Connect(c.Host(src).IP, sq.QPN)
		return sq, rq
	}
	f2, f2r := mk(1, 2)
	f3, f3r := mk(3, 4)

	stream := func(qp *roce.QP, stop *bool) {
		var post func()
		post = func() {
			if !*stop {
				qp.PostSend(1<<20, post)
			}
		}
		post()
	}
	var stop1, stop2, stop3 bool

	eng := c.Eng
	stream(f1, &stop1)
	eng.Schedule(5*sim.Millisecond, func() { stream(f2, &stop2) })
	eng.Schedule(20*sim.Millisecond, func() { stop2 = true })
	eng.Schedule(25*sim.Millisecond, func() { stream(f3, &stop3) })

	fmt.Println("t(ms)  f1-mcast(Gbps)  f2-unicast(Gbps)  f3-unicast(Gbps)")
	var last1, last2, last3 uint64
	f1probe := g.Members[1].QP // one representative receiver of the multicast
	for t := sim.Millisecond; t <= 40*sim.Millisecond; t += sim.Millisecond {
		eng.RunUntil(t)
		p1, p2, p3 := f1probe.GoodputBytes, f2r.GoodputBytes, f3r.GoodputBytes
		fmt.Printf("%5d  %14.1f  %16.1f  %16.1f\n", t/sim.Millisecond,
			float64(p1-last1)*8/1e6, float64(p2-last2)*8/1e6, float64(p3-last3)*8/1e6)
		last1, last2, last3 = p1, p2, p3
	}
	stop1, stop3 = true, true
	_ = f2
}
