// Parameter-server training (the paper's DNN-training motivation, plus the
// many-to-one reduction named as future work): each iteration the PS
// multicasts the model to every worker and the fabric aggregates the
// workers' gradients on the way back. Compare against chain broadcast +
// unicast gather.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ps"
	"repro/internal/sim"
)

func main() {
	table := exp.NewTable("PS training: 6 workers, 64MB model, 4 iterations",
		"scheme", "JCT", "bcast", "reduce", "compute", "grad check")
	for _, scheme := range []ps.Scheme{ps.SchemeCepheus, ps.SchemeAMcast} {
		core.ResetMcstIDs()
		eng := sim.New(1)
		c := ps.NewTestbed(eng, ps.DefaultConfig(6), scheme)
		res := c.Run()
		check := "ok"
		for _, got := range res.GradSums {
			if got != c.ExpectedGradSum() {
				check = fmt.Sprintf("BROKEN (%v != %v)", got, c.ExpectedGradSum())
			}
		}
		table.Add(string(scheme), res.JCT.String(), res.Bcast.String(),
			res.Reduce.String(), res.Compute.String(), check)
	}
	fmt.Print(table)
	fmt.Println("\nThe gradient aggregate is computed IN the switches (per-PSN")
	fmt.Println("combining over the multicast distribution tree) and verified")
	fmt.Println("numerically at the PS each iteration.")
}
