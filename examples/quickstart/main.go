// Quickstart: build the paper's 4-server testbed, register a Cepheus
// multicast group, and broadcast a message — then compare the JCT against
// the AMcast baselines (Fig 1d in action).
package main

import (
	"fmt"
	"log"

	cepheus "repro"
	"repro/internal/exp"
)

func main() {
	sizes := []int{64, 4 << 10, 1 << 20, 64 << 20}
	table := exp.NewTable("MPI-Bcast JCT on the 4-server testbed",
		"size", "cepheus", "binomial-tree", "chain-4", "n-unicast")

	for _, size := range sizes {
		var cells []string
		for _, scheme := range []cepheus.Scheme{
			cepheus.SchemeCepheus, cepheus.SchemeBinomial,
			cepheus.SchemeChain, cepheus.SchemeNUnicast,
		} {
			// A fresh cluster per run keeps measurements independent.
			c := cepheus.NewTestbed(4, cepheus.Options{})
			b, err := c.Broadcaster(scheme, []int{0, 1, 2, 3}, 4)
			if err != nil {
				log.Fatalf("broadcaster %s: %v", scheme, err)
			}
			jct, err := c.RunBcastErr(b, 0, size)
			if err != nil {
				log.Fatalf("bcast %s: %v", scheme, err)
			}
			cells = append(cells, jct.String())
		}
		table.Add(exp.FormatBytes(size), cells...)
	}
	fmt.Print(table)
	fmt.Println("\nCepheus transmits once; the fabric replicates and the")
	fmt.Println("switch aggregates ACK/NACK so the commodity RoCE sender")
	fmt.Println("sees a single unicast-like feedback stream.")
}
