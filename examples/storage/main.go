// Storage replication (§V-B1): three-replica writing with the default
// 3-unicasts path versus Cepheus multicast WRITE, reproducing Table I
// (IOPS) and Fig 10 (single IO latency).
package main

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/storage"
)

func main() {
	iops := exp.NewTable("Table I: 8KB replication writing throughput",
		"scheme", "IOPS(M)", "goodput(Gbps)")
	for _, mode := range []storage.Mode{storage.Unicast1, storage.UnicastN, storage.CepheusWrite} {
		c := storage.NewCluster(sim.New(1), mode, storage.DefaultConfig())
		rate := c.RunIOPS(8<<10, 64, 20*sim.Millisecond)
		iops.Add(mode.String(),
			fmt.Sprintf("%.3f", rate/1e6),
			fmt.Sprintf("%.1f", rate*8*1024*8/1e9))
	}
	fmt.Print(iops)

	lat := exp.NewTable("Fig 10: single IO latency",
		"IO size", "1-unicast", "3-unicasts", "cepheus", "cepheus vs 3-unicasts")
	for _, size := range []int{4 << 10, 8 << 10, 64 << 10, 256 << 10, 512 << 10} {
		var vals []sim.Time
		for _, mode := range []storage.Mode{storage.Unicast1, storage.UnicastN, storage.CepheusWrite} {
			c := storage.NewCluster(sim.New(1), mode, storage.DefaultConfig())
			vals = append(vals, c.MeasureLatency(size, 20))
		}
		reduction := 100 * (1 - float64(vals[2])/float64(vals[1]))
		lat.Add(exp.FormatBytes(size), vals[0].String(), vals[1].String(), vals[2].String(),
			fmt.Sprintf("-%.0f%%", reduction))
	}
	fmt.Println()
	fmt.Print(lat)
}
