// HPL acceleration (§V-B2): run the Linpack phase model on the 4-node
// testbed with Panel Broadcast and Row Swap accelerated separately, then
// project to large grids with the analytic model — Fig 11 plus the
// supplementary 128x128 simulation.
package main

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/hpl"
	"repro/internal/sim"
)

func run(p, q int, pb, rs hpl.Alg) hpl.Result {
	eng := sim.New(1)
	return hpl.NewTestbedCluster(eng, hpl.DefaultTestbedConfig(p, q), pb, rs).Run()
}

func main() {
	basePB := run(1, 4, hpl.AlgRing, hpl.AlgLong)
	accelPB := run(1, 4, hpl.AlgCepheus, hpl.AlgLong)
	baseRS := run(4, 1, hpl.AlgRing, hpl.AlgLong)
	accelRS := run(4, 1, hpl.AlgRing, hpl.AlgCepheus)

	jct := exp.NewTable("Fig 11a: end-to-end HPL JCT (1x4 accelerates PB, 4x1 accelerates RS)",
		"setting", "JCT", "comm", "others", "JCT reduction")
	add := func(name string, base, accel hpl.Result) {
		jct.Add(name+"/baseline", base.JCT.String(), base.Comm().String(), base.Others().String(), "-")
		jct.Add(name+"/cepheus", accel.JCT.String(), accel.Comm().String(), accel.Others().String(),
			fmt.Sprintf("-%.1f%%", 100*(1-float64(accel.JCT)/float64(base.JCT))))
	}
	add("PB(1x4)", basePB, accelPB)
	add("RS(4x1)", baseRS, accelRS)
	fmt.Print(jct)

	comm := exp.NewTable("Fig 11b: communication time",
		"phase", "baseline", "cepheus", "reduction")
	comm.Add("PB", basePB.PB.String(), accelPB.PB.String(),
		fmt.Sprintf("-%.0f%%", 100*(1-float64(accelPB.PB)/float64(basePB.PB))))
	comm.Add("RS", baseRS.RS.String(), accelRS.RS.String(),
		fmt.Sprintf("-%.0f%%", 100*(1-float64(accelRS.RS)/float64(baseRS.RS))))
	fmt.Println()
	fmt.Print(comm)

	big := exp.NewTable("Large-scale HPL (analytic model, §V-B2)",
		"grid", "baseline JCT(s)", "cepheus JCT(s)", "gain")
	for _, g := range []int{8, 32, 128} {
		cfg := hpl.Config{N: 65536, NB: 256, P: g, Q: g, GFlops: 800}
		b := hpl.Analytic(cfg, hpl.RingModel, hpl.LongModel)
		a := hpl.Analytic(cfg, hpl.CepheusModel, hpl.CepheusModel)
		big.Add(fmt.Sprintf("%dx%d", g, g),
			fmt.Sprintf("%.2f", b.JCTSeconds), fmt.Sprintf("%.2f", a.JCTSeconds),
			fmt.Sprintf("-%.1f%%", 100*(1-a.JCTSeconds/b.JCTSeconds)))
	}
	fmt.Println()
	fmt.Print(big)
}
