// Package cepheus is the public API of the Cepheus reproduction: it builds
// simulated RoCE clusters (the paper's 4-server testbed or the 1024-server
// fat-tree), creates multicast groups with in-network acceleration, and
// runs one-to-many transfers under Cepheus or any of the paper's AMcast
// baselines (binomial tree, chain, n-unicast, RDMC, increasing-ring,
// long). See README.md for a quickstart and DESIGN.md for the system map.
package cepheus

import (
	"fmt"

	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// Scheme names a multicast scheme.
type Scheme string

// The schemes the paper evaluates.
const (
	SchemeCepheus  Scheme = "cepheus"
	SchemeBinomial Scheme = "binomial-tree"
	SchemeChain    Scheme = "chain"
	SchemeRing     Scheme = "increasing-ring"
	SchemeNUnicast Scheme = "n-unicast"
	SchemeRDMC     Scheme = "rdmc"
	SchemeLong     Scheme = "long"
)

// Options tune cluster construction.
type Options struct {
	// Seed drives the deterministic simulation (default 1).
	Seed int64
	// Transport overrides the RoCE configuration (default roce.DefaultConfig).
	Transport *roce.Config
	// Accel overrides the accelerator configuration on every switch.
	Accel *core.AccelConfig
	// LinkRate and PropDelay override the fabric parameters.
	LinkRate  float64
	PropDelay sim.Time

	// Workers selects the execution mode. 0 or 1 (the default) is the
	// single-threaded engine every existing caller uses — Cluster.Eng drives
	// everything. 2 or more partitions the topology into one logical process
	// per switch and executes them on that many goroutines under
	// conservative lookahead synchronization (DESIGN.md §9); Cluster.Eng is
	// then nil and Cluster.Par coordinates. The partition is fixed by the
	// topology, so any Workers >= 2 value produces byte-identical simulated
	// results — the knob trades wall-clock speed only.
	//
	// Parallel mode currently supports SchemeCepheus broadcasts and is
	// incompatible with runtime fault injection (internal/fault) and the
	// AMcast overlay baselines, whose completion accounting is inherently
	// cross-member.
	Workers int

	// Partition forces the partitioned coordinator even when Workers <= 1:
	// the topology is split into LPs and executed serially on one goroutine
	// under the same windowed merge rule as any Workers >= 2 run. Same-time
	// cross-LP deliveries are then serialized by the coordinator's canonical
	// (time, source LP, send order) rule instead of the single engine's
	// scheduling order, so a Partition run's flight-recorder trace is
	// byte-identical to a multi-worker run's — the property
	// TestTraceSeqParEquivalence pins down. Implied by Workers >= 2.
	Partition bool

	// PodPartition coarsens the partition to one LP per topology domain
	// (topo.PartitionPods): on a fat-tree, one LP per pod plus one per core
	// group instead of one per switch. Fewer, fatter LPs mean less cross-LP
	// traffic and per-window overhead at scale; results remain byte-identical
	// across worker counts for a fixed partition choice. No effect unless the
	// partitioned coordinator is active (Workers >= 2 or Partition), or on
	// topologies without declared domains (falls back to per-switch LPs).
	PodPartition bool

	// CorePropDelay overrides the propagation delay of the fat-tree's
	// aggregation↔core trunks (0 = PropDelay). Under PodPartition the trunks
	// are the only cross-LP links, so this is also the conservative
	// lookahead. Only NewFatTree consults it.
	CorePropDelay sim.Time

	// Profile enables executor introspection on the partitioned coordinator:
	// per-worker phase timing, per-LP event loads, and the cross-LP traffic
	// matrix, read back through Cluster.ExecProfile. Host-side observation
	// only — simulated results and traces stay byte-identical with the
	// profiler on or off (DESIGN.md §15). No effect in sequential mode.
	Profile bool
}

func (o *Options) fill() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Transport == nil {
		c := roce.DefaultConfig()
		o.Transport = &c
	}
	if o.Accel == nil {
		c := core.DefaultAccelConfig()
		o.Accel = &c
	}
	if o.LinkRate == 0 {
		o.LinkRate = topo.DefaultLinkRate
	}
	if o.PropDelay == 0 {
		o.PropDelay = topo.DefaultPropDelay
	}
}

// Cluster is a simulated RoCE datacenter with Cepheus accelerators on every
// switch.
type Cluster struct {
	// Eng drives a sequential cluster (Workers <= 1); nil in parallel mode.
	Eng *sim.Engine
	// Par coordinates a partitioned cluster (Workers >= 2); nil otherwise.
	Par    *sim.Parallel
	Net    *topo.Network
	RNICs  []*roce.RNIC
	Agents []*core.Agent
	Accels []*core.Accel

	// Fab holds the cluster's sharded fabric counters (always wired; the
	// per-LP shards make Metrics a sum over NumLPs cells instead of a walk
	// over every device). Rec is the flight recorder, nil until EnableTrace;
	// Aud the protocol auditor, nil until EnableAudit; Series the telemetry
	// sampler, nil until EnableSeries.
	Fab    *obs.Fabric
	Rec    *obs.Recorder
	Aud    *obs.Auditor
	Series *obs.SeriesSet
	// GS holds the per-group attribution registry, nil until
	// EnableGroupStats (the disabled hot-path cost is one nil check per
	// device, like the flight recorder).
	GS *obs.GroupStats
}

// NewTestbed builds the paper's §IV configuration: n servers under one
// accelerated ToR switch.
func NewTestbed(n int, opts Options) *Cluster {
	opts.fill()
	eng := sim.New(opts.Seed)
	return wire(eng, topo.TestbedWith(eng, n, opts.LinkRate, opts.PropDelay), opts)
}

// NewFatTree builds the §V-C simulation fabric: a k-ary 3-layer fat-tree
// with k^3/4 hosts (k=16 gives the paper's 1024 servers).
func NewFatTree(k int, opts Options) *Cluster {
	opts.fill()
	eng := sim.New(opts.Seed)
	coreProp := opts.CorePropDelay
	if coreProp == 0 {
		coreProp = opts.PropDelay
	}
	return wire(eng, topo.FatTreeWithTrunk(eng, k, opts.LinkRate, opts.PropDelay, coreProp), opts)
}

// NewLeafSpine builds a two-tier Clos with the given leaf/spine counts and
// hosts per leaf (oversubscription = hostsPerLeaf/spines).
func NewLeafSpine(leaves, spines, hostsPerLeaf int, opts Options) *Cluster {
	opts.fill()
	eng := sim.New(opts.Seed)
	return wire(eng, topo.LeafSpineWith(eng, leaves, spines, hostsPerLeaf, opts.LinkRate, opts.PropDelay), opts)
}

func wire(eng *sim.Engine, net *topo.Network, opts Options) *Cluster {
	c := &Cluster{Eng: eng, Net: net}
	if opts.Workers >= 2 || opts.Partition {
		// Partition before attaching RNICs and accelerators, so every layer
		// built on top picks up its device's LP engine rather than the
		// build-time scratch engine (which Partition disconnects).
		c.Par = sim.NewParallel(opts.Seed, max(opts.Workers, 1))
		if opts.PodPartition {
			net.PartitionPods(c.Par)
		} else {
			net.Partition(c.Par)
		}
		if opts.Profile {
			// Partition/PartitionPods finalized the LP set; the profiler's
			// per-LP arrays size off it.
			c.Par.EnableProfile()
		}
		c.Eng = nil
	}
	for _, h := range net.Hosts {
		r := roce.NewRNIC(h, *opts.Transport)
		c.RNICs = append(c.RNICs, r)
		c.Agents = append(c.Agents, core.NewAgent(r))
	}
	for _, sw := range net.Switches {
		c.Accels = append(c.Accels, core.Attach(sw, *opts.Accel))
	}
	// Fabric counters are always on: each device increments its own LP's
	// shard (wired after Partition so LP assignments are final).
	nlp := 1
	if c.Par != nil {
		nlp = c.Par.NumLPs()
	}
	c.Fab = obs.NewFabric(nlp)
	for _, sw := range net.Switches {
		sw.SetFabric(c.Fab.LP(sw.Engine().LP()))
	}
	for _, h := range net.Hosts {
		h.NIC.SetFabric(c.Fab.LP(h.Engine().LP()))
	}
	return c
}

// Parallel reports whether the cluster runs in partitioned parallel mode.
func (c *Cluster) Parallel() bool { return c.Par != nil }

// EventsRun sums executed events across the cluster's engine(s).
func (c *Cluster) EventsRun() uint64 {
	if c.Par != nil {
		return c.Par.EventsRun()
	}
	return c.Eng.EventsRun()
}

// Close releases execution resources (the parallel worker pool). A no-op in
// sequential mode; safe to call more than once.
func (c *Cluster) Close() {
	if c.Par != nil {
		c.Par.Close()
	}
}

// Hosts returns the number of hosts in the cluster.
func (c *Cluster) Hosts() int { return len(c.Net.Hosts) }

// LPLabels names each logical process after the switches it executes: the
// first switch's name, with "+n" appended when the LP holds more switches
// (pod-level partitions). Nil in sequential mode.
func (c *Cluster) LPLabels() []string {
	if c.Par == nil {
		return nil
	}
	labels := make([]string, c.Par.NumLPs())
	extra := make([]int, c.Par.NumLPs())
	for _, sw := range c.Net.Switches {
		lp := sw.Engine().LP()
		if lp < 0 || lp >= len(labels) {
			continue
		}
		if labels[lp] == "" {
			labels[lp] = sw.Name
		} else {
			extra[lp]++
		}
	}
	for lp, n := range extra {
		if n > 0 {
			labels[lp] = fmt.Sprintf("%s+%d", labels[lp], n)
		}
	}
	return labels
}

// ExecProfile snapshots the executor-introspection report: per-worker phase
// breakdown, per-LP load, cross-LP traffic, and the derived scaling
// diagnosis. Returns nil unless the cluster is partitioned and was built
// with Options.Profile. Call between runs, not concurrently with one.
func (c *Cluster) ExecProfile() *obs.ExecReport {
	if c.Par == nil {
		return nil
	}
	return obs.BuildExecReport(c.Par.ProfileSnapshot(), c.LPLabels())
}

// ResetExecProfile zeroes the profiler's accumulated counters so a
// subsequent ExecProfile covers only the runs after the reset — sweeps call
// it after warmup. A no-op when profiling is off or in sequential mode.
func (c *Cluster) ResetExecProfile() {
	if c.Par != nil {
		c.Par.ResetProfile()
	}
}

// NewGroup creates and registers a Cepheus multicast group over the given
// host indices (members[leader] hosts the controller). It drives the
// simulation until registration completes and returns an error on
// rejection or timeout.
func (c *Cluster) NewGroup(members []int, leader int) (*core.Group, error) {
	var ms []*core.Member
	var ags []*core.Agent
	for _, i := range members {
		ms = append(ms, &core.Member{Host: c.Net.Hosts[i], RNIC: c.RNICs[i], QP: c.RNICs[i].CreateQP()})
		ags = append(ags, c.Agents[i])
	}
	eng := c.Eng
	if c.Par != nil {
		// The group controller lives on the leader host; its timers and
		// confirmation accounting must run on the leader's LP.
		eng = ms[leader].Host.Engine()
	}
	g := core.NewGroup(eng, core.AllocMcstID(), ms, leader, ags)
	var err error
	done := false
	g.Register(50*sim.Millisecond, func(e error) { err = e; done = true })
	if c.Par != nil {
		// Registration callbacks funnel through the leader LP but touch the
		// done/err closure shared with this goroutine, so drive the windows
		// serially — same schedule and results, no worker handoff.
		limit := c.Par.Now() + 10*sim.Second
		if out := c.Par.RunSerial(limit, func() bool { return done }); out != sim.Done {
			return nil, fmt.Errorf("cepheus: registration stalled (%v)", out)
		}
	} else {
		// Bound by time as well as by queue exhaustion: perpetual timers
		// (the audit drain, the telemetry sampler) keep the queue non-empty
		// even when registration is wedged. Mirrors the parallel path.
		limit := c.Eng.Now() + 10*sim.Second
		for !done {
			if !c.Eng.Step() || c.Eng.Now() > limit {
				return nil, fmt.Errorf("cepheus: registration stalled")
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Broadcaster builds a broadcaster of the given scheme over the host
// indices in nodes. For SchemeCepheus this creates and registers a group;
// baselines get an MPI-communicator-like overlay. slices parameterizes
// Chain (the paper uses 4) and RDMC's block count; other schemes ignore it.
func (c *Cluster) Broadcaster(scheme Scheme, nodes []int, slices int) (amcast.Broadcaster, error) {
	if scheme == SchemeCepheus {
		g, err := c.NewGroup(nodes, 0)
		if err != nil {
			return nil, err
		}
		return &amcast.Cepheus{Group: g}, nil
	}
	if c.Par != nil {
		return nil, fmt.Errorf("cepheus: scheme %q requires sequential execution (Workers <= 1): overlay completion accounting is cross-member", scheme)
	}
	ns := make([]*amcast.Node, len(nodes))
	for i, j := range nodes {
		ns[i] = &amcast.Node{Host: c.Net.Hosts[j], RNIC: c.RNICs[j]}
	}
	comm := amcast.NewComm(c.Eng, ns)
	switch scheme {
	case SchemeBinomial:
		return amcast.Binomial{C: comm}, nil
	case SchemeChain:
		if slices < 1 {
			slices = 4
		}
		return amcast.Chain{C: comm, Slices: slices}, nil
	case SchemeRing:
		return amcast.Chain{C: comm, Slices: 1}, nil
	case SchemeNUnicast:
		return amcast.NUnicast{C: comm}, nil
	case SchemeRDMC:
		if slices < 1 {
			slices = 16
		}
		return amcast.RDMC{C: comm, Blocks: slices}, nil
	case SchemeLong:
		return amcast.Long{C: comm}, nil
	default:
		return nil, fmt.Errorf("cepheus: unknown scheme %q", scheme)
	}
}

// BcastTimeout bounds how long RunBcastErr drives a single broadcast before
// declaring it stuck (in simulated time).
const BcastTimeout = 60 * sim.Second

// RunBcastErr runs one broadcast to completion and returns its JCT. It
// returns an error if the event queue drains or BcastTimeout of simulated
// time elapses before the collective finishes — a lost completion usually
// means a deadlocked transport or a black-holed route, which callers like
// long experiment sweeps want to report rather than die on.
func (c *Cluster) RunBcastErr(b amcast.Broadcaster, root, size int) (sim.Time, error) {
	if c.Par != nil {
		return c.runBcastParallel(b, root, size)
	}
	start := c.Eng.Now()
	var end sim.Time = -1
	b.Bcast(root, size, func() { end = c.Eng.Now() })
	for end < 0 {
		if !c.Eng.Step() {
			return 0, fmt.Errorf("cepheus: %s bcast of %dB stalled: event queue drained without completion", b.Name(), size)
		}
		if c.Eng.Now()-start > BcastTimeout {
			return 0, fmt.Errorf("cepheus: %s bcast of %dB did not complete within %v", b.Name(), size, BcastTimeout)
		}
	}
	return end - start, nil
}

// runBcastParallel drives one Cepheus broadcast across the partitioned
// cluster. Completion is tracked through BcastRecord's per-member time
// slots — each written only by its owning LP — and detected by the window
// coordinator, whose barrier provides the happens-before edge. JCT is
// measured from the source LP's clock at post to the latest member delivery,
// exactly the sequential definition.
func (c *Cluster) runBcastParallel(b amcast.Broadcaster, root, size int) (sim.Time, error) {
	cb, ok := b.(*amcast.Cepheus)
	if !ok {
		return 0, fmt.Errorf("cepheus: parallel execution supports only the cepheus scheme, not %s", b.Name())
	}
	members := cb.Group.Members
	idx := root
	if cb.SrcIndex != nil {
		idx = cb.SrcIndex(root)
	}
	start := members[idx].Host.Engine().Now()
	times := make([]sim.Time, len(members))
	cb.BcastRecord(root, size, times)
	pred := func() bool {
		for _, t := range times {
			if t < 0 {
				return false
			}
		}
		return true
	}
	out := c.Par.Run(start+BcastTimeout, pred)
	if out != sim.Done {
		return 0, fmt.Errorf("cepheus: %s bcast of %dB stalled in parallel run (%v)", b.Name(), size, out)
	}
	end := start
	for _, t := range times {
		if t > end {
			end = t
		}
	}
	return end - start, nil
}

// RunBcast is RunBcastErr for callers that treat a stuck broadcast as a
// programming error: it panics instead of returning one.
func (c *Cluster) RunBcast(b amcast.Broadcaster, root, size int) sim.Time {
	jct, err := c.RunBcastErr(b, root, size)
	if err != nil {
		panic(err)
	}
	return jct
}

// SetLossRate injects random data-packet loss on every switch (Fig 13).
func (c *Cluster) SetLossRate(rate float64) {
	for _, sw := range c.Net.Switches {
		sw.LossRate = rate
	}
}

// TotalDrops sums loss-injected discards across switches.
func (c *Cluster) TotalDrops() uint64 {
	var n uint64
	for _, sw := range c.Net.Switches {
		n += sw.DataDrops
	}
	return n
}

// Host returns host i's address (useful when crafting custom traffic).
func (c *Cluster) Host(i int) *simnet.Host { return c.Net.Hosts[i] }
