package cepheus

// Ablation benchmarks for the design choices DESIGN.md §4 calls out: the
// ACK-aggregation trigger condition, retransmit filtering, CNP filtering,
// hierarchical feedback state, single-MFT source switching, and chain slice
// count sensitivity.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/roce"
	"repro/internal/simnet"
)

// ablationCluster builds a 4-host testbed with a tweaked accelerator.
func ablationCluster(mut func(*core.AccelConfig)) (*Cluster, *core.Group) {
	core.ResetMcstIDs()
	acc := core.DefaultAccelConfig()
	if mut != nil {
		mut(&acc)
	}
	c := NewTestbed(4, Options{Accel: &acc})
	g, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	if err != nil {
		panic(err)
	}
	return c, g
}

func mcast(c *Cluster, g *core.Group, size int) {
	b := &amcastCepheus{g}
	c.RunBcast(b, 0, size)
}

// amcastCepheus is a minimal local adapter to avoid importing amcast just
// for the ablations (and to keep OnMessage wiring explicit).
type amcastCepheus struct{ g *core.Group }

func (*amcastCepheus) Name() string { return "cepheus" }
func (a *amcastCepheus) Bcast(root, size int, done func()) {
	remaining := len(a.g.Members) - 1
	for i, m := range a.g.Members {
		if i == root {
			continue
		}
		m.QP.OnMessage = func(roce.Message) {
			remaining--
			if remaining == 0 {
				done()
			}
		}
	}
	a.g.Members[root].QP.PostSend(size, nil)
}

// BenchmarkAblationAckTrigger compares the trigger condition against naive
// per-ACK forwarding: ACKs received by the sender for a 16MB multicast.
func BenchmarkAblationAckTrigger(b *testing.B) {
	run := func(naive bool) (senderAcks, inflow uint64) {
		c, g := ablationCluster(func(a *core.AccelConfig) { a.NaiveAckForwarding = naive })
		mcast(c, g, 16<<20)
		return c.RNICs[0].Stats.AcksRecv, c.Accels[0].Stats.AcksIn
	}
	var trig, naive uint64
	for i := 0; i < b.N; i++ {
		trig, _ = run(false)
		var in uint64
		naive, in = run(true)
		if i == 0 {
			t := exp.NewTable("Ablation: ACK aggregation trigger condition (16MB, 3 receivers)",
				"variant", "ACKs into switch", "ACKs to sender")
			t.Add("trigger condition", fmt.Sprint(in), fmt.Sprint(trig))
			t.Add("naive forwarding", fmt.Sprint(in), fmt.Sprint(naive))
			fmt.Print(t)
		}
	}
	b.ReportMetric(float64(naive)/float64(trig), "ack-reduction-x")
	if naive <= trig {
		b.Error("trigger condition did not reduce sender-side ACKs")
	}
}

// BenchmarkAblationRetransmitFilter measures duplicate deliveries with the
// filter on/off under deterministic single-receiver loss.
func BenchmarkAblationRetransmitFilter(b *testing.B) {
	run := func(disable bool) (dups uint64) {
		c, g := ablationCluster(func(a *core.AccelConfig) { a.DisableRetransFilter = disable })
		// Drop one packet toward member 1 only.
		h := c.Net.Hosts[1]
		orig := h.Handler
		dropped := false
		h.Handler = func(p *simnet.Packet) {
			if p.Type == simnet.Data && p.PSN == 100 && !dropped {
				dropped = true
				return
			}
			orig(p)
		}
		mcast(c, g, 4<<20)
		for _, r := range c.RNICs[1:4] {
			dups += r.Stats.DupData
		}
		return dups
	}
	var on, off uint64
	for i := 0; i < b.N; i++ {
		on = run(false)
		off = run(true)
		if i == 0 {
			t := exp.NewTable("Ablation: retransmit filtering (one loss, go-back-N)",
				"variant", "duplicate packets at receivers")
			t.Add("filter on", fmt.Sprint(on))
			t.Add("filter off", fmt.Sprint(off))
			fmt.Print(t)
		}
	}
	if off <= on {
		b.Error("retransmit filter showed no duplicate suppression")
	}
}

// BenchmarkAblationCNPFilter measures CNPs reaching the multicast sender
// with filtering on/off while receivers are ECN-marked.
func BenchmarkAblationCNPFilter(b *testing.B) {
	run := func(disable bool) (senderCNPs uint64) {
		core.ResetMcstIDs()
		acc := core.DefaultAccelConfig()
		acc.DisableCNPFilter = disable
		// Measure the raw CNP streams: no sender reaction, so congestion
		// (and marking) persists for the whole transfer.
		tr := roce.DefaultConfig()
		c := NewTestbed(4, Options{Accel: &acc, Transport: &tr})
		for _, sw := range c.Net.Switches {
			for _, pt := range sw.Ports {
				pt.ECN = simnet.ECNConfig{Enabled: true, KminBytes: 32 << 10, KmaxBytes: 128 << 10, PMax: 0.5}
			}
		}
		g, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
		if err != nil {
			panic(err)
		}
		// Congest two receiver downlinks with background unicasts from
		// member 3, so CNPs arrive on multiple MDT paths.
		for _, dst := range []int{1, 2} {
			sq := c.RNICs[3].CreateQP()
			rq := c.RNICs[dst].CreateQP()
			sq.Connect(c.Host(dst).IP, rq.QPN)
			rq.Connect(c.Host(3).IP, sq.QPN)
			stop := false
			var post func()
			post = func() {
				if !stop {
					sq.PostSend(1<<20, post)
				}
			}
			post()
			defer func() { stop = true }()
		}
		mcast(c, g, 64<<20)
		return c.RNICs[0].Stats.CNPsRecv
	}
	var on, off uint64
	for i := 0; i < b.N; i++ {
		on = run(false)
		off = run(true)
		if i == 0 {
			t := exp.NewTable("Ablation: CNP filtering (CNP magnification)",
				"variant", "CNPs at sender")
			t.Add("filter on (most congested path only)", fmt.Sprint(on))
			t.Add("filter off (all paths)", fmt.Sprint(off))
			fmt.Print(t)
		}
	}
	if off < on {
		b.Error("CNP filter increased sender CNPs")
	}
}

// BenchmarkAblationStateScaling contrasts Cepheus' per-path (hierarchical)
// feedback state with hypothetical per-receiver tracking as group size
// grows on the fat-tree.
func BenchmarkAblationStateScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Ablation: switch feedback state vs group size (k=16 fat-tree)",
			"group size", "max MFT entries/switch (hierarchical)", "per-receiver entries (naive)")
		for _, gs := range []int{8, 64, 512} {
			core.ResetMcstIDs()
			c := NewFatTree(16, Options{})
			nodes := make([]int, gs)
			for j := range nodes {
				nodes[j] = j
			}
			g, err := c.NewGroup(nodes, 0)
			if err != nil {
				b.Fatal(err)
			}
			maxEntries := 0
			for _, a := range c.Accels {
				if m := a.MFT(g.ID); m != nil && len(m.Paths) > maxEntries {
					maxEntries = len(m.Paths)
				}
			}
			t.Add(fmt.Sprint(gs), fmt.Sprint(maxEntries), fmt.Sprint(gs))
			if maxEntries > 16 {
				b.Errorf("group %d: %d entries exceeds the port count bound", gs, maxEntries)
			}
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}

// BenchmarkAblationSourceSwitching compares MFT count under single-MFT
// source switching against one group per source.
func BenchmarkAblationSourceSwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Cepheus: one group, four sources taking turns.
		c, g := ablationCluster(nil)
		last := 0
		for src := 0; src < 4; src++ {
			if src != last {
				g.SwitchSource(last, src)
				last = src
			}
			mcast2(c, g, src, 1<<20)
		}
		single := c.Accels[0].Groups()

		// Naive: one group per source.
		core.ResetMcstIDs()
		c2 := NewTestbed(4, Options{})
		for src := 0; src < 4; src++ {
			if _, err := c2.NewGroup([]int{0, 1, 2, 3}, src); err != nil {
				b.Fatal(err)
			}
		}
		naive := c2.Accels[0].Groups()
		if i == 0 {
			t := exp.NewTable("Ablation: source switching (4 sources)",
				"approach", "MFTs on switch")
			t.Add("single MFT + PSN sync", fmt.Sprint(single))
			t.Add("one group per source", fmt.Sprint(naive))
			fmt.Print(t)
		}
		if single != 1 || naive != 4 {
			b.Errorf("MFT counts: single=%d naive=%d", single, naive)
		}
	}
}

func mcast2(c *Cluster, g *core.Group, root, size int) {
	b := &amcastCepheus{g}
	start := c.Eng.Now()
	done := false
	b.Bcast(root, size, func() { done = true })
	for !done {
		if !c.Eng.Step() || c.Eng.Now()-start > 10e9 {
			panic("ablation mcast stalled")
		}
	}
}

// BenchmarkAblationChainSlices sweeps the Chain slice count the paper fixes
// at 4, showing the latency/CPU trade-off that motivates the choice.
func BenchmarkAblationChainSlices(b *testing.B) {
	const size = 64 << 20
	for i := 0; i < b.N; i++ {
		t := exp.NewTable("Ablation: chain slice count (64MB, 4 nodes)",
			"slices", "JCT(ms)", "relay posts")
		for _, s := range []int{1, 2, 4, 16, 64} {
			core.ResetMcstIDs()
			c := NewTestbed(4, Options{})
			br, err := c.Broadcaster(SchemeChain, []int{0, 1, 2, 3}, s)
			if err != nil {
				b.Fatal(err)
			}
			jct := c.RunBcast(br, 0, size)
			t.Add(fmt.Sprint(s), fmt.Sprintf("%.2f", jct.Millis()), fmt.Sprint(3*s))
		}
		if i == 0 {
			fmt.Print(t)
		}
	}
}
