// mftdump builds a multicast group on a chosen topology, runs MRP
// registration and one priming message, then dumps every switch's MFT —
// the Path Index, the Path Table with bridging state, and the group-level
// feedback aggregation state. Useful for inspecting how the MDT was formed.
package main

import (
	"flag"
	"fmt"
	"log"

	cepheus "repro"
	"repro/internal/roce"
)

func main() {
	fattree := flag.Int("fattree", 4, "fat-tree arity (0 = single-switch testbed)")
	hosts := flag.Int("hosts", 4, "testbed host count when -fattree=0")
	group := flag.Int("group", 4, "group size")
	flag.Parse()

	var c *cepheus.Cluster
	if *fattree > 0 {
		c = cepheus.NewFatTree(*fattree, cepheus.Options{})
	} else {
		c = cepheus.NewTestbed(*hosts, cepheus.Options{})
	}
	if *group > c.Hosts() {
		log.Fatalf("group %d exceeds %d hosts", *group, c.Hosts())
	}
	nodes := make([]int, *group)
	for i := range nodes {
		nodes[i] = i
	}
	g, err := c.NewGroup(nodes, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Prime the tree with one small message so AckOutPort and the source
	// identity are learned.
	for _, m := range g.Members[1:] {
		m.QP.OnMessage = func(roce.Message) {}
	}
	done := false
	g.Members[0].QP.PostSend(4096, func() { done = true })
	for !done {
		if !c.Eng.Step() {
			log.Fatal("priming message stalled")
		}
	}

	fmt.Printf("McstID %v, %d members, leader %s\n\n", g.ID, len(g.Members), g.Members[0].Host.Name)
	for i, sw := range c.Net.Switches {
		mft := c.Accels[i].MFT(g.ID)
		if mft == nil {
			continue
		}
		fmt.Printf("%s  (mem %dB, ackOut=%d src=%v:%d aggAck=%d tri=%d)\n",
			sw.Name, mft.MemoryBytes(), mft.AckOutPort, mft.SrcIP, mft.SrcQP, mft.AggAckPSN, mft.TriPort)
		for _, e := range mft.Paths {
			peer := sw.Ports[e.Port].Peer.Dev.DeviceName()
			ack := "-" // no feedback on this path (e.g. the source-facing port)
			if e.AckPSN > -1<<62 {
				ack = fmt.Sprint(e.AckPSN)
			}
			if e.NextIsHost {
				fmt.Printf("  port %-3d -> host   %-12s bridge dst=%v qp=%d ackPSN=%s\n",
					e.Port, peer, e.DstIP, e.DstQP, ack)
			} else {
				fmt.Printf("  port %-3d -> switch %-12s ackPSN=%s\n", e.Port, peer, ack)
			}
		}
		fmt.Println()
	}
}
