// mcastsim runs a single multicast scenario from flags: pick a scheme, a
// topology, a group size, a message size and an optional loss rate, and get
// the job completion time plus transport/accelerator counters.
//
// Examples:
//
//	mcastsim -scheme cepheus -hosts 4 -group 4 -size 64M
//	mcastsim -scheme chain -fattree 8 -group 64 -size 128M -loss 1e-5
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	cepheus "repro"
	"repro/internal/exp"
	"repro/internal/roce"
)

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.Atoi(s)
	return n * mult, err
}

func main() {
	scheme := flag.String("scheme", "cepheus", "cepheus | binomial-tree | chain | increasing-ring | n-unicast | rdmc | long")
	hosts := flag.Int("hosts", 4, "testbed host count (ignored with -fattree)")
	fattree := flag.Int("fattree", 0, "build a k-ary fat-tree instead of the testbed")
	group := flag.Int("group", 4, "multicast group size (sender + receivers)")
	sizeStr := flag.String("size", "1M", "message size (supports K/M/G suffix)")
	slices := flag.Int("slices", 4, "chain slices / rdmc blocks")
	loss := flag.Float64("loss", 0, "random data loss rate at switches")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil || size <= 0 {
		log.Fatalf("bad -size %q", *sizeStr)
	}
	tr := roce.DefaultConfig()
	exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, 4096)
	opts := cepheus.Options{Seed: *seed, Transport: &tr}

	var c *cepheus.Cluster
	if *fattree > 0 {
		c = cepheus.NewFatTree(*fattree, opts)
	} else {
		if *hosts < *group {
			*hosts = *group
		}
		c = cepheus.NewTestbed(*hosts, opts)
	}
	if *group > c.Hosts() {
		log.Fatalf("group %d exceeds %d hosts", *group, c.Hosts())
	}
	nodes := make([]int, *group)
	for i := range nodes {
		nodes[i] = i
	}
	b, err := c.Broadcaster(cepheus.Scheme(*scheme), nodes, *slices)
	if err != nil {
		log.Fatal(err)
	}
	c.SetLossRate(*loss)
	jct, err := c.RunBcastErr(b, 0, size)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheme=%s group=%d size=%s cell=%dB loss=%g\n",
		b.Name(), *group, exp.FormatBytes(size), tr.MTU, *loss)
	fmt.Printf("JCT        %v\n", jct)
	fmt.Printf("goodput    %.2f Gbps (aggregate to %d receivers: %.2f Gbps)\n",
		float64(size)*8/jct.Seconds()/1e9,
		*group-1, float64(size)*float64(*group-1)*8/jct.Seconds()/1e9)
	var retrans, timeouts uint64
	for _, r := range c.RNICs[:*group] {
		retrans += r.Stats.Retransmits
		timeouts += r.Stats.Timeouts
	}
	fmt.Printf("drops=%d retransmits=%d timeouts=%d sender-acks=%d\n",
		c.TotalDrops(), retrans, timeouts, c.RNICs[0].Stats.AcksRecv)
}
