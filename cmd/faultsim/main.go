// faultsim runs scripted and seeded fail-stop fault scenarios against the
// Cepheus recovery pipeline and prints the timeline: fault transitions,
// scheme switches (native multicast → AMcast fallback → restored native),
// and the fabric/recovery counters the run ends with. Every run is
// deterministic in its seed.
//
// Usage:
//
//	faultsim                          # ToR crash mid-broadcast on the testbed
//	faultsim -scenario linkdown       # ToR→host access link dies mid-broadcast
//	faultsim -scenario chaos -events 8 -seed 3   # seeded storm on a leaf-spine
package main

import (
	"flag"
	"fmt"
	"os"

	cepheus "repro"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simnet"
)

var (
	scenario = flag.String("scenario", "crash", "crash|linkdown|chaos")
	seed     = flag.Int64("seed", 1, "simulation seed")
	size     = flag.Int("size", 64<<20, "bytes per broadcast")
	bcasts   = flag.Int("bcasts", 4, "broadcasts to complete")
	events   = flag.Int("events", 6, "chaos: fault episodes to inject")
	horizon  = flag.Duration("horizon", 0, "chaos: injection window (0: auto)")
	trace    = flag.String("trace", "", "write a flight-recorder trace (JSONL) to this file")
	tracecap = flag.Int("tracecap", 0, "flight-recorder capacity in events (0: default)")
	audit    = flag.Bool("audit", false, "run the online protocol auditor across the chaos; violations fail the run")
)

func main() {
	flag.Parse()
	switch *scenario {
	case "crash":
		run(cepheus.NewTestbed(4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// The ToR fail-stops 2ms into the run and restarts 6ms later
			// with its MFT wiped.
			tor := c.Net.Switches[0]
			in.CrashAt(c.Eng.Now()+2*sim.Millisecond, tor)
			in.RestartAt(c.Eng.Now()+8*sim.Millisecond, tor)
			return 0
		})
	case "linkdown":
		run(cepheus.NewTestbed(4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// The access link of the last member dies mid-broadcast and is
			// replaced 10ms later.
			link := in.HostLink(3)
			in.LinkDownAt(c.Eng.Now()+2*sim.Millisecond, link)
			in.LinkUpAt(c.Eng.Now()+12*sim.Millisecond, link)
			return 0
		})
	case "chaos":
		run(cepheus.NewLeafSpine(2, 2, 4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// Storm the fabric: leaf↔spine links and the spines themselves.
			var links []*simnet.Port
			for _, sw := range c.Net.Switches[:2] {
				for _, pt := range sw.Ports {
					if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
						links = append(links, pt)
					}
				}
			}
			h := sim.Time(*horizon)
			if h <= 0 {
				h = 40 * sim.Millisecond
			}
			plan := in.Chaos(fault.ChaosConfig{
				Seed: *seed, Horizon: h, Events: *events,
				MinDowntime: 2 * sim.Millisecond, MaxDowntime: 8 * sim.Millisecond,
				Links: links, Switches: c.Net.Switches[2:], FlapFraction: 0.25,
			})
			fmt.Printf("chaos plan (%d episodes):\n", len(plan))
			for _, ev := range plan {
				fmt.Printf("  %v\n", ev)
			}
			// Keep the workload running past the last repair.
			return c.Eng.Now() + h + 8*sim.Millisecond
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

// run drives resilient broadcasts while the scenario injects faults,
// printing the merged timeline. inject returns a minimum simulation time to
// keep broadcasting until (0: just complete -bcasts broadcasts).
func run(c *cepheus.Cluster, inject func(*cepheus.Cluster, *fault.Injector) sim.Time) {
	fmt.Printf("scenario=%s seed=%d size=%dB bcasts=%d hosts=%d switches=%d\n",
		*scenario, *seed, *size, *bcasts, c.Hosts(), len(c.Net.Switches))
	if *trace != "" {
		c.EnableTrace(*tracecap)
	}
	if *audit {
		c.EnableAudit()
	}

	members := make([]int, c.Hosts())
	for i := range members {
		members[i] = i
	}
	rg, err := c.NewResilientGroup(members, 0, cepheus.RecoveryOptions{
		Window:          500 * sim.Microsecond,
		ReprobeInterval: 2 * sim.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "registration failed: %v\n", err)
		os.Exit(1)
	}
	rg.OnEvent = func(ev string) { fmt.Printf("%12v  recovery: %s\n", c.Eng.Now(), ev) }

	in := fault.NewInjector(c.Net)
	in.OnEvent = func(ev fault.Event) { fmt.Printf("%12v  fault: %s %s\n", ev.At, ev.Kind, ev.Target) }
	minRuntime := inject(c, in)

	for i := 0; i < *bcasts || c.Eng.Now() < minRuntime; i++ {
		start := c.Eng.Now()
		mode := "native"
		if !rg.Native() {
			mode = "fallback"
		}
		done := false
		rg.Bcast(0, *size, func() { done = true })
		for !done {
			if !c.Eng.Step() || c.Eng.Now()-start > 60*sim.Second {
				fmt.Fprintf(os.Stderr, "broadcast %d wedged at t=%v (stats=%+v)\n", i, c.Eng.Now(), rg.Stats)
				os.Exit(1)
			}
		}
		fmt.Printf("%12v  bcast %d done: %v (started %s)\n", c.Eng.Now(), i, c.Eng.Now()-start, mode)
	}
	// Let the recovery pipeline settle (repairs drain, native restored).
	limit := c.Eng.Now() + 200*sim.Millisecond
	for !rg.Native() && c.Eng.Now() < limit && c.Eng.Step() {
	}

	fmt.Printf("\nfinal mode: native=%v\n", rg.Native())
	fmt.Printf("recovery: %+v\n", rg.Stats)
	printRecoverySpans(rg)
	fmt.Printf("fabric:   %s\n", c.Metrics())
	fmt.Printf("faults:   %+v\n", in.Stats)
	fmt.Printf("delivery latency (ns): %s\n", c.DeliveryLatency())
	fmt.Printf("queue depth (bytes):   %s\n", c.QueueDepth())
	if *trace != "" {
		if err := c.WriteTraceFile(*trace, true); err != nil {
			fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:    %s (%d events, %d lost)\n", *trace, len(c.Rec.Events()), c.Rec.Lost())
	}
	if *audit {
		c.Rec.Barrier() // flush the shard residue through the auditor
		fmt.Println(c.Aud.Verdict(c.Rec.ShardLost()))
		if !c.Aud.Clean() {
			c.Aud.Report(os.Stderr)
			os.Exit(1)
		}
	}
}

// printRecoverySpans summarizes every degrade episode: when the failure was
// detected, how long until the first AMcast fallback delivery was posted, and
// when native multicast was restored.
func printRecoverySpans(rg *cepheus.ResilientGroup) {
	spans := rg.RecoverySpans()
	fmt.Printf("recovery spans: %d episode(s)\n", len(spans))
	var nRestored int
	var sumFallback, sumDegraded sim.Time
	for i, s := range spans {
		line := fmt.Sprintf("  span %d: detect=%v", i, s.DetectAt)
		if s.FirstFallbackAt >= 0 {
			line += fmt.Sprintf(" first-fallback=+%v", s.FirstFallbackAt-s.DetectAt)
			sumFallback += s.FirstFallbackAt - s.DetectAt
		} else {
			line += " first-fallback=-"
		}
		if s.RestoreAt >= 0 {
			line += fmt.Sprintf(" restore=+%v", s.RestoreAt-s.DetectAt)
			nRestored++
			sumDegraded += s.Degraded()
		} else {
			line += " restore=- (still degraded)"
		}
		fmt.Printf("%s  [%s]\n", line, s.Reason)
	}
	if nRestored > 0 {
		fmt.Printf("  mean: detect->restore %v over %d restored episode(s)\n",
			sumDegraded/sim.Time(nRestored), nRestored)
	}
}
