// faultsim runs scripted and seeded fault scenarios against the Cepheus
// recovery pipeline and prints the timeline: fault transitions, scheme
// switches (native multicast → AMcast fallback → restored native), and the
// fabric/recovery counters the run ends with. Every run is deterministic in
// its seed.
//
// Usage:
//
//	faultsim                          # ToR crash mid-broadcast on the testbed
//	faultsim -scenario linkdown       # ToR→host access link dies mid-broadcast
//	faultsim -scenario chaos -events 8 -seed 3   # seeded fail-stop storm
//	faultsim -soak -episodes 24 -bench BENCH_pr6.json   # gray+fail-stop SLO soak
//	faultsim -soak -workers 4         # gray-only soak, partitioned (digest mode)
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	cepheus "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/simnet"
)

var (
	scenario = flag.String("scenario", "crash", "crash|linkdown|chaos")
	seed     = flag.Int64("seed", 1, "simulation seed")
	size     = flag.Int("size", 64<<20, "bytes per broadcast (soak default: 1MiB)")
	bcasts   = flag.Int("bcasts", 4, "broadcasts to complete")
	events   = flag.Int("events", 6, "chaos: fault episodes to inject")
	horizon  = flag.Duration("horizon", 0, "chaos/soak: injection window (0: auto)")
	trace    = flag.String("trace", "", "write a flight-recorder trace (JSONL) to this file")
	tracecap = flag.Int("tracecap", 0, "flight-recorder capacity in events (0: default)")
	audit    = flag.Bool("audit", false, "run the online protocol auditor; violations fail the run")
	soak     = flag.Bool("soak", false, "run the recovery-SLO soak (composed fail-stop + gray episodes)")
	episodes = flag.Int("episodes", 24, "soak: episodes to inject")
	workers  = flag.Int("workers", 0, "soak: PDES worker count for the gray-only digest mode (0: sequential composed soak)")
	bench    = flag.String("bench", "", "soak: write the per-episode SLO report as a JSON benchmark file")
	groups   = flag.Bool("groups", false, "enable per-group attribution; print the group table at the end of the run")
	slo      = flag.String("slo", "", "with -groups (implied): per-group SLO, p99=<dur>,goodput=<bytes/s>,drops=<frac>[,window=<dur>]; breaches fail the run")
)

// -slo parsed once in main; sloSet gates the evaluation path.
var (
	sloObj obs.SLOObjective
	sloWin obs.SLOWindows
	sloSet bool
)

// groupSetup turns per-group attribution on when -groups (or -slo) asks for
// it, declaring the -slo objective before any traffic. Fallback deliveries
// travel as unicast AMcast sends, so a degraded episode shows up in the group
// table as a delivery gap plus attributed drops, not as fallback goodput.
func groupSetup(c *cepheus.Cluster) {
	if !*groups {
		return
	}
	gs := c.EnableGroupStats(0)
	if sloSet {
		gs.SetDefaultObjective(sloObj)
	}
}

// groupVerdict prints the per-group attribution table — and, with -slo, the
// burn-rate report — at the end of a run. Any SLO breach fails the process.
func groupVerdict(c *cepheus.Cluster) {
	if !*groups {
		return
	}
	fmt.Println("groups:")
	reps := c.GroupReports()
	obs.WriteGroupTable(os.Stdout, reps)
	if sloSet && len(reps) > 0 {
		res := obs.EvalSLOs(reps, c.GroupStats().ObjectiveFor, sloWin)
		if obs.WriteSLOReport(os.Stdout, res) > 0 {
			fmt.Fprintf(os.Stderr, "SLO %s breached\n", sloObj)
			os.Exit(1)
		}
	}
}

func main() {
	flag.Parse()
	if *slo != "" {
		var err error
		if sloObj, sloWin, err = obs.ParseSLO(*slo); err != nil {
			fmt.Fprintf(os.Stderr, "-slo: %v\n", err)
			os.Exit(2)
		}
		sloSet = true
		*groups = true // an SLO is meaningless without attribution
	}
	if *soak {
		if *workers > 0 {
			runSoakPDES()
		} else {
			runSoak()
		}
		return
	}
	switch *scenario {
	case "crash":
		run(cepheus.NewTestbed(4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// The ToR fail-stops 2ms into the run and restarts 6ms later
			// with its MFT wiped.
			tor := c.Net.Switches[0]
			in.CrashAt(c.Eng.Now()+2*sim.Millisecond, tor)
			in.RestartAt(c.Eng.Now()+8*sim.Millisecond, tor)
			return 0
		})
	case "linkdown":
		run(cepheus.NewTestbed(4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// The access link of the last member dies mid-broadcast and is
			// replaced 10ms later.
			link := in.HostLink(3)
			in.LinkDownAt(c.Eng.Now()+2*sim.Millisecond, link)
			in.LinkUpAt(c.Eng.Now()+12*sim.Millisecond, link)
			return 0
		})
	case "chaos":
		run(cepheus.NewLeafSpine(2, 2, 4, cepheus.Options{Seed: *seed}), func(c *cepheus.Cluster, in *fault.Injector) sim.Time {
			// Storm the fabric: leaf↔spine links and the spines themselves.
			h := sim.Time(*horizon)
			if h <= 0 {
				h = 40 * sim.Millisecond
			}
			plan, err := in.Chaos(fault.ChaosConfig{
				Seed: *seed, Horizon: h, Events: *events,
				MinDowntime: 2 * sim.Millisecond, MaxDowntime: 8 * sim.Millisecond,
				Links: trunkLinks(c), Switches: c.Net.Switches[2:], FlapFraction: 0.25,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos config rejected: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("chaos plan (%d episodes):\n", len(plan))
			for _, ev := range plan {
				fmt.Printf("  %v\n", ev)
			}
			// Keep the workload running past the last repair.
			return c.Eng.Now() + h + 8*sim.Millisecond
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
}

// trunkLinks returns the leaf-side ports of every leaf↔spine link of a
// two-leaf leaf-spine cluster.
func trunkLinks(c *cepheus.Cluster) []*simnet.Port {
	var links []*simnet.Port
	for _, sw := range c.Net.Switches[:2] {
		for _, pt := range sw.Ports {
			if _, ok := pt.Peer.Dev.(*simnet.Switch); ok {
				links = append(links, pt)
			}
		}
	}
	return links
}

func hostNICs(c *cepheus.Cluster) []*simnet.Port {
	var nics []*simnet.Port
	for _, h := range c.Net.Hosts {
		nics = append(nics, h.NIC)
	}
	return nics
}

// soakSize returns the per-broadcast size for soak modes: 1MiB unless -size
// was given explicitly (64MiB broadcasts would stretch a 24-episode soak
// into minutes of simulated time for no extra coverage).
func soakSize() int {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "size" {
			set = true
		}
	})
	if set {
		return *size
	}
	return 1 << 20
}

// soakTransport is the RoCE config soak runs use: defaults plus exponential
// retransmission backoff, so a link that stays dead or heavily impaired for
// milliseconds decays to slow probing instead of a fixed-period retransmit
// storm.
func soakTransport() *roce.Config {
	cfg := roce.DefaultConfig()
	cfg.RetxBackoff = 2
	cfg.RetxBackoffMax = 8 * sim.Millisecond
	return &cfg
}

func soakHorizon() sim.Time {
	if h := sim.Time(*horizon); h > 0 {
		return h
	}
	h := sim.Time(*episodes) * 5 * sim.Millisecond
	if h < 40*sim.Millisecond {
		h = 40 * sim.Millisecond
	}
	return h
}

// soakHorizonPDES is the digest-mode injection window: the PDES soak keeps
// the broadcast pipeline saturated across the whole window (so every episode
// overlaps live traffic) and exports the complete trace for byte comparison,
// so the window must stay small enough for the flight-recorder ring.
func soakHorizonPDES() sim.Time {
	if h := sim.Time(*horizon); h > 0 {
		return h
	}
	h := sim.Time(*episodes) * 500 * sim.Microsecond
	if h < 10*sim.Millisecond {
		h = 10 * sim.Millisecond
	}
	return h
}

// soakConfig assembles the episode schedule parameters shared by both soak
// modes. grayOnly drops the fail-stop candidates (PDES runs cannot flip
// both ends of a link mid-run).
func soakConfig(c *cepheus.Cluster, grayOnly bool, h sim.Time) fault.SoakConfig {
	cfg := fault.SoakConfig{
		Seed: *seed, Episodes: *episodes, Horizon: h,
		MinDuration: 2 * sim.Millisecond, MaxDuration: 8 * sim.Millisecond,
		GrayLinks: append(trunkLinks(c), hostNICs(c)...),
	}
	if !grayOnly {
		cfg.FailStopLinks = trunkLinks(c)
		cfg.Switches = c.Net.Switches[2:]
	}
	return cfg
}

func printPlan(plan []fault.Episode) {
	fmt.Printf("soak plan (%d episodes):\n", len(plan))
	for _, ep := range plan {
		fmt.Printf("  ep %2d: %-12s %-22s [%v, %v)\n", ep.Index, ep.Kind, ep.Target, ep.Start, ep.End)
	}
}

func printSLO(report *fault.SLOReport) {
	fmt.Println("soak slo:")
	fmt.Println(report.String())
	for _, slo := range report.PerEpisode {
		line := fmt.Sprintf("soak episode %2d %-12s %-22s goodput=%d", slo.Index, slo.Kind, slo.Target, slo.GoodputBytes)
		if slo.Detected {
			line += fmt.Sprintf(" detect=+%d gap=%d restore=%d", int64(slo.DetectLatency), int64(slo.DeliveryGap), int64(slo.TimeToRestore))
		}
		fmt.Println(line)
	}
}

// benchRow is one record of the BENCH JSON report.
type benchRow struct {
	Experiment string `json:"experiment"`
	Case       string `json:"case"`

	Kind    string `json:"kind,omitempty"`
	Target  string `json:"target,omitempty"`
	StartNs int64  `json:"start_ns,omitempty"`
	EndNs   int64  `json:"end_ns,omitempty"`

	Detected        bool  `json:"detected,omitempty"`
	DetectLatencyNs int64 `json:"detect_latency_ns,omitempty"`
	DeliveryGapNs   int64 `json:"delivery_gap_ns,omitempty"`
	TimeToRestoreNs int64 `json:"time_to_restore_ns,omitempty"`
	GoodputBytes    int64 `json:"goodput_bytes,omitempty"`

	Episodes     int   `json:"episodes,omitempty"`
	DetectedN    int   `json:"detected_n,omitempty"`
	RestoredN    int   `json:"restored_n,omitempty"`
	Marks        int   `json:"marks,omitempty"`
	Unattributed int   `json:"unattributed,omitempty"`
	DetectP50Ns  int64 `json:"detect_p50_ns,omitempty"`
	DetectP99Ns  int64 `json:"detect_p99_ns,omitempty"`
	GapP50Ns     int64 `json:"gap_p50_ns,omitempty"`
	GapP99Ns     int64 `json:"gap_p99_ns,omitempty"`
	RestoreP50Ns int64 `json:"restore_p50_ns,omitempty"`
	RestoreP99Ns int64 `json:"restore_p99_ns,omitempty"`

	ImpairDrops    uint64 `json:"impair_drops,omitempty"`
	CorruptDrops   uint64 `json:"corrupt_drops,omitempty"`
	CtrlStormDrops uint64 `json:"ctrl_storm_drops,omitempty"`
	FaultDrops     uint64 `json:"fault_drops,omitempty"`
	AuditClean     bool   `json:"audit_clean,omitempty"`
}

func writeBench(path string, report *fault.SLOReport, m cepheus.Metrics, auditClean bool) {
	rows := make([]benchRow, 0, len(report.PerEpisode)+1)
	for _, slo := range report.PerEpisode {
		rows = append(rows, benchRow{
			Experiment: "chaos-soak", Case: fmt.Sprintf("episode-%02d", slo.Index),
			Kind: string(slo.Kind), Target: slo.Target,
			StartNs: int64(slo.Start), EndNs: int64(slo.End),
			Detected:        slo.Detected,
			DetectLatencyNs: int64(slo.DetectLatency),
			DeliveryGapNs:   int64(slo.DeliveryGap),
			TimeToRestoreNs: int64(slo.TimeToRestore),
			GoodputBytes:    slo.GoodputBytes,
		})
	}
	rows = append(rows, benchRow{
		Experiment: "chaos-soak", Case: "summary",
		Episodes: report.Episodes, DetectedN: report.Detected, RestoredN: report.Restored,
		Marks: report.Marks, Unattributed: report.Unattributed,
		DetectP50Ns: int64(report.DetectP50), DetectP99Ns: int64(report.DetectP99),
		GapP50Ns: int64(report.GapP50), GapP99Ns: int64(report.GapP99),
		RestoreP50Ns: int64(report.RestoreP50), RestoreP99Ns: int64(report.RestoreP99),
		ImpairDrops: m.ImpairDrops, CorruptDrops: m.CorruptDrops,
		CtrlStormDrops: m.CtrlStormDrops, FaultDrops: m.FaultDrops,
		AuditClean: auditClean,
	})
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench encode failed: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0644); err != nil {
		fmt.Fprintf(os.Stderr, "bench write failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench:    %s (%d rows)\n", path, len(rows))
}

// runSoak is the sequential composed soak: fail-stop and gray episodes
// against the full recovery pipeline, reduced to per-episode recovery SLOs.
func runSoak() {
	c := cepheus.NewLeafSpine(2, 2, 4, cepheus.Options{Seed: *seed, Transport: soakTransport()})
	if *audit {
		c.EnableAudit()
	}
	groupSetup(c)
	sz := soakSize()
	h := soakHorizon()
	fmt.Printf("soak seed=%d episodes=%d horizon=%v size=%dB hosts=%d\n", *seed, *episodes, h, sz, c.Hosts())

	members := make([]int, c.Hosts())
	for i := range members {
		members[i] = i
	}
	rg, err := c.NewResilientGroup(members, 0, cepheus.RecoveryOptions{
		Window:          500 * sim.Microsecond,
		ReprobeInterval: 2 * sim.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "registration failed: %v\n", err)
		os.Exit(1)
	}
	rg.OnEvent = func(ev string) { fmt.Printf("%12v  recovery: %s\n", c.Eng.Now(), ev) }

	in := fault.NewInjector(c.Net)
	in.OnEvent = func(ev fault.Event) { fmt.Printf("%12v  fault: %s %s\n", ev.At, ev.Kind, ev.Target) }
	plan, err := in.Soak(soakConfig(c, false, h))
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak config rejected: %v\n", err)
		os.Exit(2)
	}
	printPlan(plan)

	// Goodput per episode is sampled live at each episode boundary (the
	// flight recorder is a bounded ring, so a long soak's early history is
	// not reliably in it). Fallback QPs created mid-run are enumerated by
	// EachQP at sample time, so degraded-mode delivery counts too.
	sumGoodput := func() uint64 {
		var t uint64
		for _, r := range c.RNICs {
			r.EachQP(func(qp *roce.QP) { t += qp.GoodputBytes })
		}
		return t
	}
	gpStart := make([]uint64, len(plan))
	gpEnd := make([]uint64, len(plan))
	for i := range plan {
		i := i
		c.Eng.Schedule(plan[i].Start, func() { gpStart[i] = sumGoodput() })
		c.Eng.Schedule(plan[i].End, func() { gpEnd[i] = sumGoodput() })
	}

	minRuntime := c.Eng.Now() + h + 20*sim.Millisecond
	for i := 0; c.Eng.Now() < minRuntime; i++ {
		start := c.Eng.Now()
		done := false
		rg.Bcast(0, sz, func() { done = true })
		for !done {
			if !c.Eng.Step() || c.Eng.Now()-start > 60*sim.Second {
				fmt.Fprintf(os.Stderr, "broadcast %d wedged at t=%v (stats=%+v)\n", i, c.Eng.Now(), rg.Stats)
				os.Exit(1)
			}
		}
	}
	// Let the pipeline settle so the final span gets its restore timestamp.
	limit := c.Eng.Now() + 200*sim.Millisecond
	for !rg.Native() && c.Eng.Now() < limit && c.Eng.Step() {
	}

	var marks []fault.RecoveryMark
	for _, s := range rg.RecoverySpans() {
		marks = append(marks, fault.RecoveryMark{
			Reason: s.Reason, DetectAt: s.DetectAt,
			FirstFallbackAt: s.FirstFallbackAt, RestoreAt: s.RestoreAt,
		})
	}
	report := fault.ComputeSLO(plan, marks)
	for i := range report.PerEpisode {
		report.PerEpisode[i].GoodputBytes = int64(gpEnd[i] - gpStart[i])
	}
	printSLO(report)
	fmt.Printf("final mode: native=%v\n", rg.Native())
	fmt.Printf("recovery: %+v\n", rg.Stats)
	fmt.Printf("fabric:   %s\n", c.Metrics())
	fmt.Printf("faults:   %+v\n", in.Stats)
	groupVerdict(c)

	auditClean := true
	if *audit {
		c.Rec.Barrier()
		fmt.Println(c.Aud.Verdict(c.Rec.ShardLost()))
		auditClean = c.Aud.Clean()
	}
	if *bench != "" {
		writeBench(*bench, report, c.Metrics(), auditClean)
	}
	if !auditClean {
		c.Aud.Report(os.Stderr)
		os.Exit(1)
	}
}

// runSoakPDES is the partitioned gray-only soak: the same seeded schedule
// restricted to PDES-safe impairments, run at -workers worker threads. Its
// trace digest and SLO report are byte-identical at every worker count —
// the property the chaos-soak CI job diffs.
func runSoakPDES() {
	c := cepheus.NewLeafSpine(2, 2, 4, cepheus.Options{
		Seed: *seed, Workers: *workers, Partition: true, Transport: soakTransport(),
	})
	defer c.Close()
	cap := *tracecap
	if cap == 0 {
		cap = 1 << 22 // the digest compares the full window; default ring is too small
	}
	rec := c.EnableTrace(cap)
	if *audit {
		c.EnableAudit()
	}
	groupSetup(c)
	sz := soakSize()
	h := soakHorizonPDES()
	fmt.Printf("soak(pdes) seed=%d workers=%d episodes=%d horizon=%v size=%dB\n", *seed, *workers, *episodes, h, sz)

	in := fault.NewInjector(c.Net)
	plan, err := in.Soak(soakConfig(c, true, h))
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak config rejected: %v\n", err)
		os.Exit(2)
	}

	members := make([]int, c.Hosts())
	for i := range members {
		members[i] = i
	}
	b, err := c.Broadcaster(cepheus.SchemeCepheus, members, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "registration failed: %v\n", err)
		os.Exit(1)
	}
	// Broadcast back-to-back until the injection window closes (at least
	// -bcasts of them), so every episode overlaps live traffic. The loop
	// bound is the root's LP-local virtual clock — identical at every worker
	// count (the cluster-wide engine is nil under the partitioned coordinator).
	rootClock := c.Net.Hosts[0].Engine()
	for i := 0; i < *bcasts || rootClock.Now() < h; i++ {
		if _, err := c.RunBcastErr(b, 0, sz); err != nil {
			fmt.Fprintf(os.Stderr, "broadcast %d failed: %v\n", i, err)
			os.Exit(1)
		}
	}
	cut := h + 20*sim.Millisecond
	c.SettleUntil(cut)
	evs := rec.EventsUntil(cut)
	if rec.Lost() != 0 {
		fmt.Fprintf(os.Stderr, "flight recorder overflowed (lost %d); raise -tracecap\n", rec.Lost())
		os.Exit(1)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf, evs); err != nil {
		fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("soak digest: %x\n", sha256.Sum256(buf.Bytes()))

	report := fault.ComputeSLO(plan, nil)
	fault.AttachGoodput(report.PerEpisode, evs)
	printSLO(report)
	groupVerdict(c)

	if *audit {
		rec.Barrier()
		fmt.Println(c.Aud.Verdict(rec.ShardLost()))
		if !c.Aud.Clean() {
			c.Aud.Report(os.Stderr)
			os.Exit(1)
		}
	}
}

// run drives resilient broadcasts while the scenario injects faults,
// printing the merged timeline. inject returns a minimum simulation time to
// keep broadcasting until (0: just complete -bcasts broadcasts).
func run(c *cepheus.Cluster, inject func(*cepheus.Cluster, *fault.Injector) sim.Time) {
	fmt.Printf("scenario=%s seed=%d size=%dB bcasts=%d hosts=%d switches=%d\n",
		*scenario, *seed, *size, *bcasts, c.Hosts(), len(c.Net.Switches))
	if *trace != "" {
		c.EnableTrace(*tracecap)
	}
	if *audit {
		c.EnableAudit()
	}
	groupSetup(c)

	members := make([]int, c.Hosts())
	for i := range members {
		members[i] = i
	}
	rg, err := c.NewResilientGroup(members, 0, cepheus.RecoveryOptions{
		Window:          500 * sim.Microsecond,
		ReprobeInterval: 2 * sim.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "registration failed: %v\n", err)
		os.Exit(1)
	}
	rg.OnEvent = func(ev string) { fmt.Printf("%12v  recovery: %s\n", c.Eng.Now(), ev) }

	in := fault.NewInjector(c.Net)
	in.OnEvent = func(ev fault.Event) { fmt.Printf("%12v  fault: %s %s\n", ev.At, ev.Kind, ev.Target) }
	minRuntime := inject(c, in)

	for i := 0; i < *bcasts || c.Eng.Now() < minRuntime; i++ {
		start := c.Eng.Now()
		mode := "native"
		if !rg.Native() {
			mode = "fallback"
		}
		done := false
		rg.Bcast(0, *size, func() { done = true })
		for !done {
			if !c.Eng.Step() || c.Eng.Now()-start > 60*sim.Second {
				fmt.Fprintf(os.Stderr, "broadcast %d wedged at t=%v (stats=%+v)\n", i, c.Eng.Now(), rg.Stats)
				os.Exit(1)
			}
		}
		fmt.Printf("%12v  bcast %d done: %v (started %s)\n", c.Eng.Now(), i, c.Eng.Now()-start, mode)
	}
	// Let the recovery pipeline settle (repairs drain, native restored).
	limit := c.Eng.Now() + 200*sim.Millisecond
	for !rg.Native() && c.Eng.Now() < limit && c.Eng.Step() {
	}

	fmt.Printf("\nfinal mode: native=%v\n", rg.Native())
	fmt.Printf("recovery: %+v\n", rg.Stats)
	printRecoverySpans(rg)
	fmt.Printf("fabric:   %s\n", c.Metrics())
	fmt.Printf("faults:   %+v\n", in.Stats)
	fmt.Printf("delivery latency (ns): %s\n", c.DeliveryLatency())
	fmt.Printf("queue depth (bytes):   %s\n", c.QueueDepth())
	groupVerdict(c)
	if *trace != "" {
		if err := c.WriteTraceFile(*trace, true); err != nil {
			fmt.Fprintf(os.Stderr, "trace export failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:    %s (%d events, %d lost)\n", *trace, len(c.Rec.Events()), c.Rec.Lost())
	}
	if *audit {
		c.Rec.Barrier() // flush the shard residue through the auditor
		fmt.Println(c.Aud.Verdict(c.Rec.ShardLost()))
		if !c.Aud.Clean() {
			c.Aud.Report(os.Stderr)
			os.Exit(1)
		}
	}
}

// printRecoverySpans summarizes every degrade episode: when the failure was
// detected, how long until the first AMcast fallback delivery was posted, and
// when native multicast was restored.
func printRecoverySpans(rg *cepheus.ResilientGroup) {
	spans := rg.RecoverySpans()
	fmt.Printf("recovery spans: %d episode(s)\n", len(spans))
	var nRestored int
	var sumFallback, sumDegraded sim.Time
	for i, s := range spans {
		line := fmt.Sprintf("  span %d: detect=%v", i, s.DetectAt)
		if s.FirstFallbackAt >= 0 {
			line += fmt.Sprintf(" first-fallback=+%v", s.FirstFallbackAt-s.DetectAt)
			sumFallback += s.FirstFallbackAt - s.DetectAt
		} else {
			line += " first-fallback=-"
		}
		if s.RestoreAt >= 0 {
			line += fmt.Sprintf(" restore=+%v", s.RestoreAt-s.DetectAt)
			nRestored++
			sumDegraded += s.Degraded()
		} else {
			line += " restore=- (still degraded)"
		}
		fmt.Printf("%s  [%s]\n", line, s.Reason)
	}
	if nRestored > 0 {
		fmt.Printf("  mean: detect->restore %v over %d restored episode(s)\n",
			sumDegraded/sim.Time(nRestored), nRestored)
	}
}
