// cepheus-bench regenerates every table and figure from the paper's
// evaluation (§V): Fig 1d, Fig 7b, Fig 8, Fig 9, the RDMC comparison,
// Table I, Fig 10, Fig 11 (+ the large-scale HPL model), Fig 12, Fig 13,
// Fig 14, and the §V-D safeguard fallback. Absolute numbers come from the
// simulator; the shapes (who wins, by what factor, where crossovers fall)
// are the reproduction targets recorded in EXPERIMENTS.md.
//
// Usage:
//
//	cepheus-bench                 # run everything except the slowest sweeps
//	cepheus-bench -only fig8      # one experiment
//	cepheus-bench -full           # include the full Fig 12/13 sweeps
//	cepheus-bench -name pr3       # also write BENCH_pr3.json for the perf trajectory
//	cepheus-bench -only pdes -cpuprofile cpu.pb.gz   # profile the parallel executor
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	cepheus "repro"
	"repro/internal/amcast"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/hpl"
	"repro/internal/obs"
	"repro/internal/ps"
	"repro/internal/roce"
	"repro/internal/sim"
	"repro/internal/storage"
)

var (
	full       = flag.Bool("full", false, "run the full-size Fig 12/13 sweeps (slow)")
	jsonOut    = flag.String("json", "", "write machine-readable results (one record per broadcast) to this file")
	benchName  = flag.String("name", "", "also write results to BENCH_<name>.json, the machine-tracked perf trajectory")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	traceOut   = flag.String("trace", "", "record a flight-recorder trace and write it (JSONL) here; with several broadcasts the last one wins, so combine with -only")
	traceCap   = flag.Int("tracecap", 0, "flight-recorder capacity in events (0: default)")
	failOver   = flag.Float64("failover", 0, "traceov: exit nonzero if tracing costs more than this fraction of events/s (e.g. 0.10)")
	auditOn    = flag.Bool("audit", false, "run the online protocol auditor on every broadcast; violations fail the run")
	seriesOut  = flag.String("series", "", "fig14: sample per-flow DCQCN rates and queue depths, write the time series (CSV) here")
	pdesProf   = flag.String("pdesprof", "", "pdes/scale1024: profile the parallel executor per worker row and write the reports (JSON, cepheus-trace pdes renders them) here")
	profOver   = flag.Float64("profover", 0, "profov: exit nonzero if executor profiling costs more than this fraction of events/s (e.g. 0.03)")
	groupsOn   = flag.Bool("groups", false, "enable per-group attribution; print the group table after each broadcast")
	sloSpec    = flag.String("slo", "", "with -groups (implied): per-group SLO, p99=<dur>,goodput=<bytes/s>,drops=<frac>[,window=<dur>]; breaches fail the run")
	gsOver     = flag.Float64("gsover", 0, "gsov: exit nonzero if group attribution costs more than this fraction of events/s (e.g. 0.03)")
)

// -slo parsed once at startup; sloSet gates the evaluation paths.
var (
	sloObj obs.SLOObjective
	sloWin obs.SLOWindows
	sloSet bool
)

// benchRecord is one broadcast's machine-readable result, written by -json so
// successive runs can be tracked as a BENCH_*.json trajectory.
type benchRecord struct {
	Experiment   string  `json:"experiment"`
	Case         string  `json:"case"`
	JCTNs        int64   `json:"jct_ns,omitempty"`
	EventsRun    uint64  `json:"events_run,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs,omitempty"`

	// Delivery-latency quantiles (requester emission to in-order responder
	// acceptance) and the deepest egress queue, from the always-on
	// histograms. Omitted when the experiment measures throughput only
	// (traceov/profov rows carry no broadcast-level results).
	P50LatencyNs  int64 `json:"p50_latency_ns,omitempty"`
	P99LatencyNs  int64 `json:"p99_latency_ns,omitempty"`
	P999LatencyNs int64 `json:"p999_latency_ns,omitempty"`
	MaxQueueBytes int64 `json:"max_queue_bytes,omitempty"`

	// OverheadPct is the events/s cost of the measured instrumentation,
	// set only on traceov/profov "on" rows.
	OverheadPct float64 `json:"overhead_pct,omitempty"`

	// Executor stall breakdown from -pdesprof (parallel sweep rows only):
	// the fraction of worker time spent executing events, and the dominant
	// non-exec phase with its share of total stall time.
	ExecPct    float64 `json:"exec_pct,omitempty"`
	StallPhase string  `json:"stall_phase,omitempty"`
	StallPct   float64 `json:"stall_pct,omitempty"`

	// Host provenance, stamped on the leading {"experiment":"meta"} record
	// so a BENCH_*.json trajectory records what machine produced each point.
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`

	// Fairness columns (fairness experiment): the sweep-point summary row
	// carries the cross-group indices; per-group rows carry each group's own
	// goodput and delivery p99 (in P99LatencyNs). GroupID is a pointer so
	// group 0 survives omitempty.
	Groups          int     `json:"groups,omitempty"`
	JainIndex       float64 `json:"jain_index,omitempty"`
	MaxMinRatio     float64 `json:"maxmin_ratio,omitempty"`
	P99IsolationGap float64 `json:"p99_isolation_gap,omitempty"`
	GroupID         *int    `json:"group_id,omitempty"`
	GoodputBytes    int64   `json:"goodput_bytes,omitempty"`
}

var (
	records []benchRecord
	curExp  string // experiment currently running, for record attribution
)

// pdesProfEntry is one profiled sweep row in the -pdesprof output file —
// the unit cepheus-trace pdes renders.
type pdesProfEntry struct {
	Experiment string          `json:"experiment"`
	Workers    int             `json:"workers"`
	Report     *obs.ExecReport `json:"report"`
}

var profEntries []pdesProfEntry

func main() {
	only := flag.String("only", "", "comma-separated experiments to run: fig1d|fig7b|fig8|fig9|rdmc|table1|fig10|fig11|hpl-large|fig12|fig13|fig14|safeguard|reduce|pstrain|pdes|scale1024|fairness|traceov|profov|gsov")
	flag.Parse()
	os.Exit(run(*only))
}

// exitCode lets experiments (traceov's overhead gate) fail the process after
// profiles and JSON are still written.
var exitCode int

// run holds main's body so deferred profile writers fire before os.Exit.
func run(only string) int {
	if *sloSpec != "" {
		var err error
		if sloObj, sloWin, err = obs.ParseSLO(*sloSpec); err != nil {
			fmt.Fprintf(os.Stderr, "-slo: %v\n", err)
			return 2
		}
		sloSet = true
		*groupsOn = true // an SLO is meaningless without attribution
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	all := []struct {
		name string
		run  func()
	}{
		{"fig1d", fig1d}, {"fig7b", fig7b}, {"fig8", fig8}, {"fig9", fig9},
		{"rdmc", rdmc}, {"table1", table1}, {"fig10", fig10}, {"fig11", fig11},
		{"hpl-large", hplLarge}, {"fig12", fig12}, {"fig13", fig13},
		{"fig14", fig14}, {"safeguard", safeguard},
		{"reduce", reduceExt}, {"pstrain", psTrain}, {"pdes", pdes},
		{"scale1024", scale1024}, {"fairness", fairness},
		{"traceov", traceov}, {"profov", profov}, {"gsov", gsov},
	}
	want := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		if n = strings.ToLower(strings.TrimSpace(n)); n != "" {
			want[n] = true
		}
	}
	selective := len(want) > 0
	ran := false
	for _, e := range all {
		if selective && !want[e.name] {
			continue
		}
		if (e.name == "traceov" || e.name == "profov" || e.name == "gsov") && !selective {
			continue // overhead gates only run when asked for
		}
		curExp = e.name
		e.run()
		fmt.Println()
		ran = true
		delete(want, e.name)
	}
	if !ran || len(want) > 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", only)
		return 2
	}
	paths := []string{}
	if *jsonOut != "" {
		paths = append(paths, *jsonOut)
	}
	if *benchName != "" {
		paths = append(paths, "BENCH_"+*benchName+".json")
	}
	if len(paths) > 0 {
		// Lead the trajectory with host provenance: perf numbers are only
		// comparable against points from a known machine shape.
		records = append([]benchRecord{{
			Experiment: "meta", Case: "host",
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		}}, records...)
	}
	for _, path := range paths {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			return 1
		}
	}
	if *pdesProf != "" {
		buf, err := json.MarshalIndent(profEntries, "", "  ")
		if err == nil {
			err = os.WriteFile(*pdesProf, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *pdesProf, err)
			return 1
		}
		fmt.Printf("executor profiles: %d rows -> %s (render with: cepheus-trace pdes %s)\n",
			len(profEntries), *pdesProf, *pdesProf)
	}
	return exitCode
}

// auditVerdict drains the recorder through the auditor and prints its
// verdict; a dirty audit dumps the violations and fails the run.
func auditVerdict(c *cepheus.Cluster, label string) {
	if c.Aud == nil {
		return
	}
	c.Rec.Barrier()
	fmt.Printf("%s: %s\n", label, c.Aud.Verdict(c.Rec.ShardLost()))
	if !c.Aud.Clean() {
		c.Aud.Report(os.Stderr)
		exitCode = 1
	}
}

// enableGroups turns per-group attribution on when -groups (or -slo) asks
// for it, declaring the -slo objective before any traffic so the
// delivery-latency threshold latches on every group's first packet.
func enableGroups(c *cepheus.Cluster) {
	if !*groupsOn {
		return
	}
	gs := c.EnableGroupStats(0)
	if sloSet {
		gs.SetDefaultObjective(sloObj)
	}
}

// groupVerdict prints the per-group attribution table — and, with -slo, the
// burn-rate report — after an experiment that ran with -groups. Any SLO
// breach fails the run.
func groupVerdict(c *cepheus.Cluster, label string) {
	if !*groupsOn {
		return
	}
	reps := c.GroupReports()
	if len(reps) == 0 {
		return
	}
	fmt.Printf("== groups: %s ==\n", label)
	obs.WriteGroupTable(os.Stdout, reps)
	if sloSet {
		res := obs.EvalSLOs(reps, c.GroupStats().ObjectiveFor, sloWin)
		if obs.WriteSLOReport(os.Stdout, res) > 0 {
			fmt.Fprintf(os.Stderr, "%s: SLO %s breached\n", label, sloObj)
			exitCode = 1
		}
	}
}

// bcastReps is how many timed repetitions runBcast takes per record, keeping
// the best events/s. Simulated results are deterministic — every repetition
// completes in the same JCT (event counts can differ by a handful of
// post-completion drain events, as the drive loop stops at a slightly
// different point each rep) — so repeating only filters host scheduler
// noise out of the wall-clock metric. Sweeps that compare rows against each
// other (workerSweep's speedup column) raise it; one-shot experiments keep
// the default.
var bcastReps = 1

// runBcast drives one broadcast (bcastReps timed repetitions, best kept),
// records its result for -json, and converts a stalled run into a clean CLI
// failure instead of a panic.
func runBcast(c *cepheus.Cluster, b amcast.Broadcaster, root, size int, label string) float64 {
	if *traceOut != "" {
		c.EnableTrace(*traceCap)
	}
	if *auditOn {
		c.EnableAudit()
	}
	enableGroups(c)
	var rec benchRecord
	for rep := 0; rep < bcastReps; rep++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ev0 := c.EventsRun()
		t0 := time.Now()
		jct, err := c.RunBcastErr(b, root, size)
		wall := time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s: %v\n", curExp, label, err)
			os.Exit(1)
		}
		runtime.ReadMemStats(&m1)
		ev := c.EventsRun() - ev0
		eps := 0.0
		if s := wall.Seconds(); s > 0 {
			eps = float64(ev) / s
		}
		if rep == 0 || eps > rec.EventsPerSec {
			rec = benchRecord{
				Experiment: curExp, Case: label, JCTNs: int64(jct),
				EventsRun: ev, EventsPerSec: eps, Allocs: m1.Mallocs - m0.Mallocs,
			}
		}
	}
	// Per-message latency (first packet emitted to last packet accepted at
	// each receiver), not per-packet transit: packet transit is a constant
	// on an uncongested paced fabric and collapses every percentile to the
	// same value.
	lat, qd := c.MessageLatency(), c.QueueDepth()
	rec.P50LatencyNs, rec.P99LatencyNs, rec.P999LatencyNs = lat.P50, lat.P99, lat.P999
	rec.MaxQueueBytes = qd.Max
	records = append(records, rec)
	if *traceOut != "" {
		if err := c.WriteTraceFile(*traceOut, true); err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s: trace export: %v\n", curExp, label, err)
			os.Exit(1)
		}
	}
	auditVerdict(c, label)
	groupVerdict(c, label)
	return float64(rec.JCTNs)
}

func testbedJCT(scheme cepheus.Scheme, size, cellCap int) float64 {
	tr := roce.DefaultConfig()
	if cellCap > 0 {
		exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, cellCap)
	}
	c := cepheus.NewTestbed(4, cepheus.Options{Transport: &tr})
	b, err := c.Broadcaster(scheme, []int{0, 1, 2, 3}, 4)
	if err != nil {
		panic(err)
	}
	return runBcast(c, b, 0, size, fmt.Sprintf("testbed/%s/%s", scheme, exp.FormatBytes(size)))
}

func fig1d() {
	t := exp.NewTable("Fig 1d: 1-to-4 multicast analysis",
		"scheme", "total hops", "sender copies", "stack traversals", "steps")
	for _, r := range amcast.AnalyzeFig1d(4, 2) {
		t.Add(r.Scheme, fmt.Sprint(r.TotalHops), fmt.Sprint(r.SenderCopies),
			fmt.Sprint(r.StackTraversals), fmt.Sprint(r.Steps))
	}
	fmt.Print(t)
}

func fig7b() {
	per := core.MaxMemoryBytes(64)
	t := exp.NewTable("Fig 7b: MFT memory model", "quantity", "bytes")
	t.Add("one group, 64-port switch", fmt.Sprint(per))
	t.Add("1K groups per switch", fmt.Sprint(1000*per))
	t.Add("paper bound", "~690000 (0.69MB)")
	fmt.Print(t)
}

func sweep(title string, sizes []int, cellCap int, unit float64, unitName string) {
	t := exp.NewTable(title, "size",
		"cepheus("+unitName+")", "chain("+unitName+")", "bt("+unitName+")", "vs chain", "vs bt")
	for _, size := range sizes {
		ceph := testbedJCT(cepheus.SchemeCepheus, size, cellCap)
		chain := testbedJCT(cepheus.SchemeChain, size, cellCap)
		bt := testbedJCT(cepheus.SchemeBinomial, size, cellCap)
		t.Add(exp.FormatBytes(size),
			fmt.Sprintf("%.2f", ceph/unit), fmt.Sprintf("%.2f", chain/unit),
			fmt.Sprintf("%.2f", bt/unit),
			fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
	}
	fmt.Print(t)
}

func fig8() {
	sweep("Fig 8: MPI-Bcast JCT, small messages (paper: 3-5.2x vs chain, 2.5-3.5x vs BT)",
		[]int{64, 512, 4 << 10, 64 << 10}, 0, 1e3, "us")
}

func fig9() {
	sweep("Fig 9: MPI-Bcast JCT, large messages (paper: 1.3-2.8x vs chain, 2-2.8x vs BT)",
		[]int{1 << 20, 16 << 20, 128 << 20, 512 << 20}, 4096, 1e6, "ms")
}

func rdmc() {
	const size = 256 << 20
	ceph := testbedJCT(cepheus.SchemeCepheus, size, 4096)
	r := testbedJCT(cepheus.SchemeRDMC, size, 4096)
	t := exp.NewTable("§V-A: 256MB multicast vs RDMC", "scheme", "JCT(ms)", "paper(ms)")
	t.Add("cepheus", fmt.Sprintf("%.1f", ceph/1e6), "24.4")
	t.Add("rdmc", fmt.Sprintf("%.1f", r/1e6), "~35")
	fmt.Print(t)
}

func table1() {
	paper := map[storage.Mode]string{
		storage.Unicast1: "1.188", storage.UnicastN: "0.413", storage.CepheusWrite: "1.167",
	}
	t := exp.NewTable("Table I: replication writing throughput, 8KB IOs",
		"scheme", "IOPS(M)", "paper(M)")
	for _, mode := range []storage.Mode{storage.Unicast1, storage.UnicastN, storage.CepheusWrite} {
		core.ResetMcstIDs()
		c := storage.NewCluster(sim.New(1), mode, storage.DefaultConfig())
		t.Add(mode.String(), fmt.Sprintf("%.3f", c.RunIOPS(8<<10, 64, 20*sim.Millisecond)/1e6), paper[mode])
	}
	fmt.Print(t)
}

func fig10() {
	t := exp.NewTable("Fig 10: single IO latency",
		"IO size", "1-unicast", "3-unicasts", "cepheus", "cepheus vs 3-unicasts")
	for _, size := range []int{4 << 10, 8 << 10, 64 << 10, 256 << 10, 512 << 10} {
		lat := func(m storage.Mode) sim.Time {
			core.ResetMcstIDs()
			return storage.NewCluster(sim.New(1), m, storage.DefaultConfig()).MeasureLatency(size, 10)
		}
		u1, u3, ceph := lat(storage.Unicast1), lat(storage.UnicastN), lat(storage.CepheusWrite)
		t.Add(exp.FormatBytes(size), u1.String(), u3.String(), ceph.String(),
			fmt.Sprintf("-%.0f%%", 100*(1-float64(ceph)/float64(u3))))
	}
	fmt.Print(t)
}

func fig11() {
	run := func(p, q int, pb, rs hpl.Alg) hpl.Result {
		core.ResetMcstIDs()
		return hpl.NewTestbedCluster(sim.New(1), hpl.DefaultTestbedConfig(p, q), pb, rs).Run()
	}
	basePB := run(1, 4, hpl.AlgRing, hpl.AlgLong)
	accelPB := run(1, 4, hpl.AlgCepheus, hpl.AlgLong)
	baseRS := run(4, 1, hpl.AlgRing, hpl.AlgLong)
	accelRS := run(4, 1, hpl.AlgRing, hpl.AlgCepheus)
	t := exp.NewTable("Fig 11: HPL (paper: JCT -12% PB / -4% RS; comm -67% PB / -18% RS)",
		"setting", "JCT", "comm", "others", "JCT red.", "comm red.")
	add := func(name string, base, acc hpl.Result, commBase, commAcc sim.Time) {
		t.Add(name+"/baseline", base.JCT.String(), base.Comm().String(), base.Others().String(), "-", "-")
		t.Add(name+"/cepheus", acc.JCT.String(), acc.Comm().String(), acc.Others().String(),
			fmt.Sprintf("-%.1f%%", 100*(1-float64(acc.JCT)/float64(base.JCT))),
			fmt.Sprintf("-%.0f%%", 100*(1-float64(commAcc)/float64(commBase))))
	}
	add("PB(1x4)", basePB, accelPB, basePB.PB, accelPB.PB)
	add("RS(4x1)", baseRS, accelRS, baseRS.RS, accelRS.RS)
	fmt.Print(t)
}

func hplLarge() {
	t := exp.NewTable("Large-scale HPL (analytic)", "grid", "baseline(s)", "cepheus(s)", "gain")
	for _, g := range []int{8, 32, 128} {
		cfg := hpl.Config{N: 65536, NB: 256, P: g, Q: g, GFlops: 800}
		base := hpl.Analytic(cfg, hpl.RingModel, hpl.LongModel)
		acc := hpl.Analytic(cfg, hpl.CepheusModel, hpl.CepheusModel)
		t.Add(fmt.Sprintf("%dx%d", g, g),
			fmt.Sprintf("%.2f", base.JCTSeconds), fmt.Sprintf("%.2f", acc.JCTSeconds),
			fmt.Sprintf("-%.1f%%", 100*(1-acc.JCTSeconds/base.JCTSeconds)))
	}
	fmt.Print(t)
}

func fatTreeJCT(scheme cepheus.Scheme, groupSize, size int, loss float64) float64 {
	return fatTreeJCTCells(scheme, groupSize, size, loss, 2048)
}

// fatTreeJCTCells exposes the cell budget: loss experiments use finer
// cells so per-loss go-back-N recovery cost stays realistic.
func fatTreeJCTCells(scheme cepheus.Scheme, groupSize, size int, loss float64, maxPackets int) float64 {
	tr := roce.DefaultConfig()
	tr.DCQCN = true // the paper's ns-3 setup runs go-back-N + DCQCN
	exp.ApplyCell(&tr.MTU, &tr.WindowPkts, size, tr.MTU, maxPackets)
	if loss > 0 {
		loss *= float64(tr.MTU) / 1024.0
	}
	c := cepheus.NewFatTree(16, cepheus.Options{Transport: &tr})
	nodes := make([]int, groupSize)
	for i := range nodes {
		nodes[i] = i
	}
	// Chain slices follow the paper's "equal to the number of hosts"
	// configuration, which is what keeps Chain within ~2x on large flows.
	b, err := c.Broadcaster(scheme, nodes, groupSize)
	if err != nil {
		panic(err)
	}
	c.SetLossRate(loss)
	return runBcast(c, b, 0, size,
		fmt.Sprintf("fattree/%s/n%d/%s/loss=%g", scheme, groupSize, exp.FormatBytes(size), loss))
}

func fig12() {
	sizes := []int{64, 64 << 10, 16 << 20}
	if *full {
		sizes = append(sizes, 256<<20, 1<<30)
	}
	t := exp.NewTable("Fig 12: 512-scale multicast FCT (paper: up to 164x/4.5x short, 2.1x/8.9x large)",
		"size", "cepheus", "chain", "bt", "vs chain", "vs bt")
	for _, size := range sizes {
		ceph := fatTreeJCT(cepheus.SchemeCepheus, 513, size, 0)
		chain := fatTreeJCT(cepheus.SchemeChain, 513, size, 0)
		bt := fatTreeJCT(cepheus.SchemeBinomial, 513, size, 0)
		t.Add(exp.FormatBytes(size),
			sim.Time(ceph).String(), sim.Time(chain).String(), sim.Time(bt).String(),
			fmt.Sprintf("%.1fx", chain/ceph), fmt.Sprintf("%.1fx", bt/ceph))
	}
	fmt.Print(t)
}

func fig13() {
	size := 128 << 20
	losses := []float64{0, 1e-6, 1e-5, 1e-4}
	scales := []int{64}
	if *full {
		scales = append(scales, 512)
	}
	t := exp.NewTable("Fig 13: 128MB multicast under loss (normalized to lossless)",
		"scale/loss", "cepheus FCT", "chain FCT", "ceph norm", "chain norm")
	for _, scale := range scales {
		var cb, hb float64
		for _, loss := range losses {
			ceph := fatTreeJCTCells(cepheus.SchemeCepheus, scale+1, size, loss, 32768)
			chain := fatTreeJCTCells(cepheus.SchemeChain, scale+1, size, loss, 32768)
			if loss == 0 {
				cb, hb = ceph, chain
			}
			t.Add(fmt.Sprintf("%d/%.0e", scale, loss),
				sim.Time(ceph).String(), sim.Time(chain).String(),
				fmt.Sprintf("%.2f", cb/ceph), fmt.Sprintf("%.2f", hb/chain))
		}
	}
	fmt.Print(t)
}

func fig14() {
	tr := roce.DefaultConfig()
	tr.DCQCN = true
	tr.MTU = 4096
	c := cepheus.NewFatTree(4, cepheus.Options{Transport: &tr})
	if *traceOut != "" {
		c.EnableTrace(*traceCap)
	}
	if *auditOn {
		c.EnableAudit()
	}
	enableGroups(c)
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	g, err := c.NewGroup(members, 0)
	if err != nil {
		panic(err)
	}
	for _, m := range g.Members[1:] {
		m.QP.OnMessage = func(roce.Message) {}
	}
	mk := func(src, dst int) (*roce.QP, *roce.QP) {
		sq := c.RNICs[src].CreateQP()
		rq := c.RNICs[dst].CreateQP()
		sq.Connect(c.Host(dst).IP, rq.QPN)
		rq.Connect(c.Host(src).IP, sq.QPN)
		return sq, rq
	}
	f2, f2r := mk(1, 2)
	f3, f3r := mk(3, 4)
	// -series: sample the three competing flows' DCQCN rates (plus the
	// default queue-depth and fabric-counter probes) every 100µs — the data
	// behind the paper's rate-convergence figure.
	var ser *obs.SeriesSet
	if *seriesOut != "" {
		var err error
		if ser, err = c.EnableSeries(0, 0); err != nil {
			fmt.Fprintf(os.Stderr, "fig14: %v\n", err)
			os.Exit(1)
		}
		for _, f := range []struct {
			name string
			qp   *roce.QP
		}{{"rate/f1-mcast", g.Members[0].QP}, {"rate/f2", f2}, {"rate/f3", f3}} {
			qp := f.qp
			ser.Track(f.name, func() float64 { return qp.Rate() / 1e9 })
		}
		ser.Start()
	}
	var stop2, stop3 bool
	stream := func(qp *roce.QP, stop *bool) {
		var post func()
		post = func() {
			if !*stop {
				qp.PostSend(1<<20, post)
			}
		}
		post()
	}
	stop1 := false
	stream(g.Members[0].QP, &stop1)
	eng := c.Eng
	eng.Schedule(5*sim.Millisecond, func() { stream(f2, &stop2) })
	eng.Schedule(20*sim.Millisecond, func() { stop2 = true })
	eng.Schedule(25*sim.Millisecond, func() { stream(f3, &stop3) })
	probe := g.Members[1].QP
	t := exp.NewTable("Fig 14: throughput dynamics (Gbps per 1ms)", "t(ms)", "f1 mcast", "f2", "f3")
	var p1, p2, p3 uint64
	for tm := sim.Millisecond; tm <= 40*sim.Millisecond; tm += sim.Millisecond {
		eng.RunUntil(tm)
		t.Add(fmt.Sprint(tm/sim.Millisecond),
			fmt.Sprintf("%.1f", float64(probe.GoodputBytes-p1)*8/1e6),
			fmt.Sprintf("%.1f", float64(f2r.GoodputBytes-p2)*8/1e6),
			fmt.Sprintf("%.1f", float64(f3r.GoodputBytes-p3)*8/1e6))
		p1, p2, p3 = probe.GoodputBytes, f2r.GoodputBytes, f3r.GoodputBytes
	}
	stop1, stop3 = true, true
	_ = stop1
	fmt.Print(t)
	if ser != nil {
		ser.Stop()
		f, err := os.Create(*seriesOut)
		if err == nil {
			err = ser.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig14: series export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("series: %d samples x %d probes every %v -> %s\n",
			ser.Samples(), len(ser.Names()), time.Duration(ser.Interval()), *seriesOut)
	}
	if *traceOut != "" {
		if err := c.WriteTraceFile(*traceOut, true); err != nil {
			fmt.Fprintf(os.Stderr, "fig14: trace export: %v\n", err)
			os.Exit(1)
		}
	}
	auditVerdict(c, "fig14")
	groupVerdict(c, "fig14")
}

func reduceExt() {
	const n = 8
	t := exp.NewTable("Extension: many-to-one reduction (8 nodes, in-network vs software)",
		"size", "cepheus-reduce", "gather", "binomial-reduce")
	runOne := func(r amcast.Reducer, eng *sim.Engine, size int) sim.Time {
		start := eng.Now()
		var end sim.Time = -1
		r.Reduce(0, size, func(rank int) float64 { return float64(rank + 1) }, func(total float64) {
			if total != float64(n*(n+1))/2 {
				panic("reduce aggregate wrong")
			}
			end = eng.Now()
		})
		for end < 0 {
			if !eng.Step() {
				panic("reduce stalled")
			}
		}
		return end - start
	}
	for _, size := range []int{8 << 10, 1 << 20, 16 << 20} {
		core.ResetMcstIDs()
		cc := cepheus.NewTestbed(n, cepheus.Options{})
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		g, err := cc.NewGroup(nodes, 0)
		if err != nil {
			panic(err)
		}
		cr := &amcast.CepheusReduce{Group: g}
		primeDone := false
		cr.Prime(0, func() { primeDone = true })
		for !primeDone {
			cc.Eng.Step()
		}
		ceph := runOne(cr, cc.Eng, size)

		mk := func() (*sim.Engine, *amcast.Comm) {
			core.ResetMcstIDs()
			c2 := cepheus.NewTestbed(n, cepheus.Options{})
			ns := make([]*amcast.Node, n)
			for i := range ns {
				ns[i] = &amcast.Node{Host: c2.Net.Hosts[i], RNIC: c2.RNICs[i]}
			}
			return c2.Eng, amcast.NewComm(c2.Eng, ns)
		}
		engG, commG := mk()
		gather := runOne(amcast.GatherReduce{C: commG}, engG, size)
		engB, commB := mk()
		bino := runOne(amcast.BinomialReduce{C: commB}, engB, size)
		t.Add(exp.FormatBytes(size), ceph.String(), gather.String(), bino.String())
	}
	fmt.Print(t)
}

func psTrain() {
	t := exp.NewTable("Extension: PS training (6 workers, 64MB model, 4 iterations)",
		"scheme", "JCT", "bcast", "reduce", "compute")
	for _, scheme := range []ps.Scheme{ps.SchemeCepheus, ps.SchemeAMcast} {
		core.ResetMcstIDs()
		eng := sim.New(1)
		c := ps.NewTestbed(eng, ps.DefaultConfig(6), scheme)
		res := c.Run()
		for _, got := range res.GradSums {
			if got != c.ExpectedGradSum() {
				panic("gradient aggregate wrong")
			}
		}
		t.Add(string(scheme), res.JCT.String(), res.Bcast.String(), res.Reduce.String(), res.Compute.String())
	}
	fmt.Print(t)
}

// workerSweep is the shared driver behind pdes and scale1024: a 1MB Cepheus
// broadcast to `members` members round-robined across a k-ary fat-tree's
// pods under DCQCN, swept over worker counts on the pod-level partition
// (k pod LPs + k/2 core-group LPs). Members land on every pod — member i
// goes to pod i mod k — so the replication and delivery work parallelizes
// instead of concentrating on one pod LP. Workers=1 runs the sequential
// engine, so the speedup column is against the single-threaded baseline,
// not a serialized coordinator. Simulated results are byte-identical across
// rows — the determinism suite enforces it — so the sweep isolates
// wall-clock scaling of the executor.
func workerSweep(name string, k, members int, workers []int) {
	t := exp.NewTable(fmt.Sprintf("%s: pod-partitioned executor scaling (1MB bcast, %d members, k=%d fat-tree, %d hosts, DCQCN)",
		name, members, k, k*k*k/4),
		"workers", "lps", "jct", "events", "wall(ms)", "events/s(M)", "speedup", "stall")
	// The speedup column compares wall-clock across rows, so each row takes
	// the best of five timed repetitions — single-shot timings on a shared
	// host swing enough to invert the ordering.
	bcastReps = 5
	defer func() { bcastReps = 1 }()
	var base float64
	for _, w := range workers {
		core.ResetMcstIDs()
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		c := cepheus.NewFatTree(k, cepheus.Options{Transport: &tr, Workers: w, PodPartition: true,
			Profile: *pdesProf != ""})
		hostsPerPod := k * k / 4
		nodes := make([]int, members)
		for i := range nodes {
			nodes[i] = (i%k)*hostsPerPod + i/k
		}
		b, err := c.Broadcaster(cepheus.SchemeCepheus, nodes, members)
		if err != nil {
			panic(err)
		}
		// One untimed warmup broadcast grows every executor buffer (outboxes,
		// merge scratch, slabs, event heaps) and ramps DCQCN to its working
		// point, so the measured row reports steady-state behavior: the alloc
		// column is worker-invariant delivery bookkeeping instead of plan-
		// shape-dependent cold growth, and events/s excludes one-time setup.
		if _, err := c.RunBcastErr(b, nodes[0], 1<<20); err != nil {
			panic(err)
		}
		// The profile should describe the measured reps, not the warmup.
		c.ResetExecProfile()
		lps := 1
		if c.Par != nil {
			lps = c.Par.NumLPs()
		}
		jct := runBcast(c, b, nodes[0], 1<<20, fmt.Sprintf("workers=%d", w))
		prof := c.ExecProfile()
		c.Close()
		rec := &records[len(records)-1]
		stall := "-"
		if prof != nil {
			profEntries = append(profEntries, pdesProfEntry{Experiment: curExp, Workers: w, Report: prof})
			rec.ExecPct = 100 * prof.ExecEfficiency
			rec.StallPhase = string(prof.DominantStall)
			rec.StallPct = prof.StallPct
			if prof.DominantStall != "" {
				stall = fmt.Sprintf("%s %.0f%%", prof.DominantStall, prof.StallPct)
			}
		}
		if w == workers[0] {
			base = rec.EventsPerSec
		}
		wallMs := 0.0
		if rec.EventsPerSec > 0 {
			wallMs = float64(rec.EventsRun) / rec.EventsPerSec * 1e3
		}
		t.Add(fmt.Sprint(w), fmt.Sprint(lps), sim.Time(jct).String(), fmt.Sprint(rec.EventsRun),
			fmt.Sprintf("%.1f", wallMs),
			fmt.Sprintf("%.2f", rec.EventsPerSec/1e6),
			fmt.Sprintf("%.2fx", rec.EventsPerSec/base), stall)
	}
	fmt.Print(t)
}

// pdes sweeps worker counts on the BenchmarkScaleEvents workload: 65 dense
// members on the 128-host (k=8) fat-tree, 12 pod-partition LPs.
func pdes() {
	workerSweep("PDES", 8, 65, []int{1, 2, 4, 8})
}

// scale1024 is the paper-scale capstone: a 257-member broadcast on the
// 1024-host (k=16) fat-tree of §V-C, members spread across all 16 pods
// (16-17 per pod), 24 pod-partition LPs.
func scale1024() {
	workerSweep("scale1024", 16, 257, []int{1, 2, 4, 8})
}

// traceov measures the flight recorder's events/s cost on the pdes workload
// (1MB Cepheus multicast to 65 members, k=8 fat-tree, DCQCN, sequential
// engine): median paired overhead across 9 interleaved off/on iterations.
// -failover turns the measurement into a gate: overhead above the fraction
// fails the run.
//
// Each iteration times the second broadcast on its cluster, not the first:
// the untimed warmup absorbs one-time cold costs (event-heap and port-buffer
// growth, DCQCN ramp, first touch of the recorder rings) that otherwise land
// on the traced side and roughly double the apparent overhead — the BENCH_pr8
// "~20%" was mostly this artifact. Steady state is what the recorder costs in
// any long-running use, and is what the gate bounds.
func traceov() {
	var lost uint64
	once := func(traced bool) float64 {
		core.ResetMcstIDs()
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		c := cepheus.NewFatTree(8, cepheus.Options{Transport: &tr})
		defer c.Close()
		var rec *obs.Recorder
		if traced {
			rec = c.EnableTrace(1 << 20)
		}
		nodes := make([]int, 65)
		for i := range nodes {
			nodes[i] = i
		}
		b, err := c.Broadcaster(cepheus.SchemeCepheus, nodes, 65)
		if err != nil {
			panic(err)
		}
		if _, err := c.RunBcastErr(b, 0, 1<<20); err != nil {
			fmt.Fprintf(os.Stderr, "traceov: %v\n", err)
			os.Exit(1)
		}
		// Collect warmup garbage (and the previous iteration's 128MB of
		// recorder rings) now, so GC pauses don't land inside the timed
		// region of either side.
		runtime.GC()
		ev0 := c.EventsRun()
		t0 := time.Now()
		if _, err := c.RunBcastErr(b, 0, 1<<20); err != nil {
			fmt.Fprintf(os.Stderr, "traceov: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(t0)
		if rec != nil {
			lost = rec.Lost()
		}
		return float64(c.EventsRun()-ev0) / wall.Seconds()
	}
	// Interleave off/on iterations and gate on the median of *paired*
	// overhead ratios: each off/on pair runs back to back under the same
	// machine conditions, so host steal and thermal drift cancel within the
	// pair, and the median over pairs discards the iterations a GC pause or
	// a noisy-neighbor burst did hit. Taking each side's median
	// independently (let alone best-of) compares samples from different
	// moments of machine state and swings tens of points on a shared host.
	var offs, ons, overs []float64
	for i := 0; i < 9; i++ {
		off, on := once(false), once(true)
		offs, ons = append(offs, off), append(ons, on)
		overs = append(overs, 1-on/off)
	}
	off, on := median(offs), median(ons)
	overhead := median(overs)
	t := exp.NewTable("Trace overhead: pdes workload, flight recorder off vs on (median of 9, interleaved)",
		"tracing", "events/s(M)", "overhead")
	t.Add("off", fmt.Sprintf("%.2f", off/1e6), "-")
	t.Add("on", fmt.Sprintf("%.2f", on/1e6), fmt.Sprintf("%.1f%%", 100*overhead))
	fmt.Print(t)
	fmt.Printf("events lost by recorder: %d\n", lost)
	records = append(records,
		benchRecord{Experiment: "traceov", Case: "off", EventsPerSec: off},
		benchRecord{Experiment: "traceov", Case: "on", EventsPerSec: on, OverheadPct: 100 * overhead})
	if *failOver > 0 && overhead > *failOver {
		fmt.Fprintf(os.Stderr, "traceov: tracing overhead %.1f%% exceeds the %.0f%% budget\n",
			100*overhead, 100**failOver)
		exitCode = 1
	}
}

// median returns the middle of the samples (sorted copy, upper-middle for
// even counts) — the overhead gates' robust events/s estimator.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// profov measures the executor profiler's events/s cost on the pdes workload
// run under the partitioned coordinator (1MB Cepheus multicast to 65 members,
// k=8 fat-tree, pod partition, DCQCN): median paired overhead across 7
// interleaved off/on iterations. -profover turns the measurement into a gate. Uses
// min(2, GOMAXPROCS) workers so the same experiment is meaningful on a 1-CPU
// CI box (inline path: merge/exec stamps still taken, spin/park zero).
func profov() {
	workers := 2
	if runtime.GOMAXPROCS(0) < 2 {
		workers = 1
	}
	once := func(profiled bool) float64 {
		core.ResetMcstIDs()
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		c := cepheus.NewFatTree(8, cepheus.Options{Transport: &tr, Workers: workers,
			Partition: true, PodPartition: true, Profile: profiled})
		defer c.Close()
		const members = 65
		hostsPerPod := 8 * 8 / 4
		nodes := make([]int, members)
		for i := range nodes {
			nodes[i] = (i%8)*hostsPerPod + i/8
		}
		b, err := c.Broadcaster(cepheus.SchemeCepheus, nodes, members)
		if err != nil {
			panic(err)
		}
		// Untimed warmup grows executor buffers; GC now so collection cost
		// lands outside the timed region on both sides.
		if _, err := c.RunBcastErr(b, nodes[0], 1<<20); err != nil {
			panic(err)
		}
		c.ResetExecProfile()
		runtime.GC()
		ev0 := c.EventsRun()
		// Time three broadcasts, not one: the budget is 3% and a ~23ms
		// timed region has more scheduler jitter than that.
		t0 := time.Now()
		for rep := 0; rep < 3; rep++ {
			if _, err := c.RunBcastErr(b, nodes[0], 1<<20); err != nil {
				fmt.Fprintf(os.Stderr, "profov: %v\n", err)
				os.Exit(1)
			}
		}
		wall := time.Since(t0)
		if profiled && c.ExecProfile() == nil {
			panic("profov: profile missing")
		}
		return float64(c.EventsRun()-ev0) / wall.Seconds()
	}
	// Same paired-ratio methodology as traceov: overhead is the median of
	// per-pair ratios, not the ratio of per-side medians.
	var offs, ons, overs []float64
	for i := 0; i < 7; i++ {
		off, on := once(false), once(true)
		offs, ons = append(offs, off), append(ons, on)
		overs = append(overs, 1-on/off)
	}
	off, on := median(offs), median(ons)
	overhead := median(overs)
	t := exp.NewTable(fmt.Sprintf("Profiler overhead: pdes workload under the partitioned coordinator (workers=%d, median of 7, interleaved)", workers),
		"profiling", "events/s(M)", "overhead")
	t.Add("off", fmt.Sprintf("%.2f", off/1e6), "-")
	t.Add("on", fmt.Sprintf("%.2f", on/1e6), fmt.Sprintf("%.1f%%", 100*overhead))
	fmt.Print(t)
	records = append(records,
		benchRecord{Experiment: "profov", Case: "off", EventsPerSec: off},
		benchRecord{Experiment: "profov", Case: "on", EventsPerSec: on, OverheadPct: 100 * overhead})
	if *profOver > 0 && overhead > *profOver {
		fmt.Fprintf(os.Stderr, "profov: profiling overhead %.1f%% exceeds the %.0f%% budget\n",
			100*overhead, 100**profOver)
		exitCode = 1
	}
}

// fairness runs G concurrent multicast groups over a shared k=8 fat-tree
// (128 hosts) and reports how evenly the fabric splits it: Jain's index and
// the max/min ratio over per-group delivered bytes, and the p99 isolation
// gap (worst group p99 / fleet p99). Group g's members are hosts
// (g + i*16) mod 128 — every group's receivers are spread across all pods,
// so the streams contend on the same core links instead of partitioning the
// tree. Each root streams 128KB messages back to back under DCQCN for a
// fixed 10ms window. One summary record per sweep point carries jain_index /
// maxmin_ratio / p99_isolation_gap; one record per group carries its goodput
// bytes and delivery p99.
func fairness() {
	t := exp.NewTable("Fairness: concurrent groups on a shared k=8 fat-tree (10ms window, DCQCN)",
		"groups", "jain", "max/min", "fleet p99", "worst p99", "isolation gap")
	for _, G := range []int{8, 16, 32} {
		f := fairnessOne(G)
		t.Add(fmt.Sprint(G),
			fmt.Sprintf("%.4f", f.JainIndex), fmt.Sprintf("%.2fx", f.MaxMinRatio),
			sim.Time(f.FleetP99).String(), sim.Time(f.WorstP99).String(),
			fmt.Sprintf("%.2fx", f.P99IsolationGap))
	}
	fmt.Print(t)
}

func fairnessOne(G int) obs.FairnessReport {
	core.ResetMcstIDs()
	tr := roce.DefaultConfig()
	tr.DCQCN = true
	c := cepheus.NewFatTree(8, cepheus.Options{Transport: &tr})
	defer c.Close()
	gs := c.EnableGroupStats(0)
	if sloSet {
		gs.SetDefaultObjective(sloObj)
	}
	const membersPer = 8
	hosts := c.Hosts()
	stride := hosts / membersPer
	stops := make([]bool, G)
	for g := 0; g < G; g++ {
		members := make([]int, membersPer)
		for i := range members {
			members[i] = (g + i*stride) % hosts
		}
		grp, err := c.NewGroup(members, 0)
		if err != nil {
			panic(err)
		}
		for _, m := range grp.Members[1:] {
			m.QP.OnMessage = func(roce.Message) {}
		}
		qp, stop := grp.Members[0].QP, &stops[g]
		var post func()
		post = func() {
			if !*stop {
				qp.PostSend(128<<10, post)
			}
		}
		post()
	}
	const window = 10 * sim.Millisecond
	c.Eng.RunUntil(window)
	for g := range stops {
		stops[g] = true
	}
	// Drain in-flight messages so the last word on every group is a complete
	// delivery, not a truncated one.
	c.Eng.RunUntil(window + 5*sim.Millisecond)

	reps := c.GroupReports()
	f := obs.Fairness(reps)
	fmt.Printf("== %d concurrent groups ==\n", G)
	obs.WriteGroupTable(os.Stdout, reps)
	for i := range reps {
		r := &reps[i]
		id := int(r.ID())
		records = append(records, benchRecord{
			Experiment: curExp, Case: fmt.Sprintf("G=%d/g%d", G, id),
			GroupID: &id, GoodputBytes: r.DeliveredBytes, P99LatencyNs: r.Latency.P99,
		})
	}
	records = append(records, benchRecord{
		Experiment: curExp, Case: fmt.Sprintf("G=%d", G),
		Groups: G, JainIndex: f.JainIndex, MaxMinRatio: f.MaxMinRatio,
		P99IsolationGap: f.P99IsolationGap,
	})
	if sloSet {
		res := obs.EvalSLOs(reps, gs.ObjectiveFor, sloWin)
		if obs.WriteSLOReport(os.Stdout, res) > 0 {
			fmt.Fprintf(os.Stderr, "fairness/G=%d: SLO %s breached\n", G, sloObj)
			exitCode = 1
		}
	}
	return f
}

// gsov measures group attribution's events/s cost on the pdes workload (1MB
// Cepheus multicast to 65 members, k=8 fat-tree, DCQCN, sequential engine):
// median paired overhead across 9 interleaved off/on iterations, same
// methodology as traceov (warmed up, GC outside the timed region, per-pair
// ratios). This is the worst case for attribution — every delivered packet
// books into a group cell — and -gsover turns it into the <3% perfsmoke gate.
func gsov() {
	groupsSeen := -1
	once := func(attributed bool) float64 {
		core.ResetMcstIDs()
		tr := roce.DefaultConfig()
		tr.DCQCN = true
		c := cepheus.NewFatTree(8, cepheus.Options{Transport: &tr})
		defer c.Close()
		if attributed {
			c.EnableGroupStats(0)
		}
		nodes := make([]int, 65)
		for i := range nodes {
			nodes[i] = i
		}
		b, err := c.Broadcaster(cepheus.SchemeCepheus, nodes, 65)
		if err != nil {
			panic(err)
		}
		if _, err := c.RunBcastErr(b, 0, 1<<20); err != nil {
			fmt.Fprintf(os.Stderr, "gsov: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		ev0 := c.EventsRun()
		// Time three broadcasts: attribution's cost is a few percent at most,
		// and a single ~20ms timed region has more scheduler jitter than that.
		t0 := time.Now()
		for rep := 0; rep < 3; rep++ {
			if _, err := c.RunBcastErr(b, 0, 1<<20); err != nil {
				fmt.Fprintf(os.Stderr, "gsov: %v\n", err)
				os.Exit(1)
			}
		}
		wall := time.Since(t0)
		if attributed {
			groupsSeen = len(c.GroupReports())
		}
		return float64(c.EventsRun()-ev0) / wall.Seconds()
	}
	var offs, ons, overs []float64
	for i := 0; i < 9; i++ {
		off, on := once(false), once(true)
		offs, ons = append(offs, off), append(ons, on)
		overs = append(overs, 1-on/off)
	}
	off, on := median(offs), median(ons)
	overhead := median(overs)
	if groupsSeen != 1 {
		fmt.Fprintf(os.Stderr, "gsov: attributed run saw %d groups, want 1 — overhead measured nothing\n", groupsSeen)
		os.Exit(1)
	}
	t := exp.NewTable("Group-attribution overhead: pdes workload, off vs on (median of 9, interleaved)",
		"attribution", "events/s(M)", "overhead")
	t.Add("off", fmt.Sprintf("%.2f", off/1e6), "-")
	t.Add("on", fmt.Sprintf("%.2f", on/1e6), fmt.Sprintf("%.1f%%", 100*overhead))
	fmt.Print(t)
	records = append(records,
		benchRecord{Experiment: "gsov", Case: "off", EventsPerSec: off},
		benchRecord{Experiment: "gsov", Case: "on", EventsPerSec: on, OverheadPct: 100 * overhead})
	if *gsOver > 0 && overhead > *gsOver {
		fmt.Fprintf(os.Stderr, "gsov: group attribution overhead %.1f%% exceeds the %.0f%% budget\n",
			100*overhead, 100**gsOver)
		exitCode = 1
	}
}

func safeguard() {
	core.ResetMcstIDs()
	acc := core.DefaultAccelConfig()
	acc.MaxGroups = 1
	c := cepheus.NewTestbed(4, cepheus.Options{Accel: &acc})
	if _, err := c.NewGroup([]int{0, 1, 2, 3}, 0); err != nil {
		panic(err)
	}
	_, err := c.NewGroup([]int{0, 1, 2, 3}, 0)
	fmt.Println("== §V-D safeguard fallback ==")
	fmt.Printf("second registration rejected: %v\n", err)
	fb, _ := c.Broadcaster(cepheus.SchemeChain, []int{0, 1, 2, 3}, 4)
	jct := sim.Time(runBcast(c, fb, 0, 1<<20, "fallback/chain/1MB"))
	fmt.Printf("fallback %s delivered 1MB in %v\n", fb.Name(), jct)
}
