// cepheus-trace inspects flight-recorder traces exported by cepheus-bench
// -trace or faultsim -trace (JSONL, one event per line).
//
// Usage:
//
//	cepheus-trace trace.jsonl                     # pcap-like listing
//	cepheus-trace -summary trace.jsonl            # per-device/kind census
//	cepheus-trace -kind DROP -reason qlimit t.jsonl
//	cepheus-trace -dev core-0 -from 2ms -to 5ms t.jsonl
//	cepheus-trace -group 1 t.jsonl                # events of multicast group 1
//
// Subcommands:
//
//	cepheus-trace spans [-group N] [-msg a.b.c.d#n] trace.jsonl
//	    reconstruct per-message causal spans: hop-by-hop latency, the
//	    replication tree, deliveries, retransmission epilogue, critical path
//	cepheus-trace timeline [-group N] [-msg a.b.c.d#n] [-width 96] t.jsonl
//	    fixed-width per-device lifelines over a time window
//	cepheus-trace diff [-json] a.jsonl b.jsonl
//	    census deltas between two runs; exits 1 when they differ (CI gate)
//	cepheus-trace pdes [-workers N] [-experiment pdes] [-json] prof.json
//	    render executor profiles written by cepheus-bench -pdesprof:
//	    per-worker phase breakdown, hottest LPs, heaviest cross-LP edges,
//	    and the scaling diagnosis
//	cepheus-trace groups [-json] [-slo spec] [-series] trace.jsonl
//	    per-multicast-group attribution rebuilt from the trace: delivered/
//	    dropped/retransmitted bytes, latency percentiles, fairness report
//	    (Jain's index, p99 isolation gap), optional SLO evaluation with a
//	    breach timeline (breaches exit 1, for CI gates)
//
// Empty, truncated, or corrupt input exits 2 with a one-line diagnosis on
// stderr — never an empty report.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

var (
	summary = flag.Bool("summary", false, "print a per-device/kind census instead of the listing")
	kind    = flag.String("kind", "", "keep only this event kind (ENQ, DEQ, DROP, ...)")
	reason  = flag.String("reason", "", "keep only this drop/fault reason (qlimit, loss, crash, ...)")
	dev     = flag.String("dev", "", "keep only this device (switch or host name)")
	dst     = flag.String("dst", "", "keep only this destination address (dotted quad)")
	group   = flag.Int("group", -1, "keep only this multicast group id (dst 224.0.0.<id>)")
	from    = flag.Duration("from", 0, "keep events at or after this virtual time")
	to      = flag.Duration("to", 0, "keep events at or before this virtual time (0: no bound)")
	diff    = flag.String("diff", "", "compare against this second trace: print census deltas")
)

// line mirrors the obs JSONL export schema.
type line struct {
	T      int64  `json:"t"`
	Dev    string `json:"dev"`
	Port   int    `json:"port"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	PT     string `json:"pt"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	SQP    uint32 `json:"sqp"`
	DQP    uint32 `json:"dqp"`
	PSN    uint64 `json:"psn"`
	Msg    uint64 `json:"msg"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cepheus-trace: "+format+"\n", args...)
	os.Exit(1)
}

// fatal2 diagnoses unusable input (empty, truncated, corrupt) in one line
// and exits 2 — the contract every subcommand shares, so a pipeline that
// fed us garbage can tell "bad input" (2) apart from "real difference" (1).
func fatal2(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cepheus-trace: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) []line {
	f, err := os.Open(path)
	if err != nil {
		fatal2("%v", err)
	}
	defer f.Close()
	var out []line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			fatal2("%s:%d: truncated or corrupt trace: %v", path, n, err)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		fatal2("%s: truncated trace: %v", path, err)
	}
	if len(out) == 0 {
		fatal2("%s: empty trace (no events)", path)
	}
	return out
}

// toEvents converts JSONL lines back into obs events, assigning device ids
// in first-seen order (the export is already in canonical order, so the
// numbering — and everything derived from it — is deterministic). The
// returned names function inverts the assignment for rendering.
func toEvents(ls []line) ([]obs.Event, func(uint32) string) {
	ids := make(map[string]uint32)
	var names []string
	evs := make([]obs.Event, 0, len(ls))
	for i := range ls {
		l := &ls[i]
		id, ok := ids[l.Dev]
		if !ok {
			id = uint32(len(names))
			ids[l.Dev] = id
			names = append(names, l.Dev)
		}
		k, ok := obs.KindByName(l.Kind)
		if !ok {
			fatal2("line %d: corrupt trace: unknown kind %q", i+1, l.Kind)
		}
		r := obs.RNone
		if l.Reason != "" {
			if r, ok = obs.ReasonByName(l.Reason); !ok {
				fatal2("line %d: corrupt trace: unknown reason %q", i+1, l.Reason)
			}
		}
		pt, ok := obs.PktTypeByName(l.PT)
		if !ok {
			fatal2("line %d: corrupt trace: unknown packet type %q", i+1, l.PT)
		}
		src, ok := obs.ParseAddr(l.Src)
		if !ok {
			fatal2("line %d: corrupt trace: bad src address %q", i+1, l.Src)
		}
		dstA, ok := obs.ParseAddr(l.Dst)
		if !ok {
			fatal2("line %d: corrupt trace: bad dst address %q", i+1, l.Dst)
		}
		evs = append(evs, obs.Event{
			At: sim.Time(l.T), Seq: uint32(i), Dev: id, Port: int16(l.Port),
			Kind: k, Reason: r, PT: pt, Src: src, Dst: dstA,
			SrcQP: l.SQP, DstQP: l.DQP, PSN: l.PSN, Msg: l.Msg, A: l.A, B: l.B,
		})
	}
	return evs, func(d uint32) string {
		if int(d) < len(names) {
			return names[d]
		}
		return "?"
	}
}

// parseMsg inverts obs.MsgString ("a.b.c.d#n").
func parseMsg(s string) (uint64, error) {
	i := strings.IndexByte(s, '#')
	if i < 0 {
		return 0, fmt.Errorf("bad message id %q (want origin#counter, e.g. 10.0.0.1#3)", s)
	}
	origin, ok := obs.ParseAddr(s[:i])
	if !ok {
		return 0, fmt.Errorf("bad origin address %q in message id", s[:i])
	}
	ctr, err := strconv.ParseUint(s[i+1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad counter in message id %q: %v", s, err)
	}
	return uint64(origin)<<32 | ctr, nil
}

func (l *line) keep() bool {
	if *kind != "" && l.Kind != *kind {
		return false
	}
	if *reason != "" && l.Reason != *reason {
		return false
	}
	if *dev != "" && l.Dev != *dev {
		return false
	}
	if *dst != "" && l.Dst != *dst {
		return false
	}
	if *group >= 0 && l.Dst != obs.AddrString(0xE0000000+uint32(*group)) {
		return false
	}
	if *from > 0 && l.T < int64(*from) {
		return false
	}
	if *to > 0 && l.T > int64(*to) {
		return false
	}
	return true
}

func filter(ls []line) []line {
	out := ls[:0]
	for i := range ls {
		if ls[i].keep() {
			out = append(out, ls[i])
		}
	}
	return out
}

// census keys events by device/kind (plus the reason for drops, where the
// reason is the interesting part).
func census(ls []line) map[string]int {
	m := make(map[string]int)
	for i := range ls {
		k := ls[i].Dev + " " + ls[i].Kind
		if ls[i].Reason != "" {
			k += "[" + ls[i].Reason + "]"
		}
		m[k]++
	}
	return m
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func printCensus(ls []line) {
	m := census(ls)
	for _, k := range sortedKeys(m) {
		fmt.Printf("%8d  %s\n", m[k], k)
	}
	var lo, hi int64
	if len(ls) > 0 {
		lo, hi = ls[0].T, ls[0].T
		for i := range ls {
			if ls[i].T < lo {
				lo = ls[i].T
			}
			if ls[i].T > hi {
				hi = ls[i].T
			}
		}
	}
	fmt.Printf("%8d  total over %v..%v\n", len(ls), time.Duration(lo), time.Duration(hi))
}

// censusDelta is one diverging census row, also the -json element schema.
type censusDelta struct {
	Key   string `json:"key"`
	A     int    `json:"a"`
	B     int    `json:"b"`
	Delta int    `json:"delta"`
}

func censusDeltas(a, b []line) []censusDelta {
	ca, cb := census(a), census(b)
	keys := make(map[string]bool)
	for k := range ca {
		keys[k] = true
	}
	for k := range cb {
		keys[k] = true
	}
	ks := make([]string, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var out []censusDelta
	for _, k := range ks {
		if ca[k] != cb[k] {
			out = append(out, censusDelta{Key: k, A: ca[k], B: cb[k], Delta: cb[k] - ca[k]})
		}
	}
	return out
}

func printDiff(a, b []line, pathA, pathB string) {
	ds := censusDeltas(a, b)
	for _, d := range ds {
		fmt.Printf("%8d -> %-8d %+-8d %s\n", d.A, d.B, d.Delta, d.Key)
	}
	if len(ds) == 0 {
		fmt.Printf("no census differences (%d events in %s, %d in %s)\n", len(a), pathA, len(b), pathB)
	}
}

func printListing(ls []line) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := range ls {
		l := &ls[i]
		fmt.Fprintf(w, "%-14v %-12s %-11s", time.Duration(l.T), l.Dev, l.Kind)
		if l.Reason != "" {
			fmt.Fprintf(w, " [%s]", l.Reason)
		}
		if l.Port >= 0 {
			fmt.Fprintf(w, " port=%d", l.Port)
		}
		fmt.Fprintf(w, " %s %s > %s psn=%d", l.PT, l.Src, l.Dst, l.PSN)
		if l.Msg != 0 {
			fmt.Fprintf(w, " msg=%s", obs.MsgString(l.Msg))
		}
		fmt.Fprintf(w, " a=%d b=%d\n", l.A, l.B)
	}
}

// filterEvents applies the span/timeline selection (message, group, window)
// to decoded events. Epilogue events carry the group address only in Src/Dst
// asymmetrically, so group selection keys on the message's span membership:
// any event whose Msg matched survives regardless of its own addresses.
func filterEvents(evs []obs.Event, msg uint64, groupAddr uint32, from, to sim.Time) []obs.Event {
	if msg == 0 && groupAddr == 0 && from == 0 && to == 0 {
		return evs
	}
	// Pass 1: which messages touch the group address?
	inGroup := make(map[uint64]bool)
	if groupAddr != 0 {
		for i := range evs {
			if evs[i].Msg != 0 && evs[i].Dst == groupAddr {
				inGroup[evs[i].Msg] = true
			}
		}
	}
	out := evs[:0]
	for i := range evs {
		e := &evs[i]
		if msg != 0 && e.Msg != msg {
			continue
		}
		if groupAddr != 0 && !(e.Dst == groupAddr || (e.Msg != 0 && inGroup[e.Msg])) {
			continue
		}
		if from > 0 && e.At < from {
			continue
		}
		if to > 0 && e.At > to {
			continue
		}
		out = append(out, *e)
	}
	return out
}

func cmdSpans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	msgF := fs.String("msg", "", "only this message (origin#counter, e.g. 10.0.0.1#3)")
	groupF := fs.Int("group", -1, "only messages of this multicast group id")
	fromF := fs.Duration("from", 0, "only events at or after this virtual time")
	toF := fs.Duration("to", 0, "only events at or before this virtual time (0: no bound)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace spans [flags] trace.jsonl")
		fs.PrintDefaults()
		os.Exit(2)
	}
	var msg uint64
	if *msgF != "" {
		var err error
		if msg, err = parseMsg(*msgF); err != nil {
			fatalf("%v", err)
		}
	}
	var groupAddr uint32
	if *groupF >= 0 {
		groupAddr = 0xE0000000 + uint32(*groupF)
	}
	evs, names := toEvents(load(fs.Arg(0)))
	evs = filterEvents(evs, msg, groupAddr, sim.Time(*fromF), sim.Time(*toF))
	spans := obs.BuildSpans(evs)
	if len(spans) == 0 {
		fatal2("no spans (trace has no message-tagged events in the selection)")
	}
	if err := obs.WriteSpans(os.Stdout, spans, names); err != nil {
		fatalf("%v", err)
	}
}

func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	msgF := fs.String("msg", "", "only this message (origin#counter)")
	groupF := fs.Int("group", -1, "only events addressed to this multicast group id")
	fromF := fs.Duration("from", 0, "window start")
	toF := fs.Duration("to", 0, "window end (0: last event)")
	widthF := fs.Int("width", 0, "lifeline width in columns (0: 96)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace timeline [flags] trace.jsonl")
		fs.PrintDefaults()
		os.Exit(2)
	}
	opt := obs.TimelineOptions{
		From:  sim.Time(*fromF),
		To:    sim.Time(*toF),
		Width: *widthF,
	}
	if *msgF != "" {
		var err error
		if opt.Msg, err = parseMsg(*msgF); err != nil {
			fatalf("%v", err)
		}
	}
	if *groupF >= 0 {
		opt.Group = 0xE0000000 + uint32(*groupF)
	}
	evs, names := toEvents(load(fs.Arg(0)))
	if err := obs.WriteTimeline(os.Stdout, evs, names, opt); err != nil {
		fatalf("%v", err)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	jsonF := fs.Bool("json", false, "emit the deltas as JSON")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace diff [-json] a.jsonl b.jsonl")
		fs.PrintDefaults()
		os.Exit(2)
	}
	a, b := load(fs.Arg(0)), load(fs.Arg(1))
	ds := censusDeltas(a, b)
	if *jsonF {
		out := struct {
			A       string        `json:"a"`
			B       string        `json:"b"`
			EventsA int           `json:"events_a"`
			EventsB int           `json:"events_b"`
			Equal   bool          `json:"equal"`
			Changed []censusDelta `json:"changed"`
		}{fs.Arg(0), fs.Arg(1), len(a), len(b), len(ds) == 0, ds}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	} else {
		printDiff(a, b, fs.Arg(0), fs.Arg(1))
	}
	if len(ds) != 0 {
		os.Exit(1)
	}
}

// profEntry mirrors cepheus-bench's -pdesprof output element.
type profEntry struct {
	Experiment string          `json:"experiment"`
	Workers    int             `json:"workers"`
	Report     *obs.ExecReport `json:"report"`
}

func cmdPdes(args []string) {
	fs := flag.NewFlagSet("pdes", flag.ExitOnError)
	workersF := fs.Int("workers", 0, "only rows with this worker count (0: all)")
	expF := fs.String("experiment", "", "only rows of this experiment (pdes, scale1024)")
	jsonF := fs.Bool("json", false, "re-emit the selected reports as JSON instead of text")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace pdes [flags] prof.json")
		fs.PrintDefaults()
		os.Exit(2)
	}
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal2("%v", err)
	}
	if len(buf) == 0 {
		fatal2("%s: empty profile file", fs.Arg(0))
	}
	var entries []profEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		fatal2("%s: truncated or corrupt profile: %v", fs.Arg(0), err)
	}
	var keep []profEntry
	for _, e := range entries {
		if e.Report == nil {
			continue
		}
		if *workersF > 0 && e.Workers != *workersF {
			continue
		}
		if *expF != "" && e.Experiment != *expF {
			continue
		}
		keep = append(keep, e)
	}
	if len(keep) == 0 {
		fatal2("%s: no executor profiles match the selection (%d entries in file)", fs.Arg(0), len(entries))
	}
	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(keep); err != nil {
			fatalf("%v", err)
		}
		return
	}
	for i, e := range keep {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("-- %s, workers=%d --\n", e.Experiment, e.Workers)
		if err := obs.WriteExecReport(os.Stdout, e.Report); err != nil {
			fatalf("%v", err)
		}
	}
}

// cmdGroups rebuilds per-group attribution from the trace: the offline
// twin of Cluster.EnableGroupStats, so any existing JSONL export can answer
// "who got what" and "did anyone breach" after the fact.
func cmdGroups(args []string) {
	fs := flag.NewFlagSet("groups", flag.ExitOnError)
	jsonF := fs.Bool("json", false, "emit reports + fairness (+ SLO results) as JSON")
	bucketF := fs.Duration("bucket", 0, "goodput time-series bucket (0: 100us)")
	sloF := fs.String("slo", "", "evaluate objectives against every group: p99=<dur>,goodput=<B/s>,drops=<frac>[,window=<dur>]")
	seriesF := fs.Bool("series", false, "append each group's goodput time-series to the text output")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace groups [flags] trace.jsonl")
		fs.PrintDefaults()
		os.Exit(2)
	}
	var obj obs.SLOObjective
	var win obs.SLOWindows
	var objFor func(uint32) (obs.SLOObjective, bool)
	if *sloF != "" {
		var err error
		if obj, win, err = obs.ParseSLO(*sloF); err != nil {
			fatalf("%v", err)
		}
		objFor = func(uint32) (obs.SLOObjective, bool) { return obj, true }
	}
	evs, _ := toEvents(load(fs.Arg(0)))
	reps := obs.GroupReportsFromEvents(evs, sim.Time(*bucketF), objFor)
	if len(reps) == 0 {
		fatal2("%s: no multicast group traffic in trace (%d events)", fs.Arg(0), len(evs))
	}
	var results []obs.SLOResult
	if objFor != nil {
		results = obs.EvalSLOs(reps, objFor, win)
	}
	breached := 0
	if *jsonF {
		for i := range results {
			if results[i].Breached() {
				breached++
			}
		}
		out := struct {
			Groups   []obs.GroupReport  `json:"groups"`
			Fairness obs.FairnessReport `json:"fairness"`
			SLO      []obs.SLOResult    `json:"slo,omitempty"`
		}{reps, obs.Fairness(reps), results}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	} else {
		obs.WriteGroupTable(os.Stdout, reps)
		if *seriesF {
			for i := range reps {
				r := &reps[i]
				fmt.Printf("series g%d (bucket %v):\n", r.ID(), r.Bucket)
				for _, p := range r.Series {
					fmt.Printf("  %-12v bytes=%d msgs=%d slow=%d drops=%d retx=%d\n",
						p.Start, p.Bytes, p.Msgs, p.Slow, p.Drops, p.Retrans)
				}
			}
		}
		breached = obs.WriteSLOReport(os.Stdout, results)
	}
	if breached > 0 {
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "spans":
			cmdSpans(os.Args[2:])
			return
		case "timeline":
			cmdTimeline(os.Args[2:])
			return
		case "diff":
			cmdDiff(os.Args[2:])
			return
		case "pdes":
			cmdPdes(os.Args[2:])
			return
		case "groups":
			cmdGroups(os.Args[2:])
			return
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace [flags] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       cepheus-trace spans|timeline|diff|pdes|groups -h")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ls := filter(load(flag.Arg(0)))
	switch {
	case *diff != "":
		printDiff(ls, filter(load(*diff)), flag.Arg(0), *diff)
	case *summary:
		printCensus(ls)
	default:
		printListing(ls)
	}
}
