// cepheus-trace inspects flight-recorder traces exported by cepheus-bench
// -trace or faultsim -trace (JSONL, one event per line).
//
// Usage:
//
//	cepheus-trace trace.jsonl                     # pcap-like listing
//	cepheus-trace -summary trace.jsonl            # per-device/kind census
//	cepheus-trace -kind DROP -reason qlimit t.jsonl
//	cepheus-trace -dev core-0 -from 2ms -to 5ms t.jsonl
//	cepheus-trace -group 1 t.jsonl                # events of multicast group 1
//	cepheus-trace -diff other.jsonl trace.jsonl   # census deltas between runs
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

var (
	summary = flag.Bool("summary", false, "print a per-device/kind census instead of the listing")
	kind    = flag.String("kind", "", "keep only this event kind (ENQ, DEQ, DROP, ...)")
	reason  = flag.String("reason", "", "keep only this drop/fault reason (qlimit, loss, crash, ...)")
	dev     = flag.String("dev", "", "keep only this device (switch or host name)")
	dst     = flag.String("dst", "", "keep only this destination address (dotted quad)")
	group   = flag.Int("group", -1, "keep only this multicast group id (dst 224.0.0.<id>)")
	from    = flag.Duration("from", 0, "keep events at or after this virtual time")
	to      = flag.Duration("to", 0, "keep events at or before this virtual time (0: no bound)")
	diff    = flag.String("diff", "", "compare against this second trace: print census deltas")
)

// line mirrors the obs JSONL export schema.
type line struct {
	T      int64  `json:"t"`
	Dev    string `json:"dev"`
	Port   int    `json:"port"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	PT     string `json:"pt"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	PSN    uint64 `json:"psn"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cepheus-trace: "+format+"\n", args...)
	os.Exit(1)
}

func load(path string) []line {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	var out []line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			fatalf("%s:%d: %v", path, n, err)
		}
		out = append(out, l)
	}
	if err := sc.Err(); err != nil {
		fatalf("%s: %v", path, err)
	}
	return out
}

func (l *line) keep() bool {
	if *kind != "" && l.Kind != *kind {
		return false
	}
	if *reason != "" && l.Reason != *reason {
		return false
	}
	if *dev != "" && l.Dev != *dev {
		return false
	}
	if *dst != "" && l.Dst != *dst {
		return false
	}
	if *group >= 0 && l.Dst != obs.AddrString(0xE0000000+uint32(*group)) {
		return false
	}
	if *from > 0 && l.T < int64(*from) {
		return false
	}
	if *to > 0 && l.T > int64(*to) {
		return false
	}
	return true
}

func filter(ls []line) []line {
	out := ls[:0]
	for i := range ls {
		if ls[i].keep() {
			out = append(out, ls[i])
		}
	}
	return out
}

// census keys events by device/kind (plus the reason for drops, where the
// reason is the interesting part).
func census(ls []line) map[string]int {
	m := make(map[string]int)
	for i := range ls {
		k := ls[i].Dev + " " + ls[i].Kind
		if ls[i].Reason != "" {
			k += "[" + ls[i].Reason + "]"
		}
		m[k]++
	}
	return m
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func printCensus(ls []line) {
	m := census(ls)
	for _, k := range sortedKeys(m) {
		fmt.Printf("%8d  %s\n", m[k], k)
	}
	var lo, hi int64
	if len(ls) > 0 {
		lo, hi = ls[0].T, ls[0].T
		for i := range ls {
			if ls[i].T < lo {
				lo = ls[i].T
			}
			if ls[i].T > hi {
				hi = ls[i].T
			}
		}
	}
	fmt.Printf("%8d  total over %v..%v\n", len(ls), time.Duration(lo), time.Duration(hi))
}

func printDiff(a, b []line, pathA, pathB string) {
	ca, cb := census(a), census(b)
	keys := make(map[string]bool)
	for k := range ca {
		keys[k] = true
	}
	for k := range cb {
		keys[k] = true
	}
	changed := 0
	ks := make([]string, 0, len(keys))
	for k := range keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	for _, k := range ks {
		if ca[k] == cb[k] {
			continue
		}
		changed++
		fmt.Printf("%8d -> %-8d %+-8d %s\n", ca[k], cb[k], cb[k]-ca[k], k)
	}
	if changed == 0 {
		fmt.Printf("no census differences (%d events in %s, %d in %s)\n", len(a), pathA, len(b), pathB)
	}
}

func printListing(ls []line) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := range ls {
		l := &ls[i]
		fmt.Fprintf(w, "%-14v %-12s %-11s", time.Duration(l.T), l.Dev, l.Kind)
		if l.Reason != "" {
			fmt.Fprintf(w, " [%s]", l.Reason)
		}
		if l.Port >= 0 {
			fmt.Fprintf(w, " port=%d", l.Port)
		}
		fmt.Fprintf(w, " %s %s > %s psn=%d a=%d b=%d\n", l.PT, l.Src, l.Dst, l.PSN, l.A, l.B)
	}
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cepheus-trace [flags] trace.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ls := filter(load(flag.Arg(0)))
	switch {
	case *diff != "":
		printDiff(ls, filter(load(*diff)), flag.Arg(0), *diff)
	case *summary:
		printCensus(ls)
	default:
		printListing(ls)
	}
}
